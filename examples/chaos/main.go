// Example chaos demonstrates the resilient ORB client transport: a remote
// two-phase commit running over a bounded connection pool while a
// ChaosTransport injects the failures a real network produces — latency,
// a connection reset between the two phases, and finally a dead peer that
// the per-endpoint health gate fails fast on.
//
// Run it with:
//
//	go run ./examples/chaos
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/hls/twopc"
	"github.com/extendedtx/activityservice/orb"
	"github.com/extendedtx/activityservice/ots"
)

// resource is a 2PC participant that reports what the protocol did to it.
type resource struct {
	name                         string
	prepares, commits, rollbacks atomic.Int32
}

func (r *resource) Prepare() (ots.Vote, error) { r.prepares.Add(1); return ots.VoteCommit, nil }
func (r *resource) Commit() error              { r.commits.Add(1); return nil }
func (r *resource) Rollback() error            { r.rollbacks.Add(1); return nil }
func (r *resource) CommitOnePhase() error      { r.commits.Add(1); return nil }
func (r *resource) Forget() error              { return nil }

func main() {
	ctx := context.Background()

	// One node hosts the participants; they are reachable only over TCP.
	node := orb.New()
	defer node.Shutdown()
	if _, err := node.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	participants := []*resource{{name: "inventory"}, {name: "billing"}}
	refs := make([]orb.IOR, len(participants))
	for i, r := range participants {
		ref := orb.ExportAction(node, twopc.NewResourceAction(r))
		refs[i], _ = node.IOR(ref.Key)
	}

	// The coordinator's node dials through a chaos transport wrapping the
	// real TCP transport, with a bounded pool of 4 connections per
	// endpoint and quick reconnect backoff.
	chaos := orb.NewChaosTransport(nil)
	client := orb.New(
		orb.WithTransport(chaos),
		orb.WithPoolSize(4),
		orb.WithCallTimeout(2*time.Second),
		orb.WithReconnectBackoff(50*time.Millisecond, 500*time.Millisecond),
	)
	defer client.Shutdown()

	svc := activityservice.New(activityservice.WithRetryPolicy(
		activityservice.RetryPolicy{Attempts: 3, Backoff: 10 * time.Millisecond}))
	coord := twopc.NewCoordinator(svc, twopc.WithDelivery(activityservice.Parallel()))

	commit := func(label string) {
		tx, err := coord.Begin(label)
		if err != nil {
			log.Fatal(err)
		}
		for _, ref := range refs {
			if err := tx.EnlistAction(orb.ImportAction(client, ref)); err != nil {
				log.Fatal(err)
			}
		}
		start := time.Now()
		committed, err := tx.Commit(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s committed=%v in %s\n", label+":", committed, time.Since(start).Round(time.Millisecond))
		for _, r := range participants {
			fmt.Printf("  %-10s totals: prepares=%d commits=%d rollbacks=%d\n",
				r.name, r.prepares.Load(), r.commits.Load(), r.rollbacks.Load())
		}
		if st, ok := client.EndpointStats(refs[0].Endpoint()); ok {
			fmt.Printf("  pool: conns=%d pending=%d failures=%d down=%v\n",
				st.Conns, st.Pending, st.Failures, st.Down)
		}
	}

	// 1. A healthy distributed commit through the pooled transport.
	commit("healthy network")

	// 2. Inject 20ms of link latency on every request, plus a connection
	//    reset between the prepare and commit phases. The pool re-dials and
	//    at-least-once delivery re-drives phase two: the decision stands.
	chaos.Inject(orb.ChaosRule{Latency: 20 * time.Millisecond})
	chaos.Inject(orb.ChaosRule{
		Op: "process_signal", Stage: orb.StageRequest, After: 2, Count: 1, Reset: true,
	})
	commit("slow link + reset mid-2PC")
	chaos.Heal()

	// 3. Kill the participant node: once the pool notices, the first call
	//    eats the dial failure and the health gate fails every later call
	//    fast until the backoff window passes.
	node.Shutdown()
	time.Sleep(200 * time.Millisecond) // let the pool reap its dead connections
	proxy := orb.ImportAction(client, refs[0])
	if _, err := proxy.ProcessSignal(ctx, activityservice.Signal{Name: "ping", SetName: "s"}); err != nil {
		fmt.Printf("%-28s %v\n", "dead peer, first call:", err)
	}
	start := time.Now()
	if _, err := proxy.ProcessSignal(ctx, activityservice.Signal{Name: "ping", SetName: "s"}); err != nil {
		fmt.Printf("%-28s failed fast in %s\n  (%v)\n", "dead peer, second call:",
			time.Since(start).Round(time.Microsecond), err)
	}
	if st, ok := client.EndpointStats(refs[0].Endpoint()); ok {
		fmt.Printf("  pool: conns=%d failures=%d down=%v\n", st.Conns, st.Failures, st.Down)
	}
}
