// Command quickstart shows the Activity Service essentials in one page:
// begin an activity, register a SignalSet and Actions, broadcast a signal
// mid-lifetime, and complete the activity through its completion set —
// the fig. 5 interaction of the paper, driven through the public API.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/extendedtx/activityservice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	svc := activityservice.New()

	// An activity is a unit of work; it may run for days and be
	// suspended/resumed. Here it has two protocols: a mid-lifetime
	// "checkpoint" broadcast and a completion protocol.
	a := svc.Begin("quickstart")

	checkpoint := activityservice.NewSequenceSet("checkpoint", "save")
	if err := a.RegisterSignalSet(checkpoint); err != nil {
		return err
	}
	completion := activityservice.NewSequenceSet(
		activityservice.DefaultCompletionSet, "flush", "close",
	).Collate(func(responses []activityservice.Outcome) activityservice.Outcome {
		return activityservice.Outcome{Name: "wrapped-up", Data: int64(len(responses))}
	})
	if err := a.RegisterSignalSet(completion); err != nil {
		return err
	}

	// Actions register interest in SignalSets by name; every signal the
	// set generates is delivered to every registered action, in order.
	for _, name := range []string{"worker-1", "worker-2"} {
		name := name
		_, err := a.AddNamedAction("checkpoint", name, activityservice.ActionFunc(
			func(_ context.Context, sig activityservice.Signal) (activityservice.Outcome, error) {
				log.Printf("%s received %s", name, sig)
				return activityservice.Outcome{Name: "saved"}, nil
			}))
		if err != nil {
			return err
		}
		_, err = a.AddNamedAction(activityservice.DefaultCompletionSet, name,
			activityservice.ActionFunc(
				func(_ context.Context, sig activityservice.Signal) (activityservice.Outcome, error) {
					log.Printf("%s completing: %s", name, sig)
					return activityservice.Outcome{Name: "done"}, nil
				}))
		if err != nil {
			return err
		}
	}

	// Signals can flow at arbitrary points during the activity's lifetime,
	// not just at termination (§3.1 of the paper).
	if _, err := a.Signal(ctx, "checkpoint"); err != nil {
		return err
	}

	// Completion drives the completion SignalSet and collates the result.
	outcome, err := a.Complete(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("activity completed: outcome=%s responses=%v\n", outcome.Name, outcome.Data)
	return nil
}
