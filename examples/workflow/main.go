// Command workflow runs an order-fulfilment business process on the
// workflow coordination model of §4.4 (fig. 10): validate runs first, then
// payment and inventory reservation in parallel, then shipping. A payment
// fraud check fails on the first attempt, triggering the fig. 2 recovery —
// compensate the inventory reservation, then continue down an alternative
// path (manual review followed by shipping).
package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/hls/workflow"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "workflow:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	svc := activityservice.New()
	engine := workflow.New(svc)

	say := func(format string, args ...any) {
		fmt.Printf("  "+format+"\n", args...)
	}

	process := workflow.Process{
		Name: "order-7841",
		Tasks: []workflow.Task{
			{
				Name: "validate",
				Run: func(context.Context) error {
					say("validate: order checks out")
					return nil
				},
			},
			{
				Name:      "reserve-stock",
				DependsOn: []string{"validate"},
				Run: func(context.Context) error {
					say("reserve-stock: 3 units held")
					return nil
				},
				Compensate: func(context.Context) error {
					say("reserve-stock: COMPENSATED, units released")
					return nil
				},
			},
			{
				Name:      "charge-card",
				DependsOn: []string{"validate"},
				Run: func(context.Context) error {
					say("charge-card: fraud check FAILED")
					return errors.New("fraud score too high")
				},
			},
			{
				Name:      "ship",
				DependsOn: []string{"reserve-stock", "charge-card"},
				Run: func(context.Context) error {
					say("ship: dispatched")
					return nil
				},
			},
		},
		OnFailure: map[string]workflow.Continuation{
			"charge-card": {
				// Undo what committed, then continue down the manual path.
				Compensate: []string{"reserve-stock"},
				Alternatives: []workflow.Task{
					{
						Name: "manual-review",
						Run: func(context.Context) error {
							say("manual-review: human approved the order")
							return nil
						},
					},
					{
						Name:      "re-reserve-and-ship",
						DependsOn: []string{"manual-review"},
						Run: func(context.Context) error {
							say("re-reserve-and-ship: dispatched after review")
							return nil
						},
					},
				},
			},
		},
	}

	fmt.Println("== executing order-7841 ==")
	result, err := engine.Execute(ctx, process)
	if err != nil {
		return err
	}
	fmt.Println("== result ==")
	fmt.Printf("  ok=%v failed=%q\n", result.Ok, result.Failed)
	fmt.Printf("  completed:   %v\n", result.Completed)
	fmt.Printf("  compensated: %v\n", result.Compensated)
	return nil
}
