// Command lruow demonstrates §4.3 of the paper: the Long Running Unit Of
// Work model. An analyst spends a long time rehearsing changes to a
// product catalogue without holding a single lock; at performance time the
// work is confirmed only if its read predicates still hold. A concurrent
// price update invalidates the first rehearsal; the retry performs
// cleanly — optimistic long transactions with bounded lock windows.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/hls/lruow"
	"github.com/extendedtx/activityservice/internal/lockmgr"
	"github.com/extendedtx/activityservice/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lruow:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	svc := activityservice.New()
	catalogue := store.New()
	locks := lockmgr.New()
	catalogue.Put("widget/price", []byte("100"))
	catalogue.Put("widget/stock", []byte("50"))

	rehearse := func(name string) *lruow.UOW {
		u := lruow.Begin(svc, name, catalogue, locks, 100*time.Millisecond)
		price, _, _ := u.Read("widget/price")
		fmt.Printf("  [%s] rehearsal: read price=%s, planning 10%% discount\n", name, price)
		_ = u.Write("widget/price", []byte("90"))
		_ = u.Write("widget/discounted", []byte("true"))
		return u
	}

	fmt.Println("== rehearsal 1 (long-running, lock-free) ==")
	uow := rehearse("discount-1")

	// Meanwhile, someone else changes the price the rehearsal read.
	fmt.Println("  [interloper] price corrected to 120 while analyst works")
	catalogue.Put("widget/price", []byte("120"))

	fmt.Println("== performance 1 ==")
	err := uow.Complete(ctx)
	if !errors.Is(err, lruow.ErrStale) {
		return fmt.Errorf("expected stale rehearsal, got %v", err)
	}
	fmt.Println("  predicates stale -> work discarded, nothing written")
	if got, _, _ := catalogue.Get("widget/price"); string(got) != "120" {
		return fmt.Errorf("catalogue corrupted: %s", got)
	}

	fmt.Println("== rehearsal 2 (against current state) ==")
	uow2 := rehearse("discount-2")
	fmt.Println("== performance 2 ==")
	if err := uow2.Complete(ctx); err != nil {
		return err
	}
	price, _, _ := catalogue.Get("widget/price")
	disc, _, _ := catalogue.Get("widget/discounted")
	fmt.Printf("  performed: price=%s discounted=%s\n", price, disc)
	return nil
}
