// Command bulletinboard implements motivating example (i) of §2.1: posting
// to a bulletin board from inside a long application transaction. Holding
// board locks for the life of the enclosing transaction would make the
// board unreadable, so the post runs as an independent top-level
// transaction (open nested, §4.2) whose resources release immediately —
// and if the enclosing application transaction later aborts, a
// compensating activity retracts the post.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/hls/opennested"
	"github.com/extendedtx/activityservice/ots"
)

// board is the bulletin board: a list of posts behind a transactional Var.
type board struct {
	posts *ots.Var
	txs   *ots.Service
}

func newBoard() *board {
	return &board{
		posts: ots.NewVar("board", nil, ots.NewLockManager(), 100*time.Millisecond),
		txs:   ots.NewService(),
	}
}

// post appends a message in its own short top-level transaction, so board
// locks release immediately rather than being retained by the caller.
func (b *board) post(msg string) error {
	tx := b.txs.Begin()
	cur, err := b.posts.Get(tx)
	if err != nil {
		_ = tx.Rollback()
		return err
	}
	if err := b.posts.Set(tx, append(cur, []byte(msg+"\n")...)); err != nil {
		_ = tx.Rollback()
		return err
	}
	return tx.Commit(false)
}

// retract removes a message — the compensating activity.
func (b *board) retract(msg string) error {
	tx := b.txs.Begin()
	cur, err := b.posts.Get(tx)
	if err != nil {
		_ = tx.Rollback()
		return err
	}
	var out []byte
	for _, line := range splitLines(cur) {
		if line != msg {
			out = append(out, []byte(line+"\n")...)
		}
	}
	if err := b.posts.Set(tx, out); err != nil {
		_ = tx.Rollback()
		return err
	}
	return tx.Commit(false)
}

func (b *board) render() string {
	s := string(b.posts.Committed())
	if s == "" {
		return "  (empty)"
	}
	out := ""
	for _, line := range splitLines([]byte(s)) {
		out += "  | " + line + "\n"
	}
	return out[:len(out)-1]
}

func splitLines(b []byte) []string {
	var out []string
	start := 0
	for i, c := range b {
		if c == '\n' {
			out = append(out, string(b[start:i]))
			start = i + 1
		}
	}
	return out
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bulletinboard:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	svc := activityservice.New()
	bb := newBoard()

	scenario := func(title string, appCommits bool) error {
		fmt.Printf("== %s ==\n", title)
		// A: the enclosing application activity.
		appActivity, err := opennested.Begin(svc, "application", nil)
		if err != nil {
			return err
		}
		// B: the bulletin-board post as an independent top-level
		// transaction inside A.
		postActivity, err := opennested.Begin(svc, "post", appActivity)
		if err != nil {
			return err
		}
		msg := fmt.Sprintf("meeting moved to 15:00 (%s)", title)
		if _, err := postActivity.AddCompensation(svc, "retract",
			func(context.Context) error {
				fmt.Println("  compensating: retracting post")
				return bb.retract(msg)
			}); err != nil {
			return err
		}
		if err := bb.post(msg); err != nil {
			return err
		}
		// B commits: the post is visible immediately, board locks are free.
		if _, err := postActivity.Complete(ctx, true); err != nil {
			return err
		}
		fmt.Println("  post committed early; board readable while app continues:")
		fmt.Println(bb.render())

		// ... the application works on ...
		if _, err := appActivity.Complete(ctx, appCommits); err != nil {
			return err
		}
		fmt.Printf("  application %s; board now:\n", outcome(appCommits))
		fmt.Println(bb.render())
		return nil
	}

	if err := scenario("app commits", true); err != nil {
		return err
	}
	return scenario("app aborts", false)
}

func outcome(committed bool) string {
	if committed {
		return "committed"
	}
	return "aborted -> compensation ran"
}
