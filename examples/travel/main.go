// Command travel reproduces the paper's running example (figs. 1, 2 and
// §4.5): a long-running business activity booking a trip — taxi,
// restaurant, theatre, hotel — structured as BTP atoms enrolled in a
// cohesion. The hotel cannot be reserved, so the business logic cancels
// the preparations that depended on it and confirms an alternative
// confirm-set with the cinema instead, exactly the recovery fig. 2 draws.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/hls/btp"
)

// venue is a BTP participant: a bookable service owned by some other
// organisation.
type venue struct {
	name      string
	available bool
	state     string
}

func (v *venue) Prepare() error {
	if !v.available {
		return fmt.Errorf("%s: no availability", v.name)
	}
	v.state = "reserved"
	fmt.Printf("  %-10s reserved (prepared, not yet booked)\n", v.name)
	return nil
}

func (v *venue) Confirm() error {
	v.state = "booked"
	fmt.Printf("  %-10s BOOKED\n", v.name)
	return nil
}

func (v *venue) Cancel() error {
	if v.state == "reserved" {
		fmt.Printf("  %-10s released\n", v.name)
	}
	v.state = "released"
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "travel:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	svc := activityservice.New()

	venues := map[string]*venue{
		"taxi":       {name: "taxi", available: true},
		"restaurant": {name: "restaurant", available: true},
		"theatre":    {name: "theatre", available: true},
		"hotel":      {name: "hotel", available: false}, // t4 will abort
		"cinema":     {name: "cinema", available: true},
	}

	fmt.Println("== attempt 1: taxi + restaurant + theatre + hotel ==")
	cohesion := btp.NewCohesion("trip")
	for _, name := range []string{"taxi", "restaurant", "theatre", "hotel"} {
		atom, err := btp.NewAtom(svc, name)
		if err != nil {
			return err
		}
		if err := atom.EnrollNamed(name, venues[name]); err != nil {
			return err
		}
		cohesion.Enroll(atom)
	}
	err := cohesion.Confirm(ctx, []string{"taxi", "restaurant", "theatre", "hotel"})
	if !errors.Is(err, btp.ErrCancelled) {
		return fmt.Errorf("expected the hotel to sink the confirm-set, got %v", err)
	}
	fmt.Println("  hotel could not prepare -> whole confirm-set cancelled")

	fmt.Println("== attempt 2 (after compensation): taxi + cinema ==")
	// New atoms: BTP signal sets are single-use (fig. 7 of the paper).
	svc2 := activityservice.New()
	retry := btp.NewCohesion("trip-2")
	for _, name := range []string{"taxi", "cinema"} {
		venues[name].state = ""
		atom, err := btp.NewAtom(svc2, name)
		if err != nil {
			return err
		}
		if err := atom.EnrollNamed(name, venues[name]); err != nil {
			return err
		}
		retry.Enroll(atom)
	}
	if err := retry.Confirm(ctx, []string{"taxi", "cinema"}); err != nil {
		return err
	}

	fmt.Println("== final state ==")
	for _, name := range []string{"taxi", "restaurant", "theatre", "hotel", "cinema"} {
		fmt.Printf("  %-10s %s\n", name, orDash(venues[name].state))
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
