// Command nameserver implements motivating example (ii) of §2.1: an
// application transaction discovers that a replica is unavailable and
// updates the name service database accordingly while carrying on. That
// naming update must NOT be undone if the application transaction later
// aborts — replica liveness is a fact about the world, not application
// state. The update therefore runs as an independent top-level transaction
// (open nested) with no compensation registered, and the example also
// exercises distribution: the name service lives behind the GIOP-lite ORB.
package main

import (
	"context"
	"fmt"
	"os"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/hls/opennested"
	"github.com/extendedtx/activityservice/orb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nameserver:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()

	// The name service node.
	serverORB := orb.New()
	defer serverORB.Shutdown()
	ns := orb.NewNameServer()
	ns.Serve(serverORB)
	endpoint, err := serverORB.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Println("name service listening at", endpoint)

	// Bind two replicas of a persistent object.
	replica1 := orb.NewIOR("IDL:App/Account:1.0", "acct-r1", "tcp:10.0.0.1:9001", "tcp:10.0.0.3:9001")
	replica2 := orb.NewIOR("IDL:App/Account:1.0", "acct-r2", "tcp:10.0.0.2:9001")

	clientORB := orb.New()
	defer clientORB.Shutdown()
	naming := orb.NewNameClient(clientORB, orb.NameServiceAt(endpoint))
	if err := naming.Bind(ctx, "accounts/primary", replica1); err != nil {
		return err
	}
	if err := naming.Bind(ctx, "accounts/backup", replica2); err != nil {
		return err
	}

	// The application activity begins its (soon to fail) transaction.
	svc := activityservice.New()
	app, err := opennested.Begin(svc, "application-tx", nil)
	if err != nil {
		return err
	}

	fmt.Println("application: primary replica unreachable; updating naming database")
	// The naming update is an independent top-level unit: no propagation,
	// no compensation — "There is no reason to undo these naming service
	// updates should the application transaction subsequently abort."
	update, err := opennested.Begin(svc, "naming-update", nil)
	if err != nil {
		return err
	}
	if err := naming.Bind(ctx, "accounts/primary", replica2); err != nil {
		return err
	}
	if err := naming.Unbind(ctx, "accounts/backup"); err != nil {
		return err
	}
	if _, err := update.Complete(ctx, true); err != nil {
		return err
	}

	// The application transaction aborts...
	if _, err := app.Complete(ctx, false); err != nil {
		return err
	}
	fmt.Println("application: transaction aborted")

	// ...but the naming update survives.
	got, err := naming.Resolve(ctx, "accounts/primary")
	if err != nil {
		return err
	}
	fmt.Printf("accounts/primary now -> %s (survived the abort)\n", got.Key)
	names, err := naming.List(ctx)
	if err != nil {
		return err
	}
	fmt.Println("bindings:", names)
	return nil
}
