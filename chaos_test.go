// Distributed failure-injection tests: chaos-transport scenarios driving
// the extended-transaction models over a faulty network — the partitions,
// resets and slow links that "a network of systems connected indirectly by
// some distribution infrastructure" actually produces. Each scenario
// asserts the model's documented outcome and recovery behaviour, and runs
// deterministically (the faults are rule-driven, not probabilistic).
package activityservice_test

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/hls/btp"
	"github.com/extendedtx/activityservice/hls/twopc"
	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/orb"
	"github.com/extendedtx/activityservice/ots"
)

// chaosResource is a 2PC participant counting every protocol verb it sees.
type chaosResource struct {
	prepares, commits, rollbacks atomic.Int32
}

func (r *chaosResource) Prepare() (ots.Vote, error) { r.prepares.Add(1); return ots.VoteCommit, nil }
func (r *chaosResource) Commit() error              { r.commits.Add(1); return nil }
func (r *chaosResource) Rollback() error            { r.rollbacks.Add(1); return nil }
func (r *chaosResource) CommitOnePhase() error      { r.commits.Add(1); return nil }
func (r *chaosResource) Forget() error              { return nil }

// exportChaosResource hosts a 2PC participant on its own node and returns
// the reference a coordinator enlists.
func exportChaosResource(t *testing.T, r *chaosResource) orb.IOR {
	t.Helper()
	node := orb.New()
	t.Cleanup(node.Shutdown)
	ref := orb.ExportAction(node, twopc.NewResourceAction(r))
	if _, err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = node.IOR(ref.Key)
	return ref
}

// TestChaosResetBetweenPrepareAndCommit injects a connection reset exactly
// between the two phases of a remote 2PC: both participants vote, then the
// transport dies before the first commit signal leaves the coordinator.
// Documented behaviour: the commit decision stands; at-least-once delivery
// re-dials through the pool and re-drives phase two, so both participants
// commit exactly once.
func TestChaosResetBetweenPrepareAndCommit(t *testing.T) {
	ctx := context.Background()
	p1, p2 := &chaosResource{}, &chaosResource{}
	ref1 := exportChaosResource(t, p1)
	ref2 := exportChaosResource(t, p2)

	chaos := orb.NewChaosTransport(nil)
	clientORB := orb.New(orb.WithHealthRegistry(orb.NewHealthRegistry()),
		orb.WithTransport(chaos), orb.WithCallTimeout(2*time.Second))
	defer clientORB.Shutdown()
	// The third process_signal request is the first commit (after the two
	// prepares): reset the connection before it is sent.
	fault := chaos.Inject(orb.ChaosRule{
		Op: "process_signal", Stage: orb.StageRequest, After: 2, Count: 1, Reset: true,
	})

	svc := activityservice.New(activityservice.WithRetryPolicy(
		activityservice.RetryPolicy{Attempts: 3, Backoff: 5 * time.Millisecond}))
	coord := twopc.NewCoordinator(svc)
	tx, err := coord.Begin("reset-between-phases")
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.EnlistAction(orb.ImportAction(clientORB, ref1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.EnlistAction(orb.ImportAction(clientORB, ref2)); err != nil {
		t.Fatal(err)
	}

	committed, err := tx.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !committed {
		t.Fatal("transaction rolled back; a reset between phases must not change the commit decision")
	}
	if fault.Hits() != 1 {
		t.Fatalf("reset fired %d times, want exactly 1", fault.Hits())
	}
	for i, p := range []*chaosResource{p1, p2} {
		if got := p.prepares.Load(); got != 1 {
			t.Errorf("participant %d prepared %d times, want 1", i+1, got)
		}
		if got := p.commits.Load(); got != 1 {
			t.Errorf("participant %d committed %d times, want 1 (retried delivery, not re-execution)", i+1, got)
		}
		if got := p.rollbacks.Load(); got != 0 {
			t.Errorf("participant %d rolled back %d times, want 0", i+1, got)
		}
	}
}

// chaosBTPParticipant is a remote BTP participant speaking the btp signal
// protocol directly, with idempotent confirm/cancel as the spec demands.
type chaosBTPParticipant struct {
	prepared, confirmed, cancelled atomic.Int32
}

func (p *chaosBTPParticipant) action() activityservice.Action {
	return activityservice.ActionFunc(
		func(_ context.Context, sig activityservice.Signal) (activityservice.Outcome, error) {
			switch sig.Name {
			case btp.SignalPrepare:
				p.prepared.Add(1)
				return activityservice.Outcome{Name: btp.OutcomePrepared}, nil
			case btp.SignalConfirm:
				p.confirmed.Add(1)
				return activityservice.Outcome{Name: btp.OutcomeConfirmed}, nil
			default:
				p.cancelled.Add(1)
				return activityservice.Outcome{Name: btp.OutcomeCancelled}, nil
			}
		})
}

// TestChaosPartitionDuringConfirm partitions the network in the
// server→client direction while a prepared BTP atom confirms: confirm
// requests reach the participants, every acknowledgement is lost, and the
// coordinator's calls time out. Documented behaviour: confirm is
// at-least-once and participant confirm is idempotent, so the atom still
// reports confirmed, the participants converge on confirmed, and after the
// partition heals the transport works again.
func TestChaosPartitionDuringConfirm(t *testing.T) {
	ctx := context.Background()
	p1, p2 := &chaosBTPParticipant{}, &chaosBTPParticipant{}

	node := orb.New()
	defer node.Shutdown()
	if _, err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	refs := make([]orb.IOR, 2)
	for i, p := range []*chaosBTPParticipant{p1, p2} {
		ref := orb.ExportAction(node, p.action())
		refs[i], _ = node.IOR(ref.Key)
	}

	chaos := orb.NewChaosTransport(nil)
	clientORB := orb.New(orb.WithHealthRegistry(orb.NewHealthRegistry()),
		orb.WithTransport(chaos), orb.WithCallTimeout(100*time.Millisecond))
	defer clientORB.Shutdown()

	svc := activityservice.New(activityservice.WithRetryPolicy(
		activityservice.RetryPolicy{Attempts: 2, Backoff: time.Millisecond}))
	atom, err := btp.NewAtom(svc, "partitioned-confirm")
	if err != nil {
		t.Fatal(err)
	}
	atom.SetDelivery(activityservice.DeliveryPolicy{Mode: activityservice.DeliverSerial})
	for i, label := range []string{"p1", "p2"} {
		proxy := orb.ImportAction(clientORB, refs[i])
		if _, err := atom.Activity().AddNamedAction(btp.PrepareSetName, label, proxy); err != nil {
			t.Fatal(err)
		}
		if _, err := atom.Activity().AddNamedAction(btp.CompleteSetName, label, proxy); err != nil {
			t.Fatal(err)
		}
	}

	if err := atom.Prepare(ctx); err != nil {
		t.Fatalf("prepare over healthy network: %v", err)
	}

	chaos.PartitionRecv(true)
	start := time.Now()
	if err := atom.Confirm(ctx); err != nil {
		t.Fatalf("confirm during partition: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("confirm returned in %s; it should have waited out lost acknowledgements", elapsed)
	}
	if st := atom.State(); st != btp.AtomConfirmed {
		t.Fatalf("atom state = %s, want confirmed", st)
	}

	// The requests crossed the partition even though the acks did not:
	// participants converge on confirmed (possibly via idempotent
	// redelivery).
	deadline := time.Now().Add(2 * time.Second)
	for _, p := range []*chaosBTPParticipant{p1, p2} {
		for p.confirmed.Load() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("participant never saw confirm despite one-way partition")
			}
			time.Sleep(5 * time.Millisecond)
		}
		if got := p.cancelled.Load(); got != 0 {
			t.Fatalf("participant cancelled %d times during confirm", got)
		}
	}

	// Recovery: heal the partition and run a fresh atom end to end.
	chaos.Heal()
	p3 := &chaosBTPParticipant{}
	ref := orb.ExportAction(node, p3.action())
	ref, _ = node.IOR(ref.Key)
	atom2, err := btp.NewAtom(svc, "after-heal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atom2.Activity().AddNamedAction(btp.PrepareSetName, "p3", orb.ImportAction(clientORB, ref)); err != nil {
		t.Fatal(err)
	}
	if _, err := atom2.Activity().AddNamedAction(btp.CompleteSetName, "p3", orb.ImportAction(clientORB, ref)); err != nil {
		t.Fatal(err)
	}
	if err := atom2.Prepare(ctx); err != nil {
		t.Fatalf("prepare after heal: %v", err)
	}
	if err := atom2.Confirm(ctx); err != nil {
		t.Fatalf("confirm after heal: %v", err)
	}
	if p3.confirmed.Load() == 0 {
		t.Fatal("post-heal participant never confirmed")
	}
}

// TestChaosSlowParticipantTimeout runs a remote 2PC where one participant
// sits behind a link slower than the call timeout. Documented behaviour:
// its prepare times out, the delivery failure dooms the vote, and the
// healthy participant is rolled back — the slow node never commits.
func TestChaosSlowParticipantTimeout(t *testing.T) {
	ctx := context.Background()
	healthy, slow := &chaosResource{}, &chaosResource{}
	healthyRef := exportChaosResource(t, healthy)
	slowRef := exportChaosResource(t, slow)

	healthyORB := orb.New()
	defer healthyORB.Shutdown()
	chaos := orb.NewChaosTransport(nil)
	slowORB := orb.New(orb.WithHealthRegistry(orb.NewHealthRegistry()),
		orb.WithTransport(chaos), orb.WithCallTimeout(100*time.Millisecond))
	defer slowORB.Shutdown()
	chaos.Inject(orb.ChaosRule{Latency: 400 * time.Millisecond}) // every request crawls

	svc := activityservice.New(activityservice.WithRetryPolicy(
		activityservice.RetryPolicy{Attempts: 2, Backoff: time.Millisecond}))
	coord := twopc.NewCoordinator(svc)
	tx, err := coord.Begin("slow-participant")
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.EnlistAction(orb.ImportAction(healthyORB, healthyRef)); err != nil {
		t.Fatal(err)
	}
	if err := tx.EnlistAction(orb.ImportAction(slowORB, slowRef)); err != nil {
		t.Fatal(err)
	}

	committed, err := tx.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("committed despite a participant slower than the call timeout")
	}
	if got := healthy.prepares.Load(); got != 1 {
		t.Fatalf("healthy participant prepared %d times, want 1", got)
	}
	if got := healthy.rollbacks.Load(); got != 1 {
		t.Fatalf("healthy participant rolled back %d times, want 1 (released after the doomed vote)", got)
	}
	if got := healthy.commits.Load(); got != 0 {
		t.Fatalf("healthy participant committed %d times, want 0", got)
	}
	// The slow node's requests may still land late, but the commit decision
	// never reaches it.
	time.Sleep(500 * time.Millisecond)
	if got := slow.commits.Load(); got != 0 {
		t.Fatalf("slow participant committed %d times, want 0", got)
	}
}

// TestChaosSaturationShedsFastAndConverges is the overload scenario the
// admission controller exists for: a slow servant behind a dispatch-bounded
// server takes fan-in far above its limit. Documented behaviour: the bound
// holds (in-flight dispatches never exceed it), excess callers are shed
// fast with TRANSIENT instead of queueing behind the slow work, the
// server's goroutine count stays bounded instead of growing with fan-in —
// and once the load drops, a 2PC on the same node still converges cleanly.
func TestChaosSaturationShedsFastAndConverges(t *testing.T) {
	const (
		maxInflight = 4
		queueDepth  = 4
		fanIn       = 64
		servantWork = 100 * time.Millisecond
	)
	node := orb.New(
		orb.WithMaxInflight(maxInflight),
		orb.WithAdmissionQueue(queueDepth, 50*time.Millisecond),
	)
	defer node.Shutdown()
	// The servant gauges its own dispatch concurrency: the ground truth
	// the admission bound must hold end to end.
	var cur, peakConcurrent atomic.Int32
	slowRef := node.RegisterServant("IDL:test/Slow:1.0", orb.ServantFunc(
		func(ctx context.Context, op string, _ *cdr.Decoder) ([]byte, error) {
			c := cur.Add(1)
			defer cur.Add(-1)
			for {
				p := peakConcurrent.Load()
				if c <= p || peakConcurrent.CompareAndSwap(p, c) {
					break
				}
			}
			select {
			case <-time.After(servantWork):
			case <-ctx.Done():
			}
			return []byte("done"), nil
		}))
	p1, p2 := &chaosResource{}, &chaosResource{}
	refs := make([]orb.IOR, 2)
	for i, p := range []*chaosResource{p1, p2} {
		ref := orb.ExportAction(node, twopc.NewResourceAction(p))
		refs[i] = ref
	}
	if _, err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	slowRef, _ = node.IOR(slowRef.Key)
	for i := range refs {
		refs[i], _ = node.IOR(refs[i].Key)
	}

	client := orb.New(orb.WithHealthRegistry(orb.NewHealthRegistry()),
		orb.WithPoolSize(8), orb.WithCallTimeout(5*time.Second))
	defer client.Shutdown()

	g0 := runtime.NumGoroutine()
	peakGoroutines, stopWatch := watchGoroutinePeak()

	type result struct {
		err     error
		elapsed time.Duration
	}
	results := make([]result, fanIn)
	var wg sync.WaitGroup
	for i := 0; i < fanIn; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			_, err := client.Invoke(context.Background(), slowRef, "work", nil)
			results[i] = result{err: err, elapsed: time.Since(start)}
		}()
	}
	wg.Wait()
	stopWatch()

	succ, shed := 0, 0
	for i, r := range results {
		switch {
		case r.err == nil:
			succ++
		case orb.IsSystem(r.err, orb.CodeTransient):
			shed++
			if !strings.Contains(r.err.Error(), "overloaded") {
				t.Errorf("call %d: shed error %v, want admission shed detail", i, r.err)
			}
			if r.elapsed >= servantWork {
				t.Errorf("call %d: shed after %s, want rejection faster than the %s servant",
					i, r.elapsed, servantWork)
			}
		default:
			t.Errorf("call %d: unexpected error %v", i, r.err)
		}
	}
	if succ == 0 || shed == 0 {
		t.Fatalf("successes = %d, sheds = %d, want both > 0 at saturation", succ, shed)
	}
	if peak := peakConcurrent.Load(); peak > maxInflight {
		t.Fatalf("servant saw %d concurrent dispatches, want <= %d", peak, maxInflight)
	}
	// The goroutine guard: with admission the server adds at most
	// maxInflight+queueDepth handlers plus one shed writer per connection
	// on top of the fan-in's caller goroutines and the connection read
	// loops (~fanIn + 40 total); without admission, every one of the fanIn
	// requests would hold a dispatch goroutine for the full servant
	// latency (~2×fanIn + 25).
	if peak := peakGoroutines.Load(); peak >= int64(g0+2*fanIn) {
		t.Fatalf("goroutines peaked at %d (baseline %d): dispatch pile-up at saturation", peak, g0)
	}

	// Load has dropped: coordinator outcomes on the same node converge.
	svc := activityservice.New(activityservice.WithRetryPolicy(
		activityservice.RetryPolicy{Attempts: 3, Backoff: 5 * time.Millisecond}))
	coord := twopc.NewCoordinator(svc)
	tx, err := coord.Begin("after-saturation")
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range refs {
		if err := tx.EnlistAction(orb.ImportAction(client, ref)); err != nil {
			t.Fatal(err)
		}
	}
	committed, err := tx.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !committed {
		t.Fatal("2PC after saturation rolled back; admission must not poison the node")
	}
	for i, p := range []*chaosResource{p1, p2} {
		if got := p.commits.Load(); got != 1 {
			t.Errorf("participant %d committed %d times, want 1", i+1, got)
		}
	}
}

// TestChaosFlappingEndpointBreakerCapsProbes is the flap scenario the
// retry budget and circuit breaker exist for: both participants of a 2PC
// vote commit, then the network eats every request (a one-way flap) while
// at-least-once delivery retries phase two. Documented behaviour: after
// the breaker's threshold the retries stop reaching the network — probe
// traffic is capped at one per half-open window (asserted via
// EndpointStats) instead of one per retry — and when the flap heals, the
// commit decision still redelivers: both participants commit exactly once.
func TestChaosFlappingEndpointBreakerCapsProbes(t *testing.T) {
	const (
		openFor   = 80 * time.Millisecond
		downFor   = 350 * time.Millisecond
		threshold = 2
	)
	ctx := context.Background()
	p1, p2 := &chaosResource{}, &chaosResource{}

	node := orb.New()
	defer node.Shutdown()
	refs := make([]orb.IOR, 2)
	for i, p := range []*chaosResource{p1, p2} {
		ref := orb.ExportAction(node, twopc.NewResourceAction(p))
		refs[i] = ref
	}
	if _, err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	for i := range refs {
		refs[i], _ = node.IOR(refs[i].Key)
	}

	chaos := orb.NewChaosTransport(nil)
	clientORB := orb.New(
		orb.WithHealthRegistry(orb.NewHealthRegistry()),
		orb.WithTransport(chaos),
		orb.WithCallTimeout(50*time.Millisecond),
		orb.WithCircuitBreaker(threshold, openFor),
		orb.WithRetryBudget(100, 5),
		orb.WithReconnectBackoff(time.Millisecond, 5*time.Millisecond),
	)
	defer clientORB.Shutdown()
	// The first two process_signal requests are the prepares; everything
	// after them vanishes into the flap until it heals.
	fault := chaos.Inject(orb.ChaosRule{
		Op: "process_signal", Stage: orb.StageRequest, After: 2, Drop: true,
	})

	svc := activityservice.New(activityservice.WithRetryPolicy(
		activityservice.RetryPolicy{Attempts: 60, Backoff: 20 * time.Millisecond}))
	coord := twopc.NewCoordinator(svc)
	tx, err := coord.Begin("flapping-endpoint")
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range refs {
		if err := tx.EnlistAction(orb.ImportAction(clientORB, ref)); err != nil {
			t.Fatal(err)
		}
	}

	type outcome struct {
		committed bool
		err       error
	}
	done := make(chan outcome, 1)
	start := time.Now()
	go func() {
		committed, err := tx.Commit(ctx)
		done <- outcome{committed, err}
	}()

	// Let phase two grind against the flap, then heal it.
	time.Sleep(downFor)
	fault.Remove()

	var out outcome
	select {
	case out = <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("2PC never converged after the flap healed")
	}
	if out.err != nil {
		t.Fatal(out.err)
	}
	if !out.committed {
		t.Fatal("transaction rolled back; a flap during phase two must not change the decision")
	}
	elapsed := time.Since(start)

	for i, p := range []*chaosResource{p1, p2} {
		if got := p.prepares.Load(); got != 1 {
			t.Errorf("participant %d prepared %d times, want 1", i+1, got)
		}
		if got := p.commits.Load(); got != 1 {
			t.Errorf("participant %d committed %d times, want 1 (redelivered after the flap)", i+1, got)
		}
		if got := p.rollbacks.Load(); got != 0 {
			t.Errorf("participant %d rolled back %d times, want 0", i+1, got)
		}
	}

	st, ok := clientORB.EndpointStats(refs[0].Endpoint())
	if !ok {
		t.Fatal("no endpoint stats for the flapping endpoint")
	}
	if st.BreakerOpens == 0 {
		t.Fatalf("stats = %+v, want the breaker to have opened during the flap", st)
	}
	if st.Breaker != orb.BreakerClosed {
		t.Fatalf("stats = %+v, want a closed breaker after recovery", st)
	}
	// The probe cap: at most one admitted probe per half-open window over
	// the whole run (plus slack for the closing probe), instead of one
	// network attempt per retry.
	maxProbes := uint64(elapsed/openFor) + 2
	if st.BreakerProbes == 0 || st.BreakerProbes > maxProbes {
		t.Fatalf("breaker admitted %d probes over %s, want 1..%d (<= 1 per %s window)",
			st.BreakerProbes, elapsed.Round(time.Millisecond), maxProbes, openFor)
	}
	// And the wire agrees: the flap ate the pre-breaker attempts and the
	// in-flap probes, not a retry storm.
	if hits := fault.Hits(); hits > threshold+int(maxProbes) {
		t.Fatalf("%d requests reached the flapping link, want <= threshold+probes = %d",
			hits, threshold+int(maxProbes))
	}
}

// TestChaosFailoverCommitConvergesViaBackupProfile is the multi-profile
// failover scenario the IOR redesign exists for: both 2PC participants are
// replicated behind two-profile references (a primary and a backup node
// serving the same servant keys), the primary endpoint is hard-reset
// between prepare and commit — every further frame toward it kills the
// connection — and the commit must converge through the backup profile
// within the same Invoke. Documented behaviour: the commit decision
// stands, each participant commits exactly once (the reset happened
// before any commit was delivered, so failover cannot duplicate), the
// client's breaker opens on the dead profile only, and the backup profile
// stays clean.
func TestChaosFailoverCommitConvergesViaBackupProfile(t *testing.T) {
	ctx := context.Background()
	r1, r2 := &chaosResource{}, &chaosResource{}

	// Two nodes serving the same participants under the same keys: the
	// replicated-participant deployment the ROADMAP points at. The action
	// state (including the recorded vote) is shared between the nodes, as
	// a real replicated participant's durable state would be — the wire
	// endpoints are what differ.
	a1, a2 := twopc.NewResourceAction(r1), twopc.NewResourceAction(r2)
	newNode := func() *orb.ORB {
		node := orb.New()
		t.Cleanup(node.Shutdown)
		orb.ExportActionWithKey(node, "part-1", a1)
		orb.ExportActionWithKey(node, "part-2", a2)
		return node
	}
	primary, backup := newNode(), newNode()
	ep1, err := primary.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := backup.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ref1 := orb.NewIOR("IDL:ActivityService/Action:1.0", "part-1", ep1, ep2)
	ref2 := orb.NewIOR("IDL:ActivityService/Action:1.0", "part-2", ep1, ep2)

	chaos := orb.NewChaosTransport(nil)
	clientORB := orb.New(
		orb.WithTransport(chaos),
		orb.WithHealthRegistry(orb.NewHealthRegistry()),
		orb.WithCallTimeout(2*time.Second),
		orb.WithCircuitBreaker(2, 5*time.Second),
	)
	defer clientORB.Shutdown()
	// The first two process_signal requests toward the primary are the
	// prepares; after them, the primary endpoint is hard-reset: every
	// further frame kills its connection before leaving.
	fault := chaos.Inject(orb.ChaosRule{
		Op: "process_signal", Addr: ep1, Stage: orb.StageRequest, After: 2, Reset: true,
	})

	svc := activityservice.New(activityservice.WithRetryPolicy(
		activityservice.RetryPolicy{Attempts: 3, Backoff: 5 * time.Millisecond}))
	coord := twopc.NewCoordinator(svc)
	tx, err := coord.Begin("failover-between-phases")
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.EnlistAction(orb.ImportAction(clientORB, ref1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.EnlistAction(orb.ImportAction(clientORB, ref2)); err != nil {
		t.Fatal(err)
	}

	committed, err := tx.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !committed {
		t.Fatal("transaction rolled back; losing the primary endpoint between phases must not change the decision")
	}
	if fault.Hits() == 0 {
		t.Fatal("the reset rule never fired: the scenario did not exercise failover")
	}
	for i, r := range []*chaosResource{r1, r2} {
		if got := r.prepares.Load(); got != 1 {
			t.Errorf("participant %d prepared %d times, want 1", i+1, got)
		}
		if got := r.commits.Load(); got != 1 {
			t.Errorf("participant %d committed %d times, want exactly 1 (failover, not duplication)", i+1, got)
		}
		if got := r.rollbacks.Load(); got != 0 {
			t.Errorf("participant %d rolled back %d times, want 0", i+1, got)
		}
	}

	// The breaker verdict localizes the failure to the dead profile.
	pst, ok := clientORB.EndpointStats(ep1)
	if !ok || pst.BreakerOpens == 0 {
		t.Fatalf("primary endpoint stats = %+v, want the breaker to have opened on the dead profile", pst)
	}
	bst, ok := clientORB.EndpointStats(ep2)
	if !ok {
		t.Fatal("no stats for the backup endpoint")
	}
	if bst.BreakerOpens != 0 || bst.Breaker == orb.BreakerOpen || bst.Down {
		t.Fatalf("backup endpoint stats = %+v, want a clean healthy profile", bst)
	}

	// And the failover is sticky: a fresh 2PC on the same references runs
	// entirely through the backup, without touching the dead primary.
	hitsBefore := fault.Hits()
	tx2, err := coord.Begin("after-failover")
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.EnlistAction(orb.ImportAction(clientORB, ref1)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.EnlistAction(orb.ImportAction(clientORB, ref2)); err != nil {
		t.Fatal(err)
	}
	committed, err = tx2.Commit(ctx)
	if err != nil || !committed {
		t.Fatalf("post-failover 2PC: committed=%v err=%v", committed, err)
	}
	if got := fault.Hits(); got != hitsBefore {
		t.Fatalf("post-failover 2PC sent %d frames at the dead primary, want 0 (sticky affinity)", got-hitsBefore)
	}
	if got := r1.commits.Load(); got != 2 {
		t.Fatalf("participant 1 committed %d times after second tx, want 2", got)
	}
}
