// Distributed failure-injection tests: chaos-transport scenarios driving
// the extended-transaction models over a faulty network — the partitions,
// resets and slow links that "a network of systems connected indirectly by
// some distribution infrastructure" actually produces. Each scenario
// asserts the model's documented outcome and recovery behaviour, and runs
// deterministically (the faults are rule-driven, not probabilistic).
package activityservice_test

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/hls/btp"
	"github.com/extendedtx/activityservice/hls/twopc"
	"github.com/extendedtx/activityservice/orb"
	"github.com/extendedtx/activityservice/ots"
)

// chaosResource is a 2PC participant counting every protocol verb it sees.
type chaosResource struct {
	prepares, commits, rollbacks atomic.Int32
}

func (r *chaosResource) Prepare() (ots.Vote, error) { r.prepares.Add(1); return ots.VoteCommit, nil }
func (r *chaosResource) Commit() error              { r.commits.Add(1); return nil }
func (r *chaosResource) Rollback() error            { r.rollbacks.Add(1); return nil }
func (r *chaosResource) CommitOnePhase() error      { r.commits.Add(1); return nil }
func (r *chaosResource) Forget() error              { return nil }

// exportChaosResource hosts a 2PC participant on its own node and returns
// the reference a coordinator enlists.
func exportChaosResource(t *testing.T, r *chaosResource) orb.IOR {
	t.Helper()
	node := orb.New()
	t.Cleanup(node.Shutdown)
	ref := orb.ExportAction(node, twopc.NewResourceAction(r))
	if _, err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = node.IOR(ref.Key)
	return ref
}

// TestChaosResetBetweenPrepareAndCommit injects a connection reset exactly
// between the two phases of a remote 2PC: both participants vote, then the
// transport dies before the first commit signal leaves the coordinator.
// Documented behaviour: the commit decision stands; at-least-once delivery
// re-dials through the pool and re-drives phase two, so both participants
// commit exactly once.
func TestChaosResetBetweenPrepareAndCommit(t *testing.T) {
	ctx := context.Background()
	p1, p2 := &chaosResource{}, &chaosResource{}
	ref1 := exportChaosResource(t, p1)
	ref2 := exportChaosResource(t, p2)

	chaos := orb.NewChaosTransport(nil)
	clientORB := orb.New(orb.WithTransport(chaos), orb.WithCallTimeout(2*time.Second))
	defer clientORB.Shutdown()
	// The third process_signal request is the first commit (after the two
	// prepares): reset the connection before it is sent.
	fault := chaos.Inject(orb.ChaosRule{
		Op: "process_signal", Stage: orb.StageRequest, After: 2, Count: 1, Reset: true,
	})

	svc := activityservice.New(activityservice.WithRetryPolicy(
		activityservice.RetryPolicy{Attempts: 3, Backoff: 5 * time.Millisecond}))
	coord := twopc.NewCoordinator(svc)
	tx, err := coord.Begin("reset-between-phases")
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.EnlistAction(orb.ImportAction(clientORB, ref1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.EnlistAction(orb.ImportAction(clientORB, ref2)); err != nil {
		t.Fatal(err)
	}

	committed, err := tx.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !committed {
		t.Fatal("transaction rolled back; a reset between phases must not change the commit decision")
	}
	if fault.Hits() != 1 {
		t.Fatalf("reset fired %d times, want exactly 1", fault.Hits())
	}
	for i, p := range []*chaosResource{p1, p2} {
		if got := p.prepares.Load(); got != 1 {
			t.Errorf("participant %d prepared %d times, want 1", i+1, got)
		}
		if got := p.commits.Load(); got != 1 {
			t.Errorf("participant %d committed %d times, want 1 (retried delivery, not re-execution)", i+1, got)
		}
		if got := p.rollbacks.Load(); got != 0 {
			t.Errorf("participant %d rolled back %d times, want 0", i+1, got)
		}
	}
}

// chaosBTPParticipant is a remote BTP participant speaking the btp signal
// protocol directly, with idempotent confirm/cancel as the spec demands.
type chaosBTPParticipant struct {
	prepared, confirmed, cancelled atomic.Int32
}

func (p *chaosBTPParticipant) action() activityservice.Action {
	return activityservice.ActionFunc(
		func(_ context.Context, sig activityservice.Signal) (activityservice.Outcome, error) {
			switch sig.Name {
			case btp.SignalPrepare:
				p.prepared.Add(1)
				return activityservice.Outcome{Name: btp.OutcomePrepared}, nil
			case btp.SignalConfirm:
				p.confirmed.Add(1)
				return activityservice.Outcome{Name: btp.OutcomeConfirmed}, nil
			default:
				p.cancelled.Add(1)
				return activityservice.Outcome{Name: btp.OutcomeCancelled}, nil
			}
		})
}

// TestChaosPartitionDuringConfirm partitions the network in the
// server→client direction while a prepared BTP atom confirms: confirm
// requests reach the participants, every acknowledgement is lost, and the
// coordinator's calls time out. Documented behaviour: confirm is
// at-least-once and participant confirm is idempotent, so the atom still
// reports confirmed, the participants converge on confirmed, and after the
// partition heals the transport works again.
func TestChaosPartitionDuringConfirm(t *testing.T) {
	ctx := context.Background()
	p1, p2 := &chaosBTPParticipant{}, &chaosBTPParticipant{}

	node := orb.New()
	defer node.Shutdown()
	if _, err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	refs := make([]orb.IOR, 2)
	for i, p := range []*chaosBTPParticipant{p1, p2} {
		ref := orb.ExportAction(node, p.action())
		refs[i], _ = node.IOR(ref.Key)
	}

	chaos := orb.NewChaosTransport(nil)
	clientORB := orb.New(orb.WithTransport(chaos), orb.WithCallTimeout(100*time.Millisecond))
	defer clientORB.Shutdown()

	svc := activityservice.New(activityservice.WithRetryPolicy(
		activityservice.RetryPolicy{Attempts: 2, Backoff: time.Millisecond}))
	atom, err := btp.NewAtom(svc, "partitioned-confirm")
	if err != nil {
		t.Fatal(err)
	}
	atom.SetDelivery(activityservice.DeliveryPolicy{Mode: activityservice.DeliverSerial})
	for i, label := range []string{"p1", "p2"} {
		proxy := orb.ImportAction(clientORB, refs[i])
		if _, err := atom.Activity().AddNamedAction(btp.PrepareSetName, label, proxy); err != nil {
			t.Fatal(err)
		}
		if _, err := atom.Activity().AddNamedAction(btp.CompleteSetName, label, proxy); err != nil {
			t.Fatal(err)
		}
	}

	if err := atom.Prepare(ctx); err != nil {
		t.Fatalf("prepare over healthy network: %v", err)
	}

	chaos.PartitionRecv(true)
	start := time.Now()
	if err := atom.Confirm(ctx); err != nil {
		t.Fatalf("confirm during partition: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("confirm returned in %s; it should have waited out lost acknowledgements", elapsed)
	}
	if st := atom.State(); st != btp.AtomConfirmed {
		t.Fatalf("atom state = %s, want confirmed", st)
	}

	// The requests crossed the partition even though the acks did not:
	// participants converge on confirmed (possibly via idempotent
	// redelivery).
	deadline := time.Now().Add(2 * time.Second)
	for _, p := range []*chaosBTPParticipant{p1, p2} {
		for p.confirmed.Load() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("participant never saw confirm despite one-way partition")
			}
			time.Sleep(5 * time.Millisecond)
		}
		if got := p.cancelled.Load(); got != 0 {
			t.Fatalf("participant cancelled %d times during confirm", got)
		}
	}

	// Recovery: heal the partition and run a fresh atom end to end.
	chaos.Heal()
	p3 := &chaosBTPParticipant{}
	ref := orb.ExportAction(node, p3.action())
	ref, _ = node.IOR(ref.Key)
	atom2, err := btp.NewAtom(svc, "after-heal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atom2.Activity().AddNamedAction(btp.PrepareSetName, "p3", orb.ImportAction(clientORB, ref)); err != nil {
		t.Fatal(err)
	}
	if _, err := atom2.Activity().AddNamedAction(btp.CompleteSetName, "p3", orb.ImportAction(clientORB, ref)); err != nil {
		t.Fatal(err)
	}
	if err := atom2.Prepare(ctx); err != nil {
		t.Fatalf("prepare after heal: %v", err)
	}
	if err := atom2.Confirm(ctx); err != nil {
		t.Fatalf("confirm after heal: %v", err)
	}
	if p3.confirmed.Load() == 0 {
		t.Fatal("post-heal participant never confirmed")
	}
}

// TestChaosSlowParticipantTimeout runs a remote 2PC where one participant
// sits behind a link slower than the call timeout. Documented behaviour:
// its prepare times out, the delivery failure dooms the vote, and the
// healthy participant is rolled back — the slow node never commits.
func TestChaosSlowParticipantTimeout(t *testing.T) {
	ctx := context.Background()
	healthy, slow := &chaosResource{}, &chaosResource{}
	healthyRef := exportChaosResource(t, healthy)
	slowRef := exportChaosResource(t, slow)

	healthyORB := orb.New()
	defer healthyORB.Shutdown()
	chaos := orb.NewChaosTransport(nil)
	slowORB := orb.New(orb.WithTransport(chaos), orb.WithCallTimeout(100*time.Millisecond))
	defer slowORB.Shutdown()
	chaos.Inject(orb.ChaosRule{Latency: 400 * time.Millisecond}) // every request crawls

	svc := activityservice.New(activityservice.WithRetryPolicy(
		activityservice.RetryPolicy{Attempts: 2, Backoff: time.Millisecond}))
	coord := twopc.NewCoordinator(svc)
	tx, err := coord.Begin("slow-participant")
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.EnlistAction(orb.ImportAction(healthyORB, healthyRef)); err != nil {
		t.Fatal(err)
	}
	if err := tx.EnlistAction(orb.ImportAction(slowORB, slowRef)); err != nil {
		t.Fatal(err)
	}

	committed, err := tx.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("committed despite a participant slower than the call timeout")
	}
	if got := healthy.prepares.Load(); got != 1 {
		t.Fatalf("healthy participant prepared %d times, want 1", got)
	}
	if got := healthy.rollbacks.Load(); got != 1 {
		t.Fatalf("healthy participant rolled back %d times, want 1 (released after the doomed vote)", got)
	}
	if got := healthy.commits.Load(); got != 0 {
		t.Fatalf("healthy participant committed %d times, want 0", got)
	}
	// The slow node's requests may still land late, but the commit decision
	// never reaches it.
	time.Sleep(500 * time.Millisecond)
	if got := slow.commits.Load(); got != 0 {
		t.Fatalf("slow participant committed %d times, want 0", got)
	}
}
