module github.com/extendedtx/activityservice

go 1.24
