// Package orb is the public API of the distribution substrate: a GIOP-lite
// object request broker standing in for the CORBA ORB the paper assumes
// (see DESIGN.md for the substitution rationale).
//
// It provides object references (IOR), servants, in-process and TCP
// transports, per-request service contexts, interceptors, a name service
// and CORBA-style system exceptions. The remote halves of the Activity
// Service — exported Actions, activity coordinator proxies, implicit
// context propagation — are exposed here too.
//
// Object references carry an ordered list of endpoint profiles (NewIOR;
// an ORB with several listeners mints them automatically), and outgoing
// invocations select among them per call: sticky (endpoint, key)
// affinity, health verdicts shared process-wide through a HealthRegistry,
// and transparent failover to the next profile on TRANSIENT outcomes.
// The pool below provides automatic reconnect and fail-fast health state
// (WithTransport, WithPoolSize, WithReconnectBackoff, EndpointStats).
// ChaosTransport wraps any Transport with injectable faults — latency,
// drops, resets, one-way partitions, per-operation and per-address rules
// — for deterministic resilience testing; see examples/chaos. ServeAdmin
// exposes ServerStats/EndpointStats on the well-known "orb-admin" key for
// remote scraping (AdminClient).
package orb

import (
	"github.com/extendedtx/activityservice/internal/core"
	iorb "github.com/extendedtx/activityservice/internal/orb"
	"github.com/extendedtx/activityservice/internal/ots"
	"github.com/extendedtx/activityservice/internal/remote"
)

// ORB types.
type (
	// ORB is an object request broker.
	ORB = iorb.ORB
	// IOR is an interoperable object reference carrying an ordered list
	// of endpoint profiles.
	IOR = iorb.IOR
	// Profile is one tagged endpoint of a multi-profile reference.
	Profile = iorb.Profile
	// Servant handles incoming invocations.
	Servant = iorb.Servant
	// ServantFunc adapts a function to Servant.
	ServantFunc = iorb.ServantFunc
	// ServiceContext is out-of-band request context.
	ServiceContext = iorb.ServiceContext
	// ClientInterceptor runs before outgoing invocations.
	ClientInterceptor = iorb.ClientInterceptor
	// ServerInterceptor runs before dispatch.
	ServerInterceptor = iorb.ServerInterceptor
	// SystemError is a CORBA-style system exception.
	SystemError = iorb.SystemError
	// RemoteError is a user error raised by a remote servant.
	RemoteError = iorb.RemoteError
	// ExceptionCode classifies system exceptions.
	ExceptionCode = iorb.ExceptionCode
	// NameServer is the name service servant.
	NameServer = iorb.NameServer
	// NameClient is the name service proxy.
	NameClient = iorb.NameClient
	// ORBOption configures an ORB.
	ORBOption = iorb.ORBOption
	// ActivityProxy is the client side of a remote activity coordinator.
	ActivityProxy = remote.ActivityProxy
	// Transport dials the framed client connections the ORB pools.
	Transport = iorb.Transport
	// Conn is one framed transport connection.
	Conn = iorb.Conn
	// TCPTransport is the production client transport.
	TCPTransport = iorb.TCPTransport
	// ChaosTransport wraps a Transport with injectable faults.
	ChaosTransport = iorb.ChaosTransport
	// ChaosRule describes one injectable fault.
	ChaosRule = iorb.ChaosRule
	// ChaosStage locates a fault in the request/reply exchange.
	ChaosStage = iorb.ChaosStage
	// InjectedFault is the handle of an injected ChaosRule.
	InjectedFault = iorb.InjectedFault
	// EndpointStats is a snapshot of one endpoint pool's health.
	EndpointStats = iorb.EndpointStats
	// ServerStats is a snapshot of the server transport's admission state.
	ServerStats = iorb.ServerStats
	// BreakerState is the circuit breaker position for one endpoint.
	BreakerState = iorb.BreakerState
	// HealthRegistry shares per-endpoint health verdicts across client
	// ORBs (see WithHealthRegistry; the default is process-wide sharing).
	HealthRegistry = iorb.HealthRegistry
	// HealthVerdict is a snapshot of one endpoint's shared health record.
	HealthVerdict = iorb.HealthVerdict
	// AdminClient scrapes a remote ORB's ServerStats/EndpointStats through
	// its well-known admin servant.
	AdminClient = iorb.AdminClient
	// RecoveryScrape is the transaction-recovery status exposed through the
	// orb-admin "recovery_stats" operation.
	RecoveryScrape = iorb.RecoveryScrape
	// RecoveryClient invokes a coordinator's well-known recovery servant
	// (replay_completion, recover, totals).
	RecoveryClient = remote.RecoveryClient
	// ReplicationPrimary is the primary-side handle of WAL replication:
	// the follower acknowledgement watermark and waits on it.
	ReplicationPrimary = remote.ReplicationPrimary
	// ReplicationFollower streams a primary's WAL into a local follower log.
	ReplicationFollower = remote.ReplicationFollower
	// FollowerOption configures a ReplicationFollower.
	FollowerOption = remote.FollowerOption
	// TakeoverPolicy says when a follower declares the primary lost.
	TakeoverPolicy = remote.TakeoverPolicy
	// HostRecoveryResult reports what HostRecovery set up.
	HostRecoveryResult = remote.HostRecoveryResult
	// GroupMember is one node of a self-healing coordinator group:
	// leader or streaming standby, with fenced election and re-join.
	GroupMember = remote.GroupMember
	// GroupConfig configures a GroupMember.
	GroupConfig = remote.GroupConfig
	// GroupRole is a group member's current role.
	GroupRole = remote.GroupRole
	// ReplState is a peer's replication state as reported by repl_state.
	ReplState = remote.ReplState
	// ReplicationScrape is a coordinator-group member's replication state
	// exposed through the orb-admin "replication_stats" operation.
	ReplicationScrape = iorb.ReplicationScrape
	// FollowerLag is one follower's ack watermark inside a
	// ReplicationScrape.
	FollowerLag = iorb.FollowerLag
)

// Coordinator-group roles.
const (
	RoleFollower = remote.RoleFollower
	RoleLeader   = remote.RoleLeader
)

// Circuit breaker states (see WithCircuitBreaker).
const (
	BreakerInactive = iorb.BreakerInactive
	BreakerClosed   = iorb.BreakerClosed
	BreakerOpen     = iorb.BreakerOpen
	BreakerHalfOpen = iorb.BreakerHalfOpen
)

// Chaos fault stages.
const (
	StageRequest = iorb.StageRequest
	StageReply   = iorb.StageReply
)

// System exception codes.
const (
	CodeObjectNotExist = iorb.CodeObjectNotExist
	CodeBadOperation   = iorb.CodeBadOperation
	CodeCommFailure    = iorb.CodeCommFailure
	CodeTransient      = iorb.CodeTransient
	CodeMarshal        = iorb.CodeMarshal
	CodeNoImplement    = iorb.CodeNoImplement
	CodeTimeout        = iorb.CodeTimeout
	// CodeFenced is raised by a deposed coordinator-group member; the
	// detail carries a "at=tcp:host:port" leader hint clients follow.
	CodeFenced = iorb.CodeFenced
)

// Service context ids.
const (
	ContextActivity    = iorb.ContextActivity
	ContextTransaction = iorb.ContextTransaction
)

// ErrNotBound reports a name with no binding.
var ErrNotBound = iorb.ErrNotBound

// ErrBadIOR reports an unparseable stringified IOR.
var ErrBadIOR = iorb.ErrBadIOR

// New returns a running ORB (in-process until Listen).
func New(opts ...ORBOption) *ORB { return iorb.New(opts...) }

// WithCallTimeout sets the default invocation deadline.
var WithCallTimeout = iorb.WithCallTimeout

// WithTransport replaces the client transport (default TCPTransport).
var WithTransport = iorb.WithTransport

// WithPoolSize bounds the multiplexed client connections per endpoint.
var WithPoolSize = iorb.WithPoolSize

// WithDialTimeout bounds each connection attempt.
var WithDialTimeout = iorb.WithDialTimeout

// WithReconnectBackoff sets the jittered reconnect backoff window.
var WithReconnectBackoff = iorb.WithReconnectBackoff

// WithPoolWarm pre-dials up to n connections on first pool use.
var WithPoolWarm = iorb.WithPoolWarm

// WithCircuitBreaker layers a three-state circuit breaker above the
// per-endpoint health gate.
var WithCircuitBreaker = iorb.WithCircuitBreaker

// WithRetryBudget bounds call attempts against a failing endpoint with a
// token bucket.
var WithRetryBudget = iorb.WithRetryBudget

// WithMaxInflight bounds concurrent server-side dispatches (admission
// control).
var WithMaxInflight = iorb.WithMaxInflight

// WithAdmissionQueue tunes the admission wait queue and shed deadline.
var WithAdmissionQueue = iorb.WithAdmissionQueue

// WithPriorityOps reserves dispatch slots for a priority admission class
// (completion/recovery verbs by default), so overload sheds first-contact
// work before the traffic that resolves in-doubt transactions.
var WithPriorityOps = iorb.WithPriorityOps

// DefaultPriorityOps is the operation set WithPriorityOps reserves for
// when given no explicit list.
var DefaultPriorityOps = iorb.DefaultPriorityOps

// NewChaosTransport wraps base (TCPTransport when nil) with fault
// injection.
var NewChaosTransport = iorb.NewChaosTransport

// IsSystem reports whether err is a SystemError with the given code.
var IsSystem = iorb.IsSystem

// Systemf builds a SystemError.
var Systemf = iorb.Systemf

// NewIOR builds a reference from a type id, key and endpoint profiles in
// preference order.
var NewIOR = iorb.NewIOR

// ParseIOR parses a stringified IOR (both the single-endpoint "IOR:" form
// and the multi-profile "IOR2:" form).
var ParseIOR = iorb.ParseIOR

// DecodeIOR reads an IOR from a CDR stream (legacy or multi-profile
// layout).
var DecodeIOR = iorb.DecodeIOR

// NewHealthRegistry returns an empty shared health registry (see
// WithHealthRegistry).
var NewHealthRegistry = iorb.NewHealthRegistry

// ProcessHealthRegistry is the process-wide registry every ORB shares by
// default; tooling can read verdicts from it directly.
var ProcessHealthRegistry = iorb.ProcessHealthRegistry

// WithHealthRegistry wires an ORB to a specific shared health registry
// instead of the process-wide default.
var WithHealthRegistry = iorb.WithHealthRegistry

// WithAdvertised overrides the endpoints minted into the ORB's object
// references (hosts behind NAT or a load balancer).
var WithAdvertised = iorb.WithAdvertised

// ServeAdmin activates the well-known "orb-admin" servant exposing
// ServerStats/EndpointStats to remote scrape tooling.
var ServeAdmin = iorb.ServeAdmin

// NewAdminClient returns a scrape proxy for the admin servant at ref.
func NewAdminClient(o *ORB, ref IOR) *AdminClient { return iorb.NewAdminClient(o, ref) }

// AdminAt builds the IOR of the well-known admin servant at the given
// endpoints.
var AdminAt = iorb.AdminAt

// AdminTypeID is the interface id of the ORB admin servant.
const AdminTypeID = iorb.AdminTypeID

// AdminKey is the well-known object key of the ORB admin servant.
const AdminKey = iorb.AdminKey

// NewNameServer returns an empty name server.
func NewNameServer() *NameServer { return iorb.NewNameServer() }

// NewNameClient returns a proxy for the name service at ref.
func NewNameClient(o *ORB, ref IOR) *NameClient { return iorb.NewNameClient(o, ref) }

// NameServiceAt builds the IOR of the well-known name service on endpoint.
var NameServiceAt = iorb.NameServiceAt

// ExportAction activates a core Action on o and returns its reference.
func ExportAction(o *ORB, action core.Action) IOR { return remote.ExportAction(o, action) }

// ExportActionWithKey activates a core Action under a stable key, so a
// restarted server can re-register it behind IORs already handed out.
func ExportActionWithKey(o *ORB, key string, action core.Action) IOR {
	return remote.ExportActionWithKey(o, key, action)
}

// ImportAction returns an Action proxy for the Action at ref.
func ImportAction(o *ORB, ref IOR) core.Action { return remote.ImportAction(o, ref) }

// ServeRelay activates the well-known relay servant on o, making the node
// an interior vertex of tree-structured signal fan-out (DeliverTree): it
// accepts subtree batches under RelayKey, delivers to its own span,
// forwards to child relays and aggregates outcomes up the tree.
var ServeRelay = remote.ServeRelay

// RelayTypeID is the interface id of the relay servant.
const RelayTypeID = remote.RelayTypeID

// RelayKey is the well-known object key of the relay servant.
const RelayKey = remote.RelayKey

// ExportActivity activates a coordinator servant for an activity.
func ExportActivity(o *ORB, a *core.Activity) IOR { return remote.ExportActivity(o, a) }

// NewActivityProxy returns a proxy for a remote activity coordinator.
func NewActivityProxy(o *ORB, ref IOR) *ActivityProxy { return remote.NewActivityProxy(o, ref) }

// InstallPropagation wires implicit activity-context propagation onto o.
var InstallPropagation = remote.InstallPropagation

// PropagatedFrom returns the inbound activity context, if any.
var PropagatedFrom = remote.PropagatedFrom

// ExportResource activates a transaction-service resource on o, making it
// a participant reachable by remote coordinators.
func ExportResource(o *ORB, r ots.Resource) IOR { return remote.ExportResource(o, r) }

// ExportResourceWithKey activates a resource under a stable key (recovery).
func ExportResourceWithKey(o *ORB, key string, r ots.Resource) IOR {
	return remote.ExportResourceWithKey(o, key, r)
}

// ImportResource returns an ots.Resource proxy for the resource at ref;
// its recovery name is the stringified IOR.
func ImportResource(o *ORB, ref IOR) ots.NamedResource { return remote.ImportResource(o, ref) }

// BindRemoteResources re-binds logged IOR recovery names to live proxies
// so ots recovery can re-drive phase two across the network.
var BindRemoteResources = remote.BindRemoteResources

// ServeRecovery activates the well-known RecoveryCoordinator-style servant
// for a transaction service and wires its totals into the orb-admin
// scrape; restarted participants ask it replay_completion for their
// outcome.
func ServeRecovery(o *ORB, svc *ots.Service) IOR { return remote.ServeRecovery(o, svc) }

// NewRecoveryClient returns a proxy invoking the recovery servant at ref.
func NewRecoveryClient(o *ORB, ref IOR) *RecoveryClient { return remote.NewRecoveryClient(o, ref) }

// RecoveryAt builds the IOR of the well-known recovery servant at the
// given endpoints.
var RecoveryAt = remote.RecoveryAt

// RecoveryTypeID is the interface id of the recovery servant.
const RecoveryTypeID = remote.RecoveryTypeID

// RecoveryKey is the well-known object key of the recovery servant.
const RecoveryKey = remote.RecoveryKey

// HostRecovery hosts a transaction service over an already-open decision
// log: in-doubt IOR names re-bound as remote proxies, one recovery pass,
// and the well-known recovery servant activated. Both a restarting
// coordinator and a standby taking over a replicated log go through it.
var HostRecovery = remote.HostRecovery

// ServeReplication activates the well-known WAL replication servant for a
// primary coordinator's log and returns the primary-side handle (follower
// ack watermark, decision barrier).
var ServeReplication = remote.ServeReplication

// NewReplicationFollower returns a follower streaming the replication
// servant at ref into a local log.
var NewReplicationFollower = remote.NewReplicationFollower

// ReplicationAt builds the IOR of the well-known replication servant at
// the given endpoints.
var ReplicationAt = remote.ReplicationAt

// WithPollTimeout sets a follower's long-poll fetch timeout.
var WithPollTimeout = remote.WithPollTimeout

// WithTakeoverPolicy sets when a follower's Run declares the primary lost.
var WithTakeoverPolicy = remote.WithTakeoverPolicy

// WithRecordObserver observes each shipped record after it is durable in
// the follower's log.
var WithRecordObserver = remote.WithRecordObserver

// WithFollowerID names a follower on its fetches so the primary tracks a
// per-follower ack watermark (and fenced re-join can identify itself).
var WithFollowerID = remote.WithFollowerID

// WithFencedObserver observes FENCED replies a follower receives.
var WithFencedObserver = remote.WithFencedObserver

// NewGroupMember wires a coordinator-group member over an ORB and a
// durable log: fenced leader election over the peer set, automatic
// re-join of a deposed leader, and takeover through cfg.Takeover.
var NewGroupMember = remote.NewGroupMember

// FetchReplState asks the replication servant at endpoint for its state
// (epoch, durable watermark, term, leadership) — the election probe.
var FetchReplState = remote.FetchReplState

// ErrPrimaryLost is returned by ReplicationFollower.Run when the primary
// exhausted the takeover policy's failure budget.
var ErrPrimaryLost = remote.ErrPrimaryLost

// ReplicationTypeID is the interface id of the WAL replication servant.
const ReplicationTypeID = remote.ReplicationTypeID

// ReplicationKey is the well-known object key of the WAL replication
// servant.
const ReplicationKey = remote.ReplicationKey
