package orb

import (
	"github.com/extendedtx/activityservice/internal/cluster"
	iorb "github.com/extendedtx/activityservice/internal/orb"
	"github.com/extendedtx/activityservice/internal/remote"
)

// Sharding types: the consistent-hash cluster map and the machinery
// routing keyed work across an activityd fleet (see ARCHITECTURE.md,
// "Horizontal sharding").
type (
	// ClusterMap is an immutable, versioned consistent-hash map of the
	// fleet; higher epochs supersede lower ones.
	ClusterMap = cluster.Map
	// ClusterMember is one fleet member: id, endpoint profiles, weight
	// and state.
	ClusterMember = cluster.Member
	// MemberState is a member's lifecycle state (active or draining).
	MemberState = cluster.MemberState
	// ShardAuthority holds the authoritative shard map and bumps its
	// epoch on add/drain/remove.
	ShardAuthority = remote.ShardAuthority
	// ShardMapClient is the proxy for the shard-map authority's
	// fetch/watch/admin verbs.
	ShardMapClient = remote.ShardMapClient
	// ShardRouter routes keyed invocations to the owning member, healing
	// on WrongShard redirects.
	ShardRouter = remote.ShardRouter
	// RouterOption configures a ShardRouter.
	RouterOption = remote.RouterOption
	// RouterStats is a snapshot of a ShardRouter's routing counters.
	RouterStats = remote.RouterStats
	// ShardMember is the replica-side shard guard: it follows the map
	// and refuses keys the member does not own.
	ShardMember = remote.ShardMember
	// MemberOption configures a ShardMember.
	MemberOption = remote.MemberOption
	// ActivityFactory serves remote activity begins (optionally sharded).
	ActivityFactory = remote.ActivityFactory
	// FactoryOption configures a served ActivityFactory.
	FactoryOption = remote.FactoryOption
	// RelayScrape is the relay plant-cache telemetry exposed through the
	// orb-admin "relay_stats" operation.
	RelayScrape = iorb.RelayScrape
)

// Cluster member states.
const (
	// MemberActive serves its arcs of the ring.
	MemberActive = cluster.MemberActive
	// MemberDraining finishes in-flight work while its arcs route to
	// successors.
	MemberDraining = cluster.MemberDraining
)

// CodeWrongShard is the system exception a replica answers when it does
// not own the routed key; the detail carries the replica's map epoch.
const CodeWrongShard = iorb.CodeWrongShard

// DefaultVNodes is the number of ring points one unit of member weight
// contributes.
const DefaultVNodes = cluster.DefaultVNodes

// NewClusterMap builds an epoch-0 cluster map over the given members.
var NewClusterMap = cluster.NewMap

// EmptyClusterMap returns the epoch-0 map with no members.
var EmptyClusterMap = cluster.EmptyMap

// HashKey hashes a shard key onto the ring's key space.
var HashKey = cluster.HashKey

// NewShardAuthority returns an authority serving the given initial map
// (the empty epoch-0 map when nil).
var NewShardAuthority = remote.NewShardAuthority

// ServeShardMap activates the shard-map authority under the well-known
// ShardMapKey and forwards the orb-admin "shard_*" verbs to it.
var ServeShardMap = remote.ServeShardMap

// ShardMapAt builds the IOR of the well-known shard-map authority at
// the given endpoints.
var ShardMapAt = remote.ShardMapAt

// NewShardMapClient returns a proxy invoking the shard-map verbs at ref.
var NewShardMapClient = remote.NewShardMapClient

// NewShardRouter returns a router fetching maps from the authority at
// authorityRef and routing keyed invocations across the fleet.
var NewShardRouter = remote.NewShardRouter

// WithAuthorityResolver lets a router re-discover the authority
// reference (e.g. via naming) when the cached one goes stale.
var WithAuthorityResolver = remote.WithAuthorityResolver

// NewShardMember returns the shard guard for one fleet member.
var NewShardMember = remote.NewShardMember

// WithOnDrain runs a hook exactly once when the map marks the member
// draining (hosts wire it to Service.Drain).
var WithOnDrain = remote.WithOnDrain

// ServeActivityFactory activates the well-known activity factory for a
// core service (the servant activityd serves; sharded via
// WithFactoryShard).
var ServeActivityFactory = remote.ServeActivityFactory

// WithFactoryDelivery stamps remotely begun activities with a delivery
// policy.
var WithFactoryDelivery = remote.WithFactoryDelivery

// WithFactoryShard guards every factory begin with a member's shard
// check.
var WithFactoryShard = remote.WithFactoryShard

// WrongShardEpoch extracts the redirecting replica's map epoch from a
// WrongShard error.
var WrongShardEpoch = remote.WrongShardEpoch

// ShardMapTypeID is the interface id of the shard-map authority.
const ShardMapTypeID = remote.ShardMapTypeID

// ShardMapKey is the well-known object key of the shard-map authority.
const ShardMapKey = remote.ShardMapKey

// ActivityFactoryTypeID is the interface id of the activity factory.
const ActivityFactoryTypeID = remote.ActivityFactoryTypeID

// ActivityFactoryKey is the well-known object key of the activity
// factory.
const ActivityFactoryKey = remote.ActivityFactoryKey
