package orb_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/orb"
	"github.com/extendedtx/activityservice/ots"
)

func TestPublicServantRoundTrip(t *testing.T) {
	server := orb.New()
	defer server.Shutdown()
	ref := server.RegisterServant("IDL:test/Upper:1.0", orb.ServantFunc(
		func(_ context.Context, op string, in *cdr.Decoder) ([]byte, error) {
			if op != "shout" {
				return nil, orb.Systemf(orb.CodeBadOperation, "%q", op)
			}
			s := in.ReadString()
			if err := in.Err(); err != nil {
				return nil, orb.Systemf(orb.CodeMarshal, "%v", err)
			}
			e := cdr.NewEncoder(32)
			e.WriteString(s + "!")
			return e.Bytes(), nil
		}))
	endpoint, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ref, _ = server.IOR(ref.Key)
	if ref.Endpoint() != endpoint {
		t.Fatalf("endpoint = %q", ref.Endpoint())
	}

	client := orb.New()
	defer client.Shutdown()
	e := cdr.NewEncoder(32)
	e.WriteString("hello")
	body, err := client.Invoke(context.Background(), ref, "shout", e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	d := cdr.NewDecoder(body)
	if got := d.ReadString(); got != "hello!" {
		t.Fatalf("got %q", got)
	}
}

func TestPublicSystemExceptions(t *testing.T) {
	o := orb.New()
	defer o.Shutdown()
	ref := orb.NewIOR("x", "ghost", "inproc:"+o.ID())
	_, err := o.Invoke(context.Background(), ref, "op", nil)
	if !orb.IsSystem(err, orb.CodeObjectNotExist) {
		t.Fatalf("err = %v", err)
	}
	var se *orb.SystemError
	if !errors.As(err, &se) || se.Code != orb.CodeObjectNotExist {
		t.Fatalf("As failed: %v", err)
	}
}

func TestPublicNaming(t *testing.T) {
	server := orb.New()
	defer server.Shutdown()
	ns := orb.NewNameServer()
	ns.Serve(server)
	endpoint, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := orb.New()
	defer client.Shutdown()
	naming := orb.NewNameClient(client, orb.NameServiceAt(endpoint))
	ctx := context.Background()

	target := orb.NewIOR("IDL:x:1.0", "svc-1", endpoint)
	if err := naming.Bind(ctx, "services/x", target); err != nil {
		t.Fatal(err)
	}
	got, err := naming.Resolve(ctx, "services/x")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(target) {
		t.Fatalf("resolved %+v", got)
	}
	if _, err := naming.Resolve(ctx, "nope"); !errors.Is(err, orb.ErrNotBound) {
		t.Fatalf("err = %v", err)
	}
}

func TestPublicIORStringForms(t *testing.T) {
	ref := orb.NewIOR("IDL:a:1.0", "k", "tcp:1.2.3.4:5")
	parsed, err := orb.ParseIOR(ref.String())
	if err != nil || !parsed.Equal(ref) {
		t.Fatalf("parsed=%+v err=%v", parsed, err)
	}
	if _, err := orb.ParseIOR("garbage"); !errors.Is(err, orb.ErrBadIOR) {
		t.Fatalf("err = %v", err)
	}
}

func TestPublicExportImportAction(t *testing.T) {
	server := orb.New()
	defer server.Shutdown()
	var hits atomic.Int32
	ref := orb.ExportAction(server, activityservice.ActionFunc(
		func(_ context.Context, sig activityservice.Signal) (activityservice.Outcome, error) {
			hits.Add(1)
			return activityservice.Outcome{Name: "pong:" + sig.Name}, nil
		}))
	if _, err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = server.IOR(ref.Key)

	client := orb.New()
	defer client.Shutdown()
	proxy := orb.ImportAction(client, ref)
	out, err := proxy.ProcessSignal(context.Background(), activityservice.Signal{Name: "ping", SetName: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "pong:ping" || hits.Load() != 1 {
		t.Fatalf("out=%+v hits=%d", out, hits.Load())
	}
}

func TestPublicDistributedOTSResources(t *testing.T) {
	// A transaction on this node committing participants on another node,
	// entirely through the public facades.
	node := orb.New()
	defer node.Shutdown()
	state := newFacadeState()
	ref := orb.ExportResource(node, facadeResource{state: state})
	if _, err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = node.IOR(ref.Key)

	coordORB := orb.New()
	defer coordORB.Shutdown()
	svc := ots.NewService()
	tx := svc.Begin()
	other := newFacadeState()
	if err := tx.RegisterResource(orb.ImportResource(coordORB, ref)); err != nil {
		t.Fatal(err)
	}
	if err := tx.RegisterResource(facadeResource{state: other}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}
	if got, gotOther := state.get(), other.get(); got != "committed" || gotOther != "committed" {
		t.Fatalf("states = %q, %q", got, gotOther)
	}
}

// facadeState is a mutex-guarded string: the remote resource mutates it
// from a server dispatch goroutine and the test reads it afterwards, so
// the test must bring its own synchronization (the socket round trip
// orders the data in practice, but is invisible to the race detector).
type facadeState struct {
	mu sync.Mutex
	s  string
}

func newFacadeState() *facadeState { return &facadeState{s: "idle"} }

func (f *facadeState) set(s string) {
	f.mu.Lock()
	f.s = s
	f.mu.Unlock()
}

func (f *facadeState) get() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.s
}

// facadeResource mutates a string through the public Resource interface.
type facadeResource struct {
	state *facadeState
}

func (r facadeResource) Prepare() (ots.Vote, error) {
	r.state.set("prepared")
	return ots.VoteCommit, nil
}
func (r facadeResource) Commit() error         { r.state.set("committed"); return nil }
func (r facadeResource) Rollback() error       { r.state.set("rolledback"); return nil }
func (r facadeResource) CommitOnePhase() error { return r.Commit() }
func (r facadeResource) Forget() error         { return nil }

func TestPublicActivityProxyWithPropagation(t *testing.T) {
	ctx := context.Background()
	host := orb.New()
	defer host.Shutdown()
	orb.InstallPropagation(host)

	svc := activityservice.New()
	a := svc.Begin("hosted")
	set := activityservice.NewSequenceSet(activityservice.DefaultCompletionSet, "bye")
	if err := a.RegisterSignalSet(set); err != nil {
		t.Fatal(err)
	}
	coordRef := orb.ExportActivity(host, a)
	if _, err := host.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	coordRef, _ = host.IOR(coordRef.Key)

	client := orb.New()
	defer client.Shutdown()
	orb.InstallPropagation(client)
	if _, err := client.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	proxy := orb.NewActivityProxy(client, coordRef)
	if _, err := proxy.AddAction(ctx, activityservice.DefaultCompletionSet,
		activityservice.ActionFunc(func(context.Context, activityservice.Signal) (activityservice.Outcome, error) {
			return activityservice.Outcome{Name: "ok"}, nil
		})); err != nil {
		t.Fatal(err)
	}
	st, cs, err := proxy.Status(ctx)
	if err != nil || st != activityservice.ActivityActive || cs != activityservice.CompletionSuccess {
		t.Fatalf("st=%v cs=%v err=%v", st, cs, err)
	}
	if _, err := proxy.Complete(ctx, activityservice.CompletionSuccess); err != nil {
		t.Fatal(err)
	}
	if a.State() != activityservice.ActivityCompleted {
		t.Fatalf("state = %s", a.State())
	}
}
