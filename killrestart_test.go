// Kill-restart chaos harness: the coordinator process is killed with
// SIGKILL at injected points inside a distributed two-phase commit —
// after prepare, after the decision record is forced, and mid-phase-two —
// then restarted against the same write-ahead log. The participants live
// in THIS process and survive the kill, so the harness can observe
// exactly what each one was told before and after the crash. Recovery is
// driven end to end: WAL replay re-drives in-doubt branches, and the
// wire-level replay_completion servant answers restarted participants.
//
// These are real processes and a real kill(2): the coordinator never gets
// to run deferred cleanup, flush buffers, or say goodbye — exactly the
// failure the presumed-abort log protocol is designed for.
package activityservice_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/hls/btp"
	"github.com/extendedtx/activityservice/internal/wal"
	"github.com/extendedtx/activityservice/orb"
	"github.com/extendedtx/activityservice/ots"
)

// remoteActionFactory names the action factory both the group superior and
// its successors register: params are a stringified IOR, recreated as a
// wire proxy — the activity journal's way of shipping enrolled members.
const remoteActionFactory = "remote-action"

// Environment contract between the parent test and the re-exec'd
// coordinator helper. IORs are joined with newlines: the stringified
// reference grammar uses '|' and ',' internally.
const (
	crashEnvMode     = "ACTIVITYSERVICE_CRASH_MODE"     // "commit", "primary", "btp", "group", "groupbtp" or "recover"
	crashEnvStage    = "ACTIVITYSERVICE_CRASH_STAGE"    // "prepared", "decision", "phase2"
	crashEnvWAL      = "ACTIVITYSERVICE_CRASH_WAL"      // coordinator log path
	crashEnvIORs     = "ACTIVITYSERVICE_CRASH_IORS"     // participant resource refs, "\n"-joined
	crashEnvActions  = "ACTIVITYSERVICE_CRASH_ACTIONS"  // BTP inferior action refs, "\n"-joined
	crashEnvStandbys = "ACTIVITYSERVICE_CRASH_STANDBYS" // group modes: standby count the decision barrier waits for
)

// survivorResource is a participant hosted by the parent process. It
// persists nothing — the parent is never killed — but counts protocol
// verbs so the harness can assert exactly-once application: Commit is
// idempotent (redelivery is absorbed), and applies records how many times
// state actually changed.
type survivorResource struct {
	prepares    atomic.Int32
	commitCalls atomic.Int32
	applies     atomic.Int32
	rollbacks   atomic.Int32
	committed   atomic.Bool
}

func (r *survivorResource) Prepare() (ots.Vote, error) {
	r.prepares.Add(1)
	return ots.VoteCommit, nil
}

func (r *survivorResource) Commit() error {
	r.commitCalls.Add(1)
	if r.committed.CompareAndSwap(false, true) {
		r.applies.Add(1)
	}
	return nil
}

func (r *survivorResource) Rollback() error       { r.rollbacks.Add(1); return nil }
func (r *survivorResource) CommitOnePhase() error { return r.Commit() }
func (r *survivorResource) Forget() error         { return nil }

// crashStage maps the injected crash point to the pipeline stage at which
// the coordinator helper SIGKILLs itself.
func crashStage(name string) ots.Stage {
	switch name {
	case "prepared":
		return ots.StagePrepared
	case "decision":
		return ots.StageDecisionLogged
	case "phase2":
		return ots.StageCommitDelivered
	}
	return 0
}

// TestCrashRestartHelper is the coordinator process. It only runs when
// re-exec'd by the harness with the mode environment set.
//
// mode=commit: drive a two-participant 2PC against the parent's
// participants and SIGKILL self at the configured stage. The kill is
// raised from inside the synchronous event hook, so the process dies at
// exactly the protocol point under test — no deferred recovery runs.
//
// mode=recover: restart against the same WAL, re-drive in-doubt branches,
// report pass stats on stdout, then serve wire-level recovery
// (replay_completion and the recover verb) until stdin closes.
//
// mode=primary: like commit, but the coordinator is a replicated primary —
// it serves WAL replication, reports its endpoints ("REPL ...") so the
// parent can attach a standby, and commits with the decision barrier
// installed, so each decision is on the standby before phase two starts
// (and therefore before any post-decision kill point can fire).
//
// mode=btp: a replicated BTP superior — it prepares the parent's inferiors
// through the real fig. 11 signal exchange, seals the confirm decision in
// the replicated log, and SIGKILLs itself between confirm deliveries.
//
// mode=group: like primary, but as a promoted coordinator-group leader
// (term 1): the group-aware replication servant answers elections, the
// decision gate fences the commit point, and the barrier holds each
// decision until crashEnvStandbys group standbys have streamed it.
//
// mode=groupbtp: a coordinator-group BTP superior whose activity journal
// shares the replicated log — the successor re-activates the atom's
// structure from the journal, not just the confirm decision.
func TestCrashRestartHelper(t *testing.T) {
	mode := os.Getenv(crashEnvMode)
	if mode == "" {
		t.Skip("coordinator helper; runs only via re-exec")
	}
	log, err := ots.OpenFileLog(os.Getenv(crashEnvWAL))
	if err != nil {
		t.Fatal(err)
	}
	node := orb.New()
	defer node.Shutdown()

	switch mode {
	case "commit", "primary":
		stage := crashStage(os.Getenv(crashEnvStage))
		if stage == 0 {
			t.Fatalf("bad crash stage %q", os.Getenv(crashEnvStage))
		}
		opts := []ots.Option{ots.WithLog(log),
			ots.WithRetryPolicy(1, 0),
			ots.WithEventHook(func(e ots.Event) {
				if e.Stage == stage {
					_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
					select {} // unreachable: SIGKILL is not deliverable to a handler
				}
			})}
		if mode == "primary" {
			// Replicated primary: serve the log, tell the parent where, and
			// hold each decision until the standby acknowledges it. The
			// barrier self-synchronises attach: the parent starts its
			// standby as soon as it reads the REPL line.
			p, _ := orb.ServeReplication(node, log)
			if _, err := node.Listen("127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
			fmt.Printf("REPL %s\n", strings.Join(node.Endpoints(), " "))
			opts = append(opts, ots.WithDecisionBarrier(p.DecisionBarrier(10*time.Second)))
		}
		svc := ots.NewService(opts...)
		tx := svc.Begin()
		for _, s := range strings.Split(os.Getenv(crashEnvIORs), "\n") {
			ref, err := orb.ParseIOR(s)
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.RegisterResource(orb.ImportResource(node, ref)); err != nil {
				t.Fatal(err)
			}
		}
		_ = tx.Commit(true)
		t.Fatal("coordinator survived its injected crash point")

	case "btp":
		// Replicated BTP superior. The fig. 11 prepare exchange runs as
		// real BTP signals over the wire: every enrolled inferior reserves
		// and votes prepared. BTP then requires the superior to make its
		// confirm decision durable before any confirm goes out; this
		// repo's durable-decision substrate is the replicated OTS log, so
		// the superior seals the decision there with one branch per
		// enrolled inferior (each inferior's confirm bridge is registered
		// as a recoverable resource) and phase two delivers the confirms
		// one inferior at a time. The injected SIGKILL fires after the
		// first confirm delivery — dead between confirm decisions — and
		// the warm standby following the log must converge the rest.
		p, _ := orb.ServeReplication(node, log)
		if _, err := node.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("REPL %s\n", strings.Join(node.Endpoints(), " "))

		asvc := activityservice.New()
		atom, err := btp.NewAtom(asvc, "standby-takeover")
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range strings.Split(os.Getenv(crashEnvActions), "\n") {
			ref, err := orb.ParseIOR(s)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("inferior-%d", i)
			act := orb.ImportAction(node, ref)
			if _, err := atom.Activity().AddNamedAction(btp.PrepareSetName, label, act); err != nil {
				t.Fatal(err)
			}
			if _, err := atom.Activity().AddNamedAction(btp.CompleteSetName, label, act); err != nil {
				t.Fatal(err)
			}
		}
		if err := atom.Prepare(context.Background()); err != nil {
			t.Fatalf("btp prepare: %v", err)
		}

		osvc := ots.NewService(ots.WithLog(log),
			ots.WithRetryPolicy(1, 0),
			ots.WithDecisionBarrier(p.DecisionBarrier(10*time.Second)),
			ots.WithEventHook(func(e ots.Event) {
				if e.Stage == ots.StageCommitDelivered {
					_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
					select {} // unreachable: SIGKILL is not deliverable to a handler
				}
			}))
		tx := osvc.Begin()
		for _, s := range strings.Split(os.Getenv(crashEnvIORs), "\n") {
			ref, err := orb.ParseIOR(s)
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.RegisterResource(orb.ImportResource(node, ref)); err != nil {
				t.Fatal(err)
			}
		}
		_ = tx.Commit(true)
		t.Fatal("superior survived its injected crash point")

	case "group":
		// Coordinator-group leader: promoted to term 1 behind the
		// group-aware replication servant, committing with the decision
		// gate (a deposed leader vetoes its in-flight commits) and a
		// barrier holding each decision until every parent-side group
		// standby has streamed it — so a post-decision kill point is
		// guaranteed to leave the decision on the survivors.
		stage := crashStage(os.Getenv(crashEnvStage))
		if stage == 0 {
			t.Fatalf("bad crash stage %q", os.Getenv(crashEnvStage))
		}
		standbys, perr := strconv.Atoi(os.Getenv(crashEnvStandbys))
		if perr != nil || standbys < 1 {
			t.Fatalf("bad standby count %q", os.Getenv(crashEnvStandbys))
		}
		g := orb.NewGroupMember(node, log, orb.GroupConfig{
			MemberID: "leader",
			Takeover: func(context.Context) error { return nil },
		})
		if _, err := node.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		if err := g.Promote(context.Background()); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("REPL %s\n", strings.Join(node.Endpoints(), " "))
		svc := ots.NewService(ots.WithLog(log),
			ots.WithRetryPolicy(1, 0),
			ots.WithDecisionGate(g.DecisionGate(10*time.Second)),
			ots.WithDecisionBarrier(func(lsn uint64) { g.Primary().WaitForAckN(lsn, standbys, 10*time.Second) }),
			ots.WithEventHook(func(e ots.Event) {
				if e.Stage == stage {
					_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
					select {} // unreachable: SIGKILL is not deliverable to a handler
				}
			}))
		tx := svc.Begin()
		for _, s := range strings.Split(os.Getenv(crashEnvIORs), "\n") {
			ref, err := orb.ParseIOR(s)
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.RegisterResource(orb.ImportResource(node, ref)); err != nil {
				t.Fatal(err)
			}
		}
		_ = tx.Commit(true)
		t.Fatal("group leader survived its injected crash point")

	case "groupbtp":
		// A coordinator-group leader acting as BTP superior, with the
		// activity journal sharing the replicated log: the atom's begun
		// record and its recoverable inferior enrollments stream to the
		// standbys alongside the confirm decision, so the elected
		// successor can re-activate the superior's live activity state —
		// not just replay its transaction log.
		standbys, perr := strconv.Atoi(os.Getenv(crashEnvStandbys))
		if perr != nil || standbys < 1 {
			t.Fatalf("bad standby count %q", os.Getenv(crashEnvStandbys))
		}
		g := orb.NewGroupMember(node, log, orb.GroupConfig{
			MemberID: "leader",
			Takeover: func(context.Context) error { return nil },
		})
		if _, err := node.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		if err := g.Promote(context.Background()); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("REPL %s\n", strings.Join(node.Endpoints(), " "))

		asvc := activityservice.New(activityservice.WithJournal(log))
		asvc.RegisterActionFactory(remoteActionFactory, func(params []byte) (activityservice.Action, error) {
			ref, err := orb.ParseIOR(string(params))
			if err != nil {
				return nil, err
			}
			return orb.ImportAction(node, ref), nil
		})
		atom, err := btp.NewAtom(asvc, "group-takeover")
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range strings.Split(os.Getenv(crashEnvActions), "\n") {
			if _, err := atom.Activity().AddRecoverableAction(btp.PrepareSetName, remoteActionFactory, []byte(s)); err != nil {
				t.Fatal(err)
			}
			if _, err := atom.Activity().AddRecoverableAction(btp.CompleteSetName, remoteActionFactory, []byte(s)); err != nil {
				t.Fatal(err)
			}
		}
		if err := atom.Prepare(context.Background()); err != nil {
			t.Fatalf("btp prepare: %v", err)
		}

		osvc := ots.NewService(ots.WithLog(log),
			ots.WithRetryPolicy(1, 0),
			ots.WithDecisionGate(g.DecisionGate(10*time.Second)),
			ots.WithDecisionBarrier(func(lsn uint64) { g.Primary().WaitForAckN(lsn, standbys, 10*time.Second) }),
			ots.WithEventHook(func(e ots.Event) {
				if e.Stage == ots.StageCommitDelivered {
					_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
					select {} // unreachable: SIGKILL is not deliverable to a handler
				}
			}))
		tx := osvc.Begin()
		for _, s := range strings.Split(os.Getenv(crashEnvIORs), "\n") {
			ref, err := orb.ParseIOR(s)
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.RegisterResource(orb.ImportResource(node, ref)); err != nil {
				t.Fatal(err)
			}
		}
		_ = tx.Commit(true)
		t.Fatal("group superior survived its injected crash point")

	case "recover":
		svc := ots.NewService(ots.WithLog(log), ots.WithRetryPolicy(2, 10*time.Millisecond))
		names, err := svc.InDoubtResources()
		if err != nil {
			t.Fatal(err)
		}
		if err := orb.BindRemoteResources(node, svc.Directory(), names); err != nil {
			t.Fatal(err)
		}
		stats, err := svc.Recover()
		if err != nil {
			t.Fatal(err)
		}
		orb.ServeRecovery(node, svc)
		if _, err := node.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("STATS replayed=%d committed=%d missing=%d failed=%d\n",
			stats.DecisionsReplayed, stats.ResourcesCommitted,
			stats.ResourcesMissing, stats.ResourcesFailed)
		fmt.Printf("ENDPOINT %s\n", strings.Join(node.Endpoints(), " "))
		_, _ = io.Copy(io.Discard, os.Stdin) // serve until the parent hangs up

	default:
		t.Fatalf("bad mode %q", mode)
	}
}

// coordinatorEnv builds the child-process environment for one helper run.
func coordinatorEnv(mode, stage, walPath string, iors []string) []string {
	return append(os.Environ(),
		crashEnvMode+"="+mode,
		crashEnvStage+"="+stage,
		crashEnvWAL+"="+walPath,
		crashEnvIORs+"="+strings.Join(iors, "\n"),
	)
}

// runCoordinatorUntilKilled re-execs the helper in commit mode and
// asserts the process died from the self-inflicted SIGKILL — not from a
// clean exit or a test failure.
func runCoordinatorUntilKilled(t *testing.T, stage, walPath string, iors []string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashRestartHelper$")
	cmd.Env = coordinatorEnv("commit", stage, walPath, iors)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("coordinator exited cleanly, want SIGKILL; output:\n%s", out)
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("coordinator: %v; output:\n%s", err, out)
	}
	ws, ok := exitErr.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("coordinator exit = %v (signaled=%v), want SIGKILL; output:\n%s",
			err, ok && ws.Signaled(), out)
	}
}

// restartedCoordinator holds the recover-mode child and what it reported.
type restartedCoordinator struct {
	cmd       *exec.Cmd
	stdin     io.WriteCloser
	replayed  int
	committed int
	missing   int
	failed    int
	endpoints []string
}

// restartCoordinator re-execs the helper in recover mode against the same
// WAL, parses its recovery-pass report, and leaves it serving wire-level
// recovery until shutdown.
func restartCoordinator(t *testing.T, walPath string) *restartedCoordinator {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashRestartHelper$")
	cmd.Env = coordinatorEnv("recover", "", walPath, nil)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	rc := &restartedCoordinator{cmd: cmd, stdin: stdin}
	t.Cleanup(func() { rc.shutdown(t) })

	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "STATS "):
			if _, err := fmt.Sscanf(line, "STATS replayed=%d committed=%d missing=%d failed=%d",
				&rc.replayed, &rc.committed, &rc.missing, &rc.failed); err != nil {
				t.Fatalf("bad stats line %q: %v", line, err)
			}
		case strings.HasPrefix(line, "ENDPOINT "):
			rc.endpoints = strings.Fields(strings.TrimPrefix(line, "ENDPOINT "))
			if len(rc.endpoints) == 0 {
				t.Fatalf("restarted coordinator reported no endpoints")
			}
			go io.Copy(io.Discard, stdout) // drain test-framework chatter
			return rc
		}
	}
	_ = cmd.Wait()
	t.Fatal("restarted coordinator exited before serving recovery")
	return nil
}

func (rc *restartedCoordinator) shutdown(t *testing.T) {
	_ = rc.stdin.Close()
	if err := rc.cmd.Wait(); err != nil {
		t.Errorf("restarted coordinator exit: %v", err)
	}
}

// crashFixture hosts the surviving participants and the coordinator WAL.
type crashFixture struct {
	walPath string
	a, b    *survivorResource
	refs    []string
}

func newCrashFixture(t *testing.T) *crashFixture {
	t.Helper()
	node := orb.New()
	t.Cleanup(node.Shutdown)
	f := &crashFixture{
		walPath: filepath.Join(t.TempDir(), "coordinator.wal"),
		a:       &survivorResource{},
		b:       &survivorResource{},
	}
	refA := orb.ExportResourceWithKey(node, "survivor-a", f.a)
	refB := orb.ExportResourceWithKey(node, "survivor-b", f.b)
	if _, err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	refA, _ = node.IOR(refA.Key)
	refB, _ = node.IOR(refB.Key)
	f.refs = []string{refA.String(), refB.String()}
	return f
}

// recoveryClient dials the restarted coordinator's wire recovery surface.
func recoveryClient(t *testing.T, rc *restartedCoordinator) *orb.RecoveryClient {
	t.Helper()
	client := orb.New()
	t.Cleanup(client.Shutdown)
	return orb.NewRecoveryClient(client, orb.RecoveryAt(rc.endpoints...))
}

// TestCrashRestart2PC is the chaos matrix: one subtest per injected kill
// point. Each subtest runs a real coordinator process to its crash point,
// restarts it, and asserts every prepared participant converges to the
// logged decision exactly once — via WAL replay for branches the restarted
// coordinator re-drives, and via wire-level replay_completion for
// participants asking after their fate.
func TestCrashRestart2PC(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	ctx := context.Background()

	t.Run("after-prepare", func(t *testing.T) {
		// Killed after both votes, before the decision record: nothing
		// durable exists, so restart must presume abort. The participants
		// learn their fate through replay_completion and roll back.
		f := newCrashFixture(t)
		runCoordinatorUntilKilled(t, "prepared", f.walPath, f.refs)
		if got := f.a.prepares.Load() + f.b.prepares.Load(); got != 2 {
			t.Fatalf("prepares before crash = %d, want 2", got)
		}
		if f.a.applies.Load()+f.b.applies.Load() != 0 {
			t.Fatal("participant committed before any durable decision")
		}

		rc := restartCoordinator(t, f.walPath)
		if rc.replayed != 0 {
			t.Fatalf("replayed = %d, want 0 (no decision survived)", rc.replayed)
		}
		cl := recoveryClient(t, rc)
		for i, name := range f.refs {
			st, err := cl.ReplayCompletion(ctx, name)
			if err != nil {
				t.Fatal(err)
			}
			if st != ots.StatusRolledBack {
				t.Fatalf("participant %d fate = %s, want rolled-back (presumed abort)", i, st)
			}
		}
		// The participants apply the answer: release by rolling back.
		if err := f.a.Rollback(); err != nil {
			t.Fatal(err)
		}
		if err := f.b.Rollback(); err != nil {
			t.Fatal(err)
		}
		if f.a.applies.Load() != 0 || f.b.applies.Load() != 0 || f.a.rollbacks.Load() != 1 {
			t.Fatalf("after presumed abort: applies=%d/%d rollbacks=%d/%d",
				f.a.applies.Load(), f.b.applies.Load(),
				f.a.rollbacks.Load(), f.b.rollbacks.Load())
		}
	})

	t.Run("after-decision", func(t *testing.T) {
		// Killed right after the commit record was forced: no participant
		// heard the verdict. Restart replays the decision from the WAL and
		// delivers commit to both — each applied exactly once.
		f := newCrashFixture(t)
		runCoordinatorUntilKilled(t, "decision", f.walPath, f.refs)
		if f.a.applies.Load()+f.b.applies.Load() != 0 {
			t.Fatal("participant committed before phase two began")
		}

		rc := restartCoordinator(t, f.walPath)
		if rc.replayed != 1 || rc.committed != 2 || rc.failed != 0 || rc.missing != 0 {
			t.Fatalf("recovery pass = replayed %d committed %d missing %d failed %d, want 1/2/0/0",
				rc.replayed, rc.committed, rc.missing, rc.failed)
		}
		if f.a.applies.Load() != 1 || f.b.applies.Load() != 1 {
			t.Fatalf("applies = %d/%d, want exactly once each",
				f.a.applies.Load(), f.b.applies.Load())
		}
		cl := recoveryClient(t, rc)
		for _, name := range f.refs {
			st, err := cl.ReplayCompletion(ctx, name)
			if err != nil {
				t.Fatal(err)
			}
			if st != ots.StatusCommitted {
				t.Fatalf("fate of %s = %s, want committed", name, st)
			}
		}
		// The decision sealed: a second wire-driven pass replays nothing.
		again, err := cl.Recover(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if again.DecisionsReplayed != 0 {
			t.Fatalf("second pass replayed %d decisions, want 0", again.DecisionsReplayed)
		}
		if f.a.commitCalls.Load() != 1 || f.b.commitCalls.Load() != 1 {
			t.Fatalf("commit deliveries = %d/%d, want 1/1 (sealed decision not re-driven)",
				f.a.commitCalls.Load(), f.b.commitCalls.Load())
		}
	})

	t.Run("mid-phase2", func(t *testing.T) {
		// Killed after the first commit delivery: one participant already
		// committed, the other is in doubt. Restart re-drives the whole
		// decision; the already-committed participant absorbs the duplicate
		// (idempotent), the other commits — every branch applied once.
		f := newCrashFixture(t)
		runCoordinatorUntilKilled(t, "phase2", f.walPath, f.refs)
		if got := f.a.applies.Load() + f.b.applies.Load(); got != 1 {
			t.Fatalf("applies at crash = %d, want exactly 1 (first delivery landed)", got)
		}

		rc := restartCoordinator(t, f.walPath)
		if rc.replayed != 1 || rc.committed != 2 || rc.failed != 0 {
			t.Fatalf("recovery pass = replayed %d committed %d failed %d, want 1/2/0",
				rc.replayed, rc.committed, rc.failed)
		}
		if f.a.applies.Load() != 1 || f.b.applies.Load() != 1 {
			t.Fatalf("applies = %d/%d, want exactly once each",
				f.a.applies.Load(), f.b.applies.Load())
		}
		if got := f.a.commitCalls.Load() + f.b.commitCalls.Load(); got != 3 {
			t.Fatalf("total commit deliveries = %d, want 3 (one pre-crash + full re-drive)", got)
		}
		cl := recoveryClient(t, rc)
		st, err := cl.ReplayCompletion(ctx, f.refs[1])
		if err != nil {
			t.Fatal(err)
		}
		if st != ots.StatusCommitted {
			t.Fatalf("in-doubt participant fate = %s, want committed", st)
		}
	})
}

// runReplicatedUntilKilled re-execs the helper as a replicated coordinator
// (mode "primary" or "btp", per env), reports its replication endpoints as
// soon as the child prints them (so the caller can attach a standby while
// the protocol is still running), and asserts the process died from the
// self-inflicted SIGKILL.
func runReplicatedUntilKilled(t *testing.T, env []string, onEndpoints func([]string)) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashRestartHelper$")
	cmd.Env = env
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	reported := false
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "REPL ") {
			endpoints := strings.Fields(strings.TrimPrefix(line, "REPL "))
			if len(endpoints) == 0 {
				t.Fatal("replicated coordinator reported no replication endpoints")
			}
			onEndpoints(endpoints)
			reported = true
			break
		}
	}
	if !reported {
		_ = cmd.Wait()
		t.Fatal("replicated coordinator exited before reporting replication endpoints")
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained until the kill
	err = cmd.Wait()
	if err == nil {
		t.Fatal("replicated coordinator exited cleanly, want SIGKILL")
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("replicated coordinator: %v", err)
	}
	ws, ok := exitErr.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("replicated coordinator exit = %v (signaled=%v), want SIGKILL", err, ok && ws.Signaled())
	}
}

// standby is the warm standby: it lives in the parent process (which is
// never killed), streams the primary's WAL into its own file-backed
// replica, and on primary death hosts recovery over the replica.
type standby struct {
	orb      *orb.ORB
	runErr   chan error
	walPath  string
	follower *orb.ReplicationFollower
}

// startStandby opens a replica log and starts following the primary's
// replication endpoints. The returned standby's runErr yields Run's
// verdict — ErrPrimaryLost once the primary stops answering.
func startStandby(t *testing.T, primaryEndpoints []string) *standby {
	t.Helper()
	s := &standby{
		orb:     orb.New(),
		runErr:  make(chan error, 1),
		walPath: filepath.Join(t.TempDir(), "replica.wal"),
	}
	t.Cleanup(s.orb.Shutdown)
	log, err := ots.OpenFileLog(s.walPath)
	if err != nil {
		t.Fatal(err)
	}
	s.follower = orb.NewReplicationFollower(s.orb, orb.ReplicationAt(primaryEndpoints...), log,
		orb.WithPollTimeout(100*time.Millisecond),
		orb.WithTakeoverPolicy(orb.TakeoverPolicy{Failures: 3, Retry: 50 * time.Millisecond}))
	go func() { s.runErr <- s.follower.Run(context.Background()) }()
	return s
}

// takeover waits for the follower to declare the primary lost, then hosts
// recovery over the replica on the standby's own listening ORB — the
// primary is never restarted. It returns the takeover recovery stats and
// the standby's endpoints.
func (s *standby) takeover(t *testing.T) (ots.RecoveryStats, []string) {
	t.Helper()
	select {
	case err := <-s.runErr:
		if !errors.Is(err, orb.ErrPrimaryLost) {
			t.Fatalf("standby follower Run = %v, want ErrPrimaryLost", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("standby never declared the primary lost")
	}
	// Reopen the replica: the follower's log handle stays valid, but a cold
	// open proves the replica is durable on disk, not just in memory.
	log, err := ots.OpenFileLog(s.walPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := orb.HostRecovery(s.orb, log, ots.WithRetryPolicy(3, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.orb.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	return res.Stats, s.orb.Endpoints()
}

// TestStandbyTakeover2PC is the replicated-coordinator chaos matrix: a
// real primary process is SIGKILLed at injected points inside a 2PC whose
// decision log is streamed (semi-synchronously) to a warm standby in the
// parent process. The primary is never restarted — every prepared branch
// must converge to the logged decision exactly once through the standby,
// and participants holding the shared multi-profile recovery reference
// (primary profile first, standby profile second) must fail over to the
// standby transparently.
func TestStandbyTakeover2PC(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	ctx := context.Background()

	// failoverClient dials recovery through the dead primary's profile
	// first: convergence must arrive via transparent failover to the
	// standby profile.
	failoverClient := func(t *testing.T, primaryEndpoints, standbyEndpoints []string) *orb.RecoveryClient {
		t.Helper()
		client := orb.New()
		t.Cleanup(client.Shutdown)
		ref := orb.RecoveryAt(append(append([]string{}, primaryEndpoints...), standbyEndpoints...)...)
		return orb.NewRecoveryClient(client, ref)
	}

	run := func(t *testing.T, stage string) (*crashFixture, *standby, []string) {
		t.Helper()
		f := newCrashFixture(t)
		var s *standby
		var primaryEndpoints []string
		runReplicatedUntilKilled(t, coordinatorEnv("primary", stage, f.walPath, f.refs), func(endpoints []string) {
			primaryEndpoints = endpoints
			s = startStandby(t, endpoints)
		})
		return f, s, primaryEndpoints
	}

	t.Run("after-prepare", func(t *testing.T) {
		// Killed after the votes, before any decision record: nothing was
		// durable on the primary, so nothing reached the standby. Takeover
		// must presume abort.
		f, s, primaryEndpoints := run(t, "prepared")
		if f.a.applies.Load()+f.b.applies.Load() != 0 {
			t.Fatal("participant committed before any durable decision")
		}
		stats, standbyEndpoints := s.takeover(t)
		if stats.DecisionsReplayed != 0 {
			t.Fatalf("takeover replayed %d decisions, want 0 (none durable)", stats.DecisionsReplayed)
		}
		cl := failoverClient(t, primaryEndpoints, standbyEndpoints)
		for i, name := range f.refs {
			st, err := cl.ReplayCompletion(ctx, name)
			if err != nil {
				t.Fatal(err)
			}
			if st != ots.StatusRolledBack {
				t.Fatalf("participant %d fate via standby = %s, want rolled-back (presumed abort)", i, st)
			}
		}
		if f.a.applies.Load() != 0 || f.b.applies.Load() != 0 {
			t.Fatal("presumed abort committed a participant")
		}
	})

	t.Run("after-decision", func(t *testing.T) {
		// The acceptance scenario: killed right after the commit record was
		// forced (and, via the decision barrier, replicated). No participant
		// heard the verdict. The standby alone must deliver commit to both,
		// exactly once, without the primary ever coming back.
		f, s, primaryEndpoints := run(t, "decision")
		if f.a.applies.Load()+f.b.applies.Load() != 0 {
			t.Fatal("participant committed before phase two began")
		}
		stats, standbyEndpoints := s.takeover(t)
		if stats.DecisionsReplayed != 1 || stats.ResourcesCommitted != 2 ||
			stats.ResourcesMissing != 0 || stats.ResourcesFailed != 0 {
			t.Fatalf("takeover pass = %+v, want 1 decision, 2 committed", stats)
		}
		if f.a.applies.Load() != 1 || f.b.applies.Load() != 1 {
			t.Fatalf("applies = %d/%d, want exactly once each",
				f.a.applies.Load(), f.b.applies.Load())
		}
		if f.a.commitCalls.Load() != 1 || f.b.commitCalls.Load() != 1 {
			t.Fatalf("commit deliveries = %d/%d, want 1/1",
				f.a.commitCalls.Load(), f.b.commitCalls.Load())
		}
		cl := failoverClient(t, primaryEndpoints, standbyEndpoints)
		for _, name := range f.refs {
			st, err := cl.ReplayCompletion(ctx, name)
			if err != nil {
				t.Fatal(err)
			}
			if st != ots.StatusCommitted {
				t.Fatalf("fate of %s via standby = %s, want committed", name, st)
			}
		}
		// The decision sealed on the standby: a wire-driven second pass
		// through the failover reference re-drives nothing.
		again, err := cl.Recover(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if again.DecisionsReplayed != 0 {
			t.Fatalf("second pass replayed %d decisions, want 0", again.DecisionsReplayed)
		}
		if f.a.commitCalls.Load() != 1 || f.b.commitCalls.Load() != 1 {
			t.Fatalf("commit deliveries after second pass = %d/%d, want still 1/1",
				f.a.commitCalls.Load(), f.b.commitCalls.Load())
		}
	})

	t.Run("mid-phase2", func(t *testing.T) {
		// Killed after the first commit delivery: one participant committed,
		// one in doubt. The standby re-drives the whole decision; the
		// committed participant absorbs the duplicate, the other commits.
		f, s, primaryEndpoints := run(t, "phase2")
		if got := f.a.applies.Load() + f.b.applies.Load(); got != 1 {
			t.Fatalf("applies at crash = %d, want exactly 1 (first delivery landed)", got)
		}
		stats, standbyEndpoints := s.takeover(t)
		if stats.DecisionsReplayed != 1 || stats.ResourcesCommitted != 2 || stats.ResourcesFailed != 0 {
			t.Fatalf("takeover pass = %+v, want 1 decision, 2 committed", stats)
		}
		if f.a.applies.Load() != 1 || f.b.applies.Load() != 1 {
			t.Fatalf("applies = %d/%d, want exactly once each",
				f.a.applies.Load(), f.b.applies.Load())
		}
		if got := f.a.commitCalls.Load() + f.b.commitCalls.Load(); got != 3 {
			t.Fatalf("total commit deliveries = %d, want 3 (one pre-crash + full re-drive)", got)
		}
		cl := failoverClient(t, primaryEndpoints, standbyEndpoints)
		st, err := cl.ReplayCompletion(ctx, f.refs[1])
		if err != nil {
			t.Fatal(err)
		}
		if st != ots.StatusCommitted {
			t.Fatalf("in-doubt participant fate via standby = %s, want committed", st)
		}
	})
}

// btpInferior is one enrolled BTP inferior hosted by the parent process.
// It has two faces over one participant state: an exported Action speaking
// the fig. 11/12 signal protocol (the superior's prepare round arrives
// here), and an exported Resource — the confirm bridge the superior
// registers under its durable decision, through which the confirm verdict
// arrives (from the superior before the kill, from the standby after).
// Both faces share one idempotent confirm latch, so the harness observes
// exactly-once convergence no matter which path delivered the verdict.
type btpInferior struct {
	prepared     atomic.Bool
	confirmed    atomic.Bool
	sigPrepares  atomic.Int32
	confirmCalls atomic.Int32
	applies      atomic.Int32
	cancels      atomic.Int32
}

// confirm applies the verdict idempotently: confirmCalls counts every
// delivery, applies counts state changes.
func (p *btpInferior) confirm() {
	p.confirmCalls.Add(1)
	if p.confirmed.CompareAndSwap(false, true) {
		p.applies.Add(1)
	}
}

// action is the BTP signal face (fig. 11/12 over the wire).
func (p *btpInferior) action() activityservice.Action {
	return activityservice.ActionFunc(
		func(_ context.Context, sig activityservice.Signal) (activityservice.Outcome, error) {
			switch sig.Name {
			case btp.SignalPrepare:
				p.sigPrepares.Add(1)
				p.prepared.Store(true)
				return activityservice.Outcome{Name: btp.OutcomePrepared}, nil
			case btp.SignalConfirm:
				p.confirm()
				return activityservice.Outcome{Name: btp.OutcomeConfirmed}, nil
			default:
				p.cancels.Add(1)
				return activityservice.Outcome{Name: btp.OutcomeCancelled}, nil
			}
		})
}

// Resource face: the superior's durable confirm decision reaches the
// inferior through these verbs. The vote enforces protocol order — a
// confirm decision may only cover an inferior the BTP exchange prepared.
func (p *btpInferior) Prepare() (ots.Vote, error) {
	if !p.prepared.Load() {
		return ots.VoteRollback, nil
	}
	return ots.VoteCommit, nil
}

func (p *btpInferior) Commit() error         { p.confirm(); return nil }
func (p *btpInferior) Rollback() error       { p.cancels.Add(1); return nil }
func (p *btpInferior) CommitOnePhase() error { p.confirm(); return nil }
func (p *btpInferior) Forget() error         { return nil }

// TestStandbyTakeoverBTPMidConfirm is the BTP half of the PR-7 follow-up:
// a real BTP superior process prepares three enrolled inferiors over the
// wire, seals its confirm decision in the replicated log, and is SIGKILLed
// between confirm deliveries — one inferior confirmed, two in doubt. The
// superior never restarts; the warm standby takes over the replica and
// must converge every enrolled inferior to confirmed exactly once, with
// the already-confirmed inferior absorbing the redelivery idempotently.
func TestStandbyTakeoverBTPMidConfirm(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	ctx := context.Background()

	node := orb.New()
	t.Cleanup(node.Shutdown)
	walPath := filepath.Join(t.TempDir(), "superior.wal")
	inferiors := []*btpInferior{{}, {}, {}}
	actionKeys := make([]string, len(inferiors))
	resourceKeys := make([]string, len(inferiors))
	for i, p := range inferiors {
		actionKeys[i] = orb.ExportAction(node, p.action()).Key
		resourceKeys[i] = orb.ExportResourceWithKey(node, fmt.Sprintf("inferior-%d", i), p).Key
	}
	if _, err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	actionRefs := make([]string, len(inferiors))
	resourceRefs := make([]string, len(inferiors))
	for i := range inferiors {
		aref, _ := node.IOR(actionKeys[i])
		rref, _ := node.IOR(resourceKeys[i])
		actionRefs[i] = aref.String()
		resourceRefs[i] = rref.String()
	}

	env := append(coordinatorEnv("btp", "phase2", walPath, resourceRefs),
		crashEnvActions+"="+strings.Join(actionRefs, "\n"))
	var s *standby
	var superiorEndpoints []string
	runReplicatedUntilKilled(t, env, func(endpoints []string) {
		superiorEndpoints = endpoints
		s = startStandby(t, endpoints)
	})

	// At the kill: every inferior went through the real prepare exchange,
	// and exactly one confirm landed — the superior died between confirm
	// decisions.
	var confirmedAtKill int32
	for i, p := range inferiors {
		if got := p.sigPrepares.Load(); got != 1 {
			t.Fatalf("inferior %d saw %d prepare signals, want 1", i, got)
		}
		confirmedAtKill += p.applies.Load()
	}
	if confirmedAtKill != 1 {
		t.Fatalf("confirms applied at crash = %d, want exactly 1 (first delivery landed)", confirmedAtKill)
	}

	stats, standbyEndpoints := s.takeover(t)
	if stats.DecisionsReplayed != 1 || stats.ResourcesCommitted != 3 ||
		stats.ResourcesMissing != 0 || stats.ResourcesFailed != 0 {
		t.Fatalf("takeover pass = %+v, want 1 decision, 3 confirmed", stats)
	}

	// Every enrolled inferior converged to confirmed exactly once: the
	// standby re-drove the whole decision (3 deliveries, 4 total with the
	// pre-crash one) and the idempotent latch absorbed the duplicate.
	var totalConfirmCalls int32
	for i, p := range inferiors {
		if got := p.applies.Load(); got != 1 {
			t.Fatalf("inferior %d confirm applied %d times, want exactly once", i, got)
		}
		if got := p.cancels.Load(); got != 0 {
			t.Fatalf("inferior %d cancelled %d times, want 0", i, got)
		}
		totalConfirmCalls += p.confirmCalls.Load()
	}
	if totalConfirmCalls != 4 {
		t.Fatalf("total confirm deliveries = %d, want 4 (one pre-crash + full re-drive)", totalConfirmCalls)
	}

	// In-doubt inferiors asking after their fate through the shared
	// failover reference (dead superior's profile first) hear confirmed
	// from the standby.
	client := orb.New()
	t.Cleanup(client.Shutdown)
	ref := orb.RecoveryAt(append(append([]string{}, superiorEndpoints...), standbyEndpoints...)...)
	cl := orb.NewRecoveryClient(client, ref)
	for i, name := range resourceRefs {
		st, err := cl.ReplayCompletion(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		if st != ots.StatusCommitted {
			t.Fatalf("inferior %d fate via standby = %s, want committed", i, st)
		}
	}
}

// groupStandby is one coordinator-group standby hosted by the parent
// process: its own ORB serving the group-aware replication servant, a
// file-backed replica of the group's log, and a GroupMember standing for
// fenced election. The Takeover callback — run only on the member that
// wins — re-hosts transaction recovery over the replica AND replays the
// activity journal, counting what it activated so the harness can assert
// the successor picked up live activity state.
type groupStandby struct {
	id      string
	orb     *orb.ORB
	log     *wal.Log
	walPath string
	g       *orb.GroupMember
	runErr  chan error

	takeovers    atomic.Int32
	factoryCalls atomic.Int32

	mu        sync.Mutex
	stats     ots.RecoveryStats
	recovered []string // names of activity-journal roots the takeover activated
}

// newGroupStandby opens the member's replica log and binds its ORB; the
// member itself starts with start (peers are only known once every
// standby's ORB is listening).
func newGroupStandby(t *testing.T, id string) *groupStandby {
	t.Helper()
	return newGroupStandbyAt(t, id, filepath.Join(t.TempDir(), id+".wal"))
}

// newGroupStandbyAt is newGroupStandby over an existing WAL path — how the
// rejoin test restarts the dead leader on its old log.
func newGroupStandbyAt(t *testing.T, id, walPath string) *groupStandby {
	t.Helper()
	s := &groupStandby{id: id, orb: orb.New(), walPath: walPath, runErr: make(chan error, 1)}
	t.Cleanup(s.orb.Shutdown)
	log, err := ots.OpenFileLog(walPath)
	if err != nil {
		t.Fatal(err)
	}
	s.log = log
	if _, err := s.orb.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	return s
}

// start wires the GroupMember and runs its follow/elect loop until the
// test ends.
func (s *groupStandby) start(t *testing.T, leaderHint, peers []string) {
	t.Helper()
	takeover := func(ctx context.Context) error {
		s.takeovers.Add(1)
		res, err := orb.HostRecovery(s.orb, s.log, ots.WithRetryPolicy(3, 10*time.Millisecond),
			ots.WithDecisionGate(s.g.DecisionGate(time.Second)))
		if err != nil {
			return err
		}
		asvc := activityservice.New()
		asvc.RegisterActionFactory(remoteActionFactory, func(params []byte) (activityservice.Action, error) {
			ref, err := orb.ParseIOR(string(params))
			if err != nil {
				return nil, err
			}
			s.factoryCalls.Add(1)
			return orb.ImportAction(s.orb, ref), nil
		})
		roots, err := asvc.Recover(s.log)
		if err != nil {
			return fmt.Errorf("activity journal takeover: %w", err)
		}
		s.mu.Lock()
		s.stats = res.Stats
		s.recovered = s.recovered[:0]
		for _, r := range roots {
			s.recovered = append(s.recovered, r.Name())
		}
		s.mu.Unlock()
		return nil
	}
	s.g = orb.NewGroupMember(s.orb, s.log, orb.GroupConfig{
		MemberID:      s.id,
		Peers:         peers,
		LeaderHint:    leaderHint,
		Takeover:      takeover,
		Poll:          100 * time.Millisecond,
		Policy:        orb.TakeoverPolicy{Failures: 3, Retry: 50 * time.Millisecond},
		ElectionRetry: 25 * time.Millisecond,
		ProbeTimeout:  time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go func() { s.runErr <- s.g.Run(ctx) }()
}

// takeoverStats returns what this member's takeover pass reported.
func (s *groupStandby) takeoverStats() (ots.RecoveryStats, []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats, append([]string(nil), s.recovered...)
}

// waitCond polls cond until it holds or the deadline passes.
func waitCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("timed out waiting for " + what)
}

// TestGroupTakeoverKillLeader2PC is the coordinator-group half of the
// chaos matrix: a real group leader (term 1) is SIGKILLed right after a
// commit decision became durable on it and on BOTH group standbys (the
// barrier held the decision until each streamed it), before any
// participant heard the verdict. The survivors elect among themselves —
// the winner's log must contain the decision, its takeover re-drives
// every prepared branch exactly once, and the loser converges onto the
// new term as a streaming follower. The dead leader never comes back.
func TestGroupTakeoverKillLeader2PC(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	ctx := context.Background()

	f := newCrashFixture(t)
	sbA := newGroupStandby(t, "sb-a")
	sbB := newGroupStandby(t, "sb-b")
	var leaderEndpoints []string
	env := append(coordinatorEnv("group", "decision", f.walPath, f.refs), crashEnvStandbys+"=2")
	runReplicatedUntilKilled(t, env, func(endpoints []string) {
		leaderEndpoints = endpoints
		sbA.start(t, endpoints, sbB.orb.Endpoints())
		sbB.start(t, endpoints, sbA.orb.Endpoints())
	})
	_ = leaderEndpoints

	// Killed at the decision point: durable everywhere, delivered nowhere.
	if f.a.applies.Load()+f.b.applies.Load() != 0 {
		t.Fatal("participant committed before phase two began")
	}

	// The group heals itself: exactly one standby claims term 2.
	var winner, loser *groupStandby
	waitCond(t, 20*time.Second, "a standby to win the election", func() bool {
		for _, m := range []*groupStandby{sbA, sbB} {
			if m.g.Role() == orb.RoleLeader {
				winner = m
				return true
			}
		}
		return false
	})
	if winner == sbA {
		loser = sbB
	} else {
		loser = sbA
	}
	waitCond(t, 10*time.Second, "the takeover pass to finish", func() bool {
		return winner.takeovers.Load() == 1
	})

	// The winner's log held the decision (the election cannot pick a
	// member missing it) and its takeover re-drove every prepared branch
	// exactly once.
	stats, recovered := winner.takeoverStats()
	if stats.DecisionsReplayed != 1 || stats.ResourcesCommitted != 2 ||
		stats.ResourcesMissing != 0 || stats.ResourcesFailed != 0 {
		t.Fatalf("takeover pass = %+v, want 1 decision, 2 committed", stats)
	}
	if len(recovered) != 0 {
		t.Fatalf("plain 2PC takeover activated %d journal roots, want 0", len(recovered))
	}
	if f.a.applies.Load() != 1 || f.b.applies.Load() != 1 {
		t.Fatalf("applies = %d/%d, want exactly once each", f.a.applies.Load(), f.b.applies.Load())
	}
	if f.a.commitCalls.Load() != 1 || f.b.commitCalls.Load() != 1 {
		t.Fatalf("commit deliveries = %d/%d, want 1/1", f.a.commitCalls.Load(), f.b.commitCalls.Load())
	}
	if got := winner.log.KnownTerm(); got != 2 {
		t.Fatalf("winner term = %d, want 2 (one election past the dead leader's term 1)", got)
	}
	if loser.takeovers.Load() != 0 {
		t.Fatalf("losing standby ran %d takeovers, want 0", loser.takeovers.Load())
	}

	// The loser demotes onto the new term and streams until byte-identical.
	waitCond(t, 15*time.Second, "the losing standby to converge on the new term", func() bool {
		return loser.g.Role() == orb.RoleFollower &&
			loser.log.KnownTerm() == 2 &&
			loser.log.LastLSN() == winner.log.LastLSN()
	})

	// The replication scrape reflects the healed group: the new leader
	// reports its term and a caught-up follower.
	waitCond(t, 10*time.Second, "the scrape to show a caught-up follower", func() bool {
		sc := winner.g.Scrape()
		if sc.Role != "leader" || sc.Term != 2 || sc.Fenced {
			return false
		}
		for _, fl := range sc.Followers {
			if fl.ID == loser.id && fl.Lag == 0 {
				return true
			}
		}
		return false
	})

	// Participants asking after their fate converge through the winner.
	client := orb.New()
	t.Cleanup(client.Shutdown)
	cl := orb.NewRecoveryClient(client, orb.RecoveryAt(winner.orb.Endpoints()...))
	for _, name := range f.refs {
		st, err := cl.ReplayCompletion(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		if st != ots.StatusCommitted {
			t.Fatalf("fate of %s via new leader = %s, want committed", name, st)
		}
	}
	if f.a.commitCalls.Load() != 1 || f.b.commitCalls.Load() != 1 {
		t.Fatalf("commit deliveries after replay = %d/%d, want still 1/1",
			f.a.commitCalls.Load(), f.b.commitCalls.Load())
	}
}

// TestGroupRejoinDeadLeaderOldWAL: the dead leader comes back. A group
// leader is SIGKILLed at the decision point, its lone standby elects
// itself (term 2) and re-drives the decision; then the harness restarts a
// member on the dead leader's OLD WAL — same path the crashed process
// forced its records to, reopened through the torn-tail repair — with no
// role flags. It must discover the higher term from the new leader and
// demote to a streaming standby of term 2, converging byte-for-byte,
// without a takeover of its own and without disturbing the exactly-once
// outcome.
func TestGroupRejoinDeadLeaderOldWAL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}

	f := newCrashFixture(t)
	sb := newGroupStandby(t, "sb")
	env := append(coordinatorEnv("group", "decision", f.walPath, f.refs), crashEnvStandbys+"=1")
	runReplicatedUntilKilled(t, env, func(endpoints []string) {
		sb.start(t, endpoints, nil)
	})

	// Sole survivor: the standby elects itself and converges the branches.
	waitCond(t, 20*time.Second, "the standby to take over", func() bool {
		return sb.g.Role() == orb.RoleLeader && sb.takeovers.Load() == 1
	})
	stats, _ := sb.takeoverStats()
	if stats.DecisionsReplayed != 1 || stats.ResourcesCommitted != 2 || stats.ResourcesFailed != 0 {
		t.Fatalf("takeover pass = %+v, want 1 decision, 2 committed", stats)
	}
	if got := sb.log.KnownTerm(); got != 2 {
		t.Fatalf("new leader term = %d, want 2", got)
	}

	// Restart the dead leader on its old WAL: no -standby/-peer style
	// bootstrapping beyond the new leader's address, no role flags.
	rejoined := newGroupStandbyAt(t, "leader", f.walPath)
	if got := rejoined.log.KnownTerm(); got != 1 {
		t.Fatalf("reopened leader WAL knows term %d, want its own term 1", got)
	}
	rejoined.start(t, sb.orb.Endpoints(), nil)

	// It adopts term 2 as a follower and streams the successor's history
	// (the re-drive's done record, the term record) until byte-identical.
	waitCond(t, 15*time.Second, "the dead leader to rejoin the new term", func() bool {
		return rejoined.g.Role() == orb.RoleFollower &&
			rejoined.log.KnownTerm() == 2 &&
			rejoined.log.LastLSN() == sb.log.LastLSN()
	})
	if rejoined.takeovers.Load() != 0 {
		t.Fatalf("rejoined member ran %d takeovers, want 0 (it is a standby now)", rejoined.takeovers.Load())
	}
	if rejoined.log.Fenced() {
		t.Fatal("rejoined member still fenced after adopting the new term")
	}

	// The new leader sees its old leader as a caught-up follower.
	waitCond(t, 10*time.Second, "the scrape to show the rejoined follower", func() bool {
		for _, fl := range sb.g.Scrape().Followers {
			if fl.ID == "leader" && fl.Lag == 0 {
				return true
			}
		}
		return false
	})

	// Exactly-once held across the whole failover + rejoin.
	if f.a.applies.Load() != 1 || f.b.applies.Load() != 1 {
		t.Fatalf("applies = %d/%d, want exactly once each", f.a.applies.Load(), f.b.applies.Load())
	}
}

// TestGroupTakeoverBTPActivityJournal: the activity-journal half of the
// group takeover. A group-leader BTP superior journals its atom (begun
// record + recoverable inferior enrollments) into the same replicated log
// that seals its confirm decision, prepares three inferiors over the wire
// and is SIGKILLed between confirm deliveries. The elected successor must
// converge every inferior to confirmed exactly once AND re-activate the
// superior's activity state from the journal — the atom root with all six
// enrolled actions recreated through the named factory.
func TestGroupTakeoverBTPActivityJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	ctx := context.Background()

	node := orb.New()
	t.Cleanup(node.Shutdown)
	walPath := filepath.Join(t.TempDir(), "superior.wal")
	inferiors := []*btpInferior{{}, {}, {}}
	actionRefs := make([]string, len(inferiors))
	resourceRefs := make([]string, len(inferiors))
	actionKeys := make([]string, len(inferiors))
	resourceKeys := make([]string, len(inferiors))
	for i, p := range inferiors {
		actionKeys[i] = orb.ExportAction(node, p.action()).Key
		resourceKeys[i] = orb.ExportResourceWithKey(node, fmt.Sprintf("inferior-%d", i), p).Key
	}
	if _, err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	for i := range inferiors {
		aref, _ := node.IOR(actionKeys[i])
		rref, _ := node.IOR(resourceKeys[i])
		actionRefs[i] = aref.String()
		resourceRefs[i] = rref.String()
	}

	sb := newGroupStandby(t, "sb")
	env := append(coordinatorEnv("groupbtp", "phase2", walPath, resourceRefs),
		crashEnvActions+"="+strings.Join(actionRefs, "\n"),
		crashEnvStandbys+"=1")
	runReplicatedUntilKilled(t, env, func(endpoints []string) {
		sb.start(t, endpoints, nil)
	})

	// At the kill: every inferior went through the real prepare exchange,
	// exactly one confirm landed.
	var confirmedAtKill int32
	for i, p := range inferiors {
		if got := p.sigPrepares.Load(); got != 1 {
			t.Fatalf("inferior %d saw %d prepare signals, want 1", i, got)
		}
		confirmedAtKill += p.applies.Load()
	}
	if confirmedAtKill != 1 {
		t.Fatalf("confirms applied at crash = %d, want exactly 1 (first delivery landed)", confirmedAtKill)
	}

	waitCond(t, 20*time.Second, "the standby to take over", func() bool {
		return sb.g.Role() == orb.RoleLeader && sb.takeovers.Load() == 1
	})
	stats, recovered := sb.takeoverStats()
	if stats.DecisionsReplayed != 1 || stats.ResourcesCommitted != 3 ||
		stats.ResourcesMissing != 0 || stats.ResourcesFailed != 0 {
		t.Fatalf("takeover pass = %+v, want 1 decision, 3 confirmed", stats)
	}

	// Exactly-once convergence of the confirm decision.
	var totalConfirmCalls int32
	for i, p := range inferiors {
		if got := p.applies.Load(); got != 1 {
			t.Fatalf("inferior %d confirm applied %d times, want exactly once", i, got)
		}
		if got := p.cancels.Load(); got != 0 {
			t.Fatalf("inferior %d cancelled %d times, want 0", i, got)
		}
		totalConfirmCalls += p.confirmCalls.Load()
	}
	if totalConfirmCalls != 4 {
		t.Fatalf("total confirm deliveries = %d, want 4 (one pre-crash + full re-drive)", totalConfirmCalls)
	}

	// The journal activated the superior's activity state on the new
	// leader: the atom root came back by name, and all six enrolled
	// actions (three inferiors x prepare+complete set) were recreated
	// through the factory the successor registered.
	if len(recovered) != 1 || recovered[0] != "group-takeover" {
		t.Fatalf("activated journal roots = %v, want [group-takeover]", recovered)
	}
	if got := sb.factoryCalls.Load(); got != 6 {
		t.Fatalf("recreated %d enrolled actions, want 6", got)
	}

	// In-doubt inferiors hear their fate from the successor.
	client := orb.New()
	t.Cleanup(client.Shutdown)
	cl := orb.NewRecoveryClient(client, orb.RecoveryAt(sb.orb.Endpoints()...))
	for i, name := range resourceRefs {
		st, err := cl.ReplayCompletion(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		if st != ots.StatusCommitted {
			t.Fatalf("inferior %d fate via successor = %s, want committed", i, st)
		}
	}
}
