// Kill-restart chaos harness: the coordinator process is killed with
// SIGKILL at injected points inside a distributed two-phase commit —
// after prepare, after the decision record is forced, and mid-phase-two —
// then restarted against the same write-ahead log. The participants live
// in THIS process and survive the kill, so the harness can observe
// exactly what each one was told before and after the crash. Recovery is
// driven end to end: WAL replay re-drives in-doubt branches, and the
// wire-level replay_completion servant answers restarted participants.
//
// These are real processes and a real kill(2): the coordinator never gets
// to run deferred cleanup, flush buffers, or say goodbye — exactly the
// failure the presumed-abort log protocol is designed for.
package activityservice_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/hls/btp"
	"github.com/extendedtx/activityservice/orb"
	"github.com/extendedtx/activityservice/ots"
)

// Environment contract between the parent test and the re-exec'd
// coordinator helper. IORs are joined with newlines: the stringified
// reference grammar uses '|' and ',' internally.
const (
	crashEnvMode    = "ACTIVITYSERVICE_CRASH_MODE"    // "commit", "primary", "btp" or "recover"
	crashEnvStage   = "ACTIVITYSERVICE_CRASH_STAGE"   // "prepared", "decision", "phase2"
	crashEnvWAL     = "ACTIVITYSERVICE_CRASH_WAL"     // coordinator log path
	crashEnvIORs    = "ACTIVITYSERVICE_CRASH_IORS"    // participant resource refs, "\n"-joined
	crashEnvActions = "ACTIVITYSERVICE_CRASH_ACTIONS" // BTP inferior action refs, "\n"-joined
)

// survivorResource is a participant hosted by the parent process. It
// persists nothing — the parent is never killed — but counts protocol
// verbs so the harness can assert exactly-once application: Commit is
// idempotent (redelivery is absorbed), and applies records how many times
// state actually changed.
type survivorResource struct {
	prepares    atomic.Int32
	commitCalls atomic.Int32
	applies     atomic.Int32
	rollbacks   atomic.Int32
	committed   atomic.Bool
}

func (r *survivorResource) Prepare() (ots.Vote, error) {
	r.prepares.Add(1)
	return ots.VoteCommit, nil
}

func (r *survivorResource) Commit() error {
	r.commitCalls.Add(1)
	if r.committed.CompareAndSwap(false, true) {
		r.applies.Add(1)
	}
	return nil
}

func (r *survivorResource) Rollback() error       { r.rollbacks.Add(1); return nil }
func (r *survivorResource) CommitOnePhase() error { return r.Commit() }
func (r *survivorResource) Forget() error         { return nil }

// crashStage maps the injected crash point to the pipeline stage at which
// the coordinator helper SIGKILLs itself.
func crashStage(name string) ots.Stage {
	switch name {
	case "prepared":
		return ots.StagePrepared
	case "decision":
		return ots.StageDecisionLogged
	case "phase2":
		return ots.StageCommitDelivered
	}
	return 0
}

// TestCrashRestartHelper is the coordinator process. It only runs when
// re-exec'd by the harness with the mode environment set.
//
// mode=commit: drive a two-participant 2PC against the parent's
// participants and SIGKILL self at the configured stage. The kill is
// raised from inside the synchronous event hook, so the process dies at
// exactly the protocol point under test — no deferred recovery runs.
//
// mode=recover: restart against the same WAL, re-drive in-doubt branches,
// report pass stats on stdout, then serve wire-level recovery
// (replay_completion and the recover verb) until stdin closes.
//
// mode=primary: like commit, but the coordinator is a replicated primary —
// it serves WAL replication, reports its endpoints ("REPL ...") so the
// parent can attach a standby, and commits with the decision barrier
// installed, so each decision is on the standby before phase two starts
// (and therefore before any post-decision kill point can fire).
//
// mode=btp: a replicated BTP superior — it prepares the parent's inferiors
// through the real fig. 11 signal exchange, seals the confirm decision in
// the replicated log, and SIGKILLs itself between confirm deliveries.
func TestCrashRestartHelper(t *testing.T) {
	mode := os.Getenv(crashEnvMode)
	if mode == "" {
		t.Skip("coordinator helper; runs only via re-exec")
	}
	log, err := ots.OpenFileLog(os.Getenv(crashEnvWAL))
	if err != nil {
		t.Fatal(err)
	}
	node := orb.New()
	defer node.Shutdown()

	switch mode {
	case "commit", "primary":
		stage := crashStage(os.Getenv(crashEnvStage))
		if stage == 0 {
			t.Fatalf("bad crash stage %q", os.Getenv(crashEnvStage))
		}
		opts := []ots.Option{ots.WithLog(log),
			ots.WithRetryPolicy(1, 0),
			ots.WithEventHook(func(e ots.Event) {
				if e.Stage == stage {
					_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
					select {} // unreachable: SIGKILL is not deliverable to a handler
				}
			})}
		if mode == "primary" {
			// Replicated primary: serve the log, tell the parent where, and
			// hold each decision until the standby acknowledges it. The
			// barrier self-synchronises attach: the parent starts its
			// standby as soon as it reads the REPL line.
			p, _ := orb.ServeReplication(node, log)
			if _, err := node.Listen("127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
			fmt.Printf("REPL %s\n", strings.Join(node.Endpoints(), " "))
			opts = append(opts, ots.WithDecisionBarrier(p.DecisionBarrier(10*time.Second)))
		}
		svc := ots.NewService(opts...)
		tx := svc.Begin()
		for _, s := range strings.Split(os.Getenv(crashEnvIORs), "\n") {
			ref, err := orb.ParseIOR(s)
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.RegisterResource(orb.ImportResource(node, ref)); err != nil {
				t.Fatal(err)
			}
		}
		_ = tx.Commit(true)
		t.Fatal("coordinator survived its injected crash point")

	case "btp":
		// Replicated BTP superior. The fig. 11 prepare exchange runs as
		// real BTP signals over the wire: every enrolled inferior reserves
		// and votes prepared. BTP then requires the superior to make its
		// confirm decision durable before any confirm goes out; this
		// repo's durable-decision substrate is the replicated OTS log, so
		// the superior seals the decision there with one branch per
		// enrolled inferior (each inferior's confirm bridge is registered
		// as a recoverable resource) and phase two delivers the confirms
		// one inferior at a time. The injected SIGKILL fires after the
		// first confirm delivery — dead between confirm decisions — and
		// the warm standby following the log must converge the rest.
		p, _ := orb.ServeReplication(node, log)
		if _, err := node.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("REPL %s\n", strings.Join(node.Endpoints(), " "))

		asvc := activityservice.New()
		atom, err := btp.NewAtom(asvc, "standby-takeover")
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range strings.Split(os.Getenv(crashEnvActions), "\n") {
			ref, err := orb.ParseIOR(s)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("inferior-%d", i)
			act := orb.ImportAction(node, ref)
			if _, err := atom.Activity().AddNamedAction(btp.PrepareSetName, label, act); err != nil {
				t.Fatal(err)
			}
			if _, err := atom.Activity().AddNamedAction(btp.CompleteSetName, label, act); err != nil {
				t.Fatal(err)
			}
		}
		if err := atom.Prepare(context.Background()); err != nil {
			t.Fatalf("btp prepare: %v", err)
		}

		osvc := ots.NewService(ots.WithLog(log),
			ots.WithRetryPolicy(1, 0),
			ots.WithDecisionBarrier(p.DecisionBarrier(10*time.Second)),
			ots.WithEventHook(func(e ots.Event) {
				if e.Stage == ots.StageCommitDelivered {
					_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
					select {} // unreachable: SIGKILL is not deliverable to a handler
				}
			}))
		tx := osvc.Begin()
		for _, s := range strings.Split(os.Getenv(crashEnvIORs), "\n") {
			ref, err := orb.ParseIOR(s)
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.RegisterResource(orb.ImportResource(node, ref)); err != nil {
				t.Fatal(err)
			}
		}
		_ = tx.Commit(true)
		t.Fatal("superior survived its injected crash point")

	case "recover":
		svc := ots.NewService(ots.WithLog(log), ots.WithRetryPolicy(2, 10*time.Millisecond))
		names, err := svc.InDoubtResources()
		if err != nil {
			t.Fatal(err)
		}
		if err := orb.BindRemoteResources(node, svc.Directory(), names); err != nil {
			t.Fatal(err)
		}
		stats, err := svc.Recover()
		if err != nil {
			t.Fatal(err)
		}
		orb.ServeRecovery(node, svc)
		if _, err := node.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("STATS replayed=%d committed=%d missing=%d failed=%d\n",
			stats.DecisionsReplayed, stats.ResourcesCommitted,
			stats.ResourcesMissing, stats.ResourcesFailed)
		fmt.Printf("ENDPOINT %s\n", strings.Join(node.Endpoints(), " "))
		_, _ = io.Copy(io.Discard, os.Stdin) // serve until the parent hangs up

	default:
		t.Fatalf("bad mode %q", mode)
	}
}

// coordinatorEnv builds the child-process environment for one helper run.
func coordinatorEnv(mode, stage, walPath string, iors []string) []string {
	return append(os.Environ(),
		crashEnvMode+"="+mode,
		crashEnvStage+"="+stage,
		crashEnvWAL+"="+walPath,
		crashEnvIORs+"="+strings.Join(iors, "\n"),
	)
}

// runCoordinatorUntilKilled re-execs the helper in commit mode and
// asserts the process died from the self-inflicted SIGKILL — not from a
// clean exit or a test failure.
func runCoordinatorUntilKilled(t *testing.T, stage, walPath string, iors []string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashRestartHelper$")
	cmd.Env = coordinatorEnv("commit", stage, walPath, iors)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("coordinator exited cleanly, want SIGKILL; output:\n%s", out)
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("coordinator: %v; output:\n%s", err, out)
	}
	ws, ok := exitErr.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("coordinator exit = %v (signaled=%v), want SIGKILL; output:\n%s",
			err, ok && ws.Signaled(), out)
	}
}

// restartedCoordinator holds the recover-mode child and what it reported.
type restartedCoordinator struct {
	cmd       *exec.Cmd
	stdin     io.WriteCloser
	replayed  int
	committed int
	missing   int
	failed    int
	endpoints []string
}

// restartCoordinator re-execs the helper in recover mode against the same
// WAL, parses its recovery-pass report, and leaves it serving wire-level
// recovery until shutdown.
func restartCoordinator(t *testing.T, walPath string) *restartedCoordinator {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashRestartHelper$")
	cmd.Env = coordinatorEnv("recover", "", walPath, nil)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	rc := &restartedCoordinator{cmd: cmd, stdin: stdin}
	t.Cleanup(func() { rc.shutdown(t) })

	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "STATS "):
			if _, err := fmt.Sscanf(line, "STATS replayed=%d committed=%d missing=%d failed=%d",
				&rc.replayed, &rc.committed, &rc.missing, &rc.failed); err != nil {
				t.Fatalf("bad stats line %q: %v", line, err)
			}
		case strings.HasPrefix(line, "ENDPOINT "):
			rc.endpoints = strings.Fields(strings.TrimPrefix(line, "ENDPOINT "))
			if len(rc.endpoints) == 0 {
				t.Fatalf("restarted coordinator reported no endpoints")
			}
			go io.Copy(io.Discard, stdout) // drain test-framework chatter
			return rc
		}
	}
	_ = cmd.Wait()
	t.Fatal("restarted coordinator exited before serving recovery")
	return nil
}

func (rc *restartedCoordinator) shutdown(t *testing.T) {
	_ = rc.stdin.Close()
	if err := rc.cmd.Wait(); err != nil {
		t.Errorf("restarted coordinator exit: %v", err)
	}
}

// crashFixture hosts the surviving participants and the coordinator WAL.
type crashFixture struct {
	walPath string
	a, b    *survivorResource
	refs    []string
}

func newCrashFixture(t *testing.T) *crashFixture {
	t.Helper()
	node := orb.New()
	t.Cleanup(node.Shutdown)
	f := &crashFixture{
		walPath: filepath.Join(t.TempDir(), "coordinator.wal"),
		a:       &survivorResource{},
		b:       &survivorResource{},
	}
	refA := orb.ExportResourceWithKey(node, "survivor-a", f.a)
	refB := orb.ExportResourceWithKey(node, "survivor-b", f.b)
	if _, err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	refA, _ = node.IOR(refA.Key)
	refB, _ = node.IOR(refB.Key)
	f.refs = []string{refA.String(), refB.String()}
	return f
}

// recoveryClient dials the restarted coordinator's wire recovery surface.
func recoveryClient(t *testing.T, rc *restartedCoordinator) *orb.RecoveryClient {
	t.Helper()
	client := orb.New()
	t.Cleanup(client.Shutdown)
	return orb.NewRecoveryClient(client, orb.RecoveryAt(rc.endpoints...))
}

// TestCrashRestart2PC is the chaos matrix: one subtest per injected kill
// point. Each subtest runs a real coordinator process to its crash point,
// restarts it, and asserts every prepared participant converges to the
// logged decision exactly once — via WAL replay for branches the restarted
// coordinator re-drives, and via wire-level replay_completion for
// participants asking after their fate.
func TestCrashRestart2PC(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	ctx := context.Background()

	t.Run("after-prepare", func(t *testing.T) {
		// Killed after both votes, before the decision record: nothing
		// durable exists, so restart must presume abort. The participants
		// learn their fate through replay_completion and roll back.
		f := newCrashFixture(t)
		runCoordinatorUntilKilled(t, "prepared", f.walPath, f.refs)
		if got := f.a.prepares.Load() + f.b.prepares.Load(); got != 2 {
			t.Fatalf("prepares before crash = %d, want 2", got)
		}
		if f.a.applies.Load()+f.b.applies.Load() != 0 {
			t.Fatal("participant committed before any durable decision")
		}

		rc := restartCoordinator(t, f.walPath)
		if rc.replayed != 0 {
			t.Fatalf("replayed = %d, want 0 (no decision survived)", rc.replayed)
		}
		cl := recoveryClient(t, rc)
		for i, name := range f.refs {
			st, err := cl.ReplayCompletion(ctx, name)
			if err != nil {
				t.Fatal(err)
			}
			if st != ots.StatusRolledBack {
				t.Fatalf("participant %d fate = %s, want rolled-back (presumed abort)", i, st)
			}
		}
		// The participants apply the answer: release by rolling back.
		if err := f.a.Rollback(); err != nil {
			t.Fatal(err)
		}
		if err := f.b.Rollback(); err != nil {
			t.Fatal(err)
		}
		if f.a.applies.Load() != 0 || f.b.applies.Load() != 0 || f.a.rollbacks.Load() != 1 {
			t.Fatalf("after presumed abort: applies=%d/%d rollbacks=%d/%d",
				f.a.applies.Load(), f.b.applies.Load(),
				f.a.rollbacks.Load(), f.b.rollbacks.Load())
		}
	})

	t.Run("after-decision", func(t *testing.T) {
		// Killed right after the commit record was forced: no participant
		// heard the verdict. Restart replays the decision from the WAL and
		// delivers commit to both — each applied exactly once.
		f := newCrashFixture(t)
		runCoordinatorUntilKilled(t, "decision", f.walPath, f.refs)
		if f.a.applies.Load()+f.b.applies.Load() != 0 {
			t.Fatal("participant committed before phase two began")
		}

		rc := restartCoordinator(t, f.walPath)
		if rc.replayed != 1 || rc.committed != 2 || rc.failed != 0 || rc.missing != 0 {
			t.Fatalf("recovery pass = replayed %d committed %d missing %d failed %d, want 1/2/0/0",
				rc.replayed, rc.committed, rc.missing, rc.failed)
		}
		if f.a.applies.Load() != 1 || f.b.applies.Load() != 1 {
			t.Fatalf("applies = %d/%d, want exactly once each",
				f.a.applies.Load(), f.b.applies.Load())
		}
		cl := recoveryClient(t, rc)
		for _, name := range f.refs {
			st, err := cl.ReplayCompletion(ctx, name)
			if err != nil {
				t.Fatal(err)
			}
			if st != ots.StatusCommitted {
				t.Fatalf("fate of %s = %s, want committed", name, st)
			}
		}
		// The decision sealed: a second wire-driven pass replays nothing.
		again, err := cl.Recover(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if again.DecisionsReplayed != 0 {
			t.Fatalf("second pass replayed %d decisions, want 0", again.DecisionsReplayed)
		}
		if f.a.commitCalls.Load() != 1 || f.b.commitCalls.Load() != 1 {
			t.Fatalf("commit deliveries = %d/%d, want 1/1 (sealed decision not re-driven)",
				f.a.commitCalls.Load(), f.b.commitCalls.Load())
		}
	})

	t.Run("mid-phase2", func(t *testing.T) {
		// Killed after the first commit delivery: one participant already
		// committed, the other is in doubt. Restart re-drives the whole
		// decision; the already-committed participant absorbs the duplicate
		// (idempotent), the other commits — every branch applied once.
		f := newCrashFixture(t)
		runCoordinatorUntilKilled(t, "phase2", f.walPath, f.refs)
		if got := f.a.applies.Load() + f.b.applies.Load(); got != 1 {
			t.Fatalf("applies at crash = %d, want exactly 1 (first delivery landed)", got)
		}

		rc := restartCoordinator(t, f.walPath)
		if rc.replayed != 1 || rc.committed != 2 || rc.failed != 0 {
			t.Fatalf("recovery pass = replayed %d committed %d failed %d, want 1/2/0",
				rc.replayed, rc.committed, rc.failed)
		}
		if f.a.applies.Load() != 1 || f.b.applies.Load() != 1 {
			t.Fatalf("applies = %d/%d, want exactly once each",
				f.a.applies.Load(), f.b.applies.Load())
		}
		if got := f.a.commitCalls.Load() + f.b.commitCalls.Load(); got != 3 {
			t.Fatalf("total commit deliveries = %d, want 3 (one pre-crash + full re-drive)", got)
		}
		cl := recoveryClient(t, rc)
		st, err := cl.ReplayCompletion(ctx, f.refs[1])
		if err != nil {
			t.Fatal(err)
		}
		if st != ots.StatusCommitted {
			t.Fatalf("in-doubt participant fate = %s, want committed", st)
		}
	})
}

// runReplicatedUntilKilled re-execs the helper as a replicated coordinator
// (mode "primary" or "btp", per env), reports its replication endpoints as
// soon as the child prints them (so the caller can attach a standby while
// the protocol is still running), and asserts the process died from the
// self-inflicted SIGKILL.
func runReplicatedUntilKilled(t *testing.T, env []string, onEndpoints func([]string)) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashRestartHelper$")
	cmd.Env = env
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	reported := false
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "REPL ") {
			endpoints := strings.Fields(strings.TrimPrefix(line, "REPL "))
			if len(endpoints) == 0 {
				t.Fatal("replicated coordinator reported no replication endpoints")
			}
			onEndpoints(endpoints)
			reported = true
			break
		}
	}
	if !reported {
		_ = cmd.Wait()
		t.Fatal("replicated coordinator exited before reporting replication endpoints")
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained until the kill
	err = cmd.Wait()
	if err == nil {
		t.Fatal("replicated coordinator exited cleanly, want SIGKILL")
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("replicated coordinator: %v", err)
	}
	ws, ok := exitErr.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("replicated coordinator exit = %v (signaled=%v), want SIGKILL", err, ok && ws.Signaled())
	}
}

// standby is the warm standby: it lives in the parent process (which is
// never killed), streams the primary's WAL into its own file-backed
// replica, and on primary death hosts recovery over the replica.
type standby struct {
	orb      *orb.ORB
	runErr   chan error
	walPath  string
	follower *orb.ReplicationFollower
}

// startStandby opens a replica log and starts following the primary's
// replication endpoints. The returned standby's runErr yields Run's
// verdict — ErrPrimaryLost once the primary stops answering.
func startStandby(t *testing.T, primaryEndpoints []string) *standby {
	t.Helper()
	s := &standby{
		orb:     orb.New(),
		runErr:  make(chan error, 1),
		walPath: filepath.Join(t.TempDir(), "replica.wal"),
	}
	t.Cleanup(s.orb.Shutdown)
	log, err := ots.OpenFileLog(s.walPath)
	if err != nil {
		t.Fatal(err)
	}
	s.follower = orb.NewReplicationFollower(s.orb, orb.ReplicationAt(primaryEndpoints...), log,
		orb.WithPollTimeout(100*time.Millisecond),
		orb.WithTakeoverPolicy(orb.TakeoverPolicy{Failures: 3, Retry: 50 * time.Millisecond}))
	go func() { s.runErr <- s.follower.Run(context.Background()) }()
	return s
}

// takeover waits for the follower to declare the primary lost, then hosts
// recovery over the replica on the standby's own listening ORB — the
// primary is never restarted. It returns the takeover recovery stats and
// the standby's endpoints.
func (s *standby) takeover(t *testing.T) (ots.RecoveryStats, []string) {
	t.Helper()
	select {
	case err := <-s.runErr:
		if !errors.Is(err, orb.ErrPrimaryLost) {
			t.Fatalf("standby follower Run = %v, want ErrPrimaryLost", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("standby never declared the primary lost")
	}
	// Reopen the replica: the follower's log handle stays valid, but a cold
	// open proves the replica is durable on disk, not just in memory.
	log, err := ots.OpenFileLog(s.walPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := orb.HostRecovery(s.orb, log, ots.WithRetryPolicy(3, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.orb.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	return res.Stats, s.orb.Endpoints()
}

// TestStandbyTakeover2PC is the replicated-coordinator chaos matrix: a
// real primary process is SIGKILLed at injected points inside a 2PC whose
// decision log is streamed (semi-synchronously) to a warm standby in the
// parent process. The primary is never restarted — every prepared branch
// must converge to the logged decision exactly once through the standby,
// and participants holding the shared multi-profile recovery reference
// (primary profile first, standby profile second) must fail over to the
// standby transparently.
func TestStandbyTakeover2PC(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	ctx := context.Background()

	// failoverClient dials recovery through the dead primary's profile
	// first: convergence must arrive via transparent failover to the
	// standby profile.
	failoverClient := func(t *testing.T, primaryEndpoints, standbyEndpoints []string) *orb.RecoveryClient {
		t.Helper()
		client := orb.New()
		t.Cleanup(client.Shutdown)
		ref := orb.RecoveryAt(append(append([]string{}, primaryEndpoints...), standbyEndpoints...)...)
		return orb.NewRecoveryClient(client, ref)
	}

	run := func(t *testing.T, stage string) (*crashFixture, *standby, []string) {
		t.Helper()
		f := newCrashFixture(t)
		var s *standby
		var primaryEndpoints []string
		runReplicatedUntilKilled(t, coordinatorEnv("primary", stage, f.walPath, f.refs), func(endpoints []string) {
			primaryEndpoints = endpoints
			s = startStandby(t, endpoints)
		})
		return f, s, primaryEndpoints
	}

	t.Run("after-prepare", func(t *testing.T) {
		// Killed after the votes, before any decision record: nothing was
		// durable on the primary, so nothing reached the standby. Takeover
		// must presume abort.
		f, s, primaryEndpoints := run(t, "prepared")
		if f.a.applies.Load()+f.b.applies.Load() != 0 {
			t.Fatal("participant committed before any durable decision")
		}
		stats, standbyEndpoints := s.takeover(t)
		if stats.DecisionsReplayed != 0 {
			t.Fatalf("takeover replayed %d decisions, want 0 (none durable)", stats.DecisionsReplayed)
		}
		cl := failoverClient(t, primaryEndpoints, standbyEndpoints)
		for i, name := range f.refs {
			st, err := cl.ReplayCompletion(ctx, name)
			if err != nil {
				t.Fatal(err)
			}
			if st != ots.StatusRolledBack {
				t.Fatalf("participant %d fate via standby = %s, want rolled-back (presumed abort)", i, st)
			}
		}
		if f.a.applies.Load() != 0 || f.b.applies.Load() != 0 {
			t.Fatal("presumed abort committed a participant")
		}
	})

	t.Run("after-decision", func(t *testing.T) {
		// The acceptance scenario: killed right after the commit record was
		// forced (and, via the decision barrier, replicated). No participant
		// heard the verdict. The standby alone must deliver commit to both,
		// exactly once, without the primary ever coming back.
		f, s, primaryEndpoints := run(t, "decision")
		if f.a.applies.Load()+f.b.applies.Load() != 0 {
			t.Fatal("participant committed before phase two began")
		}
		stats, standbyEndpoints := s.takeover(t)
		if stats.DecisionsReplayed != 1 || stats.ResourcesCommitted != 2 ||
			stats.ResourcesMissing != 0 || stats.ResourcesFailed != 0 {
			t.Fatalf("takeover pass = %+v, want 1 decision, 2 committed", stats)
		}
		if f.a.applies.Load() != 1 || f.b.applies.Load() != 1 {
			t.Fatalf("applies = %d/%d, want exactly once each",
				f.a.applies.Load(), f.b.applies.Load())
		}
		if f.a.commitCalls.Load() != 1 || f.b.commitCalls.Load() != 1 {
			t.Fatalf("commit deliveries = %d/%d, want 1/1",
				f.a.commitCalls.Load(), f.b.commitCalls.Load())
		}
		cl := failoverClient(t, primaryEndpoints, standbyEndpoints)
		for _, name := range f.refs {
			st, err := cl.ReplayCompletion(ctx, name)
			if err != nil {
				t.Fatal(err)
			}
			if st != ots.StatusCommitted {
				t.Fatalf("fate of %s via standby = %s, want committed", name, st)
			}
		}
		// The decision sealed on the standby: a wire-driven second pass
		// through the failover reference re-drives nothing.
		again, err := cl.Recover(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if again.DecisionsReplayed != 0 {
			t.Fatalf("second pass replayed %d decisions, want 0", again.DecisionsReplayed)
		}
		if f.a.commitCalls.Load() != 1 || f.b.commitCalls.Load() != 1 {
			t.Fatalf("commit deliveries after second pass = %d/%d, want still 1/1",
				f.a.commitCalls.Load(), f.b.commitCalls.Load())
		}
	})

	t.Run("mid-phase2", func(t *testing.T) {
		// Killed after the first commit delivery: one participant committed,
		// one in doubt. The standby re-drives the whole decision; the
		// committed participant absorbs the duplicate, the other commits.
		f, s, primaryEndpoints := run(t, "phase2")
		if got := f.a.applies.Load() + f.b.applies.Load(); got != 1 {
			t.Fatalf("applies at crash = %d, want exactly 1 (first delivery landed)", got)
		}
		stats, standbyEndpoints := s.takeover(t)
		if stats.DecisionsReplayed != 1 || stats.ResourcesCommitted != 2 || stats.ResourcesFailed != 0 {
			t.Fatalf("takeover pass = %+v, want 1 decision, 2 committed", stats)
		}
		if f.a.applies.Load() != 1 || f.b.applies.Load() != 1 {
			t.Fatalf("applies = %d/%d, want exactly once each",
				f.a.applies.Load(), f.b.applies.Load())
		}
		if got := f.a.commitCalls.Load() + f.b.commitCalls.Load(); got != 3 {
			t.Fatalf("total commit deliveries = %d, want 3 (one pre-crash + full re-drive)", got)
		}
		cl := failoverClient(t, primaryEndpoints, standbyEndpoints)
		st, err := cl.ReplayCompletion(ctx, f.refs[1])
		if err != nil {
			t.Fatal(err)
		}
		if st != ots.StatusCommitted {
			t.Fatalf("in-doubt participant fate via standby = %s, want committed", st)
		}
	})
}

// btpInferior is one enrolled BTP inferior hosted by the parent process.
// It has two faces over one participant state: an exported Action speaking
// the fig. 11/12 signal protocol (the superior's prepare round arrives
// here), and an exported Resource — the confirm bridge the superior
// registers under its durable decision, through which the confirm verdict
// arrives (from the superior before the kill, from the standby after).
// Both faces share one idempotent confirm latch, so the harness observes
// exactly-once convergence no matter which path delivered the verdict.
type btpInferior struct {
	prepared     atomic.Bool
	confirmed    atomic.Bool
	sigPrepares  atomic.Int32
	confirmCalls atomic.Int32
	applies      atomic.Int32
	cancels      atomic.Int32
}

// confirm applies the verdict idempotently: confirmCalls counts every
// delivery, applies counts state changes.
func (p *btpInferior) confirm() {
	p.confirmCalls.Add(1)
	if p.confirmed.CompareAndSwap(false, true) {
		p.applies.Add(1)
	}
}

// action is the BTP signal face (fig. 11/12 over the wire).
func (p *btpInferior) action() activityservice.Action {
	return activityservice.ActionFunc(
		func(_ context.Context, sig activityservice.Signal) (activityservice.Outcome, error) {
			switch sig.Name {
			case btp.SignalPrepare:
				p.sigPrepares.Add(1)
				p.prepared.Store(true)
				return activityservice.Outcome{Name: btp.OutcomePrepared}, nil
			case btp.SignalConfirm:
				p.confirm()
				return activityservice.Outcome{Name: btp.OutcomeConfirmed}, nil
			default:
				p.cancels.Add(1)
				return activityservice.Outcome{Name: btp.OutcomeCancelled}, nil
			}
		})
}

// Resource face: the superior's durable confirm decision reaches the
// inferior through these verbs. The vote enforces protocol order — a
// confirm decision may only cover an inferior the BTP exchange prepared.
func (p *btpInferior) Prepare() (ots.Vote, error) {
	if !p.prepared.Load() {
		return ots.VoteRollback, nil
	}
	return ots.VoteCommit, nil
}

func (p *btpInferior) Commit() error         { p.confirm(); return nil }
func (p *btpInferior) Rollback() error       { p.cancels.Add(1); return nil }
func (p *btpInferior) CommitOnePhase() error { p.confirm(); return nil }
func (p *btpInferior) Forget() error         { return nil }

// TestStandbyTakeoverBTPMidConfirm is the BTP half of the PR-7 follow-up:
// a real BTP superior process prepares three enrolled inferiors over the
// wire, seals its confirm decision in the replicated log, and is SIGKILLed
// between confirm deliveries — one inferior confirmed, two in doubt. The
// superior never restarts; the warm standby takes over the replica and
// must converge every enrolled inferior to confirmed exactly once, with
// the already-confirmed inferior absorbing the redelivery idempotently.
func TestStandbyTakeoverBTPMidConfirm(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	ctx := context.Background()

	node := orb.New()
	t.Cleanup(node.Shutdown)
	walPath := filepath.Join(t.TempDir(), "superior.wal")
	inferiors := []*btpInferior{{}, {}, {}}
	actionKeys := make([]string, len(inferiors))
	resourceKeys := make([]string, len(inferiors))
	for i, p := range inferiors {
		actionKeys[i] = orb.ExportAction(node, p.action()).Key
		resourceKeys[i] = orb.ExportResourceWithKey(node, fmt.Sprintf("inferior-%d", i), p).Key
	}
	if _, err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	actionRefs := make([]string, len(inferiors))
	resourceRefs := make([]string, len(inferiors))
	for i := range inferiors {
		aref, _ := node.IOR(actionKeys[i])
		rref, _ := node.IOR(resourceKeys[i])
		actionRefs[i] = aref.String()
		resourceRefs[i] = rref.String()
	}

	env := append(coordinatorEnv("btp", "phase2", walPath, resourceRefs),
		crashEnvActions+"="+strings.Join(actionRefs, "\n"))
	var s *standby
	var superiorEndpoints []string
	runReplicatedUntilKilled(t, env, func(endpoints []string) {
		superiorEndpoints = endpoints
		s = startStandby(t, endpoints)
	})

	// At the kill: every inferior went through the real prepare exchange,
	// and exactly one confirm landed — the superior died between confirm
	// decisions.
	var confirmedAtKill int32
	for i, p := range inferiors {
		if got := p.sigPrepares.Load(); got != 1 {
			t.Fatalf("inferior %d saw %d prepare signals, want 1", i, got)
		}
		confirmedAtKill += p.applies.Load()
	}
	if confirmedAtKill != 1 {
		t.Fatalf("confirms applied at crash = %d, want exactly 1 (first delivery landed)", confirmedAtKill)
	}

	stats, standbyEndpoints := s.takeover(t)
	if stats.DecisionsReplayed != 1 || stats.ResourcesCommitted != 3 ||
		stats.ResourcesMissing != 0 || stats.ResourcesFailed != 0 {
		t.Fatalf("takeover pass = %+v, want 1 decision, 3 confirmed", stats)
	}

	// Every enrolled inferior converged to confirmed exactly once: the
	// standby re-drove the whole decision (3 deliveries, 4 total with the
	// pre-crash one) and the idempotent latch absorbed the duplicate.
	var totalConfirmCalls int32
	for i, p := range inferiors {
		if got := p.applies.Load(); got != 1 {
			t.Fatalf("inferior %d confirm applied %d times, want exactly once", i, got)
		}
		if got := p.cancels.Load(); got != 0 {
			t.Fatalf("inferior %d cancelled %d times, want 0", i, got)
		}
		totalConfirmCalls += p.confirmCalls.Load()
	}
	if totalConfirmCalls != 4 {
		t.Fatalf("total confirm deliveries = %d, want 4 (one pre-crash + full re-drive)", totalConfirmCalls)
	}

	// In-doubt inferiors asking after their fate through the shared
	// failover reference (dead superior's profile first) hear confirmed
	// from the standby.
	client := orb.New()
	t.Cleanup(client.Shutdown)
	ref := orb.RecoveryAt(append(append([]string{}, superiorEndpoints...), standbyEndpoints...)...)
	cl := orb.NewRecoveryClient(client, ref)
	for i, name := range resourceRefs {
		st, err := cl.ReplayCompletion(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		if st != ots.StatusCommitted {
			t.Fatalf("inferior %d fate via standby = %s, want committed", i, st)
		}
	}
}
