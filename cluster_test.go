// Sharded-fleet integration suite: consistent-hash routing over the
// public facade, the naming-rebind-vs-epoch-bump race, and the
// kill-one-shard chaos scenario — a real member process SIGKILLed
// mid-2PC whose prepared branches must converge exactly once through
// its warm standby while the rest of the ring keeps serving.
package activityservice_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/orb"
	"github.com/extendedtx/activityservice/ots"
)

// shardNode is one in-process fleet member built entirely from the
// public facade: ORB, activity service, shard guard, sharded factory.
type shardNode struct {
	orb     *orb.ORB
	svc     *activityservice.Service
	member  *orb.ShardMember
	factory *orb.ActivityFactory
}

func newShardNode(t *testing.T, id string, authRef orb.IOR) *shardNode {
	t.Helper()
	node := orb.New()
	t.Cleanup(node.Shutdown)
	if _, err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	svc := activityservice.New()
	member := orb.NewShardMember(node, id, authRef, orb.WithOnDrain(svc.Drain))
	t.Cleanup(member.Stop)
	factory := orb.ServeActivityFactory(node, svc, orb.WithFactoryShard(member))
	return &shardNode{orb: node, svc: svc, member: member, factory: factory}
}

// joinFleet adds the node to the map and syncs every member onto the
// new epoch.
func joinFleet(t *testing.T, auth *orb.ShardAuthority, nodes map[string]*shardNode, id string) {
	t.Helper()
	n := nodes[id]
	if _, err := auth.Add(orb.ClusterMember{ID: id, Endpoints: n.orb.Endpoints(), Weight: 1}); err != nil {
		t.Fatal(err)
	}
	for _, m := range nodes {
		if err := m.member.Sync(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

func clusterKey(i int) string { return fmt.Sprintf("order-%04d", i) }

// TestClusterShardedBeginComplete drives begins through the shard
// router across a four-member fleet and checks the work landed exactly
// where the ring says, then grows the fleet and checks the router heals
// onto the new ownership through WrongShard redirects alone.
func TestClusterShardedBeginComplete(t *testing.T) {
	ctx := context.Background()
	authORB := orb.New()
	t.Cleanup(authORB.Shutdown)
	if _, err := authORB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	auth := orb.NewShardAuthority(nil)
	orb.ServeShardMap(authORB, auth)
	authRef, _ := authORB.IOR(orb.ShardMapKey)

	nodes := map[string]*shardNode{}
	for _, id := range []string{"n1", "n2", "n3", "n4"} {
		nodes[id] = newShardNode(t, id, authRef)
		joinFleet(t, auth, nodes, id)
	}

	client := orb.New()
	t.Cleanup(client.Shutdown)
	router := orb.NewShardRouter(client, authRef)

	const ops = 40
	for i := 0; i < ops; i++ {
		proxy, err := router.BeginActivity(ctx, clusterKey(i))
		if err != nil {
			t.Fatalf("begin %d: %v", i, err)
		}
		if _, err := proxy.Complete(ctx, activityservice.CompletionSuccess); err != nil {
			t.Fatalf("complete %d: %v", i, err)
		}
	}
	m := router.Map()
	var total uint64
	for id, n := range nodes {
		want := uint64(0)
		for i := 0; i < ops; i++ {
			if owner, ok := m.Owner(clusterKey(i)); ok && owner.ID == id {
				want++
			}
		}
		if got := n.factory.Begins(); got != want {
			t.Errorf("member %s began %d, ring says %d", id, got, want)
		}
		total += n.factory.Begins()
	}
	if total != ops {
		t.Fatalf("fleet began %d, want %d", total, ops)
	}

	// Grow the fleet behind the router's back: moved keys must heal via
	// WrongShard redirects, each executing exactly once.
	nodes["n5"] = newShardNode(t, "n5", authRef)
	joinFleet(t, auth, nodes, "n5")
	before := total
	for i := ops; i < 2*ops; i++ {
		proxy, err := router.BeginActivity(ctx, clusterKey(i))
		if err != nil {
			t.Fatalf("begin %d after grow: %v", i, err)
		}
		if _, err := proxy.Complete(ctx, activityservice.CompletionSuccess); err != nil {
			t.Fatal(err)
		}
	}
	total = 0
	for _, n := range nodes {
		total += n.factory.Begins()
	}
	if total != before+ops {
		t.Fatalf("fleet began %d after grow, want %d (no double executions)", total, before+ops)
	}
	if router.Map().Epoch != auth.Current().Epoch {
		t.Fatalf("router epoch %d never converged to authority epoch %d",
			router.Map().Epoch, auth.Current().Epoch)
	}
}

// TestClusterRebindRace races a naming rebind against a shard-map epoch
// bump: the client holds BOTH a stale map and a stale authority IOR
// (the authority moved hosts after the client bootstrapped). A routed
// begin must converge — WrongShard redirect, failed refetch through the
// dead authority reference, naming re-resolve, fresh map, retry — and
// the idempotent begin must execute exactly once across the fleet.
func TestClusterRebindRace(t *testing.T) {
	ctx := context.Background()

	// First-generation authority host, also serving the name service.
	authORB1 := orb.New()
	if _, err := authORB1.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	auth := orb.NewShardAuthority(nil)
	orb.ServeShardMap(authORB1, auth)
	authRef1, _ := authORB1.IOR(orb.ShardMapKey)

	nsORB := orb.New()
	t.Cleanup(nsORB.Shutdown)
	ns := orb.NewNameServer()
	ns.Serve(nsORB)
	if _, err := nsORB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ns.Bind("shard-map", authRef1)
	nsRef, _ := nsORB.IOR("naming")

	nodes := map[string]*shardNode{}
	for _, id := range []string{"r1", "r2"} {
		nodes[id] = newShardNode(t, id, authRef1)
		joinFleet(t, auth, nodes, id)
	}

	// The client bootstraps from naming: resolve the authority, cache
	// the map. Its resolver re-reads naming on refresh failure.
	client := orb.New()
	t.Cleanup(client.Shutdown)
	nc := orb.NewNameClient(client, nsRef)
	resolver := func(ctx context.Context) (orb.IOR, error) { return nc.Resolve(ctx, "shard-map") }
	router := orb.NewShardRouter(client, authRef1, orb.WithAuthorityResolver(resolver))
	if _, err := router.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	staleEpoch := router.Map().Epoch

	// The race: the fleet grows (epoch bump) AND the authority moves to
	// a new host; naming is rebound to the successor. The client still
	// holds the old map and the old authority reference.
	nodes["r3"] = newShardNode(t, "r3", authRef1)
	joinFleet(t, auth, nodes, "r3")
	authORB2 := orb.New()
	t.Cleanup(authORB2.Shutdown)
	if _, err := authORB2.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	auth2 := orb.NewShardAuthority(auth.Current())
	orb.ServeShardMap(authORB2, auth2)
	authRef2, _ := authORB2.IOR(orb.ShardMapKey)
	ns.Bind("shard-map", authRef2) // rebind wins over the dead generation
	authORB1.Shutdown()            // first-generation authority is gone

	// Pick a key the stale map routes to the wrong member.
	stale := router.Map()
	fresh := auth2.Current()
	var moved string
	for i := 0; i < 4096; i++ {
		so, _ := stale.Owner(clusterKey(i))
		fo, _ := fresh.Owner(clusterKey(i))
		if so.ID != fo.ID {
			moved = clusterKey(i)
			break
		}
	}
	if moved == "" {
		t.Fatal("no key moved when r3 joined")
	}

	proxy, err := router.BeginActivity(ctx, moved)
	if err != nil {
		t.Fatalf("begin through stale map + stale authority ref: %v", err)
	}
	if _, err := proxy.Complete(ctx, activityservice.CompletionSuccess); err != nil {
		t.Fatal(err)
	}

	var total uint64
	for _, n := range nodes {
		total += n.factory.Begins()
	}
	if total != 1 {
		t.Fatalf("fleet began %d activities for one raced begin, want exactly 1", total)
	}
	fo, _ := fresh.Owner(moved)
	if got := nodes[fo.ID].factory.Begins(); got != 1 {
		t.Fatalf("new owner %s began %d, want 1 (begin landed elsewhere)", fo.ID, got)
	}
	if router.Map().Epoch <= staleEpoch {
		t.Fatalf("router epoch %d did not advance past stale %d", router.Map().Epoch, staleEpoch)
	}
	if st := router.Stats(); st.Redirects == 0 {
		t.Fatal("race healed without a WrongShard redirect — test lost its subject")
	}
}

// TestClusterKillOneShard is the kill-one-shard chaos scenario. A
// three-member ring: two live in-process members and one "doomed"
// member — a real replicated coordinator process driving a 2PC against
// participants hosted here. The doomed process is SIGKILLed right after
// its commit decision is forced (and replicated); while it dies, the
// live members keep serving routed begins. The doomed member's warm
// standby then takes over its WAL replica and must converge both
// prepared branches to committed exactly once. Finally the admin
// removes the dead member from the map and its keys heal onto the
// survivors.
func TestClusterKillOneShard(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	ctx := context.Background()

	authORB := orb.New()
	t.Cleanup(authORB.Shutdown)
	if _, err := authORB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	auth := orb.NewShardAuthority(nil)
	orb.ServeShardMap(authORB, auth)
	authRef, _ := authORB.IOR(orb.ShardMapKey)

	nodes := map[string]*shardNode{}
	for _, id := range []string{"live-1", "live-2"} {
		nodes[id] = newShardNode(t, id, authRef)
		joinFleet(t, auth, nodes, id)
	}

	// The doomed member: a replicated coordinator process with a warm
	// standby following its WAL. Its in-flight 2PC prepares the parent's
	// survivor participants, forces + replicates the commit decision,
	// then SIGKILLs itself before any participant hears the verdict.
	f := newCrashFixture(t)
	var s *standby
	var doomedEndpoints []string
	runReplicatedUntilKilled(t, coordinatorEnv("primary", "decision", f.walPath, f.refs), func(endpoints []string) {
		doomedEndpoints = endpoints
		// Register the doomed process in the ring the moment it reports
		// its endpoints — it is a fleet member while it dies.
		if _, err := auth.Add(orb.ClusterMember{ID: "doomed", Endpoints: doomedEndpoints, Weight: 1}); err != nil {
			t.Error(err)
			return
		}
		for _, n := range nodes {
			if err := n.member.Sync(context.Background()); err != nil {
				t.Error(err)
			}
		}
		s = startStandby(t, endpoints)
	})
	if f.a.applies.Load()+f.b.applies.Load() != 0 {
		t.Fatal("participant committed before the doomed member's phase two")
	}

	// While the doomed member is dead, the rest of the ring serves: every
	// key the live members own begins and completes normally.
	client := orb.New()
	t.Cleanup(client.Shutdown)
	router := orb.NewShardRouter(client, authRef)
	if _, err := router.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	m := router.Map()
	served := 0
	var doomedKey string
	for i := 0; i < 4096 && served < 10; i++ {
		owner, ok := m.Owner(clusterKey(i))
		if !ok {
			t.Fatal("no owner")
		}
		if owner.ID == "doomed" {
			if doomedKey == "" {
				doomedKey = clusterKey(i)
			}
			continue
		}
		proxy, err := router.BeginActivity(ctx, clusterKey(i))
		if err != nil {
			t.Fatalf("live member begin %q while doomed dies: %v", clusterKey(i), err)
		}
		if _, err := proxy.Complete(ctx, activityservice.CompletionSuccess); err != nil {
			t.Fatal(err)
		}
		served++
	}
	if served != 10 {
		t.Fatalf("only %d live-owned begins served", served)
	}
	if doomedKey == "" {
		t.Fatal("doomed member owns no keys in the ring")
	}

	// The standby takes over the doomed member's replica: exactly one
	// durable decision, both participants converge to committed exactly
	// once.
	stats, standbyEndpoints := s.takeover(t)
	if stats.DecisionsReplayed != 1 || stats.ResourcesCommitted != 2 ||
		stats.ResourcesMissing != 0 || stats.ResourcesFailed != 0 {
		t.Fatalf("takeover pass = %+v, want 1 decision, 2 committed", stats)
	}
	if f.a.applies.Load() != 1 || f.b.applies.Load() != 1 {
		t.Fatalf("applies = %d/%d, want exactly once each", f.a.applies.Load(), f.b.applies.Load())
	}
	if f.a.commitCalls.Load() != 1 || f.b.commitCalls.Load() != 1 {
		t.Fatalf("commit deliveries = %d/%d, want 1/1", f.a.commitCalls.Load(), f.b.commitCalls.Load())
	}
	// The fate is answerable through the standby's recovery surface.
	rcl := orb.New()
	t.Cleanup(rcl.Shutdown)
	cl := orb.NewRecoveryClient(rcl, orb.RecoveryAt(standbyEndpoints...))
	for _, name := range f.refs {
		st, err := cl.ReplayCompletion(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		if st != ots.StatusCommitted {
			t.Fatalf("fate of %s via standby = %s, want committed", name, st)
		}
	}

	// Resharding: the admin removes the dead member; after a refresh its
	// arcs belong to the survivors and its keys serve again.
	if _, err := auth.Remove("doomed"); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if err := n.member.Sync(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := router.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	beforeTotal := nodes["live-1"].factory.Begins() + nodes["live-2"].factory.Begins()
	proxy, err := router.BeginActivity(ctx, doomedKey)
	if err != nil {
		t.Fatalf("begin %q after removing dead member: %v", doomedKey, err)
	}
	if _, err := proxy.Complete(ctx, activityservice.CompletionSuccess); err != nil {
		t.Fatal(err)
	}
	if got := nodes["live-1"].factory.Begins() + nodes["live-2"].factory.Begins(); got != beforeTotal+1 {
		t.Fatalf("formerly doomed key did not land on a survivor (begins %d -> %d)", beforeTotal, got)
	}
	if owner, ok := router.Map().Owner(doomedKey); !ok || owner.ID == "doomed" {
		t.Fatalf("doomed member still owns %q after removal", doomedKey)
	}
}

// TestClusterDrainLosesNothing drains a member mid-stream: activities
// begun on it before the drain complete there, begins arriving after
// redirect to the survivors, and the drained member quiesces once its
// last in-flight activity finishes.
func TestClusterDrainLosesNothing(t *testing.T) {
	ctx := context.Background()
	authORB := orb.New()
	t.Cleanup(authORB.Shutdown)
	if _, err := authORB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	auth := orb.NewShardAuthority(nil)
	orb.ServeShardMap(authORB, auth)
	authRef, _ := authORB.IOR(orb.ShardMapKey)

	nodes := map[string]*shardNode{}
	for _, id := range []string{"d1", "d2"} {
		nodes[id] = newShardNode(t, id, authRef)
		joinFleet(t, auth, nodes, id)
	}
	client := orb.New()
	t.Cleanup(client.Shutdown)
	router := orb.NewShardRouter(client, authRef)

	// Begin (and hold open) several activities owned by d1.
	m, err := router.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Watch the map: the drain should reach this router as a shard_watch
	// change notification, not as a WrongShard round trip.
	rctx, rcancel := context.WithCancel(ctx)
	t.Cleanup(rcancel)
	go router.Run(rctx)
	var inflight []*orb.ActivityProxy
	var d1Keys []string
	for i := 0; i < 4096 && len(inflight) < 5; i++ {
		if owner, ok := m.Owner(clusterKey(i)); ok && owner.ID == "d1" {
			proxy, err := router.BeginActivity(ctx, clusterKey(i))
			if err != nil {
				t.Fatal(err)
			}
			inflight = append(inflight, proxy)
			d1Keys = append(d1Keys, clusterKey(i))
		}
	}
	if len(inflight) < 5 {
		t.Fatal("d1 owns too few keys")
	}

	drainEpoch, err := auth.Drain("d1")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if err := n.member.Sync(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// The watch loop prefetches the drained map before any begin has to
	// discover it the hard way.
	deadline := time.Now().Add(5 * time.Second)
	for router.Map().Epoch < drainEpoch {
		if time.Now().After(deadline) {
			t.Fatalf("router never prefetched drain epoch %d (at %d)", drainEpoch, router.Map().Epoch)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// New begins for d1's keys aim straight at d2 and execute exactly once.
	d2Before := nodes["d2"].factory.Begins()
	for _, key := range d1Keys[:2] {
		proxy, err := router.BeginActivity(ctx, key)
		if err != nil {
			t.Fatalf("begin %q during drain: %v", key, err)
		}
		if _, err := proxy.Complete(ctx, activityservice.CompletionSuccess); err != nil {
			t.Fatal(err)
		}
	}
	if got := nodes["d2"].factory.Begins(); got != d2Before+2 {
		t.Fatalf("drained begins moved %d, want 2", got-d2Before)
	}
	// Zero redirects: the prefetched epoch meant no begin ever hit the
	// draining member.
	if st := router.Stats(); st.Redirects != 0 || st.Prefetches == 0 {
		t.Fatalf("watching router stats = %+v, want 0 redirects and >0 prefetches", st)
	}

	// In-flight activities complete on d1; the last completion quiesces.
	qctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	if err := nodes["d1"].svc.WaitQuiesced(qctx); err == nil {
		cancel()
		t.Fatal("d1 quiesced with activities in flight")
	}
	cancel()
	for _, proxy := range inflight {
		if _, err := proxy.Complete(ctx, activityservice.CompletionSuccess); err != nil {
			t.Fatalf("completing in-flight on draining member: %v", err)
		}
	}
	qctx2, cancel2 := context.WithTimeout(ctx, 10*time.Second)
	defer cancel2()
	if err := nodes["d1"].svc.WaitQuiesced(qctx2); err != nil {
		t.Fatalf("drained member never quiesced: %v", err)
	}
	if nodes["d1"].svc.Live() != 0 {
		t.Fatalf("d1 has %d live activities after quiesce", nodes["d1"].svc.Live())
	}
}

// BenchmarkShardRouterRoute measures the router's cached-map routing
// path (key hash -> ring walk -> reference mint) — the per-invocation
// overhead sharding adds before the wire. Gated by cmd/benchguard in CI.
func BenchmarkShardRouterRoute(b *testing.B) {
	authORB := orb.New()
	defer authORB.Shutdown()
	if _, err := authORB.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	members := make([]orb.ClusterMember, 8)
	for i := range members {
		members[i] = orb.ClusterMember{
			ID:        fmt.Sprintf("m%d", i),
			Endpoints: []string{fmt.Sprintf("127.0.0.1:%d", 7400+i)},
			Weight:    1,
		}
	}
	m, err := orb.NewClusterMap(members...)
	if err != nil {
		b.Fatal(err)
	}
	auth := orb.NewShardAuthority(m)
	orb.ServeShardMap(authORB, auth)
	authRef, _ := authORB.IOR(orb.ShardMapKey)

	client := orb.New()
	defer client.Shutdown()
	router := orb.NewShardRouter(client, authRef)
	if _, err := router.Refresh(context.Background()); err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = clusterKey(i)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := router.RouteRef(ctx, orb.ActivityFactoryTypeID, orb.ActivityFactoryKey, keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}
