package opennested

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"github.com/extendedtx/activityservice/internal/core"
)

// fig9 builds the fig. 9 structure: top-level B nested (logically) inside
// top-level A, with !B compensating B if A fails after B committed.
func fig9(t *testing.T, svc *core.Service) (a, b *Enclosing, comp *CompensationAction, undone *atomic.Bool) {
	t.Helper()
	undone = &atomic.Bool{}
	var err error
	a, err = Begin(svc, "A", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err = Begin(svc, "B", a)
	if err != nil {
		t.Fatal(err)
	}
	comp, err = b.AddCompensation(svc, "!B", func(context.Context) error {
		undone.Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, b, comp, undone
}

func TestBCommitsACommits_NoCompensation(t *testing.T) {
	svc := core.New()
	ctx := context.Background()
	a, b, comp, undone := fig9(t, svc)

	// B commits: its completion propagates the compensation action to A.
	if _, err := b.Complete(ctx, true); err != nil {
		t.Fatal(err)
	}
	if comp.Done() || comp.Ran() {
		t.Fatal("compensation finished prematurely")
	}
	if a.Activity().Coordinator().ActionCount(SetName) != 1 {
		t.Fatal("compensation did not propagate to A")
	}
	// A commits: Success signal, no compensation.
	if _, err := a.Complete(ctx, true); err != nil {
		t.Fatal(err)
	}
	if undone.Load() {
		t.Fatal("compensation ran although both committed")
	}
	if !comp.Done() {
		t.Fatal("compensation action not retired")
	}
}

func TestBCommitsARollsBack_CompensationRuns(t *testing.T) {
	svc := core.New()
	ctx := context.Background()
	a, b, comp, undone := fig9(t, svc)

	if _, err := b.Complete(ctx, true); err != nil {
		t.Fatal(err)
	}
	// A rolls back: the propagated action receives Failure and runs !B.
	out, err := a.Complete(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != SignalFailure {
		t.Fatalf("A outcome = %+v", out)
	}
	if !undone.Load() || !comp.Ran() {
		t.Fatal("compensation did not run")
	}
}

func TestBRollsBack_NoCompensationEver(t *testing.T) {
	svc := core.New()
	ctx := context.Background()
	a, b, comp, undone := fig9(t, svc)

	// B rolls back: Failure before propagation → the action retires.
	if _, err := b.Complete(ctx, false); err != nil {
		t.Fatal(err)
	}
	if !comp.Done() {
		t.Fatal("action not retired after B's failure")
	}
	if undone.Load() {
		t.Fatal("compensation ran for a transaction that never committed")
	}
	// A's outcome is then irrelevant to B.
	if _, err := a.Complete(ctx, false); err != nil {
		t.Fatal(err)
	}
	if undone.Load() {
		t.Fatal("compensation ran after retirement")
	}
}

func TestBRollsBackACommits(t *testing.T) {
	svc := core.New()
	ctx := context.Background()
	a, b, _, undone := fig9(t, svc)
	if _, err := b.Complete(ctx, false); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Complete(ctx, true); err != nil {
		t.Fatal(err)
	}
	if undone.Load() {
		t.Fatal("compensation ran")
	}
}

// TestFig9Matrix runs the full commit/rollback matrix the paper's §4.2
// walks through; compensation must run in exactly one quadrant.
func TestFig9Matrix(t *testing.T) {
	tests := []struct {
		name           string
		bCommits       bool
		aCommits       bool
		wantCompensate bool
	}{
		{name: "B commits, A commits", bCommits: true, aCommits: true, wantCompensate: false},
		{name: "B commits, A aborts", bCommits: true, aCommits: false, wantCompensate: true},
		{name: "B aborts, A commits", bCommits: false, aCommits: true, wantCompensate: false},
		{name: "B aborts, A aborts", bCommits: false, aCommits: false, wantCompensate: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			svc := core.New()
			ctx := context.Background()
			a, b, _, undone := fig9(t, svc)
			if _, err := b.Complete(ctx, tt.bCommits); err != nil {
				t.Fatal(err)
			}
			if _, err := a.Complete(ctx, tt.aCommits); err != nil {
				t.Fatal(err)
			}
			if undone.Load() != tt.wantCompensate {
				t.Fatalf("compensated = %v, want %v", undone.Load(), tt.wantCompensate)
			}
		})
	}
}

func TestChainedPropagation(t *testing.T) {
	// Three levels: C inside B inside A. C commits (propagates to B), B
	// commits (propagates to A), A fails → C's compensation runs.
	svc := core.New()
	ctx := context.Background()
	a, err := Begin(svc, "A", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Begin(svc, "B", a)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Begin(svc, "C", b)
	if err != nil {
		t.Fatal(err)
	}
	var compensated atomic.Bool
	if _, err := c.AddCompensation(svc, "!C", func(context.Context) error {
		compensated.Store(true)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Complete(ctx, true); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Complete(ctx, true); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Complete(ctx, false); err != nil {
		t.Fatal(err)
	}
	if !compensated.Load() {
		t.Fatal("deep compensation did not run")
	}
}

func TestCompensationFailureSurfaces(t *testing.T) {
	svc := core.New()
	ctx := context.Background()
	a, _ := Begin(svc, "A", nil)
	b, _ := Begin(svc, "B", a)
	if _, err := b.AddCompensation(svc, "!B", func(context.Context) error {
		return errors.New("cannot undo")
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Complete(ctx, true); err != nil {
		t.Fatal(err)
	}
	// The compensation fails; the completion set records the delivery
	// error but the activity still completes (fail outcome).
	out, err := a.Complete(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != SignalFailure {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestPropagateToDeadActivityFails(t *testing.T) {
	svc := core.New()
	ctx := context.Background()
	a, _ := Begin(svc, "A", nil)
	b, _ := Begin(svc, "B", a)
	comp, _ := b.AddCompensation(svc, "!B", func(context.Context) error { return nil })
	// A completes first; B's propagation then has no live target.
	if _, err := a.Complete(ctx, true); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Complete(ctx, true); err != nil {
		t.Fatal(err)
	}
	if comp.Ran() {
		t.Fatal("compensation ran")
	}
}

func TestMultipleCompensationsPropagate(t *testing.T) {
	// Several open-nested transactions inside A, all commit, A fails: all
	// compensations run (fig. 2's tc1 generalised).
	svc := core.New()
	ctx := context.Background()
	a, _ := Begin(svc, "A", nil)
	var ran [3]atomic.Bool
	for i := 0; i < 3; i++ {
		i := i
		b, err := Begin(svc, "B", a)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.AddCompensation(svc, "!B", func(context.Context) error {
			ran[i].Store(true)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Complete(ctx, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Complete(ctx, false); err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if !ran[i].Load() {
			t.Fatalf("compensation %d did not run", i)
		}
	}
}
