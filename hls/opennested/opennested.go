// Package opennested implements §4.2 of the paper: nested top-level
// transactions with compensations (open nested transactions, fig. 9).
//
// Within a top-level transaction A, the application starts a new top-level
// transaction B that commits independently. If A later rolls back, B's
// durable work is undone by a compensating transaction !B. The structure is
// built exactly as the paper prescribes:
//
//   - each enclosing activity has a CompletionSignalSet with Success,
//     Failure and Propagate signals;
//   - a CompensationAction registered with B's activity reacts to those
//     signals: Success → discard; Propagate → re-register with the
//     enclosing activity named in the signal; Failure after propagation →
//     run !B.
package opennested

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/extendedtx/activityservice/internal/core"
	"github.com/extendedtx/activityservice/internal/ids"
)

// Signal names of the CompletionSignalSet.
const (
	// SetName is the completion signal set name (the activity default).
	SetName = core.DefaultCompletionSet
	// SignalSuccess: completed successfully with no dependencies.
	SignalSuccess = "success"
	// SignalFailure: completed abnormally (aborted).
	SignalFailure = "failure"
	// SignalPropagate: completed successfully but with dependencies on an
	// enclosing activity; the signal data carries that activity's identity.
	SignalPropagate = "propagate"
)

// ErrNoTarget reports a Propagate signal without a target activity.
var ErrNoTarget = errors.New("opennested: propagate signal has no target")

// CompletionSet is the CompletionSignalSet of §4.2: it emits exactly one
// signal when the activity completes — Success, Failure, or Propagate
// (with the propagation target encoded in the signal data).
type CompletionSet struct {
	core.BaseSet

	mu        sync.Mutex
	target    ids.UID // propagate-to activity; nil UID means no dependency
	emitted   bool
	responses int
}

var _ core.SignalSet = (*CompletionSet)(nil)

// NewCompletionSet returns a CompletionSignalSet. If propagateTo is
// non-nil, a successful completion emits Propagate with that activity's
// identity instead of Success.
func NewCompletionSet(propagateTo *core.Activity) *CompletionSet {
	s := &CompletionSet{BaseSet: core.NewBaseSet(SetName)}
	if propagateTo != nil {
		s.target = propagateTo.ID()
	}
	return s
}

// GetSignal implements core.SignalSet.
func (s *CompletionSet) GetSignal() (core.Signal, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.emitted {
		return core.Signal{}, false, core.ErrExhausted
	}
	s.emitted = true
	if s.CompletionStatus() != core.CompletionSuccess {
		return core.Signal{Name: SignalFailure, SetName: SetName}, true, nil
	}
	if !s.target.IsNil() {
		return core.Signal{
			Name:    SignalPropagate,
			SetName: SetName,
			Data:    s.target.String(),
		}, true, nil
	}
	return core.Signal{Name: SignalSuccess, SetName: SetName}, true, nil
}

// SetResponse implements core.SignalSet.
func (s *CompletionSet) SetResponse(core.Outcome, error) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.responses++
	return false, nil
}

// GetOutcome implements core.SignalSet.
func (s *CompletionSet) GetOutcome() (core.Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	name := SignalSuccess
	if s.CompletionStatus() != core.CompletionSuccess {
		name = SignalFailure
	}
	return core.Outcome{Name: name, Data: int64(s.responses)}, nil
}

// CompensationAction implements the §4.2 state machine: it discards itself
// on Success, follows Propagate into the enclosing activity, and runs the
// compensation on Failure — but only if it has been propagated (B
// committed); a failure before propagation means B itself rolled back and
// there is nothing to compensate.
type CompensationAction struct {
	svc        *core.Service
	compensate func(ctx context.Context) error
	label      string

	mu         sync.Mutex
	propagated bool
	done       bool
	ran        bool
}

var _ core.Action = (*CompensationAction)(nil)

// NewCompensationAction returns a compensation action running compensate
// when triggered. The label names the action in traces ("!B").
func NewCompensationAction(svc *core.Service, label string, compensate func(ctx context.Context) error) *CompensationAction {
	return &CompensationAction{svc: svc, compensate: compensate, label: label}
}

// Ran reports whether the compensation has executed.
func (c *CompensationAction) Ran() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ran
}

// Done reports whether the action has removed itself from the system.
func (c *CompensationAction) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done
}

// ProcessSignal implements core.Action with the state transitions of §4.2.
func (c *CompensationAction) ProcessSignal(ctx context.Context, sig core.Signal) (core.Outcome, error) {
	switch sig.Name {
	case SignalSuccess:
		// "If it receives the Success Signal then it can remove itself
		// from the system."
		c.mu.Lock()
		c.done = true
		c.mu.Unlock()
		return core.Outcome{Name: "removed"}, nil

	case SignalPropagate:
		// "encoded within this Signal will be the identity of an Activity
		// it should register itself with. It must also remember that it
		// has been propagated."
		idStr, ok := sig.Data.(string)
		if !ok {
			return core.Outcome{}, ErrNoTarget
		}
		id, err := ids.Parse(idStr)
		if err != nil {
			return core.Outcome{}, fmt.Errorf("opennested: propagate target: %w", err)
		}
		target, ok := c.svc.Find(id)
		if !ok {
			return core.Outcome{}, fmt.Errorf("%w: activity %s not live", ErrNoTarget, idStr)
		}
		if _, err := target.AddNamedAction(SetName, c.label, c); err != nil {
			return core.Outcome{}, fmt.Errorf("opennested: re-register with %s: %w", target.Name(), err)
		}
		c.mu.Lock()
		c.propagated = true
		c.mu.Unlock()
		return core.Outcome{Name: "propagated"}, nil

	case SignalFailure:
		// "If it receives the Failure Signal and it has never been
		// propagated then it can remove itself... If the Action has been
		// propagated then it should start !B running, before removing
		// itself."
		c.mu.Lock()
		shouldRun := c.propagated && !c.ran
		if shouldRun {
			c.ran = true
		}
		c.done = true
		c.mu.Unlock()
		if shouldRun {
			if err := c.compensate(ctx); err != nil {
				return core.Outcome{}, fmt.Errorf("opennested: compensation %s: %w", c.label, err)
			}
			return core.Outcome{Name: "compensated"}, nil
		}
		return core.Outcome{Name: "removed"}, nil

	default:
		return core.Outcome{}, fmt.Errorf("opennested: unexpected signal %q", sig.Name)
	}
}

// Enclosing wraps a top-level transaction's activity (A or B in fig. 9).
type Enclosing struct {
	activity *core.Activity
	set      *CompletionSet
}

// Begin starts an enclosing activity for a top-level transaction.
// propagateTo, when non-nil, is the outer enclosing activity (A) that
// compensations must follow on successful completion.
func Begin(svc *core.Service, name string, propagateTo *Enclosing) (*Enclosing, error) {
	a := svc.Begin(name)
	var target *core.Activity
	if propagateTo != nil {
		target = propagateTo.activity
	}
	set := NewCompletionSet(target)
	if err := a.RegisterSignalSet(set); err != nil {
		return nil, err
	}
	return &Enclosing{activity: a, set: set}, nil
}

// Activity exposes the backing activity.
func (e *Enclosing) Activity() *core.Activity { return e.activity }

// AddCompensation registers a compensation for the work this enclosing
// activity's transaction performs (!B for B).
func (e *Enclosing) AddCompensation(svc *core.Service, label string, compensate func(ctx context.Context) error) (*CompensationAction, error) {
	action := NewCompensationAction(svc, label, compensate)
	if _, err := e.activity.AddNamedAction(SetName, label, action); err != nil {
		return nil, err
	}
	return action, nil
}

// Complete finishes the enclosing activity: committed=true drives Success
// or Propagate, false drives Failure.
func (e *Enclosing) Complete(ctx context.Context, committed bool) (core.Outcome, error) {
	cs := core.CompletionSuccess
	if !committed {
		cs = core.CompletionFail
	}
	return e.activity.CompleteWithStatus(ctx, cs)
}
