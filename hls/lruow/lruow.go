// Package lruow implements §4.3 of the paper: the LRUOW (Long Running Unit
// Of Work) extended transaction model of Bennett et al. [14] on the
// Activity Service.
//
// A long-running transaction executes in two phases: the rehearsal phase
// performs the work without serializability — reads record version
// predicates, writes stay private — and may take arbitrarily long; the
// performance phase confirms the work only if suitable locks can be
// obtained and the recorded predicates still hold against the store.
//
// The mapping uses the two SignalSets the paper names: a Rehearsal
// SignalSet drives child-to-parent promotion when a nested UOW completes
// ("propagating resources from the child to the parent"), and a
// Performance SignalSet drives validate/apply (or discard) at top-level
// completion. No modification to the underlying store or transaction
// machinery is required, as §4.3 notes.
package lruow

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/extendedtx/activityservice/internal/core"
	"github.com/extendedtx/activityservice/internal/lockmgr"
	"github.com/extendedtx/activityservice/internal/store"
)

// Protocol names.
const (
	// RehearsalSetName is the Rehearsal SignalSet.
	RehearsalSetName = "lruow-rehearsal"
	// PerformanceSetName is the Performance SignalSet.
	PerformanceSetName = "lruow-performance"

	// SignalRehearse promotes a child UOW's recordings to its parent.
	SignalRehearse = "rehearse"
	// SignalValidate checks the rehearsal predicates under locks.
	SignalValidate = "validate"
	// SignalApply installs the writes.
	SignalApply = "apply"
	// SignalDiscard abandons the writes after failed validation.
	SignalDiscard = "discard"
)

// LRUOW errors.
var (
	// ErrStale reports that the performance phase found the rehearsal's
	// predicates violated; the caller may re-rehearse and retry.
	ErrStale = errors.New("lruow: rehearsal predicates stale")
	// ErrCompleted reports use of a completed UOW.
	ErrCompleted = errors.New("lruow: unit of work already completed")
	// ErrLocked reports that performance-phase locks were unobtainable.
	ErrLocked = errors.New("lruow: could not obtain performance locks")
)

// UOW is one (possibly nested) long-running unit of work.
type UOW struct {
	svc      *core.Service
	st       *store.Store
	locks    *lockmgr.Manager
	lockWait time.Duration
	parent   *UOW
	activity *core.Activity

	mu        sync.Mutex
	reads     map[string]uint64 // key -> version predicate
	writes    map[string][]byte
	completed bool
}

// Begin starts a root UOW over st, using locks for the performance phase.
func Begin(svc *core.Service, name string, st *store.Store, locks *lockmgr.Manager, lockWait time.Duration) *UOW {
	return &UOW{
		svc:      svc,
		st:       st,
		locks:    locks,
		lockWait: lockWait,
		activity: svc.Begin(name),
		reads:    make(map[string]uint64),
		writes:   make(map[string][]byte),
	}
}

// BeginChild starts a nested UOW whose recordings promote to u on
// successful completion.
func (u *UOW) BeginChild(name string) (*UOW, error) {
	child, err := u.activity.BeginChild(name)
	if err != nil {
		return nil, err
	}
	return &UOW{
		svc:      u.svc,
		st:       u.st,
		locks:    u.locks,
		lockWait: u.lockWait,
		parent:   u,
		activity: child,
		reads:    make(map[string]uint64),
		writes:   make(map[string][]byte),
	}, nil
}

// Activity exposes the backing activity.
func (u *UOW) Activity() *core.Activity { return u.activity }

// Read returns the value of key as seen by the UOW: its own rehearsal
// write, an ancestor's, or the store value — recording the version
// predicate in the latter case.
func (u *UOW) Read(key string) ([]byte, bool, error) {
	u.mu.Lock()
	if u.completed {
		u.mu.Unlock()
		return nil, false, ErrCompleted
	}
	if v, ok := u.writes[key]; ok {
		out := append([]byte(nil), v...)
		u.mu.Unlock()
		return out, true, nil
	}
	u.mu.Unlock()

	for p := u.parent; p != nil; p = p.parent {
		p.mu.Lock()
		if v, ok := p.writes[key]; ok {
			out := append([]byte(nil), v...)
			p.mu.Unlock()
			return out, true, nil
		}
		p.mu.Unlock()
	}

	val, version, ok := u.st.Get(key)
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.completed {
		return nil, false, ErrCompleted
	}
	// Record the predicate: the version observed (0 for absent keys).
	if _, seen := u.reads[key]; !seen {
		u.reads[key] = version
	}
	return val, ok, nil
}

// Write records a rehearsal write, private until performance.
func (u *UOW) Write(key string, value []byte) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.completed {
		return ErrCompleted
	}
	u.writes[key] = append([]byte(nil), value...)
	return nil
}

// Touched returns the number of distinct keys read or written.
func (u *UOW) Touched() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	keys := make(map[string]bool, len(u.reads)+len(u.writes))
	for k := range u.reads {
		keys[k] = true
	}
	for k := range u.writes {
		keys[k] = true
	}
	return len(keys)
}

// Abandon discards the UOW.
func (u *UOW) Abandon(ctx context.Context) error {
	u.mu.Lock()
	if u.completed {
		u.mu.Unlock()
		return ErrCompleted
	}
	u.completed = true
	u.mu.Unlock()
	_, err := u.activity.CompleteWithStatus(ctx, core.CompletionFail)
	return err
}

// Complete ends the UOW. A nested UOW promotes its recordings to the
// parent through the Rehearsal SignalSet; the root UOW runs the
// performance phase through the Performance SignalSet, returning ErrStale
// when validation fails (the work is then discarded).
func (u *UOW) Complete(ctx context.Context) error {
	u.mu.Lock()
	if u.completed {
		u.mu.Unlock()
		return ErrCompleted
	}
	u.completed = true
	u.mu.Unlock()

	if u.parent != nil {
		return u.promote(ctx)
	}
	return u.perform(ctx)
}

// promote drives the Rehearsal SignalSet: the registered promotion action
// merges this UOW's recordings into the parent.
func (u *UOW) promote(ctx context.Context) error {
	set := newRehearsalSet()
	if err := u.activity.RegisterSignalSet(set); err != nil {
		return err
	}
	u.activity.SetCompletionSet(RehearsalSetName)
	if _, err := u.activity.AddNamedAction(RehearsalSetName, "promote:"+u.activity.Name(), &promoteAction{child: u}); err != nil {
		return err
	}
	out, err := u.activity.CompleteWithStatus(ctx, core.CompletionSuccess)
	if err != nil {
		return fmt.Errorf("lruow: promote: %w", err)
	}
	if out.Name != "promoted" {
		return fmt.Errorf("lruow: promotion failed: %s", out.Name)
	}
	return nil
}

// perform drives the Performance SignalSet at top-level completion.
func (u *UOW) perform(ctx context.Context) error {
	set := newPerformanceSet()
	if err := u.activity.RegisterSignalSet(set); err != nil {
		return err
	}
	u.activity.SetCompletionSet(PerformanceSetName)
	action := &performAction{uow: u}
	if _, err := u.activity.AddNamedAction(PerformanceSetName, "perform:"+u.activity.Name(), action); err != nil {
		return err
	}
	out, err := u.activity.CompleteWithStatus(ctx, core.CompletionSuccess)
	if err != nil {
		return fmt.Errorf("lruow: perform: %w", err)
	}
	switch out.Name {
	case "performed":
		return nil
	case "stale":
		return ErrStale
	default:
		return fmt.Errorf("lruow: performance outcome %q", out.Name)
	}
}

// keys returns the union of read and written keys, sorted (deterministic
// lock order).
func (u *UOW) keys() []string {
	u.mu.Lock()
	defer u.mu.Unlock()
	set := make(map[string]bool, len(u.reads)+len(u.writes))
	for k := range u.reads {
		set[k] = true
	}
	for k := range u.writes {
		set[k] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// rehearsalSet emits one "rehearse" signal; the outcome reports whether
// promotion happened.
type rehearsalSet struct {
	core.BaseSet

	mu      sync.Mutex
	emitted bool
	failed  bool
}

var _ core.SignalSet = (*rehearsalSet)(nil)

func newRehearsalSet() *rehearsalSet {
	return &rehearsalSet{BaseSet: core.NewBaseSet(RehearsalSetName)}
}

func (s *rehearsalSet) GetSignal() (core.Signal, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.emitted {
		return core.Signal{}, false, core.ErrExhausted
	}
	s.emitted = true
	return core.Signal{Name: SignalRehearse, SetName: RehearsalSetName}, true, nil
}

func (s *rehearsalSet) SetResponse(resp core.Outcome, deliveryErr error) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if deliveryErr != nil || resp.Name != "promoted" {
		s.failed = true
	}
	return false, nil
}

func (s *rehearsalSet) GetOutcome() (core.Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return core.Outcome{Name: "promotion-failed"}, nil
	}
	return core.Outcome{Name: "promoted"}, nil
}

// promoteAction merges the child's recordings into the parent.
type promoteAction struct {
	child *UOW
}

func (a *promoteAction) ProcessSignal(context.Context, core.Signal) (core.Outcome, error) {
	child, parent := a.child, a.child.parent
	child.mu.Lock()
	reads := make(map[string]uint64, len(child.reads))
	for k, v := range child.reads {
		reads[k] = v
	}
	writes := make(map[string][]byte, len(child.writes))
	for k, v := range child.writes {
		writes[k] = v
	}
	child.mu.Unlock()

	parent.mu.Lock()
	defer parent.mu.Unlock()
	if parent.completed {
		return core.Outcome{}, fmt.Errorf("%w: parent", ErrCompleted)
	}
	for k, v := range reads {
		// The parent keeps its own earlier predicate; a child predicate on
		// a key the parent wrote before the child began is unnecessary.
		if _, ok := parent.reads[k]; !ok {
			if _, wrote := parent.writes[k]; !wrote {
				parent.reads[k] = v
			}
		}
	}
	for k, v := range writes {
		parent.writes[k] = v
	}
	return core.Outcome{Name: "promoted"}, nil
}

// performanceSet drives validate then apply/discard.
type performanceSet struct {
	core.BaseSet

	mu    sync.Mutex
	stage int
	stale bool
}

var _ core.SignalSet = (*performanceSet)(nil)

func newPerformanceSet() *performanceSet {
	return &performanceSet{BaseSet: core.NewBaseSet(PerformanceSetName)}
}

func (s *performanceSet) GetSignal() (core.Signal, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.stage {
	case 0:
		s.stage = 1
		return core.Signal{Name: SignalValidate, SetName: PerformanceSetName}, false, nil
	case 1:
		s.stage = 2
		name := SignalApply
		if s.stale {
			name = SignalDiscard
		}
		return core.Signal{Name: name, SetName: PerformanceSetName}, true, nil
	default:
		return core.Signal{}, false, core.ErrExhausted
	}
}

func (s *performanceSet) SetResponse(resp core.Outcome, deliveryErr error) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stage == 1 && (deliveryErr != nil || resp.Name == "stale") {
		s.stale = true
		return true, nil
	}
	return false, nil
}

func (s *performanceSet) GetOutcome() (core.Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stale {
		return core.Outcome{Name: "stale"}, nil
	}
	return core.Outcome{Name: "performed"}, nil
}

// performAction validates predicates under locks and applies (or
// discards) the writes.
type performAction struct {
	uow *UOW

	mu     sync.Mutex
	locked []string
}

func (a *performAction) ProcessSignal(_ context.Context, sig core.Signal) (core.Outcome, error) {
	u := a.uow
	owner := "lruow:" + u.activity.ID().String()
	switch sig.Name {
	case SignalValidate:
		keys := u.keys()
		for _, k := range keys {
			mode := lockmgr.Read
			u.mu.Lock()
			if _, written := u.writes[k]; written {
				mode = lockmgr.Write
			}
			u.mu.Unlock()
			if err := u.locks.Acquire(owner, k, mode, u.lockWait); err != nil {
				a.release(owner)
				return core.Outcome{}, fmt.Errorf("%w: %v", ErrLocked, err)
			}
			a.mu.Lock()
			a.locked = append(a.locked, k)
			a.mu.Unlock()
		}
		u.mu.Lock()
		reads := make(map[string]uint64, len(u.reads))
		for k, v := range u.reads {
			reads[k] = v
		}
		u.mu.Unlock()
		for k, want := range reads {
			if got := u.st.Version(k); got != want {
				return core.Outcome{Name: "stale", Data: k}, nil
			}
		}
		return core.Outcome{Name: "valid"}, nil

	case SignalApply:
		u.mu.Lock()
		writes := make(map[string][]byte, len(u.writes))
		for k, v := range u.writes {
			writes[k] = v
		}
		u.mu.Unlock()
		// Deterministic apply order.
		keys := make([]string, 0, len(writes))
		for k := range writes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			u.st.Put(k, writes[k])
		}
		a.release(owner)
		return core.Outcome{Name: "applied"}, nil

	case SignalDiscard:
		a.release(owner)
		return core.Outcome{Name: "discarded"}, nil

	default:
		return core.Outcome{}, fmt.Errorf("lruow: unexpected signal %q", sig.Name)
	}
}

func (a *performAction) release(owner string) {
	a.mu.Lock()
	locked := a.locked
	a.locked = nil
	a.mu.Unlock()
	for _, k := range locked {
		_ = a.uow.locks.Release(owner, k)
	}
}
