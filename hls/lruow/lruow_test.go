package lruow

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/extendedtx/activityservice/internal/core"
	"github.com/extendedtx/activityservice/internal/lockmgr"
	"github.com/extendedtx/activityservice/internal/store"
)

const lockWait = 50 * time.Millisecond

func fixture() (*core.Service, *store.Store, *lockmgr.Manager) {
	return core.New(), store.New(), lockmgr.New()
}

func TestRehearseAndPerform(t *testing.T) {
	svc, st, locks := fixture()
	st.Put("balance", []byte("100"))
	ctx := context.Background()

	u := Begin(svc, "uow", st, locks, lockWait)
	val, ok, err := u.Read("balance")
	if err != nil || !ok || string(val) != "100" {
		t.Fatalf("read: %q ok=%v err=%v", val, ok, err)
	}
	if err := u.Write("balance", []byte("75")); err != nil {
		t.Fatal(err)
	}
	// Rehearsal writes are private.
	if got, _, _ := st.Get("balance"); string(got) != "100" {
		t.Fatalf("store mutated during rehearsal: %q", got)
	}
	// Reads see own writes.
	val, _, _ = u.Read("balance")
	if string(val) != "75" {
		t.Fatalf("own read = %q", val)
	}
	if err := u.Complete(ctx); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := st.Get("balance"); string(got) != "75" {
		t.Fatalf("store = %q after performance", got)
	}
	if svc.Live() != 0 {
		t.Fatalf("live activities = %d", svc.Live())
	}
}

func TestStalePredicateDiscards(t *testing.T) {
	svc, st, locks := fixture()
	st.Put("k", []byte("v1"))
	ctx := context.Background()

	u := Begin(svc, "uow", st, locks, lockWait)
	if _, _, err := u.Read("k"); err != nil {
		t.Fatal(err)
	}
	_ = u.Write("k", []byte("mine"))

	// A concurrent writer invalidates the predicate during the (long)
	// rehearsal.
	st.Put("k", []byte("theirs"))

	err := u.Complete(ctx)
	if !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v, want ErrStale", err)
	}
	// The store keeps the interloper's value.
	if got, _, _ := st.Get("k"); string(got) != "theirs" {
		t.Fatalf("store = %q", got)
	}
	// The locks were released on discard.
	if _, held := locks.HeldMode("k"); held {
		t.Fatal("locks leaked after discard")
	}
}

func TestRetryAfterStaleSucceeds(t *testing.T) {
	svc, st, locks := fixture()
	st.Put("k", []byte("v1"))
	ctx := context.Background()

	u := Begin(svc, "first", st, locks, lockWait)
	_, _, _ = u.Read("k")
	_ = u.Write("k", []byte("w1"))
	st.Put("k", []byte("conflict"))
	if err := u.Complete(ctx); !errors.Is(err, ErrStale) {
		t.Fatal(err)
	}
	// Re-rehearse against current state, then perform.
	u2 := Begin(svc, "second", st, locks, lockWait)
	_, _, _ = u2.Read("k")
	_ = u2.Write("k", []byte("w2"))
	if err := u2.Complete(ctx); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := st.Get("k"); string(got) != "w2" {
		t.Fatalf("store = %q", got)
	}
}

func TestWriteOnlyNeedsNoPredicate(t *testing.T) {
	svc, st, locks := fixture()
	ctx := context.Background()
	u := Begin(svc, "blind-write", st, locks, lockWait)
	_ = u.Write("new-key", []byte("value"))
	// Concurrent unrelated write must not invalidate a blind write.
	st.Put("other", []byte("x"))
	if err := u.Complete(ctx); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := st.Get("new-key"); string(got) != "value" {
		t.Fatalf("store = %q", got)
	}
}

func TestAbsentKeyPredicate(t *testing.T) {
	// Reading an absent key records version 0; creation of the key by
	// another party invalidates the rehearsal.
	svc, st, locks := fixture()
	ctx := context.Background()
	u := Begin(svc, "uow", st, locks, lockWait)
	if _, ok, err := u.Read("ghost"); err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	_ = u.Write("dependent", []byte("x"))
	st.Put("ghost", []byte("appeared"))
	if err := u.Complete(ctx); !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v", err)
	}
}

func TestNestedPromotion(t *testing.T) {
	svc, st, locks := fixture()
	st.Put("a", []byte("1"))
	ctx := context.Background()

	parent := Begin(svc, "parent", st, locks, lockWait)
	child, err := parent.BeginChild("child")
	if err != nil {
		t.Fatal(err)
	}
	// The child rehearses: reads a (predicate) and writes b.
	if _, _, err := child.Read("a"); err != nil {
		t.Fatal(err)
	}
	_ = child.Write("b", []byte("from-child"))
	if err := child.Complete(ctx); err != nil {
		t.Fatal(err)
	}
	// Nothing hit the store yet: only promotion happened.
	if _, _, ok := st.Get("b"); ok {
		t.Fatal("child write reached store before top-level performance")
	}
	// The parent sees the promoted write.
	v, ok, err := parent.Read("b")
	if err != nil || !ok || string(v) != "from-child" {
		t.Fatalf("parent read = %q ok=%v err=%v", v, ok, err)
	}
	if err := parent.Complete(ctx); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := st.Get("b"); string(got) != "from-child" {
		t.Fatalf("store = %q", got)
	}
}

func TestNestedPredicatePromotes(t *testing.T) {
	// A predicate recorded in a child must still guard the top-level
	// performance.
	svc, st, locks := fixture()
	st.Put("guarded", []byte("v"))
	ctx := context.Background()
	parent := Begin(svc, "parent", st, locks, lockWait)
	child, _ := parent.BeginChild("child")
	_, _, _ = child.Read("guarded")
	_ = child.Write("out", []byte("x"))
	if err := child.Complete(ctx); err != nil {
		t.Fatal(err)
	}
	st.Put("guarded", []byte("changed"))
	if err := parent.Complete(ctx); !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v", err)
	}
}

func TestAbandonDiscardsEverything(t *testing.T) {
	svc, st, locks := fixture()
	ctx := context.Background()
	u := Begin(svc, "doomed", st, locks, lockWait)
	_ = u.Write("k", []byte("x"))
	if err := u.Abandon(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.Get("k"); ok {
		t.Fatal("abandoned write reached store")
	}
	if err := u.Complete(ctx); !errors.Is(err, ErrCompleted) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := u.Read("k"); !errors.Is(err, ErrCompleted) {
		t.Fatalf("read err = %v", err)
	}
	if err := u.Write("k", nil); !errors.Is(err, ErrCompleted) {
		t.Fatalf("write err = %v", err)
	}
}

func TestPerformanceBlockedByLockTimesOut(t *testing.T) {
	svc, st, locks := fixture()
	st.Put("contested", []byte("v"))
	ctx := context.Background()
	// An outside party write-locks the key.
	if err := locks.Acquire("outsider", "contested", lockmgr.Write, lockWait); err != nil {
		t.Fatal(err)
	}
	u := Begin(svc, "blocked", st, locks, lockWait)
	_, _, _ = u.Read("contested")
	_ = u.Write("contested", []byte("w"))
	err := u.Complete(ctx)
	// The performance phase could not obtain locks: treated as stale
	// (validation could not run).
	if !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v", err)
	}
	if got, _, _ := st.Get("contested"); string(got) != "v" {
		t.Fatalf("store = %q", got)
	}
}

func TestTouchedCount(t *testing.T) {
	svc, st, locks := fixture()
	u := Begin(svc, "count", st, locks, lockWait)
	_, _, _ = u.Read("a")
	_, _, _ = u.Read("b")
	_ = u.Write("b", nil)
	_ = u.Write("c", nil)
	if got := u.Touched(); got != 3 {
		t.Fatalf("touched = %d", got)
	}
}
