// Package workflow implements §4.4 of the paper: transactional workflow
// coordination on the Activity Service, in the style of the OPENflow
// system ([15]).
//
// The coordination protocol is the paper's four-signal scheme: a parent
// activity sends "start" to child task controllers (acknowledged with
// "start_ack"); a completing child sends "outcome" back to the parent's
// registered Action (acknowledged with "outcome_ack"). Tasks that must
// start together register with the same start SignalSet — the paper's
// "t2 and t3 would register with the same SignalSet since they need to be
// started together, whereas t4 would be registered with a separate
// SignalSet."
//
// A Process is a DAG of Tasks with optional compensations; on failure the
// engine performs the fig. 2 recovery: run the prescribed compensations,
// then execute alternative tasks, mirroring tc1 / t5' / t6'.
package workflow

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/extendedtx/activityservice/internal/core"
)

// Protocol signal and outcome names (§4.4).
const (
	// SignalStart starts a child task.
	SignalStart = "start"
	// OutcomeStartAck acknowledges a start.
	OutcomeStartAck = "start_ack"
	// SignalOutcome reports a child's completion to the parent.
	SignalOutcome = "outcome"
	// OutcomeOutcomeAck acknowledges an outcome.
	OutcomeOutcomeAck = "outcome_ack"
	// CompletedSetName is each child activity's completion set.
	CompletedSetName = "completed"
)

// Workflow errors.
var (
	// ErrUnknownDependency reports a task depending on a name not in the
	// process.
	ErrUnknownDependency = errors.New("workflow: unknown dependency")
	// ErrCycle reports an unrunnable (cyclic) dependency graph.
	ErrCycle = errors.New("workflow: dependency cycle")
	// ErrTaskFailed wraps a task failure.
	ErrTaskFailed = errors.New("workflow: task failed")
)

// Task is one unit of work: typically tied to a single top-level
// transaction, as fig. 1 prescribes for long-running activities.
type Task struct {
	Name      string
	DependsOn []string
	Run       func(ctx context.Context) error
	// Compensate undoes the task's committed work when a later task fails
	// and the process's failure policy selects it.
	Compensate func(ctx context.Context) error
}

// Continuation describes fig. 2 recovery for one failing task: compensate
// some committed tasks, then continue with alternatives.
type Continuation struct {
	// Compensate names the completed tasks whose compensations run (in the
	// listed order). Nil means every completed task with a compensation,
	// in reverse completion order.
	Compensate []string
	// Alternatives are tasks executed after compensation (t5', t6').
	// Their DependsOn may reference other alternatives only.
	Alternatives []Task
}

// Process is a named task DAG with failure continuations.
type Process struct {
	Name      string
	Tasks     []Task
	OnFailure map[string]Continuation
}

// Result reports a process execution.
type Result struct {
	// Ok is true when every task (or the continuation path) completed.
	Ok bool
	// Completed lists tasks that completed successfully, in completion
	// order (alternatives included).
	Completed []string
	// Failed names the failing task, if any.
	Failed string
	// Compensated lists tasks whose compensations ran, in execution order.
	Compensated []string
}

// Engine executes processes over an activity service.
type Engine struct {
	svc *core.Service
}

// New returns an Engine over svc.
func New(svc *core.Service) *Engine {
	return &Engine{svc: svc}
}

// event is one child-outcome notification.
type event struct {
	task string
	ok   bool
	err  error
}

// Execute runs the process and returns its result. The first task failure
// stops new scheduling, drains in-flight tasks, then applies the
// continuation for the failed task (if any).
func (e *Engine) Execute(ctx context.Context, p Process) (Result, error) {
	var result Result
	byName := make(map[string]*Task, len(p.Tasks))
	for i := range p.Tasks {
		t := &p.Tasks[i]
		if _, dup := byName[t.Name]; dup {
			return result, fmt.Errorf("workflow: duplicate task %q", t.Name)
		}
		byName[t.Name] = t
	}
	for _, t := range p.Tasks {
		for _, d := range t.DependsOn {
			if _, ok := byName[d]; !ok {
				return result, fmt.Errorf("%w: %q needs %q", ErrUnknownDependency, t.Name, d)
			}
		}
	}

	parent := e.svc.Begin(p.Name)
	run := &processRun{
		engine: e,
		parent: parent,
		events: make(chan event, len(p.Tasks)),
	}
	err := run.executeDAG(ctx, p.Tasks, &result)
	if err == nil {
		result.Ok = true
		if _, cerr := parent.CompleteWithStatus(ctx, core.CompletionSuccess); cerr != nil {
			return result, cerr
		}
		return result, nil
	}
	var failure *taskFailure
	if !errors.As(err, &failure) {
		_, _ = parent.CompleteWithStatus(ctx, core.CompletionFailOnly)
		return result, err
	}
	result.Failed = failure.task

	// Fig. 2 recovery: compensation, then alternatives.
	cont, hasCont := p.OnFailure[failure.task]
	if err := run.compensate(ctx, cont, hasCont, byName, &result); err != nil {
		_, _ = parent.CompleteWithStatus(ctx, core.CompletionFailOnly)
		return result, err
	}
	if hasCont && len(cont.Alternatives) > 0 {
		e.svc.Trace().Notef(p.Name, "continuing with alternatives after compensation")
		if err := run.executeDAG(ctx, cont.Alternatives, &result); err != nil {
			_, _ = parent.CompleteWithStatus(ctx, core.CompletionFailOnly)
			return result, fmt.Errorf("%w: alternative: %v", ErrTaskFailed, err)
		}
		result.Ok = true
		if _, cerr := parent.CompleteWithStatus(ctx, core.CompletionSuccess); cerr != nil {
			return result, cerr
		}
		return result, nil
	}
	if _, cerr := parent.CompleteWithStatus(ctx, core.CompletionFail); cerr != nil {
		return result, cerr
	}
	return result, fmt.Errorf("%w: %s: %v", ErrTaskFailed, failure.task, failure.err)
}

// taskFailure carries the first failing task out of the scheduler loop.
type taskFailure struct {
	task string
	err  error
}

func (f *taskFailure) Error() string {
	return fmt.Sprintf("task %s: %v", f.task, f.err)
}

// processRun is the mutable state of one execution.
type processRun struct {
	engine *Engine
	parent *core.Activity
	events chan event
	stage  int
}

// executeDAG schedules tasks respecting dependencies, returning a
// *taskFailure on the first task failure.
func (r *processRun) executeDAG(ctx context.Context, tasks []Task, result *Result) error {
	if len(tasks) == 0 {
		return nil
	}
	waiting := make(map[string]*Task, len(tasks))
	depCount := make(map[string]int, len(tasks))
	dependents := make(map[string][]string)
	for i := range tasks {
		t := &tasks[i]
		waiting[t.Name] = t
		depCount[t.Name] = len(t.DependsOn)
		for _, d := range t.DependsOn {
			dependents[d] = append(dependents[d], t.Name)
		}
	}

	inflight := 0
	var failed *taskFailure
	schedule := func() error {
		var ready []*Task
		for name, t := range waiting {
			if depCount[name] == 0 {
				ready = append(ready, t)
			}
		}
		if len(ready) == 0 {
			return nil
		}
		for _, t := range ready {
			delete(waiting, t.Name)
		}
		inflight += len(ready)
		return r.startStage(ctx, ready)
	}
	if err := schedule(); err != nil {
		return err
	}
	if inflight == 0 {
		return fmt.Errorf("%w: no runnable tasks among %d", ErrCycle, len(tasks))
	}

	reported := make(map[string]bool, len(tasks))
	for inflight > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("workflow: cancelled: %w", ctx.Err())
		case ev := <-r.events:
			if reported[ev.task] {
				continue // duplicate delivery (at-least-once): drop
			}
			reported[ev.task] = true
			inflight--
			if !ev.ok {
				if failed == nil {
					failed = &taskFailure{task: ev.task, err: ev.err}
				}
				continue // stop scheduling, drain in-flight
			}
			result.Completed = append(result.Completed, ev.task)
			if failed == nil {
				for _, dep := range dependents[ev.task] {
					depCount[dep]--
				}
				if err := schedule(); err != nil {
					return err
				}
			}
		}
	}
	if failed != nil {
		return failed
	}
	if len(waiting) > 0 {
		return fmt.Errorf("%w: %d tasks unreachable", ErrCycle, len(waiting))
	}
	return nil
}

// startStage starts a group of ready tasks together through one start
// SignalSet, per the paper's stage convention.
func (r *processRun) startStage(ctx context.Context, stage []*Task) error {
	r.stage++
	setName := fmt.Sprintf("start-%d", r.stage)
	set := core.NewSequenceSet(setName, SignalStart).Collate(func(rs []core.Outcome) core.Outcome {
		return core.Outcome{Name: "started", Data: int64(len(rs))}
	})
	if err := r.parent.RegisterSignalSet(set); err != nil {
		return err
	}
	for _, t := range stage {
		t := t
		if _, err := r.parent.AddNamedAction(setName, t.Name, &startAction{run: r, task: t}); err != nil {
			return err
		}
	}
	if _, err := r.parent.Signal(ctx, setName); err != nil {
		return err
	}
	return nil
}

// startAction is a task controller's start half: on "start" it launches
// the task and acknowledges.
type startAction struct {
	run  *processRun
	task *Task
}

func (a *startAction) ProcessSignal(ctx context.Context, sig core.Signal) (core.Outcome, error) {
	if sig.Name != SignalStart {
		return core.Outcome{}, fmt.Errorf("workflow: task %s got signal %q", a.task.Name, sig.Name)
	}
	go a.run.runTask(ctx, a.task)
	return core.Outcome{Name: OutcomeStartAck}, nil
}

// runTask executes one task inside a child activity and reports its
// outcome to the parent through the child's Completed SignalSet.
func (r *processRun) runTask(ctx context.Context, t *Task) {
	child, err := r.parent.BeginChild(t.Name)
	if err != nil {
		r.events <- event{task: t.Name, err: err}
		return
	}
	set := newCompletedSet(t.Name)
	if err := child.RegisterSignalSet(set); err != nil {
		r.events <- event{task: t.Name, err: err}
		return
	}
	child.SetCompletionSet(CompletedSetName)
	// The parent registers its outcome Action with the child — "Whenever a
	// child activity is started the parent activity registers an Action
	// with it that is used to deliver the outcome Signal to the parent."
	if _, err := child.AddNamedAction(CompletedSetName, r.parent.Name(), &outcomeAction{}); err != nil {
		r.events <- event{task: t.Name, err: err}
		return
	}

	runErr := t.Run(core.NewContext(ctx, child))
	cs := core.CompletionSuccess
	if runErr != nil {
		cs = core.CompletionFail
		r.engine.svc.Trace().Notef(t.Name, "%s aborts: %v", t.Name, runErr)
	}
	// Completion drives the child's Completed set, whose "outcome" signal
	// reaches the parent's outcomeAction. The scheduler event is emitted
	// only after completion fully returns — the outcome signal fires while
	// the child is still in the Completing state, and scheduling off it
	// directly would let the parent observe a not-yet-Completed child.
	if _, err := child.CompleteWithStatus(ctx, cs); err != nil {
		r.events <- event{task: t.Name, err: err}
		return
	}
	ev := event{task: t.Name, ok: runErr == nil}
	if runErr != nil {
		ev.err = fmt.Errorf("%w: %s: %v", ErrTaskFailed, t.Name, runErr)
	}
	r.events <- ev
}

// completedSet is the child's Completed SignalSet: one "outcome" signal
// whose data carries the task name and success flag.
type completedSet struct {
	core.BaseSet

	mu      sync.Mutex
	task    string
	emitted bool
}

var _ core.SignalSet = (*completedSet)(nil)

func newCompletedSet(task string) *completedSet {
	return &completedSet{BaseSet: core.NewBaseSet(CompletedSetName), task: task}
}

func (s *completedSet) GetSignal() (core.Signal, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.emitted {
		return core.Signal{}, false, core.ErrExhausted
	}
	s.emitted = true
	return core.Signal{
		Name:    SignalOutcome,
		SetName: CompletedSetName,
		Data: map[string]any{
			"task": s.task,
			"ok":   s.CompletionStatus() == core.CompletionSuccess,
		},
	}, true, nil
}

func (s *completedSet) SetResponse(core.Outcome, error) (bool, error) { return false, nil }

func (s *completedSet) GetOutcome() (core.Outcome, error) {
	if s.CompletionStatus() == core.CompletionSuccess {
		return core.Outcome{Name: "success"}, nil
	}
	return core.Outcome{Name: "failure"}, nil
}

// outcomeAction is the parent's half of the protocol: it acknowledges the
// child's "outcome" signal (fig. 10's outcome/outcome_ack pair). The
// scheduler is notified separately by runTask once the child's completion
// has fully finished.
type outcomeAction struct{}

func (a *outcomeAction) ProcessSignal(_ context.Context, sig core.Signal) (core.Outcome, error) {
	if sig.Name != SignalOutcome {
		return core.Outcome{}, fmt.Errorf("workflow: outcome action got %q", sig.Name)
	}
	if _, ok := sig.Data.(map[string]any); !ok {
		return core.Outcome{}, fmt.Errorf("workflow: outcome signal without payload")
	}
	return core.Outcome{Name: OutcomeOutcomeAck}, nil
}

// compensate runs the continuation's compensations (fig. 2's tc1) as
// fresh child activities of the process activity.
func (r *processRun) compensate(ctx context.Context, cont Continuation, hasCont bool, byName map[string]*Task, result *Result) error {
	var names []string
	if hasCont && cont.Compensate != nil {
		names = cont.Compensate
	} else {
		// Default: every completed task with a compensation, reverse
		// completion order.
		for i := len(result.Completed) - 1; i >= 0; i-- {
			name := result.Completed[i]
			if t, ok := byName[name]; ok && t.Compensate != nil {
				names = append(names, name)
			}
		}
	}
	for _, name := range names {
		t, ok := byName[name]
		if !ok || t.Compensate == nil {
			return fmt.Errorf("workflow: no compensation for task %q", name)
		}
		r.engine.svc.Trace().Notef(r.parent.Name(), "compensating %s (tc:%s)", name, name)
		ca, err := r.parent.BeginChild("tc:" + name)
		if err != nil {
			return err
		}
		cerr := t.Compensate(core.NewContext(ctx, ca))
		cs := core.CompletionSuccess
		if cerr != nil {
			cs = core.CompletionFail
		}
		if _, err := ca.CompleteWithStatus(ctx, cs); err != nil {
			return err
		}
		if cerr != nil {
			return fmt.Errorf("workflow: compensation of %s: %w", name, cerr)
		}
		result.Compensated = append(result.Compensated, name)
	}
	return nil
}
