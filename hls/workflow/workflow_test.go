package workflow

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/extendedtx/activityservice/internal/core"
	"github.com/extendedtx/activityservice/internal/trace"
)

// journal records task executions thread-safely.
type journal struct {
	mu      sync.Mutex
	entries []string
}

func (j *journal) add(s string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.entries = append(j.entries, s)
}

func (j *journal) Entries() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.entries...)
}

func (j *journal) Index(s string) int {
	for i, e := range j.Entries() {
		if e == s {
			return i
		}
	}
	return -1
}

func task(j *journal, name string, deps []string, fail bool) Task {
	return Task{
		Name:      name,
		DependsOn: deps,
		Run: func(context.Context) error {
			if fail {
				return errors.New(name + " failed")
			}
			j.add("run:" + name)
			return nil
		},
		Compensate: func(context.Context) error {
			j.add("undo:" + name)
			return nil
		},
	}
}

func TestSequentialChainFig1(t *testing.T) {
	// Fig. 1: t1 → t2 → … → t6, each a short unit of work.
	svc := core.New()
	j := &journal{}
	tasks := []Task{task(j, "t1", nil, false)}
	for i := 2; i <= 6; i++ {
		tasks = append(tasks, task(j, tName(i), []string{tName(i - 1)}, false))
	}
	res, err := New(svc).Execute(context.Background(), Process{Name: "booking", Tasks: tasks})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok || len(res.Completed) != 6 {
		t.Fatalf("result = %+v", res)
	}
	want := []string{"run:t1", "run:t2", "run:t3", "run:t4", "run:t5", "run:t6"}
	got := j.Entries()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entries = %v", got)
		}
	}
	if svc.Live() != 0 {
		t.Fatalf("live activities = %d", svc.Live())
	}
}

func tName(i int) string {
	return "t" + string(rune('0'+i))
}

func TestFig10ParallelThenJoin(t *testing.T) {
	// Fig. 10: a coordinates the parallel execution of b and c followed
	// by d.
	svc := core.New()
	j := &journal{}
	p := Process{
		Name: "a",
		Tasks: []Task{
			task(j, "b", nil, false),
			task(j, "c", nil, false),
			task(j, "d", []string{"b", "c"}, false),
		},
	}
	res, err := New(svc).Execute(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok {
		t.Fatalf("result = %+v", res)
	}
	// b and c in either order, both before d.
	di := j.Index("run:d")
	if di < 0 || j.Index("run:b") > di || j.Index("run:c") > di {
		t.Fatalf("entries = %v", j.Entries())
	}
}

func TestFig10SignalTrace(t *testing.T) {
	// The coordination messages of fig. 10: start/start_ack for b, c and
	// d, and outcome/outcome_ack from each child back to a.
	rec := trace.New()
	svc := core.New(core.WithTrace(rec))
	j := &journal{}
	p := Process{
		Name: "a",
		Tasks: []Task{
			task(j, "b", nil, false),
			task(j, "c", nil, false),
			task(j, "d", []string{"b", "c"}, false),
		},
	}
	if _, err := New(svc).Execute(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	seq := rec.Sequence()
	counts := map[string]int{}
	for _, s := range seq {
		switch {
		case strings.HasPrefix(s, "transmit:a->") && strings.HasSuffix(s, ":start"):
			counts["start"]++
		case strings.Contains(s, ":start_ack"):
			counts["start_ack"]++
		case strings.HasPrefix(s, "set_response:a->") && strings.HasSuffix(s, ":outcome_ack"):
			counts["outcome_ack"]++
		case strings.HasSuffix(s, ":outcome") && strings.HasPrefix(s, "transmit:"):
			counts["outcome"]++
		}
	}
	for _, k := range []string{"start", "start_ack", "outcome", "outcome_ack"} {
		if counts[k] != 3 {
			t.Fatalf("%s count = %d, want 3\ntrace:\n%s", k, counts[k], strings.Join(seq, "\n"))
		}
	}
}

func TestStageGrouping(t *testing.T) {
	// t2 and t3 start together (same SignalSet); t4 separately — assert
	// via the stage set names in the trace.
	rec := trace.New()
	svc := core.New(core.WithTrace(rec))
	j := &journal{}
	p := Process{
		Name: "app",
		Tasks: []Task{
			task(j, "t1", nil, false),
			task(j, "t2", []string{"t1"}, false),
			task(j, "t3", []string{"t1"}, false),
			task(j, "t4", []string{"t2", "t3"}, false),
		},
	}
	if _, err := New(svc).Execute(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	// The start set a task acknowledged identifies its stage.
	stageOf := map[string]string{}
	for _, e := range rec.Events() {
		if e.Kind == trace.KindResponse && e.Signal == OutcomeStartAck {
			stageOf[e.Source] = e.Target // task -> start set name
		}
	}
	if stageOf["t2"] != stageOf["t3"] {
		t.Fatalf("t2 and t3 in different stages: %v", stageOf)
	}
	if stageOf["t4"] == stageOf["t2"] || stageOf["t4"] == stageOf["t1"] {
		t.Fatalf("t4 shares a stage: %v", stageOf)
	}
}

func TestFig2FailureCompensationAlternatives(t *testing.T) {
	// Fig. 2: t4 aborts → tc1 compensates t2 → alternatives t5', t6'.
	svc := core.New()
	j := &journal{}
	alt5 := Task{Name: "t5'", Run: func(context.Context) error { j.add("run:t5'"); return nil }}
	alt6 := Task{Name: "t6'", DependsOn: []string{"t5'"},
		Run: func(context.Context) error { j.add("run:t6'"); return nil }}
	p := Process{
		Name: "booking",
		Tasks: []Task{
			task(j, "t1", nil, false),
			task(j, "t2", []string{"t1"}, false),
			task(j, "t3", []string{"t2"}, false),
			task(j, "t4", []string{"t3"}, true), // aborts
		},
		OnFailure: map[string]Continuation{
			"t4": {
				Compensate:   []string{"t2"},
				Alternatives: []Task{alt5, alt6},
			},
		},
	}
	res, err := New(svc).Execute(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok || res.Failed != "t4" {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Compensated) != 1 || res.Compensated[0] != "t2" {
		t.Fatalf("compensated = %v", res.Compensated)
	}
	got := j.Entries()
	want := []string{"run:t1", "run:t2", "run:t3", "undo:t2", "run:t5'", "run:t6'"}
	if len(got) != len(want) {
		t.Fatalf("entries = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entries = %v, want %v", got, want)
		}
	}
}

func TestDefaultCompensationReverseOrder(t *testing.T) {
	svc := core.New()
	j := &journal{}
	p := Process{
		Name: "chain",
		Tasks: []Task{
			task(j, "t1", nil, false),
			task(j, "t2", []string{"t1"}, false),
			task(j, "t3", []string{"t2"}, true),
		},
	}
	res, err := New(svc).Execute(context.Background(), p)
	if !errors.Is(err, ErrTaskFailed) {
		t.Fatalf("err = %v", err)
	}
	if res.Ok {
		t.Fatal("result ok despite failure")
	}
	got := j.Entries()
	want := []string{"run:t1", "run:t2", "undo:t2", "undo:t1"}
	if len(got) != len(want) {
		t.Fatalf("entries = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entries = %v", got)
		}
	}
}

func TestParallelFailureDrainsInflight(t *testing.T) {
	svc := core.New()
	j := &journal{}
	block := make(chan struct{})
	slow := Task{Name: "slow", Run: func(context.Context) error {
		<-block
		j.add("run:slow")
		return nil
	}}
	p := Process{
		Name:  "race",
		Tasks: []Task{slow, task(j, "fast-fail", nil, true)},
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, err := New(svc).Execute(context.Background(), p)
		if errors.Is(err, ErrTaskFailed) && res.Failed != "fast-fail" {
			t.Errorf("failed = %q", res.Failed)
		}
	}()
	close(block)
	<-done
	// slow completed even though fast-fail aborted first or concurrently.
	if j.Index("run:slow") < 0 {
		t.Fatalf("entries = %v", j.Entries())
	}
}

func TestUnknownDependencyRejected(t *testing.T) {
	svc := core.New()
	p := Process{Name: "bad", Tasks: []Task{{Name: "x", DependsOn: []string{"ghost"},
		Run: func(context.Context) error { return nil }}}}
	if _, err := New(svc).Execute(context.Background(), p); !errors.Is(err, ErrUnknownDependency) {
		t.Fatalf("err = %v", err)
	}
}

func TestCycleRejected(t *testing.T) {
	svc := core.New()
	noop := func(context.Context) error { return nil }
	p := Process{Name: "cycle", Tasks: []Task{
		{Name: "a", DependsOn: []string{"b"}, Run: noop},
		{Name: "b", DependsOn: []string{"a"}, Run: noop},
	}}
	if _, err := New(svc).Execute(context.Background(), p); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateTaskRejected(t *testing.T) {
	svc := core.New()
	noop := func(context.Context) error { return nil }
	p := Process{Name: "dup", Tasks: []Task{{Name: "x", Run: noop}, {Name: "x", Run: noop}}}
	if _, err := New(svc).Execute(context.Background(), p); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestCompensationFailureSurfaces(t *testing.T) {
	svc := core.New()
	p := Process{
		Name: "broken-undo",
		Tasks: []Task{
			{Name: "t1",
				Run:        func(context.Context) error { return nil },
				Compensate: func(context.Context) error { return errors.New("cannot undo") }},
			{Name: "t2", DependsOn: []string{"t1"},
				Run: func(context.Context) error { return errors.New("boom") }},
		},
	}
	_, err := New(svc).Execute(context.Background(), p)
	if err == nil || !strings.Contains(err.Error(), "cannot undo") {
		t.Fatalf("err = %v", err)
	}
}

func TestWideFanOut(t *testing.T) {
	svc := core.New()
	j := &journal{}
	var tasks []Task
	for i := 0; i < 32; i++ {
		tasks = append(tasks, task(j, "w"+string(rune('A'+i)), nil, false))
	}
	tasks = append(tasks, Task{Name: "join", DependsOn: names(tasks),
		Run: func(context.Context) error { j.add("run:join"); return nil }})
	res, err := New(svc).Execute(context.Background(), Process{Name: "fan", Tasks: tasks})
	if err != nil || !res.Ok {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	entries := j.Entries()
	if entries[len(entries)-1] != "run:join" {
		t.Fatalf("join ran early: %v", entries[len(entries)-5:])
	}
}

func names(tasks []Task) []string {
	out := make([]string, len(tasks))
	for i, t := range tasks {
		out[i] = t.Name
	}
	return out
}

func TestTasksRunInsideChildActivities(t *testing.T) {
	svc := core.New()
	var parentName string
	var mu sync.Mutex
	p := Process{Name: "proc", Tasks: []Task{{
		Name: "probe",
		Run: func(ctx context.Context) error {
			if a, ok := core.FromContext(ctx); ok {
				mu.Lock()
				parentName = a.Parent().Name()
				mu.Unlock()
			}
			return nil
		},
	}}}
	if _, err := New(svc).Execute(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if parentName != "proc" {
		t.Fatalf("parent = %q", parentName)
	}
}
