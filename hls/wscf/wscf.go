// Package wscf implements §5.2 of the paper: the Web Services Coordination
// Framework — the Activity Service re-cast for Web services.
//
// The paper notes one essential difference from the CORBA original: WSCF
// "does not assume an underlying OTS implementation: all coordination
// services (including transactions) must be constructed on top of the
// framework." This package therefore depends only on the activity core —
// no internal/ots import — and builds its coordination types (an
// ACID-style completion protocol and a BTP-style business agreement
// protocol) purely out of SignalSets and Actions.
//
// The vocabulary follows the later WS-Coordination lineage the paper
// anticipates: a CoordinationContext identifies the activity and its
// coordination type; participants register for a protocol under that
// context; the coordinator drives the protocol's signals.
package wscf

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/extendedtx/activityservice/internal/core"
	"github.com/extendedtx/activityservice/internal/ids"
)

// Coordination type URIs (in the WS-Coordination idiom).
const (
	// TypeAtomic is the ACID-style completion coordination type.
	TypeAtomic = "http://schemas.example.org/ws/coordination/atomic"
	// TypeBusiness is the BTP-style business-agreement coordination type.
	TypeBusiness = "http://schemas.example.org/ws/coordination/business"
)

// Protocol names within the coordination types.
const (
	// ProtocolCompletion is the two-phase completion protocol of TypeAtomic.
	ProtocolCompletion = "completion"
	// ProtocolBusinessAgreement is the confirm/cancel protocol of
	// TypeBusiness.
	ProtocolBusinessAgreement = "business-agreement"
)

// WSCF errors.
var (
	// ErrUnknownType reports an unsupported coordination type.
	ErrUnknownType = errors.New("wscf: unknown coordination type")
	// ErrAborted reports that the atomic protocol aborted.
	ErrAborted = errors.New("wscf: coordination aborted")
)

// CoordinationContext identifies a coordinated activity, the wire-level
// "context" a Web service passes along with application messages.
type CoordinationContext struct {
	// Identifier is the globally unique activity id.
	Identifier ids.UID
	// Type is the coordination type URI.
	Type string
	// Registration names the coordinator to register with. In this
	// in-process implementation it is the activity name; a deployment
	// would carry an endpoint reference.
	Registration string
}

// Participant is a Web-service participant in the completion protocol.
// Prepare votes (nil = prepared); Commit and Cancel finish. Methods must
// tolerate repeated invocation: delivery is at least once.
type Participant interface {
	Prepare() error
	Commit() error
	Cancel() error
}

// Coordinator is the WSCF activation + registration service: it creates
// coordination contexts and registers participants, backed entirely by the
// activity service.
type Coordinator struct {
	svc *core.Service

	mu       sync.Mutex
	contexts map[ids.UID]*coordination
}

// coordination is one coordinated activity.
type coordination struct {
	ctxInfo  CoordinationContext
	activity *core.Activity
	set      *completionSet
}

// NewCoordinator returns a WSCF coordinator over svc.
func NewCoordinator(svc *core.Service) *Coordinator {
	return &Coordinator{svc: svc, contexts: make(map[ids.UID]*coordination)}
}

// CreateCoordinationContext starts a coordinated activity of the given
// type (the WS-Coordination "Activation" service).
func (c *Coordinator) CreateCoordinationContext(name, coordType string) (CoordinationContext, error) {
	switch coordType {
	case TypeAtomic, TypeBusiness:
	default:
		return CoordinationContext{}, fmt.Errorf("%w: %q", ErrUnknownType, coordType)
	}
	a := c.svc.Begin(name)
	set := newCompletionSet(coordType)
	if err := a.RegisterSignalSet(set); err != nil {
		return CoordinationContext{}, err
	}
	a.SetCompletionSet(set.Name())
	info := CoordinationContext{Identifier: a.ID(), Type: coordType, Registration: name}
	c.mu.Lock()
	c.contexts[a.ID()] = &coordination{ctxInfo: info, activity: a, set: set}
	c.mu.Unlock()
	return info, nil
}

// Register enrolls a participant for the context's protocol (the
// WS-Coordination "Registration" service).
func (c *Coordinator) Register(cc CoordinationContext, name string, p Participant) error {
	coord, err := c.lookup(cc)
	if err != nil {
		return err
	}
	_, err = coord.activity.AddNamedAction(coord.set.Name(), name, &participantAction{p: p})
	return err
}

// RegisterAction enrolls a raw Action (e.g. a remote proxy) for the
// context's protocol.
func (c *Coordinator) RegisterAction(cc CoordinationContext, name string, a core.Action) error {
	coord, err := c.lookup(cc)
	if err != nil {
		return err
	}
	_, err = coord.activity.AddNamedAction(coord.set.Name(), name, a)
	return err
}

// Complete drives the context's protocol to its successful outcome
// (commit for TypeAtomic, confirm for TypeBusiness). For TypeAtomic a
// participant prepare failure aborts everyone and returns ErrAborted.
func (c *Coordinator) Complete(ctx context.Context, cc CoordinationContext) error {
	coord, err := c.lookup(cc)
	if err != nil {
		return err
	}
	out, err := coord.activity.CompleteWithStatus(ctx, core.CompletionSuccess)
	if err != nil {
		return fmt.Errorf("wscf: complete: %w", err)
	}
	c.drop(cc)
	if out.Name != "committed" {
		return fmt.Errorf("%w: outcome %s", ErrAborted, out.Name)
	}
	return nil
}

// Abort cancels the context's protocol.
func (c *Coordinator) Abort(ctx context.Context, cc CoordinationContext) error {
	coord, err := c.lookup(cc)
	if err != nil {
		return err
	}
	if _, err := coord.activity.CompleteWithStatus(ctx, core.CompletionFail); err != nil {
		return fmt.Errorf("wscf: abort: %w", err)
	}
	c.drop(cc)
	return nil
}

func (c *Coordinator) lookup(cc CoordinationContext) (*coordination, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	coord, ok := c.contexts[cc.Identifier]
	if !ok {
		return nil, fmt.Errorf("wscf: unknown coordination context %s", cc.Identifier.Short())
	}
	return coord, nil
}

func (c *Coordinator) drop(cc CoordinationContext) {
	c.mu.Lock()
	delete(c.contexts, cc.Identifier)
	c.mu.Unlock()
}

// completionSet is the two-phase completion protocol, built with no
// transaction service underneath: "prepare" then "commit"/"cancel"
// (TypeAtomic), or single-round "confirm"/"cancel" (TypeBusiness).
type completionSet struct {
	core.BaseSet

	mu       sync.Mutex
	coordTyp string
	stage    int
	doomed   bool
}

var _ core.SignalSet = (*completionSet)(nil)

func newCompletionSet(coordType string) *completionSet {
	return &completionSet{
		BaseSet:  core.NewBaseSet(ProtocolCompletion),
		coordTyp: coordType,
	}
}

func (s *completionSet) GetSignal() (core.Signal, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	failing := s.CompletionStatus() != core.CompletionSuccess
	switch {
	case s.stage == 0 && (failing || s.coordTyp == TypeBusiness):
		// Business agreements confirm/cancel in one round; a failing
		// atomic context cancels in one round too.
		s.stage = 2
		name := "confirm"
		if failing {
			s.doomed = true
			name = "cancel"
		}
		return core.Signal{Name: name, SetName: s.Name()}, true, nil
	case s.stage == 0:
		s.stage = 1
		return core.Signal{Name: "prepare", SetName: s.Name()}, false, nil
	case s.stage == 1:
		s.stage = 2
		name := "commit"
		if s.doomed {
			name = "cancel"
		}
		return core.Signal{Name: name, SetName: s.Name()}, true, nil
	default:
		return core.Signal{}, false, core.ErrExhausted
	}
}

func (s *completionSet) SetResponse(resp core.Outcome, deliveryErr error) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stage == 1 && (deliveryErr != nil || resp.Name == "aborted") {
		s.doomed = true
		return true, nil
	}
	return false, nil
}

func (s *completionSet) GetOutcome() (core.Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.doomed || s.CompletionStatus() != core.CompletionSuccess {
		return core.Outcome{Name: "aborted"}, nil
	}
	return core.Outcome{Name: "committed"}, nil
}

// participantAction adapts a Participant to the Action protocol.
type participantAction struct {
	p Participant

	mu       sync.Mutex
	prepared bool
}

func (a *participantAction) ProcessSignal(_ context.Context, sig core.Signal) (core.Outcome, error) {
	switch sig.Name {
	case "prepare":
		if err := a.p.Prepare(); err != nil {
			return core.Outcome{Name: "aborted", Data: err.Error()}, nil
		}
		a.mu.Lock()
		a.prepared = true
		a.mu.Unlock()
		return core.Outcome{Name: "prepared"}, nil
	case "commit", "confirm":
		if err := a.p.Commit(); err != nil {
			return core.Outcome{}, fmt.Errorf("wscf: commit: %w", err)
		}
		return core.Outcome{Name: "committed"}, nil
	case "cancel":
		if err := a.p.Cancel(); err != nil {
			return core.Outcome{}, fmt.Errorf("wscf: cancel: %w", err)
		}
		return core.Outcome{Name: "cancelled"}, nil
	default:
		return core.Outcome{}, fmt.Errorf("wscf: unexpected signal %q", sig.Name)
	}
}
