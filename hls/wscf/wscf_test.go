package wscf

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/extendedtx/activityservice/internal/core"
)

// wsParticipant is a scriptable Web-service participant.
type wsParticipant struct {
	mu          sync.Mutex
	name        string
	failPrepare bool
	calls       []string
}

func (w *wsParticipant) log(s string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.calls = append(w.calls, s)
}

func (w *wsParticipant) Calls() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.calls...)
}

func (w *wsParticipant) Prepare() error {
	w.log("prepare")
	if w.failPrepare {
		return errors.New(w.name + " cannot prepare")
	}
	return nil
}

func (w *wsParticipant) Commit() error { w.log("commit"); return nil }
func (w *wsParticipant) Cancel() error { w.log("cancel"); return nil }

func TestAtomicCoordinationCommits(t *testing.T) {
	svc := core.New()
	coord := NewCoordinator(svc)
	ctx := context.Background()

	cc, err := coord.CreateCoordinationContext("tx-ws", TypeAtomic)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Type != TypeAtomic || cc.Identifier.IsNil() {
		t.Fatalf("context = %+v", cc)
	}
	a := &wsParticipant{name: "inventory"}
	b := &wsParticipant{name: "payments"}
	if err := coord.Register(cc, "inventory", a); err != nil {
		t.Fatal(err)
	}
	if err := coord.Register(cc, "payments", b); err != nil {
		t.Fatal(err)
	}
	if err := coord.Complete(ctx, cc); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*wsParticipant{a, b} {
		calls := p.Calls()
		if len(calls) != 2 || calls[0] != "prepare" || calls[1] != "commit" {
			t.Fatalf("%s calls = %v", p.name, calls)
		}
	}
	if svc.Live() != 0 {
		t.Fatalf("live = %d", svc.Live())
	}
}

func TestAtomicCoordinationAbortsOnVeto(t *testing.T) {
	svc := core.New()
	coord := NewCoordinator(svc)
	ctx := context.Background()
	cc, _ := coord.CreateCoordinationContext("tx-ws", TypeAtomic)
	good := &wsParticipant{name: "good"}
	bad := &wsParticipant{name: "bad", failPrepare: true}
	_ = coord.Register(cc, "good", good)
	_ = coord.Register(cc, "bad", bad)

	err := coord.Complete(ctx, cc)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	gc := good.Calls()
	if len(gc) != 2 || gc[0] != "prepare" || gc[1] != "cancel" {
		t.Fatalf("good calls = %v", gc)
	}
}

func TestExplicitAbortCancelsEveryone(t *testing.T) {
	svc := core.New()
	coord := NewCoordinator(svc)
	ctx := context.Background()
	cc, _ := coord.CreateCoordinationContext("tx-ws", TypeAtomic)
	p := &wsParticipant{name: "p"}
	_ = coord.Register(cc, "p", p)
	if err := coord.Abort(ctx, cc); err != nil {
		t.Fatal(err)
	}
	calls := p.Calls()
	if len(calls) != 1 || calls[0] != "cancel" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestBusinessAgreementConfirmsInOneRound(t *testing.T) {
	// TypeBusiness has no voting phase: participants get confirm directly,
	// the BTP-ish model of §4.5 without prepared state.
	svc := core.New()
	coord := NewCoordinator(svc)
	ctx := context.Background()
	cc, err := coord.CreateCoordinationContext("biz", TypeBusiness)
	if err != nil {
		t.Fatal(err)
	}
	p := &wsParticipant{name: "p"}
	_ = coord.Register(cc, "p", p)
	if err := coord.Complete(ctx, cc); err != nil {
		t.Fatal(err)
	}
	calls := p.Calls()
	if len(calls) != 1 || calls[0] != "commit" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestUnknownCoordinationTypeRejected(t *testing.T) {
	svc := core.New()
	coord := NewCoordinator(svc)
	if _, err := coord.CreateCoordinationContext("x", "http://nope"); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownContextRejected(t *testing.T) {
	svc := core.New()
	coord := NewCoordinator(svc)
	cc := CoordinationContext{Type: TypeAtomic}
	if err := coord.Register(cc, "p", &wsParticipant{}); err == nil {
		t.Fatal("register on unknown context succeeded")
	}
	if err := coord.Complete(context.Background(), cc); err == nil {
		t.Fatal("complete on unknown context succeeded")
	}
}

func TestNoOTSDependency(t *testing.T) {
	// §5.2: WSCF must not assume an underlying OTS. This is enforced
	// structurally (the package imports only the activity core); the test
	// documents the invariant by running the full protocol with zero
	// transaction-service machinery constructed anywhere.
	svc := core.New()
	coord := NewCoordinator(svc)
	cc, _ := coord.CreateCoordinationContext("pure", TypeAtomic)
	p := &wsParticipant{name: "p"}
	_ = coord.Register(cc, "p", p)
	if err := coord.Complete(context.Background(), cc); err != nil {
		t.Fatal(err)
	}
}

func TestContextReusableAcrossRegistrations(t *testing.T) {
	svc := core.New()
	coord := NewCoordinator(svc)
	ctx := context.Background()
	cc, _ := coord.CreateCoordinationContext("multi", TypeAtomic)
	var ps []*wsParticipant
	for i := 0; i < 5; i++ {
		p := &wsParticipant{name: string(rune('a' + i))}
		ps = append(ps, p)
		if err := coord.Register(cc, p.name, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Complete(ctx, cc); err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if calls := p.Calls(); len(calls) != 2 {
			t.Fatalf("%s calls = %v", p.name, calls)
		}
	}
}
