// Package saga implements the Sagas model of Garcia-Molina & Salem
// (reference [6] of the paper) on the Activity Service: a long-lived
// transaction structured as a sequence of steps T1…Tn, each with a
// compensation C1…Cn; when Tk fails, the committed prefix is undone by
// running Ck-1…C1 in reverse order.
//
// The mapping onto the framework keeps the coordinator generic: each
// completed step registers a compensation Action with the saga activity's
// compensation SignalSet; on failure the set emits one "compensate" signal
// per completed step carrying the step index in descending order, and each
// action reacts only to its own index — reverse-order compensation through
// pure broadcast.
package saga

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/extendedtx/activityservice/internal/core"
)

// Protocol names.
const (
	// SetName is the compensation signal set name.
	SetName = "saga-compensation"
	// SignalCompensate carries the index of the step to undo.
	SignalCompensate = "compensate"
)

// Saga errors.
var (
	// ErrStepFailed wraps the failure of a forward step.
	ErrStepFailed = errors.New("saga: step failed")
	// ErrCompensationFailed reports a compensation that itself failed; the
	// saga is then in a heuristic state requiring operator attention.
	ErrCompensationFailed = errors.New("saga: compensation failed")
)

// Step is one forward action plus its compensation. Compensate may be nil
// for steps that need no undo.
type Step struct {
	Name       string
	Run        func(ctx context.Context) error
	Compensate func(ctx context.Context) error
}

// Result reports how a saga ended.
type Result struct {
	// Committed is true when every step ran.
	Committed bool
	// FailedStep names the step that failed, if any.
	FailedStep string
	// Compensated lists the undone steps, in execution (reverse) order.
	Compensated []string
}

// compensationSet emits "compensate" signals with descending indices,
// one per registered compensation.
type compensationSet struct {
	core.BaseSet

	mu    sync.Mutex
	next  int // next index to emit, counting down
	ended bool
}

var _ core.SignalSet = (*compensationSet)(nil)

func newCompensationSet(completedSteps int) *compensationSet {
	return &compensationSet{
		BaseSet: core.NewBaseSet(SetName),
		next:    completedSteps - 1,
	}
}

func (s *compensationSet) GetSignal() (core.Signal, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended || s.next < 0 {
		return core.Signal{}, false, core.ErrExhausted
	}
	idx := s.next
	s.next--
	last := s.next < 0
	return core.Signal{
		Name:    SignalCompensate,
		SetName: SetName,
		Data:    int64(idx),
	}, last, nil
}

func (s *compensationSet) SetResponse(resp core.Outcome, deliveryErr error) (bool, error) {
	return false, nil
}

func (s *compensationSet) GetOutcome() (core.Outcome, error) {
	return core.Outcome{Name: "compensated"}, nil
}

// stepCompensation is the Action for one step: it reacts only to the
// signal carrying its own index.
type stepCompensation struct {
	index int
	name  string
	run   func(ctx context.Context) error

	mu  sync.Mutex
	ran bool
}

func (a *stepCompensation) ProcessSignal(ctx context.Context, sig core.Signal) (core.Outcome, error) {
	idx, ok := sig.Data.(int64)
	if !ok || int(idx) != a.index {
		return core.Outcome{Name: "not-mine"}, nil
	}
	a.mu.Lock()
	if a.ran { // idempotent under at-least-once delivery
		a.mu.Unlock()
		return core.Outcome{Name: "already-compensated"}, nil
	}
	a.mu.Unlock()
	if a.run != nil {
		if err := a.run(ctx); err != nil {
			// ran stays false: a redelivery may retry the compensation.
			return core.Outcome{}, fmt.Errorf("%w: %s: %v", ErrCompensationFailed, a.name, err)
		}
	}
	a.mu.Lock()
	a.ran = true
	a.mu.Unlock()
	return core.Outcome{Name: "compensated:" + a.name}, nil
}

// Saga executes steps with compensation-on-failure.
type Saga struct {
	svc   *core.Service
	name  string
	steps []Step

	parallel   bool
	maxWorkers int
}

// New returns a saga with the given steps.
func New(svc *core.Service, name string, steps ...Step) *Saga {
	return &Saga{svc: svc, name: name, steps: steps}
}

// Parallel opts the saga's forward stage into concurrent execution:
// steps run simultaneously (bounded by maxWorkers; <=0 means one worker
// per step), each still inside its own child activity. Compensation stays
// deterministic — compensations are registered in declared step order and
// run in reverse declared order, never in completion order, and each
// "compensate" broadcast fans out with parallel delivery.
//
// Semantics differ from the serial saga only on mid-sequence failure: a
// serial saga never starts the steps after the first failure, while a
// parallel saga runs every step and compensates all that succeeded.
// FailedStep always names the earliest failed step in declared order.
// Returns s for chaining.
func (s *Saga) Parallel(maxWorkers int) *Saga {
	s.parallel = true
	s.maxWorkers = maxWorkers
	return s
}

// Execute runs the saga: steps execute in order, each inside a child
// activity of the saga activity (the fig. 1 structure — one short-lived
// unit per step). On a step failure the committed prefix is compensated in
// reverse and the saga activity completes with a failure status.
func (s *Saga) Execute(ctx context.Context) (Result, error) {
	root := s.svc.Begin(s.name)
	var (
		result    Result
		completed []*stepCompensation
		failedAt  int
		stepErr   error
		err       error
	)
	if s.parallel {
		completed, failedAt, stepErr, err = s.runForwardParallel(ctx, root, &result)
	} else {
		completed, failedAt, stepErr, err = s.runForwardSerial(ctx, root, &result)
	}
	if err != nil {
		return result, err
	}

	if failedAt < 0 {
		result.Committed = true
		if _, err := root.CompleteWithStatus(ctx, core.CompletionSuccess); err != nil {
			return result, err
		}
		return result, nil
	}

	// Backward recovery: drive the compensation set, then complete failed.
	// Compensation order is deterministic under both forward modes: the
	// set emits one signal per step index in descending declared order,
	// regardless of how the broadcast of each signal is delivered.
	set := newCompensationSet(len(completed))
	if s.parallel {
		set.SetDelivery(core.Parallel())
	}
	if err := root.RegisterSignalSet(set); err != nil {
		return result, err
	}
	if _, err := root.Signal(ctx, SetName); err != nil {
		return result, err
	}
	for i := len(completed) - 1; i >= 0; i-- {
		c := completed[i]
		c.mu.Lock()
		ran := c.ran
		c.mu.Unlock()
		if ran {
			result.Compensated = append(result.Compensated, c.name)
		}
	}
	if _, err := root.CompleteWithStatus(ctx, core.CompletionFail); err != nil {
		return result, err
	}
	return result, fmt.Errorf("%w: %s: %v", ErrStepFailed, result.FailedStep, stepErr)
}

// runStep executes one forward step inside its own child activity and
// returns the step's application error (framework errors are returned
// separately).
func (s *Saga) runStep(ctx context.Context, root *core.Activity, step Step) (runErr, execErr error) {
	child, err := root.BeginChild(step.Name)
	if err != nil {
		return nil, err
	}
	runErr = step.Run(core.NewContext(ctx, child))
	cs := core.CompletionSuccess
	if runErr != nil {
		cs = core.CompletionFail
	}
	if _, err := child.CompleteWithStatus(ctx, cs); err != nil {
		return runErr, err
	}
	return runErr, nil
}

// runForwardSerial executes steps in order, stopping at the first failure;
// each committed step's compensation joins the saga's set as it completes.
func (s *Saga) runForwardSerial(ctx context.Context, root *core.Activity, result *Result) ([]*stepCompensation, int, error, error) {
	var completed []*stepCompensation
	for i, step := range s.steps {
		runErr, execErr := s.runStep(ctx, root, step)
		if execErr != nil {
			return completed, -1, nil, execErr
		}
		if runErr != nil {
			result.FailedStep = step.Name
			return completed, i, runErr, nil
		}
		// Steps without a compensation enrol nothing.
		if step.Compensate == nil {
			continue
		}
		comp := &stepCompensation{index: len(completed), name: step.Name, run: step.Compensate}
		if _, err := root.AddNamedAction(SetName, "C:"+step.Name, comp); err != nil {
			return completed, -1, nil, err
		}
		completed = append(completed, comp)
	}
	return completed, -1, nil, nil
}

// runForwardParallel executes every step concurrently through a bounded
// worker pool, then registers the compensations of the successful steps in
// declared order — so compensation indices (and therefore reverse-order
// compensation) are deterministic no matter how the forward wave
// interleaved.
func (s *Saga) runForwardParallel(ctx context.Context, root *core.Activity, result *Result) ([]*stepCompensation, int, error, error) {
	n := len(s.steps)
	runErrs := make([]error, n)
	execErrs := make([]error, n)

	workers := s.maxWorkers
	if workers <= 0 || workers > n {
		workers = n
	}
	jobs := make(chan int, n)
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				runErrs[i], execErrs[i] = s.runStep(ctx, root, s.steps[i])
			}
		}()
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if execErrs[i] != nil {
			return nil, -1, nil, execErrs[i]
		}
	}

	var completed []*stepCompensation
	failedAt := -1
	var stepErr error
	for i, step := range s.steps {
		if runErrs[i] != nil {
			if failedAt < 0 {
				failedAt = i
				stepErr = runErrs[i]
				result.FailedStep = step.Name
			}
			continue
		}
		if step.Compensate == nil {
			continue
		}
		comp := &stepCompensation{index: len(completed), name: step.Name, run: step.Compensate}
		if _, err := root.AddNamedAction(SetName, "C:"+step.Name, comp); err != nil {
			return completed, -1, nil, err
		}
		completed = append(completed, comp)
	}
	return completed, failedAt, stepErr, nil
}
