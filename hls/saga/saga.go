// Package saga implements the Sagas model of Garcia-Molina & Salem
// (reference [6] of the paper) on the Activity Service: a long-lived
// transaction structured as a sequence of steps T1…Tn, each with a
// compensation C1…Cn; when Tk fails, the committed prefix is undone by
// running Ck-1…C1 in reverse order.
//
// The mapping onto the framework keeps the coordinator generic: each
// completed step registers a compensation Action with the saga activity's
// compensation SignalSet; on failure the set emits one "compensate" signal
// per completed step carrying the step index in descending order, and each
// action reacts only to its own index — reverse-order compensation through
// pure broadcast.
package saga

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/extendedtx/activityservice/internal/core"
)

// Protocol names.
const (
	// SetName is the compensation signal set name.
	SetName = "saga-compensation"
	// SignalCompensate carries the index of the step to undo.
	SignalCompensate = "compensate"
)

// Saga errors.
var (
	// ErrStepFailed wraps the failure of a forward step.
	ErrStepFailed = errors.New("saga: step failed")
	// ErrCompensationFailed reports a compensation that itself failed; the
	// saga is then in a heuristic state requiring operator attention.
	ErrCompensationFailed = errors.New("saga: compensation failed")
)

// Step is one forward action plus its compensation. Compensate may be nil
// for steps that need no undo.
type Step struct {
	Name       string
	Run        func(ctx context.Context) error
	Compensate func(ctx context.Context) error
}

// Result reports how a saga ended.
type Result struct {
	// Committed is true when every step ran.
	Committed bool
	// FailedStep names the step that failed, if any.
	FailedStep string
	// Compensated lists the undone steps, in execution (reverse) order.
	Compensated []string
}

// compensationSet emits "compensate" signals with descending indices,
// one per registered compensation.
type compensationSet struct {
	core.BaseSet

	mu    sync.Mutex
	next  int // next index to emit, counting down
	ended bool
}

var _ core.SignalSet = (*compensationSet)(nil)

func newCompensationSet(completedSteps int) *compensationSet {
	return &compensationSet{
		BaseSet: core.NewBaseSet(SetName),
		next:    completedSteps - 1,
	}
}

func (s *compensationSet) GetSignal() (core.Signal, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended || s.next < 0 {
		return core.Signal{}, false, core.ErrExhausted
	}
	idx := s.next
	s.next--
	last := s.next < 0
	return core.Signal{
		Name:    SignalCompensate,
		SetName: SetName,
		Data:    int64(idx),
	}, last, nil
}

func (s *compensationSet) SetResponse(resp core.Outcome, deliveryErr error) (bool, error) {
	return false, nil
}

func (s *compensationSet) GetOutcome() (core.Outcome, error) {
	return core.Outcome{Name: "compensated"}, nil
}

// stepCompensation is the Action for one step: it reacts only to the
// signal carrying its own index.
type stepCompensation struct {
	index int
	name  string
	run   func(ctx context.Context) error

	mu  sync.Mutex
	ran bool
}

func (a *stepCompensation) ProcessSignal(ctx context.Context, sig core.Signal) (core.Outcome, error) {
	idx, ok := sig.Data.(int64)
	if !ok || int(idx) != a.index {
		return core.Outcome{Name: "not-mine"}, nil
	}
	a.mu.Lock()
	if a.ran { // idempotent under at-least-once delivery
		a.mu.Unlock()
		return core.Outcome{Name: "already-compensated"}, nil
	}
	a.mu.Unlock()
	if a.run != nil {
		if err := a.run(ctx); err != nil {
			// ran stays false: a redelivery may retry the compensation.
			return core.Outcome{}, fmt.Errorf("%w: %s: %v", ErrCompensationFailed, a.name, err)
		}
	}
	a.mu.Lock()
	a.ran = true
	a.mu.Unlock()
	return core.Outcome{Name: "compensated:" + a.name}, nil
}

// Saga executes steps with compensation-on-failure.
type Saga struct {
	svc   *core.Service
	name  string
	steps []Step
}

// New returns a saga with the given steps.
func New(svc *core.Service, name string, steps ...Step) *Saga {
	return &Saga{svc: svc, name: name, steps: steps}
}

// Execute runs the saga: steps execute in order, each inside a child
// activity of the saga activity (the fig. 1 structure — one short-lived
// unit per step). On a step failure the committed prefix is compensated in
// reverse and the saga activity completes with a failure status.
func (s *Saga) Execute(ctx context.Context) (Result, error) {
	root := s.svc.Begin(s.name)
	var (
		result    Result
		completed []*stepCompensation
	)

	failedAt := -1
	var stepErr error
	for i, step := range s.steps {
		child, err := root.BeginChild(step.Name)
		if err != nil {
			return result, err
		}
		runErr := step.Run(core.NewContext(ctx, child))
		cs := core.CompletionSuccess
		if runErr != nil {
			cs = core.CompletionFail
		}
		if _, err := child.CompleteWithStatus(ctx, cs); err != nil {
			return result, err
		}
		if runErr != nil {
			failedAt = i
			stepErr = runErr
			result.FailedStep = step.Name
			break
		}
		// The committed step's compensation joins the saga's set; steps
		// without a compensation enrol nothing.
		if step.Compensate == nil {
			continue
		}
		comp := &stepCompensation{index: len(completed), name: step.Name, run: step.Compensate}
		if _, err := root.AddNamedAction(SetName, "C:"+step.Name, comp); err != nil {
			return result, err
		}
		completed = append(completed, comp)
	}

	if failedAt < 0 {
		result.Committed = true
		if _, err := root.CompleteWithStatus(ctx, core.CompletionSuccess); err != nil {
			return result, err
		}
		return result, nil
	}

	// Backward recovery: drive the compensation set, then complete failed.
	set := newCompensationSet(len(completed))
	if err := root.RegisterSignalSet(set); err != nil {
		return result, err
	}
	if _, err := root.Signal(ctx, SetName); err != nil {
		return result, err
	}
	for i := len(completed) - 1; i >= 0; i-- {
		c := completed[i]
		c.mu.Lock()
		ran := c.ran
		c.mu.Unlock()
		if ran {
			result.Compensated = append(result.Compensated, c.name)
		}
	}
	if _, err := root.CompleteWithStatus(ctx, core.CompletionFail); err != nil {
		return result, err
	}
	return result, fmt.Errorf("%w: %s: %v", ErrStepFailed, result.FailedStep, stepErr)
}
