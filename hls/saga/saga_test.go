package saga

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"github.com/extendedtx/activityservice/internal/core"
)

// ledger records forward and compensation executions in order.
type ledger struct {
	mu      sync.Mutex
	entries []string
}

func (l *ledger) add(s string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, s)
}

func (l *ledger) Entries() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.entries...)
}

func step(l *ledger, name string, fail bool) Step {
	return Step{
		Name: name,
		Run: func(context.Context) error {
			if fail {
				return errors.New(name + " exploded")
			}
			l.add("run:" + name)
			return nil
		},
		Compensate: func(context.Context) error {
			l.add("undo:" + name)
			return nil
		},
	}
}

func TestSagaCommitsAllSteps(t *testing.T) {
	svc := core.New()
	l := &ledger{}
	s := New(svc, "booking",
		step(l, "taxi", false),
		step(l, "restaurant", false),
		step(l, "theatre", false),
	)
	res, err := s.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || res.FailedStep != "" || len(res.Compensated) != 0 {
		t.Fatalf("result = %+v", res)
	}
	want := []string{"run:taxi", "run:restaurant", "run:theatre"}
	got := l.Entries()
	if len(got) != len(want) {
		t.Fatalf("entries = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entries = %v", got)
		}
	}
	if svc.Live() != 0 {
		t.Fatalf("live activities = %d", svc.Live())
	}
}

func TestSagaCompensatesInReverse(t *testing.T) {
	svc := core.New()
	l := &ledger{}
	s := New(svc, "booking",
		step(l, "taxi", false),
		step(l, "restaurant", false),
		step(l, "theatre", false),
		step(l, "hotel", true), // T4 fails, as in fig. 2
	)
	res, err := s.Execute(context.Background())
	if !errors.Is(err, ErrStepFailed) {
		t.Fatalf("err = %v", err)
	}
	if res.Committed || res.FailedStep != "hotel" {
		t.Fatalf("result = %+v", res)
	}
	want := []string{
		"run:taxi", "run:restaurant", "run:theatre",
		"undo:theatre", "undo:restaurant", "undo:taxi",
	}
	got := l.Entries()
	if len(got) != len(want) {
		t.Fatalf("entries = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entries = %v, want %v", got, want)
		}
	}
	if len(res.Compensated) != 3 || res.Compensated[0] != "theatre" {
		t.Fatalf("compensated = %v", res.Compensated)
	}
}

func TestFirstStepFailureNeedsNoCompensation(t *testing.T) {
	svc := core.New()
	l := &ledger{}
	s := New(svc, "booking", step(l, "taxi", true), step(l, "hotel", false))
	res, err := s.Execute(context.Background())
	if !errors.Is(err, ErrStepFailed) {
		t.Fatalf("err = %v", err)
	}
	if len(res.Compensated) != 0 || len(l.Entries()) != 0 {
		t.Fatalf("result = %+v entries = %v", res, l.Entries())
	}
}

func TestNilCompensationIsNoop(t *testing.T) {
	svc := core.New()
	l := &ledger{}
	steps := []Step{
		{Name: "log", Run: func(context.Context) error { l.add("run:log"); return nil }},
		step(l, "work", false),
		step(l, "boom", true),
	}
	s := New(svc, "mixed", steps...)
	res, err := s.Execute(context.Background())
	if !errors.Is(err, ErrStepFailed) {
		t.Fatalf("err = %v", err)
	}
	// Only "work" had a compensation to run.
	if len(res.Compensated) != 1 || res.Compensated[0] != "work" {
		t.Fatalf("compensated = %v", res.Compensated)
	}
}

func TestEmptySagaCommits(t *testing.T) {
	svc := core.New()
	res, err := New(svc, "empty").Execute(context.Background())
	if err != nil || !res.Committed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestStepsRunInsideChildActivities(t *testing.T) {
	svc := core.New()
	var names []string
	var mu sync.Mutex
	s := New(svc, "parented", Step{
		Name: "probe",
		Run: func(ctx context.Context) error {
			a, ok := core.FromContext(ctx)
			if !ok {
				t.Error("no activity in step context")
				return nil
			}
			mu.Lock()
			names = append(names, a.Name(), a.Parent().Name())
			mu.Unlock()
			return nil
		},
	})
	if _, err := s.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "probe" || names[1] != "parented" {
		t.Fatalf("names = %v", names)
	}
}

func TestCompensationFailureReported(t *testing.T) {
	svc := core.New()
	l := &ledger{}
	bad := Step{
		Name: "fragile",
		Run:  func(context.Context) error { l.add("run:fragile"); return nil },
		Compensate: func(context.Context) error {
			return errors.New("undo broken")
		},
	}
	s := New(svc, "heuristic", bad, step(l, "boom", true))
	res, err := s.Execute(context.Background())
	if !errors.Is(err, ErrStepFailed) {
		t.Fatalf("err = %v", err)
	}
	// The failed compensation is not reported as compensated.
	for _, c := range res.Compensated {
		if c == "fragile" {
			t.Fatal("failed compensation reported as done")
		}
	}
}

// TestParallelSagaCommitsAllSteps runs the happy path with a concurrent
// forward stage.
func TestParallelSagaCommitsAllSteps(t *testing.T) {
	svc := core.New()
	l := &ledger{}
	s := New(svc, "booking",
		step(l, "taxi", false),
		step(l, "restaurant", false),
		step(l, "theatre", false),
	).Parallel(0)
	res, err := s.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || res.FailedStep != "" || len(res.Compensated) != 0 {
		t.Fatalf("result = %+v", res)
	}
	if got := len(l.Entries()); got != 3 {
		t.Fatalf("entries = %v", l.Entries())
	}
	if svc.Live() != 0 {
		t.Fatalf("live activities = %d", svc.Live())
	}
}

// TestParallelSagaDeterministicCompensationOrder verifies compensation
// runs in reverse *declared* order, never completion order, when the
// forward stage is parallel: the forward entries may interleave, but the
// undo suffix is fixed.
func TestParallelSagaDeterministicCompensationOrder(t *testing.T) {
	for round := 0; round < 10; round++ {
		svc := core.New()
		l := &ledger{}
		s := New(svc, "booking",
			step(l, "taxi", false),
			step(l, "restaurant", false),
			step(l, "theatre", false),
			step(l, "hotel", true), // last step fails
		).Parallel(0)
		res, err := s.Execute(context.Background())
		if !errors.Is(err, ErrStepFailed) {
			t.Fatalf("err = %v", err)
		}
		if res.Committed || res.FailedStep != "hotel" {
			t.Fatalf("result = %+v", res)
		}
		got := l.Entries()
		if len(got) != 6 {
			t.Fatalf("entries = %v", got)
		}
		// The last three entries are the compensations, in reverse declared
		// order, regardless of forward interleaving.
		undo := got[3:]
		want := []string{"undo:theatre", "undo:restaurant", "undo:taxi"}
		for i := range want {
			if undo[i] != want[i] {
				t.Fatalf("undo order = %v, want %v", undo, want)
			}
		}
		if len(res.Compensated) != 3 ||
			res.Compensated[0] != "theatre" ||
			res.Compensated[1] != "restaurant" ||
			res.Compensated[2] != "taxi" {
			t.Fatalf("compensated = %v", res.Compensated)
		}
	}
}

// TestDifferentialSerialVsParallelSaga is the differential property test:
// for random saga shapes (failure only at the last position, where serial
// and parallel semantics coincide), both modes produce identical Results
// and identical compensation order.
func TestDifferentialSerialVsParallelSaga(t *testing.T) {
	f := func(nSteps, compMask uint8, failLast bool) bool {
		n := int(nSteps%6) + 1
		build := func() []Step {
			var steps []Step
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("s%d", i)
				fail := failLast && i == n-1
				st := Step{
					Name: name,
					Run: func(context.Context) error {
						if fail {
							return errors.New(name + " failed")
						}
						return nil
					},
				}
				if compMask&(1<<uint(i)) != 0 {
					st.Compensate = func(context.Context) error { return nil }
				}
				steps = append(steps, st)
			}
			return steps
		}
		serial, serr := New(core.New(), "diff", build()...).Execute(context.Background())
		parallel, perr := New(core.New(), "diff", build()...).Parallel(0).Execute(context.Background())
		if (serr == nil) != (perr == nil) {
			t.Logf("error mismatch: serial=%v parallel=%v", serr, perr)
			return false
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Logf("result mismatch:\nserial:   %+v\nparallel: %+v", serial, parallel)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelSagaMidFailureCompensatesAllSuccessful pins the documented
// semantic difference: a mid-sequence failure still compensates every
// successful step (all steps ran), in reverse declared order.
func TestParallelSagaMidFailureCompensatesAllSuccessful(t *testing.T) {
	svc := core.New()
	l := &ledger{}
	s := New(svc, "booking",
		step(l, "taxi", false),
		step(l, "hotel", true), // fails mid-sequence
		step(l, "theatre", false),
	).Parallel(2)
	res, err := s.Execute(context.Background())
	if !errors.Is(err, ErrStepFailed) {
		t.Fatalf("err = %v", err)
	}
	if res.FailedStep != "hotel" {
		t.Fatalf("failed step = %q", res.FailedStep)
	}
	// Unlike the serial saga, theatre ran and must be undone too.
	if len(res.Compensated) != 2 ||
		res.Compensated[0] != "theatre" || res.Compensated[1] != "taxi" {
		t.Fatalf("compensated = %v", res.Compensated)
	}
}
