// Package caaction implements the Coordinated Atomic action model of Xu,
// Romanovsky & Randell (reference [13] of the paper) on the Activity
// Service: a set of roles executes concurrently inside one action; if any
// roles raise exceptions, the exceptions are resolved into a single
// covering exception which is then delivered to every role's handler —
// the "exception resolution" coordination the paper names when motivating
// configurable SignalSets ("a coordinator for a CA action model may be
// required to send a Signal informing participants to perform exception
// resolution").
package caaction

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/extendedtx/activityservice/internal/core"
)

// Protocol names.
const (
	// SetName is the exception-resolution SignalSet.
	SetName = "ca-exception-resolution"
	// SignalResolve delivers the resolved exception to every handler.
	SignalResolve = "resolve"
)

// CA action errors.
var (
	// ErrUnhandled reports that at least one role's handler could not
	// recover from the resolved exception; the CA action then fails (and a
	// real deployment would escalate to the enclosing action).
	ErrUnhandled = errors.New("caaction: exception not handled by all roles")
)

// Role is one concurrent participant: Run performs the role's work
// (returning an error raises an exception), and Handle recovers from the
// resolved exception when any role raised one. A nil Handle accepts any
// resolution.
type Role struct {
	Name   string
	Run    func(ctx context.Context) error
	Handle func(ctx context.Context, resolved string) error
}

// Resolver merges concurrently raised exceptions into a single covering
// exception (the resolution tree of [13] collapsed to a function).
type Resolver func(raised map[string]string) string

// DefaultResolver concatenates the raised exceptions sorted by role name,
// a deterministic stand-in for an application resolution graph.
func DefaultResolver(raised map[string]string) string {
	names := make([]string, 0, len(raised))
	for role := range raised {
		names = append(names, role)
	}
	sort.Strings(names)
	out := ""
	for _, role := range names {
		if out != "" {
			out += "+"
		}
		out += raised[role]
	}
	return out
}

// Result reports one CA action execution.
type Result struct {
	// Ok means no exceptions were raised, or every handler recovered.
	Ok bool
	// Raised maps role name to raised exception message.
	Raised map[string]string
	// Resolved is the covering exception delivered to handlers.
	Resolved string
	// Handled lists roles whose handlers recovered.
	Handled []string
}

// Action is a coordinated atomic action.
type Action struct {
	svc     *core.Service
	name    string
	roles   []Role
	resolve Resolver
}

// New returns a CA action with the given roles.
func New(svc *core.Service, name string, roles ...Role) *Action {
	return &Action{svc: svc, name: name, roles: roles, resolve: DefaultResolver}
}

// WithResolver replaces the exception resolver.
func (a *Action) WithResolver(r Resolver) *Action {
	a.resolve = r
	return a
}

// resolutionSet broadcasts the resolved exception once.
type resolutionSet struct {
	core.BaseSet

	mu       sync.Mutex
	resolved string
	emitted  bool
	failed   int
}

var _ core.SignalSet = (*resolutionSet)(nil)

func newResolutionSet(resolved string) *resolutionSet {
	return &resolutionSet{BaseSet: core.NewBaseSet(SetName), resolved: resolved}
}

func (s *resolutionSet) GetSignal() (core.Signal, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.emitted {
		return core.Signal{}, false, core.ErrExhausted
	}
	s.emitted = true
	return core.Signal{Name: SignalResolve, SetName: SetName, Data: s.resolved}, true, nil
}

func (s *resolutionSet) SetResponse(resp core.Outcome, deliveryErr error) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if deliveryErr != nil || resp.Name != "handled" {
		s.failed++
	}
	return false, nil
}

func (s *resolutionSet) GetOutcome() (core.Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed > 0 {
		return core.Outcome{Name: "unhandled", Data: int64(s.failed)}, nil
	}
	return core.Outcome{Name: "recovered"}, nil
}

// handlerAction adapts one role's Handle to the Action protocol.
type handlerAction struct {
	role Role

	mu      sync.Mutex
	handled bool
}

func (h *handlerAction) ProcessSignal(ctx context.Context, sig core.Signal) (core.Outcome, error) {
	if sig.Name != SignalResolve {
		return core.Outcome{}, fmt.Errorf("caaction: handler got %q", sig.Name)
	}
	resolved, _ := sig.Data.(string)
	if h.role.Handle != nil {
		if err := h.role.Handle(ctx, resolved); err != nil {
			return core.Outcome{Name: "failed", Data: err.Error()}, nil
		}
	}
	h.mu.Lock()
	h.handled = true
	h.mu.Unlock()
	return core.Outcome{Name: "handled"}, nil
}

// Execute runs all roles concurrently inside a CA-action activity. When
// exceptions are raised, they are resolved and the resolution is
// broadcast to every role's handler through the exception-resolution
// SignalSet; the action succeeds only if every handler recovers.
func (a *Action) Execute(ctx context.Context) (Result, error) {
	result := Result{Raised: make(map[string]string)}
	act := a.svc.Begin(a.name)
	actx := core.NewContext(ctx, act)

	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for _, role := range a.roles {
		role := role
		child, err := act.BeginChild(role.Name)
		if err != nil {
			return result, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := role.Run(core.NewContext(actx, child))
			cs := core.CompletionSuccess
			if err != nil {
				cs = core.CompletionFail
				mu.Lock()
				result.Raised[role.Name] = err.Error()
				mu.Unlock()
				a.svc.Trace().Notef(role.Name, "raised %v", err)
			}
			_, _ = child.CompleteWithStatus(ctx, cs)
		}()
	}
	wg.Wait()

	if len(result.Raised) == 0 {
		result.Ok = true
		if _, err := act.CompleteWithStatus(ctx, core.CompletionSuccess); err != nil {
			return result, err
		}
		return result, nil
	}

	// Concurrent exception resolution.
	result.Resolved = a.resolve(result.Raised)
	a.svc.Trace().Notef(a.name, "resolved exceptions to %q", result.Resolved)
	set := newResolutionSet(result.Resolved)
	if err := act.RegisterSignalSet(set); err != nil {
		return result, err
	}
	handlers := make([]*handlerAction, 0, len(a.roles))
	for _, role := range a.roles {
		h := &handlerAction{role: role}
		handlers = append(handlers, h)
		if _, err := act.AddNamedAction(SetName, role.Name, h); err != nil {
			return result, err
		}
	}
	out, err := act.Signal(ctx, SetName)
	if err != nil {
		return result, err
	}
	for _, h := range handlers {
		h.mu.Lock()
		if h.handled {
			result.Handled = append(result.Handled, h.role.Name)
		}
		h.mu.Unlock()
	}
	if out.Name != "recovered" {
		_, _ = act.CompleteWithStatus(ctx, core.CompletionFailOnly)
		return result, fmt.Errorf("%w: resolved %q", ErrUnhandled, result.Resolved)
	}
	result.Ok = true
	if _, err := act.CompleteWithStatus(ctx, core.CompletionSuccess); err != nil {
		return result, err
	}
	return result, nil
}
