package caaction

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"github.com/extendedtx/activityservice/internal/core"
)

func TestAllRolesSucceed(t *testing.T) {
	svc := core.New()
	var ran atomic.Int32
	roles := []Role{
		{Name: "r1", Run: func(context.Context) error { ran.Add(1); return nil }},
		{Name: "r2", Run: func(context.Context) error { ran.Add(1); return nil }},
		{Name: "r3", Run: func(context.Context) error { ran.Add(1); return nil }},
	}
	res, err := New(svc, "ca", roles...).Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok || len(res.Raised) != 0 || res.Resolved != "" {
		t.Fatalf("result = %+v", res)
	}
	if ran.Load() != 3 {
		t.Fatalf("ran = %d", ran.Load())
	}
	if svc.Live() != 0 {
		t.Fatalf("live = %d", svc.Live())
	}
}

func TestSingleExceptionResolvedAndHandled(t *testing.T) {
	svc := core.New()
	var seen [2]string
	roles := []Role{
		{
			Name: "worker",
			Run:  func(context.Context) error { return errors.New("disk-full") },
			Handle: func(_ context.Context, resolved string) error {
				seen[0] = resolved
				return nil
			},
		},
		{
			Name: "observer",
			Run:  func(context.Context) error { return nil },
			Handle: func(_ context.Context, resolved string) error {
				seen[1] = resolved
				return nil
			},
		},
	}
	res, err := New(svc, "ca", roles...).Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok || res.Resolved != "disk-full" {
		t.Fatalf("result = %+v", res)
	}
	// Every role — including ones that did not raise — handles the
	// resolved exception.
	if seen[0] != "disk-full" || seen[1] != "disk-full" {
		t.Fatalf("seen = %v", seen)
	}
	if len(res.Handled) != 2 {
		t.Fatalf("handled = %v", res.Handled)
	}
}

func TestConcurrentExceptionsResolved(t *testing.T) {
	svc := core.New()
	roles := []Role{
		{Name: "a", Run: func(context.Context) error { return errors.New("E1") },
			Handle: func(context.Context, string) error { return nil }},
		{Name: "b", Run: func(context.Context) error { return errors.New("E2") },
			Handle: func(context.Context, string) error { return nil }},
	}
	res, err := New(svc, "ca", roles...).Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic resolution: sorted by role name.
	if res.Resolved != "E1+E2" {
		t.Fatalf("resolved = %q", res.Resolved)
	}
	if len(res.Raised) != 2 {
		t.Fatalf("raised = %v", res.Raised)
	}
}

func TestCustomResolver(t *testing.T) {
	svc := core.New()
	roles := []Role{
		{Name: "a", Run: func(context.Context) error { return errors.New("minor") },
			Handle: func(context.Context, string) error { return nil }},
		{Name: "b", Run: func(context.Context) error { return errors.New("CRITICAL") },
			Handle: func(context.Context, string) error { return nil }},
	}
	res, err := New(svc, "ca", roles...).
		WithResolver(func(raised map[string]string) string {
			for _, e := range raised {
				if e == "CRITICAL" {
					return "CRITICAL"
				}
			}
			return "minor"
		}).
		Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolved != "CRITICAL" {
		t.Fatalf("resolved = %q", res.Resolved)
	}
}

func TestUnhandledExceptionFailsAction(t *testing.T) {
	svc := core.New()
	roles := []Role{
		{Name: "fragile",
			Run:    func(context.Context) error { return errors.New("boom") },
			Handle: func(context.Context, string) error { return errors.New("cannot recover") }},
		{Name: "fine",
			Run:    func(context.Context) error { return nil },
			Handle: func(context.Context, string) error { return nil }},
	}
	res, err := New(svc, "ca", roles...).Execute(context.Background())
	if !errors.Is(err, ErrUnhandled) {
		t.Fatalf("err = %v", err)
	}
	if res.Ok {
		t.Fatal("result ok despite unhandled exception")
	}
	// The recovering role is still listed as handled.
	if len(res.Handled) != 1 || res.Handled[0] != "fine" {
		t.Fatalf("handled = %v", res.Handled)
	}
}

func TestNilHandlerAcceptsResolution(t *testing.T) {
	svc := core.New()
	roles := []Role{
		{Name: "raiser", Run: func(context.Context) error { return errors.New("x") }},
		{Name: "silent", Run: func(context.Context) error { return nil }},
	}
	res, err := New(svc, "ca", roles...).Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok {
		t.Fatalf("result = %+v", res)
	}
}

func TestRolesRunConcurrently(t *testing.T) {
	svc := core.New()
	gate := make(chan struct{})
	roles := []Role{
		{Name: "a", Run: func(context.Context) error { <-gate; return nil }},
		{Name: "b", Run: func(context.Context) error { close(gate); return nil }},
	}
	// If roles ran sequentially, role a would deadlock waiting for b.
	res, err := New(svc, "ca", roles...).Execute(context.Background())
	if err != nil || !res.Ok {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}
