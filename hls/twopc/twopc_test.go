package twopc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/extendedtx/activityservice/internal/core"
	"github.com/extendedtx/activityservice/internal/ots"
	"github.com/extendedtx/activityservice/internal/trace"
)

// scriptedResource is a 2PC participant with scriptable votes and a call
// log.
type scriptedResource struct {
	mu    sync.Mutex
	vote  ots.Vote
	calls []string
}

func newResource(vote ots.Vote) *scriptedResource {
	return &scriptedResource{vote: vote}
}

func (r *scriptedResource) log(s string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls = append(r.calls, s)
}

func (r *scriptedResource) Calls() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.calls...)
}

func (r *scriptedResource) Prepare() (ots.Vote, error) {
	r.log("prepare")
	return r.vote, nil
}

func (r *scriptedResource) Commit() error         { r.log("commit"); return nil }
func (r *scriptedResource) Rollback() error       { r.log("rollback"); return nil }
func (r *scriptedResource) CommitOnePhase() error { r.log("commit_one_phase"); return nil }
func (r *scriptedResource) Forget() error         { r.log("forget"); return nil }

func TestCommitHappyPath(t *testing.T) {
	svc := core.New()
	coord := NewCoordinator(svc)
	tx, err := coord.Begin("T")
	if err != nil {
		t.Fatal(err)
	}
	a, b := newResource(ots.VoteCommit), newResource(ots.VoteCommit)
	if err := tx.Enlist(a); err != nil {
		t.Fatal(err)
	}
	if err := tx.Enlist(b); err != nil {
		t.Fatal(err)
	}
	committed, err := tx.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !committed {
		t.Fatal("transaction did not commit")
	}
	for _, r := range []*scriptedResource{a, b} {
		calls := r.Calls()
		if len(calls) != 2 || calls[0] != "prepare" || calls[1] != "commit" {
			t.Fatalf("calls = %v", calls)
		}
	}
}

func TestVetoRollsEveryoneBack(t *testing.T) {
	svc := core.New()
	coord := NewCoordinator(svc)
	tx, _ := coord.Begin("T")
	good := newResource(ots.VoteCommit)
	veto := newResource(ots.VoteRollback)
	late := newResource(ots.VoteCommit)
	_ = tx.Enlist(good)
	_ = tx.Enlist(veto)
	_ = tx.Enlist(late)

	committed, err := tx.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("committed despite veto")
	}
	// good prepared, then rolled back.
	gc := good.Calls()
	if len(gc) != 2 || gc[0] != "prepare" || gc[1] != "rollback" {
		t.Fatalf("good calls = %v", gc)
	}
	// late was never asked to prepare (abort cut the broadcast) but still
	// hears the rollback, matching the OTS treatment of not-yet-asked
	// participants.
	lc := late.Calls()
	if len(lc) != 1 || lc[0] != "rollback" {
		t.Fatalf("late calls = %v", lc)
	}
	// the vetoing resource rolled itself back at prepare: no second call.
	vc := veto.Calls()
	if len(vc) != 1 || vc[0] != "prepare" {
		t.Fatalf("veto calls = %v", vc)
	}
}

func TestReadOnlyParticipant(t *testing.T) {
	svc := core.New()
	coord := NewCoordinator(svc)
	tx, _ := coord.Begin("T")
	ro := newResource(ots.VoteReadOnly)
	rw := newResource(ots.VoteCommit)
	_ = tx.Enlist(ro)
	_ = tx.Enlist(rw)
	committed, err := tx.Commit(context.Background())
	if err != nil || !committed {
		t.Fatalf("committed=%v err=%v", committed, err)
	}
	// The read-only participant sees commit but performs nothing.
	rc := ro.Calls()
	if len(rc) != 1 || rc[0] != "prepare" {
		t.Fatalf("read-only calls = %v", rc)
	}
}

func TestExplicitRollback(t *testing.T) {
	svc := core.New()
	coord := NewCoordinator(svc)
	tx, _ := coord.Begin("T")
	r := newResource(ots.VoteCommit)
	_ = tx.Enlist(r)
	if err := tx.Rollback(context.Background()); err != nil {
		t.Fatal(err)
	}
	calls := r.Calls()
	if len(calls) != 1 || calls[0] != "rollback" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestVarsCommitThroughActivity2PC(t *testing.T) {
	// End to end with real transactional variables: note the Vars join the
	// *activity* protocol directly as resources, without an ots
	// transaction — the activity coordinator IS the transaction manager
	// here, which is the point of §4.1.
	svc := core.New()
	coord := NewCoordinator(svc)
	tx, _ := coord.Begin("transfer")
	from := &balanceResource{balance: 100}
	to := &balanceResource{balance: 10}
	from.pending = -25
	to.pending = 25
	_ = tx.Enlist(from)
	_ = tx.Enlist(to)
	committed, err := tx.Commit(context.Background())
	if err != nil || !committed {
		t.Fatalf("committed=%v err=%v", committed, err)
	}
	if from.balance != 75 || to.balance != 35 {
		t.Fatalf("balances = %d, %d", from.balance, to.balance)
	}
}

// balanceResource applies a pending delta on commit.
type balanceResource struct {
	mu      sync.Mutex
	balance int
	pending int
}

func (b *balanceResource) Prepare() (ots.Vote, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.balance+b.pending < 0 {
		return ots.VoteRollback, nil
	}
	return ots.VoteCommit, nil
}

func (b *balanceResource) Commit() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.balance += b.pending
	b.pending = 0
	return nil
}

func (b *balanceResource) Rollback() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pending = 0
	return nil
}

func (b *balanceResource) CommitOnePhase() error { return b.Commit() }
func (b *balanceResource) Forget() error         { return nil }

func TestInsufficientFundsAborts(t *testing.T) {
	svc := core.New()
	coord := NewCoordinator(svc)
	tx, _ := coord.Begin("overdraft")
	from := &balanceResource{balance: 10, pending: -25}
	to := &balanceResource{balance: 0, pending: 25}
	_ = tx.Enlist(from)
	_ = tx.Enlist(to)
	committed, err := tx.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("overdraft committed")
	}
	if from.balance != 10 || to.balance != 0 {
		t.Fatalf("balances mutated: %d, %d", from.balance, to.balance)
	}
}

// TestFig8MessageSequence verifies the full fig. 8 exchange through the
// public API, with the exact arrows of the paper's sequence chart.
func TestFig8MessageSequence(t *testing.T) {
	rec := trace.New()
	svc := core.New(core.WithTrace(rec))
	coord := NewCoordinator(svc)
	tx, _ := coord.Begin("coordinator")
	_ = tx.EnlistNamed("action1", newResource(ots.VoteCommit))
	_ = tx.EnlistNamed("action2", newResource(ots.VoteCommit))
	committed, err := tx.Commit(context.Background())
	if err != nil || !committed {
		t.Fatalf("committed=%v err=%v", committed, err)
	}
	want := []string{
		"begin:coordinator",
		"get_signal:coordinator->2pc:prepare",
		"transmit:coordinator->action1:prepare",
		"set_response:action1->2pc:done",
		"transmit:coordinator->action2:prepare",
		"set_response:action2->2pc:done",
		"get_signal:coordinator->2pc:commit",
		"transmit:coordinator->action1:commit",
		"set_response:action1->2pc:done",
		"transmit:coordinator->action2:commit",
		"set_response:action2->2pc:done",
		"get_outcome:coordinator->2pc:committed",
		"complete:coordinator:committed",
	}
	got := rec.Sequence()
	if len(got) != len(want) {
		t.Fatalf("trace:\n%v\nwant:\n%v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestManyParticipantsScale(t *testing.T) {
	svc := core.New()
	coord := NewCoordinator(svc)
	for _, n := range []int{1, 8, 64} {
		tx, _ := coord.Begin(fmt.Sprintf("T%d", n))
		resources := make([]*scriptedResource, n)
		for i := range resources {
			resources[i] = newResource(ots.VoteCommit)
			_ = tx.Enlist(resources[i])
		}
		committed, err := tx.Commit(context.Background())
		if err != nil || !committed {
			t.Fatalf("n=%d: committed=%v err=%v", n, committed, err)
		}
		for i, r := range resources {
			if calls := r.Calls(); len(calls) != 2 {
				t.Fatalf("n=%d participant %d calls = %v", n, i, calls)
			}
		}
	}
}

func TestPrepareErrorTreatedAsVeto(t *testing.T) {
	svc := core.New()
	coord := NewCoordinator(svc)
	tx, _ := coord.Begin("T")
	bad := &failingResource{}
	good := newResource(ots.VoteCommit)
	_ = tx.Enlist(good)
	_ = tx.Enlist(bad)
	committed, err := tx.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("committed despite prepare error")
	}
	gc := good.Calls()
	if len(gc) != 2 || gc[1] != "rollback" {
		t.Fatalf("good calls = %v", gc)
	}
}

type failingResource struct{}

func (f *failingResource) Prepare() (ots.Vote, error) {
	return 0, errors.New("prepare exploded")
}
func (f *failingResource) Commit() error         { return nil }
func (f *failingResource) Rollback() error       { return nil }
func (f *failingResource) CommitOnePhase() error { return nil }
func (f *failingResource) Forget() error         { return nil }

// TestParallelPrepareCommits drives 2PC with parallel delivery: every
// participant votes concurrently, the outcome and each participant's call
// sequence are identical to serial delivery.
func TestParallelPrepareCommits(t *testing.T) {
	svc := core.New()
	coord := NewCoordinator(svc, WithDelivery(core.Parallel()))
	tx, err := coord.Begin("T")
	if err != nil {
		t.Fatal(err)
	}
	var rs []*scriptedResource
	for i := 0; i < 16; i++ {
		r := newResource(ots.VoteCommit)
		rs = append(rs, r)
		if err := tx.Enlist(r); err != nil {
			t.Fatal(err)
		}
	}
	committed, err := tx.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !committed {
		t.Fatal("transaction did not commit")
	}
	for i, r := range rs {
		calls := r.Calls()
		if len(calls) != 2 || calls[0] != "prepare" || calls[1] != "commit" {
			t.Fatalf("participant %d calls = %v", i, calls)
		}
	}
}

// TestParallelVetoRollsBack verifies the collated outcome of a vetoed
// parallel 2PC matches serial: rolled back, with every prepared
// participant released. (Parallel prepare is speculative, so unlike the
// serial short-circuit, participants enlisted after the vetoer may also
// have been asked to prepare — but all of them hear the rollback.)
func TestParallelVetoRollsBack(t *testing.T) {
	svc := core.New()
	coord := NewCoordinator(svc, WithDelivery(core.Parallel()))
	tx, err := coord.Begin("T")
	if err != nil {
		t.Fatal(err)
	}
	good := newResource(ots.VoteCommit)
	veto := newResource(ots.VoteRollback)
	late := newResource(ots.VoteCommit)
	for _, r := range []*scriptedResource{good, veto, late} {
		if err := tx.Enlist(r); err != nil {
			t.Fatal(err)
		}
	}
	committed, err := tx.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("committed despite veto")
	}
	gc := good.Calls()
	if len(gc) != 2 || gc[0] != "prepare" || gc[1] != "rollback" {
		t.Fatalf("good calls = %v", gc)
	}
	// The vetoing resource rolled itself back at prepare: no second call.
	vc := veto.Calls()
	if len(vc) != 1 || vc[0] != "prepare" {
		t.Fatalf("veto calls = %v", vc)
	}
	// late hears the rollback last, whether or not its speculative prepare
	// landed first.
	lc := late.Calls()
	if len(lc) == 0 || lc[len(lc)-1] != "rollback" {
		t.Fatalf("late calls = %v", lc)
	}
}
