// Package twopc maps the classic two-phase commit protocol onto the
// Activity Service, reproducing §4.1 and fig. 8 of the paper: a
// 2PCSignalSet generates "prepare" then "commit" (or "rollback") signals,
// and ResourceActions adapt transaction-service resources to the Action
// interface.
//
// This is the paper's demonstration that even the most classical
// transaction protocol is expressible in the generic framework; the
// BenchmarkAblationRawOTSvsActivity2PC bench quantifies the framework's
// overhead against the hand-coded protocol in internal/ots.
package twopc

import (
	"context"
	"fmt"
	"sync"

	"github.com/extendedtx/activityservice/internal/core"
	"github.com/extendedtx/activityservice/internal/ots"
)

// Signal and outcome names used by the protocol.
const (
	// SetName is the 2PC signal set name.
	SetName = "2pc"
	// SignalPrepare asks participants to vote.
	SignalPrepare = "prepare"
	// SignalCommit makes prepared work durable.
	SignalCommit = "commit"
	// SignalRollback undoes the work.
	SignalRollback = "rollback"

	// OutcomeDone acknowledges a phase-two signal (fig. 8's "done").
	OutcomeDone = "done"
	// OutcomeReadOnly reports no undoable work at prepare.
	OutcomeReadOnly = "read-only"
	// OutcomeAbort vetoes at prepare.
	OutcomeAbort = "abort"

	// ResultCommitted is the collated outcome of a committed protocol.
	ResultCommitted = "committed"
	// ResultRolledBack is the collated outcome of a rolled-back protocol.
	ResultRolledBack = "rolled-back"
)

// phase tracks the signal set's progress.
type phase int

const (
	phaseVoting phase = iota
	phaseCompleting
	phaseDone
)

// SignalSet is the 2PCSignalSet of fig. 8: first signal "prepare"; when
// every response is "done" or "read-only" the next signal is "commit",
// otherwise "rollback". An activity completing in a failure status skips
// the vote and rolls straight back.
type SignalSet struct {
	core.BaseSet

	mu     sync.Mutex
	ph     phase
	doomed bool
}

var _ core.SignalSet = (*SignalSet)(nil)

// NewSignalSet returns a fresh 2PC signal set (they are single-use, per
// fig. 7).
func NewSignalSet() *SignalSet {
	return &SignalSet{BaseSet: core.NewBaseSet(SetName)}
}

// GetSignal implements core.SignalSet.
func (s *SignalSet) GetSignal() (core.Signal, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.ph {
	case phaseVoting:
		if s.CompletionStatus() != core.CompletionSuccess {
			// The activity is failing: no vote, straight to rollback.
			s.doomed = true
			s.ph = phaseDone
			return core.Signal{Name: SignalRollback, SetName: SetName}, true, nil
		}
		s.ph = phaseCompleting
		return core.Signal{Name: SignalPrepare, SetName: SetName}, false, nil
	case phaseCompleting:
		s.ph = phaseDone
		name := SignalCommit
		if s.doomed {
			name = SignalRollback
		}
		return core.Signal{Name: name, SetName: SetName}, true, nil
	default:
		return core.Signal{}, false, core.ErrExhausted
	}
}

// SetResponse implements core.SignalSet. An "abort" vote (or a delivery
// failure during voting) dooms the transaction and cuts the prepare
// broadcast short.
func (s *SignalSet) SetResponse(resp core.Outcome, deliveryErr error) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ph == phaseCompleting { // responses to "prepare"
		if deliveryErr != nil || resp.Name == OutcomeAbort {
			s.doomed = true
			return true, nil // advance straight to the rollback signal
		}
	}
	return false, nil
}

// GetOutcome implements core.SignalSet.
func (s *SignalSet) GetOutcome() (core.Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.doomed {
		return core.Outcome{Name: ResultRolledBack}, nil
	}
	return core.Outcome{Name: ResultCommitted}, nil
}

// ResourceAction adapts an ots.Resource to the Action protocol, letting
// any transaction-service participant join an activity-coordinated 2PC.
type ResourceAction struct {
	mu       sync.Mutex
	resource ots.Resource
	voted    ots.Vote
}

var _ core.Action = (*ResourceAction)(nil)

// NewResourceAction wraps r.
func NewResourceAction(r ots.Resource) *ResourceAction {
	return &ResourceAction{resource: r}
}

// ProcessSignal implements core.Action.
func (a *ResourceAction) ProcessSignal(_ context.Context, sig core.Signal) (core.Outcome, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch sig.Name {
	case SignalPrepare:
		vote, err := a.resource.Prepare()
		if err != nil {
			vote = ots.VoteRollback
		}
		a.voted = vote
		switch vote {
		case ots.VoteReadOnly:
			return core.Outcome{Name: OutcomeReadOnly}, nil
		case ots.VoteCommit:
			return core.Outcome{Name: OutcomeDone}, nil
		default:
			// A vetoing resource has already rolled itself back.
			return core.Outcome{Name: OutcomeAbort}, nil
		}
	case SignalCommit:
		if a.voted != ots.VoteCommit {
			return core.Outcome{Name: OutcomeDone}, nil // read-only: no phase two
		}
		if err := a.resource.Commit(); err != nil {
			return core.Outcome{}, fmt.Errorf("twopc: commit: %w", err)
		}
		return core.Outcome{Name: OutcomeDone}, nil
	case SignalRollback:
		if a.voted == ots.VoteRollback || a.voted == ots.VoteReadOnly {
			return core.Outcome{Name: OutcomeDone}, nil // nothing to undo
		}
		if err := a.resource.Rollback(); err != nil {
			return core.Outcome{}, fmt.Errorf("twopc: rollback: %w", err)
		}
		return core.Outcome{Name: OutcomeDone}, nil
	default:
		return core.Outcome{}, fmt.Errorf("twopc: unexpected signal %q", sig.Name)
	}
}

// Coordinator runs activity-coordinated two-phase commits.
type Coordinator struct {
	svc      *core.Service
	delivery core.DeliveryPolicy
}

// CoordinatorOption configures a Coordinator.
type CoordinatorOption func(*Coordinator)

// WithDelivery sets the delivery policy for every transaction's signal
// set. With core.Parallel(), the prepare broadcast (and the phase-two
// signal) goes to all participants concurrently while votes are still
// collated in enlistment order, so the protocol outcome is identical to
// serial delivery. Parallel delivery is speculative: participants enlisted
// after an aborting voter may still be asked to prepare (the subsequent
// rollback broadcast releases them), whereas serial delivery cuts the
// prepare broadcast short — use the default serial policy when that
// distinction matters.
func WithDelivery(p core.DeliveryPolicy) CoordinatorOption {
	return func(c *Coordinator) { c.delivery = p }
}

// NewCoordinator returns a Coordinator over svc.
func NewCoordinator(svc *core.Service, opts ...CoordinatorOption) *Coordinator {
	c := &Coordinator{svc: svc}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Transaction is one activity-coordinated transaction.
type Transaction struct {
	activity *core.Activity
	set      *SignalSet
}

// Begin starts a transaction as an activity whose completion runs 2PC.
func (c *Coordinator) Begin(name string) (*Transaction, error) {
	a := c.svc.Begin(name)
	set := NewSignalSet()
	if c.delivery.Mode != 0 {
		set.SetDelivery(c.delivery)
	}
	if err := a.RegisterSignalSet(set); err != nil {
		return nil, err
	}
	a.SetCompletionSet(SetName)
	return &Transaction{activity: a, set: set}, nil
}

// Activity exposes the backing activity.
func (t *Transaction) Activity() *core.Activity { return t.activity }

// Enlist registers a resource as a participant.
func (t *Transaction) Enlist(r ots.Resource) error {
	_, err := t.activity.AddAction(SetName, NewResourceAction(r))
	return err
}

// EnlistNamed registers a participant with an explicit trace label.
func (t *Transaction) EnlistNamed(label string, r ots.Resource) error {
	_, err := t.activity.AddNamedAction(SetName, label, NewResourceAction(r))
	return err
}

// EnlistAction registers a raw Action (e.g. a remote participant proxy).
func (t *Transaction) EnlistAction(a core.Action) error {
	_, err := t.activity.AddAction(SetName, a)
	return err
}

// Commit drives prepare/commit through the activity, reporting whether the
// transaction committed.
func (t *Transaction) Commit(ctx context.Context) (bool, error) {
	out, err := t.activity.CompleteWithStatus(ctx, core.CompletionSuccess)
	if err != nil {
		return false, fmt.Errorf("twopc: complete: %w", err)
	}
	return out.Name == ResultCommitted, nil
}

// Rollback drives rollback through the activity.
func (t *Transaction) Rollback(ctx context.Context) error {
	if _, err := t.activity.CompleteWithStatus(ctx, core.CompletionFail); err != nil {
		return fmt.Errorf("twopc: rollback: %w", err)
	}
	return nil
}
