// Package btp implements §4.5 of the paper: the OASIS Business Transaction
// Protocol mapped onto the Activity Service.
//
// Atoms run an explicitly user-driven two-phase protocol (prepare, then —
// at an arbitrary later time — confirm or cancel) through two SignalSets:
// the PrepareSignalSet of fig. 11 and the CompleteSignalSet of fig. 12.
// Unlike ACID transactions there are no implied semantics about how
// participants implement prepare/confirm/cancel — two-phase locking is not
// required; participants are free to reserve, price-quote, or book
// provisionally.
//
// Cohesions are the non-ACID composition: atoms enroll, the business logic
// selects a confirm-set, the cohesion cancels the rest, and — "once the
// confirm-set has been determined, the cohesion collapses down to being an
// atom": the members of the confirm-set see an atomic outcome.
package btp

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/extendedtx/activityservice/internal/core"
)

// Protocol names.
const (
	// PrepareSetName is the PrepareSignalSet (fig. 11).
	PrepareSetName = "btp-prepare"
	// CompleteSetName is the CompleteSignalSet (fig. 12).
	CompleteSetName = "btp-complete"

	// SignalPrepare asks participants to reserve.
	SignalPrepare = "prepare"
	// SignalConfirm makes reservations final.
	SignalConfirm = "confirm"
	// SignalCancel releases reservations.
	SignalCancel = "cancel"

	// OutcomePrepared acknowledges a successful prepare.
	OutcomePrepared = "prepared"
	// OutcomeConfirmed acknowledges a confirm.
	OutcomeConfirmed = "confirmed"
	// OutcomeCancelled acknowledges a cancel (or reports a failed
	// prepare).
	OutcomeCancelled = "cancelled"
)

// BTP errors.
var (
	// ErrNotPrepared reports confirming an atom that is not prepared.
	ErrNotPrepared = errors.New("btp: atom is not prepared")
	// ErrCancelled reports that the atom (or cohesion) was cancelled.
	ErrCancelled = errors.New("btp: cancelled")
	// ErrUnknownAtom reports a confirm-set entry naming no enrolled atom.
	ErrUnknownAtom = errors.New("btp: unknown atom in confirm set")
)

// Participant is a BTP participant. Prepare reserves; returning an error
// means the participant cannot prepare (it has cancelled itself). Confirm
// and Cancel must be idempotent: signal delivery is at least once.
type Participant interface {
	Prepare() error
	Confirm() error
	Cancel() error
}

// AtomState tracks an atom through the explicit protocol.
type AtomState int

// Atom states.
const (
	AtomActive AtomState = iota + 1
	AtomPrepared
	AtomConfirmed
	AtomCancelled
)

// String returns the state name.
func (s AtomState) String() string {
	switch s {
	case AtomActive:
		return "active"
	case AtomPrepared:
		return "prepared"
	case AtomConfirmed:
		return "confirmed"
	case AtomCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("AtomState(%d)", int(s))
	}
}

// prepareSet is the PrepareSignalSet of fig. 11: one "prepare" broadcast;
// any cancelled response dooms the atom.
type prepareSet struct {
	core.BaseSet

	mu      sync.Mutex
	emitted bool
	doomed  bool
}

var _ core.SignalSet = (*prepareSet)(nil)

func newPrepareSet() *prepareSet {
	return &prepareSet{BaseSet: core.NewBaseSet(PrepareSetName)}
}

func (s *prepareSet) GetSignal() (core.Signal, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.emitted {
		return core.Signal{}, false, core.ErrExhausted
	}
	s.emitted = true
	return core.Signal{Name: SignalPrepare, SetName: PrepareSetName}, true, nil
}

func (s *prepareSet) SetResponse(resp core.Outcome, deliveryErr error) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if deliveryErr != nil || resp.Name != OutcomePrepared {
		s.doomed = true
	}
	return false, nil
}

func (s *prepareSet) GetOutcome() (core.Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.doomed {
		return core.Outcome{Name: OutcomeCancelled}, nil
	}
	return core.Outcome{Name: OutcomePrepared}, nil
}

// completeSet is the CompleteSignalSet of fig. 12: it issues confirm or
// cancel depending on how the atom is instructed to terminate (the
// activity's completion status).
type completeSet struct {
	core.BaseSet

	mu      sync.Mutex
	emitted bool
}

var _ core.SignalSet = (*completeSet)(nil)

func newCompleteSet() *completeSet {
	return &completeSet{BaseSet: core.NewBaseSet(CompleteSetName)}
}

func (s *completeSet) GetSignal() (core.Signal, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.emitted {
		return core.Signal{}, false, core.ErrExhausted
	}
	s.emitted = true
	name := SignalConfirm
	if s.CompletionStatus() != core.CompletionSuccess {
		name = SignalCancel
	}
	return core.Signal{Name: name, SetName: CompleteSetName}, true, nil
}

func (s *completeSet) SetResponse(core.Outcome, error) (bool, error) { return false, nil }

func (s *completeSet) GetOutcome() (core.Outcome, error) {
	if s.CompletionStatus() == core.CompletionSuccess {
		return core.Outcome{Name: OutcomeConfirmed}, nil
	}
	return core.Outcome{Name: OutcomeCancelled}, nil
}

// participantAction adapts a Participant to the Action protocol.
type participantAction struct {
	p Participant

	mu       sync.Mutex
	prepared bool
}

func (a *participantAction) ProcessSignal(_ context.Context, sig core.Signal) (core.Outcome, error) {
	switch sig.Name {
	case SignalPrepare:
		if err := a.p.Prepare(); err != nil {
			return core.Outcome{Name: OutcomeCancelled, Data: err.Error()}, nil
		}
		a.mu.Lock()
		a.prepared = true
		a.mu.Unlock()
		return core.Outcome{Name: OutcomePrepared}, nil
	case SignalConfirm:
		a.mu.Lock()
		prepared := a.prepared
		a.mu.Unlock()
		if !prepared {
			return core.Outcome{}, ErrNotPrepared
		}
		if err := a.p.Confirm(); err != nil {
			return core.Outcome{}, fmt.Errorf("btp: confirm: %w", err)
		}
		return core.Outcome{Name: OutcomeConfirmed}, nil
	case SignalCancel:
		if err := a.p.Cancel(); err != nil {
			return core.Outcome{}, fmt.Errorf("btp: cancel: %w", err)
		}
		return core.Outcome{Name: OutcomeCancelled}, nil
	default:
		return core.Outcome{}, fmt.Errorf("btp: unexpected signal %q", sig.Name)
	}
}

// Atom is a BTP atom: a user-driven two-phase unit of work.
type Atom struct {
	name     string
	activity *core.Activity
	prep     *prepareSet
	complete *completeSet

	mu    sync.Mutex
	state AtomState
}

// NewAtom begins an atom as an activity with the two BTP signal sets.
//
// Both sets deliver in parallel by default: prepare and confirm/cancel are
// pure broadcasts (neither set ever short-circuits), so concurrent fan-out
// changes nothing observable except latency — responses are still collated
// in enrollment order. Use SetDelivery to opt an atom back to serial.
func NewAtom(svc *core.Service, name string) (*Atom, error) {
	a := svc.Begin(name)
	prep := newPrepareSet()
	comp := newCompleteSet()
	prep.SetDelivery(core.Parallel())
	comp.SetDelivery(core.Parallel())
	if err := a.RegisterSignalSet(prep); err != nil {
		return nil, err
	}
	if err := a.RegisterSignalSet(comp); err != nil {
		return nil, err
	}
	a.SetCompletionSet(CompleteSetName)
	return &Atom{name: name, activity: a, prep: prep, complete: comp, state: AtomActive}, nil
}

// Name returns the atom's name.
func (a *Atom) Name() string { return a.name }

// SetDelivery overrides the delivery policy of both BTP signal sets.
func (a *Atom) SetDelivery(p core.DeliveryPolicy) {
	a.prep.SetDelivery(p)
	a.complete.SetDelivery(p)
}

// Activity exposes the backing activity.
func (a *Atom) Activity() *core.Activity { return a.activity }

// State returns the protocol state.
func (a *Atom) State() AtomState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.state
}

// Enroll registers a participant with both signal sets.
func (a *Atom) Enroll(p Participant) error {
	return a.EnrollNamed(fmt.Sprintf("participant-%d", a.activity.Coordinator().ActionCount(PrepareSetName)+1), p)
}

// EnrollNamed registers a participant with an explicit trace label.
func (a *Atom) EnrollNamed(label string, p Participant) error {
	action := &participantAction{p: p}
	if _, err := a.activity.AddNamedAction(PrepareSetName, label, action); err != nil {
		return err
	}
	if _, err := a.activity.AddNamedAction(CompleteSetName, label, action); err != nil {
		return err
	}
	return nil
}

// Prepare drives the fig. 11 exchange. The user decides when (and whether)
// to call Confirm or Cancel afterwards. If any participant cannot prepare,
// the atom cancels the others and reports ErrCancelled.
func (a *Atom) Prepare(ctx context.Context) error {
	a.mu.Lock()
	if a.state != AtomActive {
		st := a.state
		a.mu.Unlock()
		return fmt.Errorf("btp: prepare in state %s", st)
	}
	a.mu.Unlock()

	out, err := a.activity.Signal(ctx, PrepareSetName)
	if err != nil {
		return fmt.Errorf("btp: prepare: %w", err)
	}
	if out.Name != OutcomePrepared {
		// Cancel everyone (those that prepared must release).
		_ = a.finish(ctx, false)
		return fmt.Errorf("%w: atom %s failed to prepare", ErrCancelled, a.name)
	}
	a.mu.Lock()
	a.state = AtomPrepared
	a.mu.Unlock()
	return nil
}

// Confirm drives the fig. 12 exchange with the confirm signal.
func (a *Atom) Confirm(ctx context.Context) error {
	a.mu.Lock()
	if a.state != AtomPrepared {
		st := a.state
		a.mu.Unlock()
		return fmt.Errorf("%w: state %s", ErrNotPrepared, st)
	}
	a.mu.Unlock()
	return a.finish(ctx, true)
}

// Cancel drives the fig. 12 exchange with the cancel signal. Cancelling an
// unprepared or already-cancelled atom is a no-op.
func (a *Atom) Cancel(ctx context.Context) error {
	a.mu.Lock()
	if a.state == AtomConfirmed {
		a.mu.Unlock()
		return fmt.Errorf("btp: cannot cancel a confirmed atom")
	}
	if a.state == AtomCancelled {
		a.mu.Unlock()
		return nil
	}
	a.mu.Unlock()
	return a.finish(ctx, false)
}

func (a *Atom) finish(ctx context.Context, confirm bool) error {
	cs := core.CompletionSuccess
	newState := AtomConfirmed
	if !confirm {
		cs = core.CompletionFail
		newState = AtomCancelled
	}
	out, err := a.activity.CompleteWithStatus(ctx, cs)
	if err != nil {
		return fmt.Errorf("btp: complete: %w", err)
	}
	a.mu.Lock()
	a.state = newState
	a.mu.Unlock()
	if confirm && out.Name != OutcomeConfirmed {
		return fmt.Errorf("%w: atom %s", ErrCancelled, a.name)
	}
	return nil
}

// Cohesion composes atoms with business-rule-driven outcome selection.
type Cohesion struct {
	name string

	mu    sync.Mutex
	atoms map[string]*Atom
}

// NewCohesion returns an empty cohesion.
func NewCohesion(name string) *Cohesion {
	return &Cohesion{name: name, atoms: make(map[string]*Atom)}
}

// Enroll adds an atom to the cohesion.
func (c *Cohesion) Enroll(a *Atom) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.atoms[a.Name()] = a
}

// Atoms returns the enrolled atom count.
func (c *Cohesion) Atoms() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.atoms)
}

// Confirm terminates the cohesion: atoms outside the confirm-set are
// cancelled; the confirm-set is prepared (where not already) and then
// confirmed atomically — all of them confirm, or on any prepare failure
// all are cancelled and ErrCancelled is returned.
func (c *Cohesion) Confirm(ctx context.Context, confirmSet []string) error {
	c.mu.Lock()
	members := make([]*Atom, 0, len(confirmSet))
	seen := make(map[string]bool, len(confirmSet))
	for _, name := range confirmSet {
		a, ok := c.atoms[name]
		if !ok {
			c.mu.Unlock()
			return fmt.Errorf("%w: %q", ErrUnknownAtom, name)
		}
		members = append(members, a)
		seen[name] = true
	}
	var losers []*Atom
	for name, a := range c.atoms {
		if !seen[name] {
			losers = append(losers, a)
		}
	}
	c.mu.Unlock()

	// Cancel the atoms the business logic rejected.
	for _, a := range losers {
		if err := a.Cancel(ctx); err != nil {
			return err
		}
	}
	// Prepare the confirm-set ("the cohesion collapses down to being an
	// atom").
	for i, a := range members {
		if a.State() == AtomPrepared {
			continue
		}
		if err := a.Prepare(ctx); err != nil {
			// Cancel the already-prepared members: atomicity across the
			// confirm-set.
			for _, b := range members[:i] {
				_ = b.Cancel(ctx)
			}
			for _, b := range members[i+1:] {
				_ = b.Cancel(ctx)
			}
			return fmt.Errorf("%w: confirm-set member %s", ErrCancelled, a.Name())
		}
	}
	// Confirm them all.
	for _, a := range members {
		if err := a.Confirm(ctx); err != nil {
			return err
		}
	}
	return nil
}

// CancelAll cancels every enrolled atom.
func (c *Cohesion) CancelAll(ctx context.Context) error {
	c.mu.Lock()
	atoms := make([]*Atom, 0, len(c.atoms))
	for _, a := range c.atoms {
		atoms = append(atoms, a)
	}
	c.mu.Unlock()
	for _, a := range atoms {
		if err := a.Cancel(ctx); err != nil {
			return err
		}
	}
	return nil
}
