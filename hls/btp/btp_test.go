package btp

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/extendedtx/activityservice/internal/core"
	"github.com/extendedtx/activityservice/internal/trace"
)

// reservation is a scriptable participant: a bookable slot.
type reservation struct {
	mu          sync.Mutex
	name        string
	failPrepare bool
	calls       []string
	state       string // "", "reserved", "booked", "released"
}

func newReservation(name string) *reservation {
	return &reservation{name: name}
}

func (r *reservation) log(s string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls = append(r.calls, s)
}

func (r *reservation) Calls() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.calls...)
}

func (r *reservation) State() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

func (r *reservation) Prepare() error {
	r.log("prepare")
	if r.failPrepare {
		return errors.New(r.name + ": no availability")
	}
	r.mu.Lock()
	r.state = "reserved"
	r.mu.Unlock()
	return nil
}

func (r *reservation) Confirm() error {
	r.log("confirm")
	r.mu.Lock()
	r.state = "booked"
	r.mu.Unlock()
	return nil
}

func (r *reservation) Cancel() error {
	r.log("cancel")
	r.mu.Lock()
	r.state = "released"
	r.mu.Unlock()
	return nil
}

func TestAtomPrepareConfirm(t *testing.T) {
	svc := core.New()
	ctx := context.Background()
	atom, err := NewAtom(svc, "taxi")
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := newReservation("p1"), newReservation("p2")
	_ = atom.Enroll(p1)
	_ = atom.Enroll(p2)

	if err := atom.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	if atom.State() != AtomPrepared {
		t.Fatalf("state = %s", atom.State())
	}
	// BTP: the user drives phase two explicitly, possibly much later.
	if p1.State() != "reserved" {
		t.Fatalf("p1 state = %q between phases", p1.State())
	}
	if err := atom.Confirm(ctx); err != nil {
		t.Fatal(err)
	}
	if atom.State() != AtomConfirmed {
		t.Fatalf("state = %s", atom.State())
	}
	for _, p := range []*reservation{p1, p2} {
		if p.State() != "booked" {
			t.Fatalf("%s state = %q", p.name, p.State())
		}
	}
}

func TestAtomPrepareCancel(t *testing.T) {
	svc := core.New()
	ctx := context.Background()
	atom, _ := NewAtom(svc, "hotel")
	p := newReservation("p")
	_ = atom.Enroll(p)
	if err := atom.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	if err := atom.Cancel(ctx); err != nil {
		t.Fatal(err)
	}
	if atom.State() != AtomCancelled || p.State() != "released" {
		t.Fatalf("atom=%s p=%q", atom.State(), p.State())
	}
}

func TestAtomPrepareFailureCancelsAll(t *testing.T) {
	svc := core.New()
	ctx := context.Background()
	atom, _ := NewAtom(svc, "hotel")
	good := newReservation("good")
	bad := newReservation("bad")
	bad.failPrepare = true
	_ = atom.Enroll(good)
	_ = atom.Enroll(bad)
	err := atom.Prepare(ctx)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v", err)
	}
	if atom.State() != AtomCancelled {
		t.Fatalf("state = %s", atom.State())
	}
	// The participant that reserved must be released.
	if good.State() != "released" {
		t.Fatalf("good state = %q", good.State())
	}
}

func TestConfirmWithoutPrepareRejected(t *testing.T) {
	svc := core.New()
	atom, _ := NewAtom(svc, "x")
	if err := atom.Confirm(context.Background()); !errors.Is(err, ErrNotPrepared) {
		t.Fatalf("err = %v", err)
	}
}

func TestCancelUnpreparedAtomIsNoop(t *testing.T) {
	svc := core.New()
	ctx := context.Background()
	atom, _ := NewAtom(svc, "x")
	p := newReservation("p")
	_ = atom.Enroll(p)
	if err := atom.Cancel(ctx); err != nil {
		t.Fatal(err)
	}
	if atom.State() != AtomCancelled {
		t.Fatalf("state = %s", atom.State())
	}
	// Double cancel is a no-op.
	if err := atom.Cancel(ctx); err != nil {
		t.Fatal(err)
	}
	// Cancelling a confirmed atom is an error.
	atom2, _ := NewAtom(svc, "y")
	_ = atom2.Enroll(newReservation("q"))
	_ = atom2.Prepare(ctx)
	_ = atom2.Confirm(ctx)
	if err := atom2.Cancel(ctx); err == nil {
		t.Fatal("cancelled a confirmed atom")
	}
}

// TestFig11Fig12Traces verifies the two sequence charts end to end.
func TestFig11Fig12Traces(t *testing.T) {
	rec := trace.New()
	svc := core.New(core.WithTrace(rec))
	ctx := context.Background()
	atom, _ := NewAtom(svc, "coordinator")
	_ = atom.EnrollNamed("action1", newReservation("a1"))
	_ = atom.EnrollNamed("action2", newReservation("a2"))

	if err := atom.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	fig11 := []string{
		"get_signal:coordinator->btp-prepare:prepare",
		"transmit:coordinator->action1:prepare",
		"set_response:action1->btp-prepare:prepared",
		"transmit:coordinator->action2:prepare",
		"set_response:action2->btp-prepare:prepared",
		"get_outcome:coordinator->btp-prepare:prepared",
	}
	assertSubsequence(t, rec.Sequence(), fig11)

	rec.Reset()
	if err := atom.Confirm(ctx); err != nil {
		t.Fatal(err)
	}
	fig12 := []string{
		"get_signal:coordinator->btp-complete:confirm",
		"transmit:coordinator->action1:confirm",
		"set_response:action1->btp-complete:confirmed",
		"transmit:coordinator->action2:confirm",
		"set_response:action2->btp-complete:confirmed",
		"get_outcome:coordinator->btp-complete:confirmed",
	}
	assertSubsequence(t, rec.Sequence(), fig12)
}

// assertSubsequence checks want appears in order within got.
func assertSubsequence(t *testing.T, got, want []string) {
	t.Helper()
	i := 0
	for _, g := range got {
		if i < len(want) && g == want[i] {
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("missing %q\ntrace:\n%s", want[i], strings.Join(got, "\n"))
	}
}

func TestCohesionConfirmSet(t *testing.T) {
	// Fig. 1-2 as BTP (§4.5): atoms for taxi/restaurant/theatre/hotel; the
	// hotel atom fails, the business logic replaces it and confirms the
	// rest.
	svc := core.New()
	ctx := context.Background()
	cohesion := NewCohesion("trip")

	parts := map[string]*reservation{}
	for _, name := range []string{"taxi", "restaurant", "theatre", "hotel", "cinema"} {
		atom, err := NewAtom(svc, name)
		if err != nil {
			t.Fatal(err)
		}
		p := newReservation(name)
		if name == "hotel" {
			p.failPrepare = true
		}
		parts[name] = p
		_ = atom.Enroll(p)
		cohesion.Enroll(atom)
	}
	if cohesion.Atoms() != 5 {
		t.Fatalf("atoms = %d", cohesion.Atoms())
	}

	// First the business logic tries the hotel: it cannot prepare.
	err := cohesion.Confirm(ctx, []string{"taxi", "restaurant", "theatre", "hotel"})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v", err)
	}
	// Atomicity across the attempted confirm-set: prepared members were
	// cancelled.
	for _, name := range []string{"taxi", "restaurant", "theatre"} {
		if parts[name].State() != "released" {
			t.Fatalf("%s state = %q", name, parts[name].State())
		}
	}

	// New cohesion round with the cinema instead (fresh atoms: signal sets
	// are single-use).
	svc2 := core.New()
	cohesion2 := NewCohesion("trip-2")
	parts2 := map[string]*reservation{}
	for _, name := range []string{"taxi", "theatre", "cinema", "hotel"} {
		atom, _ := NewAtom(svc2, name)
		p := newReservation(name)
		parts2[name] = p
		_ = atom.Enroll(p)
		cohesion2.Enroll(atom)
	}
	if err := cohesion2.Confirm(ctx, []string{"taxi", "theatre", "cinema"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"taxi", "theatre", "cinema"} {
		if parts2[name].State() != "booked" {
			t.Fatalf("%s = %q", name, parts2[name].State())
		}
	}
	// The atom outside the confirm-set was cancelled.
	if parts2["hotel"].State() != "released" {
		t.Fatalf("hotel = %q", parts2["hotel"].State())
	}
}

func TestCohesionUnknownMember(t *testing.T) {
	c := NewCohesion("c")
	if err := c.Confirm(context.Background(), []string{"ghost"}); !errors.Is(err, ErrUnknownAtom) {
		t.Fatalf("err = %v", err)
	}
}

func TestCohesionCancelAll(t *testing.T) {
	svc := core.New()
	ctx := context.Background()
	c := NewCohesion("c")
	ps := []*reservation{}
	for i := 0; i < 3; i++ {
		atom, _ := NewAtom(svc, string(rune('a'+i)))
		p := newReservation(string(rune('a' + i)))
		ps = append(ps, p)
		_ = atom.Enroll(p)
		c.Enroll(atom)
	}
	if err := c.CancelAll(ctx); err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if p.State() != "released" {
			t.Fatalf("%s = %q", p.name, p.State())
		}
	}
}

func TestCohesionPreparedMembersConfirmDirectly(t *testing.T) {
	// Business logic may prepare atoms incrementally before deciding the
	// confirm-set; Confirm must not re-prepare them.
	svc := core.New()
	ctx := context.Background()
	c := NewCohesion("c")
	atom, _ := NewAtom(svc, "early")
	p := newReservation("early")
	_ = atom.Enroll(p)
	c.Enroll(atom)
	if err := atom.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Confirm(ctx, []string{"early"}); err != nil {
		t.Fatal(err)
	}
	calls := p.Calls()
	prepares := 0
	for _, call := range calls {
		if call == "prepare" {
			prepares++
		}
	}
	if prepares != 1 {
		t.Fatalf("prepare called %d times: %v", prepares, calls)
	}
	if p.State() != "booked" {
		t.Fatalf("state = %q", p.State())
	}
}
