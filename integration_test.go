// Integration tests exercising the full stack through the public API:
// distributed extended transactions over the ORB, transactional activities
// (fig. 4), crash recovery of activity structure (§3.4) and the interplay
// of the transaction service with the models of §4.
package activityservice_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/hls/opennested"
	"github.com/extendedtx/activityservice/hls/twopc"
	"github.com/extendedtx/activityservice/hls/workflow"
	"github.com/extendedtx/activityservice/orb"
	"github.com/extendedtx/activityservice/ots"
)

// bookable is a BTP-style 2PC participant representing a remote service.
type bookable struct {
	mu       sync.Mutex
	name     string
	capacity int
	reserved int
	booked   int
}

func (s *bookable) Prepare() (ots.Vote, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reserved+s.booked >= s.capacity {
		return ots.VoteRollback, nil
	}
	s.reserved++
	return ots.VoteCommit, nil
}

func (s *bookable) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reserved > 0 {
		s.reserved--
		s.booked++
	}
	return nil
}

func (s *bookable) Rollback() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reserved > 0 {
		s.reserved--
	}
	return nil
}

func (s *bookable) CommitOnePhase() error { return s.Commit() }
func (s *bookable) Forget() error         { return nil }

func (s *bookable) Booked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.booked
}

// TestDistributedTwoPhaseCommitOverTCP runs the fig. 8 protocol with every
// participant on a different ORB reached over real TCP.
func TestDistributedTwoPhaseCommitOverTCP(t *testing.T) {
	ctx := context.Background()
	clientORB := orb.New()
	defer clientORB.Shutdown()

	services := []*bookable{
		{name: "taxi", capacity: 2},
		{name: "hotel", capacity: 2},
		{name: "theatre", capacity: 2},
	}
	var refs []orb.IOR
	for _, s := range services {
		node := orb.New()
		defer node.Shutdown()
		ref := orb.ExportAction(node, twopc.NewResourceAction(s))
		if _, err := node.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		ref, _ = node.IOR(ref.Key)
		refs = append(refs, ref)
	}

	svc := activityservice.New()
	coord := twopc.NewCoordinator(svc)
	tx, err := coord.Begin("distributed-booking")
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range refs {
		if err := tx.EnlistAction(orb.ImportAction(clientORB, ref)); err != nil {
			t.Fatal(err)
		}
	}
	committed, err := tx.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !committed {
		t.Fatal("distributed booking did not commit")
	}
	for _, s := range services {
		if s.Booked() != 1 {
			t.Fatalf("%s booked = %d", s.name, s.Booked())
		}
	}
}

// TestDistributedAbortReleasesRemoteReservations forces a veto on one node
// and checks no remote state leaks.
func TestDistributedAbortReleasesRemoteReservations(t *testing.T) {
	ctx := context.Background()
	clientORB := orb.New()
	defer clientORB.Shutdown()

	free := &bookable{name: "free", capacity: 1}
	full := &bookable{name: "full", capacity: 0} // always vetoes
	node := orb.New()
	defer node.Shutdown()
	refFree := orb.ExportAction(node, twopc.NewResourceAction(free))
	refFull := orb.ExportAction(node, twopc.NewResourceAction(full))
	if _, err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	refFree, _ = node.IOR(refFree.Key)
	refFull, _ = node.IOR(refFull.Key)

	svc := activityservice.New()
	coord := twopc.NewCoordinator(svc)
	tx, _ := coord.Begin("doomed")
	_ = tx.EnlistAction(orb.ImportAction(clientORB, refFree))
	_ = tx.EnlistAction(orb.ImportAction(clientORB, refFull))
	committed, err := tx.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("committed despite remote veto")
	}
	if free.Booked() != 0 {
		t.Fatalf("free.booked = %d after abort", free.Booked())
	}
}

// TestTransactionalActivityFig4 combines activities with real transactions
// on transactional variables: the fig. 4 shape with durable effects.
func TestTransactionalActivityFig4(t *testing.T) {
	ctx := context.Background()
	svc := activityservice.New()
	txs := ots.NewService()
	locks := ots.NewLockManager()
	account := ots.NewVar("account", []byte("1000"), locks, 100*time.Millisecond)

	// A1: two top-level transactions, both commit.
	a1 := svc.Begin("A1")
	for _, val := range []string{"900", "800"} {
		tx := txs.Begin()
		if err := account.Set(tx, []byte(val)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a1.Complete(ctx); err != nil {
		t.Fatal(err)
	}
	if got := string(account.Committed()); got != "800" {
		t.Fatalf("account = %q after A1", got)
	}

	// A3 with nested transactional activity A3': the nested transaction's
	// write survives only because the top level commits.
	a3 := svc.Begin("A3")
	top := txs.Begin()
	a3p, err := a3.BeginChild("A3'")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := top.BeginSubtransaction()
	if err != nil {
		t.Fatal(err)
	}
	if err := account.Set(sub, []byte("700")); err != nil {
		t.Fatal(err)
	}
	if err := sub.Commit(false); err != nil {
		t.Fatal(err)
	}
	if _, err := a3p.Complete(ctx); err != nil {
		t.Fatal(err)
	}
	// Provisional until the top level commits.
	if got := string(account.Committed()); got != "800" {
		t.Fatalf("account = %q before top-level commit", got)
	}
	if err := top.Commit(false); err != nil {
		t.Fatal(err)
	}
	if _, err := a3.Complete(ctx); err != nil {
		t.Fatal(err)
	}
	if got := string(account.Committed()); got != "700" {
		t.Fatalf("account = %q after A3", got)
	}
}

// TestActivityRecoveryEndToEnd journals a compensation-model activity
// tree, simulates a crash, recovers on a fresh service and drives the
// recovered activities to completion through recreated SignalSets/Actions.
func TestActivityRecoveryEndToEnd(t *testing.T) {
	ctx := context.Background()
	log := ots.NewMemoryLog()

	var compensated sync.Map
	registerFactories := func(svc *activityservice.Service) {
		svc.RegisterSignalSetFactory("completion-seq", func(params []byte) (activityservice.SignalSet, error) {
			return activityservice.NewSequenceSet(activityservice.DefaultCompletionSet, string(params)), nil
		})
		svc.RegisterActionFactory("compensator", func(params []byte) (activityservice.Action, error) {
			step := string(params)
			return activityservice.ActionFunc(
				func(context.Context, activityservice.Signal) (activityservice.Outcome, error) {
					compensated.Store(step, true)
					return activityservice.Outcome{Name: "compensated"}, nil
				}), nil
		})
	}

	svc := activityservice.New(activityservice.WithJournal(log))
	registerFactories(svc)
	root := svc.Begin("long-running")
	step, err := root.BeginChild("step-2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := step.RegisterRecoverableSignalSet("completion-seq", []byte("undo")); err != nil {
		t.Fatal(err)
	}
	if _, err := step.AddRecoverableAction(activityservice.DefaultCompletionSet, "compensator", []byte("step-2")); err != nil {
		t.Fatal(err)
	}
	if err := step.SetCompletionStatus(activityservice.CompletionFail); err != nil {
		t.Fatal(err)
	}
	// Crash here: the process dies before step-2 completes.

	snap, err := log.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	replay, err := openMemory(snap)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := activityservice.New()
	registerFactories(svc2)
	roots, err := svc2.Recover(replay)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 {
		t.Fatalf("recovered %d roots", len(roots))
	}
	r := roots[0]
	kids := r.Children()
	if len(kids) != 1 || kids[0].Name() != "step-2" {
		t.Fatalf("children = %v", kids)
	}
	// The journaled fail status survived; application logic now drives the
	// recovered activity to completion, which runs the compensator.
	if kids[0].CompletionStatus() != activityservice.CompletionFail {
		t.Fatalf("status = %s", kids[0].CompletionStatus())
	}
	if _, err := kids[0].Complete(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := compensated.Load("step-2"); !ok {
		t.Fatal("compensator did not run after recovery")
	}
	if _, err := r.Complete(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestWorkflowWithTransactionalTasks ties each workflow task to a real
// top-level transaction, the fig. 1 prescription.
func TestWorkflowWithTransactionalTasks(t *testing.T) {
	ctx := context.Background()
	svc := activityservice.New()
	txs := ots.NewService()
	locks := ots.NewLockManager()
	ledger := ots.NewVar("ledger", []byte(""), locks, 200*time.Millisecond)

	appendEntry := func(entry string) func(context.Context) error {
		return func(context.Context) error {
			tx := txs.Begin()
			cur, err := ledger.Get(tx)
			if err != nil {
				_ = tx.Rollback()
				return err
			}
			if err := ledger.Set(tx, append(cur, []byte(entry+";")...)); err != nil {
				_ = tx.Rollback()
				return err
			}
			return tx.Commit(false)
		}
	}
	p := workflow.Process{
		Name: "tx-chain",
		Tasks: []workflow.Task{
			{Name: "t1", Run: appendEntry("t1")},
			{Name: "t2", DependsOn: []string{"t1"}, Run: appendEntry("t2")},
			{Name: "t3", DependsOn: []string{"t2"}, Run: appendEntry("t3")},
		},
	}
	res, err := workflow.New(svc).Execute(ctx, p)
	if err != nil || !res.Ok {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if got := string(ledger.Committed()); got != "t1;t2;t3;" {
		t.Fatalf("ledger = %q", got)
	}
}

// TestOpenNestedWithRealTransactions runs §4.2 against transactional
// variables: B's committed write is undone by !B when A aborts.
func TestOpenNestedWithRealTransactions(t *testing.T) {
	ctx := context.Background()
	svc := activityservice.New()
	txs := ots.NewService()
	locks := ots.NewLockManager()
	stock := ots.NewVar("stock", []byte("10"), locks, 100*time.Millisecond)

	write := func(val string) error {
		tx := txs.Begin()
		if err := stock.Set(tx, []byte(val)); err != nil {
			_ = tx.Rollback()
			return err
		}
		return tx.Commit(false)
	}

	a, err := opennested.Begin(svc, "A", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := opennested.Begin(svc, "B", a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddCompensation(svc, "!B", func(context.Context) error {
		return write("10") // restore
	}); err != nil {
		t.Fatal(err)
	}
	if err := write("7"); err != nil { // B's work: sell 3 units
		t.Fatal(err)
	}
	if _, err := b.Complete(ctx, true); err != nil {
		t.Fatal(err)
	}
	if got := string(stock.Committed()); got != "7" {
		t.Fatalf("stock = %q after B", got)
	}
	if _, err := a.Complete(ctx, false); err != nil { // A aborts
		t.Fatal(err)
	}
	if got := string(stock.Committed()); got != "10" {
		t.Fatalf("stock = %q after compensation", got)
	}
}

// TestRemoteActivityCompletionAcrossThreeNodes hosts the activity on one
// node and two participants on two other nodes.
func TestRemoteActivityCompletionAcrossThreeNodes(t *testing.T) {
	ctx := context.Background()

	host := orb.New()
	defer host.Shutdown()
	svc := activityservice.New()
	a := svc.Begin("multi-node")
	set := activityservice.NewSequenceSet(activityservice.DefaultCompletionSet, "finish").
		Collate(func(rs []activityservice.Outcome) activityservice.Outcome {
			return activityservice.Outcome{Name: "all-done", Data: int64(len(rs))}
		})
	if err := a.RegisterSignalSet(set); err != nil {
		t.Fatal(err)
	}
	coordRef := orb.ExportActivity(host, a)
	if _, err := host.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	coordRef, _ = host.IOR(coordRef.Key)

	var hits sync.Map
	for i := 0; i < 2; i++ {
		node := orb.New()
		defer node.Shutdown()
		if _, err := node.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		proxy := orb.NewActivityProxy(node, coordRef)
		id := fmt.Sprintf("node-%d", i)
		if _, err := proxy.AddAction(ctx, activityservice.DefaultCompletionSet,
			activityservice.ActionFunc(func(context.Context, activityservice.Signal) (activityservice.Outcome, error) {
				hits.Store(id, true)
				return activityservice.Outcome{Name: "ok"}, nil
			})); err != nil {
			t.Fatal(err)
		}
	}

	driver := orb.New()
	defer driver.Shutdown()
	out, err := orb.NewActivityProxy(driver, coordRef).Complete(ctx, activityservice.CompletionSuccess)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "all-done" || out.Data != int64(2) {
		t.Fatalf("outcome = %+v", out)
	}
	for i := 0; i < 2; i++ {
		if _, ok := hits.Load(fmt.Sprintf("node-%d", i)); !ok {
			t.Fatalf("node-%d never signalled", i)
		}
	}
}

// TestFacadeErrorsMatch verifies the re-exported sentinels match the
// underlying implementation (errors.Is across the facade).
func TestFacadeErrorsMatch(t *testing.T) {
	svc := activityservice.New()
	a := svc.Begin("x")
	if _, err := a.Complete(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, err := a.Complete(context.Background())
	if !errors.Is(err, activityservice.ErrActivityInactive) {
		t.Fatalf("err = %v", err)
	}
	otsSvc := ots.NewService()
	tx := otsSvc.Begin()
	_ = tx.Commit(false)
	if err := tx.Commit(false); !errors.Is(err, ots.ErrInactive) {
		t.Fatalf("ots err = %v", err)
	}
}
