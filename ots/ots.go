// Package ots is the public API of the transaction-service substrate: an
// Object Transaction Service in the style of CosTransactions, with flat
// and nested transactions, presumed-abort two-phase commit, a durable
// decision log and crash recovery.
//
// The Activity Service uses it for transactional activities (fig. 4 of the
// paper), exactly-once signal delivery (§3.4), and as the baseline in the
// framework-overhead ablation. The implementation lives in internal/ots.
package ots

import (
	"time"

	"github.com/extendedtx/activityservice/internal/lockmgr"
	iots "github.com/extendedtx/activityservice/internal/ots"
	"github.com/extendedtx/activityservice/internal/wal"
)

// Transaction service types.
type (
	// Service is the transaction factory and recovery home.
	Service = iots.Service
	// Transaction exposes the Control/Coordinator/Terminator surface.
	Transaction = iots.Transaction
	// Resource is a two-phase commit participant.
	Resource = iots.Resource
	// SubtransactionAwareResource also receives nested completion events.
	SubtransactionAwareResource = iots.SubtransactionAwareResource
	// NamedResource is a Resource with a stable recovery name.
	NamedResource = iots.NamedResource
	// Synchronization receives before/after completion callbacks.
	Synchronization = iots.Synchronization
	// Directory re-binds named resources during recovery.
	Directory = iots.Directory
	// Status is the transaction status.
	Status = iots.Status
	// Vote is a phase-one answer.
	Vote = iots.Vote
	// Current is context-based demarcation (CosTransactions::Current).
	Current = iots.Current
	// Var is a strict-2PL transactional variable.
	Var = iots.Var
	// RecoveryStats summarises a recovery pass.
	RecoveryStats = iots.RecoveryStats
	// RecoveryTotals is the lifetime recovery counters and pending gauges.
	RecoveryTotals = iots.RecoveryTotals
	// HeuristicRecord is one durably recorded heuristic outcome.
	HeuristicRecord = iots.HeuristicRecord
	// Event is one observed commit-protocol step (see WithEventHook).
	Event = iots.Event
	// Stage identifies a commit-protocol boundary in an Event.
	Stage = iots.Stage
	// Option configures a Service.
	Option = iots.Option
	// BeginOption configures one transaction.
	BeginOption = iots.BeginOption
)

// Commit protocol stages (see WithEventHook).
const (
	StagePrepared        = iots.StagePrepared
	StageDecisionLogged  = iots.StageDecisionLogged
	StageCommitDelivered = iots.StageCommitDelivered
	StageDone            = iots.StageDone
)

// Statuses.
const (
	StatusUnknown        = iots.StatusUnknown
	StatusActive         = iots.StatusActive
	StatusMarkedRollback = iots.StatusMarkedRollback
	StatusPreparing      = iots.StatusPreparing
	StatusPrepared       = iots.StatusPrepared
	StatusCommitting     = iots.StatusCommitting
	StatusCommitted      = iots.StatusCommitted
	StatusRollingBack    = iots.StatusRollingBack
	StatusRolledBack     = iots.StatusRolledBack
)

// Votes.
const (
	VoteCommit   = iots.VoteCommit
	VoteRollback = iots.VoteRollback
	VoteReadOnly = iots.VoteReadOnly
)

// Errors.
var (
	ErrInactive          = iots.ErrInactive
	ErrRolledBack        = iots.ErrRolledBack
	ErrHeuristicMixed    = iots.ErrHeuristicMixed
	ErrHeuristicHazard   = iots.ErrHeuristicHazard
	ErrHeuristicCommit   = iots.ErrHeuristicCommit
	ErrHeuristicRollback = iots.ErrHeuristicRollback
	ErrWriteConflict     = iots.ErrWriteConflict
)

// NewService returns a transaction service.
func NewService(opts ...Option) *Service { return iots.NewService(opts...) }

// NewDirectory returns an empty recovery directory.
func NewDirectory() *Directory { return iots.NewDirectory() }

// NewCurrent returns context-based demarcation over svc.
func NewCurrent(svc *Service) *Current { return iots.NewCurrent(svc) }

// WithLog makes commit decisions durable, enabling recovery.
func WithLog(l *wal.Log) Option { return iots.WithLog(l) }

// WithDirectory sets the recovery directory.
func WithDirectory(d *Directory) Option { return iots.WithDirectory(d) }

// WithRetryPolicy sets phase-two retry behaviour.
func WithRetryPolicy(attempts int, delay time.Duration) Option {
	return iots.WithRetryPolicy(attempts, delay)
}

// WithEventHook installs a synchronous observer of commit-protocol
// boundaries (prepare completed, decision logged, per-resource delivery,
// done). Crash-injection tests use it to stop a coordinator at an exact
// protocol point; it must be fast and must not call back into the service.
func WithEventHook(fn func(Event)) Option { return iots.WithEventHook(fn) }

// WithDecisionBarrier installs a hook invoked after each commit decision
// is durable in the local log, before phase two starts. A replicated
// coordinator uses it to wait (bounded) for a standby to acknowledge the
// decision — see orb.ServeReplication and ReplicationPrimary's
// DecisionBarrier. The barrier cannot veto the decision.
func WithDecisionBarrier(fn func(lsn uint64)) Option { return iots.WithDecisionBarrier(fn) }

// WithDecisionGate installs an error-returning barrier between the
// decision append and phase two: a coordinator-group leader wires
// ReplicationPrimary's DecisionGate here so a deposed (fenced) leader
// vetoes its in-flight commits instead of delivering outcomes the new
// leader's history does not contain. A veto unwinds to ErrRolledBack.
func WithDecisionGate(fn func(lsn uint64) error) Option { return iots.WithDecisionGate(fn) }

// WithTimeout marks a transaction rollback-only after d.
func WithTimeout(d time.Duration) BeginOption { return iots.WithTimeout(d) }

// WithTransaction returns a context carrying tx.
var WithTransaction = iots.WithTransaction

// FromContext returns the transaction carried by a context.
var FromContext = iots.FromContext

// NewMemoryLog returns an in-memory decision log (tests, examples).
func NewMemoryLog() *wal.Log { return wal.NewMemory() }

// OpenFileLog opens (creating if needed) a file-backed decision log.
func OpenFileLog(path string) (*wal.Log, error) { return wal.OpenFile(path) }

// LockManager is the read/write lock manager used by Vars and the LRUOW
// performance phase.
type LockManager = lockmgr.Manager

// NewLockManager returns an empty lock manager.
func NewLockManager() *LockManager { return lockmgr.New() }

// NewVar returns a strict-2PL transactional variable named name.
func NewVar(name string, initial []byte, locks *LockManager, wait time.Duration) *Var {
	return iots.NewVar(name, initial, locks, wait)
}
