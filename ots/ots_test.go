package ots_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/extendedtx/activityservice/ots"
)

// ledgerResource is a public-API participant with durable-ish state.
type ledgerResource struct {
	name     string
	disk     map[string]string
	vote     ots.Vote
	failures int
}

func (l *ledgerResource) Prepare() (ots.Vote, error) {
	l.disk[l.name] = "prepared"
	return l.vote, nil
}

func (l *ledgerResource) Commit() error {
	if l.failures > 0 {
		l.failures--
		return errors.New("transient")
	}
	l.disk[l.name] = "committed"
	return nil
}

func (l *ledgerResource) Rollback() error {
	l.disk[l.name] = "rolledback"
	return nil
}

func (l *ledgerResource) CommitOnePhase() error { return l.Commit() }
func (l *ledgerResource) Forget() error         { return nil }
func (l *ledgerResource) RecoveryName() string  { return l.name }

func TestPublicTwoPhaseCommit(t *testing.T) {
	svc := ots.NewService()
	disk := map[string]string{}
	tx := svc.Begin()
	a := &ledgerResource{name: "a", disk: disk, vote: ots.VoteCommit}
	b := &ledgerResource{name: "b", disk: disk, vote: ots.VoteCommit}
	if err := tx.RegisterResource(a); err != nil {
		t.Fatal(err)
	}
	if err := tx.RegisterResource(b); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}
	if disk["a"] != "committed" || disk["b"] != "committed" {
		t.Fatalf("disk = %v", disk)
	}
	if tx.Status() != ots.StatusCommitted {
		t.Fatalf("status = %s", tx.Status())
	}
}

func TestPublicDurableRecovery(t *testing.T) {
	log := ots.NewMemoryLog()
	svc := ots.NewService(ots.WithLog(log))
	disk := map[string]string{}
	tx := svc.Begin()
	_ = tx.RegisterResource(&ledgerResource{name: "r1", disk: disk, vote: ots.VoteCommit})
	_ = tx.RegisterResource(&ledgerResource{name: "r2", disk: disk, vote: ots.VoteCommit})
	if err := tx.Commit(false); err != nil {
		t.Fatal(err)
	}

	// "Restart": a new service over the same log; recovery must be a no-op
	// because the done marker is durable.
	svc2 := ots.NewService(ots.WithLog(log), ots.WithDirectory(ots.NewDirectory()))
	stats, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DecisionsReplayed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestPublicCurrentDemarcation(t *testing.T) {
	svc := ots.NewService()
	cur := ots.NewCurrent(svc)
	ctx, top, err := cur.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, sub, err := cur.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Parent() != top || sub.Depth() != 1 {
		t.Fatal("nesting broken through facade")
	}
	if got, ok := ots.FromContext(ctx); !ok || got != sub {
		t.Fatal("context wiring broken")
	}
	if ctx, err = cur.Commit(ctx, false); err != nil {
		t.Fatal(err)
	}
	if _, err = cur.Commit(ctx, false); err != nil {
		t.Fatal(err)
	}
}

func TestPublicVar(t *testing.T) {
	svc := ots.NewService()
	locks := ots.NewLockManager()
	v := ots.NewVar("v", []byte("initial"), locks, 50*time.Millisecond)
	tx := svc.Begin()
	if err := v.Set(tx, []byte("updated")); err != nil {
		t.Fatal(err)
	}
	other := svc.Begin()
	if err := v.Set(other, []byte("conflict")); !errors.Is(err, ots.ErrWriteConflict) {
		t.Fatalf("err = %v", err)
	}
	_ = other.Rollback()
	if err := tx.Commit(false); err != nil {
		t.Fatal(err)
	}
	if got := string(v.Committed()); got != "updated" {
		t.Fatalf("committed = %q", got)
	}
}

func TestPublicTimeout(t *testing.T) {
	svc := ots.NewService()
	tx := svc.Begin(ots.WithTimeout(10 * time.Millisecond))
	deadline := time.After(2 * time.Second)
	for tx.Status() != ots.StatusMarkedRollback {
		select {
		case <-deadline:
			t.Fatalf("status = %s", tx.Status())
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
	if err := tx.Commit(false); !errors.Is(err, ots.ErrRolledBack) {
		t.Fatalf("err = %v", err)
	}
}

func TestPublicHeuristics(t *testing.T) {
	svc := ots.NewService(ots.WithRetryPolicy(2, 0))
	disk := map[string]string{}
	tx := svc.Begin()
	good := &ledgerResource{name: "good", disk: disk, vote: ots.VoteCommit}
	bad := &ledgerResource{name: "bad", disk: disk, vote: ots.VoteCommit, failures: 99}
	_ = tx.RegisterResource(good)
	_ = tx.RegisterResource(bad)
	err := tx.Commit(true)
	if !errors.Is(err, ots.ErrHeuristicMixed) {
		t.Fatalf("err = %v", err)
	}
}

func TestPublicFileLog(t *testing.T) {
	path := t.TempDir() + "/ots.wal"
	log, err := ots.OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	svc := ots.NewService(ots.WithLog(log))
	disk := map[string]string{}
	tx := svc.Begin()
	_ = tx.RegisterResource(&ledgerResource{name: "f1", disk: disk, vote: ots.VoteCommit})
	_ = tx.RegisterResource(&ledgerResource{name: "f2", disk: disk, vote: ots.VoteCommit})
	if err := tx.Commit(false); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and verify the decision is replayable.
	log2, err := ots.OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	recs, err := log2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 { // decision + done
		t.Fatalf("records = %d", len(recs))
	}
}
