// Failure-injection tests: the behaviours §3.4 of the paper requires when
// machines crash or the network partitions mid-protocol.
package activityservice_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/hls/twopc"
	"github.com/extendedtx/activityservice/orb"
	"github.com/extendedtx/activityservice/ots"
)

// TestRemoteParticipantCrashAbortsTransaction kills a participant's node
// before prepare; the coordinator's at-least-once delivery retries, then
// treats the participant as failed and rolls back the survivors.
func TestRemoteParticipantCrashAbortsTransaction(t *testing.T) {
	ctx := context.Background()
	clientORB := orb.New()
	defer clientORB.Shutdown()

	healthy := &bookable{name: "healthy", capacity: 5}
	healthyNode := orb.New()
	defer healthyNode.Shutdown()
	healthyRef := orb.ExportAction(healthyNode, twopc.NewResourceAction(healthy))
	if _, err := healthyNode.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	healthyRef, _ = healthyNode.IOR(healthyRef.Key)

	doomed := &bookable{name: "doomed", capacity: 5}
	doomedNode := orb.New()
	doomedRef := orb.ExportAction(doomedNode, twopc.NewResourceAction(doomed))
	if _, err := doomedNode.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	doomedRef, _ = doomedNode.IOR(doomedRef.Key)

	// Fast retries so the test completes quickly.
	svc := activityservice.New(activityservice.WithRetryPolicy(
		activityservice.RetryPolicy{Attempts: 2, Backoff: time.Millisecond}))
	coord := twopc.NewCoordinator(svc)
	tx, err := coord.Begin("crash-test")
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.EnlistAction(orb.ImportAction(clientORB, healthyRef))
	_ = tx.EnlistAction(orb.ImportAction(clientORB, doomedRef))

	// The doomed node crashes before the protocol starts.
	doomedNode.Shutdown()

	committed, err := tx.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("committed despite a crashed participant")
	}
	if healthy.Booked() != 0 {
		t.Fatalf("healthy.booked = %d after abort", healthy.Booked())
	}
}

// TestRemoteCrashAfterPrepare crashes the node between prepare and commit:
// the surviving participants still receive the phase-two signal; the
// crashed one is reported through the trace as a delivery error (the
// commit decision stands — phase-two is at-least-once and would be
// re-driven by recovery in a durable deployment).
func TestRemoteCrashAfterPrepare(t *testing.T) {
	ctx := context.Background()
	clientORB := orb.New()
	defer clientORB.Shutdown()

	survivor := &bookable{name: "survivor", capacity: 5}
	node1 := orb.New()
	defer node1.Shutdown()
	ref1 := orb.ExportAction(node1, twopc.NewResourceAction(survivor))
	if _, err := node1.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref1, _ = node1.IOR(ref1.Key)

	var (
		mu        sync.Mutex
		crashed   bool
		node2     = orb.New()
		crashable = &bookable{name: "crashable", capacity: 5}
	)
	// Wrap the resource action so the node dies right after its prepare.
	inner := twopc.NewResourceAction(crashable)
	ref2 := orb.ExportAction(node2, activityservice.ActionFunc(
		func(cx context.Context, sig activityservice.Signal) (activityservice.Outcome, error) {
			out, err := inner.ProcessSignal(cx, sig)
			if sig.Name == twopc.SignalPrepare {
				mu.Lock()
				if !crashed {
					crashed = true
					go func() {
						// Let the prepare reply flush before the node dies;
						// the crash then lands between phases (or during
						// phase two — either way the decision stands).
						time.Sleep(50 * time.Millisecond)
						node2.Shutdown()
					}()
				}
				mu.Unlock()
			}
			return out, err
		}))
	if _, err := node2.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref2, _ = node2.IOR(ref2.Key)

	svc := activityservice.New(activityservice.WithRetryPolicy(
		activityservice.RetryPolicy{Attempts: 2, Backoff: 5 * time.Millisecond}))
	coord := twopc.NewCoordinator(svc)
	tx, err := coord.Begin("post-prepare-crash")
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.EnlistAction(orb.ImportAction(clientORB, ref1))
	_ = tx.EnlistAction(orb.ImportAction(clientORB, ref2))

	committed, err := tx.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !committed {
		t.Fatal("transaction did not commit: the decision was taken before the crash")
	}
	// The survivor must have committed.
	if survivor.Booked() != 1 {
		t.Fatalf("survivor.booked = %d", survivor.Booked())
	}
}

// TestOTSCrashBetweenDecisionAndPhaseTwo is the canonical recovery drill:
// the decision record is durable, phase two never ran, and a recovery pass
// on a fresh service re-delivers commit.
func TestOTSCrashBetweenDecisionAndPhaseTwo(t *testing.T) {
	log := ots.NewMemoryLog()
	svc := ots.NewService(ots.WithLog(log))
	disk := map[string]string{}
	tx := svc.Begin()
	_ = tx.RegisterResource(&recoverableRes{name: "x", disk: disk})
	_ = tx.RegisterResource(&recoverableRes{name: "y", disk: disk})
	if err := tx.Commit(false); err != nil {
		t.Fatal(err)
	}

	// Build the crash image: decision only, no done marker — as if the
	// process died a microsecond after forcing the decision.
	recs, err := log.Records()
	if err != nil {
		t.Fatal(err)
	}
	crashLog := ots.NewMemoryLog()
	if _, err := crashLog.Append(recs[0].Kind, recs[0].Data); err != nil {
		t.Fatal(err)
	}
	disk["x"], disk["y"] = "prepared", "prepared"

	dir := ots.NewDirectory()
	dir.Register("x", &recoverableRes{name: "x", disk: disk})
	dir.Register("y", &recoverableRes{name: "y", disk: disk})
	svc2 := ots.NewService(ots.WithLog(crashLog), ots.WithDirectory(dir))
	stats, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResourcesCommitted != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if disk["x"] != "committed" || disk["y"] != "committed" {
		t.Fatalf("disk = %v", disk)
	}
}

// recoverableRes is a named resource persisting state into a shared map.
type recoverableRes struct {
	name string
	disk map[string]string
}

func (r *recoverableRes) Prepare() (ots.Vote, error) {
	r.disk[r.name] = "prepared"
	return ots.VoteCommit, nil
}

func (r *recoverableRes) Commit() error {
	r.disk[r.name] = "committed"
	return nil
}

func (r *recoverableRes) Rollback() error {
	r.disk[r.name] = "rolledback"
	return nil
}

func (r *recoverableRes) CommitOnePhase() error { return r.Commit() }
func (r *recoverableRes) Forget() error         { return nil }
func (r *recoverableRes) RecoveryName() string  { return r.name }

// TestTimeoutAbortsHungRemoteParticipant bounds a hung participant with
// the ORB call timeout; the 2PC treats the timeout as a veto.
func TestTimeoutAbortsHungRemoteParticipant(t *testing.T) {
	ctx := context.Background()
	node := orb.New()
	defer node.Shutdown()
	hung := orb.ExportAction(node, activityservice.ActionFunc(
		func(cx context.Context, _ activityservice.Signal) (activityservice.Outcome, error) {
			time.Sleep(2 * time.Second)
			return activityservice.Outcome{Name: "too-late"}, nil
		}))
	if _, err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	hung, _ = node.IOR(hung.Key)

	clientORB := orb.New(orb.WithCallTimeout(50 * time.Millisecond))
	defer clientORB.Shutdown()
	healthy := &bookable{name: "ok", capacity: 1}
	svc := activityservice.New(activityservice.WithRetryPolicy(
		activityservice.RetryPolicy{Attempts: 1}))
	coord := twopc.NewCoordinator(svc)
	tx, _ := coord.Begin("hung-participant")
	_ = tx.Enlist(healthy)
	_ = tx.EnlistAction(orb.ImportAction(clientORB, hung))
	committed, err := tx.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("committed with a hung participant")
	}
	if healthy.Booked() != 0 {
		t.Fatalf("healthy.booked = %d", healthy.Booked())
	}
}
