package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// testCodec pairs an encoder with a decoder over its bytes.
type testCodec struct {
	enc *cdr.Encoder
}

func newTestEncoder() *testCodec { return &testCodec{enc: cdr.NewEncoder(64)} }

func (c *testCodec) dec() *cdr.Decoder { return cdr.NewDecoder(c.enc.Bytes()) }

// TestQuickBroadcastInvariant checks the fig. 5 invariant for random
// protocol shapes: with a signals and n actions, every action receives
// every signal exactly once, in signal-major, registration order, and the
// set receives exactly a×n responses.
func TestQuickBroadcastInvariant(t *testing.T) {
	f := func(nSignals, nActions uint8) bool {
		a := int(nSignals%5) + 1
		n := int(nActions%8) + 1
		coord := newCoordinator("A", testGen(), nil, RetryPolicy{Attempts: 1}, DeliveryPolicy{}, nil)
		var (
			mu    sync.Mutex
			order []string
		)
		for i := 0; i < n; i++ {
			label := fmt.Sprintf("act%d", i)
			coord.AddNamedAction("s", label, ActionFunc(
				func(_ context.Context, sig Signal) (Outcome, error) {
					mu.Lock()
					order = append(order, label+"/"+sig.Name)
					mu.Unlock()
					return Outcome{Name: "ok"}, nil
				}))
		}
		var names []string
		for i := 0; i < a; i++ {
			names = append(names, fmt.Sprintf("sig%d", i))
		}
		set := NewSequenceSet("s", names...)
		if _, err := coord.ProcessSignalSet(context.Background(), set); err != nil {
			return false
		}
		if len(order) != a*n {
			return false
		}
		idx := 0
		for i := 0; i < a; i++ {
			for j := 0; j < n; j++ {
				want := fmt.Sprintf("act%d/sig%d", j, i)
				if order[idx] != want {
					return false
				}
				idx++
			}
		}
		return len(set.Responses()) == a*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCompletionStatusNeverEscapesFailOnly drives random status
// sequences and verifies FailOnly is absorbing (§3.2.1).
func TestQuickCompletionStatusNeverEscapesFailOnly(t *testing.T) {
	f := func(seq []uint8) bool {
		svc := New()
		act := svc.Begin("q")
		sawFailOnly := false
		for _, b := range seq {
			cs := CompletionStatus(int(b%3) + 1)
			err := act.SetCompletionStatus(cs)
			if cs == CompletionFailOnly {
				sawFailOnly = true
			}
			if sawFailOnly {
				if act.CompletionStatus() != CompletionFailOnly {
					return false
				}
				if cs != CompletionFailOnly && err == nil {
					return false // change out of FailOnly must error
				}
			} else if err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSignalEncodingRoundTrip round-trips Signals with arbitrary
// names and payload strings through the wire encoding.
func TestQuickSignalEncodingRoundTrip(t *testing.T) {
	f := func(name, setName, payload string, n int64, flag bool) bool {
		sig := Signal{
			Name:    name,
			SetName: setName,
			Data:    map[string]any{"s": payload, "n": n, "b": flag},
		}
		e := newTestEncoder()
		if err := sig.Encode(e.enc); err != nil {
			return false
		}
		got, err := DecodeSignal(e.dec())
		if err != nil {
			return false
		}
		data, ok := got.Data.(map[string]any)
		return ok && got.Name == name && got.SetName == setName &&
			data["s"] == payload && data["n"] == n && data["b"] == flag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNestedTreeAlwaysCompletable builds random activity trees and
// verifies bottom-up completion always succeeds and empties the service.
func TestQuickNestedTreeAlwaysCompletable(t *testing.T) {
	f := func(shape []uint8) bool {
		if len(shape) > 12 {
			shape = shape[:12]
		}
		svc := New()
		root := svc.Begin("root")
		nodes := []*Activity{root}
		for i, b := range shape {
			parent := nodes[int(b)%len(nodes)]
			if parent.State() != ActivityActive {
				continue
			}
			child, err := parent.BeginChild(fmt.Sprintf("n%d", i))
			if err != nil {
				return false
			}
			nodes = append(nodes, child)
		}
		// Complete deepest-first.
		for i := len(nodes) - 1; i >= 0; i-- {
			if _, err := nodes[i].Complete(context.Background()); err != nil {
				return false
			}
		}
		return svc.Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
