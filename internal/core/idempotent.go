package core

import (
	"context"
	"fmt"
	"sync"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/ots"
)

// idempotentAction deduplicates signal deliveries: §3.4 requires Actions to
// tolerate at-least-once delivery, and this wrapper gives any Action that
// property by caching the outcome of each distinct signal.
type idempotentAction struct {
	inner Action

	mu   sync.Mutex
	seen map[string]memoized
}

type memoized struct {
	outcome Outcome
	err     error
}

// Idempotent wraps inner so repeated deliveries of the same signal (same
// set, name and payload) return the first outcome without re-invoking
// inner. Failed deliveries are not memoized, so retries still reach inner.
func Idempotent(inner Action) Action {
	return &idempotentAction{inner: inner, seen: make(map[string]memoized)}
}

// ProcessSignal implements Action.
func (i *idempotentAction) ProcessSignal(ctx context.Context, sig Signal) (Outcome, error) {
	key, err := signalKey(sig)
	if err != nil {
		return Outcome{}, err
	}
	i.mu.Lock()
	if m, ok := i.seen[key]; ok {
		i.mu.Unlock()
		return m.outcome, m.err
	}
	i.mu.Unlock()

	outcome, perr := i.inner.ProcessSignal(ctx, sig)
	if perr == nil {
		i.mu.Lock()
		i.seen[key] = memoized{outcome: outcome}
		i.mu.Unlock()
	}
	return outcome, perr
}

// signalKey canonically encodes a signal for deduplication.
func signalKey(sig Signal) (string, error) {
	e := cdr.NewEncoder(64)
	if err := sig.Encode(e); err != nil {
		return "", fmt.Errorf("core: idempotency key: %w", err)
	}
	return string(e.Bytes()), nil
}

// exactlyOnceAction provides the stronger delivery guarantee of §3.4 by
// running each delivery inside a transaction from the underlying
// transaction service: the outcome record and the action's effect commit
// atomically, so a redelivery after a crash either sees the recorded
// outcome or re-runs an action whose previous attempt rolled back.
type exactlyOnceAction struct {
	svc   *ots.Service
	inner Action

	mu   sync.Mutex
	seen map[string]Outcome
}

// ExactlyOnce wraps inner with transactional delivery through svc, per the
// paper: "Stronger delivery semantics — exactly once — can be provided by
// the activity service itself making use of the underlying transaction
// service."
func ExactlyOnce(svc *ots.Service, inner Action) Action {
	return &exactlyOnceAction{svc: svc, inner: inner, seen: make(map[string]Outcome)}
}

// ProcessSignal implements Action.
func (x *exactlyOnceAction) ProcessSignal(ctx context.Context, sig Signal) (Outcome, error) {
	key, err := signalKey(sig)
	if err != nil {
		return Outcome{}, err
	}
	x.mu.Lock()
	if out, ok := x.seen[key]; ok {
		x.mu.Unlock()
		return out, nil
	}
	x.mu.Unlock()

	tx := x.svc.Begin()
	outcome, perr := x.inner.ProcessSignal(ots.WithTransaction(ctx, tx), sig)
	if perr != nil {
		_ = tx.Rollback()
		return Outcome{}, perr
	}
	if err := tx.RegisterResource(&outcomeRecord{owner: x, key: key, outcome: outcome}); err != nil {
		_ = tx.Rollback()
		return Outcome{}, err
	}
	if err := tx.Commit(false); err != nil {
		return Outcome{}, fmt.Errorf("core: exactly-once delivery: %w", err)
	}
	return outcome, nil
}

// outcomeRecord installs the memoized outcome only when the delivery
// transaction commits.
type outcomeRecord struct {
	owner   *exactlyOnceAction
	key     string
	outcome Outcome
}

func (o *outcomeRecord) Prepare() (ots.Vote, error) { return ots.VoteCommit, nil }

func (o *outcomeRecord) Commit() error {
	o.owner.mu.Lock()
	defer o.owner.mu.Unlock()
	o.owner.seen[o.key] = o.outcome
	return nil
}

func (o *outcomeRecord) Rollback() error { return nil }

func (o *outcomeRecord) CommitOnePhase() error { return o.Commit() }

func (o *outcomeRecord) Forget() error { return nil }
