package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/extendedtx/activityservice/internal/ids"
	"github.com/extendedtx/activityservice/internal/trace"
)

// ActionID identifies a registration with a coordinator, so an action can
// later be removed.
type ActionID = ids.UID

// ErrUnknownSignalSet reports driving or registering with a set name the
// activity does not know.
var ErrUnknownSignalSet = errors.New("core: unknown signal set")

// RetryPolicy controls at-least-once signal delivery (§3.4): a failed
// ProcessSignal is retried up to Attempts times with Backoff between tries.
// Actions must therefore be idempotent (or wrapped with Idempotent).
type RetryPolicy struct {
	// Attempts bounds deliveries of one signal to one action.
	Attempts int
	// Backoff is the pause between attempts.
	Backoff time.Duration
}

// registration pairs an Action with its identity and trace label.
type registration struct {
	id     ActionID
	label  string
	action Action
}

// regStripes is the shard count of the coordinator's registration map. A
// power of two; set names hash onto the stripes with FNV-1a.
const regStripes = 16

// regShard is one stripe of the registration map.
type regShard struct {
	mu sync.Mutex
	m  map[string][]registration
}

// regMap is a striped-lock map of setName → registrations, replacing the
// coordinator's old single mutex-guarded map: a fanout-heavy activity
// registering actions for many sets concurrently (remote enrolment, the
// fan-out storm of a wide 2PC) stops contending on one lock, and
// registration lookups during broadcast stop contending with concurrent
// AddAction/RemoveAction on unrelated sets.
type regMap struct {
	shards [regStripes]regShard
}

func newRegMap() *regMap {
	r := &regMap{}
	for i := range r.shards {
		r.shards[i].m = make(map[string][]registration)
	}
	return r
}

// shard picks the stripe for a set name (FNV-1a over the name).
func (r *regMap) shard(setName string) *regShard {
	h := uint32(2166136261)
	for i := 0; i < len(setName); i++ {
		h ^= uint32(setName[i])
		h *= 16777619
	}
	return &r.shards[h&(regStripes-1)]
}

// add appends a registration to a set's list.
func (r *regMap) add(setName string, reg registration) {
	s := r.shard(setName)
	s.mu.Lock()
	s.m[setName] = append(s.m[setName], reg)
	s.mu.Unlock()
}

// remove deletes a registration by id, reporting whether it existed.
func (r *regMap) remove(setName string, id ActionID) bool {
	s := r.shard(setName)
	s.mu.Lock()
	defer s.mu.Unlock()
	regs := s.m[setName]
	for i, reg := range regs {
		if reg.id == id {
			s.m[setName] = append(regs[:i], regs[i+1:]...)
			return true
		}
	}
	return false
}

// count returns the number of registrations for a set.
func (r *regMap) count(setName string) int {
	s := r.shard(setName)
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m[setName])
}

// snapshot copies a set's registration list, in registration order.
func (r *regMap) snapshot(setName string) []registration {
	s := r.shard(setName)
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]registration(nil), s.m[setName]...)
}

// Coordinator is the activity coordinator of fig. 5: Actions register
// interest in SignalSets by name; when the activity transmits a SignalSet,
// the coordinator pulls each Signal from the set, broadcasts it to the
// registered Actions in registration order, and feeds every response back
// into the set.
type Coordinator struct {
	owner    string // activity name, for traces
	gen      *ids.Generator
	rec      *trace.Recorder
	retry    RetryPolicy
	delivery DeliveryPolicy
	counters *deliveryCounters // service-wide speculative accounting, may be nil

	// regs is lock-striped (regMap): registration traffic for distinct
	// sets never contends. mu guards only the per-set drivers. seq feeds
	// default trace labels and is atomic for the same reason.
	regs *regMap
	seq  atomic.Int64

	mu      sync.Mutex
	drivers map[SignalSet]*setDriver
}

func newCoordinator(owner string, gen *ids.Generator, rec *trace.Recorder, retry RetryPolicy, delivery DeliveryPolicy, counters *deliveryCounters) *Coordinator {
	if retry.Attempts < 1 {
		retry.Attempts = 1
	}
	return &Coordinator{
		owner:    owner,
		gen:      gen,
		rec:      rec,
		retry:    retry,
		delivery: delivery,
		counters: counters,
		regs:     newRegMap(),
		drivers:  make(map[SignalSet]*setDriver),
	}
}

// AddAction registers action with the named SignalSet. Actions register
// interest in SignalSets, not individual Signals (§3.2.3): they receive
// every signal the set generates.
func (c *Coordinator) AddAction(setName string, action Action) ActionID {
	return c.AddNamedAction(setName, fmt.Sprintf("action-%d", c.seq.Add(1)), action)
}

// AddNamedAction registers action under an explicit trace label.
func (c *Coordinator) AddNamedAction(setName, label string, action Action) ActionID {
	id := c.gen.New()
	c.regs.add(setName, registration{id: id, label: label, action: action})
	return id
}

// RemoveAction removes a registration, reporting whether it existed.
func (c *Coordinator) RemoveAction(setName string, id ActionID) bool {
	return c.regs.remove(setName, id)
}

// ActionCount returns the number of actions registered with setName.
func (c *Coordinator) ActionCount(setName string) int {
	return c.regs.count(setName)
}

// actions snapshots the registrations for a set.
func (c *Coordinator) actions(setName string) []registration {
	return c.regs.snapshot(setName)
}

// driverFor returns the fig. 7 state machine for a set instance, creating
// it on first use. A set that reached End stays ended forever.
func (c *Coordinator) driverFor(set SignalSet) *setDriver {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.drivers[set]
	if !ok {
		d = newSetDriver(set)
		c.drivers[set] = d
	}
	return d
}

// SetState reports the fig. 7 state of a set instance under this
// coordinator (Waiting if it has never been driven).
func (c *Coordinator) SetState(set SignalSet) SetState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d, ok := c.drivers[set]; ok {
		return d.State()
	}
	return StateWaiting
}

// ProcessSignalSet drives the full protocol of figs. 5 and 8: pull a
// signal, broadcast it to every action registered with the set's name,
// feed responses back, repeat until the set ends, then collate the final
// outcome with GetOutcome.
//
// Each broadcast is delivered per the resolved DeliveryPolicy — the set's
// own (DeliveryPolicyProvider), else the Service-wide default, else serial.
// Whatever the policy, responses reach the set in registration order, so
// collation, advance short-circuiting and the recorded trace are identical
// across policies.
func (c *Coordinator) ProcessSignalSet(ctx context.Context, set SignalSet) (Outcome, error) {
	driver := c.driverFor(set)
	setName := set.Name()
	policy := c.policyFor(set)
	for {
		sig, last, err := driver.getSignal()
		if errors.Is(err, ErrExhausted) {
			break
		}
		if err != nil {
			return Outcome{}, fmt.Errorf("core: get_signal on %q: %w", setName, err)
		}
		c.rec.Record(trace.KindGetSignal, c.owner, setName, sig.Name, "")

		regs := c.actions(setName)
		var (
			advance bool
			berr    error
		)
		switch {
		case policy.Mode == DeliverTree && len(regs) > 1:
			advance, berr = c.broadcastTree(ctx, driver, regs, sig, policy)
		case policy.Mode == DeliverParallel && len(regs) > 1:
			advance, berr = c.broadcastParallel(ctx, driver, regs, sig, policy)
		default:
			advance, berr = c.broadcastSerial(ctx, driver, regs, sig)
		}
		if berr != nil {
			return Outcome{}, fmt.Errorf("core: set_response on %q: %w", setName, berr)
		}
		if last && !advance {
			driver.end()
			break
		}
	}
	out, err := driver.getOutcome()
	if err != nil {
		return Outcome{}, fmt.Errorf("core: get_outcome on %q: %w", setName, err)
	}
	c.rec.Record(trace.KindGetOutcome, c.owner, setName, out.Name, "")
	return out, nil
}

// deliver transmits one signal to one action with at-least-once retry,
// recording transmit events live and the response at the end (the same
// event shape replayTrace reproduces for parallel deliveries).
func (c *Coordinator) deliver(ctx context.Context, reg registration, sig Signal) (Outcome, error) {
	r := c.runAttempts(ctx, reg, sig, func(attempt int) {
		c.rec.Record(trace.KindTransmit, c.owner, reg.label, sig.Name, transmitDetail(attempt))
	})
	c.recordResponse(reg, sig, r)
	return r.outcome, r.err
}
