// Package core implements the paper's primary contribution: the Activity
// Service framework — Activities, Signals, SignalSets, Actions,
// PropertyGroups and the activity coordinator that drives them.
//
// The framework is deliberately free of extended-transaction semantics:
// it only coordinates. Each extended transaction model (two-phase commit,
// open nested transactions with compensation, LRUOW, workflow, BTP — see
// the hls packages) is expressed as SignalSet and Action implementations
// layered on top, exactly as §3.1 of the paper prescribes: "as new types of
// extended transaction models emerge, so will new signal set instances and
// associated actions", with the service "interacting with their interfaces
// in an entirely uniform and transparent way".
package core

import (
	"context"
	"fmt"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// Signal is activity-specific data transmitted to registered Actions,
// mirroring the paper's IDL:
//
//	struct Signal {
//	    string signal_name;
//	    string signal_set_name;
//	    any    application_specific_data;
//	};
//
// Data must be cdr-any codable (nil, bool, int64, float64, string, []byte,
// []any, map[string]any) so signals can cross the ORB unchanged.
type Signal struct {
	// Name is the signal's name within its set ("prepare", "commit", ...).
	Name string
	// SetName is the producing SignalSet.
	SetName string
	// Data is the application-specific payload (cdr-any codable).
	Data any
}

// String renders "set/name" for traces.
func (s Signal) String() string { return s.SetName + "/" + s.Name }

// Encode writes the signal to a CDR stream.
func (s Signal) Encode(e *cdr.Encoder) error {
	e.WriteString(s.Name)
	e.WriteString(s.SetName)
	if err := cdr.EncodeAny(e, s.Data); err != nil {
		return fmt.Errorf("core: encode signal %s: %w", s, err)
	}
	return nil
}

// DecodeSignal reads a signal from a CDR stream.
func DecodeSignal(d *cdr.Decoder) (Signal, error) {
	var s Signal
	s.Name = d.ReadString()
	s.SetName = d.ReadString()
	data, err := cdr.DecodeAny(d)
	if err != nil {
		return Signal{}, fmt.Errorf("core: decode signal: %w", err)
	}
	s.Data = data
	return s, nil
}

// Outcome is an Action's response to a Signal, and also the collated final
// result a SignalSet produces for a whole protocol run.
type Outcome struct {
	// Name is the outcome's name ("prepared", "committed", ...).
	Name string
	// Data is the application-specific payload (cdr-any codable).
	Data any
}

// String returns the outcome name.
func (o Outcome) String() string { return o.Name }

// Encode writes the outcome to a CDR stream.
func (o Outcome) Encode(e *cdr.Encoder) error {
	e.WriteString(o.Name)
	if err := cdr.EncodeAny(e, o.Data); err != nil {
		return fmt.Errorf("core: encode outcome %s: %w", o, err)
	}
	return nil
}

// DecodeOutcome reads an outcome from a CDR stream.
func DecodeOutcome(d *cdr.Decoder) (Outcome, error) {
	var o Outcome
	o.Name = d.ReadString()
	data, err := cdr.DecodeAny(d)
	if err != nil {
		return Outcome{}, fmt.Errorf("core: decode outcome: %w", err)
	}
	o.Data = data
	return o, nil
}

// CompletionStatus is the state an Activity would complete in, per §3.2.1.
type CompletionStatus int

// Completion statuses.
const (
	// CompletionSuccess: the activity performed its work; the status may
	// still be changed.
	CompletionSuccess CompletionStatus = iota + 1
	// CompletionFail: an application error occurred; the status may still
	// be changed.
	CompletionFail
	// CompletionFailOnly: an error occurred and the only possible outcome
	// is failure; the status can no longer be changed.
	CompletionFailOnly
)

// String returns the paper's enumeration spelling.
func (c CompletionStatus) String() string {
	switch c {
	case CompletionSuccess:
		return "CompletionStatusSuccess"
	case CompletionFail:
		return "CompletionStatusFail"
	case CompletionFailOnly:
		return "CompletionStatusFailOnly"
	default:
		return fmt.Sprintf("CompletionStatus(%d)", int(c))
	}
}

// Action receives Signals, per the paper's IDL:
//
//	interface Action {
//	    Outcome process_signal(in Signal sig) raises(ActionError);
//	};
//
// Signal delivery is at least once (§3.4): implementations must make
// ProcessSignal idempotent, or be wrapped with Idempotent.
type Action interface {
	// ProcessSignal reacts to one delivered signal.
	ProcessSignal(ctx context.Context, sig Signal) (Outcome, error)
}

// ActionFunc adapts a function to the Action interface.
type ActionFunc func(ctx context.Context, sig Signal) (Outcome, error)

// ProcessSignal implements Action.
func (f ActionFunc) ProcessSignal(ctx context.Context, sig Signal) (Outcome, error) {
	return f(ctx, sig)
}
