package core

import (
	"sync"

	"github.com/extendedtx/activityservice/internal/ids"
)

// activityStripes is the shard count of the live-activity registry. A
// power of two, so the UID's monotonically increasing counter byte
// round-robins the stripes evenly.
const activityStripes = 32

type activityShard struct {
	mu sync.RWMutex
	m  map[ids.UID]*Activity
}

// activityRegistry is a striped-lock map of live activities, replacing the
// Service's old single mutex-guarded map so concurrent Begin / Find /
// Complete from many goroutines stop contending on one lock.
type activityRegistry struct {
	shards [activityStripes]activityShard
}

func newActivityRegistry() *activityRegistry {
	r := &activityRegistry{}
	for i := range r.shards {
		r.shards[i].m = make(map[ids.UID]*Activity)
	}
	return r
}

func (r *activityRegistry) shard(id ids.UID) *activityShard {
	// The UID tail is the generator's counter; its low byte round-robins.
	return &r.shards[int(id[15])&(activityStripes-1)]
}

func (r *activityRegistry) put(a *Activity) {
	s := r.shard(a.id)
	s.mu.Lock()
	s.m[a.id] = a
	s.mu.Unlock()
}

func (r *activityRegistry) get(id ids.UID) (*Activity, bool) {
	s := r.shard(id)
	s.mu.RLock()
	a, ok := s.m[id]
	s.mu.RUnlock()
	return a, ok
}

func (r *activityRegistry) delete(id ids.UID) {
	s := r.shard(id)
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}

func (r *activityRegistry) size() int {
	n := 0
	for i := range r.shards {
		r.shards[i].mu.RLock()
		n += len(r.shards[i].m)
		r.shards[i].mu.RUnlock()
	}
	return n
}
