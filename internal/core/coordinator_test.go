package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/extendedtx/activityservice/internal/ids"
	"github.com/extendedtx/activityservice/internal/trace"
)

func testGen() *ids.Generator { return ids.NewSeeded(0xFEED) }

// collectingAction records the signals it receives.
type collectingAction struct {
	mu      sync.Mutex
	name    string
	signals []Signal
	outcome Outcome
	fail    int // fail this many deliveries before succeeding
}

func (c *collectingAction) ProcessSignal(_ context.Context, sig Signal) (Outcome, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fail > 0 {
		c.fail--
		return Outcome{}, fmt.Errorf("%s: transient failure", c.name)
	}
	c.signals = append(c.signals, sig)
	out := c.outcome
	if out.Name == "" {
		out = Outcome{Name: "ok"}
	}
	return out, nil
}

func (c *collectingAction) Signals() []Signal {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Signal(nil), c.signals...)
}

func TestCoordinatorBroadcastsToAllActionsInOrder(t *testing.T) {
	rec := trace.New()
	coord := newCoordinator("A", testGen(), rec, RetryPolicy{Attempts: 1}, DeliveryPolicy{}, nil)
	var order []string
	var mu sync.Mutex
	for _, name := range []string{"a1", "a2", "a3"} {
		name := name
		coord.AddNamedAction("set", name, ActionFunc(func(_ context.Context, sig Signal) (Outcome, error) {
			mu.Lock()
			order = append(order, name+":"+sig.Name)
			mu.Unlock()
			return Outcome{Name: "done"}, nil
		}))
	}
	set := NewSequenceSet("set", "s1", "s2")
	if _, err := coord.ProcessSignalSet(context.Background(), set); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1:s1", "a2:s1", "a3:s1", "a1:s2", "a2:s2", "a3:s2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCoordinatorFeedsEveryResponse(t *testing.T) {
	coord := newCoordinator("A", testGen(), nil, RetryPolicy{Attempts: 1}, DeliveryPolicy{}, nil)
	for i := 0; i < 4; i++ {
		coord.AddAction("set", &collectingAction{name: fmt.Sprintf("a%d", i)})
	}
	set := NewSequenceSet("set", "only")
	if _, err := coord.ProcessSignalSet(context.Background(), set); err != nil {
		t.Fatal(err)
	}
	if got := len(set.Responses()); got != 4 {
		t.Fatalf("set received %d responses, want 4", got)
	}
}

// advanceSet asks the coordinator to cut the broadcast short after the
// first response to "probe", then sends "final".
type advanceSet struct {
	BaseSet

	mu    sync.Mutex
	stage int
	resps []Outcome
}

func (s *advanceSet) GetSignal() (Signal, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.stage {
	case 0:
		s.stage = 1
		return Signal{Name: "probe", SetName: s.Name()}, false, nil
	case 1:
		s.stage = 2
		return Signal{Name: "final", SetName: s.Name()}, true, nil
	default:
		return Signal{}, false, ErrExhausted
	}
}

func (s *advanceSet) SetResponse(resp Outcome, _ error) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resps = append(s.resps, resp)
	// Advance as soon as the first probe response arrives.
	return s.stage == 1, nil
}

func (s *advanceSet) GetOutcome() (Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Outcome{Name: "advanced", Data: int64(len(s.resps))}, nil
}

func TestCoordinatorHonoursEarlyAdvance(t *testing.T) {
	coord := newCoordinator("A", testGen(), nil, RetryPolicy{Attempts: 1}, DeliveryPolicy{}, nil)
	a1 := &collectingAction{name: "a1"}
	a2 := &collectingAction{name: "a2"}
	coord.AddNamedAction("adv", "a1", a1)
	coord.AddNamedAction("adv", "a2", a2)
	set := &advanceSet{BaseSet: NewBaseSet("adv")}
	out, err := coord.ProcessSignalSet(context.Background(), set)
	if err != nil {
		t.Fatal(err)
	}
	// probe went only to a1 (advance cut the broadcast); final to both.
	if sigs := a1.Signals(); len(sigs) != 2 || sigs[0].Name != "probe" || sigs[1].Name != "final" {
		t.Fatalf("a1 signals = %v", sigs)
	}
	if sigs := a2.Signals(); len(sigs) != 1 || sigs[0].Name != "final" {
		t.Fatalf("a2 signals = %v", sigs)
	}
	if out.Name != "advanced" || out.Data != int64(3) {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestCoordinatorAtLeastOnceRetry(t *testing.T) {
	coord := newCoordinator("A", testGen(), nil, RetryPolicy{Attempts: 3}, DeliveryPolicy{}, nil)
	flaky := &collectingAction{name: "flaky", fail: 2}
	coord.AddAction("set", flaky)
	set := NewSequenceSet("set", "ping")
	if _, err := coord.ProcessSignalSet(context.Background(), set); err != nil {
		t.Fatal(err)
	}
	if sigs := flaky.Signals(); len(sigs) != 1 {
		t.Fatalf("flaky processed %d signals, want 1 (after retries)", len(sigs))
	}
	rs := set.Responses()
	if len(rs) != 1 || rs[0].Name != "ok" {
		t.Fatalf("responses = %v", rs)
	}
}

func TestCoordinatorDeliveryFailureReachesSet(t *testing.T) {
	coord := newCoordinator("A", testGen(), nil, RetryPolicy{Attempts: 2}, DeliveryPolicy{}, nil)
	dead := &collectingAction{name: "dead", fail: 99}
	coord.AddAction("set", dead)
	set := NewSequenceSet("set", "ping")
	if _, err := coord.ProcessSignalSet(context.Background(), set); err != nil {
		t.Fatal(err)
	}
	rs := set.Responses()
	if len(rs) != 1 || rs[0].Name != "delivery-error" {
		t.Fatalf("responses = %v", rs)
	}
}

func TestRemoveAction(t *testing.T) {
	coord := newCoordinator("A", testGen(), nil, RetryPolicy{Attempts: 1}, DeliveryPolicy{}, nil)
	a := &collectingAction{name: "a"}
	id := coord.AddAction("set", a)
	if coord.ActionCount("set") != 1 {
		t.Fatal("count != 1")
	}
	if !coord.RemoveAction("set", id) {
		t.Fatal("remove failed")
	}
	if coord.RemoveAction("set", id) {
		t.Fatal("second remove succeeded")
	}
	set := NewSequenceSet("set", "ping")
	if _, err := coord.ProcessSignalSet(context.Background(), set); err != nil {
		t.Fatal(err)
	}
	if len(a.Signals()) != 0 {
		t.Fatal("removed action still received signals")
	}
}

func TestActionsRegisterWithSetsNotSignals(t *testing.T) {
	// Fig. 6 multiplicity: one action may register with several sets, and
	// an activity may use several sets over its lifetime.
	coord := newCoordinator("A", testGen(), nil, RetryPolicy{Attempts: 1}, DeliveryPolicy{}, nil)
	shared := &collectingAction{name: "shared"}
	coord.AddAction("setA", shared)
	coord.AddAction("setB", shared)
	for _, set := range []*SequenceSet{NewSequenceSet("setA", "x"), NewSequenceSet("setB", "y", "z")} {
		if _, err := coord.ProcessSignalSet(context.Background(), set); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(shared.Signals()); got != 3 {
		t.Fatalf("shared action received %d signals, want 3", got)
	}
}

// TestFig8TwoPhaseCommitTrace reproduces the exact exchange of fig. 8:
// get_signal / prepare→A1 / set_response / prepare→A2 / set_response /
// get_signal / commit→A1 / set_response / commit→A2 / set_response /
// get_outcome.
func TestFig8TwoPhaseCommitTrace(t *testing.T) {
	rec := trace.New()
	coord := newCoordinator("coordinator", testGen(), rec, RetryPolicy{Attempts: 1}, DeliveryPolicy{}, nil)
	for _, n := range []string{"action1", "action2"} {
		coord.AddNamedAction("2pc", n, ActionFunc(func(context.Context, Signal) (Outcome, error) {
			return Outcome{Name: "done"}, nil
		}))
	}
	set := NewSequenceSet("2pc", "prepare", "commit")
	if _, err := coord.ProcessSignalSet(context.Background(), set); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"get_signal:coordinator->2pc:prepare",
		"transmit:coordinator->action1:prepare",
		"set_response:action1->2pc:done",
		"transmit:coordinator->action2:prepare",
		"set_response:action2->2pc:done",
		"get_signal:coordinator->2pc:commit",
		"transmit:coordinator->action1:commit",
		"set_response:action1->2pc:done",
		"transmit:coordinator->action2:commit",
		"set_response:action2->2pc:done",
		"get_outcome:coordinator->2pc:completed",
	}
	got := rec.Sequence()
	if len(got) != len(want) {
		t.Fatalf("trace length %d, want %d:\n%v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace[%d] = %q, want %q\nfull: %v", i, got[i], want[i], got)
		}
	}
}

func TestCoordinatorErrorOnBrokenSet(t *testing.T) {
	coord := newCoordinator("A", testGen(), nil, RetryPolicy{Attempts: 1}, DeliveryPolicy{}, nil)
	set := &brokenSet{BaseSet: NewBaseSet("broken")}
	if _, err := coord.ProcessSignalSet(context.Background(), set); err == nil {
		t.Fatal("broken set did not error")
	}
}

type brokenSet struct {
	BaseSet
}

func (b *brokenSet) GetSignal() (Signal, bool, error) {
	return Signal{}, false, errors.New("internal fault")
}

func (b *brokenSet) SetResponse(Outcome, error) (bool, error) { return false, nil }

func (b *brokenSet) GetOutcome() (Outcome, error) { return Outcome{}, nil }

// TestCoordinatorStripedRegistrationStress hammers the striped
// registration map from many goroutines — concurrent AddAction,
// RemoveAction and ActionCount across many sets, including sets that
// collide on one stripe — and then verifies no registration was lost or
// double-removed: the exact survivor count per set, with every removal
// having reported true exactly once. Run under -race this also pins the
// striping's memory-safety.
func TestCoordinatorStripedRegistrationStress(t *testing.T) {
	coord := newCoordinator("stress", testGen(), nil, RetryPolicy{Attempts: 1}, DeliveryPolicy{}, nil)
	const (
		sets       = 3 * regStripes // several sets per stripe on average
		workers    = 8
		perWorker  = 50 // adds per worker per set
		removeEach = 20 // removals per worker per set
	)
	setName := func(i int) string { return fmt.Sprintf("set-%d", i) }

	type rm struct {
		set string
		id  ActionID
	}
	var wg sync.WaitGroup
	removedCh := make(chan rm, sets*workers*removeEach)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < sets; s++ {
				name := setName(s)
				ids := make([]ActionID, 0, perWorker)
				for i := 0; i < perWorker; i++ {
					ids = append(ids, coord.AddAction(name, noopTestAction{}))
					coord.ActionCount(name) // reader mixed into the storm
				}
				for i := 0; i < removeEach; i++ {
					if !coord.RemoveAction(name, ids[i]) {
						t.Errorf("RemoveAction(%s, %v) lost a registration it owned", name, ids[i])
						return
					}
					removedCh <- rm{set: name, id: ids[i]}
				}
			}
		}()
	}
	wg.Wait()
	close(removedCh)

	// Every removal reported true exactly once; removing again must fail.
	for r := range removedCh {
		if coord.RemoveAction(r.set, r.id) {
			t.Fatalf("RemoveAction(%s, %v) succeeded twice", r.set, r.id)
		}
	}
	want := workers * (perWorker - removeEach)
	for s := 0; s < sets; s++ {
		if got := coord.ActionCount(setName(s)); got != want {
			t.Fatalf("set %s: %d registrations survived, want %d", setName(s), got, want)
		}
	}
}

// noopTestAction is a minimal Action for registration-only tests.
type noopTestAction struct{}

// ProcessSignal implements Action.
func (noopTestAction) ProcessSignal(context.Context, Signal) (Outcome, error) {
	return Outcome{Name: "ok"}, nil
}
