package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"github.com/extendedtx/activityservice/internal/ids"
)

// FuzzPropagationContextRoundTrip builds a PropagationContext from fuzz
// input, round-trips it through the CDR wire form and requires exact
// structural equality — the §3.3 guarantee that an activity context and
// its by-value property groups survive the ORB unchanged.
func FuzzPropagationContextRoundTrip(f *testing.F) {
	f.Add(uint8(1), "root", "locale", "en_GB", int64(7))
	f.Add(uint8(3), "a/b/c", "", "", int64(-1))
	f.Add(uint8(0), "", "k", "v", int64(0))
	f.Fuzz(func(t *testing.T, depth uint8, name, key, sval string, ival int64) {
		gen := ids.NewSeeded(42)
		pc := &PropagationContext{}
		for i := 0; i <= int(depth%6); i++ {
			pc.Path = append(pc.Path, PropagationEntry{
				ID:   gen.New(),
				Name: fmt.Sprintf("%s-%d", name, i),
			})
		}
		if key != "" {
			pc.Properties = map[string]map[string]any{
				"grp": {key: sval, key + "/n": ival},
			}
		}

		b, err := pc.Marshal()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got, err := UnmarshalPropagationContext(b)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !reflect.DeepEqual(pc.Path, got.Path) {
			t.Fatalf("path mismatch:\n in: %+v\nout: %+v", pc.Path, got.Path)
		}
		if !reflect.DeepEqual(pc.Properties, got.Properties) {
			t.Fatalf("properties mismatch:\n in: %+v\nout: %+v", pc.Properties, got.Properties)
		}
		if pc.ActivityID() != got.ActivityID() {
			t.Fatalf("activity id mismatch: %s vs %s", pc.ActivityID(), got.ActivityID())
		}
		// A second marshal of the decoded context is byte-identical: the
		// encoding is canonical.
		b2, err := got.Marshal()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("encoding not canonical:\n first: %x\nsecond: %x", b, b2)
		}
	})
}

// FuzzUnmarshalPropagationContext throws arbitrary bytes at the wire
// decoder: it may reject them, but must never panic or hang.
func FuzzUnmarshalPropagationContext(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	if seed, err := (&PropagationContext{
		Path:       []PropagationEntry{{Name: "seed"}},
		Properties: map[string]map[string]any{"g": {"k": "v"}},
	}).Marshal(); err == nil {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pc, err := UnmarshalPropagationContext(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode.
		if _, err := pc.Marshal(); err != nil {
			t.Fatalf("decoded context fails to marshal: %v", err)
		}
	})
}
