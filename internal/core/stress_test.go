package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/extendedtx/activityservice/internal/trace"
)

// TestStressConcurrentLifecycle hammers one shared Service from many
// goroutines, each running full begin/register/add-action/signal/complete
// cycles under both delivery policies, with tracing on so the recorder is
// stressed too. Must be clean under -race.
func TestStressConcurrentLifecycle(t *testing.T) {
	const (
		goroutines = 16
		iterations = 25
	)
	rec := trace.New()
	svc := New(WithTrace(rec), WithDelivery(Parallel()))
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				a := svc.Begin(fmt.Sprintf("g%d-i%d", g, i))
				set := NewSequenceSet("work", "step1", "step2")
				if g%2 == 0 {
					set.SetDelivery(DeliveryPolicy{Mode: DeliverSerial})
				}
				if err := a.RegisterSignalSet(set); err != nil {
					errs <- err
					return
				}
				for k := 0; k < 4; k++ {
					if _, err := a.AddAction("work", ActionFunc(
						func(context.Context, Signal) (Outcome, error) {
							return Outcome{Name: "ok"}, nil
						})); err != nil {
						errs <- err
						return
					}
				}
				if _, err := a.Signal(ctx, "work"); err != nil {
					errs <- err
					return
				}
				if _, ok := svc.Find(a.ID()); !ok {
					errs <- fmt.Errorf("activity %s not found while live", a.Name())
					return
				}
				if _, err := a.Complete(ctx); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if live := svc.Live(); live != 0 {
		t.Fatalf("Live() = %d after all completions, want 0", live)
	}
	if rec.Len() == 0 {
		t.Fatal("recorder captured nothing")
	}
}

// TestStressAddRemoveDuringBroadcast mutates a set's registrations while a
// broadcast over that set is in flight, under both policies. The broadcast
// must observe a consistent snapshot and never race.
func TestStressAddRemoveDuringBroadcast(t *testing.T) {
	for _, policy := range []DeliveryPolicy{{Mode: DeliverSerial}, Parallel()} {
		t.Run(policy.Mode.String(), func(t *testing.T) {
			coord := newCoordinator("A", testGen(), nil, RetryPolicy{Attempts: 1}, policy, nil)
			var delivered atomic.Int32
			slowAction := ActionFunc(func(context.Context, Signal) (Outcome, error) {
				delivered.Add(1)
				return Outcome{Name: "ok"}, nil
			})
			for i := 0; i < 32; i++ {
				coord.AddAction("s", slowAction)
			}

			stop := make(chan struct{})
			var churn sync.WaitGroup
			for w := 0; w < 4; w++ {
				churn.Add(1)
				go func() {
					defer churn.Done()
					var mine []ActionID
					for {
						select {
						case <-stop:
							for _, id := range mine {
								coord.RemoveAction("s", id)
							}
							return
						default:
							id := coord.AddAction("s", slowAction)
							mine = append(mine, id)
							if len(mine) > 8 {
								coord.RemoveAction("s", mine[0])
								mine = mine[1:]
							}
						}
					}
				}()
			}

			for i := 0; i < 20; i++ {
				set := NewSequenceSet("s", "sig-a", "sig-b")
				if _, err := coord.ProcessSignalSet(context.Background(), set); err != nil {
					t.Fatal(err)
				}
				// Each broadcast snapshots registrations: at least the 32
				// stable actions hear both signals.
				if got := len(set.Responses()); got < 64 {
					t.Fatalf("responses = %d, want >= 64", got)
				}
			}
			close(stop)
			churn.Wait()
			if delivered.Load() == 0 {
				t.Fatal("nothing delivered")
			}
		})
	}
}

// TestStressTupleSpace hammers one striped TupleSpace with concurrent
// readers, writers, deleters, snapshotters and child derivation.
func TestStressTupleSpace(t *testing.T) {
	ts := NewTupleSpace("env", VisibilityCopy, PropagateByValue)
	const goroutines = 12
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("k%d-%d", g, i%64)
				switch i % 5 {
				case 0, 1:
					if err := ts.Set(key, int64(i)); err != nil {
						t.Error(err)
						return
					}
				case 2:
					ts.Get(key)
				case 3:
					ts.Delete(key)
				case 4:
					if i%20 == 4 {
						_ = ts.Keys()
						_ = ts.Snapshot()
						_ = deriveChild(ts)
					}
				}
			}
		}()
	}
	// Run the churn briefly, then stop.
	for i := 0; i < 50; i++ {
		_ = ts.Keys()
	}
	close(stop)
	wg.Wait()

	// The space still behaves: a fresh write is readable and marshals.
	if err := ts.Set("final", "done"); err != nil {
		t.Fatal(err)
	}
	if v, ok := ts.Get("final"); !ok || v != "done" {
		t.Fatalf("Get(final) = %v, %v", v, ok)
	}
	if _, err := ts.MarshalTuples(); err != nil {
		t.Fatal(err)
	}
}

// TestStressSharedTupleSpaceAcrossChildren drives concurrent nested
// activities sharing one VisibilityShared group, exercising the striped
// space through the activity tree.
func TestStressSharedTupleSpaceAcrossChildren(t *testing.T) {
	svc := New()
	root := svc.Begin("root")
	shared := NewTupleSpace("counters", VisibilityShared, PropagateNone)
	if err := root.AddPropertyGroup(shared); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const kids = 10
	var wg sync.WaitGroup
	errs := make(chan error, kids)
	for k := 0; k < kids; k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			child, err := root.BeginChild(fmt.Sprintf("child%d", k))
			if err != nil {
				errs <- err
				return
			}
			pg, ok := child.PropertyGroup("counters")
			if !ok {
				errs <- fmt.Errorf("child %d: no shared group", k)
				return
			}
			for i := 0; i < 50; i++ {
				if err := pg.Set(fmt.Sprintf("c%d-%d", k, i), int64(i)); err != nil {
					errs <- err
					return
				}
			}
			if _, err := child.Complete(ctx); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := len(shared.Keys()); got != kids*50 {
		t.Fatalf("shared keys = %d, want %d", got, kids*50)
	}
	if _, err := root.Complete(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotNeverTorn pins the whole-space atomicity of Snapshot over
// the striped TupleSpace: a writer always bumps key kA before kB (chosen
// to live on different stripes, kA's visited first), so no point-in-time
// state ever has kB newer than kA. A non-atomic stripe walk could read
// kA's stripe before the bump and kB's after — a state that never
// existed. Snapshot must never observe it.
func TestSnapshotNeverTorn(t *testing.T) {
	// Pick two keys on distinct stripes with kA's stripe visited first.
	kA, kB := "", ""
	for i := 0; kB == "" && i < 1000; i++ {
		k := fmt.Sprintf("key%d", i)
		switch {
		case kA == "":
			kA = k
		case tupleStripeFor(k) > tupleStripeFor(kA):
			kB = k
		}
	}
	if kB == "" {
		t.Fatal("could not find keys on ordered distinct stripes")
	}

	ts := NewTupleSpace("inv", VisibilityShared, PropagateNone)
	if err := ts.Set(kA, int64(0)); err != nil {
		t.Fatal(err)
	}
	if err := ts.Set(kB, int64(0)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = ts.Set(kA, i)
			_ = ts.Set(kB, i)
		}
	}()

	for i := 0; i < 2000; i++ {
		snap := ts.Snapshot()
		a := snap[kA].(int64)
		b := snap[kB].(int64)
		if b > a {
			close(stop)
			wg.Wait()
			t.Fatalf("torn snapshot: %s=%d written-first but %s=%d is newer", kA, a, kB, b)
		}
	}
	close(stop)
	wg.Wait()
}

// TestBeginChildVsSuspendNeverLeaks races BeginChild against Suspend: a
// child whose creation loses the race (parent no longer active at the
// re-check) must be unwound from the live registry, so after everything
// completes the Service is empty.
func TestBeginChildVsSuspendNeverLeaks(t *testing.T) {
	svc := New()
	ctx := context.Background()
	for i := 0; i < 300; i++ {
		root := svc.Begin(fmt.Sprintf("root%d", i))
		var wg sync.WaitGroup
		var child *Activity
		wg.Add(2)
		go func() {
			defer wg.Done()
			c, err := root.BeginChild("kid")
			if err == nil {
				child = c
			}
		}()
		go func() {
			defer wg.Done()
			_ = root.Suspend()
		}()
		wg.Wait()
		if root.State() == ActivitySuspended {
			if err := root.Resume(); err != nil {
				t.Fatal(err)
			}
		}
		if child != nil {
			if _, err := child.Complete(ctx); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := root.Complete(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if live := svc.Live(); live != 0 {
		t.Fatalf("Live() = %d after completing everything, want 0 (stillborn children leaked)", live)
	}
}
