package core

import (
	"context"
	"testing"

	"github.com/extendedtx/activityservice/internal/wal"
)

// registerTestFactories installs the factories recovery tests rely on.
func registerTestFactories(s *Service) {
	s.RegisterSignalSetFactory("seq", func(params []byte) (SignalSet, error) {
		return NewSequenceSet(DefaultCompletionSet, string(params)), nil
	})
	s.RegisterActionFactory("ok", func(params []byte) (Action, error) {
		return ActionFunc(func(context.Context, Signal) (Outcome, error) {
			return Outcome{Name: "ok:" + string(params)}, nil
		}), nil
	})
}

func TestRecoverRebuildsInFlightTree(t *testing.T) {
	log := wal.NewMemory()
	svc := New(WithJournal(log))
	registerTestFactories(svc)

	root := svc.Begin("root")
	child, err := root.BeginChild("child")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := child.RegisterRecoverableSignalSet("seq", []byte("wrap-up")); err != nil {
		t.Fatal(err)
	}
	if _, err := child.AddRecoverableAction(DefaultCompletionSet, "ok", []byte("p1")); err != nil {
		t.Fatal(err)
	}
	if err := child.SetCompletionStatus(CompletionFail); err != nil {
		t.Fatal(err)
	}
	done, err := root.BeginChild("done-child")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := done.Complete(context.Background()); err != nil {
		t.Fatal(err)
	}

	// "Crash": rebuild a fresh service over the same durable log.
	snap, err := log.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	log2, err := wal.OpenMemory(snap)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := New()
	registerTestFactories(svc2)
	roots, err := svc2.Recover(log2)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 || roots[0].Name() != "root" {
		t.Fatalf("roots = %v", roots)
	}
	r := roots[0]
	if r.ID() != root.ID() {
		t.Fatal("root id not preserved")
	}
	kids := r.Children()
	if len(kids) != 1 || kids[0].Name() != "child" {
		t.Fatalf("children = %v (completed child must not be rebuilt)", kids)
	}
	rc := kids[0]
	if rc.CompletionStatus() != CompletionFail {
		t.Fatalf("child status = %s", rc.CompletionStatus())
	}
	// The recovered child can be driven to completion: its recoverable
	// SignalSet and Action are live again.
	out, err := rc.Complete(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "completed" {
		t.Fatalf("outcome = %+v", out)
	}
	set, ok := rc.SignalSet(DefaultCompletionSet)
	if !ok {
		t.Fatal("recovered set missing")
	}
	if rs := set.(*SequenceSet).Responses(); len(rs) != 1 || rs[0].Name != "ok:p1" {
		t.Fatalf("responses = %v", rs)
	}
	if _, err := r.Complete(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverSkipsFullyCompletedTrees(t *testing.T) {
	log := wal.NewMemory()
	svc := New(WithJournal(log))
	a := svc.Begin("A")
	if _, err := a.Complete(context.Background()); err != nil {
		t.Fatal(err)
	}
	svc2 := New()
	roots, err := svc2.Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 0 {
		t.Fatalf("roots = %v, want none", roots)
	}
}

func TestRecoverOrphanBecomesRoot(t *testing.T) {
	// A child whose parent completed before the crash is recovered as a
	// root of the forest.
	log := wal.NewMemory()
	svc := New(WithJournal(log))
	parent := svc.Begin("parent")
	child, _ := parent.BeginChild("child")
	_ = child // child stays in flight
	// Parent cannot complete with an active child, so simulate the
	// parent-completed journal state directly.
	svc.journal.completed(parent.ID(), CompletionSuccess, "success")

	svc2 := New()
	roots, err := svc2.Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 || roots[0].Name() != "child" {
		t.Fatalf("roots = %v", roots)
	}
}

func TestRecoverMissingFactoryFails(t *testing.T) {
	log := wal.NewMemory()
	svc := New(WithJournal(log))
	registerTestFactories(svc)
	a := svc.Begin("A")
	if _, err := a.RegisterRecoverableSignalSet("seq", []byte("x")); err != nil {
		t.Fatal(err)
	}
	svc2 := New() // no factories registered
	if _, err := svc2.Recover(log); err == nil {
		t.Fatal("recovery without factories succeeded")
	}
}

func TestRecoverableRegistrationRequiresFactory(t *testing.T) {
	svc := New(WithJournal(wal.NewMemory()))
	a := svc.Begin("A")
	if _, err := a.RegisterRecoverableSignalSet("ghost", nil); err == nil {
		t.Fatal("unknown set factory accepted")
	}
	if _, err := a.AddRecoverableAction("s", "ghost", nil); err == nil {
		t.Fatal("unknown action factory accepted")
	}
}

func TestJournalDisabledIsNoop(t *testing.T) {
	svc := New() // no journal
	a := svc.Begin("A")
	child, _ := a.BeginChild("c")
	_ = child.SetCompletionStatus(CompletionFail)
	if _, err := child.Complete(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Complete(context.Background()); err != nil {
		t.Fatal(err)
	}
}
