package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/trace"
)

// runBroadcast drives one freshly built protocol under the given policy and
// returns the encoded collated outcome plus the compact trace.
func runBroadcast(t *testing.T, policy DeliveryPolicy, nSignals, nActions int, latency func(i int) time.Duration) ([]byte, []string) {
	t.Helper()
	rec := trace.New()
	coord := newCoordinator("A", testGen(), rec, RetryPolicy{Attempts: 1}, policy, nil)
	for i := 0; i < nActions; i++ {
		i := i
		coord.AddNamedAction("s", fmt.Sprintf("act%d", i), ActionFunc(
			func(_ context.Context, sig Signal) (Outcome, error) {
				if latency != nil {
					if d := latency(i); d > 0 {
						time.Sleep(d)
					}
				}
				return Outcome{Name: fmt.Sprintf("ok-%d-%s", i, sig.Name)}, nil
			}))
	}
	var names []string
	for i := 0; i < nSignals; i++ {
		names = append(names, fmt.Sprintf("sig%d", i))
	}
	set := NewSequenceSet("s", names...).Collate(func(responses []Outcome) Outcome {
		parts := make([]string, len(responses))
		for i, r := range responses {
			parts[i] = r.Name
		}
		return Outcome{Name: "collated", Data: strings.Join(parts, ",")}
	})
	set.SetDelivery(policy)
	out, err := coord.ProcessSignalSet(context.Background(), set)
	if err != nil {
		t.Fatalf("ProcessSignalSet(%s): %v", policy.Mode, err)
	}
	e := cdr.NewEncoder(64)
	if err := out.Encode(e); err != nil {
		t.Fatalf("encode outcome: %v", err)
	}
	return append([]byte(nil), e.Bytes()...), rec.Sequence()
}

// TestDifferentialParallelMatchesSerial is the differential property test:
// for random protocol shapes over idempotent actions, serial and parallel
// delivery produce byte-identical collated outcomes and identical traces.
func TestDifferentialParallelMatchesSerial(t *testing.T) {
	f := func(nSignals, nActions, latSeed uint8) bool {
		a := int(nSignals%4) + 1
		n := int(nActions%16) + 1
		latency := func(i int) time.Duration {
			// Deterministic per-action jitter so fast/slow interleavings vary.
			return time.Duration((int(latSeed)+i*7)%5) * 100 * time.Microsecond
		}
		serialOut, serialTrace := runBroadcast(t, DeliveryPolicy{Mode: DeliverSerial}, a, n, latency)
		parallelOut, parallelTrace := runBroadcast(t, Parallel(), a, n, latency)
		if string(serialOut) != string(parallelOut) {
			t.Logf("outcome mismatch: serial=%x parallel=%x", serialOut, parallelOut)
			return false
		}
		if strings.Join(serialTrace, "\n") != strings.Join(parallelTrace, "\n") {
			t.Logf("trace mismatch:\nserial:\n%s\nparallel:\n%s",
				strings.Join(serialTrace, "\n"), strings.Join(parallelTrace, "\n"))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// voteAdvanceSet broadcasts one signal and advances as soon as it sees the
// outcome named "abort" (a miniature of the 2PC vote).
type voteAdvanceSet struct {
	BaseSet

	mu        sync.Mutex
	emitted   bool
	responses []Outcome
}

func newVoteAdvanceSet() *voteAdvanceSet { return &voteAdvanceSet{BaseSet: NewBaseSet("adv")} }

func (s *voteAdvanceSet) GetSignal() (Signal, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.emitted {
		return Signal{}, false, ErrExhausted
	}
	s.emitted = true
	return Signal{Name: "vote", SetName: "adv"}, true, nil
}

func (s *voteAdvanceSet) SetResponse(resp Outcome, deliveryErr error) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.responses = append(s.responses, resp)
	return resp.Name == "abort", nil
}

func (s *voteAdvanceSet) GetOutcome() (Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Outcome{Name: fmt.Sprintf("responses=%d", len(s.responses))}, nil
}

// TestParallelAdvanceShortCircuit verifies that an advancing response stops
// collation at the same point serial delivery would, discards speculative
// responses, and cancels in-flight stragglers through their context.
func TestParallelAdvanceShortCircuit(t *testing.T) {
	rec := trace.New()
	coord := newCoordinator("A", testGen(), rec, RetryPolicy{Attempts: 1}, Parallel(), nil)
	var cancelled atomic.Int32
	// act0 aborts immediately; the rest block until their context dies.
	coord.AddNamedAction("adv", "act0", ActionFunc(
		func(context.Context, Signal) (Outcome, error) {
			return Outcome{Name: "abort"}, nil
		}))
	for i := 1; i < 8; i++ {
		coord.AddNamedAction("adv", fmt.Sprintf("act%d", i), ActionFunc(
			func(ctx context.Context, _ Signal) (Outcome, error) {
				select {
				case <-ctx.Done():
					cancelled.Add(1)
					return Outcome{Name: "interrupted"}, nil
				case <-time.After(5 * time.Second):
					return Outcome{Name: "slept"}, nil
				}
			}))
	}
	set := newVoteAdvanceSet()
	start := time.Now()
	out, err := coord.ProcessSignalSet(context.Background(), set)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("broadcast took %s; stragglers were not cancelled", elapsed)
	}
	// Only act0's response was fed: the advance discards everything after it.
	if out.Name != "responses=1" {
		t.Fatalf("outcome = %q, want responses=1", out.Name)
	}
	if cancelled.Load() == 0 {
		t.Fatal("no straggler observed cancellation")
	}
	// The trace records only the fed delivery, like serial short-circuit.
	var transmits int
	for _, e := range rec.Events() {
		if e.Kind == trace.KindTransmit {
			transmits++
		}
	}
	if transmits != 1 {
		t.Fatalf("recorded %d transmits, want 1", transmits)
	}
}

// TestParallelRetryTraceMatchesSerial checks the replayed trace of a
// flaky-then-successful delivery matches serial recording exactly.
func TestParallelRetryTraceMatchesSerial(t *testing.T) {
	run := func(policy DeliveryPolicy) []string {
		rec := trace.New()
		coord := newCoordinator("A", testGen(), rec, RetryPolicy{Attempts: 3}, policy, nil)
		for i := 0; i < 3; i++ {
			var failures atomic.Int32
			coord.AddNamedAction("s", fmt.Sprintf("act%d", i), ActionFunc(
				func(context.Context, Signal) (Outcome, error) {
					if failures.Add(1) == 1 {
						return Outcome{}, errors.New("transient")
					}
					return Outcome{Name: "ok"}, nil
				}))
		}
		set := NewSequenceSet("s", "ping")
		if _, err := coord.ProcessSignalSet(context.Background(), set); err != nil {
			t.Fatal(err)
		}
		return rec.Sequence()
	}
	serial := run(DeliveryPolicy{Mode: DeliverSerial})
	parallel := run(Parallel())
	if strings.Join(serial, "\n") != strings.Join(parallel, "\n") {
		t.Fatalf("trace mismatch:\nserial:\n%s\nparallel:\n%s",
			strings.Join(serial, "\n"), strings.Join(parallel, "\n"))
	}
}

// concurrencyProbe counts how many actions run simultaneously.
type concurrencyProbe struct {
	cur atomic.Int32
	max atomic.Int32
}

func (p *concurrencyProbe) action() Action {
	return ActionFunc(func(context.Context, Signal) (Outcome, error) {
		c := p.cur.Add(1)
		for {
			m := p.max.Load()
			if c <= m || p.max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		p.cur.Add(-1)
		return Outcome{Name: "ok"}, nil
	})
}

// TestDeliveryPolicyResolution verifies the per-Service default applies and
// a set-level policy overrides it, by observing actual concurrency.
func TestDeliveryPolicyResolution(t *testing.T) {
	run := func(svcPolicy, setPolicy DeliveryPolicy) int32 {
		svc := New(WithDelivery(svcPolicy))
		a := svc.Begin("probe")
		probe := &concurrencyProbe{}
		set := NewSequenceSet("s", "ping")
		set.SetDelivery(setPolicy)
		if err := a.RegisterSignalSet(set); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if _, err := a.AddAction("s", probe.action()); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := a.Signal(context.Background(), "s"); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Complete(context.Background()); err != nil {
			t.Fatal(err)
		}
		return probe.max.Load()
	}

	if got := run(Parallel(), DeliveryPolicy{}); got < 2 {
		t.Errorf("service-wide parallel: max concurrency = %d, want >= 2", got)
	}
	if got := run(DeliveryPolicy{}, Parallel()); got < 2 {
		t.Errorf("set-level parallel: max concurrency = %d, want >= 2", got)
	}
	if got := run(Parallel(), DeliveryPolicy{Mode: DeliverSerial}); got != 1 {
		t.Errorf("set-level serial override: max concurrency = %d, want 1", got)
	}
	if got := run(DeliveryPolicy{}, DeliveryPolicy{}); got != 1 {
		t.Errorf("default: max concurrency = %d, want 1", got)
	}
}

// TestParallelWorkerBound verifies MaxWorkers caps in-flight deliveries.
func TestParallelWorkerBound(t *testing.T) {
	coord := newCoordinator("A", testGen(), nil, RetryPolicy{Attempts: 1},
		DeliveryPolicy{Mode: DeliverParallel, MaxWorkers: 3}, nil)
	probe := &concurrencyProbe{}
	for i := 0; i < 16; i++ {
		coord.AddAction("s", probe.action())
	}
	set := NewSequenceSet("s", "ping")
	if _, err := coord.ProcessSignalSet(context.Background(), set); err != nil {
		t.Fatal(err)
	}
	if got := probe.max.Load(); got > 3 {
		t.Fatalf("max concurrency = %d, want <= 3", got)
	}
	if got := probe.max.Load(); got < 2 {
		t.Fatalf("max concurrency = %d, want >= 2 (pool not parallel at all)", got)
	}
}

// TestPolicyWorkersResolution pins the worker-bound arithmetic.
func TestPolicyWorkersResolution(t *testing.T) {
	if got := (DeliveryPolicy{MaxWorkers: 4}).workers(100); got != 4 {
		t.Errorf("explicit bound: %d, want 4", got)
	}
	if got := (DeliveryPolicy{MaxWorkers: 200}).workers(100); got != 100 {
		t.Errorf("bound capped at fanout: %d, want 100", got)
	}
	if got := (DeliveryPolicy{}).workers(8); got != 8 {
		t.Errorf("default capped at fanout: %d, want 8", got)
	}
	if got := (DeliveryPolicy{}).workers(10000); got < 16 {
		t.Errorf("default floor: %d, want >= 16", got)
	}
}

// TestParallelDeliveryErrorFeedsSet verifies a failed delivery reaches the
// set as a delivery error under parallel mode, exactly like serial.
func TestParallelDeliveryErrorFeedsSet(t *testing.T) {
	for _, policy := range []DeliveryPolicy{{Mode: DeliverSerial}, Parallel()} {
		coord := newCoordinator("A", testGen(), nil, RetryPolicy{Attempts: 1}, policy, nil)
		coord.AddNamedAction("s", "good", ActionFunc(
			func(context.Context, Signal) (Outcome, error) {
				return Outcome{Name: "ok"}, nil
			}))
		coord.AddNamedAction("s", "bad", ActionFunc(
			func(context.Context, Signal) (Outcome, error) {
				return Outcome{}, errors.New("boom")
			}))
		set := NewSequenceSet("s", "ping")
		if _, err := coord.ProcessSignalSet(context.Background(), set); err != nil {
			t.Fatalf("%s: %v", policy.Mode, err)
		}
		resp := set.Responses()
		if len(resp) != 2 {
			t.Fatalf("%s: %d responses, want 2", policy.Mode, len(resp))
		}
		if resp[0].Name != "ok" || resp[1].Name != "delivery-error" {
			t.Fatalf("%s: responses = %v", policy.Mode, resp)
		}
	}
}

// TestSpeculativeDeliveryAccounting verifies the Service-wide accounting
// of parallel deliveries discarded by an advance: an advancing vote with
// three stragglers already in flight counts exactly three discarded
// responses, and serial delivery (which never speculates) adds nothing.
func TestSpeculativeDeliveryAccounting(t *testing.T) {
	const stragglers = 3
	svc := New(WithDelivery(Parallel()))
	a := svc.Begin("speculative")
	set := newVoteAdvanceSet()
	if err := a.RegisterSignalSet(set); err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, stragglers)
	// act0 advances the set — but only after every straggler has received
	// the signal, so the discard count is deterministic.
	if _, err := a.AddNamedAction("adv", "act0", ActionFunc(
		func(context.Context, Signal) (Outcome, error) {
			for i := 0; i < stragglers; i++ {
				<-started
			}
			return Outcome{Name: "abort"}, nil
		})); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= stragglers; i++ {
		if _, err := a.AddNamedAction("adv", fmt.Sprintf("act%d", i), ActionFunc(
			func(ctx context.Context, _ Signal) (Outcome, error) {
				started <- struct{}{}
				<-ctx.Done() // run until the advance cancels the broadcast
				return Outcome{Name: "late"}, nil
			})); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Signal(context.Background(), "adv"); err != nil {
		t.Fatal(err)
	}
	st := svc.DeliveryStats()
	if st.DiscardedResponses != stragglers || st.SkippedDeliveries != 0 || st.CancelledDeliveries != 0 {
		t.Fatalf("stats = %+v, want exactly %d discarded responses", st, stragglers)
	}
	if st.Total() != stragglers {
		t.Fatalf("Total() = %d, want %d", st.Total(), stragglers)
	}

	// Serial delivery stops transmitting at the advance: nothing
	// speculative to account for.
	b := svc.Begin("serial", WithActivityDelivery(DeliveryPolicy{Mode: DeliverSerial}))
	sset := newVoteAdvanceSet()
	if err := b.RegisterSignalSet(sset); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddNamedAction("adv", "abort0", ActionFunc(
		func(context.Context, Signal) (Outcome, error) {
			return Outcome{Name: "abort"}, nil
		})); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddNamedAction("adv", "never", ActionFunc(
		func(context.Context, Signal) (Outcome, error) {
			t.Error("serial delivery transmitted past an advance")
			return Outcome{}, nil
		})); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Signal(context.Background(), "adv"); err != nil {
		t.Fatal(err)
	}
	if got := svc.DeliveryStats(); got != st {
		t.Fatalf("serial broadcast changed stats: %+v -> %+v", st, got)
	}
}
