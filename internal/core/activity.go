package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/extendedtx/activityservice/internal/ids"
	"github.com/extendedtx/activityservice/internal/trace"
)

// Activity lifecycle errors.
var (
	// ErrActivityInactive reports an operation on a completed (or
	// completing) activity.
	ErrActivityInactive = errors.New("core: activity is not active")
	// ErrActivitySuspended reports signalling or completing a suspended
	// activity.
	ErrActivitySuspended = errors.New("core: activity is suspended")
	// ErrChildrenActive reports completing an activity whose child
	// activities have not completed.
	ErrChildrenActive = errors.New("core: child activities still active")
	// ErrDuplicateSignalSet reports registering a second set with the same
	// name on one activity.
	ErrDuplicateSignalSet = errors.New("core: signal set already registered")
)

// ActivityState is an activity's lifecycle state.
type ActivityState int

// Activity lifecycle states: an activity is created, made to run, possibly
// suspended and resumed, and then completed (§3.1).
const (
	ActivityActive ActivityState = iota + 1
	ActivitySuspended
	ActivityCompleting
	ActivityCompleted
)

// String returns the state name.
func (s ActivityState) String() string {
	switch s {
	case ActivityActive:
		return "active"
	case ActivitySuspended:
		return "suspended"
	case ActivityCompleting:
		return "completing"
	case ActivityCompleted:
		return "completed"
	default:
		return fmt.Sprintf("ActivityState(%d)", int(s))
	}
}

// DefaultCompletionSet is the signal-set name driven by Complete when the
// activity has not chosen another with SetCompletionSet. It matches the
// paper's CompletionSignalSet convention (§4.2).
const DefaultCompletionSet = "completion"

// Activity is a unit of (distributed) work that may or may not be
// transactional (§3.1). Each activity has a coordinator through which
// Actions register interest in SignalSets; signals may be transmitted at
// arbitrary points in its lifetime, not just completion.
type Activity struct {
	svc      *Service
	id       ids.UID
	name     string
	parent   *Activity
	coord    *Coordinator
	timer    *time.Timer
	delivery DeliveryPolicy // per-activity override (WithActivityDelivery)

	mu            sync.Mutex
	state         ActivityState
	cs            CompletionStatus
	children      map[ids.UID]*Activity
	sets          map[string]SignalSet
	pgroups       map[string]PropertyGroup
	completionSet string
	outcome       Outcome
	hasOutcome    bool
}

// ID returns the globally unique activity identifier.
func (a *Activity) ID() ids.UID { return a.id }

// Name returns the human-readable name used in traces ("t1", "A", ...).
func (a *Activity) Name() string { return a.name }

// Parent returns the enclosing activity, nil for a root.
func (a *Activity) Parent() *Activity { return a.parent }

// Coordinator returns the activity's coordinator.
func (a *Activity) Coordinator() *Coordinator { return a.coord }

// State returns the lifecycle state.
func (a *Activity) State() ActivityState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.state
}

// CompletionStatus returns the status the activity would complete with now.
func (a *Activity) CompletionStatus() CompletionStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cs
}

// SetCompletionStatus changes the prospective completion status. Once
// FailOnly, the status cannot change (§3.2.1).
func (a *Activity) SetCompletionStatus(cs CompletionStatus) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.state == ActivityCompleted || a.state == ActivityCompleting {
		return fmt.Errorf("%w: %s", ErrActivityInactive, a.name)
	}
	if a.cs == CompletionFailOnly && cs != CompletionFailOnly {
		return fmt.Errorf("%w: %s", ErrCompletionStatusFixed, a.name)
	}
	a.cs = cs
	a.svc.journal.statusSet(a.id, cs)
	return nil
}

// RegisterSignalSet associates a SignalSet with the activity. Each activity
// may use any number of sets over its lifetime, each registered once.
func (a *Activity) RegisterSignalSet(set SignalSet) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.state == ActivityCompleted {
		return fmt.Errorf("%w: %s", ErrActivityInactive, a.name)
	}
	if _, dup := a.sets[set.Name()]; dup {
		return fmt.Errorf("%w: %q on %s", ErrDuplicateSignalSet, set.Name(), a.name)
	}
	a.sets[set.Name()] = set
	return nil
}

// SignalSet returns the registered set with the given name.
func (a *Activity) SignalSet(name string) (SignalSet, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.sets[name]
	return s, ok
}

// SetCompletionSet chooses which registered SignalSet Complete drives.
func (a *Activity) SetCompletionSet(name string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.completionSet = name
}

// AddAction registers action with the named SignalSet through the
// coordinator. The set does not need to be registered yet: per §3.2.3 the
// set of Signals cannot be known beforehand, so Actions register interest
// in a SignalSet by name.
func (a *Activity) AddAction(setName string, action Action) (ActionID, error) {
	if st := a.State(); st == ActivityCompleted || st == ActivityCompleting {
		return ActionID{}, fmt.Errorf("%w: %s", ErrActivityInactive, a.name)
	}
	return a.coord.AddAction(setName, action), nil
}

// AddNamedAction is AddAction with an explicit trace label.
func (a *Activity) AddNamedAction(setName, label string, action Action) (ActionID, error) {
	if st := a.State(); st == ActivityCompleted || st == ActivityCompleting {
		return ActionID{}, fmt.Errorf("%w: %s", ErrActivityInactive, a.name)
	}
	return a.coord.AddNamedAction(setName, label, action), nil
}

// RemoveAction cancels a registration.
func (a *Activity) RemoveAction(setName string, id ActionID) bool {
	return a.coord.RemoveAction(setName, id)
}

// Suspend pauses the activity; a suspended activity rejects signalling,
// completion and child creation until resumed (§3.1: activities can run
// over long periods and be suspended and resumed).
func (a *Activity) Suspend() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.state != ActivityActive {
		return fmt.Errorf("%w: cannot suspend %s in state %s", ErrActivityInactive, a.name, a.state)
	}
	a.state = ActivitySuspended
	return nil
}

// Resume reactivates a suspended activity.
func (a *Activity) Resume() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.state != ActivitySuspended {
		return fmt.Errorf("%w: cannot resume %s in state %s", ErrActivityInactive, a.name, a.state)
	}
	a.state = ActivityActive
	return nil
}

// BeginChild starts a nested activity. Property groups are derived
// according to each group's nesting behaviour.
func (a *Activity) BeginChild(name string, opts ...BeginOption) (*Activity, error) {
	a.mu.Lock()
	if a.state != ActivityActive {
		st := a.state
		a.mu.Unlock()
		return nil, fmt.Errorf("%w: cannot nest under %s in state %s", ErrActivityInactive, a.name, st)
	}
	a.mu.Unlock()

	child := a.svc.newActivity(name, a, opts...)

	a.mu.Lock()
	if a.state != ActivityActive {
		st := a.state
		a.mu.Unlock()
		// The parent changed state while the child was being built (e.g. a
		// concurrent Suspend or Complete): unwind the stillborn child so it
		// does not leak in the live registry.
		if child.timer != nil {
			child.timer.Stop()
		}
		a.svc.forget(child)
		return nil, fmt.Errorf("%w: cannot nest under %s in state %s", ErrActivityInactive, a.name, st)
	}
	a.children[child.id] = child
	// Derive property groups into the child.
	for name, pg := range a.pgroups {
		child.pgroups[name] = deriveChild(pg)
	}
	a.mu.Unlock()

	a.svc.journal.begun(child.id, a.id, name)
	a.svc.rec.Record(trace.KindBegin, name, "", "", "child of "+a.name)
	return child, nil
}

// Children returns a snapshot of the child activities.
func (a *Activity) Children() []*Activity {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*Activity, 0, len(a.children))
	for _, c := range a.children {
		out = append(out, c)
	}
	return out
}

// activeChildren lists children not yet completed.
func (a *Activity) activeChildren() []*Activity {
	var out []*Activity
	for _, c := range a.Children() {
		if c.State() != ActivityCompleted {
			out = append(out, c)
		}
	}
	return out
}

// Signal drives the named registered SignalSet immediately — the paper's
// "Signals may be communicated at arbitrary points during the lifetime of
// an activity and not just when it terminates" (§3.1). The set is told the
// activity's current completion status before the protocol runs.
func (a *Activity) Signal(ctx context.Context, setName string) (Outcome, error) {
	a.mu.Lock()
	switch a.state {
	case ActivityActive:
	case ActivitySuspended:
		a.mu.Unlock()
		return Outcome{}, fmt.Errorf("%w: %s", ErrActivitySuspended, a.name)
	default:
		st := a.state
		a.mu.Unlock()
		return Outcome{}, fmt.Errorf("%w: %s in state %s", ErrActivityInactive, a.name, st)
	}
	set, ok := a.sets[setName]
	cs := a.cs
	a.mu.Unlock()
	if !ok {
		return Outcome{}, fmt.Errorf("%w: %q on %s", ErrUnknownSignalSet, setName, a.name)
	}
	set.SetCompletionStatus(cs)
	return a.coord.ProcessSignalSet(ctx, set)
}

// Complete finishes the activity with its current completion status,
// driving the completion SignalSet (if one is registered) and recording
// the collated outcome. All child activities must have completed.
func (a *Activity) Complete(ctx context.Context) (Outcome, error) {
	if kids := a.activeChildren(); len(kids) > 0 {
		names := make([]string, 0, len(kids))
		for _, k := range kids {
			names = append(names, k.name)
		}
		return Outcome{}, fmt.Errorf("%w: %s has %v", ErrChildrenActive, a.name, names)
	}

	a.mu.Lock()
	switch a.state {
	case ActivityActive:
	case ActivitySuspended:
		a.mu.Unlock()
		return Outcome{}, fmt.Errorf("%w: %s", ErrActivitySuspended, a.name)
	default:
		st := a.state
		a.mu.Unlock()
		return Outcome{}, fmt.Errorf("%w: %s in state %s", ErrActivityInactive, a.name, st)
	}
	a.state = ActivityCompleting
	cs := a.cs
	setName := a.completionSet
	if setName == "" {
		setName = DefaultCompletionSet
	}
	set, hasSet := a.sets[setName]
	a.mu.Unlock()

	if a.timer != nil {
		a.timer.Stop()
	}

	outcome := Outcome{Name: defaultOutcomeName(cs)}
	var err error
	if hasSet {
		set.SetCompletionStatus(cs)
		outcome, err = a.coord.ProcessSignalSet(ctx, set)
	}

	a.mu.Lock()
	a.state = ActivityCompleted
	a.outcome = outcome
	a.hasOutcome = err == nil
	a.mu.Unlock()

	a.svc.journal.completed(a.id, cs, outcome.Name)
	a.svc.rec.Record(trace.KindComplete, a.name, "", outcome.Name, cs.String())
	a.svc.forget(a)
	if err != nil {
		return Outcome{}, fmt.Errorf("core: complete %s: %w", a.name, err)
	}
	return outcome, nil
}

// CompleteWithStatus sets the completion status, then completes.
func (a *Activity) CompleteWithStatus(ctx context.Context, cs CompletionStatus) (Outcome, error) {
	if err := a.SetCompletionStatus(cs); err != nil {
		return Outcome{}, err
	}
	return a.Complete(ctx)
}

// Outcome returns the recorded completion outcome once completed.
func (a *Activity) Outcome() (Outcome, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.outcome, a.hasOutcome
}

func defaultOutcomeName(cs CompletionStatus) string {
	if cs == CompletionSuccess {
		return "success"
	}
	return "failure"
}
