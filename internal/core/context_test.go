package core

import (
	"context"
	"testing"
)

func TestContextCarriesActivity(t *testing.T) {
	svc := New()
	a := svc.Begin("A")
	ctx := NewContext(context.Background(), a)
	got, ok := FromContext(ctx)
	if !ok || got != a {
		t.Fatal("context does not carry activity")
	}
	if _, ok := FromContext(context.Background()); ok {
		t.Fatal("empty context carries an activity")
	}
	// A popped (nil) activity reads as absent.
	if _, ok := FromContext(NewContext(ctx, nil)); ok {
		t.Fatal("nil activity reads as present")
	}
}

func TestPropagationContextLineage(t *testing.T) {
	svc := New()
	root := svc.Begin("root")
	child, _ := root.BeginChild("child")
	grand, _ := child.BeginChild("grand")

	pc, err := grand.PropagationContext()
	if err != nil {
		t.Fatal(err)
	}
	if len(pc.Path) != 3 {
		t.Fatalf("path = %+v", pc.Path)
	}
	wantNames := []string{"root", "child", "grand"}
	for i, e := range pc.Path {
		if e.Name != wantNames[i] {
			t.Fatalf("path[%d] = %q, want %q", i, e.Name, wantNames[i])
		}
	}
	if pc.ActivityID() != grand.ID() {
		t.Fatal("ActivityID is not the innermost")
	}
}

func TestPropagationContextCarriesByValueGroups(t *testing.T) {
	svc := New()
	a := svc.Begin("A")
	byValue := NewTupleSpace("env", VisibilityShared, PropagateByValue)
	_ = byValue.Set("locale", "en_GB")
	byRef := NewTupleSpace("session", VisibilityShared, PropagateByReference)
	_ = byRef.Set("token", "secret")
	local := NewTupleSpace("scratch", VisibilityShared, PropagateNone)
	_ = local.Set("tmp", int64(1))
	_ = a.AddPropertyGroup(byValue)
	_ = a.AddPropertyGroup(byRef)
	_ = a.AddPropertyGroup(local)

	pc, err := a.PropagationContext()
	if err != nil {
		t.Fatal(err)
	}
	if len(pc.Properties) != 1 {
		t.Fatalf("properties = %+v, want only by-value groups", pc.Properties)
	}
	if pc.Properties["env"]["locale"] != "en_GB" {
		t.Fatalf("env = %+v", pc.Properties["env"])
	}
}

func TestPropagationContextMarshalRoundTrip(t *testing.T) {
	svc := New()
	root := svc.Begin("root")
	child, _ := root.BeginChild("child")
	pg := NewTupleSpace("env", VisibilityShared, PropagateByValue)
	_ = pg.Set("k", int64(7))
	_ = child.AddPropertyGroup(pg)

	pc, err := child.PropagationContext()
	if err != nil {
		t.Fatal(err)
	}
	b, err := pc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPropagationContext(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Path) != 2 || got.Path[0].Name != "root" || got.Path[1].Name != "child" {
		t.Fatalf("path = %+v", got.Path)
	}
	if got.Path[1].ID != child.ID() {
		t.Fatal("child id corrupted")
	}
	if got.Properties["env"]["k"] != int64(7) {
		t.Fatalf("properties = %+v", got.Properties)
	}
}

func TestPropagationContextRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalPropagationContext([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := UnmarshalPropagationContext(nil); err == nil {
		t.Fatal("empty accepted")
	}
}
