package core

import (
	"errors"
	"fmt"
	"sync"
)

// SignalSet errors.
var (
	// ErrSignalSetActive is raised by GetOutcome before the set reaches the
	// End state (the IDL's SignalSetActive exception).
	ErrSignalSetActive = errors.New("core: signal set is still active")
	// ErrSignalSetInactive is raised by SetResponse after the set reached
	// the End state (the IDL's SignalSetInactive exception).
	ErrSignalSetInactive = errors.New("core: signal set has ended")
	// ErrExhausted is returned by GetSignal when the set has no signal to
	// send, moving it straight to the End state (fig. 7's Waiting→End
	// transition).
	ErrExhausted = errors.New("core: signal set has no further signals")
	// ErrCompletionStatusFixed reports an attempt to change a FailOnly
	// completion status.
	ErrCompletionStatusFixed = errors.New("core: completion status is fail-only")
)

// SignalSet generates the Signals a coordinator distributes and collates
// the responses, per the paper's IDL:
//
//	interface SignalSet {
//	    readonly attribute string signal_set_name;
//	    Signal get_signal (inout boolean lastSignal);
//	    Outcome get_outcome () raises(SignalSetActive);
//	    boolean set_response (in Outcome response, out boolean nextSignal)
//	                          raises (SignalSetInactive);
//	    void set_completion_status (in CompletionStatus cs);
//	    CompletionStatus get_completion_status ();
//	};
//
// The coordinator drives the fig. 7 state machine: it calls GetSignal,
// broadcasts the returned signal to every registered Action, feeds each
// action's outcome back with SetResponse, and asks for the next signal when
// the broadcast finishes or the set requests early advance. GetOutcome is
// valid only once the set has ended.
type SignalSet interface {
	// Name returns the signal_set_name.
	Name() string
	// GetSignal returns the next signal to broadcast. last reports whether
	// this is the final signal (the set ends after its broadcast, unless an
	// early advance produces another). ErrExhausted means the set has
	// nothing (more) to send.
	GetSignal() (sig Signal, last bool, err error)
	// SetResponse feeds one action's outcome (or delivery error) back.
	// advance=true asks the coordinator to stop the current broadcast and
	// request a new signal immediately.
	SetResponse(resp Outcome, deliveryErr error) (advance bool, err error)
	// GetOutcome collates the protocol result; only valid after the set has
	// ended (otherwise ErrSignalSetActive).
	GetOutcome() (Outcome, error)
	// SetCompletionStatus tells the set which way the activity is
	// completing, so it can choose its signals accordingly.
	SetCompletionStatus(cs CompletionStatus)
	// CompletionStatus returns the last status given to the set.
	CompletionStatus() CompletionStatus
}

// SetState is a SignalSet's protocol state, per fig. 7.
type SetState int

// SignalSet states (fig. 7).
const (
	// StateWaiting: created, not yet asked for a signal.
	StateWaiting SetState = iota + 1
	// StateGetSignal: actively producing signals.
	StateGetSignal
	// StateEnd: finished; cannot produce signals and will not be reused.
	StateEnd
)

// String returns the fig. 7 state name.
func (s SetState) String() string {
	switch s {
	case StateWaiting:
		return "Waiting"
	case StateGetSignal:
		return "GetSignal"
	case StateEnd:
		return "End"
	default:
		return fmt.Sprintf("SetState(%d)", int(s))
	}
}

// setDriver wraps a SignalSet with the fig. 7 state machine, enforcing
// that a set is never reused after End and that GetOutcome only runs in
// End.
type setDriver struct {
	set SignalSet

	mu    sync.Mutex
	state SetState
}

func newSetDriver(set SignalSet) *setDriver {
	return &setDriver{set: set, state: StateWaiting}
}

func (d *setDriver) State() SetState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// getSignal transitions Waiting/GetSignal → GetSignal, or → End when the
// set is exhausted.
func (d *setDriver) getSignal() (Signal, bool, error) {
	d.mu.Lock()
	if d.state == StateEnd {
		d.mu.Unlock()
		return Signal{}, false, fmt.Errorf("%w: get_signal after End", ErrSignalSetInactive)
	}
	d.mu.Unlock()

	sig, last, err := d.set.GetSignal()
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case errors.Is(err, ErrExhausted):
		d.state = StateEnd
		return Signal{}, false, err
	case err != nil:
		d.state = StateEnd
		return Signal{}, false, err
	default:
		d.state = StateGetSignal
		return sig, last, nil
	}
}

func (d *setDriver) setResponse(resp Outcome, deliveryErr error) (bool, error) {
	d.mu.Lock()
	if d.state != StateGetSignal {
		st := d.state
		d.mu.Unlock()
		return false, fmt.Errorf("%w: set_response in state %s", ErrSignalSetInactive, st)
	}
	d.mu.Unlock()
	return d.set.SetResponse(resp, deliveryErr)
}

// end transitions to End after the last signal's broadcast.
func (d *setDriver) end() {
	d.mu.Lock()
	d.state = StateEnd
	d.mu.Unlock()
}

func (d *setDriver) getOutcome() (Outcome, error) {
	d.mu.Lock()
	if d.state != StateEnd {
		st := d.state
		d.mu.Unlock()
		return Outcome{}, fmt.Errorf("%w: get_outcome in state %s", ErrSignalSetActive, st)
	}
	d.mu.Unlock()
	return d.set.GetOutcome()
}

// BaseSet provides the completion-status bookkeeping every SignalSet
// needs; embed it (unexported-field style) via composition in model
// implementations. It also carries the set's delivery preference: a set
// opted in with SetDelivery overrides the Service-wide policy for its own
// broadcasts (it implements DeliveryPolicyProvider).
type BaseSet struct {
	name string

	mu       sync.Mutex
	cs       CompletionStatus
	delivery DeliveryPolicy
}

// NewBaseSet returns a BaseSet with the given name and a Success status.
func NewBaseSet(name string) BaseSet {
	return BaseSet{name: name, cs: CompletionSuccess}
}

// Name implements SignalSet.
func (b *BaseSet) Name() string { return b.name }

// SetCompletionStatus implements SignalSet.
func (b *BaseSet) SetCompletionStatus(cs CompletionStatus) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cs == CompletionFailOnly {
		return // fail-only is sticky, per §3.2.1
	}
	b.cs = cs
}

// CompletionStatus implements SignalSet.
func (b *BaseSet) CompletionStatus() CompletionStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cs
}

// SetDelivery opts every broadcast of this set into the given delivery
// policy, overriding the Service-wide default. The zero policy restores
// "no preference" (inherit the Service's).
func (b *BaseSet) SetDelivery(p DeliveryPolicy) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.delivery = p
}

// Delivery implements DeliveryPolicyProvider.
func (b *BaseSet) Delivery() DeliveryPolicy {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.delivery
}

// SequenceSet is a ready-made SignalSet that sends a fixed sequence of
// signals, one broadcast each, and collates a fixed outcome. It is the
// simplest useful SignalSet and the building block of several tests and
// examples.
type SequenceSet struct {
	BaseSet

	mu        sync.Mutex
	signals   []Signal
	idx       int
	responses []Outcome
	outcome   Outcome
	// Collate, when non-nil, computes the final outcome from all responses.
	collate func(responses []Outcome) Outcome
}

var _ SignalSet = (*SequenceSet)(nil)

// NewSequenceSet returns a SignalSet named name that broadcasts the given
// signal names in order. The final outcome is "completed" unless a collate
// function is set with Collate.
func NewSequenceSet(name string, signalNames ...string) *SequenceSet {
	s := &SequenceSet{BaseSet: NewBaseSet(name)}
	for _, sn := range signalNames {
		s.signals = append(s.signals, Signal{Name: sn, SetName: name})
	}
	s.outcome = Outcome{Name: "completed"}
	return s
}

// Collate sets the response-collation function and returns the set.
func (s *SequenceSet) Collate(fn func(responses []Outcome) Outcome) *SequenceSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.collate = fn
	return s
}

// GetSignal implements SignalSet.
func (s *SequenceSet) GetSignal() (Signal, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.idx >= len(s.signals) {
		return Signal{}, false, ErrExhausted
	}
	sig := s.signals[s.idx]
	s.idx++
	return sig, s.idx == len(s.signals), nil
}

// SetResponse implements SignalSet.
func (s *SequenceSet) SetResponse(resp Outcome, deliveryErr error) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if deliveryErr != nil {
		resp = Outcome{Name: "delivery-error", Data: deliveryErr.Error()}
	}
	s.responses = append(s.responses, resp)
	return false, nil
}

// GetOutcome implements SignalSet.
func (s *SequenceSet) GetOutcome() (Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.collate != nil {
		return s.collate(append([]Outcome(nil), s.responses...)), nil
	}
	return s.outcome, nil
}

// Responses returns a copy of all responses received so far.
func (s *SequenceSet) Responses() []Outcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Outcome(nil), s.responses...)
}
