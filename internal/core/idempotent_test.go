package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"github.com/extendedtx/activityservice/internal/ots"
)

func TestIdempotentDeduplicates(t *testing.T) {
	var invocations atomic.Int32
	inner := ActionFunc(func(_ context.Context, sig Signal) (Outcome, error) {
		invocations.Add(1)
		return Outcome{Name: "done"}, nil
	})
	a := Idempotent(inner)
	sig := Signal{Name: "prepare", SetName: "2pc", Data: int64(1)}
	for i := 0; i < 5; i++ {
		out, err := a.ProcessSignal(context.Background(), sig)
		if err != nil {
			t.Fatal(err)
		}
		if out.Name != "done" {
			t.Fatalf("outcome = %+v", out)
		}
	}
	if invocations.Load() != 1 {
		t.Fatalf("inner invoked %d times, want 1", invocations.Load())
	}
}

func TestIdempotentDistinguishesSignals(t *testing.T) {
	var invocations atomic.Int32
	a := Idempotent(ActionFunc(func(_ context.Context, sig Signal) (Outcome, error) {
		invocations.Add(1)
		return Outcome{Name: sig.Name}, nil
	}))
	ctx := context.Background()
	_, _ = a.ProcessSignal(ctx, Signal{Name: "prepare", SetName: "s"})
	_, _ = a.ProcessSignal(ctx, Signal{Name: "commit", SetName: "s"})
	_, _ = a.ProcessSignal(ctx, Signal{Name: "prepare", SetName: "other"})
	_, _ = a.ProcessSignal(ctx, Signal{Name: "prepare", SetName: "s", Data: "different"})
	if invocations.Load() != 4 {
		t.Fatalf("inner invoked %d times, want 4 distinct", invocations.Load())
	}
}

func TestIdempotentRetriesFailures(t *testing.T) {
	var invocations atomic.Int32
	a := Idempotent(ActionFunc(func(context.Context, Signal) (Outcome, error) {
		if invocations.Add(1) == 1 {
			return Outcome{}, errors.New("transient")
		}
		return Outcome{Name: "ok"}, nil
	}))
	ctx := context.Background()
	sig := Signal{Name: "x", SetName: "s"}
	if _, err := a.ProcessSignal(ctx, sig); err == nil {
		t.Fatal("first delivery should fail")
	}
	// Failure was not memoized: the retry reaches the inner action.
	out, err := a.ProcessSignal(ctx, sig)
	if err != nil || out.Name != "ok" {
		t.Fatalf("retry: out=%+v err=%v", out, err)
	}
}

func TestIdempotentUnderAtLeastOnceCoordinator(t *testing.T) {
	// End to end: a coordinator with retries delivering to a flaky action
	// wrapped in Idempotent applies the effect exactly once per signal.
	var effects atomic.Int32
	flakyFirst := true
	inner := ActionFunc(func(_ context.Context, sig Signal) (Outcome, error) {
		if flakyFirst {
			flakyFirst = false
			return Outcome{}, errors.New("dropped")
		}
		effects.Add(1)
		return Outcome{Name: "applied"}, nil
	})
	coord := newCoordinator("A", testGen(), nil, RetryPolicy{Attempts: 3}, DeliveryPolicy{}, nil)
	coord.AddAction("s", Idempotent(inner))
	set := NewSequenceSet("s", "one", "two")
	if _, err := coord.ProcessSignalSet(context.Background(), set); err != nil {
		t.Fatal(err)
	}
	if effects.Load() != 2 {
		t.Fatalf("effects = %d, want 2 (one per distinct signal)", effects.Load())
	}
}

func TestExactlyOnceCommitsEffect(t *testing.T) {
	txsvc := ots.NewService()
	var effects atomic.Int32
	a := ExactlyOnce(txsvc, ActionFunc(func(ctx context.Context, sig Signal) (Outcome, error) {
		if _, ok := ots.FromContext(ctx); !ok {
			t.Error("inner action did not run inside a transaction")
		}
		effects.Add(1)
		return Outcome{Name: "applied"}, nil
	}))
	ctx := context.Background()
	sig := Signal{Name: "do", SetName: "s"}
	for i := 0; i < 3; i++ {
		out, err := a.ProcessSignal(ctx, sig)
		if err != nil {
			t.Fatal(err)
		}
		if out.Name != "applied" {
			t.Fatalf("outcome = %+v", out)
		}
	}
	if effects.Load() != 1 {
		t.Fatalf("effects = %d, want 1", effects.Load())
	}
	if txsvc.Inflight() != 0 {
		t.Fatalf("inflight transactions = %d", txsvc.Inflight())
	}
}

func TestExactlyOnceRollsBackOnFailure(t *testing.T) {
	txsvc := ots.NewService()
	calls := 0
	a := ExactlyOnce(txsvc, ActionFunc(func(context.Context, Signal) (Outcome, error) {
		calls++
		if calls == 1 {
			return Outcome{}, errors.New("boom")
		}
		return Outcome{Name: "second-try"}, nil
	}))
	ctx := context.Background()
	sig := Signal{Name: "do", SetName: "s"}
	if _, err := a.ProcessSignal(ctx, sig); err == nil {
		t.Fatal("failure swallowed")
	}
	// Nothing memoized: a redelivery re-runs the action.
	out, err := a.ProcessSignal(ctx, sig)
	if err != nil || out.Name != "second-try" {
		t.Fatalf("out=%+v err=%v", out, err)
	}
	if txsvc.Inflight() != 0 {
		t.Fatalf("inflight transactions = %d", txsvc.Inflight())
	}
}
