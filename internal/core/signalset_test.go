package core

import (
	"context"
	"errors"
	"testing"
)

func TestSequenceSetProducesSignalsInOrder(t *testing.T) {
	s := NewSequenceSet("proto", "first", "second", "third")
	for i, want := range []string{"first", "second", "third"} {
		sig, last, err := s.GetSignal()
		if err != nil {
			t.Fatalf("signal %d: %v", i, err)
		}
		if sig.Name != want || sig.SetName != "proto" {
			t.Fatalf("signal %d = %+v", i, sig)
		}
		if last != (i == 2) {
			t.Fatalf("signal %d last = %v", i, last)
		}
	}
	if _, _, err := s.GetSignal(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
}

func TestSequenceSetCollatesResponses(t *testing.T) {
	s := NewSequenceSet("proto", "ping").Collate(func(responses []Outcome) Outcome {
		return Outcome{Name: "collated", Data: int64(len(responses))}
	})
	if _, _, err := s.GetSignal(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.SetResponse(Outcome{Name: "pong"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.GetOutcome()
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "collated" || out.Data != int64(3) {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestSequenceSetRecordsDeliveryErrors(t *testing.T) {
	s := NewSequenceSet("proto", "ping")
	_, _, _ = s.GetSignal()
	if _, err := s.SetResponse(Outcome{}, errors.New("unreachable")); err != nil {
		t.Fatal(err)
	}
	rs := s.Responses()
	if len(rs) != 1 || rs[0].Name != "delivery-error" {
		t.Fatalf("responses = %+v", rs)
	}
}

func TestBaseSetCompletionStatusSticky(t *testing.T) {
	b := NewBaseSet("x")
	if b.CompletionStatus() != CompletionSuccess {
		t.Fatalf("initial = %v", b.CompletionStatus())
	}
	b.SetCompletionStatus(CompletionFail)
	if b.CompletionStatus() != CompletionFail {
		t.Fatal("status did not change")
	}
	b.SetCompletionStatus(CompletionFailOnly)
	b.SetCompletionStatus(CompletionSuccess) // must be ignored
	if b.CompletionStatus() != CompletionFailOnly {
		t.Fatalf("fail-only not sticky: %v", b.CompletionStatus())
	}
}

// TestSignalSetStateMachine exercises fig. 7: Waiting → GetSignal → End,
// with no reuse after End.
func TestSignalSetStateMachine(t *testing.T) {
	coord := newCoordinator("A", testGen(), nil, RetryPolicy{Attempts: 1}, DeliveryPolicy{}, nil)
	set := NewSequenceSet("s", "one", "two")
	coord.AddAction("s", ActionFunc(func(context.Context, Signal) (Outcome, error) {
		return Outcome{Name: "ok"}, nil
	}))

	if st := coord.SetState(set); st != StateWaiting {
		t.Fatalf("initial state = %s", st)
	}
	if _, err := coord.ProcessSignalSet(context.Background(), set); err != nil {
		t.Fatal(err)
	}
	if st := coord.SetState(set); st != StateEnd {
		t.Fatalf("state after protocol = %s", st)
	}
	// A set in End cannot be reused (fig. 7: "Once in the End state the
	// SignalSet cannot provide any further Signals and will not be
	// reused").
	if _, err := coord.ProcessSignalSet(context.Background(), set); err == nil {
		t.Fatal("reuse after End succeeded")
	}
}

// TestSignalSetWaitingToEndDirectly covers the fig. 7 edge where a set has
// no signals at all: Waiting → End without passing through GetSignal.
func TestSignalSetWaitingToEndDirectly(t *testing.T) {
	coord := newCoordinator("A", testGen(), nil, RetryPolicy{Attempts: 1}, DeliveryPolicy{}, nil)
	set := NewSequenceSet("empty")
	out, err := coord.ProcessSignalSet(context.Background(), set)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "completed" {
		t.Fatalf("outcome = %+v", out)
	}
	if st := coord.SetState(set); st != StateEnd {
		t.Fatalf("state = %s", st)
	}
}

func TestGetOutcomeWhileActiveFails(t *testing.T) {
	d := newSetDriver(NewSequenceSet("s", "a", "b"))
	if _, _, err := d.getSignal(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.getOutcome(); !errors.Is(err, ErrSignalSetActive) {
		t.Fatalf("err = %v, want ErrSignalSetActive", err)
	}
}

func TestSetResponseAfterEndFails(t *testing.T) {
	d := newSetDriver(NewSequenceSet("s", "a"))
	if _, _, err := d.getSignal(); err != nil {
		t.Fatal(err)
	}
	d.end()
	if _, err := d.setResponse(Outcome{Name: "late"}, nil); !errors.Is(err, ErrSignalSetInactive) {
		t.Fatalf("err = %v, want ErrSignalSetInactive", err)
	}
}

func TestSetResponseBeforeFirstSignalFails(t *testing.T) {
	d := newSetDriver(NewSequenceSet("s", "a"))
	if _, err := d.setResponse(Outcome{Name: "early"}, nil); !errors.Is(err, ErrSignalSetInactive) {
		t.Fatalf("err = %v, want ErrSignalSetInactive", err)
	}
}

func TestDriverStateTransitions(t *testing.T) {
	// Exhaustive walk of the legal fig. 7 transitions.
	set := NewSequenceSet("s", "only")
	d := newSetDriver(set)
	if d.State() != StateWaiting {
		t.Fatal("not Waiting initially")
	}
	if _, last, err := d.getSignal(); err != nil || !last {
		t.Fatalf("getSignal: last=%v err=%v", last, err)
	}
	if d.State() != StateGetSignal {
		t.Fatalf("state = %s, want GetSignal", d.State())
	}
	if _, err := d.setResponse(Outcome{Name: "r"}, nil); err != nil {
		t.Fatal(err)
	}
	d.end()
	if d.State() != StateEnd {
		t.Fatalf("state = %s, want End", d.State())
	}
	if _, _, err := d.getSignal(); !errors.Is(err, ErrSignalSetInactive) {
		t.Fatalf("getSignal after End: %v", err)
	}
	if _, err := d.getOutcome(); err != nil {
		t.Fatalf("getOutcome in End: %v", err)
	}
}
