package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestDrainRefusesNewKeepsInFlight pins the drain contract: TryBegin
// works until Drain, refuses after, in-flight activities run to
// completion, and WaitQuiesced unblocks exactly when the last one
// completes.
func TestDrainRefusesNewKeepsInFlight(t *testing.T) {
	s := New()
	a, err := s.TryBegin("in-flight")
	if err != nil {
		t.Fatalf("TryBegin before drain: %v", err)
	}
	if s.Draining() {
		t.Fatal("Draining() true before Drain")
	}

	s.Drain()
	s.Drain() // idempotent

	if !s.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	if _, err := s.TryBegin("late"); !errors.Is(err, ErrServiceDraining) {
		t.Fatalf("TryBegin after drain: %v, want ErrServiceDraining", err)
	}

	// Not quiesced while the in-flight activity lives.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.WaitQuiesced(ctx); err == nil {
		t.Fatal("WaitQuiesced returned with a live activity")
	}

	if _, err := a.Complete(context.Background()); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := s.WaitQuiesced(ctx2); err != nil {
		t.Fatalf("WaitQuiesced after completion: %v", err)
	}
	if s.Live() != 0 {
		t.Fatalf("Live() = %d after quiesce", s.Live())
	}
}

// TestDrainEmptyQuiescesImmediately pins that draining an idle Service
// unblocks WaitQuiesced at once.
func TestDrainEmptyQuiescesImmediately(t *testing.T) {
	s := New()
	s.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.WaitQuiesced(ctx); err != nil {
		t.Fatalf("WaitQuiesced on idle drained service: %v", err)
	}
}

// TestDrainRaceNeverLosesActivities hammers TryBegin from many
// goroutines while Drain flips mid-storm: every activity that TryBegin
// admitted must be observed by the drain (WaitQuiesced only returns
// once all of them completed).
func TestDrainRaceNeverLosesActivities(t *testing.T) {
	s := New()
	const workers = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	var admitted []*Activity
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a, err := s.TryBegin(fmt.Sprintf("w%d-%d", w, i))
				if err != nil {
					if !errors.Is(err, ErrServiceDraining) {
						t.Errorf("TryBegin: %v", err)
					}
					return
				}
				mu.Lock()
				admitted = append(admitted, a)
				mu.Unlock()
			}
		}(w)
	}
	time.Sleep(2 * time.Millisecond)
	s.Drain()
	close(stop)
	wg.Wait()

	// Nothing admitted may be missing from the live registry before
	// completion...
	mu.Lock()
	live := s.Live()
	n := len(admitted)
	if live != n {
		mu.Unlock()
		t.Fatalf("admitted %d activities but %d live after drain", n, live)
	}
	// ...and completing them all must quiesce the service.
	for _, a := range admitted {
		if _, err := a.Complete(context.Background()); err != nil {
			mu.Unlock()
			t.Fatalf("Complete: %v", err)
		}
	}
	mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.WaitQuiesced(ctx); err != nil {
		t.Fatalf("WaitQuiesced: %v", err)
	}
}
