package core

import (
	"context"
	"errors"
	"fmt"
)

// ErrNoCurrentActivity reports a UserActivity/ActivityManager call on a
// context that carries no activity.
var ErrNoCurrentActivity = errors.New("core: no activity in context")

// UserActivity is the application-facing demarcation API of the J2EE
// Activity Service architecture (fig. 13): begin/complete with implicit
// context handling, nesting automatically when the context already carries
// an activity.
type UserActivity struct {
	svc *Service
}

// NewUserActivity returns a UserActivity over svc.
func NewUserActivity(svc *Service) *UserActivity {
	return &UserActivity{svc: svc}
}

// Begin starts an activity. If ctx carries one, the new activity is its
// child. The returned context carries the new activity.
func (u *UserActivity) Begin(ctx context.Context, name string, opts ...BeginOption) (context.Context, *Activity, error) {
	if parent, ok := FromContext(ctx); ok {
		child, err := parent.BeginChild(name, opts...)
		if err != nil {
			return ctx, nil, err
		}
		return NewContext(ctx, child), child, nil
	}
	a := u.svc.Begin(name, opts...)
	return NewContext(ctx, a), a, nil
}

// Current returns the context's activity.
func (u *UserActivity) Current(ctx context.Context) (*Activity, bool) {
	return FromContext(ctx)
}

// SetCompletionStatus updates the context's activity.
func (u *UserActivity) SetCompletionStatus(ctx context.Context, cs CompletionStatus) error {
	a, ok := FromContext(ctx)
	if !ok {
		return ErrNoCurrentActivity
	}
	return a.SetCompletionStatus(cs)
}

// CompletionStatus reads the context's activity status.
func (u *UserActivity) CompletionStatus(ctx context.Context) (CompletionStatus, error) {
	a, ok := FromContext(ctx)
	if !ok {
		return 0, ErrNoCurrentActivity
	}
	return a.CompletionStatus(), nil
}

// Complete completes the context's activity and returns a context carrying
// its parent (or none for a root).
func (u *UserActivity) Complete(ctx context.Context) (Outcome, context.Context, error) {
	a, ok := FromContext(ctx)
	if !ok {
		return Outcome{}, ctx, ErrNoCurrentActivity
	}
	outcome, err := a.Complete(ctx)
	return outcome, u.pop(ctx, a), err
}

// CompleteWithStatus sets the status then completes, popping the context.
func (u *UserActivity) CompleteWithStatus(ctx context.Context, cs CompletionStatus) (Outcome, context.Context, error) {
	a, ok := FromContext(ctx)
	if !ok {
		return Outcome{}, ctx, ErrNoCurrentActivity
	}
	outcome, err := a.CompleteWithStatus(ctx, cs)
	return outcome, u.pop(ctx, a), err
}

// Suspend pauses the context's activity.
func (u *UserActivity) Suspend(ctx context.Context) error {
	a, ok := FromContext(ctx)
	if !ok {
		return ErrNoCurrentActivity
	}
	return a.Suspend()
}

// Resume reactivates the context's activity.
func (u *UserActivity) Resume(ctx context.Context) error {
	a, ok := FromContext(ctx)
	if !ok {
		return ErrNoCurrentActivity
	}
	return a.Resume()
}

func (u *UserActivity) pop(ctx context.Context, a *Activity) context.Context {
	if a.Parent() != nil {
		return NewContext(ctx, a.Parent())
	}
	return NewContext(ctx, nil)
}

// ActivityManager is the HLS-facing API of fig. 13: it lets a high-level
// service (an extended-transaction model implementation) plug its
// SignalSets and Actions into the current activity and drive protocols.
type ActivityManager struct {
	svc *Service
}

// NewActivityManager returns an ActivityManager over svc.
func NewActivityManager(svc *Service) *ActivityManager {
	return &ActivityManager{svc: svc}
}

// Service returns the underlying activity service.
func (m *ActivityManager) Service() *Service { return m.svc }

// RegisterSignalSet registers set with the context's activity.
func (m *ActivityManager) RegisterSignalSet(ctx context.Context, set SignalSet) error {
	a, ok := FromContext(ctx)
	if !ok {
		return ErrNoCurrentActivity
	}
	return a.RegisterSignalSet(set)
}

// AddAction registers action with the named set on the context's activity.
func (m *ActivityManager) AddAction(ctx context.Context, setName string, action Action) (ActionID, error) {
	a, ok := FromContext(ctx)
	if !ok {
		return ActionID{}, ErrNoCurrentActivity
	}
	return a.AddAction(setName, action)
}

// Broadcast drives the named SignalSet on the context's activity now.
func (m *ActivityManager) Broadcast(ctx context.Context, setName string) (Outcome, error) {
	a, ok := FromContext(ctx)
	if !ok {
		return Outcome{}, ErrNoCurrentActivity
	}
	return a.Signal(ctx, setName)
}

// SetCompletionSet chooses the completion SignalSet for the context's
// activity.
func (m *ActivityManager) SetCompletionSet(ctx context.Context, name string) error {
	a, ok := FromContext(ctx)
	if !ok {
		return ErrNoCurrentActivity
	}
	a.SetCompletionSet(name)
	return nil
}

// CurrentName returns the context activity's name, for diagnostics.
func (m *ActivityManager) CurrentName(ctx context.Context) (string, error) {
	a, ok := FromContext(ctx)
	if !ok {
		return "", ErrNoCurrentActivity
	}
	return a.Name(), nil
}

// MustCurrent returns the context's activity or an error suitable for
// wrapping by HLS implementations.
func (m *ActivityManager) MustCurrent(ctx context.Context) (*Activity, error) {
	a, ok := FromContext(ctx)
	if !ok {
		return nil, fmt.Errorf("%w", ErrNoCurrentActivity)
	}
	return a, nil
}
