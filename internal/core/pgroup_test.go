package core

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestTupleSpaceBasics(t *testing.T) {
	ts := NewTupleSpace("env", VisibilityShared, PropagateByValue)
	if err := ts.Set("locale", "en_GB"); err != nil {
		t.Fatal(err)
	}
	if err := ts.Set("retries", int64(3)); err != nil {
		t.Fatal(err)
	}
	v, ok := ts.Get("locale")
	if !ok || v != "en_GB" {
		t.Fatalf("locale = %v ok=%v", v, ok)
	}
	keys := ts.Keys()
	if len(keys) != 2 || keys[0] != "locale" || keys[1] != "retries" {
		t.Fatalf("keys = %v", keys)
	}
	if !ts.Delete("locale") {
		t.Fatal("delete failed")
	}
	if ts.Delete("locale") {
		t.Fatal("second delete succeeded")
	}
}

func TestTupleSpaceRejectsUncodableValues(t *testing.T) {
	ts := NewTupleSpace("env", VisibilityShared, PropagateByValue)
	type opaque struct{ X chan int }
	if err := ts.Set("bad", opaque{}); !errors.Is(err, ErrUncodableProperty) {
		t.Fatalf("err = %v", err)
	}
}

func TestSharedVisibility(t *testing.T) {
	svc := New()
	parent := svc.Begin("parent")
	pg := NewTupleSpace("shared", VisibilityShared, PropagateNone)
	_ = pg.Set("k", "parent-value")
	if err := parent.AddPropertyGroup(pg); err != nil {
		t.Fatal(err)
	}
	child, _ := parent.BeginChild("child")
	cpg, ok := child.PropertyGroup("shared")
	if !ok {
		t.Fatal("child missing group")
	}
	// Child sees parent value, and updates flow both ways.
	if v, _ := cpg.Get("k"); v != "parent-value" {
		t.Fatalf("child read %v", v)
	}
	if err := cpg.Set("k", "child-update"); err != nil {
		t.Fatal(err)
	}
	if v, _ := pg.Get("k"); v != "child-update" {
		t.Fatalf("parent read %v after child update", v)
	}
}

func TestCopyVisibilityIsolatesChild(t *testing.T) {
	svc := New()
	parent := svc.Begin("parent")
	pg := NewTupleSpace("ctx", VisibilityCopy, PropagateNone)
	_ = pg.Set("k", "original")
	_ = parent.AddPropertyGroup(pg)
	child, _ := parent.BeginChild("child")
	cpg, _ := child.PropertyGroup("ctx")

	// Child starts from the snapshot…
	if v, _ := cpg.Get("k"); v != "original" {
		t.Fatalf("child read %v", v)
	}
	// …but its updates stay private.
	_ = cpg.Set("k", "child-only")
	if v, _ := pg.Get("k"); v != "original" {
		t.Fatalf("parent read %v after isolated child update", v)
	}
	// And parent updates after the fork are invisible to the child.
	_ = pg.Set("k", "parent-after")
	if v, _ := cpg.Get("k"); v != "child-only" {
		t.Fatalf("child read %v", v)
	}
}

func TestReadOnlyVisibility(t *testing.T) {
	// The paper's PG1 example: client environment (locale) must not be
	// overridden in nested contexts.
	svc := New()
	parent := svc.Begin("parent")
	pg := NewTupleSpace("clientenv", VisibilityReadOnly, PropagateByValue)
	_ = pg.Set("locale", "en_GB")
	_ = parent.AddPropertyGroup(pg)
	child, _ := parent.BeginChild("child")
	cpg, _ := child.PropertyGroup("clientenv")

	if v, _ := cpg.Get("locale"); v != "en_GB" {
		t.Fatalf("child read %v", v)
	}
	if err := cpg.Set("locale", "fr_FR"); !errors.Is(err, ErrReadOnlyProperty) {
		t.Fatalf("err = %v", err)
	}
	if cpg.Delete("locale") {
		t.Fatal("delete through read-only view succeeded")
	}
	// Live view: parent updates are visible to the child.
	_ = pg.Set("locale", "de_DE")
	if v, _ := cpg.Get("locale"); v != "de_DE" {
		t.Fatalf("child read %v after parent update", v)
	}
	// Grandchildren read the root, not an intermediate view.
	grand, _ := child.BeginChild("grand")
	gpg, _ := grand.PropertyGroup("clientenv")
	if v, _ := gpg.Get("locale"); v != "de_DE" {
		t.Fatalf("grandchild read %v", v)
	}
}

func TestTwoGroupsWithDifferentBehaviours(t *testing.T) {
	// §3.3: "There are obviously scenarios where both types of
	// PropertyGroup could be used at the same time" — PG1 client
	// environment (read-only) plus PG2 application context (isolated copy).
	svc := New()
	parent := svc.Begin("parent")
	pg1 := NewTupleSpace("pg1", VisibilityReadOnly, PropagateByValue)
	pg2 := NewTupleSpace("pg2", VisibilityCopy, PropagateByValue)
	_ = pg1.Set("codepage", "utf-8")
	_ = pg2.Set("step", int64(1))
	_ = parent.AddPropertyGroup(pg1)
	_ = parent.AddPropertyGroup(pg2)

	child, _ := parent.BeginChild("child")
	names := child.PropertyGroupNames()
	if len(names) != 2 || names[0] != "pg1" || names[1] != "pg2" {
		t.Fatalf("names = %v", names)
	}
	c1, _ := child.PropertyGroup("pg1")
	c2, _ := child.PropertyGroup("pg2")
	if err := c1.Set("codepage", "latin1"); err == nil {
		t.Fatal("pg1 writable in child")
	}
	if err := c2.Set("step", int64(2)); err != nil {
		t.Fatal(err)
	}
	if v, _ := pg2.Get("step"); v != int64(1) {
		t.Fatalf("parent pg2 step = %v", v)
	}
}

func TestDuplicatePropertyGroupRejected(t *testing.T) {
	svc := New()
	a := svc.Begin("A")
	_ = a.AddPropertyGroup(NewTupleSpace("pg", VisibilityShared, PropagateNone))
	err := a.AddPropertyGroup(NewTupleSpace("pg", VisibilityCopy, PropagateNone))
	if !errors.Is(err, ErrDuplicatePropertyGroup) {
		t.Fatalf("err = %v", err)
	}
}

func TestTuplesMarshalRoundTrip(t *testing.T) {
	ts := NewTupleSpace("env", VisibilityShared, PropagateByValue)
	_ = ts.Set("s", "str")
	_ = ts.Set("n", int64(42))
	_ = ts.Set("list", []any{int64(1), "two"})
	b, err := ts.MarshalTuples()
	if err != nil {
		t.Fatal(err)
	}
	other := NewTupleSpace("env", VisibilityShared, PropagateByValue)
	if err := other.UnmarshalTuples(b); err != nil {
		t.Fatal(err)
	}
	if v, _ := other.Get("n"); v != int64(42) {
		t.Fatalf("n = %v", v)
	}
	if v, _ := other.Get("s"); v != "str" {
		t.Fatalf("s = %v", v)
	}
}

func TestQuickTuplesRoundTrip(t *testing.T) {
	f := func(keys []string, vals []int64) bool {
		ts := NewTupleSpace("q", VisibilityShared, PropagateByValue)
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		want := make(map[string]int64, n)
		for i := 0; i < n; i++ {
			if err := ts.Set(keys[i], vals[i]); err != nil {
				return false
			}
			want[keys[i]] = vals[i]
		}
		b, err := ts.MarshalTuples()
		if err != nil {
			return false
		}
		got := NewTupleSpace("q", VisibilityShared, PropagateByValue)
		if err := got.UnmarshalTuples(b); err != nil {
			return false
		}
		for k, v := range want {
			gv, ok := got.Get(k)
			if !ok || gv != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
