package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/extendedtx/activityservice/internal/trace"
)

// DeliveryMode selects how a coordinator broadcasts one Signal to the
// Actions registered with a SignalSet.
type DeliveryMode int

// Delivery modes.
const (
	// DeliverSerial transmits to one action at a time in registration
	// order, waiting for each response before the next transmit — the
	// fig. 5 exchange as literally drawn. This is the default.
	DeliverSerial DeliveryMode = iota + 1
	// DeliverParallel transmits to all registered actions concurrently
	// through a bounded worker pool. Responses are fed back to the
	// SignalSet strictly in registration order, so collation — and the
	// recorded trace — is identical to serial delivery. Delivery is
	// speculative: when an early response advances the set, actions later
	// in registration order may already have received the signal (their
	// responses are discarded and in-flight stragglers are cancelled via
	// their context). Sets that rely on advance to *prevent* later
	// deliveries must stay serial.
	DeliverParallel
	// DeliverTree relays the broadcast down a branching-factor tree of
	// relay-capable actions (SubtreeDeliverer): the coordinator contacts
	// only the subtree roots, each relay delivers to its own span and
	// forwards to child relays, and outcomes aggregate back up with their
	// registration identity intact. Responses still reach the SignalSet in
	// registration order, so collation and the recorded trace are
	// byte-identical to serial delivery. Tree delivery is speculative like
	// parallel delivery, and additionally at least once per subtree: a
	// relay that dies mid-round is re-adopted by redelivering its span
	// directly, so actions must be idempotent. Actions that cannot relay
	// are delivered directly through the worker pool.
	DeliverTree
)

// String returns the mode name.
func (m DeliveryMode) String() string {
	switch m {
	case DeliverSerial:
		return "serial"
	case DeliverParallel:
		return "parallel"
	case DeliverTree:
		return "tree"
	default:
		return fmt.Sprintf("DeliveryMode(%d)", int(m))
	}
}

// DeliveryPolicy configures how broadcasts are delivered. The zero value
// means "no preference": a set with a zero policy inherits the Service's
// policy, and a Service with a zero policy delivers serially.
type DeliveryPolicy struct {
	// Mode selects serial or parallel fan-out.
	Mode DeliveryMode
	// MaxWorkers bounds the number of concurrent deliveries in parallel
	// mode. Zero or negative selects max(16, 4×GOMAXPROCS), capped at the
	// fanout.
	MaxWorkers int
	// Branching is the relay-tree fan-out (children per node) in tree
	// mode. Zero or negative selects DefaultBranching.
	Branching int
	// Planner builds the relay tree in tree mode. Nil selects the
	// deterministic GreedyNearestPlanner.
	Planner TreePlanner
}

// Parallel is shorthand for a parallel policy with the default worker
// bound.
func Parallel() DeliveryPolicy { return DeliveryPolicy{Mode: DeliverParallel} }

// Tree is shorthand for a relay-tree policy with the given branching
// factor (<= 0 selects DefaultBranching) and the default planner.
func Tree(branching int) DeliveryPolicy {
	return DeliveryPolicy{Mode: DeliverTree, Branching: branching}
}

// workers resolves the worker-pool size for one broadcast of n actions.
func (p DeliveryPolicy) workers(n int) int {
	w := p.MaxWorkers
	if w <= 0 {
		w = 4 * runtime.GOMAXPROCS(0)
		if w < 16 {
			w = 16
		}
	}
	if w > n {
		w = n
	}
	return w
}

// deliveryCounters aggregates speculative parallel-delivery accounting
// for one Service: every coordinator feeds it, DeliveryStats snapshots it.
type deliveryCounters struct {
	discarded atomic.Uint64
	skipped   atomic.Uint64
	cancelled atomic.Uint64
}

// snapshot returns the counters as a DeliveryStats value.
func (c *deliveryCounters) snapshot() DeliveryStats {
	return DeliveryStats{
		DiscardedResponses:  c.discarded.Load(),
		SkippedDeliveries:   c.skipped.Load(),
		CancelledDeliveries: c.cancelled.Load(),
	}
}

// DeliveryStats is a snapshot of a Service's speculative-delivery
// accounting (Service.DeliveryStats): what parallel fan-out delivered —or
// started to deliver— that an advance then discarded. Serial delivery
// never contributes: it stops transmitting the moment a response advances
// the set.
type DeliveryStats struct {
	// DiscardedResponses counts deliveries that ran to completion — a
	// response, or a final failure after exhausting retries — whose
	// results were discarded because an earlier response in registration
	// order advanced the set. Either way the action consumed real work
	// that the advance threw away, which is what this gauge is for.
	DiscardedResponses uint64
	// SkippedDeliveries counts deliveries short-circuited before their
	// first transmit by an advance: queued work that never ran.
	SkippedDeliveries uint64
	// CancelledDeliveries counts deliveries cancelled mid-flight (between
	// retry attempts) by an advance.
	CancelledDeliveries uint64
}

// Total returns the total number of deliveries affected by advance
// short-circuits.
func (s DeliveryStats) Total() uint64 {
	return s.DiscardedResponses + s.SkippedDeliveries + s.CancelledDeliveries
}

// countSpeculative classifies one parallel delivery discarded by an
// advance into the service-wide counters.
func (c *Coordinator) countSpeculative(r attemptResult) {
	if c.counters == nil {
		return
	}
	switch {
	case r.skipped:
		c.counters.skipped.Add(1)
	case r.cancelled:
		c.counters.cancelled.Add(1)
	default:
		c.counters.discarded.Add(1)
	}
}

// DeliveryPolicyProvider is implemented by SignalSets that choose their own
// delivery policy, overriding the Service-wide default for every broadcast
// of that set. BaseSet provides the plumbing: any set embedding it can opt
// in with SetDelivery.
type DeliveryPolicyProvider interface {
	// Delivery returns the set's chosen policy (zero = no preference).
	Delivery() DeliveryPolicy
}

// policyFor resolves the delivery policy for one set: the set's own choice
// when it makes one, otherwise the coordinator's (Service-wide) default,
// otherwise serial.
func (c *Coordinator) policyFor(set SignalSet) DeliveryPolicy {
	if p, ok := set.(DeliveryPolicyProvider); ok {
		if sp := p.Delivery(); sp.Mode != 0 {
			return sp
		}
	}
	if c.delivery.Mode != 0 {
		return c.delivery
	}
	return DeliveryPolicy{Mode: DeliverSerial}
}

// broadcastSerial delivers sig to each registration in order, feeding every
// response back immediately; an advance stops the broadcast.
func (c *Coordinator) broadcastSerial(ctx context.Context, driver *setDriver, regs []registration, sig Signal) (bool, error) {
	for _, reg := range regs {
		outcome, aerr := c.deliver(ctx, reg, sig)
		adv, serr := driver.setResponse(outcome, aerr)
		if serr != nil {
			return false, serr
		}
		if adv {
			return true, nil
		}
	}
	return false, nil
}

// attemptResult is the outcome of one action's at-least-once retry loop.
type attemptResult struct {
	outcome  Outcome
	err      error
	attempts int
	// cancelled marks a delivery abandoned mid-backoff (context died):
	// no response event is recorded for it, in serial or parallel mode.
	cancelled bool
	// skipped marks a parallel delivery short-circuited before its first
	// transmit; it is neither recorded nor fed to the set.
	skipped bool
}

// runAttempts is the single at-least-once retry loop behind both delivery
// modes. onTransmit, when non-nil, is invoked before each attempt — the
// serial path records live; the parallel path passes nil and replays the
// events at collation time so there is exactly one encoding of the
// retry-and-trace contract.
func (c *Coordinator) runAttempts(ctx context.Context, reg registration, sig Signal, onTransmit func(attempt int)) attemptResult {
	var r attemptResult
	for attempt := 1; attempt <= c.retry.Attempts; attempt++ {
		if onTransmit != nil {
			onTransmit(attempt)
		}
		r.attempts = attempt
		r.outcome, r.err = reg.action.ProcessSignal(ctx, sig)
		if r.err == nil {
			return r
		}
		if c.retry.Backoff > 0 && attempt < c.retry.Attempts {
			select {
			case <-ctx.Done():
				return attemptResult{
					err:       fmt.Errorf("core: delivery cancelled: %w", ctx.Err()),
					attempts:  attempt,
					cancelled: true,
				}
			case <-time.After(c.retry.Backoff):
			}
		}
	}
	r.outcome = Outcome{}
	return r
}

// transmitDetail is the trace annotation for the n-th transmit attempt.
func transmitDetail(attempt int) string {
	if attempt > 1 {
		return fmt.Sprintf("retry %d", attempt-1)
	}
	return ""
}

// recordResponse records the response event for a finished delivery:
// success or final failure, but nothing for a delivery cancelled
// mid-backoff — the same shape in serial and parallel mode.
func (c *Coordinator) recordResponse(reg registration, sig Signal, r attemptResult) {
	switch {
	case r.cancelled:
	case r.err == nil:
		c.rec.Record(trace.KindResponse, reg.label, sig.SetName, r.outcome.Name, "")
	default:
		c.rec.Record(trace.KindResponse, reg.label, sig.SetName, "", fmt.Sprintf("error: %v", r.err))
	}
}

// broadcastParallel delivers sig to every registration concurrently through
// a bounded worker pool, then feeds the responses to the driver in
// registration order. When a response advances the set (or feeding fails)
// the remaining responses are discarded — exactly the responses serial
// delivery would never have produced — and stragglers are cancelled through
// their context. Trace events are recorded at collation time, so the
// recorded sequence is byte-identical to serial delivery's.
func (c *Coordinator) broadcastParallel(ctx context.Context, driver *setDriver, regs []registration, sig Signal, policy DeliveryPolicy) (bool, error) {
	n := len(regs)
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// shortCircuit distinguishes our own advance-cancellation from a caller
	// cancelling ctx: serial delivery still invokes actions under a
	// cancelled parent context, so only an advance may skip deliveries.
	var shortCircuit atomic.Bool

	results := make([]attemptResult, n)
	ready := make([]chan struct{}, n)
	jobs := make(chan int, n)
	for i := range ready {
		ready[i] = make(chan struct{})
		jobs <- i
	}
	close(jobs)

	var wg sync.WaitGroup
	for w := policy.workers(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if shortCircuit.Load() {
					results[idx].skipped = true
					close(ready[idx])
					continue
				}
				results[idx] = c.runAttempts(dctx, regs[idx], sig, nil)
				close(ready[idx])
			}
		}()
	}
	// All workers drain their remaining (skipped) jobs before we return, so
	// no goroutine outlives the broadcast.
	defer wg.Wait()

	advance := false
	var feedErr error
	for i := 0; i < n; i++ {
		<-ready[i]
		if advance || feedErr != nil {
			// Discard speculative responses past the short-circuit,
			// counting the ones an advance (not a feed error) threw away.
			if advance {
				c.countSpeculative(results[i])
			}
			continue
		}
		r := results[i]
		if r.skipped {
			continue
		}
		c.replayTrace(regs[i], sig, r)
		adv, serr := driver.setResponse(r.outcome, r.err)
		if serr != nil {
			feedErr = serr
			shortCircuit.Store(true)
			cancel()
			continue
		}
		if adv {
			advance = true
			shortCircuit.Store(true)
			cancel()
		}
	}
	return advance, feedErr
}

// replayTrace records the transmit/response events for one parallel
// delivery in the same shape the serial path records them live.
func (c *Coordinator) replayTrace(reg registration, sig Signal, r attemptResult) {
	if c.rec == nil {
		return
	}
	for attempt := 1; attempt <= r.attempts; attempt++ {
		c.rec.Record(trace.KindTransmit, c.owner, reg.label, sig.Name, transmitDetail(attempt))
	}
	c.recordResponse(reg, sig, r)
}
