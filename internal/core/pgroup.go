package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// Property group errors.
var (
	// ErrReadOnlyProperty reports a write to a read-only view.
	ErrReadOnlyProperty = errors.New("core: property group is read-only in this context")
	// ErrDuplicatePropertyGroup reports registering a second group with the
	// same name on one activity.
	ErrDuplicatePropertyGroup = errors.New("core: property group already registered")
	// ErrUncodableProperty reports a value outside the cdr-any codable set.
	ErrUncodableProperty = errors.New("core: property value is not codable")
)

// PropertyGroup manages a group of properties as a tuple-space of
// attribute/value pairs (§3.3). Implementations define the behaviour of
// the group with respect to nested activities and downstream propagation.
type PropertyGroup interface {
	// Name identifies the group within an activity.
	Name() string
	// Get returns the value bound to key.
	Get(key string) (any, bool)
	// Set binds key to value. Values must be cdr-any codable so groups can
	// propagate by value.
	Set(key string, value any) error
	// Delete removes a binding, reporting whether it existed.
	Delete(key string) bool
	// Keys returns the bound keys in sorted order.
	Keys() []string
}

// ChildDeriver is implemented by property groups that produce a distinct
// view for nested activities; groups without it are shared with children.
type ChildDeriver interface {
	DeriveChild() PropertyGroup
}

// NestedVisibility controls what a nested activity sees of a group and
// whether its updates surface in the parent (§3.3: "one type of
// PropertyGroup may allow updated properties to be transmitted within
// nested contexts, while another may not").
type NestedVisibility int

// Nesting behaviours.
const (
	// VisibilityShared: parent and children share one tuple space; updates
	// are visible in both directions.
	VisibilityShared NestedVisibility = iota + 1
	// VisibilityCopy: a child gets a snapshot; its updates stay private.
	VisibilityCopy
	// VisibilityReadOnly: a child reads the parent's live values but cannot
	// override them (the paper's "client environment" example: overriding
	// locale in nested contexts makes no sense).
	VisibilityReadOnly
)

// Propagation controls how a group travels with distributed invocations.
type Propagation int

// Propagation behaviours.
const (
	// PropagateByValue ships a snapshot of the tuples with the request.
	PropagateByValue Propagation = iota + 1
	// PropagateByReference ships only a resolvable reference.
	PropagateByReference
	// PropagateNone keeps the group node-local.
	PropagateNone
)

// TupleSpace is the standard PropertyGroup implementation: a mutex-guarded
// attribute/value space with configurable nesting and propagation
// behaviour. Safe for concurrent use.
type TupleSpace struct {
	name        string
	visibility  NestedVisibility
	propagation Propagation

	parent *TupleSpace // non-nil for read-only child views

	mu   sync.RWMutex
	data map[string]any
}

var _ PropertyGroup = (*TupleSpace)(nil)
var _ ChildDeriver = (*TupleSpace)(nil)

// NewTupleSpace returns an empty TupleSpace with the given behaviours.
func NewTupleSpace(name string, visibility NestedVisibility, propagation Propagation) *TupleSpace {
	return &TupleSpace{
		name:        name,
		visibility:  visibility,
		propagation: propagation,
		data:        make(map[string]any),
	}
}

// Name implements PropertyGroup.
func (t *TupleSpace) Name() string { return t.name }

// Visibility returns the nesting behaviour.
func (t *TupleSpace) Visibility() NestedVisibility { return t.visibility }

// Propagation returns the distribution behaviour.
func (t *TupleSpace) Propagation() Propagation { return t.propagation }

// Get implements PropertyGroup. Read-only views consult the parent.
func (t *TupleSpace) Get(key string) (any, bool) {
	if t.parent != nil {
		return t.parent.Get(key)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.data[key]
	return v, ok
}

// Set implements PropertyGroup.
func (t *TupleSpace) Set(key string, value any) error {
	if t.parent != nil {
		return fmt.Errorf("%w: %q in group %q", ErrReadOnlyProperty, key, t.name)
	}
	if _, err := cdr.MarshalAny(value); err != nil {
		return fmt.Errorf("%w: %q: %v", ErrUncodableProperty, key, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.data[key] = value
	return nil
}

// Delete implements PropertyGroup.
func (t *TupleSpace) Delete(key string) bool {
	if t.parent != nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.data[key]; !ok {
		return false
	}
	delete(t.data, key)
	return true
}

// Keys implements PropertyGroup.
func (t *TupleSpace) Keys() []string {
	if t.parent != nil {
		return t.parent.Keys()
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	keys := make([]string, 0, len(t.data))
	for k := range t.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot returns a copy of the tuples.
func (t *TupleSpace) Snapshot() map[string]any {
	if t.parent != nil {
		return t.parent.Snapshot()
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[string]any, len(t.data))
	for k, v := range t.data {
		out[k] = v
	}
	return out
}

// DeriveChild implements ChildDeriver per the configured visibility.
func (t *TupleSpace) DeriveChild() PropertyGroup {
	switch t.visibility {
	case VisibilityShared:
		return t
	case VisibilityCopy:
		child := NewTupleSpace(t.name, t.visibility, t.propagation)
		child.data = t.Snapshot()
		return child
	case VisibilityReadOnly:
		root := t
		for root.parent != nil {
			root = root.parent
		}
		return &TupleSpace{
			name:        t.name,
			visibility:  t.visibility,
			propagation: t.propagation,
			parent:      root,
		}
	default:
		return t
	}
}

// MarshalTuples encodes the group's tuples for by-value propagation.
func (t *TupleSpace) MarshalTuples() ([]byte, error) {
	b, err := cdr.MarshalAny(t.Snapshot())
	if err != nil {
		return nil, fmt.Errorf("core: marshal property group %q: %w", t.name, err)
	}
	return b, nil
}

// UnmarshalTuples replaces the group's tuples from an encoded snapshot.
func (t *TupleSpace) UnmarshalTuples(b []byte) error {
	v, err := cdr.UnmarshalAny(b)
	if err != nil {
		return fmt.Errorf("core: unmarshal property group %q: %w", t.name, err)
	}
	m, ok := v.(map[string]any)
	if !ok {
		return fmt.Errorf("core: property group %q payload is %T, want map", t.name, v)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.data = m
	return nil
}

// deriveChild applies the nesting behaviour of any PropertyGroup.
func deriveChild(pg PropertyGroup) PropertyGroup {
	if d, ok := pg.(ChildDeriver); ok {
		return d.DeriveChild()
	}
	return pg
}

// AddPropertyGroup registers a property group with the activity. Children
// begun afterwards derive their view per the group's nesting behaviour.
func (a *Activity) AddPropertyGroup(pg PropertyGroup) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.state == ActivityCompleted {
		return fmt.Errorf("%w: %s", ErrActivityInactive, a.name)
	}
	if _, dup := a.pgroups[pg.Name()]; dup {
		return fmt.Errorf("%w: %q on %s", ErrDuplicatePropertyGroup, pg.Name(), a.name)
	}
	a.pgroups[pg.Name()] = pg
	return nil
}

// PropertyGroup returns the activity's group with the given name.
func (a *Activity) PropertyGroup(name string) (PropertyGroup, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	pg, ok := a.pgroups[name]
	return pg, ok
}

// PropertyGroupNames lists the activity's registered groups, sorted.
func (a *Activity) PropertyGroupNames() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.pgroups))
	for n := range a.pgroups {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
