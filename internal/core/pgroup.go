package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// Property group errors.
var (
	// ErrReadOnlyProperty reports a write to a read-only view.
	ErrReadOnlyProperty = errors.New("core: property group is read-only in this context")
	// ErrDuplicatePropertyGroup reports registering a second group with the
	// same name on one activity.
	ErrDuplicatePropertyGroup = errors.New("core: property group already registered")
	// ErrUncodableProperty reports a value outside the cdr-any codable set.
	ErrUncodableProperty = errors.New("core: property value is not codable")
)

// PropertyGroup manages a group of properties as a tuple-space of
// attribute/value pairs (§3.3). Implementations define the behaviour of
// the group with respect to nested activities and downstream propagation.
type PropertyGroup interface {
	// Name identifies the group within an activity.
	Name() string
	// Get returns the value bound to key.
	Get(key string) (any, bool)
	// Set binds key to value. Values must be cdr-any codable so groups can
	// propagate by value.
	Set(key string, value any) error
	// Delete removes a binding, reporting whether it existed.
	Delete(key string) bool
	// Keys returns the bound keys in sorted order.
	Keys() []string
}

// ChildDeriver is implemented by property groups that produce a distinct
// view for nested activities; groups without it are shared with children.
type ChildDeriver interface {
	// DeriveChild returns the view a nested activity receives.
	DeriveChild() PropertyGroup
}

// NestedVisibility controls what a nested activity sees of a group and
// whether its updates surface in the parent (§3.3: "one type of
// PropertyGroup may allow updated properties to be transmitted within
// nested contexts, while another may not").
type NestedVisibility int

// Nesting behaviours.
const (
	// VisibilityShared: parent and children share one tuple space; updates
	// are visible in both directions.
	VisibilityShared NestedVisibility = iota + 1
	// VisibilityCopy: a child gets a snapshot; its updates stay private.
	VisibilityCopy
	// VisibilityReadOnly: a child reads the parent's live values but cannot
	// override them (the paper's "client environment" example: overriding
	// locale in nested contexts makes no sense).
	VisibilityReadOnly
)

// Propagation controls how a group travels with distributed invocations.
type Propagation int

// Propagation behaviours.
const (
	// PropagateByValue ships a snapshot of the tuples with the request.
	PropagateByValue Propagation = iota + 1
	// PropagateByReference ships only a resolvable reference.
	PropagateByReference
	// PropagateNone keeps the group node-local.
	PropagateNone
)

// tupleStripes is the stripe count of a TupleSpace; a power of two so the
// key hash masks cheaply.
const tupleStripes = 16

// tupleStripe is one lock-striped slice of a TupleSpace.
type tupleStripe struct {
	mu   sync.RWMutex
	data map[string]any
}

// tupleStripeFor hashes key (FNV-1a) onto a stripe index.
func tupleStripeFor(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h & (tupleStripes - 1))
}

// TupleSpace is the standard PropertyGroup implementation: a lock-striped
// attribute/value space with configurable nesting and propagation
// behaviour. Striping lets many goroutines touch disjoint keys without
// contending on one mutex. Safe for concurrent use.
type TupleSpace struct {
	name        string
	visibility  NestedVisibility
	propagation Propagation

	parent *TupleSpace // non-nil for read-only child views

	// global keeps whole-space operations point-in-time atomic with
	// respect to per-key operations — the same guarantee the pre-striping
	// single mutex gave. Per-key ops hold the shared side plus their
	// stripe lock. Keys/Snapshot hold the shared side plus every stripe
	// read lock at once (freezing writers while still running concurrently
	// with Gets and with each other); only replace, which swaps the stripe
	// maps themselves, takes the exclusive side.
	global  sync.RWMutex
	stripes [tupleStripes]tupleStripe
}

// rlockAll read-locks every stripe in index order, freezing all writers
// for a consistent whole-space read. Callers must hold global.RLock.
func (t *TupleSpace) rlockAll() {
	for i := range t.stripes {
		t.stripes[i].mu.RLock()
	}
}

func (t *TupleSpace) runlockAll() {
	for i := range t.stripes {
		t.stripes[i].mu.RUnlock()
	}
}

var _ PropertyGroup = (*TupleSpace)(nil)
var _ ChildDeriver = (*TupleSpace)(nil)

// NewTupleSpace returns an empty TupleSpace with the given behaviours.
func NewTupleSpace(name string, visibility NestedVisibility, propagation Propagation) *TupleSpace {
	t := &TupleSpace{
		name:        name,
		visibility:  visibility,
		propagation: propagation,
	}
	for i := range t.stripes {
		t.stripes[i].data = make(map[string]any)
	}
	return t
}

// Name implements PropertyGroup.
func (t *TupleSpace) Name() string { return t.name }

// Visibility returns the nesting behaviour.
func (t *TupleSpace) Visibility() NestedVisibility { return t.visibility }

// Propagation returns the distribution behaviour.
func (t *TupleSpace) Propagation() Propagation { return t.propagation }

// Get implements PropertyGroup. Read-only views consult the parent.
func (t *TupleSpace) Get(key string) (any, bool) {
	if t.parent != nil {
		return t.parent.Get(key)
	}
	t.global.RLock()
	defer t.global.RUnlock()
	s := &t.stripes[tupleStripeFor(key)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// Set implements PropertyGroup.
func (t *TupleSpace) Set(key string, value any) error {
	if t.parent != nil {
		return fmt.Errorf("%w: %q in group %q", ErrReadOnlyProperty, key, t.name)
	}
	if _, err := cdr.MarshalAny(value); err != nil {
		return fmt.Errorf("%w: %q: %v", ErrUncodableProperty, key, err)
	}
	t.global.RLock()
	defer t.global.RUnlock()
	s := &t.stripes[tupleStripeFor(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[key] = value
	return nil
}

// Delete implements PropertyGroup.
func (t *TupleSpace) Delete(key string) bool {
	if t.parent != nil {
		return false
	}
	t.global.RLock()
	defer t.global.RUnlock()
	s := &t.stripes[tupleStripeFor(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.data[key]; !ok {
		return false
	}
	delete(s.data, key)
	return true
}

// Keys implements PropertyGroup. The listing is point-in-time atomic:
// all stripes are read-locked together, so no writer interleaves.
func (t *TupleSpace) Keys() []string {
	if t.parent != nil {
		return t.parent.Keys()
	}
	t.global.RLock()
	defer t.global.RUnlock()
	t.rlockAll()
	defer t.runlockAll()
	var keys []string
	for i := range t.stripes {
		for k := range t.stripes[i].data {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Snapshot returns a copy of the tuples. The copy is point-in-time
// atomic across the whole space (all stripes read-locked together), so
// by-value propagation never ships a torn state; concurrent Gets and
// other snapshots are not blocked.
func (t *TupleSpace) Snapshot() map[string]any {
	if t.parent != nil {
		return t.parent.Snapshot()
	}
	t.global.RLock()
	defer t.global.RUnlock()
	t.rlockAll()
	defer t.runlockAll()
	out := make(map[string]any)
	for i := range t.stripes {
		for k, v := range t.stripes[i].data {
			out[k] = v
		}
	}
	return out
}

// DeriveChild implements ChildDeriver per the configured visibility.
func (t *TupleSpace) DeriveChild() PropertyGroup {
	switch t.visibility {
	case VisibilityShared:
		return t
	case VisibilityCopy:
		child := NewTupleSpace(t.name, t.visibility, t.propagation)
		child.replace(t.Snapshot())
		return child
	case VisibilityReadOnly:
		root := t
		for root.parent != nil {
			root = root.parent
		}
		return &TupleSpace{
			name:        t.name,
			visibility:  t.visibility,
			propagation: t.propagation,
			parent:      root,
		}
	default:
		return t
	}
}

// MarshalTuples encodes the group's tuples for by-value propagation.
func (t *TupleSpace) MarshalTuples() ([]byte, error) {
	b, err := cdr.MarshalAny(t.Snapshot())
	if err != nil {
		return nil, fmt.Errorf("core: marshal property group %q: %w", t.name, err)
	}
	return b, nil
}

// UnmarshalTuples replaces the group's tuples from an encoded snapshot.
func (t *TupleSpace) UnmarshalTuples(b []byte) error {
	v, err := cdr.UnmarshalAny(b)
	if err != nil {
		return fmt.Errorf("core: unmarshal property group %q: %w", t.name, err)
	}
	m, ok := v.(map[string]any)
	if !ok {
		return fmt.Errorf("core: property group %q payload is %T, want map", t.name, v)
	}
	t.replace(m)
	return nil
}

// replace swaps the full tuple contents atomically (exclusive global
// lock): no concurrent reader can observe a mix of old and new tuples.
func (t *TupleSpace) replace(m map[string]any) {
	t.global.Lock()
	defer t.global.Unlock()
	for i := range t.stripes {
		t.stripes[i].data = make(map[string]any)
	}
	for k, v := range m {
		t.stripes[tupleStripeFor(k)].data[k] = v
	}
}

// deriveChild applies the nesting behaviour of any PropertyGroup.
func deriveChild(pg PropertyGroup) PropertyGroup {
	if d, ok := pg.(ChildDeriver); ok {
		return d.DeriveChild()
	}
	return pg
}

// AddPropertyGroup registers a property group with the activity. Children
// begun afterwards derive their view per the group's nesting behaviour.
func (a *Activity) AddPropertyGroup(pg PropertyGroup) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.state == ActivityCompleted {
		return fmt.Errorf("%w: %s", ErrActivityInactive, a.name)
	}
	if _, dup := a.pgroups[pg.Name()]; dup {
		return fmt.Errorf("%w: %q on %s", ErrDuplicatePropertyGroup, pg.Name(), a.name)
	}
	a.pgroups[pg.Name()] = pg
	return nil
}

// PropertyGroup returns the activity's group with the given name.
func (a *Activity) PropertyGroup(name string) (PropertyGroup, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	pg, ok := a.pgroups[name]
	return pg, ok
}

// PropertyGroupNames lists the activity's registered groups, sorted.
func (a *Activity) PropertyGroupNames() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.pgroups))
	for n := range a.pgroups {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
