package core

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultBranching is the relay-tree fan-out used when a tree
// DeliveryPolicy does not set one.
const DefaultBranching = 4

// RelayInfo is the network identity a relay-capable Action reports for
// tree planning: where it lives and how far away it looks.
type RelayInfo struct {
	// Node is the action's primary endpoint ("tcp:host:port" or
	// "inproc:id"). Actions on the same node cluster into the same
	// subtrees.
	Node string
	// RTT is the measured round-trip estimate to the node, zero when
	// unknown. The default planner places low-RTT nodes near the root.
	RTT time.Duration
}

// TreeMember is one participant handed to a TreePlanner: its position in
// registration order (which collation preserves), its trace label, its
// relay identity, and the registered Action itself so deliverers can
// resolve references and the coordinator can redeliver directly.
type TreeMember struct {
	// Index is the participant's position in registration order.
	Index int
	// Label is the registration's trace label.
	Label string
	// Node is the participant's primary endpoint (RelayInfo.Node).
	Node string
	// RTT is the measured round-trip estimate (RelayInfo.RTT).
	RTT time.Duration
	// Action is the registered action.
	Action Action
}

// TreeNode is one vertex of a relay tree: the member that relays for the
// subtree, and the child subtrees it forwards to.
type TreeNode struct {
	// Member is the participant acting as this subtree's relay.
	Member TreeMember
	// Children are the subtrees this node forwards to.
	Children []*TreeNode
}

// Span returns the number of members in the subtree rooted at n.
func (n *TreeNode) Span() int {
	total := 1
	for _, c := range n.Children {
		total += c.Span()
	}
	return total
}

// indexes appends the registration indexes of every member in the subtree
// to dst, in tree (preorder) order.
func (n *TreeNode) indexes(dst []int) []int {
	dst = append(dst, n.Member.Index)
	for _, c := range n.Children {
		dst = c.indexes(dst)
	}
	return dst
}

// TreePlan is a forest of relay subtrees: the coordinator contacts each
// root directly and the roots fan the signal out below.
type TreePlan struct {
	// Roots are the subtrees the coordinator contacts directly.
	Roots []*TreeNode
}

// TreePlanner builds the relay tree for one broadcast. Implementations
// must be deterministic for a given member list: the differential harness
// (and reconfiguration after a relay death) depends on replanning the same
// members yielding the same tree. Smarter planners (simulated annealing
// over a full latency matrix, topology-aware grouping) plug in through
// DeliveryPolicy.Planner.
type TreePlanner interface {
	// Plan partitions members into a forest with at most branching
	// children per node.
	Plan(members []TreeMember, branching int) TreePlan
}

// GreedyNearestPlanner is the default TreePlanner: a deterministic greedy
// k-nearest construction over the members' measured RTTs. Members are
// ordered by (RTT class, Node, Index) — no randomness, so the same inputs
// always produce the same tree — and laid out as a k-ary heap over that
// order: the k lowest-latency members become roots, and each node adopts
// the k nearest (in that order) members still unplaced. Low-RTT relays
// therefore sit near the coordinator, where they are traversed on every
// path, and members of the same latency class on the same node (usually:
// the same site) cluster into the same subtree.
//
// RTTs are quantized into doubling latency classes (≤500µs, ≤1ms, ≤2ms, …)
// rather than compared raw: live EWMA estimates jitter between rounds, and
// a plan that reshuffled on every µs of noise would defeat the relay plant
// cache that makes repeated rounds cheap. Within a class the node string
// breaks ties, so co-located members stay adjacent.
type GreedyNearestPlanner struct{}

// rttClass quantizes an RTT estimate into a doubling bucket: 0 for ≤500µs
// (or unknown), then one class per doubling. Stable under measurement
// noise, still separating near from far.
func rttClass(rtt time.Duration) int {
	class := 0
	for bound := 500 * time.Microsecond; rtt > bound; bound *= 2 {
		class++
	}
	return class
}

// Plan implements TreePlanner.
func (GreedyNearestPlanner) Plan(members []TreeMember, branching int) TreePlan {
	if len(members) == 0 {
		return TreePlan{}
	}
	if branching <= 0 {
		branching = DefaultBranching
	}
	ordered := append([]TreeMember(nil), members...)
	sort.SliceStable(ordered, func(i, j int) bool {
		ci, cj := rttClass(ordered[i].RTT), rttClass(ordered[j].RTT)
		if ci != cj {
			return ci < cj
		}
		if ordered[i].Node != ordered[j].Node {
			return ordered[i].Node < ordered[j].Node
		}
		return ordered[i].Index < ordered[j].Index
	})
	nodes := make([]*TreeNode, len(ordered))
	for i, m := range ordered {
		nodes[i] = &TreeNode{Member: m}
	}
	// k-ary forest layout: the first k nodes are roots and node i's
	// children are nodes k*(i+1) … k*(i+2)-1, so every non-root has
	// exactly one parent and no member lands in two subtrees.
	var plan TreePlan
	for i, n := range nodes {
		if i < branching {
			plan.Roots = append(plan.Roots, n)
		}
		for c := branching * (i + 1); c < branching*(i+2) && c < len(nodes); c++ {
			n.Children = append(n.Children, nodes[c])
		}
	}
	return plan
}

// SubtreeResult is one member's outcome reported up the relay tree,
// preserving the participant's registration identity so collation stays
// byte-identical to direct delivery.
type SubtreeResult struct {
	// Index is the member's registration index (TreeMember.Index).
	Index int
	// Attempts is how many at-least-once delivery attempts the relay made.
	Attempts int
	// Outcome is the action's response when Err is nil.
	Outcome Outcome
	// Err is the delivery failure after the relay exhausted its attempts.
	Err error
}

// SubtreeDeliverer is the optional interface of relay-capable Actions: a
// proxy whose host can accept a whole subtree batch, deliver the signal to
// its own span, forward to child relays and aggregate the outcomes. The
// coordinator's tree delivery only routes through actions implementing it;
// everything else is delivered directly.
type SubtreeDeliverer interface {
	// RelayInfo reports the action's node identity for tree planning.
	RelayInfo() RelayInfo
	// DeliverSubtree delivers sig to every member of the subtree rooted at
	// node, applying retry per member, and returns one result per member.
	// An error (or a member missing from the results) means that part of
	// the subtree was not delivered; the coordinator re-adopts it and
	// redelivers directly, so subtree delivery — like all delivery — is at
	// least once and actions must stay idempotent.
	DeliverSubtree(ctx context.Context, sig Signal, node *TreeNode, retry RetryPolicy) ([]SubtreeResult, error)
}

// planMembers partitions one broadcast's registrations into relay-capable
// tree members and directly-delivered indexes.
func planMembers(regs []registration) (members []TreeMember, direct []int) {
	for i, reg := range regs {
		if sd, ok := reg.action.(SubtreeDeliverer); ok {
			info := sd.RelayInfo()
			members = append(members, TreeMember{
				Index:  i,
				Label:  reg.label,
				Node:   info.Node,
				RTT:    info.RTT,
				Action: reg.action,
			})
		} else {
			direct = append(direct, i)
		}
	}
	return members, direct
}

// broadcastTree delivers sig through a relay tree: relay-capable actions
// are partitioned into branching-factor subtrees (DeliveryPolicy.Planner),
// each root subtree is delivered as one batch — the root relays to its own
// span and forwards to child relays, aggregating outcomes up — and actions
// that cannot relay are delivered directly through the worker pool.
// Responses are fed to the set strictly in registration order, so
// collation, advance short-circuiting and the recorded trace are
// byte-identical to serial and parallel delivery. A subtree whose relay
// fails (or which returns no result for a member) is re-adopted: the
// coordinator redelivers those members directly, which is why tree
// delivery keeps the at-least-once contract and actions must be
// idempotent. Like parallel delivery it is speculative: an advance cannot
// recall batches already relayed.
func (c *Coordinator) broadcastTree(ctx context.Context, driver *setDriver, regs []registration, sig Signal, policy DeliveryPolicy) (bool, error) {
	n := len(regs)
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var shortCircuit atomic.Bool

	results := make([]attemptResult, n)
	ready := make([]chan struct{}, n)
	for i := range ready {
		ready[i] = make(chan struct{})
	}

	members, direct := planMembers(regs)
	planner := policy.Planner
	if planner == nil {
		planner = GreedyNearestPlanner{}
	}
	branching := policy.Branching
	if branching <= 0 {
		branching = DefaultBranching
	}
	plan := planner.Plan(members, branching)

	var wg sync.WaitGroup

	// Direct deliveries run through the same bounded worker pool parallel
	// delivery uses.
	if len(direct) > 0 {
		jobs := make(chan int, len(direct))
		for _, idx := range direct {
			jobs <- idx
		}
		close(jobs)
		for w := policy.workers(len(direct)); w > 0; w-- {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range jobs {
					if shortCircuit.Load() {
						results[idx].skipped = true
						close(ready[idx])
						continue
					}
					results[idx] = c.runAttempts(dctx, regs[idx], sig, nil)
					close(ready[idx])
				}
			}()
		}
	}

	// One concurrent batch per root subtree.
	for _, root := range plan.Roots {
		wg.Add(1)
		go func(root *TreeNode) {
			defer wg.Done()
			c.deliverSubtree(dctx, &shortCircuit, regs, results, ready, sig, root)
		}(root)
	}
	// All spawned work finishes before we return, so no goroutine outlives
	// the broadcast.
	defer wg.Wait()

	advance := false
	var feedErr error
	for i := 0; i < n; i++ {
		<-ready[i]
		if advance || feedErr != nil {
			if advance {
				c.countSpeculative(results[i])
			}
			continue
		}
		r := results[i]
		if r.skipped {
			continue
		}
		c.replayTrace(regs[i], sig, r)
		adv, serr := driver.setResponse(r.outcome, r.err)
		if serr != nil {
			feedErr = serr
			shortCircuit.Store(true)
			cancel()
			continue
		}
		if adv {
			advance = true
			shortCircuit.Store(true)
			cancel()
		}
	}
	return advance, feedErr
}

// deliverSubtree delivers one root subtree: the batch through the root's
// SubtreeDeliverer, then direct redelivery (re-adoption) for any member
// the batch failed to cover — the tree-reconfiguration path when a relay
// dies mid-round.
func (c *Coordinator) deliverSubtree(ctx context.Context, shortCircuit *atomic.Bool, regs []registration, results []attemptResult, ready []chan struct{}, sig Signal, root *TreeNode) {
	idxs := root.indexes(nil)
	if shortCircuit.Load() {
		for _, idx := range idxs {
			results[idx].skipped = true
			close(ready[idx])
		}
		return
	}

	var byIndex map[int]SubtreeResult
	if sd, ok := root.Member.Action.(SubtreeDeliverer); ok {
		if res, err := sd.DeliverSubtree(ctx, sig, root, c.retry); err == nil {
			byIndex = make(map[int]SubtreeResult, len(res))
			for _, r := range res {
				byIndex[r.Index] = r
			}
		}
	}

	for _, idx := range idxs {
		if r, ok := byIndex[idx]; ok {
			attempts := r.Attempts
			if attempts < 1 {
				attempts = 1
			}
			results[idx] = attemptResult{outcome: r.Outcome, err: r.Err, attempts: attempts}
			close(ready[idx])
			continue
		}
		// Re-adopt the orphaned member: deliver directly, idempotency
		// absorbing any duplicate the dead relay already managed.
		if shortCircuit.Load() {
			results[idx].skipped = true
		} else {
			results[idx] = c.runAttempts(ctx, regs[idx], sig, nil)
		}
		close(ready[idx])
	}
}
