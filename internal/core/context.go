package core

import (
	"context"
	"fmt"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/ids"
)

// activityKey is the private key type for activity propagation through
// context.Context — the Go analogue of CORBA's implicit per-thread context.
type activityKey struct{}

// NewContext returns a context carrying a.
func NewContext(ctx context.Context, a *Activity) context.Context {
	return context.WithValue(ctx, activityKey{}, a)
}

// FromContext returns the activity carried by ctx, if any.
func FromContext(ctx context.Context) (*Activity, bool) {
	a, _ := ctx.Value(activityKey{}).(*Activity)
	return a, a != nil
}

// PropagationEntry is one level of the activity lineage carried in a
// propagation context.
type PropagationEntry struct {
	// ID is the activity's unique id.
	ID ids.UID
	// Name is the activity's human-readable name.
	Name string
}

// PropagationContext is the wire form of "which activity am I in",
// carried in the ORB's ContextActivity service context on every request
// made from within an activity. It holds the activity lineage from root to
// current plus snapshots of the by-value property groups (§3.3).
type PropagationContext struct {
	// Path is the activity lineage, root first.
	Path []PropagationEntry
	// Properties holds by-value property-group snapshots, keyed by group
	// name then property key.
	Properties map[string]map[string]any
}

// ActivityID returns the current (innermost) activity id.
func (p *PropagationContext) ActivityID() ids.UID {
	if len(p.Path) == 0 {
		return ids.Nil
	}
	return p.Path[len(p.Path)-1].ID
}

// PropagationContext builds the context to ship with outgoing requests.
// Property groups propagate according to their behaviour: by-value groups
// snapshot their tuples; by-reference and local groups ship nothing (a
// by-reference group is re-bound at the receiver through its name).
func (a *Activity) PropagationContext() (*PropagationContext, error) {
	var path []PropagationEntry
	for cur := a; cur != nil; cur = cur.parent {
		path = append([]PropagationEntry{{ID: cur.id, Name: cur.name}}, path...)
	}
	pc := &PropagationContext{Path: path}

	a.mu.Lock()
	groups := make(map[string]PropertyGroup, len(a.pgroups))
	for n, g := range a.pgroups {
		groups[n] = g
	}
	a.mu.Unlock()

	for name, g := range groups {
		ts, ok := g.(*TupleSpace)
		if !ok || ts.Propagation() != PropagateByValue {
			continue
		}
		if pc.Properties == nil {
			pc.Properties = make(map[string]map[string]any)
		}
		pc.Properties[name] = ts.Snapshot()
	}
	return pc, nil
}

// Encode writes the propagation context to a CDR stream.
func (p *PropagationContext) Encode(e *cdr.Encoder) error {
	e.WriteUint32(uint32(len(p.Path)))
	for _, entry := range p.Path {
		e.WriteRaw(entry.ID[:])
		e.WriteString(entry.Name)
	}
	props := make(map[string]any, len(p.Properties))
	for g, kv := range p.Properties {
		inner := make(map[string]any, len(kv))
		for k, v := range kv {
			inner[k] = v
		}
		props[g] = inner
	}
	if err := cdr.EncodeAny(e, props); err != nil {
		return fmt.Errorf("core: encode propagation properties: %w", err)
	}
	return nil
}

// Marshal encodes the context as a standalone service-context payload.
func (p *PropagationContext) Marshal() ([]byte, error) {
	e := cdr.NewEncoder(128)
	if err := p.Encode(e); err != nil {
		return nil, err
	}
	return append([]byte(nil), e.Bytes()...), nil
}

// DecodePropagationContext reads a propagation context from a CDR stream.
func DecodePropagationContext(d *cdr.Decoder) (*PropagationContext, error) {
	n := d.ReadUint32()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("core: decode propagation context: %w", err)
	}
	if int(n) > d.Remaining() {
		return nil, fmt.Errorf("core: decode propagation context: path length %d too large", n)
	}
	pc := &PropagationContext{}
	for i := uint32(0); i < n; i++ {
		var entry PropagationEntry
		for j := 0; j < len(entry.ID); j++ {
			entry.ID[j] = d.ReadOctet()
		}
		entry.Name = d.ReadString()
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("core: decode propagation entry: %w", err)
		}
		pc.Path = append(pc.Path, entry)
	}
	v, err := cdr.DecodeAny(d)
	if err != nil {
		return nil, fmt.Errorf("core: decode propagation properties: %w", err)
	}
	props, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("core: propagation properties are %T, want map", v)
	}
	for g, kv := range props {
		inner, ok := kv.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("core: property group %q payload is %T, want map", g, kv)
		}
		if pc.Properties == nil {
			pc.Properties = make(map[string]map[string]any)
		}
		pc.Properties[g] = inner
	}
	return pc, nil
}

// UnmarshalPropagationContext decodes a standalone payload.
func UnmarshalPropagationContext(b []byte) (*PropagationContext, error) {
	return DecodePropagationContext(cdr.NewDecoder(b))
}
