package core

import (
	"fmt"
	"sort"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/ids"
	"github.com/extendedtx/activityservice/internal/wal"
)

// Log record kinds used by the activity journal. They share the wal with
// the transaction service's records (disjoint kind ranges).
const (
	// RecordBegun journals an activity starting: id, parent id, name.
	RecordBegun wal.Kind = 0x21
	// RecordStatus journals a completion-status change.
	RecordStatus wal.Kind = 0x22
	// RecordSetReg journals a recoverable SignalSet registration.
	RecordSetReg wal.Kind = 0x23
	// RecordActionReg journals a recoverable Action registration.
	RecordActionReg wal.Kind = 0x24
	// RecordCompleted journals an activity's completion and outcome.
	RecordCompleted wal.Kind = 0x25
)

// journal persists activity structure events. A nil journal (no WithJournal
// option) makes every method a no-op: journaling is strictly opt-in.
// Journal writes are best-effort; the application drives recovery and can
// tolerate a truncated tail (§3.4: recovery is predominately the
// application's responsibility).
type journal struct {
	log *wal.Log
}

func (j *journal) begun(id, parent ids.UID, name string) {
	if j == nil {
		return
	}
	e := cdr.NewEncoder(64)
	e.WriteRaw(id[:])
	e.WriteRaw(parent[:])
	e.WriteString(name)
	_, _ = j.log.Append(RecordBegun, e.Bytes())
}

func (j *journal) statusSet(id ids.UID, cs CompletionStatus) {
	if j == nil {
		return
	}
	e := cdr.NewEncoder(24)
	e.WriteRaw(id[:])
	e.WriteOctet(byte(cs))
	_, _ = j.log.Append(RecordStatus, e.Bytes())
}

func (j *journal) setRegistered(id ids.UID, factory string, params []byte) {
	if j == nil {
		return
	}
	e := cdr.NewEncoder(64)
	e.WriteRaw(id[:])
	e.WriteString(factory)
	e.WriteBytes(params)
	_, _ = j.log.Append(RecordSetReg, e.Bytes())
}

func (j *journal) actionRegistered(id ids.UID, setName, factory string, params []byte) {
	if j == nil {
		return
	}
	e := cdr.NewEncoder(64)
	e.WriteRaw(id[:])
	e.WriteString(setName)
	e.WriteString(factory)
	e.WriteBytes(params)
	_, _ = j.log.Append(RecordActionReg, e.Bytes())
}

func (j *journal) completed(id ids.UID, cs CompletionStatus, outcomeName string) {
	if j == nil {
		return
	}
	e := cdr.NewEncoder(48)
	e.WriteRaw(id[:])
	e.WriteOctet(byte(cs))
	e.WriteString(outcomeName)
	_, _ = j.log.Append(RecordCompleted, e.Bytes())
}

// RegisterRecoverableSignalSet creates a SignalSet through the service's
// named factory, registers it with the activity and journals the
// registration so recovery can recreate it.
func (a *Activity) RegisterRecoverableSignalSet(factoryName string, params []byte) (SignalSet, error) {
	f, err := a.svc.signalSetFactory(factoryName)
	if err != nil {
		return nil, err
	}
	set, err := f(params)
	if err != nil {
		return nil, fmt.Errorf("core: signal set factory %q: %w", factoryName, err)
	}
	if err := a.RegisterSignalSet(set); err != nil {
		return nil, err
	}
	a.svc.journal.setRegistered(a.id, factoryName, params)
	return set, nil
}

// AddRecoverableAction creates an Action through the service's named
// factory, registers it with the named set and journals the registration.
func (a *Activity) AddRecoverableAction(setName, factoryName string, params []byte) (ActionID, error) {
	f, err := a.svc.actionFactory(factoryName)
	if err != nil {
		return ActionID{}, err
	}
	action, err := f(params)
	if err != nil {
		return ActionID{}, fmt.Errorf("core: action factory %q: %w", factoryName, err)
	}
	id, err := a.AddAction(setName, action)
	if err != nil {
		return ActionID{}, err
	}
	a.svc.journal.actionRegistered(a.id, setName, factoryName, params)
	return id, nil
}

// recoveredRecord accumulates one activity's journaled history.
type recoveredRecord struct {
	id        ids.UID
	parent    ids.UID
	name      string
	cs        CompletionStatus
	completed bool
	sets      []recoveredSet
	actions   []recoveredAction
	order     int
}

type recoveredSet struct {
	factory string
	params  []byte
}

type recoveredAction struct {
	setName string
	factory string
	params  []byte
}

// Recover rebuilds the in-flight activity tree from the journal: every
// activity begun but not completed is recreated (in begin order, so parents
// precede children) with its journaled completion status, recoverable
// SignalSets and recoverable Actions. It returns the recovered root
// activities; per §3.4 it is then the application's logic that drives them
// to completion.
func (s *Service) Recover(log *wal.Log) ([]*Activity, error) {
	records := make(map[ids.UID]*recoveredRecord)
	order := 0
	err := log.Replay(func(r wal.Record) error {
		d := cdr.NewDecoder(r.Data)
		var id ids.UID
		readUID := func() ids.UID {
			var u ids.UID
			for i := 0; i < len(u); i++ {
				u[i] = d.ReadOctet()
			}
			return u
		}
		switch r.Kind {
		case RecordBegun:
			id = readUID()
			parent := readUID()
			name := d.ReadString()
			if err := d.Err(); err != nil {
				return fmt.Errorf("core: corrupt begun record: %w", err)
			}
			order++
			records[id] = &recoveredRecord{
				id: id, parent: parent, name: name,
				cs: CompletionSuccess, order: order,
			}
		case RecordStatus:
			id = readUID()
			cs := CompletionStatus(d.ReadOctet())
			if rec, ok := records[id]; ok && d.Err() == nil {
				rec.cs = cs
			}
		case RecordSetReg:
			id = readUID()
			factory := d.ReadString()
			// Clone: the params outlive the replay callback (and with it any
			// reuse of the record's buffer by the journal).
			params := d.ReadBytesClone()
			if rec, ok := records[id]; ok && d.Err() == nil {
				rec.sets = append(rec.sets, recoveredSet{factory: factory, params: params})
			}
		case RecordActionReg:
			id = readUID()
			setName := d.ReadString()
			factory := d.ReadString()
			params := d.ReadBytesClone() // retained past the replay callback
			if rec, ok := records[id]; ok && d.Err() == nil {
				rec.actions = append(rec.actions, recoveredAction{setName: setName, factory: factory, params: params})
			}
		case RecordCompleted:
			id = readUID()
			if rec, ok := records[id]; ok && d.Err() == nil {
				rec.completed = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Rebuild in begin order so parents exist before children.
	pending := make([]*recoveredRecord, 0, len(records))
	for _, rec := range records {
		if !rec.completed {
			pending = append(pending, rec)
		}
	}
	sortRecoveredByOrder(pending)

	rebuilt := make(map[ids.UID]*Activity, len(pending))
	var roots []*Activity
	for _, rec := range pending {
		// A nil parent — including one whose parent completed before the
		// crash — makes this activity a root of the recovered forest.
		var parent *Activity
		if !rec.parent.IsNil() {
			parent = rebuilt[rec.parent]
		}
		a := s.newActivity(rec.name, parent, withID(rec.id))
		a.mu.Lock()
		a.cs = rec.cs
		a.mu.Unlock()
		if parent != nil {
			parent.mu.Lock()
			parent.children[a.id] = a
			parent.mu.Unlock()
		} else {
			roots = append(roots, a)
		}
		rebuilt[rec.id] = a

		for _, rs := range rec.sets {
			f, ferr := s.signalSetFactory(rs.factory)
			if ferr != nil {
				return nil, fmt.Errorf("core: recover %s: %w", rec.name, ferr)
			}
			set, serr := f(rs.params)
			if serr != nil {
				return nil, fmt.Errorf("core: recover %s: factory %q: %w", rec.name, rs.factory, serr)
			}
			if rerr := a.RegisterSignalSet(set); rerr != nil {
				return nil, rerr
			}
		}
		for _, ra := range rec.actions {
			f, ferr := s.actionFactory(ra.factory)
			if ferr != nil {
				return nil, fmt.Errorf("core: recover %s: %w", rec.name, ferr)
			}
			action, aerr := f(ra.params)
			if aerr != nil {
				return nil, fmt.Errorf("core: recover %s: factory %q: %w", rec.name, ra.factory, aerr)
			}
			if _, rerr := a.AddAction(ra.setName, action); rerr != nil {
				return nil, rerr
			}
		}
	}
	return roots, nil
}

func sortRecoveredByOrder(recs []*recoveredRecord) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].order < recs[j].order })
}
