package core

import (
	"context"
	"errors"
	"testing"
)

func TestUserActivityBeginComplete(t *testing.T) {
	svc := New()
	ua := NewUserActivity(svc)
	ctx := context.Background()

	ctx, a, err := ua.Begin(ctx, "job")
	if err != nil {
		t.Fatal(err)
	}
	if cur, ok := ua.Current(ctx); !ok || cur != a {
		t.Fatal("context lost the activity")
	}
	out, ctx, err := ua.Complete(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "success" {
		t.Fatalf("outcome = %+v", out)
	}
	if _, ok := ua.Current(ctx); ok {
		t.Fatal("context still carries activity after root completion")
	}
}

func TestUserActivityNestsAndPops(t *testing.T) {
	svc := New()
	ua := NewUserActivity(svc)
	ctx := context.Background()

	ctx, top, _ := ua.Begin(ctx, "top")
	ctx, sub, _ := ua.Begin(ctx, "sub")
	if sub.Parent() != top {
		t.Fatal("second Begin did not nest")
	}
	_, ctx, err := ua.Complete(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cur, ok := ua.Current(ctx); !ok || cur != top {
		t.Fatal("did not pop to parent")
	}
	if _, _, err := ua.Complete(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestUserActivityCompleteWithStatus(t *testing.T) {
	svc := New()
	ua := NewUserActivity(svc)
	ctx, _, _ := ua.Begin(context.Background(), "failing")
	out, _, err := ua.CompleteWithStatus(ctx, CompletionFail)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "failure" {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestUserActivitySuspendResume(t *testing.T) {
	svc := New()
	ua := NewUserActivity(svc)
	ctx, a, _ := ua.Begin(context.Background(), "pausable")
	if err := ua.Suspend(ctx); err != nil {
		t.Fatal(err)
	}
	if a.State() != ActivitySuspended {
		t.Fatalf("state = %s", a.State())
	}
	if err := ua.Resume(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ua.Complete(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestUserActivityNoContext(t *testing.T) {
	svc := New()
	ua := NewUserActivity(svc)
	ctx := context.Background()
	if _, _, err := ua.Complete(ctx); !errors.Is(err, ErrNoCurrentActivity) {
		t.Fatalf("complete err = %v", err)
	}
	if err := ua.SetCompletionStatus(ctx, CompletionFail); !errors.Is(err, ErrNoCurrentActivity) {
		t.Fatalf("set status err = %v", err)
	}
	if _, err := ua.CompletionStatus(ctx); !errors.Is(err, ErrNoCurrentActivity) {
		t.Fatalf("status err = %v", err)
	}
	if err := ua.Suspend(ctx); !errors.Is(err, ErrNoCurrentActivity) {
		t.Fatalf("suspend err = %v", err)
	}
}

func TestActivityManagerPlugsHLSIn(t *testing.T) {
	// Fig. 13: the HLS provides SignalSets and Actions and plugs them into
	// the current activity through the ActivityManager.
	svc := New()
	ua := NewUserActivity(svc)
	am := NewActivityManager(svc)
	ctx, _, _ := ua.Begin(context.Background(), "hls-managed")

	set := NewSequenceSet("hls-proto", "phase-1")
	if err := am.RegisterSignalSet(ctx, set); err != nil {
		t.Fatal(err)
	}
	act := &collectingAction{name: "hls-action"}
	if _, err := am.AddAction(ctx, "hls-proto", act); err != nil {
		t.Fatal(err)
	}
	out, err := am.Broadcast(ctx, "hls-proto")
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "completed" {
		t.Fatalf("outcome = %+v", out)
	}
	if len(act.Signals()) != 1 {
		t.Fatal("action missed the broadcast")
	}
	if name, err := am.CurrentName(ctx); err != nil || name != "hls-managed" {
		t.Fatalf("current name = %q err=%v", name, err)
	}
}

func TestActivityManagerCompletionSetSelection(t *testing.T) {
	svc := New()
	ua := NewUserActivity(svc)
	am := NewActivityManager(svc)
	ctx, _, _ := ua.Begin(context.Background(), "custom-completion")
	set := NewSequenceSet("special", "bye").Collate(func([]Outcome) Outcome {
		return Outcome{Name: "special-done"}
	})
	_ = am.RegisterSignalSet(ctx, set)
	if err := am.SetCompletionSet(ctx, "special"); err != nil {
		t.Fatal(err)
	}
	out, _, err := ua.Complete(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "special-done" {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestActivityManagerNoContext(t *testing.T) {
	am := NewActivityManager(New())
	ctx := context.Background()
	if err := am.RegisterSignalSet(ctx, NewSequenceSet("s")); !errors.Is(err, ErrNoCurrentActivity) {
		t.Fatalf("err = %v", err)
	}
	if _, err := am.AddAction(ctx, "s", okAction()); !errors.Is(err, ErrNoCurrentActivity) {
		t.Fatalf("err = %v", err)
	}
	if _, err := am.Broadcast(ctx, "s"); !errors.Is(err, ErrNoCurrentActivity) {
		t.Fatalf("err = %v", err)
	}
	if _, err := am.MustCurrent(ctx); !errors.Is(err, ErrNoCurrentActivity) {
		t.Fatalf("err = %v", err)
	}
}
