package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

func okAction() Action {
	return ActionFunc(func(context.Context, Signal) (Outcome, error) {
		return Outcome{Name: "ok"}, nil
	})
}

func TestActivityLifecycle(t *testing.T) {
	svc := New()
	a := svc.Begin("A1")
	if a.State() != ActivityActive || a.CompletionStatus() != CompletionSuccess {
		t.Fatalf("initial state=%s cs=%s", a.State(), a.CompletionStatus())
	}
	out, err := a.Complete(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "success" {
		t.Fatalf("outcome = %+v", out)
	}
	if a.State() != ActivityCompleted {
		t.Fatalf("state = %s", a.State())
	}
	if svc.Live() != 0 {
		t.Fatalf("live = %d", svc.Live())
	}
}

func TestActivityCompleteDrivesCompletionSet(t *testing.T) {
	svc := New()
	a := svc.Begin("A1")
	set := NewSequenceSet(DefaultCompletionSet, "finish").Collate(func(rs []Outcome) Outcome {
		return Outcome{Name: "custom", Data: int64(len(rs))}
	})
	if err := a.RegisterSignalSet(set); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddAction(DefaultCompletionSet, okAction()); err != nil {
		t.Fatal(err)
	}
	out, err := a.Complete(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "custom" || out.Data != int64(1) {
		t.Fatalf("outcome = %+v", out)
	}
	// Completion status was pushed into the set before driving.
	if set.CompletionStatus() != CompletionSuccess {
		t.Fatalf("set status = %s", set.CompletionStatus())
	}
	if stored, ok := a.Outcome(); !ok || stored.Name != "custom" {
		t.Fatalf("stored outcome = %+v ok=%v", stored, ok)
	}
}

func TestActivityFailureStatusReachesSet(t *testing.T) {
	svc := New()
	a := svc.Begin("A1")
	set := NewSequenceSet(DefaultCompletionSet, "finish")
	_ = a.RegisterSignalSet(set)
	if err := a.SetCompletionStatus(CompletionFail); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Complete(context.Background()); err != nil {
		t.Fatal(err)
	}
	if set.CompletionStatus() != CompletionFail {
		t.Fatalf("set status = %s", set.CompletionStatus())
	}
}

func TestCompletionStatusFailOnlyIsSticky(t *testing.T) {
	svc := New()
	a := svc.Begin("A1")
	if err := a.SetCompletionStatus(CompletionFailOnly); err != nil {
		t.Fatal(err)
	}
	if err := a.SetCompletionStatus(CompletionSuccess); !errors.Is(err, ErrCompletionStatusFixed) {
		t.Fatalf("err = %v", err)
	}
	// Fail → Success → Fail transitions are allowed before FailOnly.
	b := svc.Begin("A2")
	for _, cs := range []CompletionStatus{CompletionFail, CompletionSuccess, CompletionFail} {
		if err := b.SetCompletionStatus(cs); err != nil {
			t.Fatalf("set %s: %v", cs, err)
		}
	}
}

func TestCompleteRejectsActiveChildren(t *testing.T) {
	svc := New()
	a := svc.Begin("parent")
	child, err := a.BeginChild("child")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Complete(context.Background()); !errors.Is(err, ErrChildrenActive) {
		t.Fatalf("err = %v", err)
	}
	if _, err := child.Complete(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Complete(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestNestedActivityHierarchy(t *testing.T) {
	svc := New()
	root := svc.Begin("root")
	c1, _ := root.BeginChild("c1")
	c2, _ := root.BeginChild("c2")
	g1, _ := c1.BeginChild("g1")
	if g1.Parent() != c1 || c1.Parent() != root || root.Parent() != nil {
		t.Fatal("parent links wrong")
	}
	kids := root.Children()
	if len(kids) != 2 {
		t.Fatalf("root has %d children", len(kids))
	}
	_ = c2
	if svc.Live() != 4 {
		t.Fatalf("live = %d", svc.Live())
	}
}

func TestSuspendResume(t *testing.T) {
	svc := New()
	a := svc.Begin("A")
	set := NewSequenceSet("s", "x")
	_ = a.RegisterSignalSet(set)

	if err := a.Suspend(); err != nil {
		t.Fatal(err)
	}
	if a.State() != ActivitySuspended {
		t.Fatalf("state = %s", a.State())
	}
	if _, err := a.Signal(context.Background(), "s"); !errors.Is(err, ErrActivitySuspended) {
		t.Fatalf("signal err = %v", err)
	}
	if _, err := a.Complete(context.Background()); !errors.Is(err, ErrActivitySuspended) {
		t.Fatalf("complete err = %v", err)
	}
	if _, err := a.BeginChild("c"); !errors.Is(err, ErrActivityInactive) {
		t.Fatalf("child err = %v", err)
	}
	if err := a.Suspend(); err == nil {
		t.Fatal("double suspend succeeded")
	}
	if err := a.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := a.Resume(); err == nil {
		t.Fatal("double resume succeeded")
	}
	if _, err := a.Signal(context.Background(), "s"); err != nil {
		t.Fatalf("signal after resume: %v", err)
	}
}

func TestSignalAtArbitraryPoint(t *testing.T) {
	// §3.1: signals may be communicated at arbitrary points, not just
	// termination.
	svc := New()
	a := svc.Begin("A")
	mid := NewSequenceSet("midpoint", "checkpoint")
	_ = a.RegisterSignalSet(mid)
	act := &collectingAction{name: "observer"}
	if _, err := a.AddAction("midpoint", act); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Signal(context.Background(), "midpoint"); err != nil {
		t.Fatal(err)
	}
	if a.State() != ActivityActive {
		t.Fatalf("state = %s after mid-lifetime signal", a.State())
	}
	if len(act.Signals()) != 1 {
		t.Fatal("observer missed the checkpoint signal")
	}
	if _, err := a.Complete(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestSignalUnknownSet(t *testing.T) {
	svc := New()
	a := svc.Begin("A")
	if _, err := a.Signal(context.Background(), "ghost"); !errors.Is(err, ErrUnknownSignalSet) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateSignalSetRejected(t *testing.T) {
	svc := New()
	a := svc.Begin("A")
	if err := a.RegisterSignalSet(NewSequenceSet("s", "x")); err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterSignalSet(NewSequenceSet("s", "y")); !errors.Is(err, ErrDuplicateSignalSet) {
		t.Fatalf("err = %v", err)
	}
}

func TestCompletedActivityRejectsEverything(t *testing.T) {
	svc := New()
	a := svc.Begin("A")
	if _, err := a.Complete(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Complete(context.Background()); !errors.Is(err, ErrActivityInactive) {
		t.Fatalf("second complete err = %v", err)
	}
	if err := a.SetCompletionStatus(CompletionFail); !errors.Is(err, ErrActivityInactive) {
		t.Fatalf("set status err = %v", err)
	}
	if _, err := a.BeginChild("c"); !errors.Is(err, ErrActivityInactive) {
		t.Fatalf("child err = %v", err)
	}
	if err := a.RegisterSignalSet(NewSequenceSet("s")); !errors.Is(err, ErrActivityInactive) {
		t.Fatalf("register err = %v", err)
	}
	if _, err := a.AddAction("s", okAction()); !errors.Is(err, ErrActivityInactive) {
		t.Fatalf("add action err = %v", err)
	}
}

func TestActivityTimeoutForcesFailOnly(t *testing.T) {
	svc := New()
	a := svc.Begin("slow", WithTimeout(20*time.Millisecond))
	deadline := time.After(2 * time.Second)
	for a.CompletionStatus() != CompletionFailOnly {
		select {
		case <-deadline:
			t.Fatalf("completion status = %s, timeout never fired", a.CompletionStatus())
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	out, err := a.Complete(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "failure" {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestCustomCompletionSet(t *testing.T) {
	svc := New()
	a := svc.Begin("A")
	alt := NewSequenceSet("alternative", "wrap-up").Collate(func([]Outcome) Outcome {
		return Outcome{Name: "alt-done"}
	})
	_ = a.RegisterSignalSet(alt)
	a.SetCompletionSet("alternative")
	out, err := a.Complete(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "alt-done" {
		t.Fatalf("outcome = %+v", out)
	}
}

// TestFig4ActivityTransactionRelationship reproduces fig. 4's structure:
// activities with transactional and non-transactional periods, including a
// nested transactional activity A3' inside A3 (the transactions themselves
// are exercised in the integration tests; here we assert the activity
// shapes compose).
func TestFig4ActivityTransactionRelationship(t *testing.T) {
	svc := New()
	ctx := context.Background()
	a1 := svc.Begin("A1")
	a2 := svc.Begin("A2")
	a3 := svc.Begin("A3")
	a3p, err := a3.BeginChild("A3'")
	if err != nil {
		t.Fatal(err)
	}
	a4 := svc.Begin("A4")
	a5 := svc.Begin("A5")

	for _, a := range []*Activity{a1, a2, a3p, a3, a4, a5} {
		if _, err := a.Complete(ctx); err != nil {
			t.Fatalf("complete %s: %v", a.Name(), err)
		}
	}
	if svc.Live() != 0 {
		t.Fatalf("live = %d", svc.Live())
	}
}

func TestFindLiveActivity(t *testing.T) {
	svc := New()
	a := svc.Begin("A")
	got, ok := svc.Find(a.ID())
	if !ok || got != a {
		t.Fatal("Find failed for live activity")
	}
	_, _ = a.Complete(context.Background())
	if _, ok := svc.Find(a.ID()); ok {
		t.Fatal("Find succeeded for completed activity")
	}
}
