package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/extendedtx/activityservice/internal/ids"
	"github.com/extendedtx/activityservice/internal/trace"
	"github.com/extendedtx/activityservice/internal/wal"
)

// Service is the Activity Service: the factory for activities and the home
// of recovery. One Service per process is typical (it plays the role the
// per-ORB service plays in the CORBA architecture of fig. 3).
type Service struct {
	gen      *ids.Generator
	rec      *trace.Recorder
	retry    RetryPolicy
	delivery DeliveryPolicy

	journal *journal

	// counters aggregates speculative-delivery accounting across every
	// coordinator of this Service (see DeliveryStats).
	counters deliveryCounters

	// live is striped (see shard.go) so concurrent Begin / Find / Complete
	// from many goroutines do not serialize on one registry lock.
	live *activityRegistry

	mu        sync.Mutex
	setFacs   map[string]SignalSetFactory
	actionFac map[string]ActionFactory

	// Drain state (see Drain): draining is read on the forget fast path;
	// drainMu orders the draining-flag flip, TryBegin's
	// check-then-register, and the quiesce close, so a TryBegin racing a
	// Drain can never slip an activity past WaitQuiesced.
	draining      atomic.Bool
	drainMu       sync.Mutex
	quiesced      chan struct{}
	quiesceClosed bool
}

// Option configures a Service.
type Option interface {
	apply(*Service)
}

type optionFunc func(*Service)

func (f optionFunc) apply(s *Service) { f(s) }

// WithTrace records every coordinator interaction into rec, enabling the
// figure-regeneration tooling.
func WithTrace(rec *trace.Recorder) Option {
	return optionFunc(func(s *Service) { s.rec = rec })
}

// WithRetryPolicy sets the signal delivery retry policy (at-least-once).
func WithRetryPolicy(p RetryPolicy) Option {
	return optionFunc(func(s *Service) { s.retry = p })
}

// WithDelivery sets the Service-wide default delivery policy for signal
// broadcasts. Individual SignalSets override it by implementing
// DeliveryPolicyProvider (e.g. via BaseSet.SetDelivery). The zero policy
// delivers serially.
func WithDelivery(p DeliveryPolicy) Option {
	return optionFunc(func(s *Service) { s.delivery = p })
}

// WithJournal persists activity structure events to log so the activity
// tree can be rebuilt after a crash (§3.4).
func WithJournal(log *wal.Log) Option {
	return optionFunc(func(s *Service) { s.journal = &journal{log: log} })
}

// New returns an Activity Service.
func New(opts ...Option) *Service {
	s := &Service{
		gen:       ids.NewGenerator(),
		retry:     RetryPolicy{Attempts: 3},
		live:      newActivityRegistry(),
		setFacs:   make(map[string]SignalSetFactory),
		actionFac: make(map[string]ActionFactory),
		quiesced:  make(chan struct{}),
	}
	for _, o := range opts {
		o.apply(s)
	}
	return s
}

// Trace returns the service's trace recorder (nil when tracing is off).
func (s *Service) Trace() *trace.Recorder { return s.rec }

// DeliveryStats returns a snapshot of the speculative-delivery accounting
// aggregated across every coordinator of this Service: how much parallel
// fan-out work an advance threw away. A high discard rate on an
// advance-heavy workload says the set should deliver serially (or with a
// tighter worker bound); all-zero counters say parallel delivery is pure
// win.
func (s *Service) DeliveryStats() DeliveryStats {
	return s.counters.snapshot()
}

// BeginOption configures one activity.
type BeginOption interface {
	applyBegin(*Activity)
}

type beginOptionFunc func(*Activity)

func (f beginOptionFunc) applyBegin(a *Activity) { f(a) }

// WithTimeout forces the activity's completion status to FailOnly if it is
// still running after d, per the Activity Service timeout semantics.
func WithTimeout(d time.Duration) BeginOption {
	return beginOptionFunc(func(a *Activity) {
		a.timer = time.AfterFunc(d, func() {
			// Best effort: the activity may have completed already.
			_ = a.SetCompletionStatus(CompletionFailOnly)
		})
	})
}

// withID pins the activity id; used by recovery to rebuild the tree.
func withID(id ids.UID) BeginOption {
	return beginOptionFunc(func(a *Activity) { a.id = id })
}

// WithActivityDelivery overrides the Service-wide delivery policy for one
// activity's coordinator — the per-activity opt-in a host uses to fan
// signals out in parallel for activities whose actions are remote (the
// latency-bound regime the parallel engine targets) while local activities
// keep the Service default. SignalSets choosing their own policy still win.
func WithActivityDelivery(p DeliveryPolicy) BeginOption {
	return beginOptionFunc(func(a *Activity) { a.delivery = p })
}

// Begin starts a new root activity.
func (s *Service) Begin(name string, opts ...BeginOption) *Activity {
	a := s.newActivity(name, nil, opts...)
	s.journal.begun(a.id, ids.Nil, name)
	s.rec.Record(trace.KindBegin, name, "", "", "root activity")
	return a
}

func (s *Service) newActivity(name string, parent *Activity, opts ...BeginOption) *Activity {
	a := &Activity{
		svc:      s,
		id:       s.gen.New(),
		name:     name,
		parent:   parent,
		state:    ActivityActive,
		cs:       CompletionSuccess,
		children: make(map[ids.UID]*Activity),
		sets:     make(map[string]SignalSet),
		pgroups:  make(map[string]PropertyGroup),
	}
	for _, o := range opts {
		o.applyBegin(a)
	}
	delivery := s.delivery
	if a.delivery.Mode != 0 {
		delivery = a.delivery
	}
	a.coord = newCoordinator(name, s.gen, s.rec, s.retry, delivery, &s.counters)
	s.live.put(a)
	return a
}

// ErrServiceDraining is returned by TryBegin while the Service is
// draining: the process is leaving the fleet, so new activities must be
// begun elsewhere (the sharded factory converts it into a WrongShard
// redirect).
var ErrServiceDraining = errors.New("core: service draining: new activities must begin elsewhere")

// TryBegin is Begin with admission: it refuses with ErrServiceDraining
// once Drain has been called. Sharded hosts route begins through it so
// a draining member stops accepting keys the shard map has already
// moved to its successors; plain Begin stays unconditional for hosts
// that never drain (and for recovery, which must be able to rebuild
// in-flight activities on a draining process).
func (s *Service) TryBegin(name string, opts ...BeginOption) (*Activity, error) {
	// The check and the registration happen under drainMu, the lock
	// Drain holds while flipping the flag and taking its emptiness
	// snapshot: either this activity registers before the snapshot (the
	// drain waits for it) or the flag is already visible here (the begin
	// is refused). An activity can never slip between Drain's snapshot
	// and the quiesce close.
	s.drainMu.Lock()
	if s.draining.Load() {
		s.drainMu.Unlock()
		return nil, ErrServiceDraining
	}
	a := s.Begin(name, opts...)
	s.drainMu.Unlock()
	return a, nil
}

// Drain puts the Service into drain mode: TryBegin refuses new
// activities while everything already live runs to completion where it
// started (in-flight protocol state — signal sets, 2PC/BTP phases,
// recovery log — never migrates mid-activity). WaitQuiesced unblocks
// once the last live activity completes. Drain is idempotent; there is
// no undrain — a drained member is expected to be removed from the
// fleet and restarted.
func (s *Service) Drain() {
	s.drainMu.Lock()
	s.draining.Store(true)
	if !s.quiesceClosed && s.live.size() == 0 {
		s.quiesceClosed = true
		close(s.quiesced)
	}
	s.drainMu.Unlock()
}

// Draining reports whether Drain has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// WaitQuiesced blocks until a draining Service has no live activities
// (or ctx dies). Calling it without Drain blocks until ctx dies: the
// quiesce channel only closes in drain mode.
func (s *Service) WaitQuiesced(ctx context.Context) error {
	select {
	case <-s.quiesced:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Live returns the number of activities begun and not yet completed.
func (s *Service) Live() int { return s.live.size() }

// Find returns a live activity by id.
func (s *Service) Find(id ids.UID) (*Activity, bool) { return s.live.get(id) }

func (s *Service) forget(a *Activity) {
	s.live.delete(a.id)
	if s.draining.Load() {
		s.drainMu.Lock()
		if !s.quiesceClosed && s.live.size() == 0 {
			s.quiesceClosed = true
			close(s.quiesced)
		}
		s.drainMu.Unlock()
	}
}

// SignalSetFactory recreates a SignalSet from persisted parameters during
// recovery.
type SignalSetFactory func(params []byte) (SignalSet, error)

// ActionFactory recreates an Action from persisted parameters during
// recovery.
type ActionFactory func(params []byte) (Action, error)

// RegisterSignalSetFactory names a factory for recoverable signal sets.
func (s *Service) RegisterSignalSetFactory(name string, f SignalSetFactory) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setFacs[name] = f
}

// RegisterActionFactory names a factory for recoverable actions.
func (s *Service) RegisterActionFactory(name string, f ActionFactory) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.actionFac[name] = f
}

func (s *Service) signalSetFactory(name string) (SignalSetFactory, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.setFacs[name]
	if !ok {
		return nil, fmt.Errorf("core: no signal set factory %q", name)
	}
	return f, nil
}

func (s *Service) actionFactory(name string) (ActionFactory, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.actionFac[name]
	if !ok {
		return nil, fmt.Errorf("core: no action factory %q", name)
	}
	return f, nil
}
