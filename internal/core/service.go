package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/extendedtx/activityservice/internal/ids"
	"github.com/extendedtx/activityservice/internal/trace"
	"github.com/extendedtx/activityservice/internal/wal"
)

// Service is the Activity Service: the factory for activities and the home
// of recovery. One Service per process is typical (it plays the role the
// per-ORB service plays in the CORBA architecture of fig. 3).
type Service struct {
	gen      *ids.Generator
	rec      *trace.Recorder
	retry    RetryPolicy
	delivery DeliveryPolicy

	journal *journal

	// counters aggregates speculative-delivery accounting across every
	// coordinator of this Service (see DeliveryStats).
	counters deliveryCounters

	// live is striped (see shard.go) so concurrent Begin / Find / Complete
	// from many goroutines do not serialize on one registry lock.
	live *activityRegistry

	mu        sync.Mutex
	setFacs   map[string]SignalSetFactory
	actionFac map[string]ActionFactory
}

// Option configures a Service.
type Option interface {
	apply(*Service)
}

type optionFunc func(*Service)

func (f optionFunc) apply(s *Service) { f(s) }

// WithTrace records every coordinator interaction into rec, enabling the
// figure-regeneration tooling.
func WithTrace(rec *trace.Recorder) Option {
	return optionFunc(func(s *Service) { s.rec = rec })
}

// WithRetryPolicy sets the signal delivery retry policy (at-least-once).
func WithRetryPolicy(p RetryPolicy) Option {
	return optionFunc(func(s *Service) { s.retry = p })
}

// WithDelivery sets the Service-wide default delivery policy for signal
// broadcasts. Individual SignalSets override it by implementing
// DeliveryPolicyProvider (e.g. via BaseSet.SetDelivery). The zero policy
// delivers serially.
func WithDelivery(p DeliveryPolicy) Option {
	return optionFunc(func(s *Service) { s.delivery = p })
}

// WithJournal persists activity structure events to log so the activity
// tree can be rebuilt after a crash (§3.4).
func WithJournal(log *wal.Log) Option {
	return optionFunc(func(s *Service) { s.journal = &journal{log: log} })
}

// New returns an Activity Service.
func New(opts ...Option) *Service {
	s := &Service{
		gen:       ids.NewGenerator(),
		retry:     RetryPolicy{Attempts: 3},
		live:      newActivityRegistry(),
		setFacs:   make(map[string]SignalSetFactory),
		actionFac: make(map[string]ActionFactory),
	}
	for _, o := range opts {
		o.apply(s)
	}
	return s
}

// Trace returns the service's trace recorder (nil when tracing is off).
func (s *Service) Trace() *trace.Recorder { return s.rec }

// DeliveryStats returns a snapshot of the speculative-delivery accounting
// aggregated across every coordinator of this Service: how much parallel
// fan-out work an advance threw away. A high discard rate on an
// advance-heavy workload says the set should deliver serially (or with a
// tighter worker bound); all-zero counters say parallel delivery is pure
// win.
func (s *Service) DeliveryStats() DeliveryStats {
	return s.counters.snapshot()
}

// BeginOption configures one activity.
type BeginOption interface {
	applyBegin(*Activity)
}

type beginOptionFunc func(*Activity)

func (f beginOptionFunc) applyBegin(a *Activity) { f(a) }

// WithTimeout forces the activity's completion status to FailOnly if it is
// still running after d, per the Activity Service timeout semantics.
func WithTimeout(d time.Duration) BeginOption {
	return beginOptionFunc(func(a *Activity) {
		a.timer = time.AfterFunc(d, func() {
			// Best effort: the activity may have completed already.
			_ = a.SetCompletionStatus(CompletionFailOnly)
		})
	})
}

// withID pins the activity id; used by recovery to rebuild the tree.
func withID(id ids.UID) BeginOption {
	return beginOptionFunc(func(a *Activity) { a.id = id })
}

// WithActivityDelivery overrides the Service-wide delivery policy for one
// activity's coordinator — the per-activity opt-in a host uses to fan
// signals out in parallel for activities whose actions are remote (the
// latency-bound regime the parallel engine targets) while local activities
// keep the Service default. SignalSets choosing their own policy still win.
func WithActivityDelivery(p DeliveryPolicy) BeginOption {
	return beginOptionFunc(func(a *Activity) { a.delivery = p })
}

// Begin starts a new root activity.
func (s *Service) Begin(name string, opts ...BeginOption) *Activity {
	a := s.newActivity(name, nil, opts...)
	s.journal.begun(a.id, ids.Nil, name)
	s.rec.Record(trace.KindBegin, name, "", "", "root activity")
	return a
}

func (s *Service) newActivity(name string, parent *Activity, opts ...BeginOption) *Activity {
	a := &Activity{
		svc:      s,
		id:       s.gen.New(),
		name:     name,
		parent:   parent,
		state:    ActivityActive,
		cs:       CompletionSuccess,
		children: make(map[ids.UID]*Activity),
		sets:     make(map[string]SignalSet),
		pgroups:  make(map[string]PropertyGroup),
	}
	for _, o := range opts {
		o.applyBegin(a)
	}
	delivery := s.delivery
	if a.delivery.Mode != 0 {
		delivery = a.delivery
	}
	a.coord = newCoordinator(name, s.gen, s.rec, s.retry, delivery, &s.counters)
	s.live.put(a)
	return a
}

// Live returns the number of activities begun and not yet completed.
func (s *Service) Live() int { return s.live.size() }

// Find returns a live activity by id.
func (s *Service) Find(id ids.UID) (*Activity, bool) { return s.live.get(id) }

func (s *Service) forget(a *Activity) { s.live.delete(a.id) }

// SignalSetFactory recreates a SignalSet from persisted parameters during
// recovery.
type SignalSetFactory func(params []byte) (SignalSet, error)

// ActionFactory recreates an Action from persisted parameters during
// recovery.
type ActionFactory func(params []byte) (Action, error)

// RegisterSignalSetFactory names a factory for recoverable signal sets.
func (s *Service) RegisterSignalSetFactory(name string, f SignalSetFactory) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setFacs[name] = f
}

// RegisterActionFactory names a factory for recoverable actions.
func (s *Service) RegisterActionFactory(name string, f ActionFactory) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.actionFac[name] = f
}

func (s *Service) signalSetFactory(name string) (SignalSetFactory, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.setFacs[name]
	if !ok {
		return nil, fmt.Errorf("core: no signal set factory %q", name)
	}
	return f, nil
}

func (s *Service) actionFactory(name string) (ActionFactory, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.actionFac[name]
	if !ok {
		return nil, fmt.Errorf("core: no action factory %q", name)
	}
	return f, nil
}
