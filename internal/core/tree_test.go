package core

import (
	"fmt"
	"testing"
	"time"
)

// TestGreedyNearestPlannerPartitions checks the planner invariants across
// sizes and branching factors: every member appears in exactly one
// subtree, no node exceeds the branching factor, at most k roots, and the
// construction is deterministic.
func TestGreedyNearestPlannerPartitions(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 8, 9, 64, 257, 1000} {
		for _, k := range []int{1, 2, 3, 4, 8} {
			t.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(t *testing.T) {
				members := make([]TreeMember, n)
				for i := range members {
					members[i] = TreeMember{
						Index: i,
						Node:  fmt.Sprintf("tcp:site%d:1", i%7),
						RTT:   time.Duration(i%5) * 700 * time.Microsecond,
					}
				}
				plan := GreedyNearestPlanner{}.Plan(members, k)
				if len(plan.Roots) > k {
					t.Fatalf("%d roots, branching %d", len(plan.Roots), k)
				}
				seen := map[int]int{}
				var walk func(node *TreeNode)
				walk = func(node *TreeNode) {
					if len(node.Children) > k {
						t.Fatalf("node %d has %d children, branching %d", node.Member.Index, len(node.Children), k)
					}
					seen[node.Member.Index]++
					for _, c := range node.Children {
						walk(c)
					}
				}
				total := 0
				for _, r := range plan.Roots {
					walk(r)
					total += r.Span()
				}
				if total != n {
					t.Fatalf("spans sum to %d, want %d", total, n)
				}
				for i := 0; i < n; i++ {
					if seen[i] != 1 {
						t.Fatalf("member %d appears %d times", i, seen[i])
					}
				}

				// Determinism: replanning the same members yields the same
				// preorder index sequence.
				again := GreedyNearestPlanner{}.Plan(members, k)
				var seq, seq2 []int
				for _, r := range plan.Roots {
					seq = r.indexes(seq)
				}
				for _, r := range again.Roots {
					seq2 = r.indexes(seq2)
				}
				if len(seq) != len(seq2) {
					t.Fatalf("replan changed size")
				}
				for i := range seq {
					if seq[i] != seq2[i] {
						t.Fatalf("replan diverged at %d: %d vs %d", i, seq[i], seq2[i])
					}
				}
			})
		}
	}
}

// TestRTTClassQuantizes pins the doubling latency classes the planner
// sorts by.
func TestRTTClassQuantizes(t *testing.T) {
	cases := []struct {
		rtt  time.Duration
		want int
	}{
		{0, 0},
		{400 * time.Microsecond, 0},
		{500 * time.Microsecond, 0},
		{600 * time.Microsecond, 1},
		{time.Millisecond, 1},
		{2 * time.Millisecond, 2},
		{3 * time.Millisecond, 3},
		{100 * time.Millisecond, 8},
	}
	for _, c := range cases {
		if got := rttClass(c.rtt); got != c.want {
			t.Errorf("rttClass(%v) = %d, want %d", c.rtt, got, c.want)
		}
	}
}
