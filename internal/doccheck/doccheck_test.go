// Package doccheck enforces the repo's documentation contract: every
// exported identifier in the packages whose API surface operators and
// integrators touch (internal/orb, internal/core) must carry a doc
// comment, so `go doc` is always usable. It runs as an ordinary test,
// which makes the CI docs job a plain `go test ./internal/doccheck`.
package doccheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// checkedPackages are the directories whose exported surface must be
// fully documented, relative to this package.
var checkedPackages = []string{"../orb", "../core", "../cdr", "../remote"}

// TestExportedIdentifiersHaveDocComments parses each checked package
// (tests excluded) and fails with one line per undocumented exported
// type, function, method, package-level const/var, struct field or
// interface method.
func TestExportedIdentifiersHaveDocComments(t *testing.T) {
	for _, dir := range checkedPackages {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			var missing []string
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go")
			}, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			hasPackageDoc := false
			for _, pkg := range pkgs {
				for _, file := range pkg.Files {
					if file.Doc != nil {
						hasPackageDoc = true
					}
					for _, decl := range file.Decls {
						missing = append(missing, checkDecl(fset, decl)...)
					}
				}
			}
			if !hasPackageDoc {
				missing = append(missing, fmt.Sprintf("%s: no package doc comment", dir))
			}
			for _, m := range missing {
				t.Errorf("undocumented: %s", m)
			}
		})
	}
}

// aliasWords are the doc-comment markers that satisfy the byte-slice
// aliasing contract: a doc must say whether the returned bytes alias the
// source buffer (are lent) or are an owned copy.
var aliasWords = []string{"alias", "copy", "copies", "clone", "lend", "lent", "owned"}

// TestCdrByteSliceDocsStateAliasing enforces the buffer-ownership
// contract the pooled wire path depends on: every exported function or
// method in internal/cdr that returns a []byte must say in its doc
// comment whether the slice aliases (is lent from) the underlying buffer
// or is an owned copy. Buffer reuse makes a silent alias a data
// corruption, so the contract must be visible at every source of a byte
// slice, forever.
func TestCdrByteSliceDocsStateAliasing(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, "../cdr", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !fd.Name.IsExported() || !exportedReceiver(fd) || !returnsByteSlice(fd) {
					continue
				}
				pos := fset.Position(fd.Pos())
				if fd.Doc == nil {
					t.Errorf("%s:%d: %s returns []byte but has no doc comment stating the aliasing contract",
						filepath.Base(pos.Filename), pos.Line, fd.Name.Name)
					continue
				}
				doc := strings.ToLower(fd.Doc.Text())
				stated := false
				for _, wd := range aliasWords {
					if strings.Contains(doc, wd) {
						stated = true
						break
					}
				}
				if !stated {
					t.Errorf("%s:%d: %s returns []byte but its doc comment never says whether the slice aliases the buffer or is a copy (mention one of %v)",
						filepath.Base(pos.Filename), pos.Line, fd.Name.Name, aliasWords)
				}
			}
		}
	}
}

// TestRemoteDecoderDocsStateAliasing extends the aliasing contract to the
// wire decoders in internal/remote (the relay batch codec): every function
// whose name starts with "decode" or "Decode" must say in its doc comment
// whether what it returns aliases the frame buffer or is owned. Relay
// batches outlive their dispatch (the plant cache retains them), so a
// decoder that silently lent frame memory would corrupt cached plans the
// moment the ORB recycles the buffer.
func TestRemoteDecoderDocsStateAliasing(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, "../remote", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !strings.HasPrefix(strings.ToLower(fd.Name.Name), "decode") {
					continue
				}
				pos := fset.Position(fd.Pos())
				if fd.Doc == nil {
					t.Errorf("%s:%d: %s decodes wire data but has no doc comment stating the aliasing contract",
						filepath.Base(pos.Filename), pos.Line, fd.Name.Name)
					continue
				}
				doc := strings.ToLower(fd.Doc.Text())
				stated := false
				for _, wd := range aliasWords {
					if strings.Contains(doc, wd) {
						stated = true
						break
					}
				}
				if !stated {
					t.Errorf("%s:%d: %s decodes wire data but its doc comment never says whether the result aliases the buffer or is a copy (mention one of %v)",
						filepath.Base(pos.Filename), pos.Line, fd.Name.Name, aliasWords)
				}
			}
		}
	}
}

// returnsByteSlice reports whether fd's results include a []byte.
func returnsByteSlice(fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, r := range fd.Type.Results.List {
		arr, ok := r.Type.(*ast.ArrayType)
		if !ok || arr.Len != nil {
			continue
		}
		if id, ok := arr.Elt.(*ast.Ident); ok && id.Name == "byte" {
			return true
		}
	}
	return false
}

// checkDecl returns a description per undocumented exported identifier in
// one top-level declaration.
func checkDecl(fset *token.FileSet, decl ast.Decl) []string {
	var missing []string
	at := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", filepath.Base(p.Filename), p.Line, fmt.Sprintf(format, args...)))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return nil
		}
		if d.Doc == nil {
			at(d.Pos(), "func %s", d.Name.Name)
		}
	case *ast.GenDecl:
		// A doc comment on the grouped declaration covers every spec in it
		// (the idiomatic const-block style); otherwise each exported spec
		// needs its own.
		groupDoc := d.Doc != nil
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				if !groupDoc && s.Doc == nil {
					at(s.Pos(), "type %s", s.Name.Name)
				}
				missing = append(missing, checkTypeMembers(fset, s)...)
			case *ast.ValueSpec:
				var exported []string
				for _, n := range s.Names {
					if n.IsExported() {
						exported = append(exported, n.Name)
					}
				}
				if len(exported) == 0 {
					continue
				}
				if !groupDoc && s.Doc == nil && s.Comment == nil {
					at(s.Pos(), "%s %s", d.Tok, strings.Join(exported, ", "))
				}
			}
		}
	}
	return missing
}

// checkTypeMembers covers the members godoc renders under a type: struct
// fields and interface methods. A doc comment or a trailing line comment
// both count.
func checkTypeMembers(fset *token.FileSet, s *ast.TypeSpec) []string {
	var missing []string
	at := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", filepath.Base(p.Filename), p.Line, fmt.Sprintf(format, args...)))
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			var exported []string
			for _, n := range f.Names {
				if n.IsExported() {
					exported = append(exported, n.Name)
				}
			}
			if len(exported) == 0 || f.Doc != nil || f.Comment != nil {
				continue
			}
			at(f.Pos(), "field %s.%s", s.Name.Name, strings.Join(exported, ", "))
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			for _, n := range m.Names {
				if n.IsExported() && m.Doc == nil && m.Comment == nil {
					at(m.Pos(), "method %s.%s", s.Name.Name, n.Name)
				}
			}
		}
	}
	return missing
}

// exportedReceiver reports whether a method's receiver type is exported
// (methods on unexported types are not part of the surfaced API).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true // plain function
	}
	t := d.Recv.List[0].Type
	for {
		switch rt := t.(type) {
		case *ast.StarExpr:
			t = rt.X
		case *ast.IndexExpr: // generic receiver
			t = rt.X
		case *ast.Ident:
			return rt.IsExported()
		default:
			return true
		}
	}
}
