// Package doccheck enforces the repo's documentation contract: every
// exported identifier in the packages whose API surface operators and
// integrators touch (internal/orb, internal/core) must carry a doc
// comment, so `go doc` is always usable. It runs as an ordinary test,
// which makes the CI docs job a plain `go test ./internal/doccheck`.
package doccheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// checkedPackages are the directories whose exported surface must be
// fully documented, relative to this package.
var checkedPackages = []string{"../orb", "../core"}

// TestExportedIdentifiersHaveDocComments parses each checked package
// (tests excluded) and fails with one line per undocumented exported
// type, function, method, package-level const/var, struct field or
// interface method.
func TestExportedIdentifiersHaveDocComments(t *testing.T) {
	for _, dir := range checkedPackages {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			var missing []string
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go")
			}, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			hasPackageDoc := false
			for _, pkg := range pkgs {
				for _, file := range pkg.Files {
					if file.Doc != nil {
						hasPackageDoc = true
					}
					for _, decl := range file.Decls {
						missing = append(missing, checkDecl(fset, decl)...)
					}
				}
			}
			if !hasPackageDoc {
				missing = append(missing, fmt.Sprintf("%s: no package doc comment", dir))
			}
			for _, m := range missing {
				t.Errorf("undocumented: %s", m)
			}
		})
	}
}

// checkDecl returns a description per undocumented exported identifier in
// one top-level declaration.
func checkDecl(fset *token.FileSet, decl ast.Decl) []string {
	var missing []string
	at := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", filepath.Base(p.Filename), p.Line, fmt.Sprintf(format, args...)))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return nil
		}
		if d.Doc == nil {
			at(d.Pos(), "func %s", d.Name.Name)
		}
	case *ast.GenDecl:
		// A doc comment on the grouped declaration covers every spec in it
		// (the idiomatic const-block style); otherwise each exported spec
		// needs its own.
		groupDoc := d.Doc != nil
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				if !groupDoc && s.Doc == nil {
					at(s.Pos(), "type %s", s.Name.Name)
				}
				missing = append(missing, checkTypeMembers(fset, s)...)
			case *ast.ValueSpec:
				var exported []string
				for _, n := range s.Names {
					if n.IsExported() {
						exported = append(exported, n.Name)
					}
				}
				if len(exported) == 0 {
					continue
				}
				if !groupDoc && s.Doc == nil && s.Comment == nil {
					at(s.Pos(), "%s %s", d.Tok, strings.Join(exported, ", "))
				}
			}
		}
	}
	return missing
}

// checkTypeMembers covers the members godoc renders under a type: struct
// fields and interface methods. A doc comment or a trailing line comment
// both count.
func checkTypeMembers(fset *token.FileSet, s *ast.TypeSpec) []string {
	var missing []string
	at := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", filepath.Base(p.Filename), p.Line, fmt.Sprintf(format, args...)))
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			var exported []string
			for _, n := range f.Names {
				if n.IsExported() {
					exported = append(exported, n.Name)
				}
			}
			if len(exported) == 0 || f.Doc != nil || f.Comment != nil {
				continue
			}
			at(f.Pos(), "field %s.%s", s.Name.Name, strings.Join(exported, ", "))
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			for _, n := range m.Names {
				if n.IsExported() && m.Doc == nil && m.Comment == nil {
					at(m.Pos(), "method %s.%s", s.Name.Name, n.Name)
				}
			}
		}
	}
	return missing
}

// exportedReceiver reports whether a method's receiver type is exported
// (methods on unexported types are not part of the surfaced API).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true // plain function
	}
	t := d.Recv.List[0].Type
	for {
		switch rt := t.(type) {
		case *ast.StarExpr:
			t = rt.X
		case *ast.IndexExpr: // generic receiver
			t = rt.X
		case *ast.Ident:
			return rt.IsExported()
		default:
			return true
		}
	}
}
