// Package cluster models the shard map of a horizontally sharded
// activity service: a versioned assignment of activity keys to fleet
// members via a consistent-hash ring of virtual nodes.
//
// The package is pure data — it knows nothing about the ORB or the
// wire. A Map is an immutable value: mutations (WithAdd, WithDrain,
// WithRemove) return a new Map with the epoch bumped, so concurrent
// readers can hold a snapshot without locking. The authoritative copy
// lives beside the naming service (internal/remote hosts the
// `shard-map` servant); routers and members cache snapshots keyed by
// epoch and self-heal on WrongShard redirects.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the number of virtual ring points a member of
// weight 1 contributes. More vnodes smooth the key distribution and
// shrink the slice of keys that moves when the fleet changes.
const DefaultVNodes = 64

// MemberState describes a member's availability for new activity keys.
type MemberState uint32

// Member states.
const (
	// MemberActive owns its ring arcs and accepts new begins.
	MemberActive MemberState = iota
	// MemberDraining still finishes in-flight activities but its ring
	// arcs route to successors; new begins are redirected away.
	MemberDraining
)

// String names the state for logs and scrapes.
func (s MemberState) String() string {
	switch s {
	case MemberActive:
		return "active"
	case MemberDraining:
		return "draining"
	default:
		return fmt.Sprintf("state(%d)", uint32(s))
	}
}

// Member is one activityd replica in the fleet.
type Member struct {
	// ID is the stable member identity; ring placement hashes it, so
	// a member keeps its arcs across restarts.
	ID string
	// Endpoints are the member's ORB endpoints in failover preference
	// order (they become the profile list of routed IORs).
	Endpoints []string
	// Weight scales the member's vnode count; 0 means 1.
	Weight int
	// State is the member's availability for new keys.
	State MemberState
}

func (m Member) vnodes() int {
	w := m.Weight
	if w <= 0 {
		w = 1
	}
	return w * DefaultVNodes
}

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by members[member].
type ringPoint struct {
	hash   uint64
	member int
}

// Map is a versioned shard map: the fleet membership plus the derived
// consistent-hash ring. Maps are immutable; treat every *Map as
// read-only and use the With* mutators to derive successors.
type Map struct {
	// Epoch is the map version. Every mutation bumps it by one; a
	// larger epoch always supersedes a smaller one.
	Epoch uint64
	// Members is the fleet, in the order members were added.
	Members []Member

	ring    []ringPoint
	byID    map[string]int
	nActive int
}

// NewMap builds an epoch-1 map from the given members. Member IDs
// must be unique and non-empty.
func NewMap(members ...Member) (*Map, error) {
	m := &Map{Epoch: 1, Members: members}
	if err := m.build(); err != nil {
		return nil, err
	}
	return m, nil
}

// EmptyMap returns the epoch-0 map with no members — the state of a
// freshly started authority before the first member registers.
func EmptyMap() *Map {
	m := &Map{Epoch: 0}
	_ = m.build()
	return m
}

// build derives the ring and indexes from Members. It is called once
// at construction; Maps are immutable afterwards.
func (m *Map) build() error {
	m.byID = make(map[string]int, len(m.Members))
	m.nActive = 0
	points := 0
	for i, mem := range m.Members {
		if mem.ID == "" {
			return fmt.Errorf("cluster: member %d has empty ID", i)
		}
		if _, dup := m.byID[mem.ID]; dup {
			return fmt.Errorf("cluster: duplicate member ID %q", mem.ID)
		}
		m.byID[mem.ID] = i
		if mem.State == MemberActive {
			m.nActive++
		}
		points += mem.vnodes()
	}
	m.ring = make([]ringPoint, 0, points)
	for i, mem := range m.Members {
		n := mem.vnodes()
		for v := 0; v < n; v++ {
			m.ring = append(m.ring, ringPoint{hash: vnodeHash(mem.ID, v), member: i})
		}
	}
	sort.Slice(m.ring, func(a, b int) bool {
		if m.ring[a].hash != m.ring[b].hash {
			return m.ring[a].hash < m.ring[b].hash
		}
		// Hash ties (vanishingly rare) break by member index so every
		// process derives the identical ring.
		return m.ring[a].member < m.ring[b].member
	})
	return nil
}

// vnodeHash positions virtual node v of the given member on the ring:
// FNV-1a over "id#" followed by the ordinal's low two bytes.
func vnodeHash(id string, v int) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * fnvPrime
	}
	h = (h ^ uint64('#')) * fnvPrime
	h = (h ^ uint64(v&0xff)) * fnvPrime
	h = (h ^ uint64((v>>8)&0xff)) * fnvPrime
	return mix64(h)
}

// mix64 is a 64-bit avalanche finalizer (the murmur3 fmix constants).
// Raw FNV-1a diffuses trailing bytes poorly into the high bits, which
// would cluster a member's vnodes on one arc of the ring; the
// finalizer spreads them uniformly.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// FNV-1a 64-bit parameters.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// HashKey positions an activity key on the ring circle. Exposed so
// tests and tools can reason about placement.
func HashKey(key string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * fnvPrime
	}
	return mix64(h)
}

// Owner resolves the member that owns key: the first clockwise virtual
// node whose member is active. Draining members are skipped, so new
// keys move off a member the moment it starts draining. ok is false
// when the map has no active members.
func (m *Map) Owner(key string) (Member, bool) {
	i, ok := m.ownerIndex(HashKey(key))
	if !ok {
		return Member{}, false
	}
	return m.Members[i], true
}

// Owns reports whether the member with the given ID currently owns
// key. A draining or unknown member owns nothing.
func (m *Map) Owns(id, key string) bool {
	i, ok := m.ownerIndex(HashKey(key))
	return ok && m.Members[i].ID == id
}

func (m *Map) ownerIndex(h uint64) (int, bool) {
	if m.nActive == 0 || len(m.ring) == 0 {
		return 0, false
	}
	n := len(m.ring)
	start := sort.Search(n, func(i int) bool { return m.ring[i].hash >= h })
	for i := 0; i < n; i++ {
		p := m.ring[(start+i)%n]
		if m.Members[p.member].State == MemberActive {
			return p.member, true
		}
	}
	return 0, false
}

// Member returns the member with the given ID.
func (m *Map) Member(id string) (Member, bool) {
	i, ok := m.byID[id]
	if !ok {
		return Member{}, false
	}
	return m.Members[i], true
}

// Active counts members in the MemberActive state.
func (m *Map) Active() int { return m.nActive }

// clone copies the member slice (deep enough for mutation: Member
// values are copied; endpoint slices are shared because Maps never
// mutate them).
func (m *Map) clone() []Member {
	out := make([]Member, len(m.Members))
	copy(out, m.Members)
	return out
}

// WithAdd derives a new map (epoch+1) with mem appended as an active
// member. Adding an existing ID fails.
func (m *Map) WithAdd(mem Member) (*Map, error) {
	if _, dup := m.byID[mem.ID]; dup {
		return nil, fmt.Errorf("cluster: member %q already present", mem.ID)
	}
	mem.State = MemberActive
	next := &Map{Epoch: m.Epoch + 1, Members: append(m.clone(), mem)}
	if err := next.build(); err != nil {
		return nil, err
	}
	return next, nil
}

// WithDrain derives a new map (epoch+1) with the member marked
// draining: its arcs route to successors but it remains addressable so
// in-flight activities finish where they started.
func (m *Map) WithDrain(id string) (*Map, error) {
	i, ok := m.byID[id]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown member %q", id)
	}
	members := m.clone()
	members[i].State = MemberDraining
	next := &Map{Epoch: m.Epoch + 1, Members: members}
	if err := next.build(); err != nil {
		return nil, err
	}
	return next, nil
}

// WithRemove derives a new map (epoch+1) without the member. Remove
// normally follows a drain once the member reports quiescence, but the
// map does not enforce the ordering — a crashed member is removed
// directly and its standby takes over its in-flight state.
func (m *Map) WithRemove(id string) (*Map, error) {
	i, ok := m.byID[id]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown member %q", id)
	}
	members := m.clone()
	members = append(members[:i], members[i+1:]...)
	next := &Map{Epoch: m.Epoch + 1, Members: members}
	if err := next.build(); err != nil {
		return nil, err
	}
	return next, nil
}
