package cluster

import (
	"fmt"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// mapWireVersion guards the shard-map encoding so a future layout
// change can be detected instead of misdecoded.
const mapWireVersion = 1

// Encode writes the map (epoch + membership) onto e. The derived ring
// is not serialized — every process rebuilds it deterministically.
func (m *Map) Encode(e *cdr.Encoder) {
	e.WriteUint32(mapWireVersion)
	e.WriteUint64(m.Epoch)
	e.WriteUint32(uint32(len(m.Members)))
	for _, mem := range m.Members {
		mem.encode(e)
	}
}

func (mem Member) encode(e *cdr.Encoder) {
	e.WriteString(mem.ID)
	e.WriteStringList(mem.Endpoints)
	e.WriteUint32(uint32(mem.Weight))
	e.WriteUint32(uint32(mem.State))
}

// DecodeMap reads a map previously written by Encode and rebuilds its
// ring.
func DecodeMap(d *cdr.Decoder) (*Map, error) {
	if v := d.ReadUint32(); v != mapWireVersion && d.Err() == nil {
		return nil, fmt.Errorf("cluster: shard map wire version %d (want %d)", v, mapWireVersion)
	}
	m := &Map{Epoch: d.ReadUint64()}
	n := d.ReadUint32()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("cluster: implausible member count %d", n)
	}
	m.Members = make([]Member, 0, n)
	for i := uint32(0); i < n; i++ {
		m.Members = append(m.Members, decodeMember(d))
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if err := m.build(); err != nil {
		return nil, err
	}
	return m, nil
}

func decodeMember(d *cdr.Decoder) Member {
	var mem Member
	mem.ID = d.ReadString()
	// ReadStringList copies each string, so the decoded member does
	// not alias the decoder's buffer.
	mem.Endpoints = d.ReadStringList()
	mem.Weight = int(d.ReadUint32())
	mem.State = MemberState(d.ReadUint32())
	return mem
}
