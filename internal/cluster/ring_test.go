package cluster

import (
	"fmt"
	"testing"

	"github.com/extendedtx/activityservice/internal/cdr"
)

func mustMap(t *testing.T, members ...Member) *Map {
	t.Helper()
	m, err := NewMap(members...)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	return m
}

func fleet(n int) []Member {
	out := make([]Member, n)
	for i := range out {
		out[i] = Member{
			ID:        fmt.Sprintf("m-%d", i),
			Endpoints: []string{fmt.Sprintf("tcp:127.0.0.1:%d", 9000+i)},
		}
	}
	return out
}

func TestRingOwnerDeterministic(t *testing.T) {
	a := mustMap(t, fleet(5)...)
	b := mustMap(t, fleet(5)...)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("activity-%d", i)
		oa, oka := a.Owner(key)
		ob, okb := b.Owner(key)
		if !oka || !okb || oa.ID != ob.ID {
			t.Fatalf("key %q: owner differs between identical maps (%v/%v, %v/%v)", key, oa.ID, oka, ob.ID, okb)
		}
	}
}

func TestRingBalance(t *testing.T) {
	m := mustMap(t, fleet(8)...)
	counts := map[string]int{}
	const keys = 8000
	for i := 0; i < keys; i++ {
		o, ok := m.Owner(fmt.Sprintf("key-%d", i))
		if !ok {
			t.Fatal("no owner")
		}
		counts[o.ID]++
	}
	if len(counts) != 8 {
		t.Fatalf("only %d of 8 members own keys: %v", len(counts), counts)
	}
	// With 64 vnodes/member the per-member share should be within a
	// loose 2x band of the ideal 1/8th.
	for id, n := range counts {
		if n < keys/16 || n > keys/4 {
			t.Fatalf("member %s owns %d of %d keys — ring badly unbalanced: %v", id, n, keys, counts)
		}
	}
}

func TestRingMinimalMovementOnAdd(t *testing.T) {
	before := mustMap(t, fleet(8)...)
	after, err := before.WithAdd(Member{ID: "m-8", Endpoints: []string{"tcp:127.0.0.1:9008"}})
	if err != nil {
		t.Fatalf("WithAdd: %v", err)
	}
	if after.Epoch != before.Epoch+1 {
		t.Fatalf("epoch %d after add, want %d", after.Epoch, before.Epoch+1)
	}
	const keys = 4000
	moved, movedToNew := 0, 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		ob, _ := before.Owner(key)
		oa, _ := after.Owner(key)
		if ob.ID != oa.ID {
			moved++
			if oa.ID == "m-8" {
				movedToNew++
			}
		}
	}
	if moved != movedToNew {
		t.Fatalf("%d keys moved but only %d moved to the new member — adds must not shuffle keys between old members", moved, movedToNew)
	}
	// Ideal movement is 1/9th of the keyspace; allow a wide band.
	if moved == 0 || moved > keys/4 {
		t.Fatalf("%d of %d keys moved on add (ideal ~%d)", moved, keys, keys/9)
	}
}

func TestRingDrainSkipsMember(t *testing.T) {
	before := mustMap(t, fleet(4)...)
	after, err := before.WithDrain("m-2")
	if err != nil {
		t.Fatalf("WithDrain: %v", err)
	}
	if after.Active() != 3 {
		t.Fatalf("Active() = %d after drain, want 3", after.Active())
	}
	if mem, ok := after.Member("m-2"); !ok || mem.State != MemberDraining {
		t.Fatalf("m-2 after drain: %+v ok=%v", mem, ok)
	}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		o, ok := after.Owner(key)
		if !ok {
			t.Fatal("no owner with 3 active members")
		}
		if o.ID == "m-2" {
			t.Fatalf("key %q still owned by draining member", key)
		}
		if after.Owns("m-2", key) {
			t.Fatalf("Owns(m-2, %q) true while draining", key)
		}
		// Keys not owned by m-2 before the drain must not move.
		ob, _ := before.Owner(key)
		if ob.ID != "m-2" && ob.ID != o.ID {
			t.Fatalf("key %q moved %s -> %s though %s is not draining", key, ob.ID, o.ID, ob.ID)
		}
	}
}

func TestRingAllDrainingNoOwner(t *testing.T) {
	m := mustMap(t, fleet(2)...)
	m, _ = m.WithDrain("m-0")
	m, _ = m.WithDrain("m-1")
	if _, ok := m.Owner("anything"); ok {
		t.Fatal("Owner succeeded with every member draining")
	}
	if _, ok := EmptyMap().Owner("anything"); ok {
		t.Fatal("Owner succeeded on the empty map")
	}
}

func TestRingRemove(t *testing.T) {
	m := mustMap(t, fleet(3)...)
	next, err := m.WithRemove("m-1")
	if err != nil {
		t.Fatalf("WithRemove: %v", err)
	}
	if _, ok := next.Member("m-1"); ok {
		t.Fatal("removed member still present")
	}
	if len(next.Members) != 2 || next.Epoch != m.Epoch+1 {
		t.Fatalf("after remove: %d members epoch %d", len(next.Members), next.Epoch)
	}
	if _, err := next.WithRemove("m-1"); err == nil {
		t.Fatal("removing an unknown member succeeded")
	}
	if _, err := next.WithAdd(Member{ID: "m-0"}); err == nil {
		t.Fatal("adding a duplicate member succeeded")
	}
}

func TestRingWeight(t *testing.T) {
	m := mustMap(t,
		Member{ID: "small", Endpoints: []string{"tcp:a"}},
		Member{ID: "big", Endpoints: []string{"tcp:b"}, Weight: 3},
	)
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		o, _ := m.Owner(fmt.Sprintf("k%d", i))
		counts[o.ID]++
	}
	if counts["big"] <= counts["small"] {
		t.Fatalf("weight-3 member owns %d keys vs %d for weight-1", counts["big"], counts["small"])
	}
}

func TestMapCodecRoundTrip(t *testing.T) {
	m := mustMap(t,
		Member{ID: "alpha", Endpoints: []string{"tcp:127.0.0.1:9001", "tcp:127.0.0.1:9002"}, Weight: 2},
		Member{ID: "beta", Endpoints: []string{"tcp:127.0.0.1:9003"}},
	)
	m, err := m.WithDrain("beta")
	if err != nil {
		t.Fatal(err)
	}
	e := cdr.NewEncoder(0)
	m.Encode(e)
	got, err := DecodeMap(cdr.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatalf("DecodeMap: %v", err)
	}
	if got.Epoch != m.Epoch || len(got.Members) != len(m.Members) {
		t.Fatalf("round trip: epoch %d/%d members %d/%d", got.Epoch, m.Epoch, len(got.Members), len(m.Members))
	}
	for i := range m.Members {
		a, b := m.Members[i], got.Members[i]
		if a.ID != b.ID || a.Weight != b.Weight || a.State != b.State || len(a.Endpoints) != len(b.Endpoints) {
			t.Fatalf("member %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Endpoints {
			if a.Endpoints[j] != b.Endpoints[j] {
				t.Fatalf("member %d endpoint %d differs", i, j)
			}
		}
	}
	// The rebuilt ring must route identically.
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i)
		a, _ := m.Owner(key)
		b, _ := got.Owner(key)
		if a.ID != b.ID {
			t.Fatalf("key %q routes %s locally but %s after round trip", key, a.ID, b.ID)
		}
	}
}

func TestMapDecodeRejectsBadVersion(t *testing.T) {
	e := cdr.NewEncoder(0)
	e.WriteUint32(99)
	if _, err := DecodeMap(cdr.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("decoded a shard map with wire version 99")
	}
}

func TestNewMapValidates(t *testing.T) {
	if _, err := NewMap(Member{ID: ""}); err == nil {
		t.Fatal("empty member ID accepted")
	}
	if _, err := NewMap(Member{ID: "x"}, Member{ID: "x"}); err == nil {
		t.Fatal("duplicate member ID accepted")
	}
}

func BenchmarkRingOwner(b *testing.B) {
	m, err := NewMap(fleet(8)...)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("activity-key-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.Owner(keys[i&255]); !ok {
			b.Fatal("no owner")
		}
	}
}
