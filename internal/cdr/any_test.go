package cdr

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAnyRoundTripScalars(t *testing.T) {
	tests := []struct {
		name string
		give any
		want any // nil means same as give
	}{
		{name: "nil", give: nil},
		{name: "true", give: true},
		{name: "false", give: false},
		{name: "int64", give: int64(-99)},
		{name: "int widens", give: int(7), want: int64(7)},
		{name: "int32 widens", give: int32(-3), want: int64(-3)},
		{name: "double", give: 2.5},
		{name: "string", give: "prepare"},
		{name: "empty string", give: ""},
		{name: "bytes", give: []byte{0, 1, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b, err := MarshalAny(tt.give)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			got, err := UnmarshalAny(b)
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			want := tt.want
			if want == nil && tt.name != "nil" {
				want = tt.give
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("got %#v want %#v", got, want)
			}
		})
	}
}

func TestAnyRoundTripComposite(t *testing.T) {
	give := map[string]any{
		"activity": "a1",
		"step":     int64(4),
		"parallel": []any{"b", "c", int64(2), true},
		"nested":   map[string]any{"deep": []any{nil, 1.5}},
		"blob":     []byte{9, 9},
	}
	b, err := MarshalAny(give)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := UnmarshalAny(b)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(got, give) {
		t.Fatalf("got %#v\nwant %#v", got, give)
	}
}

func TestAnyDeterministicMapEncoding(t *testing.T) {
	m := map[string]any{"z": int64(1), "a": int64(2), "m": int64(3)}
	b1, err := MarshalAny(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		b2, err := MarshalAny(m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatal("map encoding is not deterministic")
		}
	}
}

func TestAnyUnsupportedType(t *testing.T) {
	type custom struct{ X int }
	if _, err := MarshalAny(custom{1}); !errors.Is(err, ErrUnsupportedAny) {
		t.Fatalf("err = %v, want ErrUnsupportedAny", err)
	}
	if _, err := MarshalAny(map[string]any{"k": custom{}}); !errors.Is(err, ErrUnsupportedAny) {
		t.Fatalf("nested err = %v, want ErrUnsupportedAny", err)
	}
	if _, err := MarshalAny([]any{uint(1)}); !errors.Is(err, ErrUnsupportedAny) {
		t.Fatalf("seq err = %v, want ErrUnsupportedAny", err)
	}
}

func TestAnyBadTypeCode(t *testing.T) {
	if _, err := UnmarshalAny([]byte{0xEE}); !errors.Is(err, ErrBadTypeCode) {
		t.Fatalf("err = %v, want ErrBadTypeCode", err)
	}
}

func TestAnyTruncated(t *testing.T) {
	b, err := MarshalAny(map[string]any{"key": "value", "n": int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, err := UnmarshalAny(b[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestAnyDepthLimit(t *testing.T) {
	v := any("leaf")
	for i := 0; i < maxAnyDepth+2; i++ {
		v = []any{v}
	}
	if _, err := MarshalAny(v); !errors.Is(err, ErrUnsupportedAny) {
		t.Fatalf("err = %v, want depth error", err)
	}
}

func TestAnyQuickRoundTrip(t *testing.T) {
	f := func(s string, i int64, fl float64, bs []byte, flag bool) bool {
		give := map[string]any{
			"s": s, "i": i, "f": fl, "b": append([]byte{}, bs...), "flag": flag,
			"seq": []any{s, i},
		}
		enc, err := MarshalAny(give)
		if err != nil {
			return false
		}
		got, err := UnmarshalAny(enc)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, give)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
