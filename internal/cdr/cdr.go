// Package cdr implements a Common Data Representation style binary
// encoding: big-endian primitives aligned to their natural size, length
// prefixed strings and octet sequences, and a tagged "any" type.
//
// The ORB (internal/orb) marshals every request and reply body with this
// package, and the Activity Service uses the any encoding for
// Signal.application_specific_data, mirroring the CORBA `any` the paper's
// IDL uses. The wire format is a simplification of OMG CDR: all streams are
// big-endian (no byte-order flag) and alignment is computed from the start
// of the stream.
package cdr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Encoding errors.
var (
	// ErrTruncated reports that a decoder ran out of bytes.
	ErrTruncated = errors.New("cdr: truncated stream")
	// ErrBadString reports a malformed string encoding.
	ErrBadString = errors.New("cdr: malformed string")
	// ErrTooLong reports a length prefix beyond the remaining stream, a
	// corruption guard against huge allocations.
	ErrTooLong = errors.New("cdr: length exceeds remaining stream")
)

// Encoder builds a CDR stream in memory. The zero value is ready to use.
// Write methods never fail; the buffer grows as needed.
//
// Hot paths should acquire encoders from the package pool with GetEncoder
// and return them with PutEncoder instead of allocating one per message;
// a pooled encoder arrives Reset and keeps its grown capacity across uses,
// which is what makes steady-state encoding allocation-free.
type Encoder struct {
	buf  []byte
	base int // stream origin: alignment is relative to buf[base:]
}

// NewEncoder returns an Encoder with the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// maxPooledEncoderBytes bounds the capacity a pooled encoder may retain;
// an encoder grown past it (a one-off huge frame) is dropped instead of
// pinning its buffer in the pool forever.
const maxPooledEncoderBytes = 64 << 10

// encoderPool recycles Encoders across messages (see GetEncoder).
var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder returns a Reset encoder from the package pool. Pair it with
// PutEncoder once the encoded bytes have been consumed; the encoded stream
// (Bytes, Frame) aliases the encoder's buffer, so releasing the encoder
// invalidates it.
func GetEncoder() *Encoder {
	return encoderPool.Get().(*Encoder)
}

// PutEncoder resets e and returns it to the package pool. The caller must
// not touch e — or any slice obtained from its Bytes, Frame or
// FramePayload — afterwards. Oversized buffers are dropped rather than
// pooled.
func PutEncoder(e *Encoder) {
	if e == nil || cap(e.buf) > maxPooledEncoderBytes {
		return
	}
	e.Reset()
	encoderPool.Put(e)
}

// Bytes returns the encoded stream (excluding any frame length prefix
// reserved by BeginFrame). The returned slice aliases the encoder's
// buffer; it is valid until the next Write call or Reset.
func (e *Encoder) Bytes() []byte { return e.buf[e.base:] }

// Len returns the current stream length (excluding any frame length
// prefix reserved by BeginFrame).
func (e *Encoder) Len() int { return len(e.buf) - e.base }

// Reset discards the stream contents and any reserved frame prefix,
// retaining capacity.
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	e.base = 0
}

// BeginFrame reserves a big-endian u32 length prefix at the start of the
// buffer and makes the byte after it the stream origin: alignment — and
// therefore every encoded byte — is computed exactly as if the payload
// had been encoded into its own buffer, so framing in place produces the
// same wire bytes as the historic encode-then-copy path without the copy.
// It must be called on an empty encoder, before any Write.
func (e *Encoder) BeginFrame() {
	if len(e.buf) != 0 {
		panic("cdr: BeginFrame on a non-empty encoder")
	}
	e.buf = append(e.buf, 0, 0, 0, 0)
	e.base = len(e.buf)
}

// Frame patches the reserved length prefix with the payload length and
// returns the complete frame (prefix plus payload). The returned slice
// aliases the encoder's buffer; it is valid until the next Write call,
// Reset or PutEncoder. It panics if BeginFrame was not called.
func (e *Encoder) Frame() []byte {
	if e.base != 4 {
		panic("cdr: Frame without BeginFrame")
	}
	binary.BigEndian.PutUint32(e.buf[:4], uint32(len(e.buf)-e.base))
	return e.buf
}

// FramePayload returns the frame payload alone (without the length
// prefix), for transports that add their own framing. The returned slice
// aliases the encoder's buffer.
func (e *Encoder) FramePayload() []byte { return e.buf[e.base:] }

// align pads the stream with zero bytes so the next write starts at a
// multiple of n from the origin of the stream (the byte after the frame
// prefix when BeginFrame reserved one).
func (e *Encoder) align(n int) {
	for (len(e.buf)-e.base)%n != 0 {
		e.buf = append(e.buf, 0)
	}
}

// WriteOctet appends a single byte.
func (e *Encoder) WriteOctet(b byte) { e.buf = append(e.buf, b) }

// WriteBool appends a boolean as one octet (0 or 1).
func (e *Encoder) WriteBool(v bool) {
	if v {
		e.WriteOctet(1)
	} else {
		e.WriteOctet(0)
	}
}

// WriteUint16 appends an aligned big-endian uint16.
func (e *Encoder) WriteUint16(v uint16) {
	e.align(2)
	e.buf = binary.BigEndian.AppendUint16(e.buf, v)
}

// WriteUint32 appends an aligned big-endian uint32.
func (e *Encoder) WriteUint32(v uint32) {
	e.align(4)
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// WriteUint64 appends an aligned big-endian uint64.
func (e *Encoder) WriteUint64(v uint64) {
	e.align(8)
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// WriteInt32 appends an aligned big-endian int32.
func (e *Encoder) WriteInt32(v int32) { e.WriteUint32(uint32(v)) }

// WriteInt64 appends an aligned big-endian int64.
func (e *Encoder) WriteInt64(v int64) { e.WriteUint64(uint64(v)) }

// WriteFloat64 appends an aligned IEEE-754 double.
func (e *Encoder) WriteFloat64(v float64) { e.WriteUint64(math.Float64bits(v)) }

// WriteString appends a CDR string: uint32 length including the
// terminating NUL, the bytes, then a NUL octet.
func (e *Encoder) WriteString(s string) {
	e.WriteUint32(uint32(len(s) + 1))
	e.buf = append(e.buf, s...)
	e.buf = append(e.buf, 0)
}

// WriteBytes appends an octet sequence: uint32 length then raw bytes.
func (e *Encoder) WriteBytes(b []byte) {
	e.WriteUint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// WriteRaw appends bytes without any length prefix or alignment.
func (e *Encoder) WriteRaw(b []byte) { e.buf = append(e.buf, b...) }

// Decoder reads a CDR stream. Errors are sticky: after the first failure
// every read returns the zero value and Err reports the failure.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a Decoder over b. The decoder does not copy b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Reset points the decoder at b, clearing any sticky error: the zero-cost
// way to reuse a stack- or pool-allocated Decoder across frames.
func (d *Decoder) Reset(b []byte) {
	d.buf = b
	d.off = 0
	d.err = nil
}

// decoderPool recycles Decoders across dispatches (see GetDecoder).
var decoderPool = sync.Pool{New: func() any { return new(Decoder) }}

// GetDecoder returns a pooled Decoder over b. Pair with PutDecoder once
// every read is done; the hot dispatch path uses this to hand servants a
// decoder without allocating one per request.
func GetDecoder(b []byte) *Decoder {
	d := decoderPool.Get().(*Decoder)
	d.Reset(b)
	return d
}

// PutDecoder returns d to the pool. The caller must not touch d
// afterwards (slices read from it keep aliasing the original buffer and
// are governed by that buffer's lifetime, not the decoder's).
func PutDecoder(d *Decoder) {
	if d == nil {
		return
	}
	d.Reset(nil)
	decoderPool.Put(d)
}

// Err returns the first error encountered, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// fail records the first error.
func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *Decoder) align(n int) {
	if d.err != nil {
		return
	}
	for d.off%n != 0 {
		if d.off >= len(d.buf) {
			d.fail(fmt.Errorf("%w: during alignment", ErrTruncated))
			return
		}
		d.off++
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail(fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, d.off, len(d.buf)))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// ReadOctet reads one byte.
func (d *Decoder) ReadOctet() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// ReadBool reads one octet as a boolean.
func (d *Decoder) ReadBool() bool { return d.ReadOctet() != 0 }

// ReadUint16 reads an aligned big-endian uint16.
func (d *Decoder) ReadUint16() uint16 {
	d.align(2)
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// ReadUint32 reads an aligned big-endian uint32.
func (d *Decoder) ReadUint32() uint32 {
	d.align(4)
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// PeekUint32 returns the next aligned uint32 without consuming it: the
// following aligned 4-byte read sees the same value. Decoders use it to
// discriminate versioned wire layouts (e.g. legacy vs multi-profile IORs)
// before committing to one. Peeking past the end of the stream records the
// usual truncation error.
func (d *Decoder) PeekUint32() uint32 {
	off := d.off
	v := d.ReadUint32()
	if d.err == nil {
		d.off = off
	}
	return v
}

// Fail records err as the decoder's sticky error (the first failure wins),
// letting layered decoders report structural errors — an unsupported wire
// version, an implausible element count — through the same channel as
// primitive read failures.
func (d *Decoder) Fail(err error) { d.fail(err) }

// ReadStringList reads a uint32-counted list of strings. A count the
// remaining bytes cannot possibly hold (every string costs at least its
// 4-byte length prefix plus a NUL) is rejected before it can size an
// allocation, so a corrupt or hostile stream cannot OOM the decoder.
func (d *Decoder) ReadStringList() []string {
	n := d.ReadUint32()
	if d.err != nil {
		return nil
	}
	if int64(n) > int64(d.Remaining())/5 {
		d.fail(fmt.Errorf("%w: list of %d strings in %d bytes", ErrTooLong, n, d.Remaining()))
		return nil
	}
	out := make([]string, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		out = append(out, d.ReadString())
	}
	return out
}

// WriteStringList appends a uint32-counted list of strings, the encoding
// ReadStringList reads.
func (e *Encoder) WriteStringList(ss []string) {
	e.WriteUint32(uint32(len(ss)))
	for _, s := range ss {
		e.WriteString(s)
	}
}

// ReadUint64 reads an aligned big-endian uint64.
func (d *Decoder) ReadUint64() uint64 {
	d.align(8)
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// ReadInt32 reads an aligned big-endian int32.
func (d *Decoder) ReadInt32() int32 { return int32(d.ReadUint32()) }

// ReadInt64 reads an aligned big-endian int64.
func (d *Decoder) ReadInt64() int64 { return int64(d.ReadUint64()) }

// ReadFloat64 reads an aligned IEEE-754 double.
func (d *Decoder) ReadFloat64() float64 { return math.Float64frombits(d.ReadUint64()) }

// ReadString reads a CDR string. The returned string is a copy: it never
// aliases the decoder's buffer, so it may be retained freely.
func (d *Decoder) ReadString() string {
	return string(d.ReadStringBytes())
}

// ReadStringBytes reads a CDR string but returns its bytes (without the
// NUL terminator) as a lent sub-slice ALIASING the decoder's buffer — the
// zero-allocation sibling of ReadString for hot paths that only need the
// bytes transiently (a map lookup, an intern probe). Everything said
// about ReadBytes' lifetime applies: Clone before retaining.
func (d *Decoder) ReadStringBytes() []byte {
	n := d.ReadUint32()
	if d.err != nil {
		return nil
	}
	if n == 0 {
		d.fail(fmt.Errorf("%w: zero-length string encoding", ErrBadString))
		return nil
	}
	if int(n) > d.Remaining() {
		d.fail(fmt.Errorf("%w: string of %d bytes", ErrTooLong, n))
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	if b[len(b)-1] != 0 {
		d.fail(fmt.Errorf("%w: missing NUL terminator", ErrBadString))
		return nil
	}
	return b[:len(b)-1]
}

// ReadBytes reads an octet sequence. The returned slice ALIASES the
// decoder's buffer — it is a lent sub-slice, not a copy — so it is only
// valid while the buffer is: the ORB recycles frame buffers once dispatch
// returns, after which a retained slice is overwritten by a later frame.
// Anything kept past the current dispatch must be copied with Clone.
// Lending instead of copying is what makes steady-state decoding
// allocation-free.
func (d *Decoder) ReadBytes() []byte {
	n := d.ReadUint32()
	if d.err != nil {
		return nil
	}
	if int(n) > d.Remaining() {
		d.fail(fmt.Errorf("%w: octet sequence of %d bytes", ErrTooLong, n))
		return nil
	}
	return d.take(int(n))
}

// ReadBytesClone reads an octet sequence as an owned copy: Clone applied
// to ReadBytes, for callers that retain the data past the frame.
func (d *Decoder) ReadBytesClone() []byte {
	return Clone(d.ReadBytes())
}

// Clone returns an owned copy of b that does not alias any decoder or
// frame buffer (nil for an empty input). Servants and interceptors must
// route any lent slice they retain past their dispatch — a ReadBytes
// result, a service-context payload — through Clone, or buffer reuse will
// overwrite it under them.
func Clone(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
