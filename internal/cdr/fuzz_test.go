package cdr

import (
	"bytes"
	"testing"
)

// FuzzAnyRoundTrip builds a nested any value from fuzz input and requires
// it to survive Marshal/Unmarshal exactly (modulo the documented int64
// widening, which the builder avoids by only using int64).
func FuzzAnyRoundTrip(f *testing.F) {
	f.Add("k", "v", int64(7), 3.5, true, []byte{1, 2, 3})
	f.Add("", "", int64(-1), -0.0, false, []byte{})
	f.Fuzz(func(t *testing.T, key, sval string, ival int64, fval float64, bval bool, raw []byte) {
		v := map[string]any{
			"s":    sval,
			"n":    ival,
			"f":    fval,
			"b":    bval,
			"raw":  append([]byte(nil), raw...),
			"null": nil,
			"seq":  []any{sval, ival, map[string]any{key: bval}},
		}
		b, err := MarshalAny(v)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got, err := UnmarshalAny(b)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		b2, err := MarshalAny(got)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("any encoding not canonical:\n first: %x\nsecond: %x", b, b2)
		}
	})
}

// FuzzDecodeAny throws arbitrary bytes at the any decoder: errors are
// fine, panics and unbounded recursion are not.
func FuzzDecodeAny(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{byte(TCNull)})
	f.Add([]byte{byte(TCMap), 0xff, 0xff, 0xff, 0xff})
	if seed, err := MarshalAny(map[string]any{"k": []any{int64(1), "two"}}); err == nil {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := UnmarshalAny(data)
		if err != nil {
			return
		}
		if _, err := MarshalAny(v); err != nil {
			t.Fatalf("decoded value fails to marshal: %v", err)
		}
	})
}
