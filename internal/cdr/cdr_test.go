package cdr

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.WriteOctet(0xAB)
	e.WriteBool(true)
	e.WriteBool(false)
	e.WriteUint16(0xBEEF)
	e.WriteUint32(0xDEADBEEF)
	e.WriteUint64(0x0123456789ABCDEF)
	e.WriteInt32(-42)
	e.WriteInt64(-1 << 60)
	e.WriteFloat64(math.Pi)
	e.WriteString("hello")
	e.WriteBytes([]byte{1, 2, 3})

	d := NewDecoder(e.Bytes())
	if got := d.ReadOctet(); got != 0xAB {
		t.Errorf("octet = %#x", got)
	}
	if !d.ReadBool() || d.ReadBool() {
		t.Error("bool round trip failed")
	}
	if got := d.ReadUint16(); got != 0xBEEF {
		t.Errorf("u16 = %#x", got)
	}
	if got := d.ReadUint32(); got != 0xDEADBEEF {
		t.Errorf("u32 = %#x", got)
	}
	if got := d.ReadUint64(); got != 0x0123456789ABCDEF {
		t.Errorf("u64 = %#x", got)
	}
	if got := d.ReadInt32(); got != -42 {
		t.Errorf("i32 = %d", got)
	}
	if got := d.ReadInt64(); got != -1<<60 {
		t.Errorf("i64 = %d", got)
	}
	if got := d.ReadFloat64(); got != math.Pi {
		t.Errorf("f64 = %g", got)
	}
	if got := d.ReadString(); got != "hello" {
		t.Errorf("string = %q", got)
	}
	if got := d.ReadBytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("bytes = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode error: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining = %d", d.Remaining())
	}
}

func TestAlignment(t *testing.T) {
	e := NewEncoder(0)
	e.WriteOctet(1) // offset 1
	e.WriteUint32(7)
	if e.Len() != 8 { // 1 byte + 3 pad + 4
		t.Fatalf("len = %d, want 8", e.Len())
	}
	e.WriteOctet(2) // offset 9
	e.WriteUint64(9)
	if e.Len() != 24 { // 9 + 7 pad + 8
		t.Fatalf("len = %d, want 24", e.Len())
	}
	d := NewDecoder(e.Bytes())
	if d.ReadOctet() != 1 || d.ReadUint32() != 7 || d.ReadOctet() != 2 || d.ReadUint64() != 9 {
		t.Fatal("aligned round trip failed")
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

func TestEmptyStringRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.WriteString("")
	d := NewDecoder(e.Bytes())
	if got := d.ReadString(); got != "" || d.Err() != nil {
		t.Fatalf("got %q err %v", got, d.Err())
	}
}

func TestEmptyBytesRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.WriteBytes(nil)
	d := NewDecoder(e.Bytes())
	if got := d.ReadBytes(); len(got) != 0 || d.Err() != nil {
		t.Fatalf("got %v err %v", got, d.Err())
	}
}

func TestTruncatedStreamsFail(t *testing.T) {
	e := NewEncoder(0)
	e.WriteUint64(12345)
	e.WriteString("payload")
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		d.ReadUint64()
		d.ReadString()
		if d.Err() == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestStickyError(t *testing.T) {
	d := NewDecoder(nil)
	_ = d.ReadUint32()
	first := d.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	_ = d.ReadString()
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("err = %v", d.Err())
	}
	if d.Err() != first {
		t.Fatal("error was overwritten")
	}
}

func TestHugeLengthRejected(t *testing.T) {
	e := NewEncoder(0)
	e.WriteUint32(0xFFFFFFFF) // absurd string length
	d := NewDecoder(e.Bytes())
	_ = d.ReadString()
	if !errors.Is(d.Err(), ErrTooLong) {
		t.Fatalf("err = %v, want ErrTooLong", d.Err())
	}
}

func TestStringMissingNUL(t *testing.T) {
	e := NewEncoder(0)
	e.WriteUint32(3)
	e.WriteRaw([]byte{'a', 'b', 'c'}) // no NUL
	d := NewDecoder(e.Bytes())
	_ = d.ReadString()
	if !errors.Is(d.Err(), ErrBadString) {
		t.Fatalf("err = %v, want ErrBadString", d.Err())
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string, pre uint8) bool {
		e := NewEncoder(0)
		// random leading bytes force interesting alignment
		for i := 0; i < int(pre%8); i++ {
			e.WriteOctet(0xFF)
		}
		e.WriteString(s)
		d := NewDecoder(e.Bytes())
		for i := 0; i < int(pre%8); i++ {
			d.ReadOctet()
		}
		return d.ReadString() == s && d.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNumericRoundTrip(t *testing.T) {
	f := func(a int64, b uint64, c float64, d32 int32) bool {
		e := NewEncoder(0)
		e.WriteInt64(a)
		e.WriteUint64(b)
		e.WriteFloat64(c)
		e.WriteInt32(d32)
		dec := NewDecoder(e.Bytes())
		okF := dec.ReadInt64() == a && dec.ReadUint64() == b
		f2 := dec.ReadFloat64()
		okF = okF && (f2 == c || (math.IsNaN(f2) && math.IsNaN(c)))
		okF = okF && dec.ReadInt32() == d32
		return okF && dec.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(0)
	e.WriteUint64(1)
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("len after reset = %d", e.Len())
	}
	e.WriteOctet(9)
	if e.Len() != 1 || e.Bytes()[0] != 9 {
		t.Fatal("encoder unusable after reset")
	}
}

// buildStream writes one of everything through e.
func buildStream(e *Encoder) {
	e.WriteOctet(7)
	e.WriteUint16(0xBEEF)
	e.WriteUint32(0xDEADBEEF)
	e.WriteUint64(1 << 40)
	e.WriteString("frame me")
	e.WriteBytes([]byte{1, 2, 3, 4, 5})
	e.WriteFloat64(3.5)
}

// TestFrameAssemblyMatchesEncodeThenCopy pins the in-place framing
// contract: BeginFrame/Frame must produce byte-for-byte the same wire
// frame as the historic encode-into-own-buffer-then-prefix path, for
// every alignment-sensitive write. This is what "wire format unchanged"
// rests on.
func TestFrameAssemblyMatchesEncodeThenCopy(t *testing.T) {
	legacy := NewEncoder(0)
	buildStream(legacy)
	want := make([]byte, 4+legacy.Len())
	want[0] = byte(uint32(legacy.Len()) >> 24)
	want[1] = byte(uint32(legacy.Len()) >> 16)
	want[2] = byte(uint32(legacy.Len()) >> 8)
	want[3] = byte(uint32(legacy.Len()))
	copy(want[4:], legacy.Bytes())

	framed := NewEncoder(0)
	framed.BeginFrame()
	buildStream(framed)
	got := framed.Frame()
	if !bytes.Equal(got, want) {
		t.Fatalf("framed bytes differ from encode-then-copy:\n got %x\nwant %x", got, want)
	}
	if !bytes.Equal(framed.FramePayload(), legacy.Bytes()) {
		t.Fatalf("FramePayload differs from legacy payload")
	}
	if framed.Len() != legacy.Len() {
		t.Fatalf("Len = %d, want %d", framed.Len(), legacy.Len())
	}
}

// TestEncoderPoolReuse pins the pooled-encoder lifecycle: a released
// encoder comes back Reset (frame state included) and oversized encoders
// are dropped rather than pooled.
func TestEncoderPoolReuse(t *testing.T) {
	e := GetEncoder()
	e.BeginFrame()
	e.WriteString("first use")
	_ = e.Frame()
	PutEncoder(e)

	e2 := GetEncoder()
	if e2.Len() != 0 {
		t.Fatalf("pooled encoder not reset: len %d", e2.Len())
	}
	e2.BeginFrame()
	e2.WriteUint32(99)
	frame := e2.Frame()
	if len(frame) != 8 { // 4-byte prefix + one u32 at payload offset 0
		t.Fatalf("reused encoder produced %d-byte frame, want 8", len(frame))
	}
	PutEncoder(e2)

	big := GetEncoder()
	big.BeginFrame()
	big.WriteRaw(make([]byte, maxPooledEncoderBytes+1))
	PutEncoder(big) // must drop, not pool
	next := GetEncoder()
	if cap(next.buf) > maxPooledEncoderBytes {
		t.Fatalf("oversized encoder buffer (cap %d) survived in the pool", cap(next.buf))
	}
	PutEncoder(next)
}

// TestReadBytesAliasesAndCloneOwns pins the decoder's lending contract:
// ReadBytes aliases the stream (mutating the buffer mutates the slice —
// what pooled frame reuse does for real), Clone and ReadBytesClone
// detach, and ReadString is always an owned copy.
func TestReadBytesAliasesAndCloneOwns(t *testing.T) {
	e := NewEncoder(0)
	e.WriteBytes([]byte("payload"))
	e.WriteBytes([]byte("second"))
	e.WriteString("stringy")
	buf := append([]byte(nil), e.Bytes()...)

	d := NewDecoder(buf)
	lent := d.ReadBytes()
	owned := d.ReadBytesClone()
	s := d.ReadString()
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if string(lent) != "payload" || string(owned) != "second" || s != "stringy" {
		t.Fatalf("decoded %q %q %q", lent, owned, s)
	}
	cloned := Clone(lent)

	// Simulate frame-buffer reuse: overwrite the stream.
	for i := range buf {
		buf[i] = 0xFF
	}
	if string(lent) == "payload" {
		t.Fatal("ReadBytes result did not alias the stream (contract says it is lent)")
	}
	if string(cloned) != "payload" {
		t.Fatalf("Clone mutated with the stream: %q", cloned)
	}
	if string(owned) != "second" {
		t.Fatalf("ReadBytesClone mutated with the stream: %q", owned)
	}
	if Clone(nil) != nil || Clone([]byte{}) != nil {
		t.Fatal("Clone of empty input must be nil")
	}
}

// TestDecoderReset pins Reset: it clears the sticky error and re-points
// the decoder, which is what the pooled decoders rely on.
func TestDecoderReset(t *testing.T) {
	d := NewDecoder([]byte{1})
	d.ReadUint64() // truncated: sticky error
	if d.Err() == nil {
		t.Fatal("expected truncation error")
	}
	d.Reset([]byte{0, 0, 0, 5})
	if d.Err() != nil {
		t.Fatalf("Reset kept error: %v", d.Err())
	}
	if got := d.ReadUint32(); got != 5 || d.Err() != nil {
		t.Fatalf("ReadUint32 after Reset = %d, err %v", got, d.Err())
	}
	pd := GetDecoder([]byte{9})
	if got := pd.ReadOctet(); got != 9 {
		t.Fatalf("pooled decoder read %d, want 9", got)
	}
	PutDecoder(pd)
}
