package cdr

import (
	"errors"
	"fmt"
	"sort"
)

// TypeCode tags the dynamic type of an encoded any value.
type TypeCode byte

// Type codes for the any encoding.
const (
	TCNull TypeCode = iota + 1
	TCBool
	TCInt64
	TCDouble
	TCString
	TCBytes
	TCSeq
	TCMap
)

// ErrUnsupportedAny reports a Go value outside the any-codable set.
var ErrUnsupportedAny = errors.New("cdr: unsupported type for any encoding")

// ErrBadTypeCode reports an unknown type tag in the stream.
var ErrBadTypeCode = errors.New("cdr: unknown any type code")

// maxAnyDepth bounds nesting so corrupt streams cannot recurse unboundedly.
const maxAnyDepth = 64

// EncodeAny appends a tagged encoding of v. The codable set mirrors what a
// CORBA any carries in the paper's protocols:
//
//	nil, bool, int, int32, int64, float64, string, []byte,
//	[]any (elements codable), map[string]any (values codable).
//
// Integers widen to int64 on the wire; decode always yields int64.
func EncodeAny(e *Encoder, v any) error {
	return encodeAny(e, v, 0)
}

func encodeAny(e *Encoder, v any, depth int) error {
	if depth > maxAnyDepth {
		return fmt.Errorf("%w: nesting deeper than %d", ErrUnsupportedAny, maxAnyDepth)
	}
	switch x := v.(type) {
	case nil:
		e.WriteOctet(byte(TCNull))
	case bool:
		e.WriteOctet(byte(TCBool))
		e.WriteBool(x)
	case int:
		e.WriteOctet(byte(TCInt64))
		e.WriteInt64(int64(x))
	case int32:
		e.WriteOctet(byte(TCInt64))
		e.WriteInt64(int64(x))
	case int64:
		e.WriteOctet(byte(TCInt64))
		e.WriteInt64(x)
	case float64:
		e.WriteOctet(byte(TCDouble))
		e.WriteFloat64(x)
	case string:
		e.WriteOctet(byte(TCString))
		e.WriteString(x)
	case []byte:
		e.WriteOctet(byte(TCBytes))
		e.WriteBytes(x)
	case []any:
		e.WriteOctet(byte(TCSeq))
		e.WriteUint32(uint32(len(x)))
		for _, el := range x {
			if err := encodeAny(e, el, depth+1); err != nil {
				return err
			}
		}
	case map[string]any:
		e.WriteOctet(byte(TCMap))
		e.WriteUint32(uint32(len(x)))
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic wire form
		for _, k := range keys {
			e.WriteString(k)
			if err := encodeAny(e, x[k], depth+1); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("%w: %T", ErrUnsupportedAny, v)
	}
	return nil
}

// DecodeAny reads a value written by EncodeAny. Every decoded value is an
// owned copy — []byte values are Cloned off the stream rather than lent —
// because any-values escape into long-lived structures (signal payloads,
// property groups) that outlive the frame they arrived in.
func DecodeAny(d *Decoder) (any, error) {
	v := decodeAny(d, 0)
	if d.err != nil {
		return nil, d.err
	}
	return v, nil
}

func decodeAny(d *Decoder, depth int) any {
	if d.err != nil {
		return nil
	}
	if depth > maxAnyDepth {
		d.fail(fmt.Errorf("%w: nesting deeper than %d", ErrBadTypeCode, maxAnyDepth))
		return nil
	}
	tc := TypeCode(d.ReadOctet())
	if d.err != nil {
		return nil
	}
	switch tc {
	case TCNull:
		return nil
	case TCBool:
		return d.ReadBool()
	case TCInt64:
		return d.ReadInt64()
	case TCDouble:
		return d.ReadFloat64()
	case TCString:
		return d.ReadString()
	case TCBytes:
		b := d.ReadBytesClone()
		if b == nil && d.err == nil {
			b = []byte{} // preserve empty-vs-nil across a round trip
		}
		return b
	case TCSeq:
		n := d.ReadUint32()
		if d.err != nil {
			return nil
		}
		if int(n) > d.Remaining() {
			d.fail(fmt.Errorf("%w: sequence of %d elements", ErrTooLong, n))
			return nil
		}
		seq := make([]any, 0, n)
		for i := uint32(0); i < n; i++ {
			seq = append(seq, decodeAny(d, depth+1))
			if d.err != nil {
				return nil
			}
		}
		return seq
	case TCMap:
		n := d.ReadUint32()
		if d.err != nil {
			return nil
		}
		if int(n) > d.Remaining() {
			d.fail(fmt.Errorf("%w: map of %d entries", ErrTooLong, n))
			return nil
		}
		m := make(map[string]any, n)
		for i := uint32(0); i < n; i++ {
			k := d.ReadString()
			v := decodeAny(d, depth+1)
			if d.err != nil {
				return nil
			}
			m[k] = v
		}
		return m
	default:
		d.fail(fmt.Errorf("%w: 0x%02x", ErrBadTypeCode, byte(tc)))
		return nil
	}
}

// MarshalAny encodes v as a standalone byte slice. The result is an
// owned copy, free of any encoder buffer.
func MarshalAny(v any) ([]byte, error) {
	e := NewEncoder(64)
	if err := EncodeAny(e, v); err != nil {
		return nil, err
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

// UnmarshalAny decodes a standalone byte slice produced by MarshalAny.
func UnmarshalAny(b []byte) (any, error) {
	return DecodeAny(NewDecoder(b))
}
