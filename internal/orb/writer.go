package orb

import (
	"net"
	"sync"
	"sync/atomic"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// Writer tuning. The queue bound is backpressure, not a drop threshold: a
// full queue blocks the enqueuing producer until a combiner drains (or
// the connection dies). The batch bound caps how many frames one gather
// write may carry.
const (
	writeQueueDepth = 64
	maxWriteBatch   = 32
)

// frameWriter coalesces frames from concurrent producers into batched
// vectored writes without a dedicated writer goroutine: a producer
// enqueues its pooled frame encoder and then tries to become the combiner
// (TryLock). The combiner drains whatever has accumulated behind the
// previous write — its own frame plus everything concurrent producers
// enqueued meanwhile — into one writev(2) per batch, so fan-out callers
// multiplexed on one connection share syscalls, while an uncontended
// producer writes its own frame inline with no goroutine handoff at all.
//
// A producer whose TryLock fails simply leaves: the current combiner
// re-checks the queue after releasing the lock (see combine), so every
// enqueued frame is drained by someone. After the first write error the
// writer enters failed mode and discards frames — producers must never
// block forever behind a dead connection — after reporting the failed
// batch through onFail exactly once.
type frameWriter struct {
	q      chan *cdr.Encoder
	bw     frameBatchWriter            // gather-write path; nil = per-frame fallback
	wf     func(payload []byte) error  // per-frame fallback (e.g. chaos conns)
	onFail func(unsent []*cdr.Encoder) // first write failure, called with the failed batch

	failed atomic.Bool

	mu      sync.Mutex // the combiner lock; scratch below is guarded by it
	batch   []*cdr.Encoder
	bufs    net.Buffers
	scratch net.Buffers // header copy handed to WriteFrames, which consumes it
}

// newFrameWriter builds a writer over a Conn-ish sink: batch writes when
// bw is non-nil, per-frame writes through wf otherwise.
func newFrameWriter(depth int, bw frameBatchWriter, wf func([]byte) error, onFail func([]*cdr.Encoder)) *frameWriter {
	return &frameWriter{
		q:      make(chan *cdr.Encoder, depth),
		bw:     bw,
		wf:     wf,
		onFail: onFail,
		batch:  make([]*cdr.Encoder, 0, maxWriteBatch),
		bufs:   make(net.Buffers, 0, maxWriteBatch),
	}
}

// tryEnqueue enqueues without blocking, reporting success. The caller
// still owns the encoder on false. It does not combine — the read loop
// uses it for admission sheds and must never risk blocking in a write;
// pair it with kick().
func (w *frameWriter) tryEnqueue(enc *cdr.Encoder) bool {
	select {
	case w.q <- enc:
		return true
	default:
		return false
	}
}

// combine drains and writes the queue if no other combiner is active.
// The post-unlock re-check closes the race where a producer enqueues
// between the combiner's last empty poll and its unlock and then fails
// TryLock against it: the obligation to drain stays with whoever last
// held the lock until the queue is observably empty or another combiner
// has taken over.
func (w *frameWriter) combine() {
	for {
		if !w.mu.TryLock() {
			return // the holder re-checks after unlocking
		}
		for w.collectLocked() {
			w.writeBatchLocked()
		}
		w.mu.Unlock()
		if len(w.q) == 0 {
			return
		}
	}
}

// collectLocked gathers up to maxWriteBatch queued frames into w.batch,
// reporting whether it got any.
func (w *frameWriter) collectLocked() bool {
	w.batch = w.batch[:0]
	for len(w.batch) < maxWriteBatch {
		select {
		case e := <-w.q:
			w.batch = append(w.batch, e)
		default:
			return len(w.batch) > 0
		}
	}
	return true
}

// writeBatchLocked writes w.batch (one gather write when supported) and
// releases the pooled encoders. The first failure flips the writer into
// discard mode and hands the unwritten tail to onFail before the
// encoders are released — the client uses it to fail those calls with
// TRANSIENT (request never left) rather than COMM_FAILURE.
func (w *frameWriter) writeBatchLocked() {
	if w.failed.Load() {
		for _, e := range w.batch {
			cdr.PutEncoder(e)
		}
		return
	}
	var err error
	failedFrom := 0
	if w.bw != nil {
		w.bufs = w.bufs[:0]
		for _, e := range w.batch {
			w.bufs = append(w.bufs, e.Frame())
		}
		// Hand WriteFrames a header copy: WriteTo consumes its argument by
		// re-slicing, and w.bufs must keep its backing array's capacity.
		w.scratch = w.bufs
		err = w.bw.WriteFrames(&w.scratch)
		if err != nil {
			// The consume semantics of net.Buffers tell us exactly which
			// frames fully reached the kernel before the failure: those are
			// NOT in the unsent tail — the peer may have executed them, so
			// they must fail with COMM_FAILURE (unknown completion, via the
			// connection drop), never TRANSIENT. A partially-written frame
			// stays in the scratch tail: the peer cannot parse a truncated
			// frame, so "never ran" (TRANSIENT) remains true for it.
			failedFrom = len(w.batch) - len(w.scratch)
			if failedFrom < 0 || failedFrom > len(w.batch) {
				failedFrom = 0
			}
		}
	} else {
		for i, e := range w.batch {
			if err = w.wf(e.FramePayload()); err != nil {
				failedFrom = i
				break
			}
		}
	}
	if err != nil {
		w.failed.Store(true)
		if w.onFail != nil {
			w.onFail(w.batch[failedFrom:])
		}
	}
	for _, e := range w.batch {
		cdr.PutEncoder(e)
	}
}
