package orb

import (
	"encoding/binary"
	"fmt"
	"io"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// Wire protocol ("GLOP" — GIOP-lite over plain TCP):
//
//	frame   = u32 length | payload               (length excludes itself)
//	payload = "GLOP" | u8 version | u8 msgType | u16 reserved | content
//
// Request content: u64 requestID, string objectKey, string operation,
// service-context list, bytes body.
// Reply content:   u64 requestID, u8 status, service-context list, bytes
// body (status OK) or string code + string detail (exception statuses).

var protocolMagic = [4]byte{'G', 'L', 'O', 'P'}

const (
	protocolVersion = 1

	msgRequest byte = 1
	msgReply   byte = 2

	replyOK        byte = 0
	replySystemErr byte = 1
	replyUserErr   byte = 2

	// maxFrameSize guards against corrupt length prefixes.
	maxFrameSize = 64 << 20
)

// ServiceContext is an out-of-band context entry carried with a request or
// reply — the mechanism the Activity Service uses to propagate activity and
// transaction context implicitly, as the CORBA specification prescribes.
type ServiceContext struct {
	// ID names the context slot (see the well-known IDs below).
	ID uint32
	// Data is the opaque encoded payload.
	Data []byte
}

// Well-known service context IDs.
const (
	// ContextActivity carries the activity propagation context.
	ContextActivity uint32 = 0x41435456 // "ACTV"
	// ContextTransaction carries the OTS propagation context.
	ContextTransaction uint32 = 0x4F545358 // "OTSX"
)

// request is a decoded request message.
type request struct {
	requestID uint64
	objectKey string
	operation string
	contexts  []ServiceContext
	body      []byte
}

// reply is a decoded reply message.
type reply struct {
	requestID uint64
	status    byte
	contexts  []ServiceContext
	body      []byte // OK payload
	errCode   string // exception code for non-OK
	errDetail string
}

func encodeContexts(e *cdr.Encoder, ctxs []ServiceContext) {
	e.WriteUint32(uint32(len(ctxs)))
	for _, c := range ctxs {
		e.WriteUint32(c.ID)
		e.WriteBytes(c.Data)
	}
}

func decodeContexts(d *cdr.Decoder) []ServiceContext {
	n := d.ReadUint32()
	if d.Err() != nil || n == 0 {
		return nil
	}
	if int(n) > d.Remaining() {
		return nil
	}
	out := make([]ServiceContext, 0, n)
	for i := uint32(0); i < n; i++ {
		c := ServiceContext{ID: d.ReadUint32(), Data: d.ReadBytes()}
		if d.Err() != nil {
			return nil
		}
		out = append(out, c)
	}
	return out
}

func encodeRequest(r request) []byte {
	e := cdr.NewEncoder(128 + len(r.body))
	e.WriteRaw(protocolMagic[:])
	e.WriteOctet(protocolVersion)
	e.WriteOctet(msgRequest)
	e.WriteUint16(0)
	e.WriteUint64(r.requestID)
	e.WriteString(r.objectKey)
	e.WriteString(r.operation)
	encodeContexts(e, r.contexts)
	e.WriteBytes(r.body)
	return e.Bytes()
}

func encodeReply(r reply) []byte {
	e := cdr.NewEncoder(64 + len(r.body))
	e.WriteRaw(protocolMagic[:])
	e.WriteOctet(protocolVersion)
	e.WriteOctet(msgReply)
	e.WriteUint16(0)
	e.WriteUint64(r.requestID)
	e.WriteOctet(r.status)
	encodeContexts(e, r.contexts)
	if r.status == replyOK {
		e.WriteBytes(r.body)
	} else {
		e.WriteString(r.errCode)
		e.WriteString(r.errDetail)
	}
	return e.Bytes()
}

// decodeHeader validates magic and version and returns the message type.
func decodeHeader(d *cdr.Decoder) (byte, error) {
	var magic [4]byte
	magic[0] = d.ReadOctet()
	magic[1] = d.ReadOctet()
	magic[2] = d.ReadOctet()
	magic[3] = d.ReadOctet()
	version := d.ReadOctet()
	msgType := d.ReadOctet()
	d.ReadUint16() // reserved
	if err := d.Err(); err != nil {
		return 0, Systemf(CodeMarshal, "short header: %v", err)
	}
	if magic != protocolMagic {
		return 0, Systemf(CodeMarshal, "bad magic %q", magic[:])
	}
	if version != protocolVersion {
		return 0, Systemf(CodeMarshal, "unsupported version %d", version)
	}
	return msgType, nil
}

func decodeRequest(b []byte) (request, error) {
	d := cdr.NewDecoder(b)
	msgType, err := decodeHeader(d)
	if err != nil {
		return request{}, err
	}
	if msgType != msgRequest {
		return request{}, Systemf(CodeMarshal, "expected request, got type %d", msgType)
	}
	r := request{
		requestID: d.ReadUint64(),
		objectKey: d.ReadString(),
		operation: d.ReadString(),
	}
	r.contexts = decodeContexts(d)
	r.body = d.ReadBytes()
	if err := d.Err(); err != nil {
		return request{}, Systemf(CodeMarshal, "decode request: %v", err)
	}
	return r, nil
}

func decodeReply(b []byte) (reply, error) {
	d := cdr.NewDecoder(b)
	msgType, err := decodeHeader(d)
	if err != nil {
		return reply{}, err
	}
	if msgType != msgReply {
		return reply{}, Systemf(CodeMarshal, "expected reply, got type %d", msgType)
	}
	r := reply{
		requestID: d.ReadUint64(),
		status:    d.ReadOctet(),
	}
	r.contexts = decodeContexts(d)
	if r.status == replyOK {
		r.body = d.ReadBytes()
	} else {
		r.errCode = d.ReadString()
		r.errDetail = d.ReadString()
	}
	if err := d.Err(); err != nil {
		return reply{}, Systemf(CodeMarshal, "decode reply: %v", err)
	}
	return r, nil
}

// writeFrame writes a length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("orb: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
