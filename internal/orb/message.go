package orb

import (
	"encoding/binary"
	"fmt"
	"io"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// Wire protocol ("GLOP" — GIOP-lite over plain TCP):
//
//	frame   = u32 length | payload               (length excludes itself)
//	payload = "GLOP" | u8 version | u8 msgType | u16 reserved | content
//
// Request content: u64 requestID, string objectKey, string operation,
// service-context list, bytes body.
// Reply content:   u64 requestID, u8 status, service-context list, bytes
// body (status OK) or string code + string detail (exception statuses).

var protocolMagic = [4]byte{'G', 'L', 'O', 'P'}

const (
	protocolVersion = 1

	msgRequest byte = 1
	msgReply   byte = 2

	replyOK        byte = 0
	replySystemErr byte = 1
	replyUserErr   byte = 2

	// maxFrameSize guards against corrupt length prefixes.
	maxFrameSize = 64 << 20
)

// ServiceContext is an out-of-band context entry carried with a request or
// reply — the mechanism the Activity Service uses to propagate activity and
// transaction context implicitly, as the CORBA specification prescribes.
type ServiceContext struct {
	// ID names the context slot (see the well-known IDs below).
	ID uint32
	// Data is the opaque encoded payload.
	Data []byte
}

// Well-known service context IDs.
const (
	// ContextActivity carries the activity propagation context.
	ContextActivity uint32 = 0x41435456 // "ACTV"
	// ContextTransaction carries the OTS propagation context.
	ContextTransaction uint32 = 0x4F545358 // "OTSX"
)

// request is a decoded request message. body and the contexts' Data are
// lent from the frame the request was decoded out of: they are valid only
// until the frame buffer is released back to the pool (after dispatch and
// reply encoding on the server).
type request struct {
	requestID uint64
	objectKey string
	operation string
	contexts  []ServiceContext
	body      []byte
}

// reply is a decoded reply message. When fb is non-nil, body and the
// contexts' Data are lent from that pooled frame buffer; release
// transfers the buffer back to the pool and must only run once no
// borrowed view is live (replyToResult clones the body first).
type reply struct {
	requestID uint64
	status    byte
	contexts  []ServiceContext
	body      []byte // OK payload
	errCode   string // exception code for non-OK
	errDetail string
	fb        *frameBuf // pooled frame backing body, nil for local/synthesized replies
}

// release returns the reply's backing frame buffer (if any) to the pool.
func (r *reply) release() {
	if r.fb != nil {
		putFrameBuf(r.fb)
		r.fb = nil
	}
}

func encodeContexts(e *cdr.Encoder, ctxs []ServiceContext) {
	e.WriteUint32(uint32(len(ctxs)))
	for _, c := range ctxs {
		e.WriteUint32(c.ID)
		e.WriteBytes(c.Data)
	}
}

func decodeContexts(d *cdr.Decoder) []ServiceContext {
	n := d.ReadUint32()
	if d.Err() != nil || n == 0 {
		return nil
	}
	if int(n) > d.Remaining() {
		return nil
	}
	out := make([]ServiceContext, 0, n)
	for i := uint32(0); i < n; i++ {
		c := ServiceContext{ID: d.ReadUint32(), Data: d.ReadBytes()}
		if d.Err() != nil {
			return nil
		}
		out = append(out, c)
	}
	return out
}

// encodeRequestFrame encodes r as a complete wire frame — u32 length
// prefix included — into a pooled encoder, assembled in place (BeginFrame
// reserves the prefix up front, so there is no encode-then-copy step).
// Ownership of the encoder moves to the caller; whoever consumes the
// frame releases it with cdr.PutEncoder.
func encodeRequestFrame(r request) *cdr.Encoder {
	e := cdr.GetEncoder()
	e.BeginFrame()
	e.WriteRaw(protocolMagic[:])
	e.WriteOctet(protocolVersion)
	e.WriteOctet(msgRequest)
	e.WriteUint16(0)
	e.WriteUint64(r.requestID)
	e.WriteString(r.objectKey)
	e.WriteString(r.operation)
	encodeContexts(e, r.contexts)
	e.WriteBytes(r.body)
	return e
}

// encodeReplyFrame encodes r as a complete wire frame into a pooled
// encoder, like encodeRequestFrame.
func encodeReplyFrame(r reply) *cdr.Encoder {
	e := cdr.GetEncoder()
	e.BeginFrame()
	e.WriteRaw(protocolMagic[:])
	e.WriteOctet(protocolVersion)
	e.WriteOctet(msgReply)
	e.WriteUint16(0)
	e.WriteUint64(r.requestID)
	e.WriteOctet(r.status)
	encodeContexts(e, r.contexts)
	if r.status == replyOK {
		e.WriteBytes(r.body)
	} else {
		e.WriteString(r.errCode)
		e.WriteString(r.errDetail)
	}
	return e
}

// decodeHeader validates magic and version and returns the message type.
// The magic octets are compared individually: materializing a [4]byte for
// the error formatter would heap-escape it on every call, not just the
// error path.
func decodeHeader(d *cdr.Decoder) (byte, error) {
	m0 := d.ReadOctet()
	m1 := d.ReadOctet()
	m2 := d.ReadOctet()
	m3 := d.ReadOctet()
	version := d.ReadOctet()
	msgType := d.ReadOctet()
	d.ReadUint16() // reserved
	if err := d.Err(); err != nil {
		return 0, Systemf(CodeMarshal, "short header: %v", err)
	}
	if m0 != protocolMagic[0] || m1 != protocolMagic[1] || m2 != protocolMagic[2] || m3 != protocolMagic[3] {
		return 0, Systemf(CodeMarshal, "bad magic %q", string([]byte{m0, m1, m2, m3}))
	}
	if version != protocolVersion {
		return 0, Systemf(CodeMarshal, "unsupported version %d", version)
	}
	return msgType, nil
}

// wireRequest is a request decoded without materializing its strings:
// objectKey and operation are lent sub-slices of the frame, like body and
// the context data. The server dispatch path uses it so the steady state
// allocates no key/operation strings at all (map lookups on string(b)
// compile allocation-free, and operation names intern); everything else
// goes through decodeRequest, which converts to the owned request form.
type wireRequest struct {
	requestID uint64
	objectKey []byte // lent from the frame
	operation []byte // lent from the frame
	contexts  []ServiceContext
	body      []byte
}

func decodeRequestWire(b []byte) (wireRequest, error) {
	// Stack decoder: it never escapes, so decoding a frame allocates
	// nothing beyond the context list (and that only when present).
	var dec cdr.Decoder
	dec.Reset(b)
	d := &dec
	msgType, err := decodeHeader(d)
	if err != nil {
		return wireRequest{}, err
	}
	if msgType != msgRequest {
		return wireRequest{}, Systemf(CodeMarshal, "expected request, got type %d", msgType)
	}
	r := wireRequest{
		requestID: d.ReadUint64(),
		objectKey: d.ReadStringBytes(),
		operation: d.ReadStringBytes(),
	}
	r.contexts = decodeContexts(d)
	r.body = d.ReadBytes()
	if err := d.Err(); err != nil {
		return wireRequest{}, Systemf(CodeMarshal, "decode request: %v", err)
	}
	return r, nil
}

func decodeRequest(b []byte) (request, error) {
	w, err := decodeRequestWire(b)
	if err != nil {
		return request{}, err
	}
	return request{
		requestID: w.requestID,
		objectKey: string(w.objectKey),
		operation: string(w.operation),
		contexts:  w.contexts,
		body:      w.body,
	}, nil
}

func decodeReply(b []byte) (reply, error) {
	var dec cdr.Decoder
	dec.Reset(b)
	d := &dec
	msgType, err := decodeHeader(d)
	if err != nil {
		return reply{}, err
	}
	if msgType != msgReply {
		return reply{}, Systemf(CodeMarshal, "expected reply, got type %d", msgType)
	}
	r := reply{
		requestID: d.ReadUint64(),
		status:    d.ReadOctet(),
	}
	r.contexts = decodeContexts(d)
	if r.status == replyOK {
		r.body = d.ReadBytes()
	} else {
		r.errCode = d.ReadString()
		r.errDetail = d.ReadString()
	}
	if err := d.Err(); err != nil {
		return reply{}, Systemf(CodeMarshal, "decode reply: %v", err)
	}
	return r, nil
}

// writeFrame writes a length-prefixed frame (two writes: prefix, then
// payload). The hot paths batch complete pre-framed buffers through
// net.Buffers instead; this remains for transports handed a bare payload
// (Conn.WriteFrame implementations).
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame into a fresh allocation.
func readFrame(r io.Reader) ([]byte, error) {
	return readFrameInto(r, nil)
}

// readFrameInto reads one length-prefixed frame, reusing buf's capacity
// when it suffices and allocating otherwise. The returned slice aliases
// buf (or its replacement); callers recycling buffers own the lifetime.
// The length prefix is read into buf too (a stack header array would
// escape through the io.Reader interface and cost an allocation per
// frame).
func readFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	if cap(buf) < 4 {
		buf = make([]byte, 0, 512)
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > maxFrameSize {
		return nil, fmt.Errorf("orb: frame of %d bytes exceeds limit", n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
