package orb

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// ChaosTransport wraps a Transport and injects faults into the frames that
// cross it: added latency, dropped requests or replies, connection resets
// and one-way partitions, all selectable per operation. It exists so the
// failure modes the extended-transaction models are designed to survive —
// a participant vanishing between prepare and commit, a confirm whose
// acknowledgement never arrives, a link too slow to beat the call timeout —
// can be produced deterministically in tests instead of hoping a real
// network misbehaves on cue.
//
// Faults are expressed as an ordered list of ChaosRules (Inject); every
// rule whose stage, operation and occurrence window match a frame
// contributes its fault. Partitions (PartitionSend, PartitionRecv) drop
// whole directions independently of the rule list, and ResetAll abruptly
// closes every live connection. Heal removes everything.
//
// A ChaosTransport may be shared by many connections and is safe for
// concurrent use. Injected latency is applied while the owning connection's
// write lock is held, so it also models head-of-line blocking on a slow
// link.
type ChaosTransport struct {
	base Transport

	mu       sync.Mutex
	rules    []*activeRule
	partSend bool
	partRecv bool
	conns    map[*chaosConn]struct{}
}

// ChaosStage locates a fault in the request/reply exchange.
type ChaosStage int

// Fault stages.
const (
	// StageRequest faults the client→server frame before it is sent: the
	// operation never reaches the servant.
	StageRequest ChaosStage = iota
	// StageReply faults the server→client frame before it is delivered:
	// the operation ran, but the caller never learns its outcome.
	StageReply
)

// String returns the stage name.
func (s ChaosStage) String() string {
	switch s {
	case StageRequest:
		return "request"
	case StageReply:
		return "reply"
	default:
		return fmt.Sprintf("ChaosStage(%d)", int(s))
	}
}

// ChaosRule describes one injectable fault. The zero rule matches every
// request frame and does nothing; set the fault fields to make it bite.
type ChaosRule struct {
	// Op matches the ORB operation name ("process_signal", "prepare",
	// "commit", …). Empty matches every operation.
	Op string
	// Signal matches the activity Signal name carried inside the frame's
	// body, so a rule can target "prepare" vs "commit" deliveries directly
	// instead of counting process_signal occurrences. It applies to the
	// operations whose body leads with a signal encoding — process_signal
	// and relay_deliver, both of which put Signal.Name in the body's first
	// CDR string — and is matched at both stages (reply frames match the
	// signal their request carried). Empty matches every frame; a non-empty
	// Signal never matches frames without a decodable signal name.
	Signal string
	// Addr matches the dialed endpoint address, with or without the "tcp:"
	// prefix, so a fault can target one endpoint of a multi-profile
	// reference (e.g. hard-reset the primary while the backup stays
	// healthy). Empty matches every address.
	Addr string
	// Stage selects the frame direction the rule applies to.
	Stage ChaosStage
	// After skips the first After matching frames, so a fault can target
	// e.g. the third delivery (the commit after two prepares).
	After int
	// Count bounds how many times the rule fires once active; 0 means
	// every match.
	Count int

	// Latency delays the frame before it proceeds.
	Latency time.Duration
	// Drop swallows the frame: a lost request or a lost reply.
	Drop bool
	// Reset closes the connection instead of forwarding the frame — the
	// peer-reset mid-protocol case.
	Reset bool
}

// activeRule tracks a rule's occurrence counters.
type activeRule struct {
	ChaosRule
	seen  int // matching frames observed (drives After)
	fired int // faults actually applied (drives Count and Hits)
}

// InjectedFault is the handle for one injected rule.
type InjectedFault struct {
	t *ChaosTransport
	r *activeRule
}

// Hits reports how many frames the fault has been applied to.
func (f *InjectedFault) Hits() int {
	f.t.mu.Lock()
	defer f.t.mu.Unlock()
	return f.r.fired
}

// Remove withdraws the rule.
func (f *InjectedFault) Remove() {
	f.t.mu.Lock()
	defer f.t.mu.Unlock()
	for i, r := range f.t.rules {
		if r == f.r {
			f.t.rules = append(f.t.rules[:i], f.t.rules[i+1:]...)
			return
		}
	}
}

// NewChaosTransport wraps base (TCPTransport when nil).
func NewChaosTransport(base Transport) *ChaosTransport {
	if base == nil {
		base = TCPTransport{}
	}
	return &ChaosTransport{base: base, conns: make(map[*chaosConn]struct{})}
}

// Inject adds a fault rule and returns its handle.
func (t *ChaosTransport) Inject(r ChaosRule) *InjectedFault {
	ar := &activeRule{ChaosRule: r}
	t.mu.Lock()
	t.rules = append(t.rules, ar)
	t.mu.Unlock()
	return &InjectedFault{t: t, r: ar}
}

// PartitionSend starts or stops a one-way partition in the client→server
// direction: requests are consumed and silently discarded, so the servant
// never runs and the caller times out.
func (t *ChaosTransport) PartitionSend(on bool) {
	t.mu.Lock()
	t.partSend = on
	t.mu.Unlock()
}

// PartitionRecv starts or stops a one-way partition in the server→client
// direction: the servant runs, but its replies are discarded — the
// "completion unknown" half of a partition.
func (t *ChaosTransport) PartitionRecv(on bool) {
	t.mu.Lock()
	t.partRecv = on
	t.mu.Unlock()
}

// Heal removes every rule and partition. Connections already reset stay
// dead; new dials behave like the base transport.
func (t *ChaosTransport) Heal() {
	t.mu.Lock()
	t.rules = nil
	t.partSend = false
	t.partRecv = false
	t.mu.Unlock()
}

// ResetAll abruptly closes every live connection, as a link reset would.
func (t *ChaosTransport) ResetAll() {
	t.mu.Lock()
	conns := make([]*chaosConn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Dial implements Transport.
func (t *ChaosTransport) Dial(ctx context.Context, addr string) (Conn, error) {
	bc, err := t.base.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	c := &chaosConn{t: t, base: bc, addr: addr, ops: make(map[uint64]opSig)}
	t.mu.Lock()
	t.conns[c] = struct{}{}
	t.mu.Unlock()
	return c, nil
}

// verdict is the combined fault decision for one frame.
type verdict struct {
	latency time.Duration
	drop    bool
	reset   bool
}

// decide folds partitions and every matching rule into one verdict. sig is
// the signal name decoded from the frame's body ("" when the operation
// carries none).
func (t *ChaosTransport) decide(stage ChaosStage, op, sig, addr string) verdict {
	t.mu.Lock()
	defer t.mu.Unlock()
	var v verdict
	if stage == StageRequest && t.partSend {
		v.drop = true
	}
	if stage == StageReply && t.partRecv {
		v.drop = true
	}
	for _, r := range t.rules {
		if r.Stage != stage {
			continue
		}
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.Signal != "" && r.Signal != sig {
			continue
		}
		if r.Addr != "" && endpointHost(r.Addr) != addr {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		r.fired++
		v.latency += r.Latency
		v.drop = v.drop || r.Drop
		v.reset = v.reset || r.Reset
	}
	return v
}

// opSig is the per-request identity reply-stage rules match against: the
// operation name plus the signal name decoded from the request body.
type opSig struct {
	op  string
	sig string
}

// signalCarriers names the operations whose request body leads with an
// encoded Signal, making Signal.Name the body's first CDR string: the
// Action servant's process_signal and the relay servant's relay_deliver
// batch both uphold that layout so chaos rules can match on it.
var signalCarriers = map[string]bool{
	"process_signal": true,
	"relay_deliver":  true,
}

// signalNameOf decodes the signal name from a signal-carrying request
// body, returning "" for other operations or undecodable bodies.
func signalNameOf(op string, body []byte) string {
	if !signalCarriers[op] || len(body) == 0 {
		return ""
	}
	var d cdr.Decoder
	d.Reset(body)
	name := d.ReadString()
	if d.Err() != nil {
		return ""
	}
	return name
}

// chaosConn applies the transport's fault rules to one connection.
type chaosConn struct {
	t    *ChaosTransport
	base Conn
	addr string // dialed "host:port", for Addr rules

	mu  sync.Mutex
	ops map[uint64]opSig // in-flight requestID → identity, for reply rules
}

// WriteFrame implements Conn, faulting client→server frames.
func (c *chaosConn) WriteFrame(payload []byte) error {
	op, sig := "", ""
	var reqID uint64
	tracked := false
	if req, err := decodeRequest(payload); err == nil {
		op = req.operation
		sig = signalNameOf(op, req.body)
		reqID = req.requestID
		tracked = true
		c.mu.Lock()
		c.ops[reqID] = opSig{op: op, sig: sig}
		c.mu.Unlock()
	}
	v := c.t.decide(StageRequest, op, sig, c.addr)
	if v.latency > 0 {
		time.Sleep(v.latency)
	}
	if v.drop || v.reset {
		// No reply will ever arrive for this request; forget its op so the
		// in-flight map cannot grow without bound under a long partition.
		if tracked {
			c.mu.Lock()
			delete(c.ops, reqID)
			c.mu.Unlock()
		}
		if v.reset {
			c.Close()
			return fmt.Errorf("orb: chaos: connection reset before sending %q", op)
		}
		return nil // consumed, never sent
	}
	return c.base.WriteFrame(payload)
}

// ReadFrame implements Conn, faulting server→client frames.
func (c *chaosConn) ReadFrame() ([]byte, error) {
	for {
		payload, err := c.base.ReadFrame()
		if err != nil {
			return nil, err
		}
		var id opSig
		if rep, err := decodeReply(payload); err == nil {
			c.mu.Lock()
			id = c.ops[rep.requestID]
			delete(c.ops, rep.requestID)
			c.mu.Unlock()
		}
		v := c.t.decide(StageReply, id.op, id.sig, c.addr)
		if v.latency > 0 {
			time.Sleep(v.latency)
		}
		if v.reset {
			c.Close()
			return nil, fmt.Errorf("orb: chaos: connection reset dropping reply to %q", id.op)
		}
		if v.drop {
			continue
		}
		return payload, nil
	}
}

// Close implements Conn.
func (c *chaosConn) Close() error {
	c.t.mu.Lock()
	delete(c.t.conns, c)
	c.t.mu.Unlock()
	return c.base.Close()
}
