package orb

import (
	"context"
	"fmt"
	"net"
	"sync"
)

// server is the TCP request transport.
type server struct {
	orb *ORB
	ln  net.Listener

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
	wg    sync.WaitGroup
}

// Listen starts accepting invocations on addr (e.g. "127.0.0.1:0") and
// returns the bound endpoint in "tcp:host:port" form. IORs issued after
// Listen carry the network endpoint.
func (o *ORB) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("orb: listen %s: %w", addr, err)
	}
	srv := &server{
		orb:   o,
		ln:    ln,
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}
	bound := "tcp:" + ln.Addr().String()

	o.mu.Lock()
	if o.shutdown {
		o.mu.Unlock()
		ln.Close()
		return "", Systemf(CodeCommFailure, "orb shut down")
	}
	if o.srv != nil {
		o.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("orb: already listening on %s", o.bound)
	}
	o.srv = srv
	o.bound = bound
	o.mu.Unlock()

	srv.wg.Add(1)
	go srv.acceptLoop()
	return bound, nil
}

func (s *server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			// Transient accept errors: keep serving until stopped.
			continue
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var writeMu sync.Mutex
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		req, err := decodeRequest(frame)
		if err != nil {
			// Cannot correlate a reply for an undecodable request; drop the
			// connection so the client fails fast.
			return
		}
		reqWG.Add(1)
		go func() {
			defer reqWG.Done()
			rep := s.orb.dispatch(context.Background(), req)
			writeMu.Lock()
			defer writeMu.Unlock()
			_ = writeFrame(conn, encodeReply(rep))
		}()
	}
}

// stop closes the listener and every live connection, then waits for
// handlers to drain.
func (s *server) stop() {
	close(s.done)
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}
