package orb

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// adminInflight bounds concurrent admission-bypassing admin dispatches
// per listener; admin requests beyond it fall through to the normal
// admission gate, so a flood of "orb-admin" frames cannot void the
// bounded-goroutine guarantee WithMaxInflight provides.
const adminInflight = 4

// replyQueueDepth bounds the per-connection reply queue feeding the
// combining frame writer. Handlers block on a full queue (backpressure
// toward the slow client); the read loop never does — its admission
// sheds are enqueued non-blocking and dropped when the queue is full,
// exactly the cases where the client has stopped draining its socket and
// could never receive the shed anyway.
const replyQueueDepth = 64

// server is the TCP request transport.
type server struct {
	orb      *ORB
	ln       net.Listener
	adm      *admission    // nil = unbounded dispatch
	adminSem chan struct{} // bypass slots for admin scrapes (see serveConn)

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
	wg    sync.WaitGroup

	// baseCtx parents every dispatch on this listener; stop cancels it so
	// long-poll servants (e.g. the shard-map watch) unpark instead of
	// holding shutdown for their full poll round.
	baseCtx context.Context
	cancel  context.CancelFunc
}

// Listen starts accepting invocations on addr (e.g. "127.0.0.1:0") and
// returns the bound endpoint in "tcp:host:port" form. Listen may be called
// multiple times: every listener serves the same object adapter, all of
// them share one admission gate (WithMaxInflight bounds the ORB, not each
// listener), and IORs issued after the calls carry every bound endpoint as
// a profile — the multi-profile references clients fail over across.
func (o *ORB) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("orb: listen %s: %w", addr, err)
	}
	bound := "tcp:" + ln.Addr().String()

	o.mu.Lock()
	if o.shutdown {
		o.mu.Unlock()
		ln.Close()
		return "", Systemf(CodeCommFailure, "orb shut down")
	}
	if len(o.srvs) == 0 {
		o.adm = newAdmission(o.maxInflight, o.admitQueue, o.shedAfter, o.prioReserve, o.prioOps)
	}
	srv := &server{
		orb:      o,
		ln:       ln,
		adm:      o.adm,
		adminSem: make(chan struct{}, adminInflight),
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	srv.baseCtx, srv.cancel = context.WithCancel(context.Background())
	o.srvs = append(o.srvs, srv)
	o.bound = append(o.bound, bound)
	o.mu.Unlock()

	srv.wg.Add(1)
	go srv.acceptLoop()
	return bound, nil
}

func (s *server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			// Transient accept errors: keep serving until stopped.
			continue
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn is one connection's read loop. All replies flow through a
// combining frameWriter (writer.go) over a bounded queue of pooled frame
// encoders: handlers enqueue their reply and drain the queue themselves
// into vectored writes, coalescing with concurrent handlers' replies.
// The read loop itself never writes — its admission sheds are enqueued
// non-blocking and flushed by a small dedicated kicker goroutine, so a
// reply write stalled on a client that has stopped draining its socket
// never blocks frame reads (and with them the fast shedding). Request
// frames are read into pooled buffers; the handler that dispatched a
// request releases its buffer after the reply is encoded — the decoded
// body and service-context data are lent from the buffer, which is why
// servants must cdr.Clone anything they retain.
func (s *server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	w := newFrameWriter(replyQueueDepth, connBatchWriter{conn}, nil, nil)
	// The kicker only serves the admission-shed path (the default branch
	// below, reachable only with a gate configured); an unbounded server
	// skips the goroutine entirely.
	var kick chan struct{}
	kickerDone := make(chan struct{})
	if s.adm != nil {
		kick = make(chan struct{}, 1)
		go func() {
			defer close(kickerDone)
			for range kick {
				w.combine()
			}
		}()
	} else {
		close(kickerDone)
	}
	// LIFO with the reqWG.Wait below: handlers finish enqueueing, a final
	// combine flushes any sheds still queued, the kicker exits, and only
	// then does the deferred conn.Close above run — so a client that
	// half-closed after its last request still receives every reply.
	defer func() {
		w.combine()
		if kick != nil {
			close(kick)
		}
		<-kickerDone
	}()
	var reqWG sync.WaitGroup
	defer reqWG.Wait()

	br := bufio.NewReaderSize(conn, tcpReadBuffer)
	for {
		fb := getFrameBuf()
		var err error
		if fb.b, err = readFrameInto(br, fb.b); err != nil {
			putFrameBuf(fb)
			return
		}
		req, err := decodeRequestWire(fb.b)
		if err != nil {
			// Cannot correlate a reply for an undecodable request; drop the
			// connection so the client fails fast.
			putFrameBuf(fb)
			return
		}
		// Admission: a request either takes a dispatch slot now, waits in
		// the bounded queue (its own goroutine, shed at the deadline), or —
		// when the queue is full — is shed through a non-blocking enqueue to
		// the writer without spawning anything. Handler goroutines are
		// therefore bounded by maxInflight + queue (+ the writer). Admin
		// scrapes for a registered admin servant bypass the gate through a
		// small dedicated slot pool: the stats servant must stay answerable
		// exactly while the gate is shedding, which is when an operator
		// reads it — but the bypass is bounded (adminInflight) and requires
		// ServeAdmin to have run, so a flood of client-chosen "orb-admin"
		// keys cannot recreate the pile-up the gate prevents; overflow admin
		// traffic queues like anything else.
		// Priority admission class: completion/recovery verbs (see
		// WithPriorityOps) are classified synchronously in the read loop —
		// an allocation-free map lookup on the lent operation bytes — and
		// may fall back to the reserved slot pool when the shared pool is
		// saturated, so overload sheds first-contact work before it sheds
		// the traffic that resolves in-doubt transactions.
		if s.adm == nil {
			reqWG.Add(1)
			go func() {
				defer reqWG.Done()
				s.handle(fb, req, w)
			}()
		} else if bytes.Equal(req.objectKey, adminKeyBytes) && s.orb.hasServant(AdminKey) && s.tryAdminSlot() {
			reqWG.Add(1)
			go func() {
				defer reqWG.Done()
				defer func() { <-s.adminSem }()
				s.handle(fb, req, w)
			}()
		} else {
			prio := s.adm.isPriority(req.operation)
			if tok := s.adm.tryAcquire(prio); tok != slotNone {
				reqWG.Add(1)
				go func() {
					defer reqWG.Done()
					defer s.adm.release(tok)
					s.handle(fb, req, w)
				}()
			} else if s.adm.enqueue(prio) {
				reqWG.Add(1)
				go func() {
					defer reqWG.Done()
					slot := s.adm.await(s.done, prio)
					if slot == slotNone {
						putFrameBuf(fb)
						w.q <- encodeReplyFrame(errorReply(req.requestID, s.adm.shedError()))
						w.combine()
						return
					}
					defer s.adm.release(slot)
					s.handle(fb, req, w)
				}()
			} else {
				// Shed without spawning: only the request id is needed, so
				// the frame goes straight back to the pool, and neither the
				// enqueue nor the write may block the read loop — the kicker
				// goroutine flushes the queue instead.
				id := req.requestID
				putFrameBuf(fb)
				enc := encodeReplyFrame(errorReply(id, s.adm.shedError()))
				if w.tryEnqueue(enc) {
					select {
					case kick <- struct{}{}:
					default: // a kick is already pending
					}
				} else {
					// The reply queue is full behind a stalled write: the
					// client is not draining its socket, so this shed could
					// never be delivered anyway. Drop it (the shed is already
					// counted) and let the caller time out.
					cdr.PutEncoder(enc)
				}
			}
		}
	}
}

// adminKeyBytes is AdminKey as bytes, for the read loop's allocation-free
// admin-bypass check against the lent wire key.
var adminKeyBytes = []byte(AdminKey)

// handle dispatches one request and enqueues-and-combines its reply. The
// pooled request frame is released only after the reply is encoded: the
// reply body a servant returns may alias the request body it was lent (an
// echo servant does exactly that), so the frame must outlive the encode.
func (s *server) handle(fb *frameBuf, req wireRequest, w *frameWriter) {
	rep := s.orb.dispatchWire(s.baseCtx, req)
	enc := encodeReplyFrame(rep)
	putFrameBuf(fb)
	w.q <- enc
	w.combine()
}

// connBatchWriter adapts the server's raw net.Conn to the writer's
// gather-write interface (one writev(2) per batch).
type connBatchWriter struct {
	conn net.Conn
}

// WriteFrames implements frameBatchWriter.
func (c connBatchWriter) WriteFrames(bufs *net.Buffers) error {
	_, err := bufs.WriteTo(c.conn)
	return err
}

// tryAdminSlot grabs one admission-bypass slot without waiting.
func (s *server) tryAdminSlot() bool {
	select {
	case s.adminSem <- struct{}{}:
		return true
	default:
		return false
	}
}

// stop closes the listener and every live connection, then waits for
// handlers to drain.
func (s *server) stop() {
	close(s.done)
	s.cancel()
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}
