package orb

import (
	"context"
	"fmt"
	"net"
	"sync"
)

// adminInflight bounds concurrent admission-bypassing admin dispatches
// per listener; admin requests beyond it fall through to the normal
// admission gate, so a flood of "orb-admin" frames cannot void the
// bounded-goroutine guarantee WithMaxInflight provides.
const adminInflight = 4

// server is the TCP request transport.
type server struct {
	orb      *ORB
	ln       net.Listener
	adm      *admission    // nil = unbounded dispatch
	adminSem chan struct{} // bypass slots for admin scrapes (see serveConn)

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
	wg    sync.WaitGroup
}

// Listen starts accepting invocations on addr (e.g. "127.0.0.1:0") and
// returns the bound endpoint in "tcp:host:port" form. Listen may be called
// multiple times: every listener serves the same object adapter, all of
// them share one admission gate (WithMaxInflight bounds the ORB, not each
// listener), and IORs issued after the calls carry every bound endpoint as
// a profile — the multi-profile references clients fail over across.
func (o *ORB) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("orb: listen %s: %w", addr, err)
	}
	bound := "tcp:" + ln.Addr().String()

	o.mu.Lock()
	if o.shutdown {
		o.mu.Unlock()
		ln.Close()
		return "", Systemf(CodeCommFailure, "orb shut down")
	}
	if len(o.srvs) == 0 {
		o.adm = newAdmission(o.maxInflight, o.admitQueue, o.shedAfter)
	}
	srv := &server{
		orb:      o,
		ln:       ln,
		adm:      o.adm,
		adminSem: make(chan struct{}, adminInflight),
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	o.srvs = append(o.srvs, srv)
	o.bound = append(o.bound, bound)
	o.mu.Unlock()

	srv.wg.Add(1)
	go srv.acceptLoop()
	return bound, nil
}

func (s *server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			// Transient accept errors: keep serving until stopped.
			continue
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var writeMu sync.Mutex
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	send := func(rep reply) {
		writeMu.Lock()
		defer writeMu.Unlock()
		_ = writeFrame(conn, encodeReply(rep))
	}
	// Queue-full sheds go through one dedicated writer goroutine behind a
	// bounded buffer, so the read loop never takes writeMu itself: a reply
	// write stalled on a client that has stopped draining its socket must
	// not stop frame reads (and with them the fast shedding) for the whole
	// connection. The deferred close runs before reqWG.Wait above (LIFO),
	// letting the writer drain and exit.
	var shedCh chan uint64
	if s.adm != nil {
		shedCh = make(chan uint64, shedBuffer)
		reqWG.Add(1)
		go func() {
			defer reqWG.Done()
			for id := range shedCh {
				send(errorReply(id, s.adm.shedError()))
			}
		}()
		defer close(shedCh)
	}
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		req, err := decodeRequest(frame)
		if err != nil {
			// Cannot correlate a reply for an undecodable request; drop the
			// connection so the client fails fast.
			return
		}
		// Admission: a request either takes a dispatch slot now, waits in
		// the bounded queue (its own goroutine, shed at the deadline), or —
		// when the queue is full — is shed through the connection's shed
		// writer without spawning anything. Handler goroutines are
		// therefore bounded by maxInflight + queue (+ one shed writer per
		// connection). Admin scrapes for a registered admin servant bypass
		// the gate through a small dedicated slot pool: the stats servant
		// must stay answerable exactly while the gate is shedding, which
		// is when an operator reads it — but the bypass is bounded
		// (adminInflight) and requires ServeAdmin to have run, so a flood
		// of client-chosen "orb-admin" keys cannot recreate the pile-up
		// the gate prevents; overflow admin traffic queues like anything
		// else.
		switch {
		case s.adm == nil:
			reqWG.Add(1)
			go func() {
				defer reqWG.Done()
				send(s.orb.dispatch(context.Background(), req))
			}()
		case req.objectKey == AdminKey && s.orb.hasServant(AdminKey) && s.tryAdminSlot():
			reqWG.Add(1)
			go func() {
				defer reqWG.Done()
				defer func() { <-s.adminSem }()
				send(s.orb.dispatch(context.Background(), req))
			}()
		case s.adm.tryAcquire():
			reqWG.Add(1)
			go func() {
				defer reqWG.Done()
				defer s.adm.release()
				send(s.orb.dispatch(context.Background(), req))
			}()
		case s.adm.enqueue():
			reqWG.Add(1)
			go func() {
				defer reqWG.Done()
				if !s.adm.await(s.done) {
					send(errorReply(req.requestID, s.adm.shedError()))
					return
				}
				defer s.adm.release()
				send(s.orb.dispatch(context.Background(), req))
			}()
		default:
			select {
			case shedCh <- req.requestID:
			default:
				// The shed buffer is full behind a stalled reply write:
				// the client is not draining its socket, so this reply
				// could never be delivered anyway. Drop it (the shed is
				// already counted) and let the caller time out.
			}
		}
	}
}

// tryAdminSlot grabs one admission-bypass slot without waiting.
func (s *server) tryAdminSlot() bool {
	select {
	case s.adminSem <- struct{}{}:
		return true
	default:
		return false
	}
}

// stop closes the listener and every live connection, then waits for
// handlers to drain.
func (s *server) stop() {
	close(s.done)
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}
