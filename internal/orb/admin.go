package orb

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// Admin servant identity: remote tooling reaches any ORB's operational
// stats through the well-known AdminKey, the same way the name service is
// reached through "naming".
const (
	// AdminTypeID is the interface id of the ORB admin servant.
	AdminTypeID = "IDL:GLOP/ORBAdmin:1.0"
	// AdminKey is the well-known object key the admin servant serves
	// under.
	AdminKey = "orb-admin"
)

// adminServant exposes the hosting ORB's ServerStats and EndpointStats so
// remote tooling can scrape them over the ORB itself — the operational
// introspection surface the overload and failover machinery reports into.
// Requests for AdminKey bypass server admission control (server.go), so
// the stats stay scrapeable exactly while the gate is shedding.
type adminServant struct {
	orb *ORB
}

// ServeAdmin activates an admin servant for o under AdminKey and returns
// its reference. Scrape it with an AdminClient (AdminAt builds the
// well-known reference from the daemon's endpoints).
func ServeAdmin(o *ORB) IOR {
	return o.RegisterServantWithKey(AdminKey, AdminTypeID, &adminServant{orb: o})
}

// Dispatch implements Servant.
func (s *adminServant) Dispatch(ctx context.Context, op string, in *cdr.Decoder) ([]byte, error) {
	switch op {
	case "server_stats":
		st, ok := s.orb.ServerStats()
		e := cdr.NewEncoder(128)
		e.WriteBool(ok)
		if ok {
			encodeServerStats(e, st)
		}
		return e.Bytes(), nil
	case "endpoint_stats":
		endpoint := in.ReadString()
		if err := in.Err(); err != nil {
			return nil, Systemf(CodeMarshal, "endpoint_stats: %v", err)
		}
		st, ok := s.orb.EndpointStats(endpoint)
		e := cdr.NewEncoder(128)
		e.WriteBool(ok)
		if ok {
			encodeEndpointStats(e, st)
		}
		return e.Bytes(), nil
	case "endpoints":
		e := cdr.NewEncoder(64)
		e.WriteStringList(s.orb.PooledEndpoints())
		return e.Bytes(), nil
	case "recovery_stats":
		s.orb.mu.RLock()
		fn := s.orb.recoveryFn
		s.orb.mu.RUnlock()
		e := cdr.NewEncoder(128)
		var st RecoveryScrape
		ok := false
		if fn != nil {
			st, ok = fn()
		}
		e.WriteBool(ok)
		if ok {
			encodeRecoveryScrape(e, st)
		}
		return e.Bytes(), nil
	case "replication_stats":
		s.orb.mu.RLock()
		fn := s.orb.replFn
		s.orb.mu.RUnlock()
		e := cdr.NewEncoder(128)
		var st ReplicationScrape
		ok := false
		if fn != nil {
			st, ok = fn()
		}
		e.WriteBool(ok)
		if ok {
			encodeReplicationScrape(e, st)
		}
		return e.Bytes(), nil
	case "relay_stats":
		s.orb.mu.RLock()
		fn := s.orb.relayFn
		s.orb.mu.RUnlock()
		e := cdr.NewEncoder(64)
		var st RelayScrape
		ok := false
		if fn != nil {
			st, ok = fn()
		}
		e.WriteBool(ok)
		if ok {
			encodeRelayScrape(e, st)
		}
		return e.Bytes(), nil
	default:
		if strings.HasPrefix(op, "shard_") {
			s.orb.mu.RLock()
			fn := s.orb.shardAdminFn
			s.orb.mu.RUnlock()
			if fn == nil {
				return nil, Systemf(CodeNoImplement, "this process hosts no shard-map authority")
			}
			return fn(ctx, op, in)
		}
		return nil, Systemf(CodeBadOperation, "ORBAdmin has no operation %q", op)
	}
}

// AdminClient is the client-side proxy for a remote ORB's admin servant,
// the NameClient-style scrape helper operational tooling embeds.
type AdminClient struct {
	orb *ORB
	ref IOR
}

// NewAdminClient returns a proxy invoking the admin servant at ref
// through o.
func NewAdminClient(o *ORB, ref IOR) *AdminClient {
	return &AdminClient{orb: o, ref: ref}
}

// AdminAt builds the IOR of the well-known admin servant reachable at the
// given endpoints (profiles, in preference order).
func AdminAt(endpoints ...string) IOR {
	return NewIOR(AdminTypeID, AdminKey, endpoints...)
}

// ServerStats scrapes the remote ORB's server-side admission state. The
// second return is false when the remote ORB is not listening (which, for
// a scrape that travelled over TCP, indicates a race with its shutdown).
func (c *AdminClient) ServerStats(ctx context.Context) (ServerStats, bool, error) {
	body, err := c.orb.Invoke(ctx, c.ref, "server_stats", nil)
	if err != nil {
		return ServerStats{}, false, fmt.Errorf("admin server_stats: %w", err)
	}
	d := cdr.NewDecoder(body)
	ok := d.ReadBool()
	var st ServerStats
	if ok {
		st = decodeServerStats(d)
	}
	if err := d.Err(); err != nil {
		return ServerStats{}, false, Systemf(CodeMarshal, "server_stats reply: %v", err)
	}
	return st, ok, nil
}

// EndpointStats scrapes the remote ORB's client-side pool state for one
// endpoint. The second return is false when the remote ORB holds no pool
// for it.
func (c *AdminClient) EndpointStats(ctx context.Context, endpoint string) (EndpointStats, bool, error) {
	e := cdr.NewEncoder(64)
	e.WriteString(endpoint)
	body, err := c.orb.Invoke(ctx, c.ref, "endpoint_stats", e.Bytes())
	if err != nil {
		return EndpointStats{}, false, fmt.Errorf("admin endpoint_stats %q: %w", endpoint, err)
	}
	d := cdr.NewDecoder(body)
	ok := d.ReadBool()
	var st EndpointStats
	if ok {
		st = decodeEndpointStats(d)
	}
	if err := d.Err(); err != nil {
		return EndpointStats{}, false, Systemf(CodeMarshal, "endpoint_stats reply: %v", err)
	}
	return st, ok, nil
}

// Endpoints scrapes the list of endpoints the remote ORB holds client
// pools for, sorted.
func (c *AdminClient) Endpoints(ctx context.Context) ([]string, error) {
	body, err := c.orb.Invoke(ctx, c.ref, "endpoints", nil)
	if err != nil {
		return nil, fmt.Errorf("admin endpoints: %w", err)
	}
	d := cdr.NewDecoder(body)
	eps := d.ReadStringList()
	if err := d.Err(); err != nil {
		return nil, Systemf(CodeMarshal, "endpoints reply: %v", err)
	}
	return eps, nil
}

// RecoveryScrape is the transaction-recovery status an ORB exposes through
// the orb-admin servant's "recovery_stats" operation. The hosting process
// wires its transaction service in with SetRecoveryStatsProvider; the
// counters mirror ots.RecoveryTotals without this package importing it.
type RecoveryScrape struct {
	// Passes counts completed recovery passes.
	Passes uint64
	// DecisionsReplayed totals commit decisions re-driven by recovery.
	DecisionsReplayed uint64
	// ResourcesCommitted totals commit deliveries made by recovery.
	ResourcesCommitted uint64
	// ResourcesMissing totals participants recovery could not re-bind.
	ResourcesMissing uint64
	// ResourcesFailed totals commit deliveries that failed during recovery.
	ResourcesFailed uint64
	// HeuristicsRecorded totals heuristic outcomes recorded durably.
	HeuristicsRecorded uint64
	// PendingDecisions gauges decisions still awaiting full delivery.
	PendingDecisions uint32
	// PendingHeuristics gauges heuristic records not yet forgotten.
	PendingHeuristics uint32
}

// RecoveryStats scrapes the remote ORB's transaction-recovery status. The
// second return is false when the remote process hosts no recovery surface
// (no provider was wired in).
func (c *AdminClient) RecoveryStats(ctx context.Context) (RecoveryScrape, bool, error) {
	body, err := c.orb.Invoke(ctx, c.ref, "recovery_stats", nil)
	if err != nil {
		return RecoveryScrape{}, false, fmt.Errorf("admin recovery_stats: %w", err)
	}
	d := cdr.NewDecoder(body)
	ok := d.ReadBool()
	var st RecoveryScrape
	if ok {
		st = decodeRecoveryScrape(d)
	}
	if err := d.Err(); err != nil {
		return RecoveryScrape{}, false, Systemf(CodeMarshal, "recovery_stats reply: %v", err)
	}
	return st, ok, nil
}

// FollowerLag is one follower's acknowledgement position in a
// ReplicationScrape: how far behind the leader's last durable LSN its ack
// watermark sits.
type FollowerLag struct {
	// ID is the follower's member ID ("" for an anonymous follower).
	ID string
	// Acked is the highest LSN the follower has acknowledged as durable.
	Acked uint64
	// Lag is the leader's last LSN minus Acked (0 when caught up).
	Lag uint64
}

// ReplicationScrape is the coordinator-group state an ORB exposes through
// the orb-admin servant's "replication_stats" operation, wired in by the
// group member with SetReplicationStatsProvider. Operators watch Term and
// LastElectionMillis to spot churn, and Followers to spot a standby
// falling behind the decision barrier.
type ReplicationScrape struct {
	// MemberID names the scraped member.
	MemberID string
	// Role is "leader" or "follower".
	Role string
	// Term is the member's durable term.
	Term uint64
	// TermLeader is the member that claimed the term.
	TermLeader string
	// LeaderID is the leader this member currently follows (its own ID
	// while leading, "" while searching).
	LeaderID string
	// LastLSN is the member's last durable LSN.
	LastLSN uint64
	// Fenced reports whether the member's local appends are fenced off.
	Fenced bool
	// LastElectionMillis is when this member last won an election (Unix
	// milliseconds, 0 for never).
	LastElectionMillis int64
	// Elections counts this member's election wins.
	Elections uint64
	// Followers is the per-follower ack lag, leader-side only, sorted by
	// ID.
	Followers []FollowerLag
}

// ReplicationStats scrapes the remote ORB's coordinator-group state. The
// second return is false when the remote process hosts no replication
// group.
func (c *AdminClient) ReplicationStats(ctx context.Context) (ReplicationScrape, bool, error) {
	body, err := c.orb.Invoke(ctx, c.ref, "replication_stats", nil)
	if err != nil {
		return ReplicationScrape{}, false, fmt.Errorf("admin replication_stats: %w", err)
	}
	d := cdr.NewDecoder(body)
	ok := d.ReadBool()
	var st ReplicationScrape
	if ok {
		st = decodeReplicationScrape(d)
	}
	if err := d.Err(); err != nil {
		return ReplicationScrape{}, false, Systemf(CodeMarshal, "replication_stats reply: %v", err)
	}
	return st, ok, nil
}

func encodeReplicationScrape(e *cdr.Encoder, st ReplicationScrape) {
	e.WriteString(st.MemberID)
	e.WriteString(st.Role)
	e.WriteUint64(st.Term)
	e.WriteString(st.TermLeader)
	e.WriteString(st.LeaderID)
	e.WriteUint64(st.LastLSN)
	e.WriteBool(st.Fenced)
	e.WriteInt64(st.LastElectionMillis)
	e.WriteUint64(st.Elections)
	e.WriteUint32(uint32(len(st.Followers)))
	for _, f := range st.Followers {
		e.WriteString(f.ID)
		e.WriteUint64(f.Acked)
		e.WriteUint64(f.Lag)
	}
}

func decodeReplicationScrape(d *cdr.Decoder) ReplicationScrape {
	st := ReplicationScrape{
		MemberID:           d.ReadString(),
		Role:               d.ReadString(),
		Term:               d.ReadUint64(),
		TermLeader:         d.ReadString(),
		LeaderID:           d.ReadString(),
		LastLSN:            d.ReadUint64(),
		Fenced:             d.ReadBool(),
		LastElectionMillis: d.ReadInt64(),
		Elections:          d.ReadUint64(),
	}
	n := d.ReadUint32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		st.Followers = append(st.Followers, FollowerLag{
			ID:    d.ReadString(),
			Acked: d.ReadUint64(),
			Lag:   d.ReadUint64(),
		})
	}
	return st
}

// RelayScrape is the relay plant-cache telemetry an ORB exposes through
// the orb-admin servant's "relay_stats" operation, wired in by the
// relay servant with SetRelayStatsProvider. Operators size the
// membership cache from it: a high eviction rate with misses on the
// deliver path means live trees are being evicted and re-planted.
type RelayScrape struct {
	// Plants gauges membership trees currently cached.
	Plants uint32
	// Capacity is the cache bound (entries).
	Capacity uint32
	// Hits totals deliver-path cache lookups that found their tree.
	Hits uint64
	// Misses totals deliver-path lookups that missed (forcing the
	// coordinator to re-send the subtree).
	Misses uint64
	// Evictions totals cached trees evicted to admit new plants.
	Evictions uint64
}

// RelayStats scrapes the remote ORB's relay plant-cache telemetry. The
// second return is false when the remote process hosts no relay
// servant.
func (c *AdminClient) RelayStats(ctx context.Context) (RelayScrape, bool, error) {
	body, err := c.orb.Invoke(ctx, c.ref, "relay_stats", nil)
	if err != nil {
		return RelayScrape{}, false, fmt.Errorf("admin relay_stats: %w", err)
	}
	d := cdr.NewDecoder(body)
	ok := d.ReadBool()
	var st RelayScrape
	if ok {
		st = decodeRelayScrape(d)
	}
	if err := d.Err(); err != nil {
		return RelayScrape{}, false, Systemf(CodeMarshal, "relay_stats reply: %v", err)
	}
	return st, ok, nil
}

func encodeRelayScrape(e *cdr.Encoder, st RelayScrape) {
	e.WriteUint32(st.Plants)
	e.WriteUint32(st.Capacity)
	e.WriteUint64(st.Hits)
	e.WriteUint64(st.Misses)
	e.WriteUint64(st.Evictions)
}

func decodeRelayScrape(d *cdr.Decoder) RelayScrape {
	var st RelayScrape
	st.Plants = d.ReadUint32()
	st.Capacity = d.ReadUint32()
	st.Hits = d.ReadUint64()
	st.Misses = d.ReadUint64()
	st.Evictions = d.ReadUint64()
	return st
}

func encodeRecoveryScrape(e *cdr.Encoder, st RecoveryScrape) {
	e.WriteUint64(st.Passes)
	e.WriteUint64(st.DecisionsReplayed)
	e.WriteUint64(st.ResourcesCommitted)
	e.WriteUint64(st.ResourcesMissing)
	e.WriteUint64(st.ResourcesFailed)
	e.WriteUint64(st.HeuristicsRecorded)
	e.WriteUint32(st.PendingDecisions)
	e.WriteUint32(st.PendingHeuristics)
}

func decodeRecoveryScrape(d *cdr.Decoder) RecoveryScrape {
	var st RecoveryScrape
	st.Passes = d.ReadUint64()
	st.DecisionsReplayed = d.ReadUint64()
	st.ResourcesCommitted = d.ReadUint64()
	st.ResourcesMissing = d.ReadUint64()
	st.ResourcesFailed = d.ReadUint64()
	st.HeuristicsRecorded = d.ReadUint64()
	st.PendingDecisions = d.ReadUint32()
	st.PendingHeuristics = d.ReadUint32()
	return st
}

func encodeServerStats(e *cdr.Encoder, st ServerStats) {
	e.WriteString(st.Endpoint)
	e.WriteStringList(st.Endpoints)
	e.WriteUint32(uint32(st.Conns))
	e.WriteUint32(uint32(st.Inflight))
	e.WriteUint32(uint32(st.Queued))
	e.WriteUint64(st.Shed)
	e.WriteUint64(st.Dispatched)
	e.WriteUint32(uint32(st.MaxInflight))
	e.WriteUint32(uint32(st.QueueDepth))
	e.WriteInt64(int64(st.ShedAfter))
	e.WriteUint32(uint32(st.ReservedSlots))
	e.WriteUint32(uint32(st.PriorityInflight))
	e.WriteUint64(st.PriorityDispatched)
	e.WriteUint64(st.PriorityShed)
}

func decodeServerStats(d *cdr.Decoder) ServerStats {
	st := ServerStats{Endpoint: d.ReadString()}
	st.Endpoints = d.ReadStringList()
	st.Conns = int(d.ReadUint32())
	st.Inflight = int(d.ReadUint32())
	st.Queued = int(d.ReadUint32())
	st.Shed = d.ReadUint64()
	st.Dispatched = d.ReadUint64()
	st.MaxInflight = int(d.ReadUint32())
	st.QueueDepth = int(d.ReadUint32())
	st.ShedAfter = time.Duration(d.ReadInt64())
	st.ReservedSlots = int(d.ReadUint32())
	st.PriorityInflight = int(d.ReadUint32())
	st.PriorityDispatched = d.ReadUint64()
	st.PriorityShed = d.ReadUint64()
	return st
}

func encodeEndpointStats(e *cdr.Encoder, st EndpointStats) {
	e.WriteString(st.Endpoint)
	e.WriteUint32(uint32(st.Conns))
	e.WriteUint32(uint32(st.Pending))
	e.WriteUint32(uint32(st.Dialing))
	e.WriteUint32(uint32(st.Failures))
	e.WriteBool(st.Down)
	e.WriteUint32(uint32(st.Breaker))
	e.WriteUint64(st.BreakerProbes)
	e.WriteUint64(st.BreakerOpens)
	e.WriteUint64(st.RetryExhausted)
	e.WriteInt64(int64(st.RTT))
}

func decodeEndpointStats(d *cdr.Decoder) EndpointStats {
	st := EndpointStats{Endpoint: d.ReadString()}
	st.Conns = int(d.ReadUint32())
	st.Pending = int(d.ReadUint32())
	st.Dialing = int(d.ReadUint32())
	st.Failures = int(d.ReadUint32())
	st.Down = d.ReadBool()
	st.Breaker = BreakerState(d.ReadUint32())
	st.BreakerProbes = d.ReadUint64()
	st.BreakerOpens = d.ReadUint64()
	st.RetryExhausted = d.ReadUint64()
	st.RTT = time.Duration(d.ReadInt64())
	return st
}
