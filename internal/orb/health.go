package orb

import (
	"sync"
	"time"
)

// HealthRegistry shares per-endpoint health verdicts across every client
// ORB wired to it. The dial health gate (consecutive-failure count and
// down-until deadline) lives here, so when one ORB's pool discovers a dead
// endpoint, every other ORB in the process fails fast against that
// endpoint instead of re-learning the verdict with its own dials; circuit
// breakers remain per-ORB (their thresholds are per-ORB configuration) but
// publish their open windows here, so every ORB's endpoint selector can
// deprioritize a profile some breaker has opened on.
//
// All ORBs in a process share ProcessHealthRegistry unless
// WithHealthRegistry gives them a private one. Tests (and any host that
// wants verdict isolation between tenants) should pass
// WithHealthRegistry(NewHealthRegistry()): with the shared default, a
// down window learned for an endpoint outlives the ORB that learned it,
// which is the point in production and a surprise in a test that reuses
// the address. A HealthRegistry is safe for concurrent use.
type HealthRegistry struct {
	// now is the registry's clock, a test seam for the age-based pruning
	// (nil means time.Now).
	now func() time.Time

	mu  sync.Mutex
	eps map[string]*endpointHealth
}

// clock returns the registry's notion of now.
func (h *HealthRegistry) clock() time.Time {
	if h.now != nil {
		return h.now()
	}
	return time.Now()
}

// ProcessHealthRegistry is the process-wide default registry every ORB
// consults unless overridden with WithHealthRegistry: the "many
// coordinators on one node share dial verdicts" deployment.
var ProcessHealthRegistry = NewHealthRegistry()

// NewHealthRegistry returns an empty registry.
func NewHealthRegistry() *HealthRegistry {
	return &HealthRegistry{eps: make(map[string]*endpointHealth)}
}

// maxHealthEntries bounds the registry before an eviction sweep runs, so
// a long-lived process contacting churning endpoints (ephemeral ports,
// autoscaled replicas) cannot grow it without bound.
const maxHealthEntries = 4096

// maxUnhealthyAge is how long an unpinned record's dirty verdict (dial
// failures, an open down window or breaker window) may go untouched
// before the eviction sweep prunes it anyway. A peer that died for good
// used to park its record behind the clean-first eviction forever; a
// verdict this stale is worth at most one re-learned dial failure, so
// dropping it is nearly lossless and keeps a churning deployment's sweep
// from degenerating into the wholesale keep-only-pinned reset.
const maxUnhealthyAge = 15 * time.Minute

// entry returns the shared record for endpoint, creating it on first use.
// At the size bound, unpinned records indistinguishable from a fresh one
// (no failures, no open windows) are evicted first — losing them is
// lossless, since a re-created record carries the same verdict. Records
// pinned by live pools (acquire) are never evicted, so a pool's gate and
// the registry's readers always share one record.
func (h *HealthRegistry) entry(endpoint string) *endpointHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.entryLocked(endpoint)
}

// entriesFor returns the shared records for every endpoint in eps under a
// single registry lock acquisition — the endpoint selector's batch lookup,
// so a multi-profile invoke does not hit the process-global mutex once
// per profile.
func (h *HealthRegistry) entriesFor(eps []string) []*endpointHealth {
	out := make([]*endpointHealth, len(eps))
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, ep := range eps {
		out[i] = h.entryLocked(ep)
	}
	return out
}

func (h *HealthRegistry) entryLocked(endpoint string) *endpointHealth {
	e, ok := h.eps[endpoint]
	if !ok {
		if len(h.eps) >= maxHealthEntries {
			h.evictCleanLocked(h.clock())
			if len(h.eps) >= maxHealthEntries {
				// Everything left is dirty (a wide outage with endpoint
				// churn): keep only the records live pools pin and drop
				// the rest rather than grow without bound. Lossy for the
				// dropped verdicts — down windows re-learn at one failed
				// dial apiece — but the next maxHealthEntries inserts are
				// sweep-free, so the cost amortizes.
				kept := make(map[string]*endpointHealth)
				for ep, rec := range h.eps {
					rec.mu.Lock()
					pinned := rec.refs > 0
					rec.mu.Unlock()
					if pinned {
						kept[ep] = rec
					}
				}
				h.eps = kept
			}
		}
		e = &endpointHealth{}
		h.eps[endpoint] = e
	}
	return e
}

// evictCleanLocked drops every unpinned record whose verdict equals a
// fresh record's — a lossless eviction: no live pool feeds the record,
// and a re-created record carries the same (clean) verdict. It also
// prunes unpinned records whose dirty verdict has gone untouched for
// maxUnhealthyAge: records for peers that stayed unhealthy forever used
// to linger here indefinitely, and a verdict that stale costs at most
// one re-learned dial failure to reconstruct.
func (h *HealthRegistry) evictCleanLocked(now time.Time) {
	for ep, e := range h.eps {
		e.mu.Lock()
		clean := e.refs == 0 && e.failures == 0 &&
			!now.Before(e.downUntil) && !now.Before(e.breakerOpenUntil)
		stale := e.refs == 0 && !clean && now.Sub(e.touched) > maxUnhealthyAge
		e.mu.Unlock()
		if clean || stale {
			delete(h.eps, ep)
		}
	}
}

// HealthVerdict is a snapshot of one endpoint's shared health record, for
// tooling and tests.
type HealthVerdict struct {
	// Endpoint is the endpoint the verdict describes ("tcp:host:port").
	Endpoint string
	// Failures is the consecutive dial-failure count across every ORB
	// sharing the registry.
	Failures int
	// Down reports whether the dial health gate is currently failing calls
	// fast for this endpoint.
	Down bool
	// BreakerOpen reports whether some ORB's circuit breaker currently
	// holds this endpoint open.
	BreakerOpen bool
}

// Verdict reports the current shared verdict for endpoint. The zero
// verdict (healthy) is returned for endpoints the registry has never seen.
func (h *HealthRegistry) Verdict(endpoint string) HealthVerdict {
	h.mu.Lock()
	e, ok := h.eps[endpoint]
	h.mu.Unlock()
	v := HealthVerdict{Endpoint: endpoint}
	if !ok {
		return v
	}
	now := time.Now()
	e.mu.Lock()
	v.Failures = e.failures
	v.Down = now.Before(e.downUntil)
	v.BreakerOpen = now.Before(e.breakerOpenUntil)
	e.mu.Unlock()
	return v
}

// endpointHealth is the shared health record for one endpoint. Its mutex
// is a leaf lock: no other lock is ever acquired while it is held.
type endpointHealth struct {
	mu               sync.Mutex
	refs             int       // live pools pinning this record (see acquire)
	failures         int       // consecutive dial failures, all ORBs
	downUntil        time.Time // dial gate: fail fast until then
	breakerOpenUntil time.Time // latest breaker-open window reported
	touched          time.Time // last verdict change, for age-based pruning
}

// acquire returns the record for endpoint pinned against eviction; pools
// hold their record for their whole lifetime, and evicting a record some
// pool still feeds would split the verdict between that pool and every
// later reader of the registry. release undoes the pin.
func (h *HealthRegistry) acquire(endpoint string) *endpointHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.entryLocked(endpoint)
	e.mu.Lock()
	e.refs++
	e.mu.Unlock()
	return e
}

// release unpins a record acquired with acquire.
func (e *endpointHealth) release() {
	e.mu.Lock()
	e.refs--
	e.mu.Unlock()
}

// dialFailed records one dial failure and opens the down window for the
// backoff the caller computes from the updated failure count.
func (e *endpointHealth) dialFailed(now time.Time, backoff func(failures int) time.Duration) {
	e.mu.Lock()
	e.failures++
	e.downUntil = now.Add(backoff(e.failures))
	e.touched = now
	e.mu.Unlock()
}

// dialOK clears the dial gate after a successful dial.
func (e *endpointHealth) dialOK() {
	e.mu.Lock()
	e.failures = 0
	e.downUntil = time.Time{}
	e.touched = time.Now()
	e.mu.Unlock()
}

// gate reports the dial gate's state at now: whether the endpoint is down,
// the shared consecutive-failure count, and the down-until deadline.
func (e *endpointHealth) gate(now time.Time) (down bool, failures int, until time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return now.Before(e.downUntil), e.failures, e.downUntil
}

// reportBreakerOpen publishes a breaker-open window ending at until.
func (e *endpointHealth) reportBreakerOpen(until time.Time) {
	e.mu.Lock()
	if until.After(e.breakerOpenUntil) {
		e.breakerOpenUntil = until
	}
	e.touched = time.Now()
	e.mu.Unlock()
}

// reportBreakerClosed withdraws any published breaker-open window. With
// several ORBs sharing the registry the last report wins — the shared
// verdict is a selection heuristic, not a correctness gate.
func (e *endpointHealth) reportBreakerClosed() {
	e.mu.Lock()
	e.breakerOpenUntil = time.Time{}
	e.mu.Unlock()
}

// preferred reports whether the endpoint looks healthy for selection: dial
// gate closed and no published breaker-open window.
func (e *endpointHealth) preferred(now time.Time) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return !now.Before(e.downUntil) && !now.Before(e.breakerOpenUntil)
}
