package orb

import (
	"context"
	"testing"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// opGateServant blocks every operation except "commit" until released,
// letting tests pin the server in a saturated state.
type opGateServant struct {
	entered chan struct{}
	release chan struct{}
}

func (s *opGateServant) Dispatch(ctx context.Context, op string, _ *cdr.Decoder) ([]byte, error) {
	if op == "commit" {
		return []byte("committed"), nil
	}
	s.entered <- struct{}{}
	select {
	case <-s.release:
	case <-ctx.Done():
	}
	return []byte("done"), nil
}

// TestPriorityOpsAdmittedUnderSaturation saturates the shared dispatch
// slots and the wait queue with first-contact work, then proves a
// completion verb still gets through on the reserved slot while further
// first-contact work is shed.
func TestPriorityOpsAdmittedUnderSaturation(t *testing.T) {
	const shedAfter = 30 * time.Millisecond
	srv := New(
		WithMaxInflight(2), // 1 shared + 1 reserved
		WithAdmissionQueue(1, shedAfter),
		WithPriorityOps(1, "commit"),
	)
	t.Cleanup(srv.Shutdown)
	servant := &opGateServant{entered: make(chan struct{}, 4), release: make(chan struct{})}
	ref := srv.RegisterServant("IDL:test/Gate:1.0", servant)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = srv.IOR(ref.Key)
	client := New(WithCallTimeout(5 * time.Second))
	defer client.Shutdown()
	ctx := context.Background()

	// Occupy the single shared slot.
	blockerDone := make(chan error, 1)
	go func() {
		_, err := client.Invoke(ctx, ref, "begin", nil)
		blockerDone <- err
	}()
	<-servant.entered

	// Saturate the wait queue: these first-contact calls can only queue
	// (depth 1) and shed; none may touch the reserved slot.
	shedDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := client.Invoke(ctx, ref, "begin", nil)
			shedDone <- err
		}()
	}

	// The completion verb must still be admitted — reserved slot — and
	// return well before the blocked servant frees anything.
	start := time.Now()
	body, err := client.Invoke(ctx, ref, "commit", nil)
	if err != nil {
		t.Fatalf("priority commit shed under saturation: %v", err)
	}
	if string(body) != "committed" {
		t.Fatalf("commit reply = %q", body)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("commit took %s, want fast reserved-slot admission", elapsed)
	}

	// Both saturating first-contact calls end up shed with TRANSIENT.
	for i := 0; i < 2; i++ {
		if err := <-shedDone; !IsSystem(err, CodeTransient) {
			t.Fatalf("saturating call %d: err = %v, want TRANSIENT shed", i, err)
		}
	}

	close(servant.release)
	if err := <-blockerDone; err != nil {
		t.Fatalf("blocker err = %v", err)
	}

	st, ok := srv.ServerStats()
	if !ok {
		t.Fatal("no server stats while listening")
	}
	if st.ReservedSlots != 1 || st.MaxInflight != 2 {
		t.Fatalf("stats = %+v, want 1 reserved of 2", st)
	}
	if st.PriorityDispatched != 1 || st.PriorityShed != 0 {
		t.Fatalf("priority counters = dispatched %d / shed %d, want 1 / 0",
			st.PriorityDispatched, st.PriorityShed)
	}
	if st.Shed != 2 || st.Dispatched != 2 { // blocker + commit admitted
		t.Fatalf("stats = %+v, want dispatched=2 shed=2", st)
	}
	if st.Inflight != 0 || st.PriorityInflight != 0 {
		t.Fatalf("gauges after quiesce = %+v, want zero", st)
	}
}

// TestPriorityReserveClampedToLeaveSharedSlot: a reservation as large as
// the whole dispatch bound must be clamped so non-priority work can still
// run at all.
func TestPriorityReserveClampedToLeaveSharedSlot(t *testing.T) {
	srv := New(WithMaxInflight(1), WithPriorityOps(5))
	t.Cleanup(srv.Shutdown)
	ref := srv.RegisterServant("IDL:test/Echo:1.0",
		ServantFunc(func(_ context.Context, _ string, _ *cdr.Decoder) ([]byte, error) {
			return []byte("ok"), nil
		}))
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = srv.IOR(ref.Key)
	st, ok := srv.ServerStats()
	if !ok {
		t.Fatal("no server stats")
	}
	if st.ReservedSlots != 0 || st.MaxInflight != 1 {
		t.Fatalf("stats = %+v, want clamped reservation (0 of 1)", st)
	}
	// A plain (non-priority) op still dispatches.
	client := New()
	defer client.Shutdown()
	if _, err := client.Invoke(context.Background(), ref, "anything", nil); err != nil {
		t.Fatal(err)
	}
}

// TestServerStatsPriorityFieldsRoundTrip pins the extended wire encoding
// of ServerStats (fields appended for mixed-fleet compatibility).
func TestServerStatsPriorityFieldsRoundTrip(t *testing.T) {
	in := ServerStats{
		Endpoint:           "tcp:127.0.0.1:1",
		Endpoints:          []string{"tcp:127.0.0.1:1"},
		Conns:              3,
		Inflight:           2,
		Queued:             1,
		Shed:               7,
		Dispatched:         9,
		MaxInflight:        8,
		QueueDepth:         4,
		ShedAfter:          50 * time.Millisecond,
		ReservedSlots:      2,
		PriorityInflight:   1,
		PriorityDispatched: 5,
		PriorityShed:       1,
	}
	e := cdr.NewEncoder(128)
	encodeServerStats(e, in)
	d := cdr.NewDecoder(e.Bytes())
	out := decodeServerStats(d)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if out.ReservedSlots != in.ReservedSlots || out.PriorityInflight != in.PriorityInflight ||
		out.PriorityDispatched != in.PriorityDispatched || out.PriorityShed != in.PriorityShed {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}
