package orb

import (
	"fmt"
	"testing"
	"time"
)

// fillDirty plants n unpinned records with one dial failure each (dirty
// verdicts) at the fake clock's current time.
func fillDirty(h *HealthRegistry, n int, prefix string, now time.Time) {
	backoff := func(int) time.Duration { return time.Millisecond }
	for i := 0; i < n; i++ {
		h.entry(fmt.Sprintf("tcp:%s-%d", prefix, i)).dialFailed(now, backoff)
	}
}

// TestHealthRegistryAgePruning pins the age-based pruning with a fake
// clock: at the size bound, unpinned records whose dirty verdict has gone
// untouched for maxUnhealthyAge are pruned, fresher dirty records
// survive, and pinned records survive regardless of age — so a fleet of
// peers that died forever no longer parks the registry at the bound's
// degenerate keep-only-pinned reset.
func TestHealthRegistryAgePruning(t *testing.T) {
	t0 := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	now := t0
	h := NewHealthRegistry()
	h.now = func() time.Time { return now }

	// A pinned stale-dirty record: must survive every sweep.
	pinned := h.acquire("tcp:pinned:1")
	pinned.dialFailed(t0, func(int) time.Duration { return time.Millisecond })

	// Fill to the bound with dirty records; all stamped t0.
	fillDirty(h, maxHealthEntries-1, "old", t0)
	if got := len(h.eps); got != maxHealthEntries {
		t.Fatalf("registry holds %d records, want %d", got, maxHealthEntries)
	}

	// Before maxUnhealthyAge passes, an insert at the bound finds nothing
	// clean and nothing stale: the wholesale keep-only-pinned reset runs
	// (the pre-pruning behaviour), which keeps only the pinned record and
	// the new insert.
	now = t0.Add(maxUnhealthyAge / 2)
	h.entry("tcp:new:fresh")
	if got := len(h.eps); got != 2 {
		t.Fatalf("fresh-dirty sweep kept %d records, want 2 (pinned + new)", got)
	}
	if _, ok := h.eps["tcp:pinned:1"]; !ok {
		t.Fatal("pinned record lost in wholesale reset")
	}

	// Refill: half old (stamped now), advance past maxUnhealthyAge, half
	// young. The next insert's sweep must prune exactly the old unpinned
	// cohort and keep the young one — no wholesale reset.
	old := now
	fillDirty(h, maxHealthEntries/2, "old2", old)
	now = old.Add(maxUnhealthyAge + time.Minute)
	young := now
	youngCount := maxHealthEntries - len(h.eps)
	fillDirty(h, youngCount, "young", young)
	if got := len(h.eps); got != maxHealthEntries {
		t.Fatalf("refill holds %d records, want %d", got, maxHealthEntries)
	}
	h.entry("tcp:new:after-age")
	if _, ok := h.eps["tcp:old2-0"]; ok {
		t.Fatal("stale unhealthy record survived age pruning")
	}
	if _, ok := h.eps["tcp:young-0"]; !ok {
		t.Fatal("young unhealthy record pruned before maxUnhealthyAge")
	}
	if _, ok := h.eps["tcp:pinned:1"]; !ok {
		t.Fatal("pinned stale record pruned (pins must win over age)")
	}
	// Survivors: the young dirty cohort, the pinned record, and the
	// insert itself (the clean tcp:new:fresh record went to the
	// clean-first eviction).
	if got, want := len(h.eps), youngCount+2; got != want {
		t.Fatalf("age sweep kept %d records, want %d", got, want)
	}

	// Verdict freshness is what counts: touching an old record's verdict
	// (another dial failure) resets its age.
	h.eps["tcp:young-1"].dialFailed(young.Add(maxUnhealthyAge), func(int) time.Duration { return time.Millisecond })
	now = young.Add(maxUnhealthyAge + 2*time.Minute)
	h.mu.Lock()
	h.evictCleanLocked(h.clock())
	h.mu.Unlock()
	if _, ok := h.eps["tcp:young-1"]; !ok {
		t.Fatal("re-touched record pruned despite fresh verdict")
	}
	if _, ok := h.eps["tcp:young-2"]; ok {
		t.Fatal("untouched record survived past maxUnhealthyAge")
	}
}
