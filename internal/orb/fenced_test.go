package orb

import (
	"context"
	"sync/atomic"
	"testing"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// TestFencedRedirectFollowsLeaderHint: a deposed coordinator-group
// member answers FENCED with a leader hint; the client invoke path must
// follow the hint once and complete the call at the leader instead of
// surfacing the exception (or, worse, blindly retrying the deposed
// member's other profiles).
func TestFencedRedirectFollowsLeaderHint(t *testing.T) {
	leader, leaderEp := startReplica(t, "coord")

	deposed := New()
	t.Cleanup(deposed.Shutdown)
	var deposedCalls atomic.Int32
	deposed.RegisterServantWithKey("coord", "IDL:test/Replica:1.0", ServantFunc(
		func(_ context.Context, op string, _ *cdr.Decoder) ([]byte, error) {
			deposedCalls.Add(1)
			return nil, Systemf(CodeFenced, "term=2 leader=b at=%s deposed", leaderEp)
		}))
	deposedEp, err := deposed.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	client := isolatedClient(t)
	ref := NewIOR("IDL:test/Replica:1.0", "coord", deposedEp)
	out, err := client.Invoke(context.Background(), ref, "op", nil)
	if err != nil {
		t.Fatalf("invoke via deposed member: %v", err)
	}
	if string(out) != "ok" {
		t.Fatalf("redirected reply = %q, want ok", out)
	}
	if got := deposedCalls.Load(); got != 1 {
		t.Fatalf("deposed member saw %d calls, want 1", got)
	}
	if got := leader.calls.Load(); got != 1 {
		t.Fatalf("leader saw %d calls, want 1", got)
	}
}

// TestFencedWithoutHintSurfaces: a FENCED exception with no leader hint
// (the member does not know the leader yet) must reach the caller — one
// redirect per call, and only when the cure is known.
func TestFencedWithoutHintSurfaces(t *testing.T) {
	member := New()
	t.Cleanup(member.Shutdown)
	member.RegisterServantWithKey("coord", "IDL:test/Replica:1.0", ServantFunc(
		func(_ context.Context, op string, _ *cdr.Decoder) ([]byte, error) {
			return nil, Systemf(CodeFenced, "term=2 deposed mid-commit")
		}))
	ep, err := member.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := isolatedClient(t)
	_, err = client.Invoke(context.Background(), NewIOR("IDL:test/Replica:1.0", "coord", ep), "op", nil)
	if !IsSystem(err, CodeFenced) {
		t.Fatalf("invoke = %v, want FENCED", err)
	}
}

// TestFencedLeaderHintParsing pins the detail grammar the redirect
// depends on.
func TestFencedLeaderHintParsing(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want string
		ok   bool
	}{
		{Systemf(CodeFenced, "term=3 leader=b at=tcp:10.0.0.2:7001 deposed"), "tcp:10.0.0.2:7001", true},
		{Systemf(CodeFenced, "at=tcp:h:1"), "tcp:h:1", true},
		{Systemf(CodeFenced, "term=3 no hint here"), "", false},
		{Systemf(CodeTransient, "at=tcp:h:1"), "", false},
		{context.DeadlineExceeded, "", false},
	} {
		got, ok := fencedLeaderHint(tc.err)
		if got != tc.want || ok != tc.ok {
			t.Errorf("fencedLeaderHint(%v) = %q,%v want %q,%v", tc.err, got, ok, tc.want, tc.ok)
		}
	}
}
