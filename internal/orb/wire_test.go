package orb

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// legacyEncodeRequest builds a request payload exactly the way the PR-4
// era client did: encode into a standalone buffer, no reserved prefix,
// fresh allocations throughout. The framing (u32 length, then payload)
// is added by legacyWriteFrame.
func legacyEncodeRequest(r request) []byte {
	e := cdr.NewEncoder(128 + len(r.body))
	e.WriteRaw(protocolMagic[:])
	e.WriteOctet(protocolVersion)
	e.WriteOctet(msgRequest)
	e.WriteUint16(0)
	e.WriteUint64(r.requestID)
	e.WriteString(r.objectKey)
	e.WriteString(r.operation)
	encodeContexts(e, r.contexts)
	e.WriteBytes(r.body)
	return e.Bytes()
}

// legacyEncodeReply is the PR-4 era reply encoding.
func legacyEncodeReply(r reply) []byte {
	e := cdr.NewEncoder(64 + len(r.body))
	e.WriteRaw(protocolMagic[:])
	e.WriteOctet(protocolVersion)
	e.WriteOctet(msgReply)
	e.WriteUint16(0)
	e.WriteUint64(r.requestID)
	e.WriteOctet(r.status)
	encodeContexts(e, r.contexts)
	if r.status == replyOK {
		e.WriteBytes(r.body)
	} else {
		e.WriteString(r.errCode)
		e.WriteString(r.errDetail)
	}
	return e.Bytes()
}

// legacyWriteFrame writes the prefix and payload in two writes, as the
// old writeFrame-over-mutex path did.
func legacyWriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// legacyReadFrame reads one frame into a fresh allocation.
func legacyReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	payload := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// TestWireFormatUnchangedByPooledEncoders pins every byte of the framed
// encoding against the PR-4 era encode-then-copy path, across the
// alignment-sensitive shapes: empty and non-empty bodies, service
// contexts, error replies.
func TestWireFormatUnchangedByPooledEncoders(t *testing.T) {
	reqs := []request{
		{requestID: 1, objectKey: "k", operation: "ping"},
		{requestID: 0xDEADBEEFCAFE, objectKey: "key-long-enough-to-misalign", operation: "process_signal",
			contexts: []ServiceContext{{ID: ContextActivity, Data: []byte{9, 8, 7}}, {ID: ContextTransaction, Data: nil}},
			body:     []byte("hello wire")},
	}
	for i, r := range reqs {
		enc := encodeRequestFrame(r)
		wantPayload := legacyEncodeRequest(r)
		if !bytes.Equal(enc.FramePayload(), wantPayload) {
			t.Fatalf("request %d payload changed:\n got %x\nwant %x", i, enc.FramePayload(), wantPayload)
		}
		frame := enc.Frame()
		if binary.BigEndian.Uint32(frame[:4]) != uint32(len(wantPayload)) || !bytes.Equal(frame[4:], wantPayload) {
			t.Fatalf("request %d frame changed", i)
		}
		cdr.PutEncoder(enc)
	}
	reps := []reply{
		{requestID: 7, status: replyOK, body: []byte("result")},
		{requestID: 8, status: replyOK},
		{requestID: 9, status: replySystemErr, errCode: "TRANSIENT", errDetail: "busy"},
	}
	for i, r := range reps {
		enc := encodeReplyFrame(r)
		if want := legacyEncodeReply(r); !bytes.Equal(enc.FramePayload(), want) {
			t.Fatalf("reply %d payload changed:\n got %x\nwant %x", i, enc.FramePayload(), want)
		}
		cdr.PutEncoder(enc)
	}
}

// TestRemoteLegacyClientInterop drives the new server with a hand-rolled
// PR-4-era client — raw TCP, two-write frames, fresh buffers, no
// batching, several requests pipelined before any reply is read — and
// checks every reply. The wire format and framing discipline must be
// compatible in both directions.
func TestRemoteLegacyClientInterop(t *testing.T) {
	srv := New(WithHealthRegistry(NewHealthRegistry()))
	defer srv.Shutdown()
	ref := srv.RegisterServant("IDL:test/Echo:1.0", echoBytesServant{})
	ep, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", strings.TrimPrefix(ep, "tcp:"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const calls = 16
	// Pipeline all requests first (the old client allowed concurrent
	// sends on one conn), then read the replies in whatever order the
	// server produced them.
	want := make(map[uint64]string, calls)
	for i := 0; i < calls; i++ {
		body := cdr.NewEncoder(32)
		msg := fmt.Sprintf("payload-%d", i)
		body.WriteBytes([]byte(msg))
		id := uint64(100 + i)
		want[id] = msg
		payload := legacyEncodeRequest(request{
			requestID: id,
			objectKey: ref.Key,
			operation: "echo",
			body:      body.Bytes(),
		})
		if err := legacyWriteFrame(conn, payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < calls; i++ {
		frame, err := legacyReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := decodeReply(frame)
		if err != nil {
			t.Fatal(err)
		}
		if rep.status != replyOK {
			t.Fatalf("reply %d: status %d (%s: %s)", rep.requestID, rep.status, rep.errCode, rep.errDetail)
		}
		// The echo servant unwraps the octet sequence: the reply body is
		// the raw message content.
		got := string(rep.body)
		if msg, ok := want[rep.requestID]; !ok || got != msg {
			t.Fatalf("reply %d: body %q, want %q", rep.requestID, got, want[rep.requestID])
		}
		delete(want, rep.requestID)
	}
}

// retainingServant keeps every request body it ever saw — through
// cdr.Clone, as the buffer-ownership contract requires — so the test can
// verify the retained copies survive frame-buffer reuse.
type retainingServant struct {
	mu       sync.Mutex
	retained [][]byte
}

// Dispatch implements Servant.
func (s *retainingServant) Dispatch(_ context.Context, _ string, in *cdr.Decoder) ([]byte, error) {
	lent := in.ReadBytes()
	s.mu.Lock()
	s.retained = append(s.retained, cdr.Clone(lent))
	s.mu.Unlock()
	return lent, nil // echo back the lent slice: legal, encoded before frame release
}

// TestRetainingServantMustClone runs sequential varied-body calls over
// one connection — so the server's pooled request frames are reused
// underneath the servant — and verifies that bodies retained through
// cdr.Clone keep their original contents. (Retaining the lent slice
// directly would be overwritten by later frames; Clone is the contract.)
func TestRetainingServantMustClone(t *testing.T) {
	srv := New(WithHealthRegistry(NewHealthRegistry()))
	defer srv.Shutdown()
	servant := &retainingServant{}
	ref := srv.RegisterServant("IDL:test/Retain:1.0", servant)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = srv.IOR(ref.Key)
	cli := New(WithHealthRegistry(NewHealthRegistry()), WithPoolSize(1))
	defer cli.Shutdown()

	ctx := context.Background()
	const calls = 200
	contents := make([][]byte, calls)
	for i := 0; i < calls; i++ {
		contents[i] = []byte(fmt.Sprintf("body-%03d-%s", i, strings.Repeat("x", i%40)))
		e := cdr.NewEncoder(64)
		e.WriteBytes(contents[i])
		// The servant unwraps the octet sequence, so the echo comes back
		// as the raw content.
		out, err := cli.Invoke(ctx, ref, "keep", e.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, contents[i]) {
			t.Fatalf("call %d: echo mismatch: %q want %q", i, out, contents[i])
		}
	}
	servant.mu.Lock()
	defer servant.mu.Unlock()
	if len(servant.retained) != calls {
		t.Fatalf("servant retained %d bodies, want %d", len(servant.retained), calls)
	}
	for i, kept := range servant.retained {
		if !bytes.Equal(kept, contents[i]) {
			t.Fatalf("retained body %d corrupted by buffer reuse: got %q want %q", i, kept, contents[i])
		}
	}
}

// TestChaosConcurrentFanoutSharedConnBufferReuse is the buffer-reuse
// safety net the ISSUE demands: a 64-caller fan-out storm multiplexed
// over a single pooled connection (pool=1 forces every caller through one
// frameWriter and one readLoop's recycled buffers), under a
// ChaosTransport latency rule so writes interleave with slow faulted
// frames. Every echoed body must come back intact and every reply must
// match its own request — a recycled buffer crossing calls would corrupt
// bodies, and a recycled reply channel crossing calls would cross-deliver
// them. Run under -race in the chaos CI job.
func TestChaosConcurrentFanoutSharedConnBufferReuse(t *testing.T) {
	srv := New(WithHealthRegistry(NewHealthRegistry()))
	defer srv.Shutdown()
	ref := srv.RegisterServant("IDL:test/Echo:1.0", echoBytesServant{})
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = srv.IOR(ref.Key)

	ct := NewChaosTransport(nil)
	// Slow every 16th request a little: keeps the single conn's write
	// path congested so frames genuinely queue behind each other, without
	// stretching the test.
	ct.Inject(ChaosRule{Op: "echo", Stage: StageRequest, Latency: 200 * time.Microsecond, After: 0, Count: 0})
	cli := New(WithHealthRegistry(NewHealthRegistry()), WithPoolSize(1),
		WithTransport(ct), WithCallTimeout(30*time.Second))
	defer cli.Shutdown()

	const (
		callers = 64
		perCall = 20
	)
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perCall; i++ {
				msg := fmt.Sprintf("caller-%02d-call-%03d-%s", c, i, strings.Repeat("y", (c+i)%50))
				e := cdr.NewEncoder(80)
				e.WriteBytes([]byte(msg))
				out, err := cli.Invoke(ctx, ref, "echo", e.Bytes())
				if err != nil {
					errCh <- fmt.Errorf("caller %d call %d: %w", c, i, err)
					return
				}
				if got := string(out); got != msg {
					errCh <- fmt.Errorf("caller %d call %d: body %q, want %q (buffer reuse corruption)", c, i, got, msg)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// consumeNBatchWriter simulates a gather write that fully flushes the
// first n buffers (consuming them, as net.Buffers.WriteTo does) and then
// fails.
type consumeNBatchWriter struct {
	n   int
	err error
}

// WriteFrames implements frameBatchWriter.
func (c consumeNBatchWriter) WriteFrames(bufs *net.Buffers) error {
	if c.n < len(*bufs) {
		*bufs = (*bufs)[c.n:]
		return c.err
	}
	*bufs = nil
	return c.err
}

// TestWriterPartialBatchFailureSplitsSentFromUnsent pins the
// exactly-once-critical split on a failed gather write: frames the
// kernel fully consumed before the error must NOT be reported through
// onFail (their callers get COMM_FAILURE — unknown completion — from the
// connection drop), while the unwritten tail is reported (TRANSIENT: the
// peer cannot have parsed a truncated or unsent frame, so retry and
// failover stay safe).
func TestWriterPartialBatchFailureSplitsSentFromUnsent(t *testing.T) {
	mkFrame := func(id uint64) *cdr.Encoder {
		return encodeRequestFrame(request{requestID: id, objectKey: "k", operation: "op"})
	}
	for _, tc := range []struct {
		frames   int
		consumed int
		wantIDs  []uint64
	}{
		{frames: 3, consumed: 1, wantIDs: []uint64{101, 102}}, // 100 flushed: not failed-unsent
		{frames: 3, consumed: 0, wantIDs: []uint64{100, 101, 102}},
		{frames: 2, consumed: 2, wantIDs: nil}, // everything flushed before the error
	} {
		var got []uint64
		w := newFrameWriter(8, consumeNBatchWriter{n: tc.consumed, err: io.ErrClosedPipe},
			nil, func(unsent []*cdr.Encoder) {
				for _, e := range unsent {
					p := e.FramePayload()
					got = append(got, binary.BigEndian.Uint64(p[8:16]))
				}
			})
		for i := 0; i < tc.frames; i++ {
			if !w.tryEnqueue(mkFrame(uint64(100 + i))) {
				t.Fatal("enqueue failed")
			}
		}
		w.combine()
		if fmt.Sprint(got) != fmt.Sprint(tc.wantIDs) {
			t.Fatalf("consumed=%d: onFail saw %v, want %v", tc.consumed, got, tc.wantIDs)
		}
		if !w.failed.Load() {
			t.Fatal("writer did not enter failed mode")
		}
	}
}
