package orb

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// gaugeServant replies after a delay while tracking its own dispatch
// concurrency — the ground truth the admission bound must hold (the
// server's Inflight gauge cannot exceed its channel capacity by
// construction, so asserting on it alone would be vacuous).
type gaugeServant struct {
	delay time.Duration
	cur   atomic.Int32
	peak  atomic.Int32
}

func (s *gaugeServant) Dispatch(ctx context.Context, op string, in *cdr.Decoder) ([]byte, error) {
	cur := s.cur.Add(1)
	defer s.cur.Add(-1)
	for {
		p := s.peak.Load()
		if cur <= p || s.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
		}
	}
	return []byte("pong"), nil
}

// startAdmissionServer spins up a server ORB with admission control and a
// concurrency-gauging slow servant, returning the client's view of it.
func startAdmissionServer(t *testing.T, delay time.Duration, opts ...ORBOption) (*ORB, *gaugeServant, IOR) {
	t.Helper()
	srv := New(opts...)
	t.Cleanup(srv.Shutdown)
	servant := &gaugeServant{delay: delay}
	ref := srv.RegisterServant("IDL:test/Echo:1.0", servant)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = srv.IOR(ref.Key)
	return srv, servant, ref
}

// TestAdmissionShedsAtSaturation drives fan-in far above the dispatch
// bound at a slow servant: the bounded few dispatch, the queue briefly
// absorbs a couple more, and the excess is shed with TRANSIENT well before
// the servant latency — while in-flight dispatches never exceed the bound.
func TestAdmissionShedsAtSaturation(t *testing.T) {
	const (
		maxInflight = 2
		queueDepth  = 2
		fanIn       = 16
		servantWork = 300 * time.Millisecond
		shedAfter   = 40 * time.Millisecond
	)
	srv, servant, ref := startAdmissionServer(t, servantWork,
		WithMaxInflight(maxInflight),
		WithAdmissionQueue(queueDepth, shedAfter),
	)
	client := New(WithCallTimeout(5 * time.Second))
	defer client.Shutdown()

	type result struct {
		err     error
		elapsed time.Duration
	}
	results := make([]result, fanIn)
	var wg sync.WaitGroup
	for i := 0; i < fanIn; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			_, err := client.Invoke(context.Background(), ref, "ping", nil)
			results[i] = result{err: err, elapsed: time.Since(start)}
		}()
	}
	wg.Wait()

	succ, shed := 0, 0
	for i, r := range results {
		switch {
		case r.err == nil:
			succ++
		case IsSystem(r.err, CodeTransient):
			shed++
			if !strings.Contains(r.err.Error(), "overloaded") {
				t.Errorf("call %d: shed error %v, want admission shed detail", i, r.err)
			}
			if r.elapsed >= servantWork {
				t.Errorf("call %d: shed after %s, want fast rejection (servant takes %s)",
					i, r.elapsed, servantWork)
			}
		default:
			t.Errorf("call %d: unexpected error %v", i, r.err)
		}
	}
	if succ == 0 || shed == 0 || succ+shed != fanIn {
		t.Fatalf("successes = %d, sheds = %d, want both > 0 summing to %d", succ, shed, fanIn)
	}
	if succ > maxInflight+queueDepth {
		t.Fatalf("successes = %d, want <= inflight+queue = %d", succ, maxInflight+queueDepth)
	}
	// The servant's own concurrency gauge is the real proof the bound
	// held: no more than maxInflight dispatches ever ran at once.
	if peak := servant.peak.Load(); peak > maxInflight {
		t.Fatalf("servant saw %d concurrent dispatches, want <= %d", peak, maxInflight)
	}
	st, ok := srv.ServerStats()
	if !ok {
		t.Fatal("no server stats while listening")
	}
	if st.Shed != uint64(shed) || st.Dispatched != uint64(succ) {
		t.Fatalf("server stats = %+v, want shed=%d dispatched=%d", st, shed, succ)
	}
	if st.MaxInflight != maxInflight || st.QueueDepth != queueDepth || st.ShedAfter != shedAfter {
		t.Fatalf("configured bounds in stats = %+v", st)
	}
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("gauges after quiesce = %+v, want zero", st)
	}
}

// TestAdmissionQueueDrainsWhenSlotsFree proves queued requests are
// admitted — not shed — once running dispatches finish within the shed
// deadline.
func TestAdmissionQueueDrainsWhenSlotsFree(t *testing.T) {
	srv, _, ref := startAdmissionServer(t, 10*time.Millisecond,
		WithMaxInflight(1),
		WithAdmissionQueue(8, 2*time.Second),
	)
	client := New(WithCallTimeout(5 * time.Second))
	defer client.Shutdown()

	const calls = 6
	var wg sync.WaitGroup
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = client.Invoke(context.Background(), ref, "ping", nil)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v (queued requests should drain, not shed)", i, err)
		}
	}
	st, _ := srv.ServerStats()
	if st.Shed != 0 || st.Dispatched != calls {
		t.Fatalf("stats = %+v, want 0 shed / %d dispatched", st, calls)
	}
}

// TestAdmissionDisabledByDefault pins the historic unbounded behaviour:
// without WithMaxInflight a burst above any queue size dispatches fully.
func TestAdmissionDisabledByDefault(t *testing.T) {
	srv, _, ref := startAdmissionServer(t, 20*time.Millisecond)
	client := New()
	defer client.Shutdown()

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Invoke(context.Background(), ref, "ping", nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st, ok := srv.ServerStats()
	if !ok {
		t.Fatal("no server stats while listening")
	}
	if st.MaxInflight != 0 || st.Shed != 0 {
		t.Fatalf("stats = %+v, want unbounded (MaxInflight 0) and no shed", st)
	}
}

// TestServerStatsBeforeListen pins the not-listening case.
func TestServerStatsBeforeListen(t *testing.T) {
	o := New()
	defer o.Shutdown()
	if _, ok := o.ServerStats(); ok {
		t.Fatal("server stats reported before Listen")
	}
}

// TestAdmissionDefaultsFromMaxInflight checks WithMaxInflight alone
// derives the documented queue depth and shed deadline.
func TestAdmissionDefaultsFromMaxInflight(t *testing.T) {
	srv, _, _ := startAdmissionServer(t, 0, WithMaxInflight(3))
	st, _ := srv.ServerStats()
	if st.MaxInflight != 3 || st.QueueDepth != 6 || st.ShedAfter != defaultShedAfter {
		t.Fatalf("stats = %+v, want bounds 3/6/%s", st, defaultShedAfter)
	}
}
