package orb

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// NameServiceTypeID is the interface id of the name service.
const NameServiceTypeID = "IDL:GLOP/NameService:1.0"

// ErrNotBound reports a name with no binding.
var ErrNotBound = errors.New("orb: name not bound")

// NameServer is the name service servant: a flat name → IOR registry,
// standing in for CosNaming. Bind it into an ORB with Serve.
type NameServer struct {
	mu       sync.RWMutex
	bindings map[string]IOR
}

// NewNameServer returns an empty name server.
func NewNameServer() *NameServer {
	return &NameServer{bindings: make(map[string]IOR)}
}

// Serve activates the name server on o under the well-known key "naming".
func (n *NameServer) Serve(o *ORB) IOR {
	return o.RegisterServantWithKey("naming", NameServiceTypeID, n)
}

// Bind binds name to ref locally (server side).
func (n *NameServer) Bind(name string, ref IOR) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.bindings[name] = ref
}

// Resolve looks a name up locally (server side).
func (n *NameServer) Resolve(name string) (IOR, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ref, ok := n.bindings[name]
	return ref, ok
}

// Dispatch implements Servant.
func (n *NameServer) Dispatch(_ context.Context, op string, in *cdr.Decoder) ([]byte, error) {
	switch op {
	case "bind":
		name := in.ReadString()
		ref := DecodeIOR(in)
		if err := in.Err(); err != nil {
			return nil, Systemf(CodeMarshal, "bind: %v", err)
		}
		n.Bind(name, ref)
		return nil, nil
	case "resolve":
		name := in.ReadString()
		if err := in.Err(); err != nil {
			return nil, Systemf(CodeMarshal, "resolve: %v", err)
		}
		ref, ok := n.Resolve(name)
		if !ok {
			return nil, Systemf(CodeObjectNotExist, "name %q", name)
		}
		e := cdr.NewEncoder(64)
		ref.Encode(e)
		return e.Bytes(), nil
	case "unbind":
		name := in.ReadString()
		if err := in.Err(); err != nil {
			return nil, Systemf(CodeMarshal, "unbind: %v", err)
		}
		n.mu.Lock()
		delete(n.bindings, name)
		n.mu.Unlock()
		return nil, nil
	case "list":
		n.mu.RLock()
		names := make([]string, 0, len(n.bindings))
		for k := range n.bindings {
			names = append(names, k)
		}
		n.mu.RUnlock()
		sort.Strings(names)
		e := cdr.NewEncoder(64)
		e.WriteUint32(uint32(len(names)))
		for _, name := range names {
			e.WriteString(name)
		}
		return e.Bytes(), nil
	default:
		return nil, Systemf(CodeBadOperation, "NameService has no operation %q", op)
	}
}

// NameClient is the client-side proxy for a NameServer.
type NameClient struct {
	orb *ORB
	ref IOR
}

// NewNameClient returns a proxy invoking the name service at ref through o.
func NewNameClient(o *ORB, ref IOR) *NameClient {
	return &NameClient{orb: o, ref: ref}
}

// NameServiceAt builds the IOR of the well-known name service reachable
// at the given endpoints (profiles, in preference order).
func NameServiceAt(endpoints ...string) IOR {
	return NewIOR(NameServiceTypeID, "naming", endpoints...)
}

// Bind binds name to ref.
func (c *NameClient) Bind(ctx context.Context, name string, ref IOR) error {
	e := cdr.NewEncoder(64)
	e.WriteString(name)
	ref.Encode(e)
	_, err := c.orb.Invoke(ctx, c.ref, "bind", e.Bytes())
	if err != nil {
		return fmt.Errorf("naming bind %q: %w", name, err)
	}
	return nil
}

// Resolve returns the IOR bound to name.
func (c *NameClient) Resolve(ctx context.Context, name string) (IOR, error) {
	e := cdr.NewEncoder(32)
	e.WriteString(name)
	body, err := c.orb.Invoke(ctx, c.ref, "resolve", e.Bytes())
	if err != nil {
		if IsSystem(err, CodeObjectNotExist) {
			return IOR{}, fmt.Errorf("%w: %q", ErrNotBound, name)
		}
		return IOR{}, fmt.Errorf("naming resolve %q: %w", name, err)
	}
	d := cdr.NewDecoder(body)
	ref := DecodeIOR(d)
	if err := d.Err(); err != nil {
		return IOR{}, Systemf(CodeMarshal, "resolve reply: %v", err)
	}
	return ref, nil
}

// Unbind removes the binding for name.
func (c *NameClient) Unbind(ctx context.Context, name string) error {
	e := cdr.NewEncoder(32)
	e.WriteString(name)
	if _, err := c.orb.Invoke(ctx, c.ref, "unbind", e.Bytes()); err != nil {
		return fmt.Errorf("naming unbind %q: %w", name, err)
	}
	return nil
}

// List returns all bound names in sorted order.
func (c *NameClient) List(ctx context.Context) ([]string, error) {
	body, err := c.orb.Invoke(ctx, c.ref, "list", nil)
	if err != nil {
		return nil, fmt.Errorf("naming list: %w", err)
	}
	d := cdr.NewDecoder(body)
	n := d.ReadUint32()
	names := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		names = append(names, d.ReadString())
	}
	if err := d.Err(); err != nil {
		return nil, Systemf(CodeMarshal, "list reply: %v", err)
	}
	return names, nil
}
