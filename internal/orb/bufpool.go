package orb

import (
	"sync"
)

// Buffer ownership on the wire path (see also docs/ARCHITECTURE.md):
//
//   - Outgoing frames are built in pooled cdr.Encoders (cdr.GetEncoder,
//     BeginFrame) and handed to the connection's writer goroutine, which
//     releases them with cdr.PutEncoder after the gather write.
//   - Incoming frames land in pooled frameBufs. The reader that got the
//     buffer from the pool is responsible for putting it back exactly once,
//     after every borrowed view of it (decoded request body, reply body,
//     service-context data) is dead.
//   - Decoded []byte fields alias the frameBuf (cdr.Decoder.ReadBytes
//     lends); anything retained past the frame must go through cdr.Clone.

// maxPooledFrameBytes bounds the capacity a pooled frame buffer may
// retain, so a one-off huge frame does not pin its memory in the pool.
const maxPooledFrameBytes = 64 << 10

// frameBuf is a pooled, reusable frame read buffer.
type frameBuf struct {
	b []byte
}

// framePool recycles read buffers across frames.
var framePool = sync.Pool{New: func() any { return &frameBuf{b: make([]byte, 0, 512)} }}

// getFrameBuf returns a frame buffer from the pool.
func getFrameBuf() *frameBuf { return framePool.Get().(*frameBuf) }

// putFrameBuf returns fb to the pool. The caller must not touch fb — or
// any slice decoded out of it — afterwards; the next frame read will
// overwrite the bytes. Oversized buffers are dropped rather than pooled.
func putFrameBuf(fb *frameBuf) {
	if fb == nil || cap(fb.b) > maxPooledFrameBytes {
		return
	}
	framePool.Put(fb)
}

// replyChanPool recycles the per-request reply channels of the client
// transport. A channel may only be recycled by the party that can prove
// no send is outstanding: the receiver that already got the (single)
// reply, or an unregistering caller that removed the pending entry itself
// (whoever removes the entry owns the one send that will ever happen).
var replyChanPool = sync.Pool{New: func() any { return make(chan reply, 1) }}

// getReplyChan returns an empty buffered reply channel from the pool.
func getReplyChan() chan reply { return replyChanPool.Get().(chan reply) }

// putReplyChan recycles ch. See replyChanPool for the ownership rule; a
// channel a late sender might still write into must be abandoned to the
// garbage collector instead.
func putReplyChan(ch chan reply) { replyChanPool.Put(ch) }
