package orb

import (
	"context"
	"sync"
	"testing"
	"time"
)

// chaosClient builds a client ORB whose TCP transport runs through a fresh
// ChaosTransport.
func chaosClient(t *testing.T, opts ...ORBOption) (*ORB, *ChaosTransport) {
	t.Helper()
	ct := NewChaosTransport(nil)
	client := New(append([]ORBOption{WithTransport(ct)}, opts...)...)
	t.Cleanup(client.Shutdown)
	return client, ct
}

// TestChaosLatencyRule delays matching requests and checks the call pays
// the injected latency.
func TestChaosLatencyRule(t *testing.T) {
	_, ref := startServer(t, &countingServant{})
	client, ct := chaosClient(t)
	ct.Inject(ChaosRule{Op: "ping", Latency: 60 * time.Millisecond})

	start := time.Now()
	if _, err := client.Invoke(context.Background(), ref, "ping", nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("call took %s, want >= 60ms of injected latency", elapsed)
	}
}

// TestChaosDropRequest swallows the request: the servant never runs and
// the caller times out.
func TestChaosDropRequest(t *testing.T) {
	srv := &countingServant{}
	_, ref := startServer(t, srv)
	client, ct := chaosClient(t, WithCallTimeout(80*time.Millisecond))
	fault := ct.Inject(ChaosRule{Op: "ping", Drop: true})

	_, err := client.Invoke(context.Background(), ref, "ping", nil)
	if !IsSystem(err, CodeTimeout) {
		t.Fatalf("err = %v, want TIMEOUT", err)
	}
	if srv.calls.Load() != 0 {
		t.Fatalf("servant ran %d times despite dropped request", srv.calls.Load())
	}
	if fault.Hits() != 1 {
		t.Fatalf("fault hits = %d, want 1", fault.Hits())
	}
}

// TestChaosDropReply lets the operation run but swallows its reply — the
// "completion unknown" case.
func TestChaosDropReply(t *testing.T) {
	srv := &countingServant{}
	_, ref := startServer(t, srv)
	client, ct := chaosClient(t, WithCallTimeout(150*time.Millisecond))
	ct.Inject(ChaosRule{Op: "ping", Stage: StageReply, Drop: true, Count: 1})

	_, err := client.Invoke(context.Background(), ref, "ping", nil)
	if !IsSystem(err, CodeTimeout) {
		t.Fatalf("err = %v, want TIMEOUT", err)
	}
	if srv.calls.Load() != 1 {
		t.Fatalf("servant ran %d times, want 1 (request was delivered)", srv.calls.Load())
	}
	// The fault is exhausted: the retry completes.
	if _, err := client.Invoke(context.Background(), ref, "ping", nil); err != nil {
		t.Fatalf("retry after exhausted fault: %v", err)
	}
}

// TestChaosResetRuleThenReconnect resets the connection on a matching
// request; the pool re-dials and the retry succeeds.
func TestChaosResetRuleThenReconnect(t *testing.T) {
	_, ref := startServer(t, &countingServant{})
	client, ct := chaosClient(t)
	fault := ct.Inject(ChaosRule{Op: "ping", Reset: true, Count: 1})

	_, err := client.Invoke(context.Background(), ref, "ping", nil)
	if !IsSystem(err, CodeTransient) {
		t.Fatalf("reset call: err = %v, want TRANSIENT", err)
	}
	if _, err := client.Invoke(context.Background(), ref, "ping", nil); err != nil {
		t.Fatalf("call after reconnect: %v", err)
	}
	if fault.Hits() != 1 {
		t.Fatalf("fault hits = %d, want 1", fault.Hits())
	}
	if st, _ := client.EndpointStats(ref.Endpoint()); st.Conns == 0 {
		t.Fatalf("no live connection after reconnect: %+v", st)
	}
}

// TestChaosAfterTargetsNthFrame proves the occurrence window: After skips
// the first matches, Count bounds the firing.
func TestChaosAfterTargetsNthFrame(t *testing.T) {
	srv := &countingServant{}
	_, ref := startServer(t, srv)
	client, ct := chaosClient(t, WithCallTimeout(80*time.Millisecond))
	fault := ct.Inject(ChaosRule{Op: "ping", After: 1, Count: 1, Drop: true})
	ctx := context.Background()

	if _, err := client.Invoke(ctx, ref, "ping", nil); err != nil {
		t.Fatalf("call 1 (before window): %v", err)
	}
	if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTimeout) {
		t.Fatalf("call 2 (in window): err = %v, want TIMEOUT", err)
	}
	if _, err := client.Invoke(ctx, ref, "ping", nil); err != nil {
		t.Fatalf("call 3 (after window): %v", err)
	}
	if fault.Hits() != 1 {
		t.Fatalf("fault hits = %d, want 1", fault.Hits())
	}
	if srv.calls.Load() != 2 {
		t.Fatalf("servant ran %d times, want 2", srv.calls.Load())
	}
}

// TestChaosPerOpRuleLeavesOtherOpsAlone scopes a rule to one operation.
func TestChaosPerOpRuleLeavesOtherOpsAlone(t *testing.T) {
	_, ref := startServer(t, &countingServant{})
	client, ct := chaosClient(t, WithCallTimeout(80*time.Millisecond))
	ct.Inject(ChaosRule{Op: "doomed", Drop: true})
	ctx := context.Background()

	if _, err := client.Invoke(ctx, ref, "healthy", nil); err != nil {
		t.Fatalf("unmatched op: %v", err)
	}
	if _, err := client.Invoke(ctx, ref, "doomed", nil); !IsSystem(err, CodeTimeout) {
		t.Fatalf("matched op: err = %v, want TIMEOUT", err)
	}
}

// TestChaosOneWayPartitions exercises both partition directions and Heal.
func TestChaosOneWayPartitions(t *testing.T) {
	srv := &countingServant{}
	_, ref := startServer(t, srv)
	client, ct := chaosClient(t, WithCallTimeout(80*time.Millisecond))
	ctx := context.Background()

	// Send partition: the servant never sees the request.
	ct.PartitionSend(true)
	if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTimeout) {
		t.Fatalf("send partition: err = %v, want TIMEOUT", err)
	}
	if srv.calls.Load() != 0 {
		t.Fatalf("servant ran during send partition")
	}
	ct.Heal()

	// Recv partition: the servant runs but the caller never learns.
	ct.PartitionRecv(true)
	if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTimeout) {
		t.Fatalf("recv partition: err = %v, want TIMEOUT", err)
	}
	if srv.calls.Load() != 1 {
		t.Fatalf("servant ran %d times during recv partition, want 1", srv.calls.Load())
	}
	ct.Heal()

	if _, err := client.Invoke(ctx, ref, "ping", nil); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

// TestChaosDroppedRequestsDoNotLeakOps verifies the in-flight op map is
// pruned when a request is swallowed (no reply will ever clear it).
func TestChaosDroppedRequestsDoNotLeakOps(t *testing.T) {
	_, ref := startServer(t, &countingServant{})
	client, ct := chaosClient(t, WithCallTimeout(50*time.Millisecond))
	ctx := context.Background()

	ct.PartitionSend(true)
	for i := 0; i < 5; i++ {
		if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTimeout) {
			t.Fatalf("partitioned call %d: err = %v, want TIMEOUT", i, err)
		}
	}
	ct.mu.Lock()
	stale := 0
	for c := range ct.conns {
		c.mu.Lock()
		stale += len(c.ops)
		c.mu.Unlock()
	}
	ct.mu.Unlock()
	if stale != 0 {
		t.Fatalf("ops map holds %d stale entries after dropped requests", stale)
	}
}

// TestChaosRuleRemove withdraws a rule mid-flight.
func TestChaosRuleRemove(t *testing.T) {
	_, ref := startServer(t, &countingServant{})
	client, ct := chaosClient(t, WithCallTimeout(80*time.Millisecond))
	fault := ct.Inject(ChaosRule{Drop: true})
	ctx := context.Background()

	if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTimeout) {
		t.Fatalf("with rule: err = %v, want TIMEOUT", err)
	}
	fault.Remove()
	if _, err := client.Invoke(ctx, ref, "ping", nil); err != nil {
		t.Fatalf("after remove: %v", err)
	}
}

// TestChaosPoolStressConcurrentResets is the pool race test: concurrent
// invocations across endpoints while chaos keeps resetting connections.
// Every call must either succeed or fail with a system exception from the
// documented failure surface — never hang, panic or corrupt the pool —
// and the pool must recover once the chaos stops. Run under -race in CI.
func TestChaosPoolStressConcurrentResets(t *testing.T) {
	const (
		endpoints = 2
		workers   = 8
		calls     = 25
	)
	refs := make([]IOR, endpoints)
	for i := range refs {
		_, refs[i] = startServer(t, &countingServant{})
	}
	client, ct := chaosClient(t,
		WithPoolSize(4),
		WithCallTimeout(2*time.Second),
		WithReconnectBackoff(time.Millisecond, 5*time.Millisecond),
	)

	stop := make(chan struct{})
	var resetter sync.WaitGroup
	resetter.Add(1)
	go func() {
		defer resetter.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(3 * time.Millisecond):
				ct.ResetAll()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < calls; i++ {
				_, err := client.Invoke(ctx, refs[(w+i)%endpoints], "ping", nil)
				if err == nil {
					continue
				}
				switch {
				case IsSystem(err, CodeTransient),
					IsSystem(err, CodeCommFailure),
					IsSystem(err, CodeTimeout):
					// The documented failure surface under resets.
				default:
					t.Errorf("worker %d call %d: unexpected error %v", w, i, err)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	resetter.Wait()

	// With the chaos stopped the pool must converge back to healthy.
	deadline := time.Now().Add(5 * time.Second)
	for _, ref := range refs {
		for {
			if _, err := client.Invoke(context.Background(), ref, "ping", nil); err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("endpoint %s never recovered after chaos stopped", ref.Endpoint())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
