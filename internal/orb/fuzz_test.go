package orb

import (
	"strings"
	"testing"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// FuzzParseIOR throws strings at the stringified-reference parser — seeded
// with PR-3-era single-endpoint forms and current multi-profile forms —
// and requires every accepted reference to survive two round trips
// exactly: re-stringify→re-parse, and CDR encode→decode. Rejections are
// fine; panics, hangs, and lossy round trips are not.
func FuzzParseIOR(f *testing.F) {
	// Old-format (PR-3 era) stringified references.
	f.Add("IOR:tcp:10.1.2.3:7411|IDL:ActivityService/Action:1.0|act-42")
	f.Add("IOR:inproc:orb-7|IDL:GLOP/NameService:1.0|naming")
	// New-format multi-profile references.
	f.Add("IOR2:tcp:a:1,tcp:b:2|IDL:T:1.0|k")
	f.Add("IOR2:tcp:h1:9,tcp:h2:9,tcp:h3:9|IDL:CosTransactions/Resource:1.0|res/1")
	// Near-misses the parser must reject without panicking.
	f.Add("IOR:")
	f.Add("IOR2:|t|k")
	f.Add("IOR:a|b")
	f.Add("IOR2:tcp:a:1,|t|k")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, s string) {
		ref, err := ParseIOR(s)
		if err != nil {
			return
		}
		// String round trip: parse(stringify(ref)) == ref.
		again, err := ParseIOR(ref.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", ref.String(), s, err)
		}
		if !again.Equal(ref) {
			t.Fatalf("string round trip lossy:\n in: %+v\nout: %+v", ref, again)
		}
		// CDR round trip: decode(encode(ref)) == ref, including when the
		// reference sits mid-stream.
		e := cdr.NewEncoder(64)
		ref.Encode(e)
		got := DecodeIOR(cdr.NewDecoder(e.Bytes()))
		if !got.Equal(ref) {
			t.Fatalf("CDR round trip lossy:\n in: %+v\nout: %+v", ref, got)
		}
		// Single-profile references must keep stringifying to the PR-3
		// form, so old parsers keep accepting what we emit.
		if len(ref.Profiles) == 1 && !strings.HasPrefix(ref.String(), "IOR:") {
			t.Fatalf("single-profile reference stringified to %q, want legacy IOR: form", ref.String())
		}
	})
}

// FuzzDecodeIOR throws arbitrary bytes at the CDR reference decoder: it
// may reject them (sticky decoder error), but must never panic, and
// whatever it accepts must re-encode and decode to the same reference.
func FuzzDecodeIOR(f *testing.F) {
	seed := func(r IOR) {
		e := cdr.NewEncoder(64)
		r.Encode(e)
		f.Add(e.Bytes())
	}
	seed(NewIOR("IDL:T:1.0", "k", "tcp:a:1"))
	seed(NewIOR("IDL:T:1.0", "k", "tcp:a:1", "tcp:b:2"))
	f.Add([]byte{})
	f.Add([]byte{0x49, 0x4F, 0x52, 0x32})                                     // bare magic
	f.Add([]byte{0x49, 0x4F, 0x52, 0x32, 0, 0, 0, 99})                        // bad version
	f.Add([]byte{0x49, 0x4F, 0x52, 0x32, 0, 0, 0, 2, 0xff, 0xff, 0xff, 0xff}) // huge field
	f.Fuzz(func(t *testing.T, data []byte) {
		d := cdr.NewDecoder(data)
		ref := DecodeIOR(d)
		if d.Err() != nil {
			return
		}
		e := cdr.NewEncoder(64)
		ref.Encode(e)
		got := DecodeIOR(cdr.NewDecoder(e.Bytes()))
		if !got.Equal(ref) {
			t.Fatalf("accepted reference not canonical:\n in: %+v\nout: %+v", ref, got)
		}
	})
}
