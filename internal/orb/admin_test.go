package orb

import (
	"context"
	"testing"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// TestAdminScrapeServerAndEndpointStats drives the whole admin surface
// over the wire: a daemon with admission control serves the well-known
// orb-admin key; a remote scraper reads its ServerStats, makes the daemon
// dial a third node so it grows a client pool, then reads the daemon's
// EndpointStats and pooled-endpoint list for that node.
func TestAdminScrapeServerAndEndpointStats(t *testing.T) {
	ctx := context.Background()

	// The daemon under observation.
	daemon := New(WithMaxInflight(8), WithAdmissionQueue(4, 50*time.Millisecond))
	defer daemon.Shutdown()
	ServeAdmin(daemon)
	ep1, err := daemon.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := daemon.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// A third node the daemon talks to as a client.
	peer, peerEp := startReplica(t, "peer-obj")
	if _, err := daemon.Invoke(ctx, NewIOR("IDL:test/Replica:1.0", "peer-obj", peerEp), "work", nil); err != nil {
		t.Fatal(err)
	}
	if peer.calls.Load() != 1 {
		t.Fatal("daemon's outgoing call never reached the peer")
	}

	// The scraper is a separate process's-worth of ORB.
	scraper := isolatedClient(t)
	admin := NewAdminClient(scraper, AdminAt(ep1, ep2))

	st, ok, err := admin.ServerStats(ctx)
	if err != nil || !ok {
		t.Fatalf("ServerStats: ok=%v err=%v", ok, err)
	}
	if st.Endpoint != ep1 || len(st.Endpoints) != 2 || st.Endpoints[1] != ep2 {
		t.Fatalf("scraped endpoints = %q %v, want %q and %q", st.Endpoint, st.Endpoints, ep1, ep2)
	}
	if st.MaxInflight != 8 || st.QueueDepth != 4 || st.ShedAfter != 50*time.Millisecond {
		t.Fatalf("scraped admission config = %+v, want the daemon's settings", st)
	}
	// Admin scrapes bypass the admission gate, so they never count as
	// dispatched; a regular inbound call does.
	if st.Dispatched != 0 {
		t.Fatalf("scraped Dispatched = %d before any regular traffic; admin scrapes must bypass admission", st.Dispatched)
	}
	echoRef := daemon.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	echoRef, _ = daemon.IOR(echoRef.Key)
	if _, err := scraper.Invoke(ctx, NewIOR(echoRef.TypeID, echoRef.Key, ep1), "echo", encodeEchoArg("hi")); err != nil {
		t.Fatal(err)
	}
	if st, _, _ := admin.ServerStats(ctx); st.Dispatched != 1 {
		t.Fatalf("Dispatched = %d after one regular call, want 1", st.Dispatched)
	}

	eps, err := admin.Endpoints(ctx)
	if err != nil || len(eps) != 1 || eps[0] != peerEp {
		t.Fatalf("pooled endpoints = %v err=%v, want [%s]", eps, err, peerEp)
	}

	est, ok, err := admin.EndpointStats(ctx, peerEp)
	if err != nil || !ok {
		t.Fatalf("EndpointStats: ok=%v err=%v", ok, err)
	}
	if est.Endpoint != peerEp || est.Conns == 0 || est.Down {
		t.Fatalf("scraped endpoint stats = %+v, want a live healthy pool", est)
	}

	// Miss case: no pool for an endpoint the daemon never dialed.
	if _, ok, err := admin.EndpointStats(ctx, "tcp:127.0.0.1:1"); err != nil || ok {
		t.Fatalf("EndpointStats miss: ok=%v err=%v, want reported miss", ok, err)
	}
}

// TestAdminRejectsUnknownOperation pins the failure surface.
func TestAdminRejectsUnknownOperation(t *testing.T) {
	daemon := New()
	defer daemon.Shutdown()
	ref := ServeAdmin(daemon)
	if _, err := daemon.Invoke(context.Background(), ref, "drop_tables", nil); !IsSystem(err, CodeBadOperation) {
		t.Fatalf("err = %v, want BAD_OPERATION", err)
	}
}

// TestAdminScrapeBypassesAdmission pins the observability-under-overload
// contract: with the daemon's one dispatch slot saturated by a stuck
// servant, a ServerStats scrape must still answer instead of being shed
// by the very gate it reports on.
func TestAdminScrapeBypassesAdmission(t *testing.T) {
	ctx := context.Background()
	daemon := New(WithMaxInflight(1), WithAdmissionQueue(1, 20*time.Millisecond))
	defer daemon.Shutdown()
	ServeAdmin(daemon)
	release := make(chan struct{})
	defer close(release)
	slowRef := daemon.RegisterServant("IDL:test/Stuck:1.0", ServantFunc(
		func(ctx context.Context, _ string, _ *cdr.Decoder) ([]byte, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return nil, nil
		}))
	ep, err := daemon.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	slowRef, _ = daemon.IOR(slowRef.Key)

	filler := isolatedClient(t)
	go filler.Invoke(ctx, slowRef, "stall", nil) // occupies the only slot
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st, ok := daemon.ServerStats(); ok && st.Inflight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("filler call never occupied the dispatch slot")
		}
		time.Sleep(time.Millisecond)
	}

	scraper := isolatedClient(t)
	admin := NewAdminClient(scraper, AdminAt(ep))
	st, ok, err := admin.ServerStats(ctx)
	if err != nil || !ok {
		t.Fatalf("scrape under saturation: ok=%v err=%v, want an answer past the gate", ok, err)
	}
	if st.Inflight != 1 || st.MaxInflight != 1 {
		t.Fatalf("scraped stats = %+v, want the saturated gauge", st)
	}
}

// TestAffinityScopedByPrimaryProfile pins that two objects sharing a
// well-known key on different server groups keep independent affinities.
func TestAffinityScopedByPrimaryProfile(t *testing.T) {
	refA := NewIOR(AdminTypeID, AdminKey, "tcp:a1:1", "tcp:a2:1")
	refB := NewIOR(AdminTypeID, AdminKey, "tcp:b1:1", "tcp:b2:1")
	if ka, kb := affinityKey(refA), affinityKey(refB); ka == kb {
		t.Fatalf("affinity keys collide: %q", ka)
	}
	o := New(WithHealthRegistry(NewHealthRegistry()))
	defer o.Shutdown()
	o.recordAffinity("tcp:a2:1", affinityKey(refA))
	o.recordAffinity("tcp:b1:1", affinityKey(refB))
	if got := o.affinityFor(affinityKey(refA)); got != "tcp:a2:1" {
		t.Fatalf("group A affinity = %q after group B recorded, want tcp:a2:1", got)
	}
}

// encodeEchoArg builds the echo servant's single-string request body.
func encodeEchoArg(s string) []byte {
	e := cdr.NewEncoder(32)
	e.WriteString(s)
	return e.Bytes()
}
