package orb

import (
	"context"
	"net"
)

// Transport dials the framed byte streams the ORB's client side runs on.
// The ORB multiplexes concurrent requests over a bounded pool of transport
// connections per endpoint (see client.go); a Transport only supplies the
// connections themselves, so the pooling, reconnect and health machinery is
// shared by every implementation.
//
// TCPTransport is the production implementation. ChaosTransport (chaos.go)
// wraps any Transport to inject faults — latency, drops, resets, one-way
// partitions — for resilience testing; the failure surface the wrapped
// transport produces is exactly what a flaky network would produce, so the
// client stack above it cannot tell the difference.
type Transport interface {
	// Dial opens a framed connection to addr ("host:port"). It honours
	// ctx's deadline and cancellation.
	Dial(ctx context.Context, addr string) (Conn, error)
}

// Conn is one framed, full-duplex transport connection. ReadFrame may be
// called concurrently with WriteFrame (the reply reader runs while callers
// send), but the ORB serializes WriteFrame calls on one connection itself.
// Close must unblock both directions.
type Conn interface {
	// WriteFrame sends one frame (the payload, excluding the length
	// prefix).
	WriteFrame(payload []byte) error
	// ReadFrame receives the next frame.
	ReadFrame() ([]byte, error)
	// Close tears the connection down.
	Close() error
}

// TCPTransport is the real client transport: length-prefixed GLOP frames
// over plain TCP. The zero value is ready to use.
type TCPTransport struct{}

// Dial implements Transport.
func (TCPTransport) Dial(ctx context.Context, addr string) (Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return tcpConn{c: nc}, nil
}

// tcpConn frames a net.Conn.
type tcpConn struct {
	c net.Conn
}

func (c tcpConn) WriteFrame(payload []byte) error { return writeFrame(c.c, payload) }
func (c tcpConn) ReadFrame() ([]byte, error)      { return readFrame(c.c) }
func (c tcpConn) Close() error                    { return c.c.Close() }
