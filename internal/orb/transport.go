package orb

import (
	"bufio"
	"context"
	"net"
)

// Transport dials the framed byte streams the ORB's client side runs on.
// The ORB multiplexes concurrent requests over a bounded pool of transport
// connections per endpoint (see client.go); a Transport only supplies the
// connections themselves, so the pooling, reconnect and health machinery is
// shared by every implementation.
//
// TCPTransport is the production implementation. ChaosTransport (chaos.go)
// wraps any Transport to inject faults — latency, drops, resets, one-way
// partitions — for resilience testing; the failure surface the wrapped
// transport produces is exactly what a flaky network would produce, so the
// client stack above it cannot tell the difference.
type Transport interface {
	// Dial opens a framed connection to addr ("host:port"). It honours
	// ctx's deadline and cancellation.
	Dial(ctx context.Context, addr string) (Conn, error)
}

// Conn is one framed, full-duplex transport connection. ReadFrame may be
// called concurrently with WriteFrame (the reply reader runs while
// writes are in flight), but the ORB serializes all writes on one
// connection through its combining frame writer itself (writer.go).
// Close must unblock both directions.
//
// A Conn may additionally implement two optional fast-path extensions the
// wire path probes for: frameBatchWriter (one gather write for a batch of
// complete frames — the write-coalescing path) and frameReuseReader
// (reads into a caller-recycled buffer — the pooled-read path). Plain
// Conns still work; they just pay one syscall pair and one allocation per
// frame.
type Conn interface {
	// WriteFrame sends one frame (the payload, excluding the length
	// prefix).
	WriteFrame(payload []byte) error
	// ReadFrame receives the next frame. The returned slice is a fresh
	// allocation owned by the caller.
	ReadFrame() ([]byte, error)
	// Close tears the connection down.
	Close() error
}

// frameBatchWriter is the optional Conn extension behind write
// coalescing: WriteFrames sends a batch of complete frames (u32 length
// prefix included in each buffer) in a single gather write, so concurrent
// callers multiplexed onto one connection share one syscall. The
// implementation may consume (re-slice) bufs. ChaosTransport connections
// deliberately do not implement it — faults are per frame, so chaos runs
// take the WriteFrame path.
type frameBatchWriter interface {
	// WriteFrames consumes *bufs (net.Buffers.WriteTo re-slices it); the
	// caller passes a scratch header copy so its backing array survives.
	WriteFrames(bufs *net.Buffers) error
}

// frameReuseReader is the optional Conn extension behind pooled frame
// reads: ReadFrameReuse reads the next frame into buf, growing it only
// when the frame exceeds its capacity, and returns the filled slice. The
// caller owns the buffer's lifecycle (the ORB recycles it once the frame
// is fully consumed).
type frameReuseReader interface {
	ReadFrameReuse(buf []byte) ([]byte, error)
}

// TCPTransport is the real client transport: length-prefixed GLOP frames
// over plain TCP, with buffered reads (adjacent frames arriving together
// cost one syscall) and vectored batch writes. The zero value is ready to
// use.
type TCPTransport struct{}

// tcpReadBuffer is the bufio read buffer per TCP connection: large enough
// that a burst of small coalesced frames — or one 4KB-body frame plus
// headers — drains in one read(2).
const tcpReadBuffer = 16 << 10

// Dial implements Transport.
func (TCPTransport) Dial(ctx context.Context, addr string) (Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpConn{c: nc, br: bufio.NewReaderSize(nc, tcpReadBuffer)}, nil
}

// tcpConn frames a net.Conn.
type tcpConn struct {
	c  net.Conn
	br *bufio.Reader
}

func (c *tcpConn) WriteFrame(payload []byte) error { return writeFrame(c.c, payload) }
func (c *tcpConn) ReadFrame() ([]byte, error)      { return readFrame(c.br) }
func (c *tcpConn) Close() error                    { return c.c.Close() }

// WriteFrames implements frameBatchWriter with one writev(2) for the
// whole batch.
func (c *tcpConn) WriteFrames(bufs *net.Buffers) error {
	_, err := bufs.WriteTo(c.c)
	return err
}

// ReadFrameReuse implements frameReuseReader.
func (c *tcpConn) ReadFrameReuse(buf []byte) ([]byte, error) {
	return readFrameInto(c.br, buf)
}
