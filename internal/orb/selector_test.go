package orb

import (
	"fmt"
	"testing"
	"time"
)

// seedRTT plants a pool for endpoint with the given RTT EWMA, as if rtt
// had been observed on real calls.
func seedRTT(t *testing.T, o *ORB, endpoint string, rtt time.Duration) {
	t.Helper()
	p, err := o.pool(endpointHost(endpoint), endpoint)
	if err != nil {
		t.Fatalf("pool(%s): %v", endpoint, err)
	}
	p.rttNanos.Store(int64(rtt))
}

// TestSelectEndpointsRanksByRTT pins the latency-aware ordering: healthy
// profiles with a measured round trip come nearest-first, never-measured
// ones follow in reference order, and the sticky-affinity endpoint still
// overrides everything while healthy.
func TestSelectEndpointsRanksByRTT(t *testing.T) {
	o := New(WithHealthRegistry(NewHealthRegistry()))
	defer o.Shutdown()

	far := "tcp:10.0.0.1:1"
	near := "tcp:10.0.0.2:2"
	mid := "tcp:10.0.0.3:3"
	freshA := "tcp:10.0.0.4:4"
	freshB := "tcp:10.0.0.5:5"
	seedRTT(t, o, far, 80*time.Millisecond)
	seedRTT(t, o, near, 2*time.Millisecond)
	seedRTT(t, o, mid, 10*time.Millisecond)

	ref := NewIOR("IDL:T:1.0", "obj", far, near, mid, freshA, freshB)
	got, _ := o.selectEndpoints(ref, affinityKey(ref))
	want := []string{near, mid, far, freshA, freshB}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("selector order %v, want %v", got, want)
	}

	// Sticky affinity outranks the RTT order while the endpoint is healthy.
	o.recordAffinity(far, affinityKey(ref))
	got, aff := o.selectEndpoints(ref, affinityKey(ref))
	if aff != far {
		t.Fatalf("consulted affinity %q, want %q", aff, far)
	}
	want = []string{far, near, mid, freshA, freshB}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("selector order with affinity %v, want %v", got, want)
	}
}

// TestSelectEndpointsRTTUnhealthyLast pins that the RTT ranking never
// promotes an endpoint past the health partition: a near-but-down
// endpoint still sorts behind every healthy one.
func TestSelectEndpointsRTTUnhealthyLast(t *testing.T) {
	h := NewHealthRegistry()
	o := New(WithHealthRegistry(h))
	defer o.Shutdown()

	down := "tcp:10.1.0.1:1"
	up := "tcp:10.1.0.2:2"
	seedRTT(t, o, down, 1*time.Millisecond)
	seedRTT(t, o, up, 50*time.Millisecond)
	// Mark the near endpoint down in the shared registry.
	h.entry(down).dialFailed(time.Now(), func(int) time.Duration { return time.Minute })

	ref := NewIOR("IDL:T:1.0", "obj", down, up)
	got, _ := o.selectEndpoints(ref, affinityKey(ref))
	want := []string{up, down}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("selector order %v, want %v", got, want)
	}
}

// TestAffinityLRUEviction pins the recency-based affinity bound: filling
// the map past maxAffinityEntries evicts the least-recently-used binding,
// not the whole map, and consulting a binding freshens it.
func TestAffinityLRUEviction(t *testing.T) {
	o := New(WithHealthRegistry(NewHealthRegistry()))
	defer o.Shutdown()

	ep := "tcp:10.2.0.1:1"
	for i := 0; i < maxAffinityEntries; i++ {
		o.recordAffinity(ep, fmt.Sprintf("key-%d", i))
	}
	// Freshen key-0 (the oldest) by consulting it, then insert one more.
	if got := o.affinityFor("key-0"); got != ep {
		t.Fatalf("affinityFor(key-0) = %q before eviction", got)
	}
	o.recordAffinity(ep, "overflow-key")

	// key-1 is now the LRU victim; key-0 and the rest must survive.
	if got := o.affinityFor("key-1"); got != "" {
		t.Fatal("LRU victim key-1 survived the bound")
	}
	if got := o.affinityFor("key-0"); got != ep {
		t.Fatal("recently-consulted key-0 was evicted")
	}
	if got := o.affinityFor("overflow-key"); got != ep {
		t.Fatal("newly-recorded binding missing")
	}
	if got := o.affinityFor(fmt.Sprintf("key-%d", maxAffinityEntries-1)); got != ep {
		t.Fatal("recent binding evicted by LRU overflow")
	}
	if n := len(o.affinity); n != maxAffinityEntries {
		t.Fatalf("affinity map holds %d entries, want %d", n, maxAffinityEntries)
	}
	if n := o.affOrder.Len(); n != maxAffinityEntries {
		t.Fatalf("affinity list holds %d entries, want %d", n, maxAffinityEntries)
	}

	// Re-recording an existing key updates in place (no growth, new endpoint).
	o.recordAffinity("tcp:10.2.0.2:2", "overflow-key")
	if got := o.affinityFor("overflow-key"); got != "tcp:10.2.0.2:2" {
		t.Fatalf("re-recorded binding = %q", got)
	}
	if n := len(o.affinity); n != maxAffinityEntries {
		t.Fatalf("re-record grew the map to %d entries", n)
	}
}
