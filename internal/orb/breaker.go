package orb

import (
	"errors"
	"sync"
	"time"
)

// defaultBreakerOpenFor is the open-circuit window used when
// WithCircuitBreaker is given an openFor of 0.
const defaultBreakerOpenFor = time.Second

// defaultRetryRate is the refill rate used when WithRetryBudget is given
// a rate <= 0. A zero rate would be a trap: once the bucket empties during
// an outage, no call could ever be admitted again — and clearing the debt
// requires an admitted call to succeed — so the endpoint would stay
// bricked after the peer recovered.
const defaultRetryRate = 1.0

// BreakerState is the circuit breaker position for one endpoint, exposed
// through EndpointStats.
type BreakerState int

// Breaker states.
const (
	// BreakerInactive means no breaker is configured for the ORB.
	BreakerInactive BreakerState = iota
	// BreakerClosed is the healthy state: calls flow normally while the
	// breaker counts consecutive failures.
	BreakerClosed
	// BreakerOpen means the failure threshold was crossed: every call fails
	// fast with TRANSIENT until the open window elapses.
	BreakerOpen
	// BreakerHalfOpen means the open window has elapsed: exactly one probe
	// call is admitted; its outcome closes or re-opens the circuit.
	BreakerHalfOpen
)

// String returns the state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerInactive:
		return "inactive"
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "BreakerState(?)"
	}
}

// breaker is the per-endpoint three-state circuit breaker configured by
// WithCircuitBreaker. It sits above the dial health gate: the gate
// throttles re-dialing a peer that refuses connections, while the breaker
// stops whole calls — including ones that would ride an existing
// connection — once the endpoint has failed threshold times in a row, and
// rations recovery to one probe per half-open window.
type breaker struct {
	endpoint  string
	threshold int
	openFor   time.Duration

	mu       sync.Mutex
	state    BreakerState // Closed, Open or HalfOpen
	failures int          // consecutive failures while closed
	openedAt time.Time
	probing  bool   // a half-open probe is in flight
	probes   uint64 // cumulative probes admitted
	opens    uint64 // cumulative transitions to open
}

// newBreaker builds a breaker; threshold <= 0 disables it (nil breaker).
func newBreaker(endpoint string, threshold int, openFor time.Duration) *breaker {
	if threshold <= 0 {
		return nil
	}
	if openFor <= 0 {
		openFor = defaultBreakerOpenFor
	}
	return &breaker{endpoint: endpoint, threshold: threshold, openFor: openFor, state: BreakerClosed}
}

// stateLocked derives the effective state at now: an open circuit whose
// window has elapsed is half-open.
func (b *breaker) stateLocked(now time.Time) BreakerState {
	if b.state == BreakerOpen && !now.Before(b.openedAt.Add(b.openFor)) {
		return BreakerHalfOpen
	}
	return b.state
}

// admit decides whether one call may proceed at now. In the half-open
// state it admits a single probe (reported through the first return);
// every other caller fails fast.
func (b *breaker) admit(now time.Time) (probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked(now) {
	case BreakerOpen:
		return false, Systemf(CodeTransient,
			"circuit breaker for %s open (%d consecutive failures; next probe in %s)",
			b.endpoint, b.threshold, time.Until(b.openedAt.Add(b.openFor)).Round(time.Millisecond))
	case BreakerHalfOpen:
		if b.probing {
			return false, Systemf(CodeTransient,
				"circuit breaker for %s half-open: probe already in flight", b.endpoint)
		}
		b.state = BreakerHalfOpen
		b.probing = true
		b.probes++
		return true, nil
	}
	return false, nil
}

// abortProbe releases a probe slot whose call was rejected by a later gate
// before it could launch, so the next admitted caller can probe instead.
func (b *breaker) abortProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probing {
		b.probing = false
		b.probes--
	}
}

// releaseProbe clears the probe-in-flight flag for a probe whose outcome
// will never be observed (its caller died mid-call): the circuit stays
// half-open and the next admitted caller probes again. Unlike abortProbe
// the probe did launch, so it stays counted.
func (b *breaker) releaseProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// onSuccess records a successful round trip: the circuit closes and the
// failure count resets.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// onFailure records a failed call: crossing the threshold — or failing the
// half-open probe — opens the circuit for a fresh window.
func (b *breaker) onFailure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked(now) {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.openLocked(now)
		}
	case BreakerHalfOpen:
		// The probe (or a straggler from before the circuit opened) failed:
		// back to open for another full window.
		b.probing = false
		b.openLocked(now)
	}
}

// window reports whether the circuit is open at now and, if so, when the
// open window ends — the verdict the pool publishes to the shared
// HealthRegistry for endpoint selection.
func (b *breaker) window(now time.Time) (until time.Time, open bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stateLocked(now) == BreakerOpen {
		return b.openedAt.Add(b.openFor), true
	}
	return time.Time{}, false
}

func (b *breaker) openLocked(now time.Time) {
	b.state = BreakerOpen
	b.openedAt = now
	b.opens++
}

// retryBudget is the per-endpoint token bucket configured by
// WithRetryBudget. While the endpoint's last call failed (the pool is "in
// debt"), every call withdraws a token; an empty bucket fails the call
// fast with TRANSIENT. The bucket holds burst tokens and refills at rate
// tokens per second; a successful call clears the debt and calls become
// free again. It bounds the aggregate attempt rate that at-least-once
// retry loops — which the ORB cannot tell apart from fresh calls — can
// aim at a failing endpoint.
type retryBudget struct {
	endpoint string
	rate     float64 // tokens per second
	burst    float64

	mu        sync.Mutex
	tokens    float64
	last      time.Time
	inDebt    bool
	exhausted uint64 // cumulative fail-fasts on an empty bucket
}

// newRetryBudget builds a budget; burst <= 0 disables it (nil budget), and
// a rate <= 0 is raised to defaultRetryRate so recovery is always possible.
func newRetryBudget(endpoint string, rate float64, burst int) *retryBudget {
	if burst <= 0 {
		return nil
	}
	if rate <= 0 {
		rate = defaultRetryRate
	}
	return &retryBudget{endpoint: endpoint, rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// admit charges one call at now: free while the endpoint is healthy, one
// token while it is in debt.
func (b *retryBudget) admit(now time.Time) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.inDebt {
		return nil
	}
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return nil
	}
	b.exhausted++
	return Systemf(CodeTransient,
		"retry budget for %s exhausted (refills at %.3g tokens/s)", b.endpoint, b.rate)
}

// observe records the call outcome: failure enters debt, success clears it
// and refills the bucket.
func (b *retryBudget) observe(failed bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if failed {
		if !b.inDebt {
			b.inDebt = true
			b.last = now
		}
		return
	}
	b.inDebt = false
	b.tokens = b.burst
}

// transportFailure classifies a call outcome for the breaker and retry
// budget: true for errors that say the endpoint is unreachable or
// overloaded (dial and send failures, lost connections, timeouts, and
// TRANSIENT — which covers server-side admission shed and the local
// health gate's fail-fast verdicts, both deliberate: "this endpoint is
// not serving you right now" is exactly the signal the gates ration
// traffic on). Decoded user and application-level system errors prove a
// healthy round trip and count as success.
func transportFailure(err error) bool {
	if err == nil {
		return false
	}
	var se *SystemError
	if !errors.As(err, &se) {
		return false
	}
	switch se.Code {
	case CodeCommFailure, CodeTimeout, CodeTransient:
		return true
	}
	return false
}
