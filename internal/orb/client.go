package orb

import (
	"context"
	"net"
	"strings"
	"sync"
	"time"
)

const dialTimeout = 5 * time.Second

// clientConn multiplexes concurrent requests over one TCP connection.
type clientConn struct {
	endpoint string
	conn     net.Conn

	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan reply
	closed  bool
}

// invokeTCP performs a remote invocation over the pooled connection for
// ref's endpoint.
func (o *ORB) invokeTCP(ctx context.Context, ref IOR, op string, contexts []ServiceContext, body []byte) ([]byte, error) {
	addr, ok := cutPrefix(ref.Endpoint, "tcp:")
	if !ok {
		return nil, Systemf(CodeNoImplement, "unreachable endpoint %q", ref.Endpoint)
	}
	if _, hasDeadline := ctx.Deadline(); !hasDeadline && o.callTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.callTimeout)
		defer cancel()
	}

	c, err := o.getConn(addr, ref.Endpoint)
	if err != nil {
		return nil, err
	}
	reqID := o.reqID.Add(1)
	ch := make(chan reply, 1)
	if err := c.register(reqID, ch); err != nil {
		return nil, err
	}
	defer c.unregister(reqID)

	frame := encodeRequest(request{
		requestID: reqID,
		objectKey: ref.Key,
		operation: op,
		contexts:  contexts,
		body:      body,
	})
	if err := c.send(frame); err != nil {
		o.dropConn(c)
		// The request never left (or partially left) this host: TRANSIENT.
		return nil, Systemf(CodeTransient, "send to %s: %v", ref.Endpoint, err)
	}

	select {
	case rep := <-ch:
		return replyToResult(rep)
	case <-ctx.Done():
		return nil, Systemf(CodeTimeout, "invoking %s on %s: %v", op, ref.Endpoint, ctx.Err())
	}
}

// getConn returns the pooled connection for endpoint, dialing if needed.
func (o *ORB) getConn(addr, endpoint string) (*clientConn, error) {
	o.connMu.Lock()
	if c, ok := o.conns[endpoint]; ok {
		o.connMu.Unlock()
		return c, nil
	}
	o.connMu.Unlock()

	nc, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, Systemf(CodeTransient, "dial %s: %v", addr, err)
	}
	c := &clientConn{
		endpoint: endpoint,
		conn:     nc,
		pending:  make(map[uint64]chan reply),
	}

	o.connMu.Lock()
	if existing, ok := o.conns[endpoint]; ok {
		// Lost the dial race; use the winner.
		o.connMu.Unlock()
		nc.Close()
		return existing, nil
	}
	o.conns[endpoint] = c
	o.connMu.Unlock()

	go c.readLoop(o)
	return c, nil
}

// dropConn removes c from the pool and fails its pending calls.
func (o *ORB) dropConn(c *clientConn) {
	o.connMu.Lock()
	if o.conns[c.endpoint] == c {
		delete(o.conns, c.endpoint)
	}
	o.connMu.Unlock()
	c.close(Systemf(CodeCommFailure, "connection to %s lost", c.endpoint))
}

func (c *clientConn) register(id uint64, ch chan reply) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return Systemf(CodeTransient, "connection to %s closed", c.endpoint)
	}
	c.pending[id] = ch
	return nil
}

func (c *clientConn) unregister(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.pending, id)
}

func (c *clientConn) send(frame []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return writeFrame(c.conn, frame)
}

// readLoop delivers replies to waiting callers until the connection dies.
func (c *clientConn) readLoop(o *ORB) {
	for {
		frame, err := readFrame(c.conn)
		if err != nil {
			o.dropConn(c)
			return
		}
		rep, err := decodeReply(frame)
		if err != nil {
			o.dropConn(c)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[rep.requestID]
		if ok {
			delete(c.pending, rep.requestID)
		}
		c.mu.Unlock()
		if ok {
			ch <- rep
		}
	}
}

// close fails every pending call with a COMM_FAILURE-style reply. A call
// in flight when the connection dies has unknown completion.
func (c *clientConn) close(cause *SystemError) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	pending := c.pending
	c.pending = make(map[uint64]chan reply)
	c.mu.Unlock()

	c.conn.Close()
	for id, ch := range pending {
		ch <- reply{
			requestID: id,
			status:    replySystemErr,
			errCode:   string(cause.Code),
			errDetail: cause.Detail,
		}
	}
}

// endpointHost extracts the host:port from a "tcp:" endpoint, for tests
// and tooling.
func endpointHost(endpoint string) string {
	return strings.TrimPrefix(endpoint, "tcp:")
}
