package orb

import (
	"container/list"
	"context"
	"encoding/binary"
	"errors"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// Client transport defaults. All are per-ORB configurable (WithPoolSize,
// WithDialTimeout, WithReconnectBackoff).
const (
	defaultDialTimeout = 5 * time.Second
	defaultPoolSize    = 4
	defaultBackoffMin  = 50 * time.Millisecond
	defaultBackoffMax  = 2 * time.Second
)

// endpointPool is the client side of one endpoint: a bounded pool of
// multiplexed connections with least-pending pick, automatic reconnect
// under jittered exponential backoff, and a health gate so a dead peer
// fails fast instead of being re-dialed on every call. The gate's state
// (consecutive failures, down-until deadline) lives in the ORB's
// HealthRegistry, so every client ORB sharing the registry shares the
// verdict: one pool discovering a dead endpoint fails the whole process
// fast against it.
//
// Pool growth is caller-driven: an invoke that finds the pool below its
// bound dials a new connection inline (concurrent callers fill the pool in
// parallel, one dial each). A dial failure marks the endpoint down until a
// backoff deadline; while it is down and no connection is live, calls fail
// fast with TRANSIENT. The first call after the deadline probes again —
// exactly one caller dials, the rest wait for its verdict.
type endpointPool struct {
	orb      *ORB
	endpoint string // "tcp:host:port"
	addr     string // "host:port"

	// health is the shared dial-gate record for this endpoint in the ORB's
	// HealthRegistry.
	health *endpointHealth

	// Overload protection above the health gate (breaker.go); either may
	// be nil when the corresponding option is unset.
	brk    *breaker
	budget *retryBudget

	// rttNanos is an EWMA of successful call round-trip times (¼ new, ¾
	// old), in nanoseconds; zero until the first success. It feeds
	// EndpointStats.RTT and ORB.EndpointRTT — the latency signal
	// latency-aware relay-tree planning consumes.
	rttNanos atomic.Int64

	mu      sync.Mutex
	cond    *sync.Cond // broadcast on any conns/dialing/closed change
	conns   []*clientConn
	dialing int
	closed  bool
}

func newEndpointPool(o *ORB, endpoint, addr string) *endpointPool {
	p := &endpointPool{
		orb:      o,
		endpoint: endpoint,
		addr:     addr,
		health:   o.health.acquire(endpoint), // released in closePool
		brk:      newBreaker(endpoint, o.brkThreshold, o.brkOpenFor),
		budget:   newRetryBudget(endpoint, o.retryRate, o.retryBurst),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// admitCall runs the pre-flight overload gates: the breaker first, so its
// fail-fast rejections never drain the retry budget, then the budget. A
// call admitted as the half-open probe but rejected by the budget releases
// the probe slot, so an exhausted budget cannot eat the recovery probe.
// The first return reports whether this call holds the probe slot.
func (p *endpointPool) admitCall(now time.Time) (bool, error) {
	var probe bool
	if p.brk != nil {
		var err error
		if probe, err = p.brk.admit(now); err != nil {
			return false, err
		}
	}
	if p.budget != nil {
		if err := p.budget.admit(now); err != nil {
			if probe {
				p.brk.abortProbe()
			}
			return false, err
		}
	}
	return probe, nil
}

// observeCall feeds a finished call's outcome back to the breaker and the
// retry budget, and publishes the breaker's verdict to the shared health
// registry so other ORBs' selectors deprioritize the endpoint while it is
// open. Fail-fast rejections from admitCall never reach here, so the
// budget and breaker cannot feed on their own output. Health-gate
// fail-fasts DO reach here and count as failures deliberately: they are
// the endpoint's last known state, and requiring real dials to trip the
// breaker would let the gate's own backoff spacing delay it indefinitely.
func (p *endpointPool) observeCall(err error) {
	failed := transportFailure(err)
	now := time.Now()
	if p.brk != nil {
		if failed {
			p.brk.onFailure(now)
			if until, open := p.brk.window(now); open {
				p.health.reportBreakerOpen(until)
			}
			// A failure that did not open THIS breaker says nothing about
			// a window another ORB published; only a proven-healthy round
			// trip may clear the shared verdict.
		} else {
			p.brk.onSuccess()
			p.health.reportBreakerClosed()
		}
	}
	if p.budget != nil {
		p.budget.observe(failed, now)
	}
}

// rttExemptOps are operations whose round trip is dominated by nested
// fan-out work on the servant side rather than network proximity: feeding
// them into the RTT EWMA would inflate an endpoint's estimate by orders of
// magnitude and destabilize anything keyed off it (the relay-tree planner,
// whose plans — and therefore plant-cache hits — depend on endpoints
// staying in their latency class between rounds).
var rttExemptOps = map[string]bool{
	"relay_deliver": true,
}

// observeRTT folds one successful call's round trip into the endpoint's
// EWMA (¼ new sample, ¾ old estimate; the first sample seeds it).
func (p *endpointPool) observeRTT(d time.Duration) {
	sample := int64(d)
	if sample <= 0 {
		return
	}
	for {
		old := p.rttNanos.Load()
		next := sample
		if old > 0 {
			next = old - old/4 + sample/4
		}
		if p.rttNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// warm pre-dials up to n connections sequentially (WithPoolWarm), stopping
// at the pool bound, the first failure, or close. Sequential dials avoid a
// thundering herd on the peer; concurrent callers still grow the pool
// inline in parallel through get.
func (p *endpointPool) warm(n int) {
	if n > p.orb.poolSize {
		n = p.orb.poolSize
	}
	for {
		p.mu.Lock()
		// Gate on the down window, not the shared lifetime failure count: a
		// stale count from another ORB's old outage (the window long
		// expired) must not disable warming for every pool created after
		// it. This loop's own dial failure still stops it below.
		down, _, _ := p.health.gate(time.Now())
		if p.closed || down || len(p.conns)+p.dialing >= n {
			p.mu.Unlock()
			return
		}
		p.dialing++
		p.mu.Unlock()
		if _, err := p.dial(context.Background()); err != nil {
			return
		}
	}
}

// clientConn multiplexes concurrent requests over one transport
// connection. All writes flow through a combining frameWriter (writer.go)
// draining a bounded queue of pooled frame encoders: frames enqueued by
// concurrent fan-out callers while a write is in flight coalesce into one
// vectored write, so the connection costs one syscall per batch instead
// of two per frame — while an uncontended caller writes inline with no
// goroutine handoff.
type clientConn struct {
	pool *endpointPool
	tc   Conn
	w    *frameWriter

	stop chan struct{} // closed by close(); unblocks queued senders

	mu      sync.Mutex
	pending map[uint64]chan reply
	closed  bool
}

// invokeRemote performs a remote invocation against ref: the endpoint
// selector orders the reference's profiles by sticky affinity and shared
// health, and the call fails over to the next profile on any TRANSIENT
// outcome (dial failure, health gate, breaker, budget, admission shed —
// all of which guarantee the servant never ran) while the caller's
// deadline lasts. Non-TRANSIENT failures (timeouts, lost connections with
// the request possibly delivered) are returned to the caller: completion
// is unknown, so transparently re-running the operation elsewhere could
// break exactly-once expectations. The one exception is FENCED with a
// leader hint — the deposed replica asserts the operation did not run and
// names where it would — which is followed once per call.
func (o *ORB) invokeRemote(ctx context.Context, ref IOR, op string, contexts []ServiceContext, body []byte) ([]byte, error) {
	callerCtx := ctx
	if _, hasDeadline := ctx.Deadline(); !hasDeadline && o.callTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.callTimeout)
		defer cancel()
	}
	out, err := o.invokeProfiles(ctx, callerCtx, ref, op, contexts, body)
	if err == nil || ctx.Err() != nil {
		return out, err
	}
	// FENCED redirect: the target is a deposed coordinator-group member
	// and its exception names the leader. FENCED asserts the operation did
	// not run, so following the hint once per call is safe — and blind
	// profile failover could not help, since every profile of a deposed
	// member is equally deposed. Success records sticky affinity for the
	// leader so subsequent invocations go leader-first without the bounce.
	if ep, ok := fencedLeaderHint(err); ok && strings.HasPrefix(ep, "tcp:") {
		out, err2 := o.invokeEndpoint(ctx, callerCtx, ep, ref, op, contexts, body)
		if err2 != nil {
			return nil, err2
		}
		o.recordAffinity(ep, affinityKey(ref))
		return out, nil
	}
	return out, err
}

// fencedLeaderHint extracts the leader endpoint from a FENCED system
// exception's detail ("term=N leader=<id> at=tcp:host:port ...").
func fencedLeaderHint(err error) (string, bool) {
	var se *SystemError
	if !errors.As(err, &se) || se.Code != CodeFenced {
		return "", false
	}
	for _, tok := range strings.Fields(se.Detail) {
		if ep, ok := strings.CutPrefix(tok, "at="); ok && ep != "" {
			return ep, true
		}
	}
	return "", false
}

// invokeProfiles runs the profile-selection invoke: the single-profile
// fast path, or the selector-ordered failover loop.
func (o *ORB) invokeProfiles(ctx, callerCtx context.Context, ref IOR, op string, contexts []ServiceContext, body []byte) ([]byte, error) {
	if len(ref.Profiles) == 1 {
		// The dominant single-profile path: no choice to rank, so it skips
		// the affinity key, the selector and the ordered-endpoints slice —
		// the steady-state invoke allocates nothing here.
		if ep := ref.Profiles[0].Endpoint; strings.HasPrefix(ep, "tcp:") {
			return o.invokeEndpoint(ctx, callerCtx, ep, ref, op, contexts, body)
		}
		return nil, Systemf(CodeNoImplement, "object %q has no reachable profile (endpoints %v)", ref.Key, ref.Endpoints())
	}
	affKey := affinityKey(ref)
	eps, affinity := o.selectEndpoints(ref, affKey)
	if len(eps) == 0 {
		return nil, Systemf(CodeNoImplement, "object %q has no reachable profile (endpoints %v)", ref.Key, ref.Endpoints())
	}
	var lastErr error
	for _, ep := range eps {
		out, err := o.invokeEndpoint(ctx, callerCtx, ep, ref, op, contexts, body)
		if err == nil {
			if len(eps) > 1 && ep != affinity {
				o.recordAffinity(ep, affKey)
			}
			return out, nil
		}
		lastErr = err
		if !IsSystem(err, CodeTransient) || ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, lastErr
}

// invokeEndpoint performs one invocation attempt over the connection pool
// for a single endpoint.
func (o *ORB) invokeEndpoint(ctx, callerCtx context.Context, endpoint string, ref IOR, op string, contexts []ServiceContext, body []byte) ([]byte, error) {
	addr, ok := strings.CutPrefix(endpoint, "tcp:")
	if !ok {
		return nil, Systemf(CodeNoImplement, "unreachable endpoint %q", endpoint)
	}
	pool, err := o.pool(addr, endpoint)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	probe, err := pool.admitCall(start)
	if err != nil {
		return nil, err
	}
	body, err = o.invokeOverPool(ctx, pool, ref, op, contexts, body)
	if err == nil && !rttExemptOps[op] {
		pool.observeRTT(time.Since(start))
	}
	// A call abandoned because the *caller* died (a cancelled parallel
	// straggler, an expired caller deadline) says nothing about the
	// endpoint's health and must not feed the breaker or retry budget —
	// the same exemption dial applies to the health gate. An ORB-installed
	// call timeout firing is not the caller dying: it still counts.
	switch {
	case err == nil || callerCtx.Err() == nil:
		pool.observeCall(err)
	case probe:
		// The half-open probe's outcome was discarded with its caller;
		// release the slot so the next caller can probe, or the circuit
		// would stay latched on a probe that can never report back.
		pool.brk.releaseProbe()
	}
	return body, err
}

// affinityKey identifies one logical object for stickiness: the servant
// key scoped by the reference's primary network profile, so well-known
// keys ("naming", "orb-admin") on different server groups do not clobber
// each other's affinity. The primary profile is taken from the reference
// as written, not the selector's reordering, so the key is stable across
// calls.
func affinityKey(ref IOR) string {
	for _, p := range ref.Profiles {
		if strings.HasPrefix(p.Endpoint, "tcp:") {
			return p.Endpoint + "|" + ref.Key
		}
	}
	return ref.Key
}

// selectEndpoints orders ref's network profiles for one invocation and
// returns the sticky-affinity endpoint it consulted (so the caller can
// skip re-recording an unchanged affinity). A single-profile reference
// skips all ranking work — the historic single-endpoint fast path. With
// several profiles the order is: the sticky-affinity endpoint for affKey
// first while it looks healthy (so a coordinated protocol keeps landing
// on the replica that answered its earlier phases), then the remaining
// profiles the shared HealthRegistry considers healthy ranked by this
// ORB's round-trip EWMA against them — nearest first, never-measured
// ones after in reference order, so cross-shard traffic prefers near
// replicas while fresh endpoints still get probed — then the unhealthy
// ones in reference order (still tried last — a stale verdict must not
// make an object unreachable).
func (o *ORB) selectEndpoints(ref IOR, affKey string) ([]string, string) {
	var eps []string
	for _, p := range ref.Profiles {
		if strings.HasPrefix(p.Endpoint, "tcp:") {
			eps = append(eps, p.Endpoint)
		}
	}
	if len(eps) <= 1 {
		return eps, ""
	}
	now := time.Now()
	affinity := o.affinityFor(affKey)
	records := o.health.entriesFor(eps) // one registry lock for all profiles
	rtts := o.rttsFor(eps)              // one pool-map lock for all profiles
	ordered := make([]string, 0, len(eps))
	orderedRTT := make([]int64, 0, len(eps))
	var unhealthy []string
	if affinity != "" {
		for i, ep := range eps {
			if ep == affinity && records[i].preferred(now) {
				ordered = append(ordered, ep)
				orderedRTT = append(orderedRTT, 0)
				break
			}
		}
	}
	healthyStart := len(ordered)
	for i, ep := range eps {
		if healthyStart > 0 && ep == ordered[0] {
			continue
		}
		if !records[i].preferred(now) {
			unhealthy = append(unhealthy, ep)
			continue
		}
		// Insertion-rank by RTT: measured endpoints ascending, unmeasured
		// (rtt 0) after them in reference order. Inserting strictly before
		// the first slower entry keeps the sort stable, so ties and the
		// unmeasured tail preserve reference order. The slices are profile-
		// list sized (a handful), so insertion beats sort.Slice's closure.
		r := rtts[i]
		pos := len(ordered)
		if r > 0 {
			for j := healthyStart; j < len(ordered); j++ {
				if orderedRTT[j] == 0 || r < orderedRTT[j] {
					pos = j
					break
				}
			}
		}
		ordered = append(ordered, "")
		orderedRTT = append(orderedRTT, 0)
		copy(ordered[pos+1:], ordered[pos:])
		copy(orderedRTT[pos+1:], orderedRTT[pos:])
		ordered[pos] = ep
		orderedRTT[pos] = r
	}
	return append(ordered, unhealthy...), affinity
}

// rttsFor returns this ORB's round-trip EWMA for each endpoint (zero
// when no pool exists or nothing succeeded yet), taking the pool-map
// lock once for the whole profile list.
func (o *ORB) rttsFor(eps []string) []int64 {
	out := make([]int64, len(eps))
	o.connMu.Lock()
	if !o.poolsClosed {
		for i, ep := range eps {
			if p, ok := o.pools[ep]; ok {
				out[i] = p.rttNanos.Load()
			}
		}
	}
	o.connMu.Unlock()
	return out
}

// maxAffinityEntries bounds the sticky-affinity map. Long-lived clients
// invoking short-lived per-activity objects would otherwise accumulate
// one entry per key forever; affinity is only a routing hint, so the
// map evicts in least-recently-used order at the bound — a sharded
// fleet multiplies distinct (endpoint, key) pairs, and the old
// wholesale reset would throw away every live protocol's stickiness
// whenever churn filled the map.
const maxAffinityEntries = 4096

// affEntry is one sticky-affinity binding, held in the LRU list.
type affEntry struct {
	key      string
	endpoint string
}

// affinityFor returns the endpoint that last served key, if any, and
// freshens the entry's recency: a binding consulted on every invocation
// of a live protocol must not be the one evicted mid-protocol.
func (o *ORB) affinityFor(key string) string {
	o.affMu.Lock()
	defer o.affMu.Unlock()
	el, ok := o.affinity[key]
	if !ok {
		return ""
	}
	o.affOrder.MoveToFront(el)
	return el.Value.(*affEntry).endpoint
}

// recordAffinity pins key to the endpoint that just served it, evicting
// the least-recently-used binding when the map is full.
func (o *ORB) recordAffinity(endpoint, key string) {
	o.affMu.Lock()
	defer o.affMu.Unlock()
	if el, ok := o.affinity[key]; ok {
		el.Value.(*affEntry).endpoint = endpoint
		o.affOrder.MoveToFront(el)
		return
	}
	if o.affinity == nil {
		o.affinity = make(map[string]*list.Element)
		o.affOrder = list.New()
	}
	if len(o.affinity) >= maxAffinityEntries {
		if back := o.affOrder.Back(); back != nil {
			delete(o.affinity, back.Value.(*affEntry).key)
			o.affOrder.Remove(back)
		}
	}
	o.affinity[key] = o.affOrder.PushFront(&affEntry{key: key, endpoint: endpoint})
}

// invokeOverPool performs one admitted invocation through the endpoint's
// connection pool. The steady-state path is allocation-free: the request
// frame is built in a pooled encoder (released by the writer goroutine
// after the coalesced write), the reply channel comes from a pool, and
// the reply body arrives in a pooled frame buffer that is cloned into a
// caller-owned slice before the buffer is recycled.
func (o *ORB) invokeOverPool(ctx context.Context, pool *endpointPool, ref IOR, op string, contexts []ServiceContext, body []byte) ([]byte, error) {
	reqID := o.reqID.Add(1)
	ch := getReplyChan()

	// A connection picked from the pool can be torn down between the pick
	// and the registration (its read loop may observe the peer dying at any
	// moment); retry the pick until registration lands on a live one.
	var c *clientConn
	for attempt := 0; ; attempt++ {
		var err error
		c, err = pool.get(ctx)
		if err != nil {
			putReplyChan(ch) // never registered: no sender can exist
			return nil, err
		}
		if err = c.register(reqID, ch); err == nil {
			break
		}
		if attempt >= o.poolSize {
			putReplyChan(ch)
			return nil, err
		}
	}

	enc := encodeRequestFrame(request{
		requestID: reqID,
		objectKey: ref.Key,
		operation: op,
		contexts:  contexts,
		body:      body,
	})
	if err := c.send(enc); err != nil {
		cdr.PutEncoder(enc) // never enqueued; the caller still owns it
		if c.unregister(reqID) {
			putReplyChan(ch)
		}
		pool.drop(c, Systemf(CodeCommFailure, "connection to %s lost", pool.endpoint))
		// The request never left this host: TRANSIENT.
		return nil, Systemf(CodeTransient, "send to %s: %v", pool.endpoint, err)
	}

	select {
	case rep := <-ch:
		// The sender removed the pending entry and completed its one send;
		// nobody else can touch ch, so it is safe to recycle.
		putReplyChan(ch)
		return replyToResult(rep)
	case <-ctx.Done():
		if c.unregister(reqID) {
			// This caller removed the entry itself: no send can ever happen.
			putReplyChan(ch)
		} else {
			// A sender beat the timeout to the entry. If its reply already
			// sits in the buffer, consume it and recycle; otherwise the send
			// is still in flight — abandon ch to the garbage collector.
			select {
			case rep := <-ch:
				rep.release()
				putReplyChan(ch)
			default:
			}
		}
		return nil, Systemf(CodeTimeout, "invoking %s on %s: %v", op, pool.endpoint, ctx.Err())
	}
}

// pool returns the endpoint's connection pool, creating it if needed. It
// refuses after Shutdown, so an Invoke racing Shutdown cannot plant a live
// pool in the swapped-out map where nothing would ever close it.
func (o *ORB) pool(addr, endpoint string) (*endpointPool, error) {
	o.connMu.Lock()
	defer o.connMu.Unlock()
	if o.poolsClosed {
		return nil, Systemf(CodeCommFailure, "orb shut down")
	}
	p, ok := o.pools[endpoint]
	if !ok {
		p = newEndpointPool(o, endpoint, addr)
		o.pools[endpoint] = p
		if o.warmConns > 0 {
			// First use of this endpoint: pre-dial toward the bound in the
			// background so a following burst finds connections ready.
			go p.warm(o.warmConns)
		}
	}
	return p, nil
}

// PooledEndpoints returns the endpoints this ORB holds client pools for,
// sorted — the scrape surface the admin servant iterates.
func (o *ORB) PooledEndpoints() []string {
	o.connMu.Lock()
	eps := make([]string, 0, len(o.pools))
	for ep := range o.pools {
		eps = append(eps, ep)
	}
	o.connMu.Unlock()
	sort.Strings(eps)
	return eps
}

// get returns a live connection: the least-pending one when the pool is at
// its bound, a freshly dialed one while it is below. While the endpoint is
// marked down (in the shared health registry — possibly by another ORB's
// pool) and nothing is live, get fails fast without touching the network.
func (p *endpointPool) get(ctx context.Context) (*clientConn, error) {
	// Steady-state fast path: the pool is at its bound with live
	// connections, so no dial or wait can be needed — skip the
	// context.AfterFunc wake-up plumbing (an allocation per call) that
	// only the blocking path uses.
	p.mu.Lock()
	if !p.closed && len(p.conns) >= p.orb.poolSize && ctx.Err() == nil {
		if c := p.leastPendingLocked(); c != nil {
			p.mu.Unlock()
			return c, nil
		}
	}
	p.mu.Unlock()
	return p.getSlow(ctx)
}

// getSlow is get's dial-or-wait path.
func (p *endpointPool) getSlow(ctx context.Context) (*clientConn, error) {
	// Wake this waiter if its context dies while it blocks in Wait below.
	stopWake := context.AfterFunc(ctx, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer stopWake()

	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil, Systemf(CodeCommFailure, "orb shut down")
		}
		if err := ctx.Err(); err != nil {
			return nil, Systemf(CodeTransient, "awaiting connection to %s: %v", p.endpoint, err)
		}
		down, failures, downUntil := p.health.gate(time.Now())
		if down && len(p.conns) == 0 && p.dialing == 0 {
			return nil, Systemf(CodeTransient,
				"endpoint %s down after %d consecutive dial failures (next probe in %s)",
				p.endpoint, failures, time.Until(downUntil).Round(time.Millisecond))
		}
		// Growth is allowed when the pool is below its bound — but while
		// the endpoint is recovering from failures, the probe is
		// single-flight: one caller dials, the rest wait for its verdict.
		if !down && len(p.conns)+p.dialing < p.orb.poolSize && (failures == 0 || p.dialing == 0) {
			p.dialing++
			p.mu.Unlock()
			c, err := p.dial(ctx)
			p.mu.Lock()
			if err == nil {
				return c, nil
			}
			if len(p.conns) > 0 {
				continue // growth failed; fall back to a live connection
			}
			return nil, err
		}
		if c := p.leastPendingLocked(); c != nil {
			return c, nil
		}
		// Nothing live but a dial is in flight: wait for its verdict, or
		// for this caller's own context to die (the AfterFunc above wakes
		// us). The wait is otherwise bounded by the dialer's timeout.
		p.cond.Wait()
	}
}

// dial opens one connection and publishes the outcome to the pool and the
// shared health registry. The caller has already reserved a slot
// (p.dialing).
func (p *endpointPool) dial(ctx context.Context) (*clientConn, error) {
	// The dial timeout always applies; a sooner caller deadline still wins
	// through context propagation.
	dctx, cancel := context.WithTimeout(ctx, p.orb.dialTimeout)
	defer cancel()
	tc, err := p.orb.transport.Dial(dctx, p.addr)

	p.mu.Lock()
	p.dialing--
	if err != nil {
		if ctx.Err() == nil {
			// A real dial failure: penalize the endpoint for every ORB
			// sharing the registry. A dial aborted because the *caller*
			// died (cancelled straggler, expired call deadline) says
			// nothing about the peer's health and must not open the down
			// window.
			p.health.dialFailed(time.Now(), p.backoffFor)
		}
		p.cond.Broadcast()
		p.mu.Unlock()
		return nil, Systemf(CodeTransient, "dial %s: %v", p.addr, err)
	}
	if p.closed {
		p.cond.Broadcast()
		p.mu.Unlock()
		tc.Close()
		return nil, Systemf(CodeCommFailure, "orb shut down")
	}
	c := &clientConn{
		pool:    p,
		tc:      tc,
		stop:    make(chan struct{}),
		pending: make(map[uint64]chan reply),
	}
	bw, _ := tc.(frameBatchWriter)
	c.w = newFrameWriter(writeQueueDepth, bw, tc.WriteFrame, func(unsent []*cdr.Encoder) {
		// Requests in a failed write batch never left (or only partially
		// left) this host: fail them with TRANSIENT — the historic
		// synchronous-send contract, which lets the caller retry or fail
		// over to another profile — before the drop converts everything
		// already on the wire to COMM_FAILURE (completion unknown).
		c.failUnsent(unsent)
		c.pool.drop(c, Systemf(CodeCommFailure, "connection to %s lost", c.pool.endpoint))
	})
	p.conns = append(p.conns, c)
	p.health.dialOK()
	p.cond.Broadcast()
	p.mu.Unlock()

	go c.readLoop()
	return c, nil
}

// backoffFor returns the jittered exponential backoff for the given
// consecutive-failure count: full jitter over [d/2, d] where d doubles per
// failure between the configured bounds.
func (p *endpointPool) backoffFor(failures int) time.Duration {
	d := p.orb.backoffMin
	for i := 1; i < failures && d < p.orb.backoffMax; i++ {
		d *= 2
	}
	if d > p.orb.backoffMax {
		d = p.orb.backoffMax
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand.Int64N(int64(half)+1))
}

// leastPendingLocked picks the live connection with the fewest in-flight
// requests.
func (p *endpointPool) leastPendingLocked() *clientConn {
	var best *clientConn
	bestLoad := 0
	for _, c := range p.conns {
		load := c.load()
		if best == nil || load < bestLoad {
			best, bestLoad = c, load
		}
	}
	return best
}

// drop removes c from the pool and fails its pending calls.
func (p *endpointPool) drop(c *clientConn, cause *SystemError) {
	p.mu.Lock()
	for i, pc := range p.conns {
		if pc == c {
			p.conns = append(p.conns[:i], p.conns[i+1:]...)
			break
		}
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	c.close(cause)
}

// closePool tears down every connection, rejects future gets, and unpins
// the pool's shared health record.
func (p *endpointPool) closePool(cause *SystemError) {
	p.mu.Lock()
	p.closed = true
	conns := p.conns
	p.conns = nil
	p.cond.Broadcast()
	p.mu.Unlock()
	for _, c := range conns {
		c.close(cause)
	}
	p.health.release()
}

// EndpointStats is a snapshot of one endpoint pool's health, for tests,
// tooling and operational introspection.
type EndpointStats struct {
	// Endpoint is the pooled endpoint ("tcp:host:port").
	Endpoint string
	// Conns is the number of live connections.
	Conns int
	// Pending is the total number of in-flight requests across them.
	Pending int
	// Dialing is the number of dials in flight.
	Dialing int
	// Failures is the consecutive dial-failure count, shared through the
	// HealthRegistry with every ORB dialing the same endpoint.
	Failures int
	// Down reports whether the health gate is failing calls fast.
	Down bool
	// Breaker is the circuit breaker state (BreakerInactive when no
	// breaker is configured; see WithCircuitBreaker).
	Breaker BreakerState
	// BreakerProbes is the cumulative number of half-open probes admitted.
	BreakerProbes uint64
	// BreakerOpens is the cumulative number of transitions to the open
	// state.
	BreakerOpens uint64
	// RetryExhausted is the cumulative number of calls failed fast by an
	// empty retry budget (see WithRetryBudget).
	RetryExhausted uint64
	// RTT is the EWMA of successful call round trips against the endpoint,
	// zero until the first success (see ORB.EndpointRTT).
	RTT time.Duration
}

// EndpointStats reports the pool state for endpoint, if one exists.
func (o *ORB) EndpointStats(endpoint string) (EndpointStats, bool) {
	o.connMu.Lock()
	p, ok := o.pools[endpoint]
	o.connMu.Unlock()
	if !ok {
		return EndpointStats{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	down, failures, _ := p.health.gate(time.Now())
	st := EndpointStats{
		Endpoint: p.endpoint,
		Conns:    len(p.conns),
		Dialing:  p.dialing,
		Failures: failures,
		Down:     down,
		RTT:      time.Duration(p.rttNanos.Load()),
	}
	for _, c := range p.conns {
		st.Pending += c.load()
	}
	if b := p.brk; b != nil {
		now := time.Now()
		b.mu.Lock()
		st.Breaker = b.stateLocked(now)
		st.BreakerProbes = b.probes
		st.BreakerOpens = b.opens
		b.mu.Unlock()
	}
	if rb := p.budget; rb != nil {
		rb.mu.Lock()
		st.RetryExhausted = rb.exhausted
		rb.mu.Unlock()
	}
	return st, ok
}

// EndpointRTT returns the EWMA round-trip estimate this ORB has measured
// against endpoint ("tcp:host:port", the prefix optional), or zero when no
// successful call has been observed. Latency-aware relay-tree planning
// feeds on it.
func (o *ORB) EndpointRTT(endpoint string) time.Duration {
	if !strings.HasPrefix(endpoint, "tcp:") {
		endpoint = "tcp:" + endpoint
	}
	o.connMu.Lock()
	p, ok := o.pools[endpoint]
	o.connMu.Unlock()
	if !ok {
		return 0
	}
	return time.Duration(p.rttNanos.Load())
}

func (c *clientConn) register(id uint64, ch chan reply) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return Systemf(CodeTransient, "connection to %s closed", c.pool.endpoint)
	}
	c.pending[id] = ch
	return nil
}

// unregister removes a pending entry, reporting whether this caller
// removed it. Whoever removes the entry owns the single reply send that
// will ever target its channel: a true return therefore proves no sender
// exists and the channel may be recycled.
func (c *clientConn) unregister(id uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.pending[id]; !ok {
		return false
	}
	delete(c.pending, id)
	return true
}

// load counts in-flight requests (the least-pending pick key).
func (c *clientConn) load() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// send hands a complete request frame (a pooled encoder, ownership
// included) to the connection's combining writer. On success the writer
// releases the encoder after the frame is written (often by this very
// goroutine, inline, batched with whatever concurrent callers enqueued
// meanwhile); on error the caller still owns it. A full queue blocks
// until a combiner drains or the connection dies.
func (c *clientConn) send(enc *cdr.Encoder) error {
	select {
	case c.w.q <- enc:
	case <-c.stop:
		return Systemf(CodeCommFailure, "connection to %s closed", c.pool.endpoint)
	}
	c.w.combine()
	return nil
}

// failUnsent fails the pending calls behind unwritten (or only partially
// written) request frames with TRANSIENT, before the connection drop
// converts everything else to COMM_FAILURE. The request id sits at a
// fixed offset in the frame payload (magic, version, type, pad, u64), so
// no full decode is needed.
func (c *clientConn) failUnsent(unsent []*cdr.Encoder) {
	for _, e := range unsent {
		p := e.FramePayload()
		if len(p) < 16 {
			continue
		}
		id := binary.BigEndian.Uint64(p[8:16])
		c.mu.Lock()
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if ok {
			ch <- reply{
				requestID: id,
				status:    replySystemErr,
				errCode:   string(CodeTransient),
				errDetail: "request not sent: connection to " + c.pool.endpoint + " lost",
			}
		}
	}
}

// readLoop delivers replies to waiting callers until the connection dies.
// Frames are read into pooled buffers when the transport supports reuse
// (rep.fb tracks ownership; the caller that consumes the reply releases
// the buffer) and into fresh allocations otherwise.
func (c *clientConn) readLoop() {
	rr, _ := c.tc.(frameReuseReader)
	for {
		var (
			frame []byte
			fb    *frameBuf
			err   error
		)
		if rr != nil {
			fb = getFrameBuf()
			fb.b, err = rr.ReadFrameReuse(fb.b)
			frame = fb.b
		} else {
			frame, err = c.tc.ReadFrame()
		}
		if err != nil {
			putFrameBuf(fb)
			c.pool.drop(c, Systemf(CodeCommFailure, "connection to %s lost", c.pool.endpoint))
			return
		}
		rep, err := decodeReply(frame)
		if err != nil {
			putFrameBuf(fb)
			c.pool.drop(c, Systemf(CodeCommFailure, "connection to %s lost", c.pool.endpoint))
			return
		}
		rep.fb = fb
		c.mu.Lock()
		ch, ok := c.pending[rep.requestID]
		if ok {
			delete(c.pending, rep.requestID)
		}
		c.mu.Unlock()
		if ok {
			ch <- rep
		} else {
			// No waiter (it timed out and unregistered): the frame is dead.
			rep.release()
		}
	}
}

// close fails every pending call with a COMM_FAILURE-style reply and
// stops the writer goroutine. A call in flight when the connection dies
// has unknown completion.
func (c *clientConn) close(cause *SystemError) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	pending := c.pending
	c.pending = make(map[uint64]chan reply)
	c.mu.Unlock()

	close(c.stop)
	c.tc.Close()
	for id, ch := range pending {
		ch <- reply{
			requestID: id,
			status:    replySystemErr,
			errCode:   string(cause.Code),
			errDetail: cause.Detail,
		}
	}
}

// endpointHost extracts the host:port from a "tcp:" endpoint, for tests
// and tooling.
func endpointHost(endpoint string) string {
	return strings.TrimPrefix(endpoint, "tcp:")
}
