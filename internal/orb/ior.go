package orb

import (
	"errors"
	"fmt"
	"strings"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// Profile is one tagged endpoint of an object reference: a place the
// object can be invoked. Real CORBA IORs carry an ordered list of tagged
// profiles so a reference survives the loss of a single endpoint; ours
// carry the same idea with the endpoint forms this ORB speaks.
type Profile struct {
	// Endpoint locates a hosting ORB: "inproc:<orb-id>" for same-process
	// references or "tcp:host:port" for network references.
	Endpoint string
}

// IOR is an interoperable object reference: everything a client needs to
// invoke an object — its type, its key within the object adapter, and an
// ordered list of endpoint profiles it can be reached through. The first
// profile is the primary; the invoke path prefers healthy profiles and
// fails over along the list (see the endpoint selector in client.go).
type IOR struct {
	// TypeID names the interface, e.g. "IDL:ActivityService/Action:1.0".
	TypeID string
	// Key identifies the servant within its object adapter.
	Key string
	// Profiles lists the endpoints the object is reachable through, in
	// preference order. A reference with one profile is exactly the
	// single-endpoint reference earlier versions carried.
	Profiles []Profile
}

// ErrBadIOR reports an unparseable stringified IOR.
var ErrBadIOR = errors.New("orb: malformed IOR")

// iorWireMagic tags the multi-profile CDR layout. Legacy streams begin
// with the TypeID string's length prefix, which can never plausibly equal
// this value, so one aligned peek discriminates the two layouts.
const iorWireMagic = 0x494F5232 // "IOR2"

// iorWireVersion is the multi-profile CDR layout version written after the
// magic.
const iorWireVersion = 2

// NewIOR builds a reference to key with the given interface type and
// endpoint profiles, in preference order. Empty endpoints are dropped;
// endpoints without a scheme prefix are taken as "tcp:host:port" (the
// WithAdvertised convention), so operator-typed endpoints — activityd's
// -shard-map/-standby flags, the AdminAt/RecoveryAt/ShardMapAt helpers —
// produce reachable profiles.
func NewIOR(typeID, key string, endpoints ...string) IOR {
	r := IOR{TypeID: typeID, Key: key}
	for _, ep := range endpoints {
		if ep == "" {
			continue
		}
		if !strings.HasPrefix(ep, "tcp:") && !strings.HasPrefix(ep, "inproc:") {
			ep = "tcp:" + ep
		}
		r.Profiles = append(r.Profiles, Profile{Endpoint: ep})
	}
	return r
}

// IsZero reports whether the IOR is the zero reference (a "nil objref").
func (r IOR) IsZero() bool {
	return r.TypeID == "" && r.Key == "" && len(r.Profiles) == 0
}

// Equal reports whether two references are structurally identical: same
// type, key, and profile list in the same order.
func (r IOR) Equal(o IOR) bool {
	if r.TypeID != o.TypeID || r.Key != o.Key || len(r.Profiles) != len(o.Profiles) {
		return false
	}
	for i := range r.Profiles {
		if r.Profiles[i] != o.Profiles[i] {
			return false
		}
	}
	return true
}

// Endpoint returns the primary (first) profile's endpoint, or "" for a
// reference with no profiles.
func (r IOR) Endpoint() string {
	if len(r.Profiles) == 0 {
		return ""
	}
	return r.Profiles[0].Endpoint
}

// Endpoints returns every profile endpoint in preference order.
func (r IOR) Endpoints() []string {
	eps := make([]string, len(r.Profiles))
	for i, p := range r.Profiles {
		eps[i] = p.Endpoint
	}
	return eps
}

// String renders the IOR in stringified form. References with at most one
// profile use the historic "IOR:<endpoint>|<typeid>|<key>" layout, so
// single-profile references interoperate with parsers that predate
// multi-profile support; references with more use
// "IOR2:<endpoint>,<endpoint>,...|<typeid>|<key>".
func (r IOR) String() string {
	if len(r.Profiles) <= 1 {
		return fmt.Sprintf("IOR:%s|%s|%s", r.Endpoint(), r.TypeID, r.Key)
	}
	return fmt.Sprintf("IOR2:%s|%s|%s", strings.Join(r.Endpoints(), ","), r.TypeID, r.Key)
}

// ParseIOR parses both stringified forms produced by String: the historic
// single-endpoint "IOR:" layout and the multi-profile "IOR2:" layout.
func ParseIOR(s string) (IOR, error) {
	if rest, ok := strings.CutPrefix(s, "IOR2:"); ok {
		parts := strings.SplitN(rest, "|", 3)
		if len(parts) != 3 || parts[0] == "" || parts[2] == "" {
			return IOR{}, fmt.Errorf("%w: %q", ErrBadIOR, s)
		}
		r := IOR{TypeID: parts[1], Key: parts[2]}
		for _, ep := range strings.Split(parts[0], ",") {
			if ep == "" {
				return IOR{}, fmt.Errorf("%w: empty profile in %q", ErrBadIOR, s)
			}
			r.Profiles = append(r.Profiles, Profile{Endpoint: ep})
		}
		return r, nil
	}
	rest, ok := strings.CutPrefix(s, "IOR:")
	if !ok {
		return IOR{}, fmt.Errorf("%w: missing IOR: prefix", ErrBadIOR)
	}
	parts := strings.SplitN(rest, "|", 3)
	if len(parts) != 3 || parts[0] == "" || parts[2] == "" {
		return IOR{}, fmt.Errorf("%w: %q", ErrBadIOR, s)
	}
	if strings.Contains(parts[0], ",") {
		return IOR{}, fmt.Errorf("%w: multi-profile endpoint list needs the IOR2: prefix: %q", ErrBadIOR, s)
	}
	return IOR{TypeID: parts[1], Key: parts[2], Profiles: []Profile{{Endpoint: parts[0]}}}, nil
}

// Encode writes the IOR to a CDR stream. References with at most one
// profile use the historic three-string layout (TypeID, endpoint, key) so
// decoders that predate multi-profile support keep working; references
// with more use the versioned multi-profile layout DecodeIOR discriminates
// by its leading magic.
func (r IOR) Encode(e *cdr.Encoder) {
	if len(r.Profiles) <= 1 {
		e.WriteString(r.TypeID)
		e.WriteString(r.Endpoint())
		e.WriteString(r.Key)
		return
	}
	e.WriteUint32(iorWireMagic)
	e.WriteUint32(iorWireVersion)
	e.WriteString(r.TypeID)
	e.WriteString(r.Key)
	e.WriteStringList(r.Endpoints())
}

// DecodeIOR reads an IOR from a CDR stream, accepting both the historic
// single-endpoint layout and the versioned multi-profile layout.
func DecodeIOR(d *cdr.Decoder) IOR {
	if d.PeekUint32() == iorWireMagic {
		d.ReadUint32() // the magic itself
		if v := d.ReadUint32(); v != iorWireVersion {
			d.Fail(fmt.Errorf("%w: unsupported wire version %d", ErrBadIOR, v))
			return IOR{}
		}
		r := IOR{TypeID: d.ReadString(), Key: d.ReadString()}
		eps := d.ReadStringList() // hostile profile counts rejected inside
		if d.Err() != nil {
			return IOR{}
		}
		for _, ep := range eps {
			// Empty endpoints are dropped on every ingestion path (NewIOR,
			// ParseIOR, the legacy layout below); accepting one here would
			// produce a reference that re-encodes lossily.
			if ep != "" {
				r.Profiles = append(r.Profiles, Profile{Endpoint: ep})
			}
		}
		return r
	}
	r := IOR{TypeID: d.ReadString()}
	ep := d.ReadString()
	r.Key = d.ReadString()
	if d.Err() != nil {
		return IOR{}
	}
	if ep != "" {
		r.Profiles = []Profile{{Endpoint: ep}}
	}
	return r
}
