package orb

import (
	"errors"
	"fmt"
	"strings"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// IOR is an interoperable object reference: everything a client needs to
// invoke an object — its type, where it lives, and its key within the
// object adapter there.
type IOR struct {
	// TypeID names the interface, e.g. "IDL:ActivityService/Action:1.0".
	TypeID string
	// Endpoint locates the hosting ORB: "inproc:<orb-id>" for same-process
	// references or "tcp:host:port" for network references.
	Endpoint string
	// Key identifies the servant within its object adapter.
	Key string
}

// ErrBadIOR reports an unparseable stringified IOR.
var ErrBadIOR = errors.New("orb: malformed IOR")

// IsZero reports whether the IOR is the zero reference (a "nil objref").
func (r IOR) IsZero() bool { return r == IOR{} }

// String renders the IOR in the stringified form
// "IOR:<endpoint>|<typeid>|<key>".
func (r IOR) String() string {
	return fmt.Sprintf("IOR:%s|%s|%s", r.Endpoint, r.TypeID, r.Key)
}

// ParseIOR parses the stringified form produced by String.
func ParseIOR(s string) (IOR, error) {
	rest, ok := strings.CutPrefix(s, "IOR:")
	if !ok {
		return IOR{}, fmt.Errorf("%w: missing IOR: prefix", ErrBadIOR)
	}
	parts := strings.SplitN(rest, "|", 3)
	if len(parts) != 3 || parts[0] == "" || parts[2] == "" {
		return IOR{}, fmt.Errorf("%w: %q", ErrBadIOR, s)
	}
	return IOR{Endpoint: parts[0], TypeID: parts[1], Key: parts[2]}, nil
}

// Encode writes the IOR to a CDR stream.
func (r IOR) Encode(e *cdr.Encoder) {
	e.WriteString(r.TypeID)
	e.WriteString(r.Endpoint)
	e.WriteString(r.Key)
}

// DecodeIOR reads an IOR from a CDR stream.
func DecodeIOR(d *cdr.Decoder) IOR {
	return IOR{
		TypeID:   d.ReadString(),
		Endpoint: d.ReadString(),
		Key:      d.ReadString(),
	}
}
