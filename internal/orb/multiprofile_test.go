package orb

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// replicaNode is one node of a replicated servant: an ORB serving a
// counting servant under a fixed key.
type replicaNode struct {
	orb   *ORB
	calls atomic.Int32
}

// startReplica serves a servant under key on a fresh ORB and returns the
// node plus its bound endpoint.
func startReplica(t *testing.T, key string) (*replicaNode, string) {
	t.Helper()
	n := &replicaNode{orb: New()}
	t.Cleanup(n.orb.Shutdown)
	n.orb.RegisterServantWithKey(key, "IDL:test/Replica:1.0", ServantFunc(
		func(_ context.Context, op string, _ *cdr.Decoder) ([]byte, error) {
			n.calls.Add(1)
			return []byte("ok"), nil
		}))
	ep, err := n.orb.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return n, ep
}

// isolatedClient returns a client ORB with its own health registry (so
// tests do not share verdicts through the process-wide default) and fast
// reconnect backoff.
func isolatedClient(t *testing.T, opts ...ORBOption) *ORB {
	t.Helper()
	opts = append([]ORBOption{
		WithHealthRegistry(NewHealthRegistry()),
		WithReconnectBackoff(5*time.Millisecond, 20*time.Millisecond),
		WithCallTimeout(2 * time.Second),
	}, opts...)
	client := New(opts...)
	t.Cleanup(client.Shutdown)
	return client
}

// TestMultiProfileFailoverToBackup is the heart of the redesign: a
// two-profile reference keeps working through the loss of its primary
// endpoint, transparently, within a single Invoke.
func TestMultiProfileFailoverToBackup(t *testing.T) {
	primary, ep1 := startReplica(t, "svc")
	backup, ep2 := startReplica(t, "svc")
	ref := NewIOR("IDL:test/Replica:1.0", "svc", ep1, ep2)
	client := isolatedClient(t)
	ctx := context.Background()

	// Healthy primary: the first profile serves.
	if _, err := client.Invoke(ctx, ref, "work", nil); err != nil {
		t.Fatal(err)
	}
	if p, b := primary.calls.Load(), backup.calls.Load(); p != 1 || b != 0 {
		t.Fatalf("healthy routing: primary=%d backup=%d, want 1/0", p, b)
	}

	// Kill the primary and wait for the client's pooled connection to it
	// to die, so the next invoke must re-dial (and fail over) rather than
	// race the connection teardown.
	primary.orb.Shutdown()
	waitForConns(t, client, ep1, 0)

	if _, err := client.Invoke(ctx, ref, "work", nil); err != nil {
		t.Fatalf("invoke during primary outage: %v (failover should be transparent)", err)
	}
	if b := backup.calls.Load(); b != 1 {
		t.Fatalf("backup served %d calls, want 1 (failed over)", b)
	}

	// The dead profile's health gate is open; the selector now prefers the
	// backup outright, so further invokes do not pay the dead dial.
	st, ok := client.EndpointStats(ep1)
	if !ok || !st.Down {
		t.Fatalf("primary stats = %+v, want down", st)
	}
	start := time.Now()
	if _, err := client.Invoke(ctx, ref, "work", nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("invoke with downed primary took %s, want fast path through backup", elapsed)
	}
	if b := backup.calls.Load(); b != 2 {
		t.Fatalf("backup served %d calls, want 2", b)
	}
}

// TestMultiProfileStickyAffinity pins the replica-affinity contract: after
// failing over to the backup, invocations for that key keep landing on the
// backup even once the primary endpoint is healthy again — the replica
// that answered earlier phases of a protocol keeps receiving later ones.
func TestMultiProfileStickyAffinity(t *testing.T) {
	primary, ep1 := startReplica(t, "svc")
	backup, ep2 := startReplica(t, "svc")
	ref := NewIOR("IDL:test/Replica:1.0", "svc", ep1, ep2)
	client := isolatedClient(t)
	ctx := context.Background()

	primary.orb.Shutdown()
	if _, err := client.Invoke(ctx, ref, "work", nil); err != nil {
		t.Fatal(err)
	}
	if b := backup.calls.Load(); b != 1 {
		t.Fatalf("backup served %d calls, want 1", b)
	}

	// Resurrect the primary endpoint (a fresh ORB on the same address,
	// same key) and let the down window expire.
	revived := &replicaNode{orb: New()}
	t.Cleanup(revived.orb.Shutdown)
	revived.orb.RegisterServantWithKey("svc", "IDL:test/Replica:1.0", ServantFunc(
		func(context.Context, string, *cdr.Decoder) ([]byte, error) {
			revived.calls.Add(1)
			return []byte("ok"), nil
		}))
	if _, err := revived.orb.Listen(endpointHost(ep1)); err != nil {
		t.Skipf("cannot rebind %s: %v", ep1, err)
	}
	time.Sleep(40 * time.Millisecond) // > max reconnect backoff

	for i := 0; i < 5; i++ {
		if _, err := client.Invoke(ctx, ref, "work", nil); err != nil {
			t.Fatal(err)
		}
	}
	if r := revived.calls.Load(); r != 0 {
		t.Fatalf("revived primary served %d calls; affinity should stick to the backup", r)
	}
	if b := backup.calls.Load(); b != 6 {
		t.Fatalf("backup served %d calls, want 6", b)
	}
}

// TestMultiProfileSharedHealthRegistry proves dial verdicts are shared:
// after one client ORB discovers a dead endpoint, a second client ORB
// wired to the same registry fails fast against it without dialing.
func TestMultiProfileSharedHealthRegistry(t *testing.T) {
	ref := deadEndpoint(t)
	hr := NewHealthRegistry()
	transport := &flakyTransport{} // counts dials; delegates to TCP
	mk := func() *ORB {
		o := New(
			WithHealthRegistry(hr),
			WithTransport(transport),
			WithReconnectBackoff(300*time.Millisecond, 300*time.Millisecond),
		)
		t.Cleanup(o.Shutdown)
		return o
	}
	a, b := mk(), mk()
	ctx := context.Background()

	if _, err := a.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTransient) {
		t.Fatalf("first client: err = %v, want TRANSIENT", err)
	}
	dialsAfterA := transport.dialCount()
	if dialsAfterA != 1 {
		t.Fatalf("dials after first client = %d, want 1", dialsAfterA)
	}

	start := time.Now()
	if _, err := b.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTransient) {
		t.Fatalf("second client: err = %v, want TRANSIENT", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("second client took %s, want shared-verdict fast fail", elapsed)
	}
	if got := transport.dialCount(); got != dialsAfterA {
		t.Fatalf("second client dialed (%d -> %d); the shared registry should have failed it fast", dialsAfterA, got)
	}
	if v := hr.Verdict(ref.Endpoint()); !v.Down || v.Failures == 0 {
		t.Fatalf("registry verdict = %+v, want down with failures", v)
	}
}

// TestMultiProfileMultiListener pins the server half: an ORB listening on
// several addresses mints references carrying every bound endpoint as a
// profile, each of which serves.
func TestMultiProfileMultiListener(t *testing.T) {
	server := New()
	defer server.Shutdown()
	ref := server.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	ep1, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if eps := server.Endpoints(); len(eps) != 2 || eps[0] != ep1 || eps[1] != ep2 {
		t.Fatalf("Endpoints() = %v, want [%s %s]", eps, ep1, ep2)
	}
	ref, _ = server.IOR(ref.Key)
	if got := ref.Endpoints(); len(got) != 2 || got[0] != ep1 || got[1] != ep2 {
		t.Fatalf("minted profiles = %v, want both listeners", got)
	}

	// Each profile works on its own.
	for i, ep := range ref.Endpoints() {
		client := isolatedClient(t)
		single := NewIOR(ref.TypeID, ref.Key, ep)
		if got, err := echoCall(t, client, single, fmt.Sprintf("via-%d", i)); err != nil || got != fmt.Sprintf("via-%d", i) {
			t.Fatalf("profile %d (%s): got %q err %v", i, ep, got, err)
		}
	}

	// ServerStats aggregates over both listeners.
	st, ok := server.ServerStats()
	if !ok || len(st.Endpoints) != 2 {
		t.Fatalf("server stats = %+v, want 2 listener endpoints", st)
	}
}

// TestMultiProfileAdvertisedEndpoints pins WithAdvertised: minted IORs
// carry the advertised endpoints (normalized to "tcp:" form), not the
// bound ones.
func TestMultiProfileAdvertisedEndpoints(t *testing.T) {
	server := New(WithAdvertised("lb.example:7411", "tcp:lb2.example:7411"))
	defer server.Shutdown()
	ref := server.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	if _, err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = server.IOR(ref.Key)
	got := ref.Endpoints()
	want := []string{"tcp:lb.example:7411", "tcp:lb2.example:7411"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("advertised profiles = %v, want %v", got, want)
	}
}

// TestMultiProfileSelectorPrefersClosedBreaker pins the breaker-aware pick
// from the ROADMAP: the primary dials fine but resets every request (so
// the dial health gate never opens — only the breaker sees the failures);
// once its circuit opens, the selector routes new invocations through the
// backup profile without burning the primary's half-open probe budget on
// regular traffic.
func TestMultiProfileSelectorPrefersClosedBreaker(t *testing.T) {
	primary, ep1 := startReplica(t, "svc")
	backup, ep2 := startReplica(t, "svc")
	// A second replicated object on the same endpoints, with no affinity
	// history, proves the routing decision comes from the breaker verdict.
	var primaryOther, backupOther atomic.Int32
	for _, n := range []struct {
		node  *replicaNode
		calls *atomic.Int32
	}{{primary, &primaryOther}, {backup, &backupOther}} {
		calls := n.calls
		n.node.orb.RegisterServantWithKey("other", "IDL:test/Replica:1.0", ServantFunc(
			func(context.Context, string, *cdr.Decoder) ([]byte, error) {
				calls.Add(1)
				return []byte("ok"), nil
			}))
	}
	ref := NewIOR("IDL:test/Replica:1.0", "svc", ep1, ep2)
	otherRef := NewIOR("IDL:test/Replica:1.0", "other", ep1, ep2)
	chaos := NewChaosTransport(nil)
	// The primary endpoint accepts connections but resets every request,
	// so the dial gate stays closed and only the breaker sees failures.
	chaos.Inject(ChaosRule{Addr: ep1, Stage: StageRequest, Reset: true})
	client := isolatedClient(t, WithTransport(chaos), WithCircuitBreaker(1, 10*time.Second))
	ctx := context.Background()

	// The invoke fails over within the call; the primary's breaker feeds
	// on the reset send and opens at the threshold.
	if _, err := client.Invoke(ctx, ref, "work", nil); err != nil {
		t.Fatal(err)
	}
	st, _ := client.EndpointStats(ep1)
	if st.Breaker != BreakerOpen {
		t.Fatalf("primary breaker = %s, want open (stats %+v)", st.Breaker, st)
	}
	probesBefore := st.BreakerProbes

	// Fresh key, no affinity: the open breaker alone must steer the
	// selector to the backup, without consuming half-open probes.
	for i := 0; i < 4; i++ {
		if _, err := client.Invoke(ctx, otherRef, "work", nil); err != nil {
			t.Fatal(err)
		}
	}
	if p, b := primaryOther.Load(), backupOther.Load(); p != 0 || b != 4 {
		t.Fatalf("fresh-key routing: primary=%d backup=%d, want 0/4 via the open-breaker verdict", p, b)
	}
	if b := backup.calls.Load(); b != 1 {
		t.Fatalf("backup served %d 'svc' calls, want 1", b)
	}
	if st, _ := client.EndpointStats(ep1); st.BreakerProbes != probesBefore {
		t.Fatalf("regular traffic consumed %d half-open probes; the selector should bypass an open breaker",
			st.BreakerProbes-probesBefore)
	}
}

// waitForConns polls until the client's pool for endpoint holds exactly n
// connections.
func waitForConns(t *testing.T, client *ORB, endpoint string, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, ok := client.EndpointStats(endpoint)
		if (ok && st.Conns == n) || (!ok && n == 0) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool for %s never reached %d conns: %+v", endpoint, n, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMultiProfileBackCompatStringForms pins the PR-3-era stringified
// surface: old-form strings parse into single-profile references, new
// single-profile references stringify byte-identically to the old form,
// and the multi-profile form round-trips.
func TestMultiProfileBackCompatStringForms(t *testing.T) {
	// A stringified reference captured from the PR-3-era implementation.
	legacy := "IOR:tcp:10.1.2.3:7411|IDL:ActivityService/Action:1.0|act-42"
	ref, err := ParseIOR(legacy)
	if err != nil {
		t.Fatal(err)
	}
	want := NewIOR("IDL:ActivityService/Action:1.0", "act-42", "tcp:10.1.2.3:7411")
	if !ref.Equal(want) {
		t.Fatalf("parsed %+v, want %+v", ref, want)
	}
	if got := ref.String(); got != legacy {
		t.Fatalf("re-stringified %q, want the PR-3 form %q", got, legacy)
	}

	multi := NewIOR("IDL:T:1.0", "k", "tcp:a:1", "tcp:b:2", "tcp:c:3")
	parsed, err := ParseIOR(multi.String())
	if err != nil || !parsed.Equal(multi) {
		t.Fatalf("multi round trip: %+v err %v", parsed, err)
	}
	if multi.String() != "IOR2:tcp:a:1,tcp:b:2,tcp:c:3|IDL:T:1.0|k" {
		t.Fatalf("multi form = %q", multi.String())
	}
}

// TestMultiProfileBackCompatCDR pins the PR-3-era wire surface: the legacy
// three-string CDR layout still decodes, new single-profile references
// encode byte-identically to it, and the multi-profile layout round-trips
// through a stream that also carries neighbouring fields.
func TestMultiProfileBackCompatCDR(t *testing.T) {
	// Bytes as the PR-3 encoder would have written them: TypeID, endpoint,
	// key as three CDR strings.
	legacy := cdr.NewEncoder(64)
	legacy.WriteString("IDL:T:1.0")
	legacy.WriteString("tcp:10.0.0.1:9")
	legacy.WriteString("key-1")

	ref := NewIOR("IDL:T:1.0", "key-1", "tcp:10.0.0.1:9")
	e := cdr.NewEncoder(64)
	ref.Encode(e)
	if string(e.Bytes()) != string(legacy.Bytes()) {
		t.Fatalf("single-profile encoding diverged from the PR-3 layout:\n new: %x\n old: %x",
			e.Bytes(), legacy.Bytes())
	}
	got := DecodeIOR(cdr.NewDecoder(legacy.Bytes()))
	if !got.Equal(ref) {
		t.Fatalf("legacy decode = %+v, want %+v", got, ref)
	}

	// Multi-profile layout, embedded mid-stream between other fields.
	multi := NewIOR("IDL:T:1.0", "key-2", "tcp:a:1", "tcp:b:2")
	e2 := cdr.NewEncoder(64)
	e2.WriteString("before")
	multi.Encode(e2)
	e2.WriteString("after")
	d := cdr.NewDecoder(e2.Bytes())
	if s := d.ReadString(); s != "before" {
		t.Fatalf("prefix = %q", s)
	}
	got2 := DecodeIOR(d)
	if d.Err() != nil || !got2.Equal(multi) {
		t.Fatalf("multi decode = %+v err %v", got2, d.Err())
	}
	if s := d.ReadString(); s != "after" || d.Err() != nil {
		t.Fatalf("suffix = %q err %v", s, d.Err())
	}
}

// TestMultiProfileNameRebindStaleRef covers the stale-reference lifecycle
// against the name service: a client resolves a multi-profile reference,
// the server rebinds the name to a replacement object on fresh endpoints
// and the old ones die; the held reference now fails, and re-resolving
// through the (still reachable) name service yields a working reference —
// the resolve-retry path operators are told to implement.
func TestMultiProfileNameRebindStaleRef(t *testing.T) {
	ctx := context.Background()

	// Naming runs on its own node so it survives the app nodes dying.
	nsNode := New()
	defer nsNode.Shutdown()
	ns := NewNameServer()
	ns.Serve(nsNode)
	nsEp, err := nsNode.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Generation 1 of the service: two listeners, bound under one name.
	gen1, gen1ep := startReplica(t, "svc")
	gen1ref := NewIOR("IDL:test/Replica:1.0", "svc", gen1ep)

	client := isolatedClient(t)
	naming := NewNameClient(client, NameServiceAt(nsEp))
	if err := naming.Bind(ctx, "services/replicated", gen1ref); err != nil {
		t.Fatal(err)
	}
	held, err := naming.Resolve(ctx, "services/replicated")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Invoke(ctx, held, "work", nil); err != nil {
		t.Fatal(err)
	}

	// Generation 2 replaces generation 1: new nodes, new multi-profile
	// reference, rebound under the same name; generation 1 dies.
	gen2a, ep2a := startReplica(t, "svc")
	gen2b, ep2b := startReplica(t, "svc")
	gen2ref := NewIOR("IDL:test/Replica:1.0", "svc", ep2a, ep2b)
	if err := naming.Bind(ctx, "services/replicated", gen2ref); err != nil {
		t.Fatal(err)
	}
	gen1.orb.Shutdown()
	waitForConns(t, client, gen1ep, 0)

	// The held reference is stale: every profile is dead.
	if _, err := client.Invoke(ctx, held, "work", nil); !IsSystem(err, CodeTransient) {
		t.Fatalf("stale ref: err = %v, want TRANSIENT", err)
	}

	// Resolve-retry: a fresh resolve returns the rebound reference, which
	// works (and carries both new profiles).
	fresh, err := naming.Resolve(ctx, "services/replicated")
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.Equal(gen2ref) {
		t.Fatalf("re-resolved %+v, want %+v", fresh, gen2ref)
	}
	if _, err := client.Invoke(ctx, fresh, "work", nil); err != nil {
		t.Fatalf("invoke after resolve-retry: %v", err)
	}
	if a, b := gen2a.calls.Load(), gen2b.calls.Load(); a+b != 1 {
		t.Fatalf("generation-2 calls = %d+%d, want exactly 1", a, b)
	}
}
