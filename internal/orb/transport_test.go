package orb

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// startServer spins up an ORB serving one servant and returns the client's
// view of it.
func startServer(t *testing.T, s Servant) (*ORB, IOR) {
	t.Helper()
	srv := New()
	t.Cleanup(srv.Shutdown)
	ref := srv.RegisterServant("IDL:test/Echo:1.0", s)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = srv.IOR(ref.Key)
	return srv, ref
}

// countingServant replies "pong" after an optional delay, counting dispatches.
type countingServant struct {
	delay time.Duration
	calls atomic.Int32
}

func (s *countingServant) Dispatch(ctx context.Context, op string, in *cdr.Decoder) ([]byte, error) {
	s.calls.Add(1)
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
		}
	}
	return []byte("pong"), nil
}

// TestPoolGrowsToBoundAndMultiplexes drives concurrent invocations through
// a bounded pool and checks the pool never exceeds its bound while still
// serving everything.
func TestPoolGrowsToBoundAndMultiplexes(t *testing.T) {
	_, ref := startServer(t, &countingServant{delay: 30 * time.Millisecond})
	client := New(WithPoolSize(3))
	defer client.Shutdown()

	const calls = 12
	var over atomic.Bool
	stop := make(chan struct{})
	watched := make(chan struct{})
	go func() {
		defer close(watched)
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
			if st, ok := client.EndpointStats(ref.Endpoint()); ok && st.Conns > 3 {
				over.Store(true)
			}
		}
	}()

	var wg sync.WaitGroup
	ctx := context.Background()
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = client.Invoke(ctx, ref, "ping", nil)
		}()
	}
	wg.Wait()
	close(stop)
	<-watched

	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if over.Load() {
		t.Fatal("pool exceeded its bound of 3 connections")
	}
	st, ok := client.EndpointStats(ref.Endpoint())
	if !ok {
		t.Fatal("no pool stats for endpoint")
	}
	if st.Conns < 2 || st.Conns > 3 {
		t.Fatalf("pool holds %d conns after concurrent burst, want 2..3", st.Conns)
	}
	if st.Pending != 0 {
		t.Fatalf("pool reports %d pending after quiesce", st.Pending)
	}
}

// TestPoolSizeOneKeepsSingleConnection pins the backwards-compatible
// single-connection mode.
func TestPoolSizeOneKeepsSingleConnection(t *testing.T) {
	_, ref := startServer(t, &countingServant{delay: 10 * time.Millisecond})
	client := New(WithPoolSize(1))
	defer client.Shutdown()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Invoke(context.Background(), ref, "ping", nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if st, _ := client.EndpointStats(ref.Endpoint()); st.Conns != 1 {
		t.Fatalf("pool holds %d conns, want exactly 1", st.Conns)
	}
}

// deadEndpoint reserves a port with nothing listening on it.
func deadEndpoint(t *testing.T) IOR {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return NewIOR("IDL:test/Echo:1.0", "nobody", "tcp:"+addr)
}

// TestPoolFailsFastWhileEndpointDown checks the health gate: after a dial
// failure the endpoint is marked down and calls fail immediately without
// re-dialing.
func TestPoolFailsFastWhileEndpointDown(t *testing.T) {
	ref := deadEndpoint(t)
	client := New(
		WithHealthRegistry(NewHealthRegistry()),
		WithReconnectBackoff(500*time.Millisecond, 500*time.Millisecond),
	)
	defer client.Shutdown()
	ctx := context.Background()

	if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTransient) {
		t.Fatalf("first call: err = %v, want TRANSIENT", err)
	}
	start := time.Now()
	_, err := client.Invoke(ctx, ref, "ping", nil)
	if !IsSystem(err, CodeTransient) {
		t.Fatalf("second call: err = %v, want TRANSIENT", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("second call took %s; the health gate should fail fast", elapsed)
	}
	st, ok := client.EndpointStats(ref.Endpoint())
	if !ok || !st.Down || st.Failures == 0 {
		t.Fatalf("stats = %+v, want down with failures recorded", st)
	}
}

// flakyTransport fails the first n dials, then delegates to TCP. It counts
// dial attempts so tests can prove the health gate suppressed re-dialing.
type flakyTransport struct {
	mu       sync.Mutex
	failures int
	dials    int
}

func (f *flakyTransport) Dial(ctx context.Context, addr string) (Conn, error) {
	f.mu.Lock()
	f.dials++
	fail := f.failures > 0
	if fail {
		f.failures--
	}
	f.mu.Unlock()
	if fail {
		return nil, errors.New("synthetic dial failure")
	}
	return TCPTransport{}.Dial(ctx, addr)
}

func (f *flakyTransport) dialCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dials
}

// TestPoolReconnectsAfterBackoffWindow proves the reconnect lifecycle: a
// failed dial opens the down window (no dials during it), and the first
// call after the window probes again and succeeds.
func TestPoolReconnectsAfterBackoffWindow(t *testing.T) {
	_, ref := startServer(t, &countingServant{})
	flaky := &flakyTransport{failures: 1}
	client := New(
		WithHealthRegistry(NewHealthRegistry()),
		WithTransport(flaky),
		WithReconnectBackoff(30*time.Millisecond, 30*time.Millisecond),
	)
	defer client.Shutdown()
	ctx := context.Background()

	if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTransient) {
		t.Fatalf("call during synthetic failure: err = %v, want TRANSIENT", err)
	}
	if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTransient) {
		t.Fatalf("call during down window: err = %v, want TRANSIENT", err)
	}
	if got := flaky.dialCount(); got != 1 {
		t.Fatalf("dials during down window = %d, want 1 (fail fast, no re-dial)", got)
	}

	time.Sleep(40 * time.Millisecond) // let the window expire
	body, err := client.Invoke(ctx, ref, "ping", nil)
	if err != nil {
		t.Fatalf("call after window: %v", err)
	}
	if string(body) != "pong" {
		t.Fatalf("body = %q", body)
	}
	if got := flaky.dialCount(); got != 2 {
		t.Fatalf("dials after recovery = %d, want 2", got)
	}
	if st, _ := client.EndpointStats(ref.Endpoint()); st.Down || st.Failures != 0 {
		t.Fatalf("stats after recovery = %+v, want healthy", st)
	}
}

// blockingFailTransport takes delay per dial attempt and always fails.
type blockingFailTransport struct {
	mu    sync.Mutex
	delay time.Duration
	dials int
}

func (f *blockingFailTransport) Dial(ctx context.Context, addr string) (Conn, error) {
	f.mu.Lock()
	f.dials++
	f.mu.Unlock()
	time.Sleep(f.delay)
	return nil, errors.New("synthetic dial failure")
}

func (f *blockingFailTransport) dialCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dials
}

// TestPoolProbeIsSingleFlight proves that when the down window expires,
// exactly one of many concurrent callers re-probes the endpoint; the rest
// wait for its verdict instead of bursting dials at a recovering peer.
func TestPoolProbeIsSingleFlight(t *testing.T) {
	ref := deadEndpoint(t)
	transport := &blockingFailTransport{delay: 30 * time.Millisecond}
	client := New(
		WithHealthRegistry(NewHealthRegistry()),
		WithTransport(transport),
		WithReconnectBackoff(30*time.Millisecond, 30*time.Millisecond),
	)
	defer client.Shutdown()
	ctx := context.Background()

	// Open the down window.
	if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTransient) {
		t.Fatalf("first call: err = %v, want TRANSIENT", err)
	}
	time.Sleep(40 * time.Millisecond) // let the window expire

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTransient) {
				t.Errorf("probe-window call: err = %v, want TRANSIENT", err)
			}
		}()
	}
	wg.Wait()
	if got := transport.dialCount(); got != 2 {
		t.Fatalf("dials = %d, want 2 (initial failure + one single-flight probe)", got)
	}
}

// TestPoolWaiterHonorsContextDeadline proves a caller waiting on someone
// else's in-flight dial is released at its own deadline, not the dialer's.
func TestPoolWaiterHonorsContextDeadline(t *testing.T) {
	ref := deadEndpoint(t)
	client := New(
		WithHealthRegistry(NewHealthRegistry()),
		WithTransport(&blockingFailTransport{delay: 2 * time.Second}),
		WithPoolSize(1),
	)
	defer client.Shutdown()

	// Occupy the single dial slot with a patient caller.
	go func() {
		_, _ = client.Invoke(context.Background(), ref, "ping", nil)
	}()
	time.Sleep(20 * time.Millisecond) // let the dial get in flight

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.Invoke(ctx, ref, "ping", nil)
	elapsed := time.Since(start)
	if !IsSystem(err, CodeTransient) {
		t.Fatalf("err = %v, want TRANSIENT", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("waiter released after %s; it should unblock at its own 50ms deadline", elapsed)
	}
}

// slowDialTransport waits delay before dialing TCP, honouring ctx.
type slowDialTransport struct {
	delay time.Duration
}

func (f slowDialTransport) Dial(ctx context.Context, addr string) (Conn, error) {
	select {
	case <-time.After(f.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return TCPTransport{}.Dial(ctx, addr)
}

// TestPoolCanceledCallerDoesNotPoisonHealth proves a dial aborted by the
// caller's own context (a cancelled straggler, an expired deadline) leaves
// the endpoint's health gate untouched: the next caller connects normally.
func TestPoolCanceledCallerDoesNotPoisonHealth(t *testing.T) {
	_, ref := startServer(t, &countingServant{})
	client := New(
		WithTransport(slowDialTransport{delay: 80 * time.Millisecond}),
		WithReconnectBackoff(time.Second, time.Second),
	)
	defer client.Shutdown()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	_, err := client.Invoke(ctx, ref, "ping", nil)
	cancel()
	if !IsSystem(err, CodeTransient) && !IsSystem(err, CodeTimeout) {
		t.Fatalf("impatient caller: err = %v, want TRANSIENT or TIMEOUT", err)
	}

	if _, err := client.Invoke(context.Background(), ref, "ping", nil); err != nil {
		t.Fatalf("next caller against a healthy endpoint: %v", err)
	}
	if st, _ := client.EndpointStats(ref.Endpoint()); st.Down || st.Failures != 0 {
		t.Fatalf("stats = %+v; a caller's cancellation must not open the down window", st)
	}
}

// TestDialTimeoutAppliesUnderCallTimeout proves WithDialTimeout bounds the
// dial even though invokeTCP installs the (longer) call deadline first.
func TestDialTimeoutAppliesUnderCallTimeout(t *testing.T) {
	ref := deadEndpoint(t)
	client := New(
		WithHealthRegistry(NewHealthRegistry()),
		WithTransport(slowDialTransport{delay: 30 * time.Second}),
		WithDialTimeout(50*time.Millisecond),
		WithCallTimeout(20*time.Second),
	)
	defer client.Shutdown()

	start := time.Now()
	_, err := client.Invoke(context.Background(), ref, "ping", nil)
	if !IsSystem(err, CodeTransient) {
		t.Fatalf("err = %v, want TRANSIENT", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dial ran %s; WithDialTimeout(50ms) should have bounded it", elapsed)
	}
}

// TestPoolCreationRefusedAfterShutdown pins the Shutdown/Invoke race
// guard: no new pool (and thus no unclosable connection) can be created
// once Shutdown has swapped the pool map out.
func TestPoolCreationRefusedAfterShutdown(t *testing.T) {
	o := New()
	o.Shutdown()
	if _, err := o.pool("127.0.0.1:1", "tcp:127.0.0.1:1"); !IsSystem(err, CodeCommFailure) {
		t.Fatalf("pool after shutdown: err = %v, want COMM_FAILURE", err)
	}
}

// TestReconnectBackoffOptionValidation pins the min/max normalisation.
func TestReconnectBackoffOptionValidation(t *testing.T) {
	o := New(WithReconnectBackoff(5*time.Second, time.Second))
	defer o.Shutdown()
	if o.backoffMin != 5*time.Second || o.backoffMax != 5*time.Second {
		t.Fatalf("backoff = [%s, %s], want max raised to min [5s, 5s]", o.backoffMin, o.backoffMax)
	}
}

// TestPoolLeastPendingPrefersIdleConn checks the pick: with the pool at
// its bound, a new call lands on the connection with the fewest in-flight
// requests.
func TestPoolLeastPendingPrefersIdleConn(t *testing.T) {
	_, ref := startServer(t, &countingServant{delay: 40 * time.Millisecond})
	client := New(WithPoolSize(2))
	defer client.Shutdown()
	ctx := context.Background()

	// Fill the pool with two in-flight calls (each dials one conn).
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Invoke(ctx, ref, "ping", nil); err != nil {
				t.Error(err)
			}
		}()
	}
	// Wait until both connections exist and carry load.
	deadline := time.Now().Add(time.Second)
	for {
		st, _ := client.EndpointStats(ref.Endpoint())
		if st.Conns == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never reached 2 conns: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	pool, err := client.pool(endpointHost(ref.Endpoint()), ref.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	pool.mu.Lock()
	c := pool.leastPendingLocked()
	load := c.load()
	pool.mu.Unlock()
	if load > 1 {
		t.Fatalf("least-pending pick carries %d in-flight, want <= 1", load)
	}
	wg.Wait()
}

// TestPoolShutdownFailsPendingCalls verifies Shutdown rejects new calls
// and fails in-flight ones with COMM_FAILURE.
func TestPoolShutdownFailsPendingCalls(t *testing.T) {
	_, ref := startServer(t, &countingServant{delay: 2 * time.Second})
	client := New()
	ctx := context.Background()

	errCh := make(chan error, 1)
	go func() {
		_, err := client.Invoke(ctx, ref, "ping", nil)
		errCh <- err
	}()
	// Let the call get in flight, then pull the rug.
	time.Sleep(50 * time.Millisecond)
	client.Shutdown()
	select {
	case err := <-errCh:
		if !IsSystem(err, CodeCommFailure) {
			t.Fatalf("in-flight call: err = %v, want COMM_FAILURE", err)
		}
	case <-time.After(time.Second):
		t.Fatal("in-flight call not failed by Shutdown")
	}
	if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeCommFailure) {
		t.Fatalf("post-shutdown call: err = %v, want COMM_FAILURE", err)
	}
}

// TestPoolStatsUnknownEndpoint pins the miss case.
func TestPoolStatsUnknownEndpoint(t *testing.T) {
	client := New()
	defer client.Shutdown()
	if _, ok := client.EndpointStats("tcp:127.0.0.1:1"); ok {
		t.Fatal("stats reported for an endpoint never invoked")
	}
}

// TestBackoffGrowsAndCaps pins the jittered-backoff arithmetic.
func TestBackoffGrowsAndCaps(t *testing.T) {
	o := New(WithReconnectBackoff(40*time.Millisecond, 160*time.Millisecond))
	defer o.Shutdown()
	p := newEndpointPool(o, "tcp:x", "x")
	for failures, want := range map[int]time.Duration{
		1: 40 * time.Millisecond,
		2: 80 * time.Millisecond,
		3: 160 * time.Millisecond,
		9: 160 * time.Millisecond, // capped
	} {
		for i := 0; i < 20; i++ {
			d := p.backoffFor(failures)
			if d < want/2 || d > want {
				t.Fatalf("failures=%d: backoff %s outside [%s, %s]", failures, d, want/2, want)
			}
		}
	}
}

// TestPoolConcurrentEndpoints exercises pools for several endpoints at
// once — the remote-fanout shape — and checks isolation between them.
func TestPoolConcurrentEndpoints(t *testing.T) {
	const endpoints = 3
	refs := make([]IOR, endpoints)
	for i := range refs {
		_, refs[i] = startServer(t, &countingServant{delay: 5 * time.Millisecond})
	}
	client := New(WithPoolSize(2))
	defer client.Shutdown()

	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		ref := refs[i%endpoints]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Invoke(context.Background(), ref, "ping", nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	for i, ref := range refs {
		st, ok := client.EndpointStats(ref.Endpoint())
		if !ok || st.Conns == 0 || st.Conns > 2 {
			t.Fatalf("endpoint %d stats = %+v, want 1..2 conns", i, st)
		}
	}
}
