package orb

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBreakerOpensAfterThreshold drives consecutive failures into a
// breaker-equipped pool and checks the circuit opens and fails calls fast
// with the breaker's own TRANSIENT detail.
func TestBreakerOpensAfterThreshold(t *testing.T) {
	ref := deadEndpoint(t)
	transport := &blockingFailTransport{}
	client := New(
		WithHealthRegistry(NewHealthRegistry()),
		WithTransport(transport),
		WithCircuitBreaker(2, time.Minute),
		WithReconnectBackoff(time.Millisecond, time.Millisecond),
	)
	defer client.Shutdown()
	ctx := context.Background()

	// Two consecutive failures cross the threshold.
	for i := 0; i < 2; i++ {
		if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTransient) {
			t.Fatalf("failure %d: err = %v, want TRANSIENT", i+1, err)
		}
		time.Sleep(3 * time.Millisecond) // let the health-gate window lapse
	}
	dialsWhenOpened := transport.dialCount()

	_, err := client.Invoke(ctx, ref, "ping", nil)
	if !IsSystem(err, CodeTransient) || !strings.Contains(err.Error(), "circuit breaker") {
		t.Fatalf("call with open circuit: err = %v, want breaker TRANSIENT", err)
	}
	if got := transport.dialCount(); got != dialsWhenOpened {
		t.Fatalf("open circuit still dialed (%d -> %d dials)", dialsWhenOpened, got)
	}
	st, _ := client.EndpointStats(ref.Endpoint())
	if st.Breaker != BreakerOpen || st.BreakerOpens != 1 {
		t.Fatalf("stats = %+v, want open breaker with one open transition", st)
	}
}

// TestBreakerHalfOpenAdmitsSingleProbe proves the half-open window rations
// recovery: of many concurrent callers after the open window lapses,
// exactly one reaches the network as a probe; the rest fail fast.
func TestBreakerHalfOpenAdmitsSingleProbe(t *testing.T) {
	ref := deadEndpoint(t)
	transport := &blockingFailTransport{delay: 50 * time.Millisecond}
	client := New(
		WithHealthRegistry(NewHealthRegistry()),
		WithTransport(transport),
		WithCircuitBreaker(1, 60*time.Millisecond),
		WithReconnectBackoff(time.Millisecond, time.Millisecond),
	)
	defer client.Shutdown()
	ctx := context.Background()

	// One failure opens the circuit (threshold 1).
	if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTransient) {
		t.Fatalf("opening failure: err = %v, want TRANSIENT", err)
	}
	time.Sleep(80 * time.Millisecond) // open window lapses; health gate long lapsed

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTransient) {
				t.Errorf("half-open call: err = %v, want TRANSIENT", err)
			}
		}()
	}
	wg.Wait()

	if got := transport.dialCount(); got != 2 {
		t.Fatalf("dials = %d, want 2 (the opening failure + one half-open probe)", got)
	}
	st, _ := client.EndpointStats(ref.Endpoint())
	if st.BreakerProbes != 1 {
		t.Fatalf("stats = %+v, want exactly one probe admitted", st)
	}
	if st.Breaker != BreakerOpen || st.BreakerOpens != 2 {
		t.Fatalf("stats = %+v, want re-opened circuit after the failed probe", st)
	}
}

// TestBreakerStateTransitions walks the full lifecycle through
// EndpointStats: closed + down on failures, open at the threshold,
// half-open once the window lapses, closed again after a successful probe
// (with the dial health gate recovering alongside).
func TestBreakerStateTransitions(t *testing.T) {
	_, ref := startServer(t, &countingServant{})
	flaky := &flakyTransport{failures: 2}
	client := New(
		WithHealthRegistry(NewHealthRegistry()),
		WithTransport(flaky),
		WithCircuitBreaker(2, 80*time.Millisecond),
		WithReconnectBackoff(time.Millisecond, time.Millisecond),
	)
	defer client.Shutdown()
	ctx := context.Background()

	// Failure 1: dial failure — breaker still closed, health gate down.
	if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTransient) {
		t.Fatalf("failure 1: %v", err)
	}
	st, _ := client.EndpointStats(ref.Endpoint())
	if st.Breaker != BreakerClosed || !st.Down {
		t.Fatalf("after failure 1: stats = %+v, want closed breaker + down health gate", st)
	}

	// Failure 2 crosses the threshold: open.
	time.Sleep(3 * time.Millisecond)
	if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTransient) {
		t.Fatalf("failure 2: %v", err)
	}
	st, _ = client.EndpointStats(ref.Endpoint())
	if st.Breaker != BreakerOpen {
		t.Fatalf("after failure 2: stats = %+v, want open breaker", st)
	}

	// The open window lapses: stats report half-open before any call.
	time.Sleep(100 * time.Millisecond)
	st, _ = client.EndpointStats(ref.Endpoint())
	if st.Breaker != BreakerHalfOpen {
		t.Fatalf("after window: stats = %+v, want half-open breaker", st)
	}

	// The probe succeeds (flaky dials exhausted): closed and healthy.
	body, err := client.Invoke(ctx, ref, "ping", nil)
	if err != nil || string(body) != "pong" {
		t.Fatalf("probe: body = %q, err = %v", body, err)
	}
	st, _ = client.EndpointStats(ref.Endpoint())
	if st.Breaker != BreakerClosed || st.Down || st.Failures != 0 {
		t.Fatalf("after probe success: stats = %+v, want closed + recovered", st)
	}
	if st.BreakerProbes != 1 || st.BreakerOpens != 1 {
		t.Fatalf("stats = %+v, want one open and one probe across the lifecycle", st)
	}

	// The circuit stays closed for ordinary traffic.
	if _, err := client.Invoke(ctx, ref, "ping", nil); err != nil {
		t.Fatalf("post-recovery call: %v", err)
	}
}

// switchableTransport blocks for delay then fails while fail is set, and
// delegates to TCP once cleared.
type switchableTransport struct {
	mu    sync.Mutex
	fail  bool
	delay time.Duration
}

func (f *switchableTransport) Dial(ctx context.Context, addr string) (Conn, error) {
	f.mu.Lock()
	fail, delay := f.fail, f.delay
	f.mu.Unlock()
	if fail {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
		}
		return nil, context.DeadlineExceeded
	}
	return TCPTransport{}.Dial(ctx, addr)
}

func (f *switchableTransport) setFail(v bool) {
	f.mu.Lock()
	f.fail = v
	f.mu.Unlock()
}

// TestBreakerProbeAbandonedByCallerReleasesSlot pins the probe-slot leak:
// a half-open probe whose caller dies before the outcome is known can
// never report back, so its slot must be released — otherwise every later
// call fails with "probe already in flight" forever, even after the
// endpoint recovers.
func TestBreakerProbeAbandonedByCallerReleasesSlot(t *testing.T) {
	_, ref := startServer(t, &countingServant{})
	tr := &switchableTransport{fail: true, delay: 100 * time.Millisecond}
	client := New(
		WithHealthRegistry(NewHealthRegistry()),
		WithTransport(tr),
		WithCircuitBreaker(1, 30*time.Millisecond),
		WithReconnectBackoff(time.Millisecond, time.Millisecond),
	)
	defer client.Shutdown()

	// Open the circuit (threshold 1).
	if _, err := client.Invoke(context.Background(), ref, "ping", nil); !IsSystem(err, CodeTransient) {
		t.Fatalf("opening failure: err = %v, want TRANSIENT", err)
	}
	time.Sleep(40 * time.Millisecond) // half-open

	// The probe's caller dies while the dial is still blocked.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	_, err := client.Invoke(ctx, ref, "ping", nil)
	cancel()
	if err == nil {
		t.Fatal("abandoned probe unexpectedly succeeded")
	}

	// The endpoint recovers; a later caller must be able to probe and
	// close the circuit — with a leaked slot this loop never succeeds.
	tr.setFail(false)
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, err := client.Invoke(context.Background(), ref, "ping", nil); err == nil {
			break
		}
		if time.Now().After(deadline) {
			st, _ := client.EndpointStats(ref.Endpoint())
			t.Fatalf("endpoint never recovered after abandoned probe; stats = %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st, _ := client.EndpointStats(ref.Endpoint()); st.Breaker != BreakerClosed {
		t.Fatalf("stats = %+v, want closed circuit after recovery", st)
	}
}

// TestBreakerIgnoresCallerCancellation proves a call abandoned by its own
// caller — the routine advance-cancellation of parallel delivery — does
// not count against a healthy endpoint: the circuit stays closed.
func TestBreakerIgnoresCallerCancellation(t *testing.T) {
	_, ref := startServer(t, &countingServant{delay: 200 * time.Millisecond})
	client := New(WithHealthRegistry(NewHealthRegistry()), WithCircuitBreaker(1, time.Minute))
	defer client.Shutdown()

	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		_, err := client.Invoke(ctx, ref, "ping", nil)
		cancel()
		if !IsSystem(err, CodeTimeout) && !IsSystem(err, CodeTransient) {
			t.Fatalf("impatient call %d: err = %v", i, err)
		}
	}
	st, _ := client.EndpointStats(ref.Endpoint())
	if st.Breaker != BreakerClosed || st.BreakerOpens != 0 {
		t.Fatalf("stats = %+v; caller cancellations must not open the circuit", st)
	}
	// The endpoint is fine: a patient caller succeeds.
	if _, err := client.Invoke(context.Background(), ref, "ping", nil); err != nil {
		t.Fatalf("patient call: %v", err)
	}
}

// TestBreakerRejectionsDoNotDrainRetryBudget proves gate ordering: while
// the circuit is open, fail-fast rejections come from the breaker without
// charging the retry budget.
func TestBreakerRejectionsDoNotDrainRetryBudget(t *testing.T) {
	ref := deadEndpoint(t)
	client := New(
		WithHealthRegistry(NewHealthRegistry()),
		WithTransport(&blockingFailTransport{}),
		WithCircuitBreaker(1, time.Minute),
		WithRetryBudget(0.001, 2), // ~no refill within the test: any drain is visible
		WithReconnectBackoff(time.Millisecond, time.Millisecond),
	)
	defer client.Shutdown()
	ctx := context.Background()

	// One failure opens the circuit (threshold 1) and starts the debt.
	if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTransient) {
		t.Fatalf("opening failure: err = %v, want TRANSIENT", err)
	}
	// Many open-circuit rejections: all from the breaker, none budgeted.
	for i := 0; i < 10; i++ {
		_, err := client.Invoke(ctx, ref, "ping", nil)
		if !IsSystem(err, CodeTransient) || !strings.Contains(err.Error(), "circuit breaker") {
			t.Fatalf("open-circuit call %d: err = %v, want breaker rejection", i, err)
		}
	}
	st, _ := client.EndpointStats(ref.Endpoint())
	if st.RetryExhausted != 0 {
		t.Fatalf("stats = %+v; breaker rejections must not drain the retry budget", st)
	}
}

// TestBreakerInactiveWithoutOption pins the default: no breaker state in
// stats and no breaker interference.
func TestBreakerInactiveWithoutOption(t *testing.T) {
	_, ref := startServer(t, &countingServant{})
	client := New(WithHealthRegistry(NewHealthRegistry()))
	defer client.Shutdown()
	if _, err := client.Invoke(context.Background(), ref, "ping", nil); err != nil {
		t.Fatal(err)
	}
	if st, _ := client.EndpointStats(ref.Endpoint()); st.Breaker != BreakerInactive {
		t.Fatalf("stats = %+v, want inactive breaker by default", st)
	}
}

// TestRetryBudgetFailsFastWhenExhausted proves the token bucket: after a
// failure puts the endpoint in debt, only burst further attempts reach the
// pool; the rest are rejected without touching the health gate or the
// network.
func TestRetryBudgetFailsFastWhenExhausted(t *testing.T) {
	ref := deadEndpoint(t)
	transport := &blockingFailTransport{}
	client := New(
		WithHealthRegistry(NewHealthRegistry()),
		WithTransport(transport),
		WithRetryBudget(0.001, 2), // ~no refill within the test: 2 post-failure attempts
		WithReconnectBackoff(time.Minute, time.Minute),
	)
	defer client.Shutdown()
	ctx := context.Background()

	// The first call is free (healthy endpoint) and fails: debt begins.
	if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTransient) {
		t.Fatalf("first call: err = %v, want TRANSIENT", err)
	}
	// Two budgeted attempts pass the bucket (and fail fast on the health
	// gate without dialing).
	for i := 0; i < 2; i++ {
		if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTransient) {
			t.Fatalf("budgeted attempt %d: err = %v, want TRANSIENT", i+1, err)
		}
	}
	// The bucket is empty: the rejection carries the budget detail.
	_, err := client.Invoke(ctx, ref, "ping", nil)
	if !IsSystem(err, CodeTransient) || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("exhausted attempt: err = %v, want retry-budget TRANSIENT", err)
	}
	if got := transport.dialCount(); got != 1 {
		t.Fatalf("dials = %d, want 1 (debt attempts gated before the network)", got)
	}
	st, _ := client.EndpointStats(ref.Endpoint())
	if st.RetryExhausted == 0 {
		t.Fatalf("stats = %+v, want exhausted rejections recorded", st)
	}
}

// TestRetryBudgetRefillsAndClearsOnSuccess proves both recovery paths: the
// bucket refills with time, and one success returns the endpoint to the
// free regime.
func TestRetryBudgetRefillsAndClearsOnSuccess(t *testing.T) {
	_, ref := startServer(t, &countingServant{})
	flaky := &flakyTransport{failures: 1}
	client := New(
		WithHealthRegistry(NewHealthRegistry()),
		WithTransport(flaky),
		WithRetryBudget(100, 1), // one token, refills every 10ms
		WithReconnectBackoff(time.Millisecond, time.Millisecond),
	)
	defer client.Shutdown()
	ctx := context.Background()

	// Fail once: in debt.
	if _, err := client.Invoke(ctx, ref, "ping", nil); !IsSystem(err, CodeTransient) {
		t.Fatalf("first call: err = %v, want TRANSIENT", err)
	}
	// Burn the single token, then observe an exhausted rejection.
	_, _ = client.Invoke(ctx, ref, "ping", nil)
	if _, err := client.Invoke(ctx, ref, "ping", nil); err == nil ||
		!strings.Contains(err.Error(), "retry budget") {
		// The burn attempt may itself have succeeded (flaky only fails the
		// first dial); in that case debt is already cleared — also fine.
		if err != nil {
			t.Fatalf("post-burn call: %v", err)
		}
	}
	// Refill restores attempts; the endpoint is healthy now, so an attempt
	// succeeds and clears the debt entirely.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := client.Invoke(ctx, ref, "ping", nil); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("budget never refilled to let the endpoint recover")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Free regime again: a burst passes untouched.
	for i := 0; i < 5; i++ {
		if _, err := client.Invoke(ctx, ref, "ping", nil); err != nil {
			t.Fatalf("healthy call %d: %v", i, err)
		}
	}
}

// TestPoolWarmPreDials proves WithPoolWarm: after a single invocation the
// pool grows to the warm target in the background, with no further calls.
func TestPoolWarmPreDials(t *testing.T) {
	_, ref := startServer(t, &countingServant{})
	counter := &flakyTransport{} // counts dials, never fails
	client := New(
		WithHealthRegistry(NewHealthRegistry()),
		WithTransport(counter),
		WithPoolSize(3),
		WithPoolWarm(3),
	)
	defer client.Shutdown()

	if _, err := client.Invoke(context.Background(), ref, "ping", nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, _ := client.EndpointStats(ref.Endpoint())
		if st.Conns == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never warmed to 3 conns: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Warm-up respects the bound: no extra dials beyond the target.
	time.Sleep(20 * time.Millisecond)
	if got := counter.dialCount(); got != 3 {
		t.Fatalf("dials = %d, want exactly 3", got)
	}
}

// TestPoolWarmCapsAtPoolSize pins the warm target clamp.
func TestPoolWarmCapsAtPoolSize(t *testing.T) {
	_, ref := startServer(t, &countingServant{})
	client := New(WithHealthRegistry(NewHealthRegistry()), WithPoolSize(2), WithPoolWarm(8))
	defer client.Shutdown()

	if _, err := client.Invoke(context.Background(), ref, "ping", nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, _ := client.EndpointStats(ref.Endpoint())
		if st.Conns == 2 && st.Dialing == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool state %+v, want warm stop at the pool bound of 2", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if st, _ := client.EndpointStats(ref.Endpoint()); st.Conns != 2 {
		t.Fatalf("pool holds %d conns, want the bound of 2", st.Conns)
	}
}

// TestPoolWarmStopsOnDialFailure proves warm-up hands a refusing endpoint
// to the health gate instead of spinning dials at it.
func TestPoolWarmStopsOnDialFailure(t *testing.T) {
	ref := deadEndpoint(t)
	transport := &blockingFailTransport{}
	client := New(
		WithHealthRegistry(NewHealthRegistry()),
		WithTransport(transport),
		WithPoolSize(4),
		WithPoolWarm(4),
		WithReconnectBackoff(time.Minute, time.Minute),
	)
	defer client.Shutdown()

	if _, err := client.Invoke(context.Background(), ref, "ping", nil); !IsSystem(err, CodeTransient) {
		t.Fatalf("err = %v, want TRANSIENT", err)
	}
	time.Sleep(50 * time.Millisecond) // give a runaway warm loop time to misbehave
	if got := transport.dialCount(); got > 2 {
		t.Fatalf("dials = %d, want <= 2 (inline dial + at most one warm dial)", got)
	}
}
