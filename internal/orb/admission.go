package orb

import (
	"sync"
	"time"
)

// Server admission defaults, applied when WithMaxInflight is set without a
// matching WithAdmissionQueue.
const (
	// defaultShedAfter bounds how long an admitted-but-queued request may
	// wait for a dispatch slot before it is shed with TRANSIENT.
	defaultShedAfter = 100 * time.Millisecond
)

// admission is the server-side overload gate: a fixed pool of dispatch
// slots plus a bounded wait queue with deadline-aware shedding. A request
// that cannot get a slot immediately waits in the queue for at most
// shedAfter; if the queue is full or the deadline passes, the request is
// shed with a TRANSIENT system exception instead of silently piling up.
// TRANSIENT tells the caller the servant never ran, so at-least-once
// retries stay safe.
//
// The gate also bounds the server's handler goroutines: at most
// maxInflight dispatches plus queueMax waiters exist at any moment, plus
// one kicker goroutine per connection flushing shed replies through the
// connection's bounded reply queue; if that queue fills behind a client
// that has stopped draining its socket, further shed replies are dropped
// outright (see serveConn).
type admission struct {
	slots     chan struct{} // buffered to maxInflight-reserve; len = shared in-flight dispatches
	prioSlots chan struct{} // reserved for priority operations; nil = no reservation
	prioOps   map[string]bool
	queueMax  int
	shedAfter time.Duration

	mu             sync.Mutex
	queued         int
	shed           uint64
	dispatched     uint64
	prioShed       uint64
	prioDispatched uint64
}

// slotToken records which slot pool a dispatch occupies, so release
// returns it to the right pool. A plain value (not a closure) keeps the
// hot serveConn path allocation-free.
type slotToken uint8

// Slot pools a dispatch may occupy.
const (
	// slotNone means no slot was acquired.
	slotNone slotToken = iota
	// slotShared is a slot from the shared pool.
	slotShared
	// slotReserved is a slot from the priority reservation.
	slotReserved
)

// newAdmission builds the gate; maxInflight <= 0 disables admission control
// (nil gate, unbounded dispatch — the pre-admission behaviour). reserve > 0
// carves that many of the maxInflight slots out as a reservation only
// priority operations (prioOps) may use; it is clamped so at least one
// shared slot remains.
func newAdmission(maxInflight, queueMax int, shedAfter time.Duration, reserve int, prioOps map[string]bool) *admission {
	if maxInflight <= 0 {
		return nil
	}
	if queueMax <= 0 {
		queueMax = 2 * maxInflight
	}
	if shedAfter <= 0 {
		shedAfter = defaultShedAfter
	}
	if reserve >= maxInflight {
		reserve = maxInflight - 1
	}
	if reserve < 0 || len(prioOps) == 0 {
		reserve = 0
	}
	a := &admission{
		slots:     make(chan struct{}, maxInflight-reserve),
		queueMax:  queueMax,
		shedAfter: shedAfter,
	}
	if reserve > 0 {
		a.prioSlots = make(chan struct{}, reserve)
		a.prioOps = prioOps
	}
	return a
}

// isPriority reports whether the operation name (lent wire bytes) belongs
// to the priority admission class. The map lookup on string(op) compiles
// allocation-free, keeping the read loop's fast path clean.
func (a *admission) isPriority(op []byte) bool {
	return a.prioSlots != nil && a.prioOps[string(op)]
}

// tryAcquire grabs a dispatch slot without waiting: the shared pool first,
// then — for priority requests — the reservation. It returns slotNone when
// every pool the request may use is full.
func (a *admission) tryAcquire(prio bool) slotToken {
	select {
	case a.slots <- struct{}{}:
		a.mu.Lock()
		a.dispatched++
		if prio {
			a.prioDispatched++
		}
		a.mu.Unlock()
		return slotShared
	default:
	}
	if prio && a.prioSlots != nil {
		select {
		case a.prioSlots <- struct{}{}:
			a.mu.Lock()
			a.dispatched++
			a.prioDispatched++
			a.mu.Unlock()
			return slotReserved
		default:
		}
	}
	return slotNone
}

// enqueue reserves a queue seat for a request that found every slot busy.
// It reports false — shedding the request — when the queue is already full.
// Priority requests are granted extra headroom (one seat per reserved slot
// beyond the shared bound) so a queue full of first-contact work cannot
// shut recovery traffic out of the wait line too.
func (a *admission) enqueue(prio bool) bool {
	limit := a.queueMax
	if prio && a.prioSlots != nil {
		limit += cap(a.prioSlots)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.queued >= limit {
		a.shed++
		if prio {
			a.prioShed++
		}
		return false
	}
	a.queued++
	return true
}

// await blocks a queued request until a slot frees (either pool, for
// priority requests), the shed deadline passes, or the server stops. It
// returns the acquired slot's token, or slotNone when the request must be
// shed. The queue seat is released either way.
func (a *admission) await(done <-chan struct{}, prio bool) slotToken {
	timer := time.NewTimer(a.shedAfter)
	defer timer.Stop()
	tok := slotNone
	if prio && a.prioSlots != nil {
		select {
		case a.slots <- struct{}{}:
			tok = slotShared
		case a.prioSlots <- struct{}{}:
			tok = slotReserved
		case <-timer.C:
		case <-done:
		}
	} else {
		select {
		case a.slots <- struct{}{}:
			tok = slotShared
		case <-timer.C:
		case <-done:
		}
	}
	a.mu.Lock()
	a.queued--
	if tok != slotNone {
		a.dispatched++
		if prio {
			a.prioDispatched++
		}
	} else {
		a.shed++
		if prio {
			a.prioShed++
		}
	}
	a.mu.Unlock()
	return tok
}

// release returns a dispatch slot to the pool it came from.
func (a *admission) release(tok slotToken) {
	switch tok {
	case slotShared:
		<-a.slots
	case slotReserved:
		<-a.prioSlots
	}
}

// shedError is the reply body for a shed request. TRANSIENT: the servant
// never ran, so the caller may safely retry (ideally elsewhere, or later).
func (a *admission) shedError() *SystemError {
	a.mu.Lock()
	queued := a.queued
	a.mu.Unlock()
	return Systemf(CodeTransient,
		"server overloaded: %d dispatches in flight, %d/%d queued (shed after %s)",
		len(a.slots), queued, a.queueMax, a.shedAfter)
}

// ServerStats is a snapshot of the server transport's admission state, the
// server-side sibling of EndpointStats. The cumulative counters cover the
// network transport only; in-process fast-path dispatches bypass admission.
type ServerStats struct {
	// Endpoint is the primary bound listen endpoint ("tcp:host:port").
	Endpoint string
	// Endpoints lists every bound listener endpoint, in Listen order; the
	// admission gauges below aggregate over all of them (the gate is
	// shared).
	Endpoints []string
	// Conns is the number of live inbound connections across every
	// listener.
	Conns int
	// Inflight is the number of dispatches currently running.
	Inflight int
	// Queued is the number of requests waiting for a dispatch slot.
	Queued int
	// Shed is the cumulative count of requests shed with TRANSIENT.
	Shed uint64
	// Dispatched is the cumulative count of requests admitted to dispatch.
	Dispatched uint64
	// MaxInflight is the configured dispatch bound (0 = unbounded),
	// including any reserved priority slots.
	MaxInflight int
	// QueueDepth is the configured wait-queue bound.
	QueueDepth int
	// ShedAfter is the configured maximum queue wait.
	ShedAfter time.Duration
	// ReservedSlots is the number of dispatch slots reserved for the
	// priority admission class (see WithPriorityOps); 0 = no reservation.
	ReservedSlots int
	// PriorityInflight is the number of dispatches currently occupying
	// reserved slots.
	PriorityInflight int
	// PriorityDispatched is the cumulative count of priority-class requests
	// admitted to dispatch (through either slot pool).
	PriorityDispatched uint64
	// PriorityShed is the cumulative count of priority-class requests shed
	// with TRANSIENT.
	PriorityShed uint64
}

// ServerStats reports the server transport's admission state, aggregated
// over every listener. It returns false until Listen has been called.
func (o *ORB) ServerStats() (ServerStats, bool) {
	o.mu.RLock()
	srvs := o.srvs
	bound := append([]string(nil), o.bound...)
	adm := o.adm
	o.mu.RUnlock()
	if len(srvs) == 0 {
		return ServerStats{}, false
	}
	st := ServerStats{Endpoint: bound[0], Endpoints: bound}
	for _, srv := range srvs {
		srv.mu.Lock()
		st.Conns += len(srv.conns)
		srv.mu.Unlock()
	}
	if a := adm; a != nil {
		a.mu.Lock()
		st.Queued = a.queued
		st.Shed = a.shed
		st.Dispatched = a.dispatched
		st.PriorityDispatched = a.prioDispatched
		st.PriorityShed = a.prioShed
		a.mu.Unlock()
		st.Inflight = len(a.slots)
		st.MaxInflight = cap(a.slots)
		st.QueueDepth = a.queueMax
		st.ShedAfter = a.shedAfter
		if a.prioSlots != nil {
			st.ReservedSlots = cap(a.prioSlots)
			st.PriorityInflight = len(a.prioSlots)
			st.Inflight += len(a.prioSlots)
			st.MaxInflight += cap(a.prioSlots)
		}
	}
	return st, true
}
