package orb

import (
	"sync"
	"time"
)

// Server admission defaults, applied when WithMaxInflight is set without a
// matching WithAdmissionQueue.
const (
	// defaultShedAfter bounds how long an admitted-but-queued request may
	// wait for a dispatch slot before it is shed with TRANSIENT.
	defaultShedAfter = 100 * time.Millisecond
)

// admission is the server-side overload gate: a fixed pool of dispatch
// slots plus a bounded wait queue with deadline-aware shedding. A request
// that cannot get a slot immediately waits in the queue for at most
// shedAfter; if the queue is full or the deadline passes, the request is
// shed with a TRANSIENT system exception instead of silently piling up.
// TRANSIENT tells the caller the servant never ran, so at-least-once
// retries stay safe.
//
// The gate also bounds the server's handler goroutines: at most
// maxInflight dispatches plus queueMax waiters exist at any moment, plus
// one kicker goroutine per connection flushing shed replies through the
// connection's bounded reply queue; if that queue fills behind a client
// that has stopped draining its socket, further shed replies are dropped
// outright (see serveConn).
type admission struct {
	slots     chan struct{} // buffered to maxInflight; len = in-flight dispatches
	queueMax  int
	shedAfter time.Duration

	mu         sync.Mutex
	queued     int
	shed       uint64
	dispatched uint64
}

// newAdmission builds the gate; maxInflight <= 0 disables admission control
// (nil gate, unbounded dispatch — the pre-admission behaviour).
func newAdmission(maxInflight, queueMax int, shedAfter time.Duration) *admission {
	if maxInflight <= 0 {
		return nil
	}
	if queueMax <= 0 {
		queueMax = 2 * maxInflight
	}
	if shedAfter <= 0 {
		shedAfter = defaultShedAfter
	}
	return &admission{
		slots:     make(chan struct{}, maxInflight),
		queueMax:  queueMax,
		shedAfter: shedAfter,
	}
}

// tryAcquire grabs a dispatch slot without waiting.
func (a *admission) tryAcquire() bool {
	select {
	case a.slots <- struct{}{}:
		a.mu.Lock()
		a.dispatched++
		a.mu.Unlock()
		return true
	default:
		return false
	}
}

// enqueue reserves a queue seat for a request that found every slot busy.
// It reports false — shedding the request — when the queue is already full.
func (a *admission) enqueue() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.queued >= a.queueMax {
		a.shed++
		return false
	}
	a.queued++
	return true
}

// await blocks a queued request until a slot frees, the shed deadline
// passes, or the server stops. It reports whether a slot was acquired; on
// false the request must be shed. The queue seat is released either way.
func (a *admission) await(done <-chan struct{}) bool {
	timer := time.NewTimer(a.shedAfter)
	defer timer.Stop()
	ok := false
	select {
	case a.slots <- struct{}{}:
		ok = true
	case <-timer.C:
	case <-done:
	}
	a.mu.Lock()
	a.queued--
	if ok {
		a.dispatched++
	} else {
		a.shed++
	}
	a.mu.Unlock()
	return ok
}

// release frees a dispatch slot.
func (a *admission) release() {
	<-a.slots
}

// shedError is the reply body for a shed request. TRANSIENT: the servant
// never ran, so the caller may safely retry (ideally elsewhere, or later).
func (a *admission) shedError() *SystemError {
	a.mu.Lock()
	queued := a.queued
	a.mu.Unlock()
	return Systemf(CodeTransient,
		"server overloaded: %d dispatches in flight, %d/%d queued (shed after %s)",
		len(a.slots), queued, a.queueMax, a.shedAfter)
}

// ServerStats is a snapshot of the server transport's admission state, the
// server-side sibling of EndpointStats. The cumulative counters cover the
// network transport only; in-process fast-path dispatches bypass admission.
type ServerStats struct {
	// Endpoint is the primary bound listen endpoint ("tcp:host:port").
	Endpoint string
	// Endpoints lists every bound listener endpoint, in Listen order; the
	// admission gauges below aggregate over all of them (the gate is
	// shared).
	Endpoints []string
	// Conns is the number of live inbound connections across every
	// listener.
	Conns int
	// Inflight is the number of dispatches currently running.
	Inflight int
	// Queued is the number of requests waiting for a dispatch slot.
	Queued int
	// Shed is the cumulative count of requests shed with TRANSIENT.
	Shed uint64
	// Dispatched is the cumulative count of requests admitted to dispatch.
	Dispatched uint64
	// MaxInflight is the configured dispatch bound (0 = unbounded).
	MaxInflight int
	// QueueDepth is the configured wait-queue bound.
	QueueDepth int
	// ShedAfter is the configured maximum queue wait.
	ShedAfter time.Duration
}

// ServerStats reports the server transport's admission state, aggregated
// over every listener. It returns false until Listen has been called.
func (o *ORB) ServerStats() (ServerStats, bool) {
	o.mu.RLock()
	srvs := o.srvs
	bound := append([]string(nil), o.bound...)
	adm := o.adm
	o.mu.RUnlock()
	if len(srvs) == 0 {
		return ServerStats{}, false
	}
	st := ServerStats{Endpoint: bound[0], Endpoints: bound}
	for _, srv := range srvs {
		srv.mu.Lock()
		st.Conns += len(srv.conns)
		srv.mu.Unlock()
	}
	if a := adm; a != nil {
		a.mu.Lock()
		st.Queued = a.queued
		st.Shed = a.shed
		st.Dispatched = a.dispatched
		a.mu.Unlock()
		st.Inflight = len(a.slots)
		st.MaxInflight = cap(a.slots)
		st.QueueDepth = a.queueMax
		st.ShedAfter = a.shedAfter
	}
	return st, true
}
