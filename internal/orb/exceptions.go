package orb

import (
	"errors"
	"fmt"
)

// ExceptionCode identifies a system exception category, mirroring the CORBA
// system exception minor set the Activity Service cares about.
type ExceptionCode string

// System exception codes.
const (
	// CodeObjectNotExist: the object key has no servant.
	CodeObjectNotExist ExceptionCode = "OBJECT_NOT_EXIST"
	// CodeBadOperation: the servant does not implement the operation.
	CodeBadOperation ExceptionCode = "BAD_OPERATION"
	// CodeCommFailure: the transport failed mid-call; completion unknown.
	CodeCommFailure ExceptionCode = "COMM_FAILURE"
	// CodeTransient: the request never reached the servant; safe to retry.
	CodeTransient ExceptionCode = "TRANSIENT"
	// CodeMarshal: the request or reply body could not be decoded.
	CodeMarshal ExceptionCode = "MARSHAL"
	// CodeNoImplement: no transport can reach the IOR.
	CodeNoImplement ExceptionCode = "NO_IMPLEMENT"
	// CodeTimeout: the invocation deadline passed.
	CodeTimeout ExceptionCode = "TIMEOUT"
	// CodeWrongShard: the target replica does not own the routed key
	// under its current shard map. The detail carries the replica's map
	// epoch ("epoch=N ..."), so a stale client can refresh its map and
	// retry against the real owner. Like OBJECT_NOT_EXIST it asserts the
	// operation did not run, but it is deliberately NOT TRANSIENT: the
	// profile selector must not blindly fail the call over to the next
	// endpoint of the same (wrong) member — the cure is a map refresh,
	// which the shard router layers above the selector.
	CodeWrongShard ExceptionCode = "WRONG_SHARD"
	// CodeFenced: the target is a deposed coordinator-group member (or
	// the caller's claim/append carries a stale term). The detail leads
	// with the group's current term and, when known, the leader
	// ("term=N leader=<id> at=tcp:host:port ..."), so a redirected client
	// can aim its retry at the leader. Like WRONG_SHARD it asserts the
	// operation did not run and is deliberately NOT TRANSIENT: blind
	// failover to the next profile of the same deposed member cannot
	// help — the cure is following the leader hint, which the client
	// invoke path does once per call.
	CodeFenced ExceptionCode = "FENCED"
	// codeApplication marks a user (servant-raised) error on the wire; it
	// is unwrapped back to a plain error on the client side.
	codeApplication ExceptionCode = "APPLICATION"
)

// SystemError is a CORBA-style system exception.
type SystemError struct {
	// Code classifies the failure (TRANSIENT, COMM_FAILURE, ...).
	Code ExceptionCode
	// Detail is the human-readable cause.
	Detail string
}

// Error implements error.
func (e *SystemError) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("orb: %s", e.Code)
	}
	return fmt.Sprintf("orb: %s: %s", e.Code, e.Detail)
}

// Is matches two SystemErrors by code, enabling
// errors.Is(err, &SystemError{Code: CodeTransient}).
func (e *SystemError) Is(target error) bool {
	var se *SystemError
	if !errors.As(target, &se) {
		return false
	}
	return se.Code == e.Code
}

// Systemf builds a SystemError with a formatted detail.
func Systemf(code ExceptionCode, format string, args ...any) *SystemError {
	return &SystemError{Code: code, Detail: fmt.Sprintf(format, args...)}
}

// IsSystem reports whether err is a SystemError with the given code.
func IsSystem(err error, code ExceptionCode) bool {
	var se *SystemError
	return errors.As(err, &se) && se.Code == code
}
