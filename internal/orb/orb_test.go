package orb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// echoServant implements "echo" (returns its argument), "fail" (user
// error), "system" (system exception) and "contexts" (returns the number
// of service contexts observed by the server interceptor — set via ctx).
type echoServant struct{}

type observedKey struct{}

func (echoServant) Dispatch(ctx context.Context, op string, in *cdr.Decoder) ([]byte, error) {
	switch op {
	case "echo":
		s := in.ReadString()
		if err := in.Err(); err != nil {
			return nil, Systemf(CodeMarshal, "echo: %v", err)
		}
		e := cdr.NewEncoder(32)
		e.WriteString(s)
		return e.Bytes(), nil
	case "fail":
		return nil, errors.New("application failure")
	case "system":
		return nil, Systemf(CodeTransient, "try later")
	case "contexts":
		n, _ := ctx.Value(observedKey{}).(int)
		e := cdr.NewEncoder(8)
		e.WriteUint32(uint32(n))
		return e.Bytes(), nil
	case "slow":
		time.Sleep(200 * time.Millisecond)
		return nil, nil
	default:
		return nil, Systemf(CodeBadOperation, "no operation %q", op)
	}
}

func echoCall(t *testing.T, o *ORB, ref IOR, msg string) (string, error) {
	t.Helper()
	e := cdr.NewEncoder(32)
	e.WriteString(msg)
	body, err := o.Invoke(context.Background(), ref, "echo", e.Bytes())
	if err != nil {
		return "", err
	}
	d := cdr.NewDecoder(body)
	s := d.ReadString()
	if err := d.Err(); err != nil {
		t.Fatalf("decode echo reply: %v", err)
	}
	return s, nil
}

func TestInprocInvoke(t *testing.T) {
	o := New()
	defer o.Shutdown()
	ref := o.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	got, err := echoCall(t, o, ref, "hello")
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("echo = %q", got)
	}
}

func TestInprocAcrossORBs(t *testing.T) {
	server := New()
	defer server.Shutdown()
	client := New()
	defer client.Shutdown()
	ref := server.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	got, err := echoCall(t, client, ref, "cross")
	if err != nil {
		t.Fatal(err)
	}
	if got != "cross" {
		t.Fatalf("echo = %q", got)
	}
}

func TestTCPInvoke(t *testing.T) {
	server := New()
	defer server.Shutdown()
	ref := server.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	endpoint, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// IORs minted after Listen carry the TCP endpoint.
	ref2, ok := server.IOR(ref.Key)
	if !ok || ref2.Endpoint() != endpoint {
		t.Fatalf("IOR endpoint = %q, want %q", ref2.Endpoint(), endpoint)
	}

	client := New()
	defer client.Shutdown()
	got, err := echoCall(t, client, ref2, "over tcp")
	if err != nil {
		t.Fatal(err)
	}
	if got != "over tcp" {
		t.Fatalf("echo = %q", got)
	}
}

func TestTCPSelfReferenceShortCircuits(t *testing.T) {
	o := New()
	defer o.Shutdown()
	if _, err := o.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref := o.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	got, err := echoCall(t, o, ref, "self")
	if err != nil {
		t.Fatal(err)
	}
	if got != "self" {
		t.Fatalf("echo = %q", got)
	}
}

func TestUserErrorCrossesWire(t *testing.T) {
	server := New()
	defer server.Shutdown()
	ref := server.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	if _, err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = server.IOR(ref.Key)

	client := New()
	defer client.Shutdown()
	_, err := client.Invoke(context.Background(), ref, "fail", nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Message != "application failure" {
		t.Fatalf("err = %v, want RemoteError", err)
	}
}

func TestSystemErrorCrossesWire(t *testing.T) {
	server := New()
	defer server.Shutdown()
	ref := server.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	if _, err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = server.IOR(ref.Key)

	client := New()
	defer client.Shutdown()
	_, err := client.Invoke(context.Background(), ref, "system", nil)
	if !IsSystem(err, CodeTransient) {
		t.Fatalf("err = %v, want TRANSIENT", err)
	}
}

func TestObjectNotExist(t *testing.T) {
	o := New()
	defer o.Shutdown()
	ref := NewIOR("IDL:test/Ghost:1.0", "missing", "inproc:"+o.ID())
	_, err := o.Invoke(context.Background(), ref, "echo", nil)
	if !IsSystem(err, CodeObjectNotExist) {
		t.Fatalf("err = %v, want OBJECT_NOT_EXIST", err)
	}
}

func TestBadOperation(t *testing.T) {
	o := New()
	defer o.Shutdown()
	ref := o.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	_, err := o.Invoke(context.Background(), ref, "nonsense", nil)
	if !IsSystem(err, CodeBadOperation) {
		t.Fatalf("err = %v, want BAD_OPERATION", err)
	}
}

func TestNilReference(t *testing.T) {
	o := New()
	defer o.Shutdown()
	_, err := o.Invoke(context.Background(), IOR{}, "echo", nil)
	if !IsSystem(err, CodeObjectNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeactivatedServant(t *testing.T) {
	o := New()
	defer o.Shutdown()
	ref := o.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	o.Deactivate(ref.Key)
	_, err := o.Invoke(context.Background(), ref, "echo", nil)
	if !IsSystem(err, CodeObjectNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestServiceContextPropagation(t *testing.T) {
	server := New()
	defer server.Shutdown()
	server.AddServerInterceptor(func(ctx context.Context, contexts []ServiceContext) (context.Context, error) {
		return context.WithValue(ctx, observedKey{}, len(contexts)), nil
	})
	ref := server.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	if _, err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = server.IOR(ref.Key)

	client := New()
	defer client.Shutdown()
	client.AddClientInterceptor(func(ctx context.Context, _ IOR, _ string) ([]ServiceContext, error) {
		return []ServiceContext{
			{ID: ContextActivity, Data: []byte("activity-ctx")},
			{ID: ContextTransaction, Data: []byte("tx-ctx")},
		}, nil
	})
	body, err := client.Invoke(context.Background(), ref, "contexts", nil)
	if err != nil {
		t.Fatal(err)
	}
	d := cdr.NewDecoder(body)
	if n := d.ReadUint32(); n != 2 {
		t.Fatalf("server observed %d contexts, want 2", n)
	}
}

func TestInvocationTimeout(t *testing.T) {
	server := New()
	defer server.Shutdown()
	ref := server.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	if _, err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = server.IOR(ref.Key)

	client := New(WithCallTimeout(30 * time.Millisecond))
	defer client.Shutdown()
	_, err := client.Invoke(context.Background(), ref, "slow", nil)
	if !IsSystem(err, CodeTimeout) {
		t.Fatalf("err = %v, want TIMEOUT", err)
	}
}

func TestConcurrentTCPInvocations(t *testing.T) {
	server := New()
	defer server.Shutdown()
	ref := server.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	if _, err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = server.IOR(ref.Key)

	client := New()
	defer client.Shutdown()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				msg := fmt.Sprintf("w%d-%d", id, i)
				got, err := echoCall(t, client, ref, msg)
				if err != nil {
					t.Errorf("%s: %v", msg, err)
					return
				}
				if got != msg {
					t.Errorf("echo %q = %q: replies crossed", msg, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestServerShutdownFailsInflight(t *testing.T) {
	server := New()
	ref := server.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	if _, err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = server.IOR(ref.Key)

	client := New()
	defer client.Shutdown()
	// Prime the connection.
	if _, err := echoCall(t, client, ref, "prime"); err != nil {
		t.Fatal(err)
	}
	server.Shutdown()
	_, err := echoCall(t, client, ref, "after")
	if err == nil {
		t.Fatal("invocation succeeded against a shut-down server")
	}
	var se *SystemError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want a system exception", err)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	o := New()
	o.Shutdown()
	o.Shutdown()
	if _, err := o.Invoke(context.Background(), NewIOR("x", "k", "inproc:z"), "op", nil); !IsSystem(err, CodeCommFailure) {
		t.Fatalf("err = %v", err)
	}
}

func TestNewIORNormalizesSchemelessEndpoints(t *testing.T) {
	ref := NewIOR("IDL:test/T:1.0", "k", "127.0.0.1:7411", "tcp:10.0.0.1:7411", "inproc:z", "")
	want := []string{"tcp:127.0.0.1:7411", "tcp:10.0.0.1:7411", "inproc:z"}
	got := ref.Endpoints()
	if len(got) != len(want) {
		t.Fatalf("endpoints = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("endpoints = %v, want %v", got, want)
		}
	}
}

func TestIORStringRoundTrip(t *testing.T) {
	ref := NewIOR("IDL:test/Echo:1.0", "abc123", "tcp:127.0.0.1:9099")
	parsed, err := ParseIOR(ref.String())
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(ref) {
		t.Fatalf("round trip: %+v != %+v", parsed, ref)
	}
	for _, bad := range []string{"", "IOR:", "nonsense", "IOR:onlyone", "IOR:a|b"} {
		if _, err := ParseIOR(bad); err == nil {
			t.Errorf("ParseIOR(%q) succeeded", bad)
		}
	}
}

func TestIORCDRRoundTrip(t *testing.T) {
	ref := NewIOR("IDL:test/T:1.0", "k1", "inproc:xyz")
	e := cdr.NewEncoder(0)
	ref.Encode(e)
	d := cdr.NewDecoder(e.Bytes())
	got := DecodeIOR(d)
	if d.Err() != nil || !got.Equal(ref) {
		t.Fatalf("got %+v err %v", got, d.Err())
	}
}

func TestMessageRoundTrip(t *testing.T) {
	req := request{
		requestID: 42,
		objectKey: "key-1",
		operation: "do_it",
		contexts:  []ServiceContext{{ID: 7, Data: []byte("ctx")}},
		body:      []byte{1, 2, 3},
	}
	got, err := decodeRequest(encodeRequestFrame(req).FramePayload())
	if err != nil {
		t.Fatal(err)
	}
	if got.requestID != 42 || got.objectKey != "key-1" || got.operation != "do_it" ||
		len(got.contexts) != 1 || string(got.contexts[0].Data) != "ctx" || len(got.body) != 3 {
		t.Fatalf("request round trip: %+v", got)
	}

	rep := reply{requestID: 42, status: replyOK, body: []byte("result")}
	gotRep, err := decodeReply(encodeReplyFrame(rep).FramePayload())
	if err != nil {
		t.Fatal(err)
	}
	if gotRep.requestID != 42 || string(gotRep.body) != "result" {
		t.Fatalf("reply round trip: %+v", gotRep)
	}

	erep := reply{requestID: 7, status: replySystemErr, errCode: "TRANSIENT", errDetail: "busy"}
	gotErep, err := decodeReply(encodeReplyFrame(erep).FramePayload())
	if err != nil {
		t.Fatal(err)
	}
	if gotErep.errCode != "TRANSIENT" || gotErep.errDetail != "busy" {
		t.Fatalf("error reply round trip: %+v", gotErep)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := decodeRequest([]byte("XXXXjunkjunkjunk")); err == nil {
		t.Fatal("bad magic accepted")
	}
	req := encodeRequestFrame(request{requestID: 1, objectKey: "k", operation: "op"}).FramePayload()
	req[4] = 99 // version
	if _, err := decodeRequest(req); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := decodeReply(encodeRequestFrame(request{requestID: 1}).FramePayload()); err == nil {
		t.Fatal("request decoded as reply")
	}
}

func TestEndpointHost(t *testing.T) {
	if got := endpointHost("tcp:1.2.3.4:99"); got != "1.2.3.4:99" {
		t.Fatalf("endpointHost = %q", got)
	}
}
