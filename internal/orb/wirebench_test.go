package orb

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
)

// echoBytesServant returns the request body bytes as the reply body. It reads
// the lent body slice and returns it directly — legal, because the server
// encodes the reply before the request frame is released.
type echoBytesServant struct{}

// Dispatch implements Servant.
func (echoBytesServant) Dispatch(_ context.Context, _ string, in *cdr.Decoder) ([]byte, error) {
	return in.ReadBytes(), nil
}

// BenchmarkWirePath measures one request/reply echo over the TCP wire
// path: small and 4KB bodies, sequential (one caller, the latency view)
// and concurrent (64 callers on one pooled connection, the coalescing
// view). ReportAllocs pins the zero-allocation claim for the steady-state
// client send path.
func BenchmarkWirePath(b *testing.B) {
	for _, size := range []int{0, 64, 4096} {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i)
		}
		body := func() []byte {
			e := cdr.NewEncoder(16 + size)
			e.WriteBytes(payload)
			return e.Bytes()
		}()
		run := func(b *testing.B, callers int) {
			srv := New(WithHealthRegistry(NewHealthRegistry()))
			defer srv.Shutdown()
			ref := srv.RegisterServant("IDL:bench/Echo:1.0", echoBytesServant{})
			if _, err := srv.Listen("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			ref, _ = srv.IOR(ref.Key)
			cli := New(WithHealthRegistry(NewHealthRegistry()), WithPoolSize(1))
			defer cli.Shutdown()
			ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
			defer cancel()
			if _, err := cli.Invoke(ctx, ref, "echo", body); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			if callers == 1 {
				for i := 0; i < b.N; i++ {
					if _, err := cli.Invoke(ctx, ref, "echo", body); err != nil {
						b.Fatal(err)
					}
				}
				return
			}
			b.SetParallelism(callers)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := cli.Invoke(ctx, ref, "echo", body); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("body=%d/serial", size), func(b *testing.B) { run(b, 1) })
		b.Run(fmt.Sprintf("body=%d/conc=64", size), func(b *testing.B) { run(b, 64) })
	}
}
