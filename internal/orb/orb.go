// Package orb is the distribution substrate: a GIOP-lite object request
// broker standing in for the CORBA ORB the paper assumes.
//
// It provides what the Activity Service needs from CORBA and nothing more:
// interoperable object references (IOR), an object adapter dispatching
// operations to servants, location-transparent invocation over an
// in-process fast path or framed TCP, per-request service contexts (used
// for implicit activity/transaction context propagation), client/server
// interceptors, CORBA-style system exceptions, and a name service.
//
// The substitution is documented in DESIGN.md: the wire format is not IIOP,
// but it preserves the properties the paper relies on — request/reply with
// service contexts and the standard failure surface (TRANSIENT,
// COMM_FAILURE, OBJECT_NOT_EXIST).
//
// # Client transport
//
// Outgoing TCP invocations run over a pluggable Transport (transport.go)
// behind a per-endpoint connection pool (client.go): up to WithPoolSize
// multiplexed connections per endpoint, least-pending pick, automatic
// reconnect under jittered exponential backoff, and per-endpoint health
// state so a dead peer fails fast (TRANSIENT) instead of being re-dialed
// on every call. ChaosTransport (chaos.go) wraps any Transport with
// injectable faults — latency, drops, resets, one-way partitions, per-op
// rules — so the failure modes extended transactions exist to survive can
// be exercised deterministically in tests.
//
// # Overload protection
//
// Above the health gate the client side layers a per-endpoint retry
// budget (WithRetryBudget) and a three-state circuit breaker
// (WithCircuitBreaker), so at-least-once retry loops cannot turn a
// failing or flapping endpoint into a retry storm; EndpointStats exposes
// the breaker state. The server side is guarded by admission control
// (WithMaxInflight, WithAdmissionQueue): a bounded number of concurrent
// dispatches plus a bounded, deadline-aware wait queue, with the excess
// shed fast as TRANSIENT instead of piling up goroutines behind a slow
// servant; ServerStats exposes the gauges. See docs/ARCHITECTURE.md for
// the failure-semantics table tying the four mechanisms together.
package orb

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/ids"
)

// Servant is an object implementation. Dispatch handles one operation,
// decoding arguments from in and returning the encoded reply body.
// Returning a *SystemError produces a system exception at the caller;
// any other error arrives as a *RemoteError.
type Servant interface {
	// Dispatch handles one operation against this object.
	Dispatch(ctx context.Context, op string, in *cdr.Decoder) ([]byte, error)
}

// ServantFunc adapts a function to the Servant interface.
type ServantFunc func(ctx context.Context, op string, in *cdr.Decoder) ([]byte, error)

// Dispatch implements Servant.
func (f ServantFunc) Dispatch(ctx context.Context, op string, in *cdr.Decoder) ([]byte, error) {
	return f(ctx, op, in)
}

// RemoteError is a user (application) error raised by a remote servant.
type RemoteError struct {
	// Message is the servant's error text.
	Message string
}

// Error implements error.
func (e *RemoteError) Error() string { return e.Message }

// ClientInterceptor runs before an outgoing invocation; it returns service
// contexts to attach to the request (e.g. the current activity context).
type ClientInterceptor func(ctx context.Context, ref IOR, op string) ([]ServiceContext, error)

// ServerInterceptor runs before dispatch on the receiving side; it derives
// the handler context from the request's service contexts (e.g. resuming
// the propagated activity).
type ServerInterceptor func(ctx context.Context, contexts []ServiceContext) (context.Context, error)

// inprocRegistry locates ORBs in this process by id, so "inproc:" IORs work
// across ORB instances without a network hop.
var inprocRegistry sync.Map // string -> *ORB

type servantEntry struct {
	servant Servant
	typeID  string
}

// ORB is an object request broker: object adapter, client and server
// transports, and interceptor chains.
type ORB struct {
	id          string
	gen         *ids.Generator
	callTimeout time.Duration

	// Client transport configuration (see client.go, breaker.go).
	transport    Transport
	poolSize     int
	warmConns    int
	dialTimeout  time.Duration
	backoffMin   time.Duration
	backoffMax   time.Duration
	brkThreshold int
	brkOpenFor   time.Duration
	retryRate    float64
	retryBurst   int

	// Server admission configuration (see admission.go).
	maxInflight int
	admitQueue  int
	shedAfter   time.Duration

	mu       sync.RWMutex
	servants map[string]servantEntry
	clientIC []ClientInterceptor
	serverIC []ServerInterceptor
	bound    string // "tcp:host:port" once listening
	shutdown bool

	srv *server

	connMu      sync.Mutex
	pools       map[string]*endpointPool
	poolsClosed bool
	reqID       atomic.Uint64
}

// ORBOption configures an ORB.
type ORBOption interface {
	apply(*ORB)
}

type orbOptionFunc func(*ORB)

func (f orbOptionFunc) apply(o *ORB) { f(o) }

// WithCallTimeout sets the default invocation deadline when the caller's
// context carries none.
func WithCallTimeout(d time.Duration) ORBOption {
	return orbOptionFunc(func(o *ORB) { o.callTimeout = d })
}

// WithTransport replaces the client transport used for outgoing TCP
// invocations (the default is TCPTransport). Wrap the default in a
// ChaosTransport to inject faults.
func WithTransport(t Transport) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if t != nil {
			o.transport = t
		}
	})
}

// WithPoolSize bounds the number of multiplexed client connections the ORB
// keeps per endpoint. The default is 4; 1 reproduces the single-connection
// behaviour of earlier versions.
func WithPoolSize(n int) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if n > 0 {
			o.poolSize = n
		}
	})
}

// WithDialTimeout bounds each connection attempt when the caller's context
// carries no deadline.
func WithDialTimeout(d time.Duration) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if d > 0 {
			o.dialTimeout = d
		}
	})
}

// WithReconnectBackoff sets the jittered exponential backoff window
// applied after consecutive dial failures: the first failure marks the
// endpoint down for ~min, doubling per failure up to max. While an
// endpoint is down, calls fail fast with TRANSIENT instead of re-dialing.
// A max below min is raised to min.
func WithReconnectBackoff(min, max time.Duration) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if min > 0 {
			o.backoffMin = min
		}
		if max > 0 {
			o.backoffMax = max
		}
		if o.backoffMax < o.backoffMin {
			o.backoffMax = o.backoffMin
		}
	})
}

// WithPoolWarm pre-dials up to n connections (capped at the pool bound)
// in the background the first time an endpoint's pool is created, so the
// first burst of calls does not pay n inline dial round trips. Warm-up
// stops at the first dial failure and hands the endpoint to the normal
// health-gate machinery. The default is 0 (no warm-up; growth is entirely
// caller-driven).
func WithPoolWarm(n int) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if n > 0 {
			o.warmConns = n
		}
	})
}

// WithCircuitBreaker layers a per-endpoint three-state circuit breaker
// (closed / open / half-open) above the dial health gate: after threshold
// consecutive call failures the endpoint's circuit opens and every call
// fails fast with TRANSIENT for openFor; the first call after the window
// is admitted as a single probe (concurrent callers fail fast while it is
// in flight), and the probe's outcome closes or re-opens the circuit. An
// openFor of 0 selects the default window. The breaker is off unless
// threshold > 0.
func WithCircuitBreaker(threshold int, openFor time.Duration) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if threshold > 0 {
			o.brkThreshold = threshold
			o.brkOpenFor = openFor
		}
	})
}

// WithRetryBudget bounds how hard this ORB hammers a failing endpoint: a
// per-endpoint token bucket holding burst tokens that refills at rate
// tokens per second. While an endpoint's last call failed, every further
// call must withdraw a token; with the bucket empty the call fails fast
// with TRANSIENT instead of touching the network. A success resets the
// endpoint to the free (healthy) regime. This is what keeps at-least-once
// retry loops from turning a flapping endpoint's recovery into a retry
// storm. The budget is off unless burst > 0; a rate <= 0 selects a
// default refill of one token per second (a zero rate could never admit
// a recovery attempt once exhausted).
func WithRetryBudget(rate float64, burst int) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if burst > 0 {
			o.retryRate = rate
			o.retryBurst = burst
		}
	})
}

// WithMaxInflight bounds the number of concurrently dispatched requests on
// the server transport. Excess requests wait in a bounded queue (see
// WithAdmissionQueue) and are shed with a TRANSIENT system exception when
// the queue is full or the shed deadline passes, so a slow servant under
// high fan-in degrades into fast, explicit rejections instead of an
// unbounded goroutine pile-up. The default is 0 (unbounded, the historic
// behaviour).
func WithMaxInflight(n int) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if n > 0 {
			o.maxInflight = n
		}
	})
}

// WithAdmissionQueue tunes the server admission queue that backs
// WithMaxInflight: depth bounds how many requests may wait for a dispatch
// slot (default 2×WithMaxInflight), and shedAfter bounds how long any of
// them waits before being shed with TRANSIENT (default 100ms). Values <= 0
// keep the defaults. The option has no effect unless WithMaxInflight is
// set.
func WithAdmissionQueue(depth int, shedAfter time.Duration) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if depth > 0 {
			o.admitQueue = depth
		}
		if shedAfter > 0 {
			o.shedAfter = shedAfter
		}
	})
}

// New returns a running ORB (in-process only until Listen is called).
func New(opts ...ORBOption) *ORB {
	gen := ids.NewGenerator()
	o := &ORB{
		id:          gen.New().String(),
		gen:         gen,
		callTimeout: 10 * time.Second,
		transport:   TCPTransport{},
		poolSize:    defaultPoolSize,
		dialTimeout: defaultDialTimeout,
		backoffMin:  defaultBackoffMin,
		backoffMax:  defaultBackoffMax,
		servants:    make(map[string]servantEntry),
		pools:       make(map[string]*endpointPool),
	}
	for _, opt := range opts {
		opt.apply(o)
	}
	inprocRegistry.Store(o.id, o)
	return o
}

// ID returns the ORB's process-unique identifier.
func (o *ORB) ID() string { return o.id }

// AddClientInterceptor appends an interceptor to the outgoing chain.
func (o *ORB) AddClientInterceptor(ic ClientInterceptor) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.clientIC = append(o.clientIC, ic)
}

// AddServerInterceptor appends an interceptor to the incoming chain.
func (o *ORB) AddServerInterceptor(ic ServerInterceptor) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.serverIC = append(o.serverIC, ic)
}

// RegisterServant activates s under a fresh key and returns its IOR.
func (o *ORB) RegisterServant(typeID string, s Servant) IOR {
	return o.RegisterServantWithKey(o.gen.New().String(), typeID, s)
}

// RegisterServantWithKey activates s under the given key (stable keys
// support recovery: a restarted server re-registers servants under the keys
// embedded in persisted IORs).
func (o *ORB) RegisterServantWithKey(key, typeID string, s Servant) IOR {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.servants[key] = servantEntry{servant: s, typeID: typeID}
	return o.iorLocked(key, typeID)
}

// Deactivate removes the servant under key.
func (o *ORB) Deactivate(key string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.servants, key)
}

// IOR returns the current reference for an activated key.
func (o *ORB) IOR(key string) (IOR, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	e, ok := o.servants[key]
	if !ok {
		return IOR{}, false
	}
	return o.iorLocked(key, e.typeID), true
}

func (o *ORB) iorLocked(key, typeID string) IOR {
	endpoint := "inproc:" + o.id
	if o.bound != "" {
		endpoint = o.bound
	}
	return IOR{TypeID: typeID, Endpoint: endpoint, Key: key}
}

// Endpoint returns the network endpoint ("tcp:host:port") once listening,
// or the in-process endpoint otherwise.
func (o *ORB) Endpoint() string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if o.bound != "" {
		return o.bound
	}
	return "inproc:" + o.id
}

// Shutdown stops the server transport, closes client connections and
// deactivates the ORB. It is idempotent.
func (o *ORB) Shutdown() {
	o.mu.Lock()
	if o.shutdown {
		o.mu.Unlock()
		return
	}
	o.shutdown = true
	srv := o.srv
	o.srv = nil
	o.mu.Unlock()

	inprocRegistry.Delete(o.id)
	if srv != nil {
		srv.stop()
	}
	o.connMu.Lock()
	o.poolsClosed = true
	pools := o.pools
	o.pools = nil
	o.connMu.Unlock()
	for _, p := range pools {
		p.closePool(Systemf(CodeCommFailure, "orb shut down"))
	}
}

// Invoke calls operation op on the object ref with the given request body.
// It chooses the in-process fast path when ref lives in this process and
// TCP otherwise. The reply body is returned on success.
func (o *ORB) Invoke(ctx context.Context, ref IOR, op string, body []byte) ([]byte, error) {
	if ref.IsZero() {
		return nil, Systemf(CodeObjectNotExist, "nil object reference")
	}
	o.mu.RLock()
	ics := o.clientIC
	down := o.shutdown
	o.mu.RUnlock()
	if down {
		return nil, Systemf(CodeCommFailure, "orb shut down")
	}

	var contexts []ServiceContext
	for _, ic := range ics {
		cs, err := ic(ctx, ref, op)
		if err != nil {
			return nil, fmt.Errorf("orb: client interceptor: %w", err)
		}
		contexts = append(contexts, cs...)
	}

	if target, ok := o.localTarget(ref); ok {
		rep := target.dispatch(ctx, request{
			requestID: o.reqID.Add(1),
			objectKey: ref.Key,
			operation: op,
			contexts:  contexts,
			body:      body,
		})
		return replyToResult(rep)
	}
	return o.invokeTCP(ctx, ref, op, contexts, body)
}

// localTarget resolves ref to an ORB in this process, if possible.
func (o *ORB) localTarget(ref IOR) (*ORB, bool) {
	if id, ok := cutPrefix(ref.Endpoint, "inproc:"); ok {
		if v, ok := inprocRegistry.Load(id); ok {
			return v.(*ORB), true
		}
		return nil, false
	}
	// A TCP reference to our own bound endpoint short-circuits.
	o.mu.RLock()
	defer o.mu.RUnlock()
	if o.bound != "" && ref.Endpoint == o.bound {
		return o, true
	}
	return nil, false
}

// dispatch runs a request against the local object adapter.
func (o *ORB) dispatch(ctx context.Context, req request) reply {
	o.mu.RLock()
	entry, ok := o.servants[req.objectKey]
	ics := o.serverIC
	o.mu.RUnlock()
	if !ok {
		return errorReply(req.requestID, Systemf(CodeObjectNotExist, "key %q", req.objectKey))
	}
	for _, ic := range ics {
		var err error
		ctx, err = ic(ctx, req.contexts)
		if err != nil {
			return errorReply(req.requestID, Systemf(CodeTransient, "server interceptor: %v", err))
		}
	}
	body, err := entry.servant.Dispatch(ctx, req.operation, cdr.NewDecoder(req.body))
	if err != nil {
		return errorReply(req.requestID, err)
	}
	return reply{requestID: req.requestID, status: replyOK, body: body}
}

// errorReply encodes an error into a reply message.
func errorReply(requestID uint64, err error) reply {
	if se, ok := err.(*SystemError); ok {
		return reply{
			requestID: requestID,
			status:    replySystemErr,
			errCode:   string(se.Code),
			errDetail: se.Detail,
		}
	}
	return reply{
		requestID: requestID,
		status:    replyUserErr,
		errCode:   string(codeApplication),
		errDetail: err.Error(),
	}
}

// replyToResult converts a reply message back into (body, error).
func replyToResult(rep reply) ([]byte, error) {
	switch rep.status {
	case replyOK:
		return rep.body, nil
	case replySystemErr:
		return nil, &SystemError{Code: ExceptionCode(rep.errCode), Detail: rep.errDetail}
	default:
		return nil, &RemoteError{Message: rep.errDetail}
	}
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}
