// Package orb is the distribution substrate: a GIOP-lite object request
// broker standing in for the CORBA ORB the paper assumes.
//
// It provides what the Activity Service needs from CORBA and nothing more:
// interoperable object references (IOR), an object adapter dispatching
// operations to servants, location-transparent invocation over an
// in-process fast path or framed TCP, per-request service contexts (used
// for implicit activity/transaction context propagation), client/server
// interceptors, CORBA-style system exceptions, and a name service.
//
// The substitution is documented in DESIGN.md: the wire format is not IIOP,
// but it preserves the properties the paper relies on — request/reply with
// service contexts and the standard failure surface (TRANSIENT,
// COMM_FAILURE, OBJECT_NOT_EXIST).
//
// # Object references
//
// IORs carry an ordered list of endpoint profiles (ior.go), like real
// CORBA IORs carry tagged profiles, so a reference survives the loss of a
// single endpoint. An ORB listening on several addresses (Listen may be
// called repeatedly) mints every bound endpoint into its references;
// WithAdvertised overrides the list for NAT or load-balancer fronting.
// Single-profile references keep the historic stringified and CDR wire
// forms, and both parsers accept the old layouts, so mixed fleets
// interoperate.
//
// # Client transport
//
// Outgoing TCP invocations run over a pluggable Transport (transport.go)
// behind a per-endpoint connection pool (client.go): up to WithPoolSize
// multiplexed connections per endpoint, least-pending pick, automatic
// reconnect under jittered exponential backoff, and per-endpoint health
// state so a dead peer fails fast (TRANSIENT) instead of being re-dialed
// on every call. The health state lives in a HealthRegistry (health.go)
// shared by every client ORB in the process, so one ORB's dial verdicts
// and breaker windows steer them all. Above the pool, an endpoint
// selector orders a reference's profiles — sticky (endpoint, key)
// affinity first, then profiles with clean shared verdicts — and fails
// the call over to the next profile on any TRANSIENT outcome, within the
// caller's deadline. ChaosTransport (chaos.go) wraps any Transport with
// injectable faults — latency, drops, resets, one-way partitions, per-op
// and per-address rules — so the failure modes extended transactions
// exist to survive can be exercised deterministically in tests.
//
// # Overload protection
//
// Above the health gate the client side layers a per-endpoint retry
// budget (WithRetryBudget) and a three-state circuit breaker
// (WithCircuitBreaker), so at-least-once retry loops cannot turn a
// failing or flapping endpoint into a retry storm; EndpointStats exposes
// the breaker state. The server side is guarded by admission control
// (WithMaxInflight, WithAdmissionQueue): a bounded number of concurrent
// dispatches plus a bounded, deadline-aware wait queue shared by every
// listener, with the excess shed fast as TRANSIENT instead of piling up
// goroutines behind a slow servant; ServerStats exposes the gauges, and
// the well-known orb-admin servant (admin.go) exports both stats
// surfaces to remote scrape tooling. See docs/ARCHITECTURE.md for the
// failure-semantics table tying the mechanisms together.
package orb

import (
	"container/list"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/ids"
)

// Servant is an object implementation. Dispatch handles one operation,
// decoding arguments from in and returning the encoded reply body.
// Returning a *SystemError produces a system exception at the caller;
// any other error arrives as a *RemoteError.
//
// CodeTransient carries a contract: it asserts the operation had no
// effect ("the servant did not run"), which is what lets the client both
// retry and transparently fail a multi-profile invocation over to
// another replica. A servant must not return a bare TRANSIENT
// *SystemError after performing side effects — use any other error (or a
// wrapped one, which crosses the wire as a RemoteError) for
// partially-completed work.
//
// Buffer ownership: the decoder (and every []byte it lends — ReadBytes
// results, and on the network path the request body itself) is only
// valid for the duration of Dispatch; the ORB recycles the underlying
// frame buffer afterwards. A servant that retains bytes past its return
// must copy them with cdr.Clone, and must never retain the decoder
// itself (it is pooled). Returning a slice that aliases the request (an
// echo servant) is safe: the reply is encoded before the frame is
// reused.
type Servant interface {
	// Dispatch handles one operation against this object.
	Dispatch(ctx context.Context, op string, in *cdr.Decoder) ([]byte, error)
}

// ServantFunc adapts a function to the Servant interface.
type ServantFunc func(ctx context.Context, op string, in *cdr.Decoder) ([]byte, error)

// Dispatch implements Servant.
func (f ServantFunc) Dispatch(ctx context.Context, op string, in *cdr.Decoder) ([]byte, error) {
	return f(ctx, op, in)
}

// RemoteError is a user (application) error raised by a remote servant.
type RemoteError struct {
	// Message is the servant's error text.
	Message string
}

// Error implements error.
func (e *RemoteError) Error() string { return e.Message }

// ClientInterceptor runs before an outgoing invocation; it returns service
// contexts to attach to the request (e.g. the current activity context).
type ClientInterceptor func(ctx context.Context, ref IOR, op string) ([]ServiceContext, error)

// ServerInterceptor runs before dispatch on the receiving side; it derives
// the handler context from the request's service contexts (e.g. resuming
// the propagated activity).
type ServerInterceptor func(ctx context.Context, contexts []ServiceContext) (context.Context, error)

// inprocRegistry locates ORBs in this process by id, so "inproc:" IORs work
// across ORB instances without a network hop.
var inprocRegistry sync.Map // string -> *ORB

type servantEntry struct {
	servant Servant
	typeID  string
}

// ORB is an object request broker: object adapter, client and server
// transports, and interceptor chains.
type ORB struct {
	id          string
	gen         *ids.Generator
	callTimeout time.Duration

	// Client transport configuration (see client.go, breaker.go,
	// health.go).
	transport    Transport
	health       *HealthRegistry
	poolSize     int
	warmConns    int
	dialTimeout  time.Duration
	backoffMin   time.Duration
	backoffMax   time.Duration
	brkThreshold int
	brkOpenFor   time.Duration
	retryRate    float64
	retryBurst   int

	// Server admission configuration (see admission.go).
	maxInflight int
	admitQueue  int
	shedAfter   time.Duration
	prioReserve int
	prioOps     map[string]bool

	mu         sync.RWMutex
	servants   map[string]servantEntry
	clientIC   []ClientInterceptor
	serverIC   []ServerInterceptor
	bound      []string // "tcp:host:port" per listener, in Listen order
	advertised []string // endpoints minted into IORs instead of bound
	shutdown   bool
	recoveryFn func() (RecoveryScrape, bool)    // feeds the recovery_stats scrape
	relayFn    func() (RelayScrape, bool)       // feeds the relay_stats scrape
	replFn     func() (ReplicationScrape, bool) // feeds the replication_stats scrape
	// shardAdminFn handles the "shard_*" operations the admin servant
	// forwards (see SetShardAdminHandler); nil when this process hosts
	// no shard-map authority.
	shardAdminFn func(ctx context.Context, op string, in *cdr.Decoder) ([]byte, error)

	srvs []*server
	adm  *admission // shared by every listener; nil = unbounded dispatch

	connMu      sync.Mutex
	pools       map[string]*endpointPool
	poolsClosed bool
	reqID       atomic.Uint64

	// affMu guards the sticky (key → endpoint) affinity state the
	// endpoint selector consults so multi-profile invocations for one
	// object keep landing on the replica that served it last: affinity
	// indexes entries of affOrder, the recency list whose back is
	// evicted at maxAffinityEntries (see client.go).
	affMu    sync.Mutex
	affinity map[string]*list.Element
	affOrder *list.List
}

// ORBOption configures an ORB.
type ORBOption interface {
	apply(*ORB)
}

type orbOptionFunc func(*ORB)

func (f orbOptionFunc) apply(o *ORB) { f(o) }

// WithCallTimeout sets the default invocation deadline when the caller's
// context carries none.
func WithCallTimeout(d time.Duration) ORBOption {
	return orbOptionFunc(func(o *ORB) { o.callTimeout = d })
}

// WithTransport replaces the client transport used for outgoing TCP
// invocations (the default is TCPTransport). Wrap the default in a
// ChaosTransport to inject faults.
func WithTransport(t Transport) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if t != nil {
			o.transport = t
		}
	})
}

// WithHealthRegistry wires the ORB to a specific shared health registry.
// By default every ORB shares ProcessHealthRegistry, so dial verdicts and
// breaker windows learned by one client ORB steer the endpoint selectors
// of all the others in the process; tests (or tenancy-isolated hosts) pass
// their own registry to opt out of the sharing.
func WithHealthRegistry(h *HealthRegistry) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if h != nil {
			o.health = h
		}
	})
}

// WithAdvertised overrides the endpoints minted into this ORB's object
// references: references carry the given endpoints, in order, instead of
// the locally bound listener addresses. Hosts behind NAT or a load
// balancer advertise their externally reachable addresses this way.
// Endpoints without a scheme prefix are taken as "tcp:host:port".
func WithAdvertised(endpoints ...string) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		for _, ep := range endpoints {
			if ep == "" {
				continue
			}
			if !strings.HasPrefix(ep, "tcp:") && !strings.HasPrefix(ep, "inproc:") {
				ep = "tcp:" + ep
			}
			o.advertised = append(o.advertised, ep)
		}
	})
}

// WithPoolSize bounds the number of multiplexed client connections the ORB
// keeps per endpoint. The default is 4; 1 reproduces the single-connection
// behaviour of earlier versions.
func WithPoolSize(n int) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if n > 0 {
			o.poolSize = n
		}
	})
}

// WithDialTimeout bounds each connection attempt when the caller's context
// carries no deadline.
func WithDialTimeout(d time.Duration) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if d > 0 {
			o.dialTimeout = d
		}
	})
}

// WithReconnectBackoff sets the jittered exponential backoff window
// applied after consecutive dial failures: the first failure marks the
// endpoint down for ~min, doubling per failure up to max. While an
// endpoint is down, calls fail fast with TRANSIENT instead of re-dialing.
// A max below min is raised to min.
func WithReconnectBackoff(min, max time.Duration) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if min > 0 {
			o.backoffMin = min
		}
		if max > 0 {
			o.backoffMax = max
		}
		if o.backoffMax < o.backoffMin {
			o.backoffMax = o.backoffMin
		}
	})
}

// WithPoolWarm pre-dials up to n connections (capped at the pool bound)
// in the background the first time an endpoint's pool is created, so the
// first burst of calls does not pay n inline dial round trips. Warm-up
// stops at the first dial failure and hands the endpoint to the normal
// health-gate machinery. The default is 0 (no warm-up; growth is entirely
// caller-driven).
func WithPoolWarm(n int) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if n > 0 {
			o.warmConns = n
		}
	})
}

// WithCircuitBreaker layers a per-endpoint three-state circuit breaker
// (closed / open / half-open) above the dial health gate: after threshold
// consecutive call failures the endpoint's circuit opens and every call
// fails fast with TRANSIENT for openFor; the first call after the window
// is admitted as a single probe (concurrent callers fail fast while it is
// in flight), and the probe's outcome closes or re-opens the circuit. An
// openFor of 0 selects the default window. The breaker is off unless
// threshold > 0.
func WithCircuitBreaker(threshold int, openFor time.Duration) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if threshold > 0 {
			o.brkThreshold = threshold
			o.brkOpenFor = openFor
		}
	})
}

// WithRetryBudget bounds how hard this ORB hammers a failing endpoint: a
// per-endpoint token bucket holding burst tokens that refills at rate
// tokens per second. While an endpoint's last call failed, every further
// call must withdraw a token; with the bucket empty the call fails fast
// with TRANSIENT instead of touching the network. A success resets the
// endpoint to the free (healthy) regime. This is what keeps at-least-once
// retry loops from turning a flapping endpoint's recovery into a retry
// storm. The budget is off unless burst > 0; a rate <= 0 selects a
// default refill of one token per second (a zero rate could never admit
// a recovery attempt once exhausted).
func WithRetryBudget(rate float64, burst int) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if burst > 0 {
			o.retryRate = rate
			o.retryBurst = burst
		}
	})
}

// WithMaxInflight bounds the number of concurrently dispatched requests on
// the server transport. Excess requests wait in a bounded queue (see
// WithAdmissionQueue) and are shed with a TRANSIENT system exception when
// the queue is full or the shed deadline passes, so a slow servant under
// high fan-in degrades into fast, explicit rejections instead of an
// unbounded goroutine pile-up. The default is 0 (unbounded, the historic
// behaviour).
func WithMaxInflight(n int) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if n > 0 {
			o.maxInflight = n
		}
	})
}

// WithAdmissionQueue tunes the server admission queue that backs
// WithMaxInflight: depth bounds how many requests may wait for a dispatch
// slot (default 2×WithMaxInflight), and shedAfter bounds how long any of
// them waits before being shed with TRANSIENT (default 100ms). Values <= 0
// keep the defaults. The option has no effect unless WithMaxInflight is
// set.
func WithAdmissionQueue(depth int, shedAfter time.Duration) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if depth > 0 {
			o.admitQueue = depth
		}
		if shedAfter > 0 {
			o.shedAfter = shedAfter
		}
	})
}

// DefaultPriorityOps is the operation set WithPriorityOps reserves slots
// for when no explicit list is given: the completion and recovery verbs of
// the transaction surface, plus WAL replication. Shedding a "commit" or
// "replay_completion" strands prepared participants in doubt, and shedding
// "repl_fetch" lets the warm standby fall behind exactly when load makes a
// primary most likely to die — while shedding a first-contact "begin"
// merely refuses new work. So under overload the completion and
// replication verbs must win.
var DefaultPriorityOps = []string{
	"prepare", "commit", "rollback", "commit_one_phase", "forget",
	"replay_completion", "recover", "complete",
	"repl_state", "repl_fetch", "repl_snapshot",
}

// WithPriorityOps reserves n of the WithMaxInflight dispatch slots for a
// priority admission class: requests whose operation name is in ops (or
// DefaultPriorityOps when ops is empty) may use any slot, while other
// requests are confined to the remaining shared slots. Under overload the
// shared pool saturates and first-contact traffic is shed, but completion
// and recovery verbs still find the reservation — in-doubt transactions
// converge instead of being starved by the very load that made them
// in-doubt. The reservation is clamped to leave at least one shared slot
// and has no effect unless WithMaxInflight is set.
func WithPriorityOps(n int, ops ...string) ORBOption {
	return orbOptionFunc(func(o *ORB) {
		if n <= 0 {
			return
		}
		o.prioReserve = n
		if len(ops) == 0 {
			ops = DefaultPriorityOps
		}
		o.prioOps = make(map[string]bool, len(ops))
		for _, op := range ops {
			if op != "" {
				o.prioOps[op] = true
			}
		}
	})
}

// SetRecoveryStatsProvider wires a recovery-status source (typically the
// hosted transaction service) into the orb-admin scrape: the admin
// servant's "recovery_stats" operation calls fn on every scrape. fn must
// be safe for concurrent use; a nil fn (or one returning ok=false) makes
// the scrape report that no recovery surface is hosted.
func (o *ORB) SetRecoveryStatsProvider(fn func() (RecoveryScrape, bool)) {
	o.mu.Lock()
	o.recoveryFn = fn
	o.mu.Unlock()
}

// SetRelayStatsProvider wires a relay plant-cache telemetry source (the
// relay servant, when one is hosted) into the orb-admin scrape: the
// admin servant's "relay_stats" operation calls fn on every scrape. fn
// must be safe for concurrent use; a nil fn (or one returning ok=false)
// makes the scrape report that no relay is hosted.
func (o *ORB) SetRelayStatsProvider(fn func() (RelayScrape, bool)) {
	o.mu.Lock()
	o.relayFn = fn
	o.mu.Unlock()
}

// SetReplicationStatsProvider wires a coordinator-group state source (the
// replication group member, when one is hosted) into the orb-admin
// scrape: the admin servant's "replication_stats" operation calls fn on
// every scrape. fn must be safe for concurrent use; a nil fn (or one
// returning ok=false) makes the scrape report that no replication group
// is hosted.
func (o *ORB) SetReplicationStatsProvider(fn func() (ReplicationScrape, bool)) {
	o.mu.Lock()
	o.replFn = fn
	o.mu.Unlock()
}

// SetShardAdminHandler wires a shard-map authority (hosted by
// internal/remote beside the naming service) into the orb-admin
// servant: every "shard_"-prefixed operation the admin servant receives
// is forwarded to fn, so cluster operators drive resharding —
// shard_add, shard_drain, shard_remove, shard_fetch — through the same
// well-known orb-admin reference they already scrape. fn must be safe
// for concurrent use; while no handler is set the admin servant answers
// shard verbs with NO_IMPLEMENT. The indirection keeps this package
// free of any dependency on the shard-map encoding (internal/cluster),
// mirroring SetRecoveryStatsProvider.
func (o *ORB) SetShardAdminHandler(fn func(ctx context.Context, op string, in *cdr.Decoder) ([]byte, error)) {
	o.mu.Lock()
	o.shardAdminFn = fn
	o.mu.Unlock()
}

// New returns a running ORB (in-process only until Listen is called).
func New(opts ...ORBOption) *ORB {
	gen := ids.NewGenerator()
	o := &ORB{
		id:          gen.New().String(),
		gen:         gen,
		callTimeout: 10 * time.Second,
		transport:   TCPTransport{},
		health:      ProcessHealthRegistry,
		poolSize:    defaultPoolSize,
		dialTimeout: defaultDialTimeout,
		backoffMin:  defaultBackoffMin,
		backoffMax:  defaultBackoffMax,
		servants:    make(map[string]servantEntry),
		pools:       make(map[string]*endpointPool),
	}
	for _, opt := range opts {
		opt.apply(o)
	}
	inprocRegistry.Store(o.id, o)
	return o
}

// ID returns the ORB's process-unique identifier.
func (o *ORB) ID() string { return o.id }

// AddClientInterceptor appends an interceptor to the outgoing chain.
func (o *ORB) AddClientInterceptor(ic ClientInterceptor) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.clientIC = append(o.clientIC, ic)
}

// AddServerInterceptor appends an interceptor to the incoming chain.
func (o *ORB) AddServerInterceptor(ic ServerInterceptor) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.serverIC = append(o.serverIC, ic)
}

// RegisterServant activates s under a fresh key and returns its IOR.
func (o *ORB) RegisterServant(typeID string, s Servant) IOR {
	return o.RegisterServantWithKey(o.gen.New().String(), typeID, s)
}

// RegisterServantWithKey activates s under the given key (stable keys
// support recovery: a restarted server re-registers servants under the keys
// embedded in persisted IORs).
func (o *ORB) RegisterServantWithKey(key, typeID string, s Servant) IOR {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.servants[key] = servantEntry{servant: s, typeID: typeID}
	return o.iorLocked(key, typeID)
}

// hasServant reports whether a servant is active under key.
func (o *ORB) hasServant(key string) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	_, ok := o.servants[key]
	return ok
}

// Deactivate removes the servant under key.
func (o *ORB) Deactivate(key string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.servants, key)
}

// IOR returns the current reference for an activated key.
func (o *ORB) IOR(key string) (IOR, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	e, ok := o.servants[key]
	if !ok {
		return IOR{}, false
	}
	return o.iorLocked(key, e.typeID), true
}

func (o *ORB) iorLocked(key, typeID string) IOR {
	eps := o.advertised
	if len(eps) == 0 {
		eps = o.bound
	}
	if len(eps) == 0 {
		eps = []string{"inproc:" + o.id}
	}
	return NewIOR(typeID, key, eps...)
}

// Endpoint returns the primary network endpoint ("tcp:host:port") once
// listening, or the in-process endpoint otherwise.
func (o *ORB) Endpoint() string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if len(o.bound) > 0 {
		return o.bound[0]
	}
	return "inproc:" + o.id
}

// Endpoints returns every bound listener endpoint in Listen order, or the
// in-process endpoint when the ORB is not listening. References minted by
// the ORB carry all of them as profiles (unless WithAdvertised overrides
// the list), so clients ride over the loss of any single listener.
func (o *ORB) Endpoints() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if len(o.bound) > 0 {
		return append([]string(nil), o.bound...)
	}
	return []string{"inproc:" + o.id}
}

// Shutdown stops the server transport, closes client connections and
// deactivates the ORB. It is idempotent.
func (o *ORB) Shutdown() {
	o.mu.Lock()
	if o.shutdown {
		o.mu.Unlock()
		return
	}
	o.shutdown = true
	srvs := o.srvs
	o.srvs = nil
	o.mu.Unlock()

	inprocRegistry.Delete(o.id)
	for _, srv := range srvs {
		srv.stop()
	}
	o.connMu.Lock()
	o.poolsClosed = true
	pools := o.pools
	o.pools = nil
	o.connMu.Unlock()
	for _, p := range pools {
		p.closePool(Systemf(CodeCommFailure, "orb shut down"))
	}
}

// Invoke calls operation op on the object ref with the given request body.
// It chooses the in-process fast path when ref lives in this process and
// TCP otherwise. The reply body is returned on success.
func (o *ORB) Invoke(ctx context.Context, ref IOR, op string, body []byte) ([]byte, error) {
	if ref.IsZero() {
		return nil, Systemf(CodeObjectNotExist, "nil object reference")
	}
	o.mu.RLock()
	ics := o.clientIC
	down := o.shutdown
	o.mu.RUnlock()
	if down {
		return nil, Systemf(CodeCommFailure, "orb shut down")
	}

	var contexts []ServiceContext
	for _, ic := range ics {
		cs, err := ic(ctx, ref, op)
		if err != nil {
			return nil, fmt.Errorf("orb: client interceptor: %w", err)
		}
		contexts = append(contexts, cs...)
	}

	if target, ok := o.localTarget(ref); ok {
		rep := target.dispatch(ctx, request{
			requestID: o.reqID.Add(1),
			objectKey: ref.Key,
			operation: op,
			contexts:  contexts,
			body:      body,
		})
		return replyToResult(rep)
	}
	return o.invokeRemote(ctx, ref, op, contexts, body)
}

// localTarget resolves ref to an ORB in this process, if any of its
// profiles allows it: an "inproc:" profile naming a live local ORB, or a
// TCP profile matching one of this ORB's own bound endpoints (the
// self-reference short circuit).
func (o *ORB) localTarget(ref IOR) (*ORB, bool) {
	for _, p := range ref.Profiles {
		if id, ok := strings.CutPrefix(p.Endpoint, "inproc:"); ok {
			if v, ok := inprocRegistry.Load(id); ok {
				return v.(*ORB), true
			}
			continue
		}
		o.mu.RLock()
		for _, bound := range o.bound {
			if p.Endpoint == bound {
				o.mu.RUnlock()
				return o, true
			}
		}
		o.mu.RUnlock()
	}
	return nil, false
}

// dispatch runs a request against the local object adapter (the
// in-process invoke path and compatibility callers).
func (o *ORB) dispatch(ctx context.Context, req request) reply {
	o.mu.RLock()
	entry, ok := o.servants[req.objectKey]
	ics := o.serverIC
	o.mu.RUnlock()
	if !ok {
		return errorReply(req.requestID, Systemf(CodeObjectNotExist, "key %q", req.objectKey))
	}
	return o.dispatchEntry(ctx, entry, ics, req.requestID, req.operation, req.contexts, req.body)
}

// dispatchWire runs a wire-decoded request against the object adapter
// without materializing its strings: the servant lookup runs directly on
// the lent key bytes (a map[string] lookup on string(b) compiles
// allocation-free) and the operation name is interned, so the server's
// steady-state dispatch allocates nothing for routing.
func (o *ORB) dispatchWire(ctx context.Context, req wireRequest) reply {
	o.mu.RLock()
	entry, ok := o.servants[string(req.objectKey)]
	ics := o.serverIC
	o.mu.RUnlock()
	if !ok {
		return errorReply(req.requestID, Systemf(CodeObjectNotExist, "key %q", req.objectKey))
	}
	return o.dispatchEntry(ctx, entry, ics, req.requestID, internOp(req.operation), req.contexts, req.body)
}

// dispatchEntry is the shared tail of dispatch/dispatchWire: interceptor
// chain, then the servant.
func (o *ORB) dispatchEntry(ctx context.Context, entry servantEntry, ics []ServerInterceptor, requestID uint64, op string, contexts []ServiceContext, body []byte) reply {
	for _, ic := range ics {
		var err error
		ctx, err = ic(ctx, contexts)
		if err != nil {
			return errorReply(requestID, Systemf(CodeTransient, "server interceptor: %v", err))
		}
	}
	// The argument decoder is pooled: servants read from it during
	// Dispatch and must not retain it (nor, without cdr.Clone, any []byte
	// it lends — see the Servant contract).
	d := cdr.GetDecoder(body)
	out, err := entry.servant.Dispatch(ctx, op, d)
	cdr.PutDecoder(d)
	if err != nil {
		return errorReply(requestID, err)
	}
	return reply{requestID: requestID, status: replyOK, body: out}
}

// maxInternedOps bounds the operation-name intern table. Operation names
// are protocol verbs — a small closed set in practice — but the bound
// makes sure a hostile client spraying random names cannot grow the
// table; overflow names just pay their one string allocation.
const maxInternedOps = 256

// opIntern deduplicates operation-name strings across requests, so the
// hot dispatch path converts the lent wire bytes to a string without
// allocating (the read path is a map[string] lookup on string(b), which
// the compiler performs allocation-free).
var opIntern = struct {
	sync.RWMutex
	m map[string]string
}{m: make(map[string]string)}

// internOp returns the canonical string for an operation name's bytes.
func internOp(b []byte) string {
	opIntern.RLock()
	s, ok := opIntern.m[string(b)]
	opIntern.RUnlock()
	if ok {
		return s
	}
	opIntern.Lock()
	defer opIntern.Unlock()
	if s, ok = opIntern.m[string(b)]; ok {
		return s
	}
	s = string(b)
	if len(opIntern.m) < maxInternedOps {
		opIntern.m[s] = s
	}
	return s
}

// errorReply encodes an error into a reply message.
func errorReply(requestID uint64, err error) reply {
	if se, ok := err.(*SystemError); ok {
		return reply{
			requestID: requestID,
			status:    replySystemErr,
			errCode:   string(se.Code),
			errDetail: se.Detail,
		}
	}
	return reply{
		requestID: requestID,
		status:    replyUserErr,
		errCode:   string(codeApplication),
		errDetail: err.Error(),
	}
}

// replyToResult converts a reply message back into (body, error). A body
// lent from a pooled frame buffer is cloned into a caller-owned slice and
// the buffer is recycled; local replies (no backing frame) pass their
// body through untouched.
func replyToResult(rep reply) ([]byte, error) {
	body := rep.body
	if rep.fb != nil {
		if rep.status == replyOK {
			body = cdr.Clone(body)
		}
		rep.release()
	}
	switch rep.status {
	case replyOK:
		return body, nil
	case replySystemErr:
		return nil, &SystemError{Code: ExceptionCode(rep.errCode), Detail: rep.errDetail}
	default:
		return nil, &RemoteError{Message: rep.errDetail}
	}
}
