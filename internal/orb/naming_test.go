package orb

import (
	"context"
	"errors"
	"testing"
)

func newNamingFixture(t *testing.T) (*ORB, *ORB, *NameClient) {
	t.Helper()
	server := New()
	t.Cleanup(server.Shutdown)
	ns := NewNameServer()
	ns.Serve(server)
	endpoint, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := New()
	t.Cleanup(client.Shutdown)
	nc := NewNameClient(client, NameServiceAt(endpoint))
	return server, client, nc
}

func TestNamingBindResolve(t *testing.T) {
	server, _, nc := newNamingFixture(t)
	ctx := context.Background()

	target := server.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	target, _ = server.IOR(target.Key)
	if err := nc.Bind(ctx, "services/echo", target); err != nil {
		t.Fatal(err)
	}
	got, err := nc.Resolve(ctx, "services/echo")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(target) {
		t.Fatalf("resolved %+v, want %+v", got, target)
	}
}

func TestNamingResolveUnbound(t *testing.T) {
	_, _, nc := newNamingFixture(t)
	_, err := nc.Resolve(context.Background(), "no/such/name")
	if !errors.Is(err, ErrNotBound) {
		t.Fatalf("err = %v, want ErrNotBound", err)
	}
}

func TestNamingUnbind(t *testing.T) {
	server, _, nc := newNamingFixture(t)
	ctx := context.Background()
	ref := server.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	if err := nc.Bind(ctx, "temp", ref); err != nil {
		t.Fatal(err)
	}
	if err := nc.Unbind(ctx, "temp"); err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Resolve(ctx, "temp"); !errors.Is(err, ErrNotBound) {
		t.Fatalf("err = %v after unbind", err)
	}
}

func TestNamingList(t *testing.T) {
	server, _, nc := newNamingFixture(t)
	ctx := context.Background()
	ref := server.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	for _, name := range []string{"zebra", "alpha", "mike"} {
		if err := nc.Bind(ctx, name, ref); err != nil {
			t.Fatal(err)
		}
	}
	names, err := nc.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mike", "zebra"}
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want sorted %v", names, want)
		}
	}
}

func TestNamingRebindReplaces(t *testing.T) {
	server, _, nc := newNamingFixture(t)
	ctx := context.Background()
	r1 := server.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	r2 := server.RegisterServant("IDL:test/Echo:1.0", echoServant{})
	_ = nc.Bind(ctx, "svc", r1)
	_ = nc.Bind(ctx, "svc", r2)
	got, err := nc.Resolve(ctx, "svc")
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != r2.Key {
		t.Fatalf("resolved key %q, want %q", got.Key, r2.Key)
	}
}
