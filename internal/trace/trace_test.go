package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(KindTransmit, "a", "b", "prepare", "")
	r.Notef("x", "hello %d", 1)
	if got := r.Events(); got != nil {
		t.Fatalf("nil recorder returned events: %v", got)
	}
	if r.Len() != 0 {
		t.Fatalf("nil recorder Len = %d", r.Len())
	}
	r.Reset()
}

func TestRecordOrder(t *testing.T) {
	r := New()
	r.Record(KindGetSignal, "coord", "set", "prepare", "")
	r.Record(KindTransmit, "coord", "action1", "prepare", "")
	r.Record(KindResponse, "action1", "set", "done", "")
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Seq != i {
			t.Errorf("event %d has Seq %d", i, e.Seq)
		}
	}
	if evs[1].Target != "action1" {
		t.Errorf("event 1 target = %q", evs[1].Target)
	}
}

func TestSequenceCompactForm(t *testing.T) {
	r := New()
	r.Record(KindGetSignal, "coord", "2pc", "", "")
	r.Record(KindTransmit, "coord", "a1", "prepare", "")
	got := r.Sequence()
	want := []string{"get_signal:coord->2pc", "transmit:coord->a1:prepare"}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("seq[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRenderContainsAllEvents(t *testing.T) {
	r := New()
	r.Record(KindBegin, "A", "", "", "top-level")
	r.Record(KindComplete, "A", "", "", "success")
	s := r.Render()
	if !strings.Contains(s, "begin") || !strings.Contains(s, "complete") {
		t.Fatalf("render missing events:\n%s", s)
	}
	if strings.Count(s, "\n") != 1 {
		t.Fatalf("render should have exactly 2 lines:\n%s", s)
	}
}

func TestResetClears(t *testing.T) {
	r := New()
	r.Record(KindNote, "x", "", "", "one")
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after reset = %d", r.Len())
	}
	r.Record(KindNote, "x", "", "", "two")
	if evs := r.Events(); len(evs) != 1 || evs[0].Seq != 0 {
		t.Fatalf("seq should restart at 0 after reset: %+v", evs)
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(KindTransmit, "c", "a", "s", "")
			}
		}()
	}
	wg.Wait()
	evs := r.Events()
	if len(evs) != 4000 {
		t.Fatalf("got %d events, want 4000", len(evs))
	}
	for i, e := range evs {
		if e.Seq != i {
			t.Fatalf("event %d has Seq %d", i, e.Seq)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindGetSignal.String() != "get_signal" {
		t.Errorf("KindGetSignal = %q", KindGetSignal.String())
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind = %q", Kind(99).String())
	}
}

func TestCompactEventElidesEmpty(t *testing.T) {
	e := Event{Kind: KindNote, Source: "a"}
	if got := CompactEvent(e); got != "note:a" {
		t.Errorf("CompactEvent = %q", got)
	}
}

// TestConcurrentRecording hammers one Recorder from many goroutines (as
// the parallel delivery engine does across concurrent activities) and
// verifies every event lands with a unique, dense sequence number.
func TestConcurrentRecording(t *testing.T) {
	const (
		goroutines = 8
		events     = 200
	)
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < events; i++ {
				r.Record(KindTransmit, fmt.Sprintf("g%d", g), "act", "sig", "")
			}
		}()
	}
	wg.Wait()
	evs := r.Events()
	if len(evs) != goroutines*events {
		t.Fatalf("len = %d, want %d", len(evs), goroutines*events)
	}
	for i, e := range evs {
		if e.Seq != i {
			t.Fatalf("events[%d].Seq = %d; order not dense", i, e.Seq)
		}
	}
}
