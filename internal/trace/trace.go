// Package trace records the interactions between activity coordinators,
// SignalSets and Actions as an ordered event stream.
//
// The paper's evaluation artifacts are sequence charts (figs. 8, 10, 11,
// 12) and timelines (figs. 1, 2, 4). A Recorder captures each protocol step
// as it happens; cmd/figures and the integration tests render or assert the
// captured sequence against the paper's. Recording is optional everywhere —
// a nil *Recorder is valid and drops all events.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Kind classifies a recorded event.
type Kind int

// Event kinds, in protocol vocabulary matching the paper's figures.
const (
	// KindGetSignal records the coordinator asking a SignalSet for a signal
	// ("get_signal()" in fig. 8).
	KindGetSignal Kind = iota + 1
	// KindTransmit records a signal being sent to one action ("prepare" →
	// Action arrows).
	KindTransmit
	// KindResponse records the action's outcome being fed back to the set
	// ("set_response()").
	KindResponse
	// KindGetOutcome records the final collation ("get_outcome()").
	KindGetOutcome
	// KindBegin records an activity or transaction starting.
	KindBegin
	// KindComplete records an activity or transaction completing.
	KindComplete
	// KindNote records free-form scenario annotations ("t4 aborts").
	KindNote
)

var kindNames = map[Kind]string{
	KindGetSignal:  "get_signal",
	KindTransmit:   "transmit",
	KindResponse:   "set_response",
	KindGetOutcome: "get_outcome",
	KindBegin:      "begin",
	KindComplete:   "complete",
	KindNote:       "note",
}

// String returns the protocol name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one recorded protocol step.
type Event struct {
	Seq    int       // position in the recorded order, starting at 0
	At     time.Time // wall-clock capture time
	Kind   Kind
	Source string // emitting party (coordinator, activity, set)
	Target string // receiving party (action, set), may be empty
	Signal string // signal or outcome name, may be empty
	Detail string // free-form annotation
}

// String renders the event in the arrow notation used by cmd/figures.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%3d %-12s %s", e.Seq, e.Kind, e.Source)
	if e.Target != "" {
		fmt.Fprintf(&b, " -> %s", e.Target)
	}
	if e.Signal != "" {
		fmt.Fprintf(&b, " %q", e.Signal)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " (%s)", e.Detail)
	}
	return b.String()
}

// Recorder accumulates events. The zero value is ready to use; a nil
// *Recorder discards everything. Safe for concurrent use: recorders are
// shared by every coordinator of a Service, and the parallel delivery
// engine records from many broadcasts at once — Seq is assigned under the
// recorder's lock, so the recorded order is a single total order even when
// events race in from concurrent activities.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	now    func() time.Time
}

// New returns an empty Recorder.
func New() *Recorder { return &Recorder{} }

// Record appends an event. No-op on a nil receiver.
func (r *Recorder) Record(kind Kind, source, target, signal, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now
	if r.now != nil {
		now = r.now
	}
	r.events = append(r.events, Event{
		Seq:    len(r.events),
		At:     now(),
		Kind:   kind,
		Source: source,
		Target: target,
		Signal: signal,
		Detail: detail,
	})
}

// Notef records a KindNote event with a formatted detail string.
func (r *Recorder) Notef(source, format string, args ...any) {
	if r == nil {
		return
	}
	r.Record(KindNote, source, "", "", fmt.Sprintf(format, args...))
}

// Events returns a copy of the recorded events in order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
}

// Render returns the whole sequence in arrow notation, one event per line.
func (r *Recorder) Render() string {
	evs := r.Events()
	lines := make([]string, len(evs))
	for i, e := range evs {
		lines[i] = e.String()
	}
	return strings.Join(lines, "\n")
}

// Sequence returns the compact "kind:source->target:signal" forms, which
// tests compare against the paper's charts ignoring timestamps and seq.
func (r *Recorder) Sequence() []string {
	evs := r.Events()
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = CompactEvent(e)
	}
	return out
}

// CompactEvent formats an event as "kind:source->target:signal" with empty
// segments elided.
func CompactEvent(e Event) string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	b.WriteByte(':')
	b.WriteString(e.Source)
	if e.Target != "" {
		b.WriteString("->")
		b.WriteString(e.Target)
	}
	if e.Signal != "" {
		b.WriteByte(':')
		b.WriteString(e.Signal)
	}
	return b.String()
}
