// Package ids generates the globally unique identifiers used for
// activities, transactions, ORB objects and log records.
//
// Identifiers are 16 bytes: an 8-byte node/process prefix chosen randomly at
// generator construction time and an 8-byte monotonically increasing
// counter. They are comparable, usable as map keys, and render as
// fixed-width hex, so traces and logs sort in creation order within one
// process.
package ids

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sync/atomic"
)

// UID is a unique identifier. The zero value is the nil UID, which is never
// produced by a Generator.
type UID [16]byte

// Nil is the zero UID.
var Nil UID

// ErrBadUID reports that a string could not be parsed as a UID.
var ErrBadUID = errors.New("ids: malformed uid")

// Generator produces UIDs. It is safe for concurrent use. The zero value is
// not usable; call NewGenerator.
type Generator struct {
	node    uint64
	counter atomic.Uint64
}

// NewGenerator returns a Generator with a random node prefix.
func NewGenerator() *Generator {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; if it does the
		// process cannot safely generate identities.
		panic(fmt.Sprintf("ids: crypto/rand failed: %v", err))
	}
	g := &Generator{node: binary.BigEndian.Uint64(b[:])}
	return g
}

// NewSeeded returns a Generator with a fixed node prefix. Only for tests
// that need reproducible identifiers.
func NewSeeded(node uint64) *Generator {
	return &Generator{node: node}
}

// New returns the next UID.
func (g *Generator) New() UID {
	var u UID
	binary.BigEndian.PutUint64(u[0:8], g.node)
	binary.BigEndian.PutUint64(u[8:16], g.counter.Add(1))
	return u
}

// Node returns the generator's node prefix.
func (g *Generator) Node() uint64 { return g.node }

// IsNil reports whether u is the zero UID.
func (u UID) IsNil() bool { return u == Nil }

// Seq returns the counter part of the UID.
func (u UID) Seq() uint64 { return binary.BigEndian.Uint64(u[8:16]) }

// String renders the UID as 32 lower-case hex digits.
func (u UID) String() string { return hex.EncodeToString(u[:]) }

// Short renders the last 8 hex digits, for compact traces.
func (u UID) Short() string { return hex.EncodeToString(u[12:]) }

// Parse parses a 32-hex-digit string produced by String.
func Parse(s string) (UID, error) {
	var u UID
	if len(s) != 32 {
		return Nil, fmt.Errorf("%w: want 32 hex digits, got %d", ErrBadUID, len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return Nil, fmt.Errorf("%w: %v", ErrBadUID, err)
	}
	copy(u[:], b)
	return u, nil
}

// MarshalText implements encoding.TextMarshaler.
func (u UID) MarshalText() ([]byte, error) { return []byte(u.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (u *UID) UnmarshalText(b []byte) error {
	p, err := Parse(string(b))
	if err != nil {
		return err
	}
	*u = p
	return nil
}
