package ids

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewIsUnique(t *testing.T) {
	g := NewGenerator()
	seen := make(map[UID]bool, 10000)
	for i := 0; i < 10000; i++ {
		u := g.New()
		if seen[u] {
			t.Fatalf("duplicate uid %s at iteration %d", u, i)
		}
		seen[u] = true
	}
}

func TestNewNeverNil(t *testing.T) {
	g := NewSeeded(0)
	for i := 0; i < 100; i++ {
		if u := g.New(); u.IsNil() {
			t.Fatalf("generator produced nil uid at iteration %d", i)
		}
	}
}

func TestConcurrentUnique(t *testing.T) {
	g := NewGenerator()
	const (
		workers = 8
		each    = 2000
	)
	var (
		mu  sync.Mutex
		all = make(map[UID]bool, workers*each)
		wg  sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]UID, 0, each)
			for i := 0; i < each; i++ {
				local = append(local, g.New())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, u := range local {
				if all[u] {
					t.Errorf("duplicate uid %s", u)
				}
				all[u] = true
			}
		}()
	}
	wg.Wait()
	if len(all) != workers*each {
		t.Fatalf("got %d unique uids, want %d", len(all), workers*each)
	}
}

func TestSeqMonotonic(t *testing.T) {
	g := NewSeeded(42)
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		s := g.New().Seq()
		if s <= prev {
			t.Fatalf("seq not monotonic: %d after %d", s, prev)
		}
		prev = s
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	g := NewGenerator()
	for i := 0; i < 100; i++ {
		u := g.New()
		p, err := Parse(u.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", u.String(), err)
		}
		if p != u {
			t.Fatalf("round trip mismatch: %s != %s", p, u)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	tests := []string{
		"",
		"00",
		"zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz",
		"0123456789abcdef0123456789abcde",   // 31 chars
		"0123456789abcdef0123456789abcdef0", // 33 chars
	}
	for _, tt := range tests {
		if _, err := Parse(tt); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", tt)
		}
	}
}

func TestTextMarshalRoundTrip(t *testing.T) {
	f := func(node, seq uint64) bool {
		g := NewSeeded(node)
		g.counter.Store(seq)
		u := g.New()
		b, err := u.MarshalText()
		if err != nil {
			return false
		}
		var v UID
		if err := v.UnmarshalText(b); err != nil {
			return false
		}
		return v == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShortIsSuffix(t *testing.T) {
	u := NewSeeded(7).New()
	s, short := u.String(), u.Short()
	if len(short) != 8 || s[len(s)-8:] != short {
		t.Fatalf("Short %q is not the 8-char suffix of %q", short, s)
	}
}
