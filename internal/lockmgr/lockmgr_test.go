package lockmgr

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

const tick = 50 * time.Millisecond

func TestSharedReads(t *testing.T) {
	m := New()
	if err := m.Acquire("t1", "r", Read, tick); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("t2", "r", Read, tick); err != nil {
		t.Fatalf("second reader blocked: %v", err)
	}
	if mode, held := m.HeldMode("r"); !held || mode != Read {
		t.Fatalf("mode = %v held=%v", mode, held)
	}
}

func TestWriteExcludesAll(t *testing.T) {
	m := New()
	if err := m.Acquire("t1", "r", Write, tick); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("t2", "r", Read, tick); !errors.Is(err, ErrTimeout) {
		t.Fatalf("reader got in past writer: %v", err)
	}
	if err := m.Acquire("t2", "r", Write, tick); !errors.Is(err, ErrTimeout) {
		t.Fatalf("second writer got in: %v", err)
	}
}

func TestReadBlocksWrite(t *testing.T) {
	m := New()
	if err := m.Acquire("t1", "r", Read, tick); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("t2", "r", Write, tick); !errors.Is(err, ErrTimeout) {
		t.Fatalf("writer got in past reader: %v", err)
	}
}

func TestReentrantAndUpgrade(t *testing.T) {
	m := New()
	if err := m.Acquire("t1", "r", Read, tick); err != nil {
		t.Fatal(err)
	}
	// Reentrant read.
	if err := m.Acquire("t1", "r", Read, tick); err != nil {
		t.Fatalf("reentrant read: %v", err)
	}
	// Upgrade while sole holder.
	if err := m.Acquire("t1", "r", Write, tick); err != nil {
		t.Fatalf("upgrade: %v", err)
	}
	if mode, _ := m.HeldMode("r"); mode != Write {
		t.Fatalf("mode after upgrade = %v", mode)
	}
	// Reentrant write.
	if err := m.Acquire("t1", "r", Write, tick); err != nil {
		t.Fatalf("reentrant write: %v", err)
	}
	// Three releases later the lock is still held (4 holds).
	for i := 0; i < 3; i++ {
		if err := m.Release("t1", "r"); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Holds("t1", "r") {
		t.Fatal("lock dropped too early")
	}
	if err := m.Release("t1", "r"); err != nil {
		t.Fatal(err)
	}
	if m.Holds("t1", "r") {
		t.Fatal("lock still held after final release")
	}
}

func TestUpgradeDeniedWithOtherReaders(t *testing.T) {
	m := New()
	if err := m.Acquire("t1", "r", Read, tick); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("t2", "r", Read, tick); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("t1", "r", Write, tick); !errors.Is(err, ErrTimeout) {
		t.Fatalf("upgrade with two readers: %v", err)
	}
}

func TestWaiterWokenOnRelease(t *testing.T) {
	m := New()
	if err := m.Acquire("t1", "r", Write, tick); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- m.Acquire("t2", "r", Write, 5*time.Second)
	}()
	time.Sleep(10 * time.Millisecond)
	if err := m.Release("t1", "r"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waiter failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke")
	}
	if !m.Holds("t2", "r") {
		t.Fatal("t2 does not hold the lock")
	}
}

func TestReleaseAll(t *testing.T) {
	m := New()
	for _, r := range []string{"a", "b", "c"} {
		if err := m.Acquire("tx", r, Write, tick); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.ReleaseAll("tx"); n != 3 {
		t.Fatalf("released %d, want 3", n)
	}
	for _, r := range []string{"a", "b", "c"} {
		if m.Holds("tx", r) {
			t.Fatalf("still holds %q", r)
		}
	}
	if n := m.ReleaseAll("tx"); n != 0 {
		t.Fatalf("second ReleaseAll freed %d", n)
	}
}

func TestReleaseNotHeld(t *testing.T) {
	m := New()
	if err := m.Release("ghost", "r"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("err = %v, want ErrNotHeld", err)
	}
}

func TestDeadlockBrokenByTimeout(t *testing.T) {
	m := New()
	// t1 holds a, t2 holds b; each wants the other: classic deadlock. Both
	// must get ErrTimeout rather than hanging.
	if err := m.Acquire("t1", "a", Write, tick); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("t2", "b", Write, tick); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = m.Acquire("t1", "b", Write, tick) }()
	go func() { defer wg.Done(); errs[1] = m.Acquire("t2", "a", Write, tick) }()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("leg %d: err = %v, want ErrTimeout", i, err)
		}
	}
}

func TestConcurrentMutualExclusion(t *testing.T) {
	m := New()
	var (
		inside  atomic.Int32
		maxSeen atomic.Int32
		wg      sync.WaitGroup
	)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			owner := string(rune('a' + id))
			for i := 0; i < 50; i++ {
				if err := m.Acquire(owner, "shared", Write, 10*time.Second); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				n := inside.Add(1)
				if n > maxSeen.Load() {
					maxSeen.Store(n)
				}
				inside.Add(-1)
				if err := m.Release(owner, "shared"); err != nil {
					t.Errorf("release: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if maxSeen.Load() > 1 {
		t.Fatalf("mutual exclusion violated: %d writers inside", maxSeen.Load())
	}
}
