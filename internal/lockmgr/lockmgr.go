// Package lockmgr provides a read/write lock manager with per-owner lock
// sets, reentrancy, read-to-write upgrade and timeout-based deadlock
// breaking.
//
// Transactional resources (internal/ots test resources, the bulletin-board
// example) take locks keyed by resource name, owned by a transaction or
// activity identifier. The LRUOW performance phase (hls/lruow) acquires its
// write locks here, reproducing the paper's "confirmed (committed) only if
// suitable locks ... can be obtained" semantics (§4.3). Deadlocks are
// resolved by acquisition timeout, the strategy classical transaction
// monitors use.
package lockmgr

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	// Read locks are shared: any number of owners may hold them together.
	Read Mode = iota + 1
	// Write locks are exclusive.
	Write
)

// String returns "read" or "write".
func (m Mode) String() string {
	switch m {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Lock manager errors.
var (
	// ErrTimeout reports that a lock could not be acquired in time; callers
	// treat it as a (possible) deadlock and abort.
	ErrTimeout = errors.New("lockmgr: acquisition timed out")
	// ErrNotHeld reports releasing a lock the owner does not hold.
	ErrNotHeld = errors.New("lockmgr: lock not held")
)

// entry tracks one resource's lock state.
type entry struct {
	mode    Mode
	holders map[string]int // owner -> hold count (reentrancy)
	waiters []chan struct{}
}

// Manager is a lock manager. The zero value is not usable; call New.
type Manager struct {
	mu    sync.Mutex
	locks map[string]*entry
}

// New returns an empty lock manager.
func New() *Manager {
	return &Manager{locks: make(map[string]*entry)}
}

// Acquire obtains a lock on resource for owner in the given mode, waiting
// up to timeout. It supports reentrant acquisition and upgrades a read lock
// to write when the owner is the sole holder.
func (m *Manager) Acquire(owner, resource string, mode Mode, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		m.mu.Lock()
		if m.tryGrant(owner, resource, mode) {
			m.mu.Unlock()
			return nil
		}
		// Register a waiter and block until a release wakes us or we time
		// out. Waiters are woken broadcast-style and re-contend; fairness is
		// not guaranteed, matching timeout-based deadlock breaking.
		wait := make(chan struct{})
		e := m.locks[resource]
		e.waiters = append(e.waiters, wait)
		m.mu.Unlock()

		remaining := time.Until(deadline)
		if remaining <= 0 {
			m.removeWaiter(resource, wait)
			return fmt.Errorf("%w: %s lock on %q for %s", ErrTimeout, mode, resource, owner)
		}
		timer := time.NewTimer(remaining)
		select {
		case <-wait:
			timer.Stop()
		case <-timer.C:
			m.removeWaiter(resource, wait)
			return fmt.Errorf("%w: %s lock on %q for %s", ErrTimeout, mode, resource, owner)
		}
	}
}

// tryGrant attempts the grant under m.mu; reports success.
func (m *Manager) tryGrant(owner, resource string, mode Mode) bool {
	e, ok := m.locks[resource]
	if !ok {
		e = &entry{holders: make(map[string]int)}
		m.locks[resource] = e
	}
	switch {
	case len(e.holders) == 0:
		e.mode = mode
		e.holders[owner] = 1
		return true
	case e.holders[owner] > 0 && len(e.holders) == 1:
		// Sole holder: reentrant grant, possibly upgrading read to write.
		if mode == Write {
			e.mode = Write
		}
		e.holders[owner]++
		return true
	case e.mode == Read && mode == Read:
		e.holders[owner]++
		return true
	case e.holders[owner] > 0 && e.mode == Write:
		// Reentrant under an exclusive lock we already hold.
		e.holders[owner]++
		return true
	default:
		return false
	}
}

// Release gives up one hold of the lock on resource.
func (m *Manager) Release(owner, resource string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.locks[resource]
	if !ok || e.holders[owner] == 0 {
		return fmt.Errorf("%w: %q by %s", ErrNotHeld, resource, owner)
	}
	e.holders[owner]--
	if e.holders[owner] == 0 {
		delete(e.holders, owner)
	}
	m.wakeLocked(e, resource)
	return nil
}

// ReleaseAll drops every lock held by owner, returning the number of
// resources released. Used at transaction/activity completion.
func (m *Manager) ReleaseAll(owner string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for res, e := range m.locks {
		if e.holders[owner] > 0 {
			delete(e.holders, owner)
			n++
			m.wakeLocked(e, res)
		}
	}
	return n
}

// wakeLocked wakes all waiters when the resource became free or readable.
func (m *Manager) wakeLocked(e *entry, resource string) {
	if len(e.holders) > 0 && e.mode == Write {
		return
	}
	for _, w := range e.waiters {
		close(w)
	}
	e.waiters = nil
	if len(e.holders) == 0 && len(e.waiters) == 0 {
		delete(m.locks, resource)
	}
}

func (m *Manager) removeWaiter(resource string, wait chan struct{}) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.locks[resource]
	if !ok {
		return
	}
	for i, w := range e.waiters {
		if w == wait {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			break
		}
	}
}

// Holds reports whether owner currently holds a lock on resource.
func (m *Manager) Holds(owner, resource string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.locks[resource]
	return ok && e.holders[owner] > 0
}

// HeldMode returns the current mode of the lock on resource and whether any
// lock is held at all.
func (m *Manager) HeldMode(resource string) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.locks[resource]
	if !ok || len(e.holders) == 0 {
		return 0, false
	}
	return e.mode, true
}
